// Tests for the flowpass optimization pipeline (src/flowpass,
// docs/passes.md).
//
// The load-bearing properties:
//   * the PASS MATRIX: every registered pass (and the whole default
//     pipeline) applied to a fold-body workload leaves the data
//     byte-identical to the sequential oracle on every executes_bodies
//     backend — iterated over both registries, so a new pass or backend
//     joins the matrix by registering and nothing else;
//   * fuse respects its edge cases: singleton chains, fan-out barriers and
//     the cost threshold stop fusion; a second application is a no-op;
//   * the map pass's winner never scores worse than the round-robin
//     baseline, and --tune scoring is bit-deterministic;
//   * a rewritten image inherits its source's serial but NOT its
//     fingerprint, so PrunedPlanCache can never serve the unoptimized plan
//     for an optimized image;
//   * engine registry aliases (pruned, sim) resolve to their targets.
#include <gtest/gtest.h>

#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/analysis.hpp"
#include "cli/cli.hpp"
#include "engine/registry.hpp"
#include "flowpass/cost.hpp"
#include "flowpass/pass.hpp"
#include "rio/pruning.hpp"
#include "rio/rio.hpp"
#include "stf/flow_rewrite.hpp"
#include "stf/stf.hpp"
#include "support/json_read.hpp"
#include "workloads/workloads.hpp"

namespace {

using namespace rio;

// One data object, N tiny sequentially-dependent tasks: the canonical
// fusion victim. Fold bodies mix the TASK ID into the bytes, so the test
// also proves the rewriter's id-preserving trampolines work.
workloads::Workload tiny_chain(std::uint64_t tasks, std::uint64_t cost) {
  workloads::ChainSpec s;
  s.num_tasks = tasks;
  s.task_cost = cost;
  s.body = workloads::BodyKind::kFold;
  s.num_workers = 2;
  return workloads::make_chain(s);
}

workloads::Workload fold_workload(const std::string& name) {
  if (name == "chain") return tiny_chain(48, 7);
  if (name == "cholesky") {
    workloads::CholeskyDagSpec s;
    s.tiles = 4;
    s.task_cost = 7;
    s.body = workloads::BodyKind::kFold;
    s.num_workers = 2;
    return workloads::make_cholesky_dag(s);
  }
  workloads::RandomDepsSpec s;  // "random"
  s.num_tasks = 80;
  s.task_cost = 7;
  s.body = workloads::BodyKind::kFold;
  s.seed = 7;
  s.num_workers = 2;
  return workloads::make_random_deps(s);
}

std::vector<std::vector<std::byte>> snapshot(const stf::DataRegistry& reg) {
  std::vector<std::vector<std::byte>> img(reg.size());
  for (std::size_t d = 0; d < reg.size(); ++d) {
    const auto id = static_cast<stf::DataId>(d);
    img[d].resize(reg.bytes(id));
    std::memcpy(img[d].data(), reg.raw(id), reg.bytes(id));
  }
  return img;
}

std::vector<std::vector<std::byte>> oracle_for(const std::string& wl) {
  workloads::Workload w = fold_workload(wl);
  stf::SequentialExecutor{}.run(w.flow);
  return snapshot(w.flow.registry());
}

flowpass::PassOptions small_opts() {
  flowpass::PassOptions o;
  o.workers = 2;
  o.fuse_threshold = 100;  // all fold_workload tasks (cost 7) are fusable
  return o;
}

// ------------------------------------------------------------- registry ----

TEST(PassRegistry, HoldsTheBuiltinsInPipelineOrder) {
  const auto names = flowpass::Registry::instance().names();
  ASSERT_EQ(names.size(), 4u);
  EXPECT_EQ(names[0], "fuse");
  EXPECT_EQ(names[1], "reorder");
  EXPECT_EQ(names[2], "partition");
  EXPECT_EQ(names[3], "map");
  for (const flowpass::Pass* p : flowpass::Registry::instance().all()) {
    EXPECT_FALSE(std::string(p->name()).empty());
    EXPECT_FALSE(std::string(p->description()).empty());
  }
}

TEST(PassRegistry, StructuredUnknownNameError) {
  std::string error;
  EXPECT_EQ(flowpass::Registry::instance().find_or_error("inline", error),
            nullptr);
  EXPECT_NE(error.find("unknown pass 'inline'"), std::string::npos) << error;
  EXPECT_NE(error.find("choices:"), std::string::npos) << error;
  for (const std::string& name : flowpass::Registry::instance().names())
    EXPECT_NE(error.find(name), std::string::npos) << error;
}

TEST(PassRegistry, PipelineFailsWholesaleOnUnknownName) {
  workloads::Workload wl = tiny_chain(8, 5);
  const stf::FlowImage src = stf::FlowImage::compile(wl.flow);
  const auto result =
      flowpass::run_pipeline(src, {"fuse", "bogus"}, small_opts());
  EXPECT_FALSE(result.ok());
  EXPECT_NE(result.error.find("unknown pass 'bogus'"), std::string::npos);
  EXPECT_TRUE(result.passes.empty()) << "nothing may run on a bad pipeline";
}

// ------------------------------------------------------- engine aliases ----

TEST(EngineAliases, ResolveToTheirTargets) {
  auto& reg = engine::Registry::instance();
  ASSERT_NE(reg.find("pruned"), nullptr);
  EXPECT_EQ(reg.find("pruned"), reg.find("rio-pruned"));
  ASSERT_NE(reg.find("sim"), nullptr);
  EXPECT_EQ(reg.find("sim"), reg.find("sim-rio"));
  // Canonical names keep working, and the alias lists are discoverable.
  EXPECT_EQ(reg.aliases_for("rio-pruned"), std::vector<std::string>{"pruned"});
  EXPECT_EQ(reg.aliases_for("sim-rio"), std::vector<std::string>{"sim"});
  EXPECT_TRUE(reg.aliases_for("rio").empty());
  // find_or_error resolves aliases too (the CLI path).
  std::string error;
  EXPECT_NE(reg.find_or_error("pruned", error), nullptr) << error;
}

// ------------------------------------------------------------ fuse ---------

TEST(FusePass, CollapsesATinyChain) {
  workloads::Workload wl = tiny_chain(16, 5);
  const stf::FlowImage src = stf::FlowImage::compile(wl.flow);
  const auto result = flowpass::run_pipeline(src, {"fuse"}, small_opts());
  ASSERT_TRUE(result.ok()) << result.error;
  EXPECT_EQ(result.image.size(), 2u);  // 16 tasks / max_group 8
  EXPECT_EQ(result.image.total_cost(), src.total_cost());
  EXPECT_EQ(result.image.serial(), src.serial());
  EXPECT_NE(result.image.fingerprint(), src.fingerprint());
}

TEST(FusePass, SingletonChainsStayPut) {
  // Two tiny tasks on DISJOINT data: no conflict edge, nothing to fuse.
  stf::TaskFlow flow;
  auto a = flow.create_data<std::uint64_t>("a");
  auto b = flow.create_data<std::uint64_t>("b");
  flow.add_virtual(5, {stf::write(a)}, "lone-a");
  flow.add_virtual(5, {stf::write(b)}, "lone-b");
  const stf::FlowImage src = stf::FlowImage::compile(flow);
  const auto result = flowpass::run_pipeline(src, {"fuse"}, small_opts());
  ASSERT_TRUE(result.ok()) << result.error;
  EXPECT_EQ(result.image.size(), 2u);
  EXPECT_EQ(result.image.fingerprint(), src.fingerprint())
      << "a no-op rewrite must not change the content hash";
}

TEST(FusePass, FanOutBreaksTheChain) {
  // head -> {left, right} -> join: the head has two successors, so no link
  // is exclusive and nothing may fuse across the barrier.
  stf::TaskFlow flow;
  auto x = flow.create_data<std::uint64_t>("x");
  auto l = flow.create_data<std::uint64_t>("l");
  auto r = flow.create_data<std::uint64_t>("r");
  flow.add_virtual(5, {stf::write(x)}, "head");
  flow.add_virtual(5, {stf::read(x), stf::write(l)}, "left");
  flow.add_virtual(5, {stf::read(x), stf::write(r)}, "right");
  flow.add_virtual(5, {stf::read(l), stf::read(r)}, "join");
  const stf::FlowImage src = stf::FlowImage::compile(flow);
  const auto result = flowpass::run_pipeline(src, {"fuse"}, small_opts());
  ASSERT_TRUE(result.ok()) << result.error;
  EXPECT_EQ(result.image.size(), 4u);
}

TEST(FusePass, ThresholdIsStrict) {
  // Cost exactly at the threshold is NOT tiny; nothing fuses.
  workloads::Workload wl = tiny_chain(8, 100);
  const stf::FlowImage src = stf::FlowImage::compile(wl.flow);
  const auto result = flowpass::run_pipeline(src, {"fuse"}, small_opts());
  ASSERT_TRUE(result.ok()) << result.error;
  EXPECT_EQ(result.image.size(), 8u);
}

TEST(FusePass, SecondApplicationIsANoOp) {
  workloads::Workload wl = tiny_chain(12, 5);
  flowpass::PassOptions opts = small_opts();
  opts.fuse_max_group = 16;  // whole chain in one composite
  const stf::FlowImage src = stf::FlowImage::compile(wl.flow);
  const auto once = flowpass::run_pipeline(src, {"fuse"}, opts);
  ASSERT_TRUE(once.ok()) << once.error;
  EXPECT_EQ(once.image.size(), 1u);
  const auto twice = flowpass::run_pipeline(once.image, {"fuse"}, opts);
  ASSERT_TRUE(twice.ok()) << twice.error;
  EXPECT_EQ(twice.image.size(), 1u);
  EXPECT_EQ(twice.image.fingerprint(), once.image.fingerprint());
}

TEST(FusePass, ReductionAccessesNeverFuse) {
  stf::TaskFlow flow;
  auto acc = flow.create_data<std::uint64_t>("acc");
  flow.add_virtual(5, {stf::write(acc)}, "init");
  flow.add_virtual(5, {stf::reduce(acc)}, "r0");
  flow.add_virtual(5, {stf::reduce(acc)}, "r1");
  const stf::FlowImage src = stf::FlowImage::compile(flow);
  const auto result = flowpass::run_pipeline(src, {"fuse"}, small_opts());
  ASSERT_TRUE(result.ok()) << result.error;
  EXPECT_EQ(result.image.size(), 3u);
}

// --------------------------------------------------------- reorder ---------

TEST(ReorderPass, EmitsATopologicalPermutation) {
  workloads::Workload wl = fold_workload("cholesky");
  const stf::FlowImage src = stf::FlowImage::compile(wl.flow);
  const auto result = flowpass::run_pipeline(src, {"reorder"}, small_opts());
  ASSERT_TRUE(result.ok()) << result.error;
  ASSERT_EQ(result.image.size(), src.size());
  EXPECT_EQ(result.image.total_cost(), src.total_cost());
  // Ids being a valid topological order is a DependencyGraph invariant; if
  // reorder emitted a non-topological permutation, fold execution below
  // (the matrix test) would corrupt bytes. Here: determinism.
  const auto again = flowpass::run_pipeline(src, {"reorder"}, small_opts());
  ASSERT_TRUE(again.ok()) << again.error;
  EXPECT_EQ(again.image.fingerprint(), result.image.fingerprint());
}

// ------------------------------------------------------- partition ---------

TEST(PartitionPass, ProducesCoveringPhasesAndABoundedMapping) {
  workloads::Workload wl = fold_workload("random");
  const stf::FlowImage src = stf::FlowImage::compile(wl.flow);
  const auto result =
      flowpass::run_pipeline(src, {"partition"}, small_opts());
  ASSERT_TRUE(result.ok()) << result.error;
  ASSERT_TRUE(result.mapping.valid());
  for (std::size_t i = 0; i < src.size(); ++i)
    EXPECT_LT(result.mapping(src.task_id(i)), 2u);
  ASSERT_FALSE(result.phases.empty());
  stf::TaskId next = src.first_id();
  std::size_t covered = 0;
  for (const hybrid::Phase& ph : result.phases) {
    EXPECT_EQ(ph.first, next) << "phases must tile the flow contiguously";
    EXPECT_GT(ph.count, 0u);
    EXPECT_EQ(ph.kind, hybrid::Phase::Kind::kStatic);
    EXPECT_TRUE(ph.mapping.valid());
    next = static_cast<stf::TaskId>(ph.first + ph.count);
    covered += ph.count;
  }
  EXPECT_EQ(covered, src.size());
}

// ------------------------------------------------------------- map ---------

TEST(MapPass, WinnerNeverLosesToTheBaseline) {
  for (const char* wl_name : {"chain", "cholesky", "random"}) {
    SCOPED_TRACE(wl_name);
    workloads::Workload wl = fold_workload(wl_name);
    const stf::FlowImage src = stf::FlowImage::compile(wl.flow);
    const auto result = flowpass::run_pipeline(src, {"map"}, small_opts());
    ASSERT_TRUE(result.ok()) << result.error;
    ASSERT_EQ(result.passes.size(), 1u);
    const auto& tuning = result.passes[0].tuning;
    ASSERT_FALSE(tuning.empty());
    EXPECT_EQ(tuning[0].candidate, "round-robin");
    std::uint64_t chosen_score = 0;
    bool saw_chosen = false;
    for (const auto& t : tuning)
      if (t.chosen) {
        chosen_score = t.score;
        saw_chosen = true;
      }
    ASSERT_TRUE(saw_chosen);
    EXPECT_LE(chosen_score, tuning[0].score);
    EXPECT_TRUE(result.mapping.valid());
  }
}

TEST(MapPass, TunedScoringIsDeterministic) {
  workloads::Workload wl = fold_workload("cholesky");
  flowpass::PassOptions opts = small_opts();
  opts.tune = true;
  const stf::FlowImage src = stf::FlowImage::compile(wl.flow);
  const auto a = flowpass::run_pipeline(src, {"map"}, opts);
  const auto b = flowpass::run_pipeline(src, {"map"}, opts);
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_EQ(a.passes.size(), 1u);
  ASSERT_EQ(a.passes[0].tuning.size(), b.passes[0].tuning.size());
  for (std::size_t i = 0; i < a.passes[0].tuning.size(); ++i) {
    EXPECT_EQ(a.passes[0].tuning[i].candidate,
              b.passes[0].tuning[i].candidate);
    EXPECT_EQ(a.passes[0].tuning[i].score, b.passes[0].tuning[i].score)
        << "virtual makespans must be bit-deterministic";
    EXPECT_EQ(a.passes[0].tuning[i].chosen, b.passes[0].tuning[i].chosen);
  }
  // The tuned winner's simulated makespan never exceeds the identity
  // (round-robin baseline) makespan — the acceptance bar for --tune.
  std::uint64_t chosen = 0;
  for (const auto& t : a.passes[0].tuning)
    if (t.chosen) chosen = t.score;
  EXPECT_LE(chosen, a.passes[0].tuning[0].score);
}

// ---------------------------------------------- fingerprints + plan cache --

TEST(Fingerprint, TracksContentNotLineage) {
  workloads::Workload wl = tiny_chain(16, 5);
  const stf::FlowImage src = stf::FlowImage::compile(wl.flow);
  const auto fused = flowpass::run_pipeline(src, {"fuse"}, small_opts());
  ASSERT_TRUE(fused.ok()) << fused.error;
  // Same lineage, different content.
  EXPECT_EQ(fused.image.serial(), src.serial());
  EXPECT_NE(fused.image.fingerprint(), src.fingerprint());
  // A pure clone keeps both.
  const stf::FlowImage copy = stf::FlowRewriter(src).compile();
  EXPECT_EQ(copy.serial(), src.serial());
  EXPECT_EQ(copy.fingerprint(), src.fingerprint());
}

TEST(PrunedPlanCache, OptimizedImageNeverReusesTheUnoptimizedPlan) {
  workloads::Workload wl = tiny_chain(16, 5);
  const stf::FlowImage src = stf::FlowImage::compile(wl.flow);
  const auto fused = flowpass::run_pipeline(src, {"fuse"}, small_opts());
  ASSERT_TRUE(fused.ok()) << fused.error;
  ASSERT_EQ(fused.image.serial(), src.serial());

  rt::PrunedPlanCache cache;
  const rt::Mapping mapping = rt::mapping::round_robin(2);
  const auto plan_a = cache.get(src, mapping, 2);
  EXPECT_EQ(cache.compiles(), 1u);
  const auto plan_b = cache.get(src, mapping, 2);
  EXPECT_EQ(cache.compiles(), 1u) << "same image must hit";
  EXPECT_EQ(plan_a.get(), plan_b.get());
  // Same serial + same mapping + same workers, different fingerprint: the
  // cache MUST miss, or the engine would replay the 16-task plan over the
  // 2-task fused image.
  const auto plan_c = cache.get(fused.image, mapping, 2);
  EXPECT_EQ(cache.compiles(), 2u);
  EXPECT_NE(plan_a.get(), plan_c.get());
}

// ----------------------------------------------------------- the matrix ----

TEST(PassMatrix, EveryPassOnEveryBackendMatchesTheOracle) {
  std::vector<std::vector<std::string>> pipelines;
  for (const std::string& name : flowpass::Registry::instance().names())
    pipelines.push_back({name});
  pipelines.push_back(flowpass::Registry::instance().names());  // all at once

  for (const char* wl_name : {"chain", "cholesky", "random"}) {
    const auto oracle = oracle_for(wl_name);
    for (const auto& pipeline : pipelines) {
      std::string label = std::string(wl_name) + " | passes";
      for (const auto& p : pipeline) label += " " + p;
      for (const engine::Backend* backend :
           engine::Registry::instance().all()) {
        if (!backend->caps().executes_bodies) continue;
        SCOPED_TRACE(label + " | " + std::string(backend->name()));

        workloads::Workload wl = fold_workload(wl_name);
        const stf::FlowImage src = stf::FlowImage::compile(wl.flow);
        const auto result =
            flowpass::run_pipeline(src, pipeline, small_opts());
        ASSERT_TRUE(result.ok()) << result.error;

        engine::Launch launch;
        launch.workers = 2;
        launch.mapping = result.mapping.valid()
                             ? result.mapping
                             : rt::mapping::round_robin(2);
        (void)backend->run(result.image, launch);
        EXPECT_EQ(snapshot(wl.flow.registry()), oracle)
            << "rewritten flow diverged from the sequential oracle";
      }
    }
  }
}

// ------------------------------------------------------------ lint RF501 ---

TEST(LintGranularity, TinyTasksFixtureWarnsAndCoarseFlowsDoNot) {
  {
    stf::TaskFlow flow = analysis::fixtures::bad_tiny_tasks();
    const stf::DependencyGraph graph(flow);
    const analysis::Report r = analysis::lint_flow(flow, graph);
    EXPECT_TRUE(r.has("RF501"));
  }
  {
    // Same shape, default-cost tasks: median 1000 is NOT below 1000.
    stf::TaskFlow flow;
    auto x = flow.create_data<std::uint64_t>("x");
    for (int i = 0; i < 20; ++i)
      flow.add_virtual(1000, {stf::readwrite(x)}, "coarse");
    const stf::DependencyGraph graph(flow);
    EXPECT_FALSE(analysis::lint_flow(flow, graph).has("RF501"));
  }
  {
    // Tiny costs but a tiny flow: below fusion_min_tasks, no noise.
    stf::TaskFlow flow;
    auto x = flow.create_data<std::uint64_t>("x");
    for (int i = 0; i < 4; ++i)
      flow.add_virtual(1, {stf::readwrite(x)}, "small");
    const stf::DependencyGraph graph(flow);
    EXPECT_FALSE(analysis::lint_flow(flow, graph).has("RF501"));
  }
}

// -------------------------------------------------------------- CLI --------

int run_cli(std::initializer_list<const char*> args, std::string* out_text) {
  std::vector<const char*> argv{"rioflow"};
  argv.insert(argv.end(), args.begin(), args.end());
  cli::Options o;
  std::string error;
  if (!cli::parse(static_cast<int>(argv.size()), argv.data(), o, error))
    return -1;
  std::ostringstream out, err;
  const int rc = cli::run(o, out, err);
  if (out_text) *out_text = out.str() + err.str();
  return rc;
}

TEST(CliOptimize, VerifiesAndReportsOnARealEngine) {
  std::string text;
  EXPECT_EQ(run_cli({"optimize", "--workload", "chain", "--tasks", "32",
                     "--task-size", "5", "--engine", "rio", "--passes",
                     "fuse,map", "--report"},
                    &text),
            0)
      << text;
  EXPECT_NE(text.find("verification: optimized ok, unoptimized ok"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("fuse"), std::string::npos) << text;
}

TEST(CliOptimize, EmitsSchemaValidJson) {
  const std::string path = "flowpass_optimize_test.json";
  std::string text;
  EXPECT_EQ(run_cli({"optimize", "--workload", "chain", "--tasks", "32",
                     "--task-size", "5", "--engine", "sim", "--tune",
                     "--passes", "fuse,map", "--json", path.c_str()},
                    &text),
            0)
      << text;
  std::ifstream f(path);
  ASSERT_TRUE(f.good());
  std::stringstream buf;
  buf << f.rdbuf();
  support::JsonValue doc;
  std::string error;
  ASSERT_TRUE(support::json_parse(buf.str(), doc, error)) << error;
  ASSERT_NE(doc.find("schema"), nullptr);
  EXPECT_EQ(doc.find("schema")->str_or(""), "rio.optimize.v1");
  // Alias resolved to the canonical engine name.
  ASSERT_NE(doc.find("engine"), nullptr);
  EXPECT_EQ(doc.find("engine")->str_or(""), "sim-rio");
  ASSERT_NE(doc.find("passes"), nullptr);
  EXPECT_EQ(doc.find("passes")->items.size(), 2u);
  const support::JsonValue& map_pass = doc.find("passes")->items[1];
  ASSERT_NE(map_pass.find("tuning"), nullptr);
  EXPECT_FALSE(map_pass.find("tuning")->items.empty());
  // Tuned winner must not regress the identity baseline (virtual ticks).
  ASSERT_NE(doc.find("optimized_makespan"), nullptr);
  ASSERT_NE(doc.find("unoptimized_makespan"), nullptr);
  EXPECT_LE(doc.find("optimized_makespan")->num_or(1e18),
            doc.find("unoptimized_makespan")->num_or(0));
  std::remove(path.c_str());
}

TEST(CliOptimize, UnknownPassIsAConfigError) {
  std::string text;
  EXPECT_EQ(run_cli({"optimize", "--passes", "bogus", "--workload", "chain",
                     "--tasks", "8"},
                    &text),
            1);
  EXPECT_NE(text.find("unknown pass 'bogus'"), std::string::npos) << text;
}

TEST(CliOptimize, EngineEnvDefaultAndAliasParse) {
  cli::Options o;
  std::string error;
  const char* argv[] = {"rioflow", "optimize", "--engine", "pruned"};
  ASSERT_TRUE(cli::parse(4, argv, o, error)) << error;
  EXPECT_TRUE(o.engine_given);
  EXPECT_EQ(o.engine, "pruned");
}

}  // namespace
