// Unit tests for the support substrate.
#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <sstream>
#include <thread>

#include "support/align.hpp"
#include "support/clock.hpp"
#include "support/format.hpp"
#include "support/inline_vec.hpp"
#include "support/rng.hpp"
#include "support/stats.hpp"
#include "support/wait.hpp"

namespace {

using namespace rio::support;

// ---------------------------------------------------------------- align ----

TEST(Align, CacheAlignedIsolatesLines) {
  AlignedAtomic<std::uint64_t> arr[4];
  for (int i = 0; i < 4; ++i) arr[i].value.store(i);
  for (int i = 1; i < 4; ++i) {
    const auto a = reinterpret_cast<std::uintptr_t>(&arr[i - 1]);
    const auto b = reinterpret_cast<std::uintptr_t>(&arr[i]);
    EXPECT_GE(b - a, kCacheLineSize);
    EXPECT_EQ(b % kCacheLineSize, 0u);
  }
}

// ------------------------------------------------------------------ rng ----

TEST(Rng, DeterministicForEqualSeeds) {
  Xoshiro256 a(123), b(123);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Xoshiro256 a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a() == b());
  EXPECT_LT(same, 3);
}

TEST(Rng, BoundedStaysInRange) {
  Xoshiro256 rng(7);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(rng.bounded(17), 17u);
}

TEST(Rng, BoundedCoversAllResidues) {
  Xoshiro256 rng(9);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(rng.bounded(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, UniformInUnitInterval) {
  Xoshiro256 rng(11);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, BoundedZeroIsZero) {
  Xoshiro256 rng(3);
  EXPECT_EQ(rng.bounded(0), 0u);
  EXPECT_EQ(rng.bounded(1), 0u);
}

// ----------------------------------------------------------------- wait ----

class WaitPolicyTest : public ::testing::TestWithParam<WaitPolicy> {};

TEST_P(WaitPolicyTest, WaitObservesCrossThreadStore) {
  std::atomic<std::uint64_t> word{0};
  std::thread setter([&] {
    for (int i = 0; i < 100; ++i) cpu_pause();
    store_and_notify<std::uint64_t>(word, 42, GetParam());
  });
  wait_until_equal<std::uint64_t>(word, 42, GetParam());
  EXPECT_EQ(word.load(), 42u);
  setter.join();
}

TEST_P(WaitPolicyTest, AlreadySatisfiedReturnsImmediately) {
  std::atomic<std::uint64_t> word{7};
  wait_until_equal<std::uint64_t>(word, 7, GetParam());
  EXPECT_EQ(word.load(), 7u);
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, WaitPolicyTest,
                         ::testing::Values(WaitPolicy::kSpin,
                                           WaitPolicy::kSpinYield,
                                           WaitPolicy::kBlock),
                         [](const auto& i) {
                           const std::string name = to_string(i.param);
                           return name == "spin"         ? "Spin"
                                  : name == "spin-yield" ? "SpinYield"
                                                         : "Block";
                         });

TEST(Backoff, SpinPhaseEventuallyEnds) {
  Backoff b;
  int rounds = 0;
  while (b.spin()) ++rounds;
  EXPECT_GT(rounds, 0);
  EXPECT_LT(rounds, 64);
  b.reset();
  EXPECT_TRUE(b.spin());
}

// ------------------------------------------------------------ inline_vec ---

TEST(InlineVec, StaysInlineUpToN) {
  InlineVec<int, 4> v;
  for (int i = 0; i < 4; ++i) v.push_back(i);
  EXPECT_TRUE(v.is_inline());
  EXPECT_EQ(v.size(), 4u);
}

TEST(InlineVec, SpillsToHeapBeyondN) {
  InlineVec<int, 4> v;
  for (int i = 0; i < 9; ++i) v.push_back(i);
  EXPECT_FALSE(v.is_inline());
  for (int i = 0; i < 9; ++i) EXPECT_EQ(v[i], i);
}

TEST(InlineVec, CopyPreservesContents) {
  InlineVec<std::string, 2> v{"a", "b", "c"};
  InlineVec<std::string, 2> w(v);
  ASSERT_EQ(w.size(), 3u);
  EXPECT_EQ(w[0], "a");
  EXPECT_EQ(w[2], "c");
  EXPECT_EQ(v.size(), 3u);  // source untouched
}

TEST(InlineVec, MoveStealsHeapBuffer) {
  InlineVec<int, 2> v;
  for (int i = 0; i < 10; ++i) v.push_back(i);
  const int* buf = v.data();
  InlineVec<int, 2> w(std::move(v));
  EXPECT_EQ(w.data(), buf);
  EXPECT_EQ(w.size(), 10u);
  EXPECT_TRUE(v.empty());
}

TEST(InlineVec, MoveInlineCopiesElements) {
  InlineVec<std::string, 4> v{"x", "y"};
  InlineVec<std::string, 4> w(std::move(v));
  ASSERT_EQ(w.size(), 2u);
  EXPECT_EQ(w[0], "x");
}

TEST(InlineVec, InitializerListAndIteration) {
  InlineVec<int, 4> v{1, 2, 3};
  int sum = 0;
  for (int x : v) sum += x;
  EXPECT_EQ(sum, 6);
}

TEST(InlineVec, ClearDestroysAndReusable) {
  InlineVec<std::string, 2> v{"hello", "world", "spill"};
  v.clear();
  EXPECT_TRUE(v.empty());
  v.push_back("again");
  EXPECT_EQ(v[0], "again");
}

TEST(InlineVec, CopyAssignReplaces) {
  InlineVec<int, 2> a{1, 2, 3};
  InlineVec<int, 2> b{9};
  b = a;
  ASSERT_EQ(b.size(), 3u);
  EXPECT_EQ(b[2], 3);
}

// ---------------------------------------------------------------- stats ----

TEST(Stats, BucketsSumAndAdd) {
  TimeBuckets a{10, 20, 30};
  TimeBuckets b{1, 2, 3};
  EXPECT_EQ(a.total(), 60u);
  const TimeBuckets c = a + b;
  EXPECT_EQ(c.task_ns, 11u);
  EXPECT_EQ(c.idle_ns, 22u);
  EXPECT_EQ(c.runtime_ns, 33u);
}

TEST(Stats, RunStatsCumulative) {
  RunStats rs;
  rs.workers.resize(3);
  for (int w = 0; w < 3; ++w) {
    rs.workers[w].buckets = {100, 10, 1};
    rs.workers[w].tasks_executed = 5;
  }
  EXPECT_EQ(rs.cumulative().total(), 333u);
  EXPECT_EQ(rs.tasks_executed(), 15u);
  EXPECT_EQ(rs.num_workers(), 3u);
}

// ---------------------------------------------------------------- clock ----

TEST(Clock, MonotonicAdvances) {
  const auto a = monotonic_ns();
  const auto b = monotonic_ns();
  EXPECT_GE(b, a);
}

TEST(Clock, ScopedTimerAccumulates) {
  std::uint64_t sink = 0;
  {
    ScopedTimer t(sink);
    volatile int x = 0;
    for (int i = 0; i < 100000; ++i) x = i;
    (void)x;
  }
  EXPECT_GT(sink, 0u);
}

TEST(Clock, StopwatchElapsed) {
  Stopwatch sw;
  volatile int x = 0;
  for (int i = 0; i < 100000; ++i) x = i;
  (void)x;
  EXPECT_GT(sw.elapsed_ns(), 0u);
  EXPECT_NEAR(sw.elapsed_s(), static_cast<double>(sw.elapsed_ns()) * 1e-9,
              1e-3);
}

// --------------------------------------------------------------- format ----

TEST(Format, TableAlignsAndCounts) {
  Table t({"name", "value"});
  t.row().str("alpha").num(1.5, 2);
  t.row().str("b").integer(42);
  EXPECT_EQ(t.num_rows(), 2u);
  std::ostringstream os;
  t.print(os);
  const std::string s = os.str();
  EXPECT_NE(s.find("alpha"), std::string::npos);
  EXPECT_NE(s.find("1.50"), std::string::npos);
  EXPECT_NE(s.find("42"), std::string::npos);
}

TEST(Format, CsvEmitsHeaderAndRows) {
  Table t({"a", "b"});
  t.row().integer(1).integer(2);
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "a,b\n1,2\n");
}

TEST(Format, DurationUnits) {
  EXPECT_EQ(format_duration_ns(500), "500.00 ns");
  EXPECT_EQ(format_duration_ns(1500), "1.50 us");
  EXPECT_EQ(format_duration_ns(2.5e6), "2.50 ms");
  EXPECT_EQ(format_duration_ns(3.2e9), "3.20 s");
}

}  // namespace
