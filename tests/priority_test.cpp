// Tests for critical-path priorities: bottom levels, the prioritized ready
// queue, and the kPriority scheduler end to end.
#include <gtest/gtest.h>

#include "coor/coor.hpp"
#include "stf/stf.hpp"
#include <array>
#include <atomic>
#include "workloads/workloads.hpp"

namespace {

using namespace rio;

// ---------------------------------------------------------- bottom levels --

TEST(BottomLevels, ChainDecreasesTowardsSink) {
  stf::TaskFlow flow;
  auto d = flow.create_data<int>("d");
  for (int i = 0; i < 4; ++i) flow.add_virtual(10, {stf::readwrite(d)});
  stf::DependencyGraph g(flow);
  const auto levels = g.bottom_levels(flow);
  EXPECT_EQ(levels, (std::vector<std::uint64_t>{40, 30, 20, 10}));
}

TEST(BottomLevels, IndependentTasksAllEqual) {
  stf::TaskFlow flow;
  for (int i = 0; i < 5; ++i) flow.add_virtual(7, {});
  stf::DependencyGraph g(flow);
  for (auto v : g.bottom_levels(flow)) EXPECT_EQ(v, 7u);
}

TEST(BottomLevels, RootOfDiamondSeesLongestBranch) {
  // t0 -> {t1 (cost 100), t2 (cost 1)} -> t3.
  stf::TaskFlow flow;
  auto a = flow.create_data<int>("a");
  auto b = flow.create_data<int>("b");
  auto c = flow.create_data<int>("c");
  flow.add_virtual(1, {stf::write(a)});                      // t0
  flow.add_virtual(100, {stf::read(a), stf::write(b)});      // t1
  flow.add_virtual(1, {stf::read(a), stf::write(c)});        // t2
  flow.add_virtual(1, {stf::read(b), stf::read(c)});         // t3
  stf::DependencyGraph g(flow);
  const auto levels = g.bottom_levels(flow);
  EXPECT_EQ(levels[0], 102u);  // 1 + 100 + 1
  EXPECT_EQ(levels[1], 101u);
  EXPECT_EQ(levels[2], 2u);
  EXPECT_EQ(levels[3], 1u);
}

TEST(BottomLevels, MatchesCriticalPathAtRoots) {
  workloads::LuDagSpec spec;
  spec.row_tiles = 4;
  spec.col_tiles = 4;
  spec.task_cost = 10;
  auto wl = workloads::make_lu_dag(spec);
  stf::DependencyGraph g(wl.flow);
  const auto levels = g.bottom_levels(wl.flow);
  std::uint64_t best = 0;
  for (auto v : levels) best = std::max(best, v);
  EXPECT_EQ(best, g.critical_path_cost(wl.flow));
}

// ------------------------------------------------------- priority queue ----

TEST(PriorityQueue, PopsHighestPriorityFirst) {
  coor::ReadyQueue q(/*prioritized=*/true);
  q.push(1, false, 5);
  q.push(2, false, 50);
  q.push(3, false, 10);
  EXPECT_EQ(q.pop().value(), 2u);
  EXPECT_EQ(q.pop().value(), 3u);
  EXPECT_EQ(q.pop().value(), 1u);
}

TEST(PriorityQueue, FifoAmongEqualPriorities) {
  coor::ReadyQueue q(true);
  for (stf::TaskId t = 0; t < 5; ++t) q.push(t, false, 7);
  for (stf::TaskId t = 0; t < 5; ++t) EXPECT_EQ(q.pop().value(), t);
}

TEST(PriorityQueue, StealGetsBestEntryToo) {
  coor::ReadyQueue q(true);
  q.push(1, false, 1);
  q.push(2, false, 9);
  EXPECT_EQ(q.try_steal().value(), 2u);
}

TEST(PriorityQueue, CloseDrains) {
  coor::ReadyQueue q(true);
  q.push(4, false, 0);
  q.close();
  EXPECT_EQ(q.pop().value(), 4u);
  EXPECT_FALSE(q.pop().has_value());
}

// --------------------------------------------------------- end to end ------

TEST(PriorityScheduler, ExecutesAllAndRespectsDeps) {
  workloads::LuDagSpec spec;
  spec.row_tiles = 5;
  spec.col_tiles = 5;
  spec.task_cost = 100;
  auto wl = workloads::make_lu_dag(spec);
  stf::DependencyGraph g(wl.flow);
  const auto levels = g.bottom_levels(wl.flow);
  for (stf::TaskId t = 0; t < wl.flow.num_tasks(); ++t)
    wl.flow.set_priority(t, static_cast<std::int32_t>(levels[t]));

  coor::Runtime rt(coor::Config{.num_workers = 3,
                                .scheduler = coor::SchedulerKind::kPriority,
                                .collect_trace = true,
                                .enable_guard = true});
  const auto stats = rt.run(wl.flow);
  EXPECT_EQ(stats.tasks_executed(), wl.flow.num_tasks());
  const auto v = rt.trace().validate(wl.flow, g, false);
  EXPECT_TRUE(v.ok()) << v.reason;
}

TEST(PriorityScheduler, CriticalTaskJumpsTheQueue) {
  // Single worker. Task 0 is long, so tasks 1..9 (independent, no data)
  // pile up in the ready pool while it runs; task 9 carries the highest
  // priority and must be popped right after task 0 despite being
  // submitted last.
  stf::TaskFlow flow;
  std::atomic<std::uint64_t> counter{0};
  std::array<std::uint64_t, 10> slot{};
  for (std::uint64_t i = 0; i < 10; ++i) {
    flow.add("t" + std::to_string(i),
             [&counter, &slot, i](stf::TaskContext&) {
               if (i == 0) workloads::counter_kernel(20'000'000);  // ~10 ms
               slot[i] = counter.fetch_add(1);
             },
             {});
    flow.set_priority(i, i == 9 ? 100 : 0);
  }
  coor::Runtime rt(coor::Config{.num_workers = 1,
                                .scheduler = coor::SchedulerKind::kPriority});
  rt.run(flow);
  // Task 9 runs first or second (the worker may have grabbed task 0 before
  // task 9 was discovered); every plain task except possibly task 0 runs
  // after it.
  EXPECT_LE(slot[9], 1u) << "high-priority task must jump the queue";
  for (std::uint64_t i = 1; i < 9; ++i) EXPECT_GT(slot[i], slot[9]) << i;
}

}  // namespace
