// Tests for the explicit-state model checker: tiny hand-checked state
// spaces, the Appendix-B properties on the paper's LU instances, and
// negative cases (a broken "execution model" must be caught).
#include <gtest/gtest.h>

#include "modelcheck/spec.hpp"
#include "workloads/lu.hpp"

namespace {

using namespace rio;
using mc::check_run_in_order;
using mc::check_stf;

stf::TaskFlow lu_flow(std::uint32_t rt, std::uint32_t ct) {
  workloads::LuDagSpec spec;
  spec.row_tiles = rt;
  spec.col_tiles = ct;
  spec.body = workloads::BodyKind::kNone;
  return std::move(workloads::make_lu_dag(spec).flow);
}

// ------------------------------------------------------- tiny state spaces -

TEST(StfModel, SingleTaskTwoWorkers) {
  stf::TaskFlow flow;
  flow.add_virtual(1, {});
  const auto r = check_stf(flow, 2);
  EXPECT_TRUE(r.ok()) << r.violation;
  // States: init; w0 or w1 executing; done. = 4 distinct.
  EXPECT_EQ(r.distinct_states, 4u);
  EXPECT_EQ(r.terminal_states, 1u);
}

TEST(StfModel, TwoIndependentTasksInterleaveFreely) {
  stf::TaskFlow flow;
  flow.add_virtual(1, {});
  flow.add_virtual(1, {});
  const auto r1 = check_stf(flow, 1);
  const auto r2 = check_stf(flow, 2);
  EXPECT_TRUE(r1.ok());
  EXPECT_TRUE(r2.ok());
  // More workers, more interleavings.
  EXPECT_GT(r2.distinct_states, r1.distinct_states);
}

TEST(StfModel, ChainHasLinearStateSpace) {
  stf::TaskFlow flow;
  auto d = flow.create_data<int>("d");
  for (int i = 0; i < 5; ++i) flow.add_virtual(1, {stf::readwrite(d)});
  const auto r = check_stf(flow, 2);
  EXPECT_TRUE(r.ok()) << r.violation;
  // A chain admits no concurrency: per step only (executing by w0/w1) and
  // idle states: 1 + 5*(2+1) states... exact: init + per task (2 active
  // variants + 1 terminated) = 1 + 5*3 = 16? Enumerate: between task i and
  // i+1 there is exactly one 'all idle' state. States: all-idle x6 + active
  // x(5 tasks x 2 workers) = 16.
  EXPECT_EQ(r.distinct_states, 16u);
}

TEST(RioModel, ChainOnTwoWorkersIsDeterministic) {
  stf::TaskFlow flow;
  auto d = flow.create_data<int>("d");
  for (int i = 0; i < 5; ++i) flow.add_virtual(1, {stf::readwrite(d)});
  const auto r = check_run_in_order(flow, 2, rt::mapping::round_robin(2));
  EXPECT_TRUE(r.ok()) << r.violation;
  // In-order + fixed mapping: exactly one execution: 11 states
  // (init + execute/terminate alternation per task).
  EXPECT_EQ(r.distinct_states, 11u);
  EXPECT_EQ(r.terminal_states, 1u);
}

TEST(RioModel, FewerBehavioursThanStf) {
  const auto flow_size = [](std::uint32_t rt, std::uint32_t ct) {
    auto flow = lu_flow(rt, ct);
    const auto stf_r = check_stf(flow, 2);
    const auto rio_r =
        check_run_in_order(flow, 2, rt::mapping::round_robin(2));
    EXPECT_TRUE(stf_r.ok());
    EXPECT_TRUE(rio_r.ok()) << rio_r.violation;
    // The in-order model restricts executions: fewer distinct states.
    EXPECT_LT(rio_r.distinct_states, stf_r.distinct_states);
  };
  flow_size(2, 2);
  flow_size(3, 2);
}

// ------------------------------------------------ the Table 1 instances ----

TEST(Table1, Lu2x2Properties) {
  auto flow = lu_flow(2, 2);
  // k=0: getrf + trsm_u + trsm_l + gemm (4); k=1: getrf (1).
  EXPECT_EQ(flow.num_tasks(), 5u);
  EXPECT_EQ(workloads::lu_dag_task_count(2, 2), 5u);
  const auto stf_r = check_stf(flow, 2);
  EXPECT_TRUE(stf_r.ok()) << stf_r.violation;
  const auto rio_r = check_run_in_order(flow, 2, rt::mapping::round_robin(2));
  EXPECT_TRUE(rio_r.ok()) << rio_r.violation;
}

TEST(Table1, Lu3x2Properties) {
  auto flow = lu_flow(3, 2);
  const auto stf_r = check_stf(flow, 2);
  EXPECT_TRUE(stf_r.ok()) << stf_r.violation;
  const auto rio_r = check_run_in_order(flow, 2, rt::mapping::round_robin(2));
  EXPECT_TRUE(rio_r.ok()) << rio_r.violation;
  // Exponential growth vs 2x2, as in Table 1.
  const auto small = check_stf(lu_flow(2, 2), 2);
  EXPECT_GT(stf_r.generated_states, small.generated_states);
}

// ----------------------------------------------------------- negative ------

TEST(Property, AnyMappingIsDeadlockFree) {
  // Because every worker walks its share in global flow order and
  // dependencies only point backwards, the RunInOrder model is deadlock-
  // free for EVERY mapping — a key soundness property of the paper's
  // model. Sweep a few adversarial mappings over a dependency-heavy flow.
  auto flow = lu_flow(3, 3);
  const auto n = flow.num_tasks();
  for (std::uint64_t variant = 0; variant < 6; ++variant) {
    std::vector<stf::WorkerId> owners(n);
    for (std::size_t t = 0; t < n; ++t)
      owners[t] = static_cast<stf::WorkerId>((t * (variant + 1) + variant) % 2);
    const auto r =
        check_run_in_order(flow, 2, rt::mapping::table(owners), true, 500'000);
    EXPECT_TRUE(r.ok()) << "variant " << variant << ": " << r.violation;
  }
}

TEST(Negative, TruncationReported) {
  auto flow = lu_flow(3, 3);
  const auto r = check_stf(flow, 2, /*max_states=*/100);
  EXPECT_TRUE(r.truncated);
  EXPECT_FALSE(r.ok());
}

TEST(Checker, GeneratedAtLeastDistinct) {
  auto flow = lu_flow(2, 2);
  const auto r = check_stf(flow, 2);
  EXPECT_GE(r.generated_states, r.distinct_states - 1);
}

}  // namespace
