// Tests for the explicit-state model checker: tiny hand-checked state
// spaces, the Appendix-B properties on the paper's LU instances, and
// negative cases (a broken "execution model" must be caught).
#include <gtest/gtest.h>

#include <string>

#include "support/wait.hpp"
#include "rio/mapping.hpp"
#include "modelcheck/impl.hpp"
#include "modelcheck/spec.hpp"
#include "workloads/lu.hpp"

namespace {

using namespace rio;
using mc::check_run_in_order;
using mc::check_stf;

stf::TaskFlow lu_flow(std::uint32_t rt, std::uint32_t ct) {
  workloads::LuDagSpec spec;
  spec.row_tiles = rt;
  spec.col_tiles = ct;
  spec.body = workloads::BodyKind::kNone;
  return std::move(workloads::make_lu_dag(spec).flow);
}

// ------------------------------------------------------- tiny state spaces -

TEST(StfModel, SingleTaskTwoWorkers) {
  stf::TaskFlow flow;
  flow.add_virtual(1, {});
  const auto r = check_stf(flow, 2);
  EXPECT_TRUE(r.ok()) << r.violation;
  // States: init; w0 or w1 executing; done. = 4 distinct.
  EXPECT_EQ(r.distinct_states, 4u);
  EXPECT_EQ(r.terminal_states, 1u);
}

TEST(StfModel, TwoIndependentTasksInterleaveFreely) {
  stf::TaskFlow flow;
  flow.add_virtual(1, {});
  flow.add_virtual(1, {});
  const auto r1 = check_stf(flow, 1);
  const auto r2 = check_stf(flow, 2);
  EXPECT_TRUE(r1.ok());
  EXPECT_TRUE(r2.ok());
  // More workers, more interleavings.
  EXPECT_GT(r2.distinct_states, r1.distinct_states);
}

TEST(StfModel, ChainHasLinearStateSpace) {
  stf::TaskFlow flow;
  auto d = flow.create_data<int>("d");
  for (int i = 0; i < 5; ++i) flow.add_virtual(1, {stf::readwrite(d)});
  const auto r = check_stf(flow, 2);
  EXPECT_TRUE(r.ok()) << r.violation;
  // A chain admits no concurrency: per step only (executing by w0/w1) and
  // idle states: 1 + 5*(2+1) states... exact: init + per task (2 active
  // variants + 1 terminated) = 1 + 5*3 = 16? Enumerate: between task i and
  // i+1 there is exactly one 'all idle' state. States: all-idle x6 + active
  // x(5 tasks x 2 workers) = 16.
  EXPECT_EQ(r.distinct_states, 16u);
}

TEST(RioModel, ChainOnTwoWorkersIsDeterministic) {
  stf::TaskFlow flow;
  auto d = flow.create_data<int>("d");
  for (int i = 0; i < 5; ++i) flow.add_virtual(1, {stf::readwrite(d)});
  const auto r = check_run_in_order(flow, 2, rt::mapping::round_robin(2));
  EXPECT_TRUE(r.ok()) << r.violation;
  // In-order + fixed mapping: exactly one execution: 11 states
  // (init + execute/terminate alternation per task).
  EXPECT_EQ(r.distinct_states, 11u);
  EXPECT_EQ(r.terminal_states, 1u);
}

TEST(RioModel, FewerBehavioursThanStf) {
  const auto flow_size = [](std::uint32_t rt, std::uint32_t ct) {
    auto flow = lu_flow(rt, ct);
    const auto stf_r = check_stf(flow, 2);
    const auto rio_r =
        check_run_in_order(flow, 2, rt::mapping::round_robin(2));
    EXPECT_TRUE(stf_r.ok());
    EXPECT_TRUE(rio_r.ok()) << rio_r.violation;
    // The in-order model restricts executions: fewer distinct states.
    EXPECT_LT(rio_r.distinct_states, stf_r.distinct_states);
  };
  flow_size(2, 2);
  flow_size(3, 2);
}

// ------------------------------------------------ the Table 1 instances ----

TEST(Table1, Lu2x2Properties) {
  auto flow = lu_flow(2, 2);
  // k=0: getrf + trsm_u + trsm_l + gemm (4); k=1: getrf (1).
  EXPECT_EQ(flow.num_tasks(), 5u);
  EXPECT_EQ(workloads::lu_dag_task_count(2, 2), 5u);
  const auto stf_r = check_stf(flow, 2);
  EXPECT_TRUE(stf_r.ok()) << stf_r.violation;
  const auto rio_r = check_run_in_order(flow, 2, rt::mapping::round_robin(2));
  EXPECT_TRUE(rio_r.ok()) << rio_r.violation;
}

TEST(Table1, Lu3x2Properties) {
  auto flow = lu_flow(3, 2);
  const auto stf_r = check_stf(flow, 2);
  EXPECT_TRUE(stf_r.ok()) << stf_r.violation;
  const auto rio_r = check_run_in_order(flow, 2, rt::mapping::round_robin(2));
  EXPECT_TRUE(rio_r.ok()) << rio_r.violation;
  // Exponential growth vs 2x2, as in Table 1.
  const auto small = check_stf(lu_flow(2, 2), 2);
  EXPECT_GT(stf_r.generated_states, small.generated_states);
}

// ----------------------------------------------------------- negative ------

TEST(Property, AnyMappingIsDeadlockFree) {
  // Because every worker walks its share in global flow order and
  // dependencies only point backwards, the RunInOrder model is deadlock-
  // free for EVERY mapping — a key soundness property of the paper's
  // model. Sweep a few adversarial mappings over a dependency-heavy flow.
  auto flow = lu_flow(3, 3);
  const auto n = flow.num_tasks();
  for (std::uint64_t variant = 0; variant < 6; ++variant) {
    std::vector<stf::WorkerId> owners(n);
    for (std::size_t t = 0; t < n; ++t)
      owners[t] = static_cast<stf::WorkerId>((t * (variant + 1) + variant) % 2);
    const auto r =
        check_run_in_order(flow, 2, rt::mapping::table(owners), true, 500'000);
    EXPECT_TRUE(r.ok()) << "variant " << variant << ": " << r.violation;
  }
}

TEST(Negative, TruncationReported) {
  auto flow = lu_flow(3, 3);
  const auto r = check_stf(flow, 2, /*max_states=*/100);
  EXPECT_TRUE(r.truncated);
  EXPECT_FALSE(r.ok());
}

TEST(Checker, GeneratedAtLeastDistinct) {
  auto flow = lu_flow(2, 2);
  const auto r = check_stf(flow, 2);
  EXPECT_GE(r.generated_states, r.distinct_states - 1);
}

// --------------------------------------------- implementation-level checks -
//
// mc::impl runs the REAL protocol templates (data_object.hpp / pruning /
// coor sync_ops) under a controlled scheduler. These tests pin down: clean
// protocols verify on every engine, DPOR agrees with naive enumeration
// while exploring less, and a deliberately broken shim (dropped notify) is
// caught with a deterministically replayable witness.

stf::TaskFlow chain_flow(int n) {
  stf::TaskFlow flow;
  auto d = flow.create_data<int>("d");
  for (int i = 0; i < n; ++i) flow.add_virtual(1, {stf::readwrite(d)});
  return flow;
}

stf::TaskFlow fork_join_flow() {
  stf::TaskFlow flow;
  auto a = flow.create_data<int>("a");
  flow.add_virtual(1, {stf::write(a)});   // 0: producer
  flow.add_virtual(1, {stf::read(a)});    // 1: reader
  flow.add_virtual(1, {stf::read(a)});    // 2: reader
  flow.add_virtual(1, {stf::write(a)});   // 3: joins after both reads
  return flow;
}

stf::TaskFlow independent_flow(int n) {
  stf::TaskFlow flow;
  for (int i = 0; i < n; ++i) {
    auto d = flow.create_data<int>("d" + std::to_string(i));
    flow.add_virtual(1, {stf::readwrite(d)});
  }
  return flow;
}

mc::impl::Options impl_opts(mc::impl::EngineKind engine,
                            support::WaitPolicy policy) {
  mc::impl::Options o;
  o.engine = engine;
  o.workers = 2;
  o.policy = policy;
  return o;
}

TEST(ImplModel, CleanProtocolVerifiesOnEveryEngine) {
  const auto flow = fork_join_flow();
  const auto mapping = rt::mapping::round_robin(2);
  for (auto engine : {mc::impl::EngineKind::kRio,
                      mc::impl::EngineKind::kRioPruned,
                      mc::impl::EngineKind::kCoor}) {
    for (auto policy :
         {support::WaitPolicy::kSpin, support::WaitPolicy::kBlock}) {
      const auto r =
          mc::impl::verify(flow, mapping, impl_opts(engine, policy));
      EXPECT_TRUE(r.ok()) << mc::impl::to_string(engine) << "/"
                          << support::to_string(policy) << ": ["
                          << r.violation_kind << "] " << r.violation;
      EXPECT_GE(r.explored, 1u);
      EXPECT_FALSE(r.truncated);
    }
  }
}

TEST(ImplModel, DporAndNaiveAgreeAndDporExploresNoMore) {
  const auto mapping = rt::mapping::round_robin(2);
  const stf::TaskFlow flows[] = {chain_flow(3), fork_join_flow(),
                                 independent_flow(3)};
  for (const auto& flow : flows) {
    auto opts = impl_opts(mc::impl::EngineKind::kRio,
                          support::WaitPolicy::kSpin);
    const auto dpor = mc::impl::verify(flow, mapping, opts);
    opts.dpor = false;
    const auto naive = mc::impl::verify(flow, mapping, opts);
    EXPECT_EQ(dpor.ok(), naive.ok())
        << dpor.violation << " vs " << naive.violation;
    EXPECT_FALSE(naive.truncated);
    EXPECT_LE(dpor.explored, naive.explored);
  }
}

TEST(ImplModel, DporAndNaiveAgreeOnCoor) {
  // COOR runs a master thread plus workers and models its per-node locks
  // and the ready queue, so its naive interleaving space explodes much
  // faster than RIO's: compare against naive on the smallest non-trivial
  // configuration only (one worker + master, two-task flows).
  const auto mapping = rt::mapping::round_robin(1);
  const stf::TaskFlow flows[] = {chain_flow(2), independent_flow(2)};
  for (const auto& flow : flows) {
    auto opts = impl_opts(mc::impl::EngineKind::kCoor,
                          support::WaitPolicy::kSpin);
    opts.workers = 1;
    const auto dpor = mc::impl::verify(flow, mapping, opts);
    opts.dpor = false;
    const auto naive = mc::impl::verify(flow, mapping, opts);
    EXPECT_EQ(dpor.ok(), naive.ok())
        << dpor.violation << " vs " << naive.violation;
    EXPECT_FALSE(naive.truncated);
    EXPECT_LE(dpor.explored, naive.explored);
  }
}

TEST(ImplModel, DporPrunesIndependentTasks) {
  // Fully independent tasks commute; DPOR should collapse most of the
  // naive interleaving space.
  const auto flow = independent_flow(3);
  const auto mapping = rt::mapping::round_robin(2);
  auto opts = impl_opts(mc::impl::EngineKind::kRio,
                        support::WaitPolicy::kSpin);
  const auto dpor = mc::impl::verify(flow, mapping, opts);
  opts.dpor = false;
  const auto naive = mc::impl::verify(flow, mapping, opts);
  EXPECT_TRUE(dpor.ok()) << dpor.violation;
  EXPECT_TRUE(naive.ok()) << naive.violation;
  EXPECT_LT(dpor.explored, naive.explored);
}

TEST(ImplModel, PreemptionBoundShrinksExploration) {
  const auto flow = chain_flow(4);
  const auto mapping = rt::mapping::round_robin(2);
  auto opts = impl_opts(mc::impl::EngineKind::kRio,
                        support::WaitPolicy::kSpin);
  const auto unbounded = mc::impl::verify(flow, mapping, opts);
  opts.max_preemptions = 1;
  const auto bounded = mc::impl::verify(flow, mapping, opts);
  EXPECT_TRUE(unbounded.ok()) << unbounded.violation;
  EXPECT_TRUE(bounded.ok()) << bounded.violation;
  EXPECT_LE(bounded.explored, unbounded.explored);
}

TEST(ImplModel, WaitFreeRingVerifiesOnCoor) {
  // --queue ring swaps the one-step locked-queue abstraction for the real
  // ReadyRingT code (CAS slot claims, per-slot sequence words, the
  // version+waiters doorbell pair) instantiated on the instrumented word
  // type. Small flows + one worker keep the space exhaustible.
  const auto mapping = rt::mapping::round_robin(1);
  const stf::TaskFlow flows[] = {chain_flow(2), independent_flow(2)};
  for (const auto& flow : flows) {
    for (auto policy :
         {support::WaitPolicy::kSpin, support::WaitPolicy::kBlock}) {
      auto opts = impl_opts(mc::impl::EngineKind::kCoor, policy);
      opts.workers = 1;
      opts.queue = coor::QueueKind::kRing;
      const auto r = mc::impl::verify(flow, mapping, opts);
      EXPECT_TRUE(r.ok()) << support::to_string(policy) << ": ["
                          << r.violation_kind << "] " << r.violation;
      EXPECT_GE(r.explored, 1u);
      EXPECT_FALSE(r.truncated);
    }
  }
}

TEST(ImplModel, WaitFreeRingTwoWorkersWithinBudget) {
  // Two consumers racing CAS claims on the same ring: bounded exploration
  // must stay violation-free (ok() holds even if the budget truncates).
  const auto flow = independent_flow(2);
  const auto mapping = rt::mapping::round_robin(2);
  auto opts = impl_opts(mc::impl::EngineKind::kCoor,
                        support::WaitPolicy::kBlock);
  opts.queue = coor::QueueKind::kRing;
  opts.max_interleavings = 300;
  const auto r = mc::impl::verify(flow, mapping, opts);
  EXPECT_TRUE(r.ok()) << "[" << r.violation_kind << "] " << r.violation;
  EXPECT_GE(r.explored, 1u);
}

TEST(ImplModel, DroppedNotifyOnRingIsCaughtAsLostWakeup) {
  // Ring doorbell pair: push bumps the version word and must notify a
  // parked consumer. With notifies dropped, a consumer that parks before
  // the push never wakes — the checker must catch it and the witness must
  // replay to the identical violation.
  const auto flow = chain_flow(2);
  const auto mapping = rt::mapping::round_robin(1);
  auto opts = impl_opts(mc::impl::EngineKind::kCoor,
                        support::WaitPolicy::kBlock);
  opts.workers = 1;
  opts.queue = coor::QueueKind::kRing;
  opts.drop_notify = true;
  const auto r = mc::impl::verify(flow, mapping, opts);
  ASSERT_FALSE(r.ok());
  EXPECT_FALSE(r.lost_wakeup_free);
  EXPECT_EQ(r.violation_kind, "lost-wakeup");
  ASSERT_FALSE(r.witness.empty());

  const auto replay1 = mc::impl::replay(flow, mapping, opts, r.witness);
  const auto replay2 = mc::impl::replay(flow, mapping, opts, r.witness);
  EXPECT_EQ(replay1.violation_kind, "lost-wakeup");
  EXPECT_EQ(replay1.violation, r.violation);
  EXPECT_EQ(replay2.violation, replay1.violation);
  EXPECT_EQ(replay2.steps, replay1.steps);
}

TEST(ImplModel, DroppedNotifyIsCaughtWithReplayableWitness) {
  // Broken shim: proto::notify becomes a no-op, so under the block policy
  // a waiter that parks before the publish never wakes. Since the doorbell
  // rewrite kRio+kBlock parks on per-worker bells, so this pins the
  // doorbell path: a completer whose ring_doorbell wake is dropped leaves
  // the parked peer stuck. The checker must find the lost wakeup and hand
  // back a schedule that replays to the same violation, deterministically.
  const auto flow = chain_flow(3);
  const auto mapping = rt::mapping::round_robin(2);
  auto opts = impl_opts(mc::impl::EngineKind::kRio,
                        support::WaitPolicy::kBlock);
  opts.drop_notify = true;
  const auto r = mc::impl::verify(flow, mapping, opts);
  ASSERT_FALSE(r.ok());
  EXPECT_FALSE(r.lost_wakeup_free);
  EXPECT_EQ(r.violation_kind, "lost-wakeup");
  ASSERT_FALSE(r.witness.empty());

  const auto replay1 = mc::impl::replay(flow, mapping, opts, r.witness);
  const auto replay2 = mc::impl::replay(flow, mapping, opts, r.witness);
  EXPECT_EQ(replay1.violation_kind, "lost-wakeup");
  EXPECT_EQ(replay1.violation, r.violation);
  EXPECT_EQ(replay2.violation, replay1.violation);
  EXPECT_EQ(replay2.steps, replay1.steps);
}

TEST(ImplModel, DroppedNotifyHarmlessUnderSpin) {
  // The same broken shim is invisible to spin waiting (no parking), so the
  // checker must stay quiet: the bug is policy-specific and the checker
  // must not over-report.
  const auto flow = chain_flow(3);
  const auto mapping = rt::mapping::round_robin(2);
  auto opts = impl_opts(mc::impl::EngineKind::kRio,
                        support::WaitPolicy::kSpin);
  opts.drop_notify = true;
  const auto r = mc::impl::verify(flow, mapping, opts);
  EXPECT_TRUE(r.ok()) << "[" << r.violation_kind << "] " << r.violation;
}

TEST(ImplModel, RecoveryVerifiesOnEveryEngine) {
  // Two-phase recovery model: the worker executing crash_task dies right
  // after its body (terminate never published), then the resumed evicted
  // configuration is explored exhaustively. Both phases must hold every
  // property on every engine.
  const auto flow = fork_join_flow();
  const auto mapping = rt::mapping::round_robin(2);
  for (auto engine : {mc::impl::EngineKind::kRio,
                      mc::impl::EngineKind::kRioPruned,
                      mc::impl::EngineKind::kCoor}) {
    auto opts = impl_opts(engine, support::WaitPolicy::kSpin);
    opts.recover = true;
    opts.crash_task = 1;  // one of the forked readers
    const auto r = mc::impl::verify(flow, mapping, opts);
    EXPECT_TRUE(r.ok()) << mc::impl::to_string(engine) << ": ["
                        << r.violation_kind << "] " << r.violation;
    EXPECT_GE(r.explored, 2u);  // at least one run per phase
    // Reachable frontiers when reader 1 crashes: {} , {0}, {0,2} — task 3
    // can never terminate before the crash point.
    EXPECT_EQ(r.frontiers, 3u) << mc::impl::to_string(engine);
    EXPECT_FALSE(r.truncated);
  }
}

TEST(ImplModel, RecoveryFrontiersFollowTheChainPrefixes) {
  // A chain serializes termination, so crashing task k admits exactly the
  // k prefixes {}, {0}, ..., {0..k-1} as capturable frontiers.
  const auto flow = chain_flow(5);
  const auto mapping = rt::mapping::round_robin(2);
  auto opts = impl_opts(mc::impl::EngineKind::kRio,
                        support::WaitPolicy::kSpin);
  opts.recover = true;
  opts.crash_task = 3;
  const auto r = mc::impl::verify(flow, mapping, opts);
  EXPECT_TRUE(r.ok()) << "[" << r.violation_kind << "] " << r.violation;
  EXPECT_EQ(r.frontiers, 4u);
}

TEST(ImplModel, RecoveryUnderBlockPolicyKeepsWakeupsSound) {
  // The crashed worker rings no further doorbells; phase 1 must classify
  // the survivors' parks as expected loss quiescence (no store happened),
  // while a genuinely dropped notify would still be flagged.
  const auto flow = chain_flow(4);
  const auto mapping = rt::mapping::round_robin(2);
  for (auto engine : {mc::impl::EngineKind::kRio,
                      mc::impl::EngineKind::kRioPruned,
                      mc::impl::EngineKind::kCoor}) {
    auto opts = impl_opts(engine, support::WaitPolicy::kBlock);
    opts.recover = true;
    opts.crash_task = 2;
    const auto r = mc::impl::verify(flow, mapping, opts);
    EXPECT_TRUE(r.ok()) << mc::impl::to_string(engine) << ": ["
                        << r.violation_kind << "] " << r.violation;
    EXPECT_TRUE(r.lost_wakeup_free);
  }
}

TEST(ImplModel, CleanWitnessReplayCompletes) {
  const auto flow = fork_join_flow();
  const auto mapping = rt::mapping::round_robin(2);
  const auto opts = impl_opts(mc::impl::EngineKind::kRioPruned,
                              support::WaitPolicy::kSpin);
  // Harvest a complete schedule by replaying an empty exploration first:
  // run verify, then re-execute nothing — instead build the schedule from
  // a fresh verify's behaviour being deterministic.
  const auto r = mc::impl::verify(flow, mapping, opts);
  EXPECT_TRUE(r.ok()) << r.violation;
  EXPECT_TRUE(r.witness.empty());  // no violation, no witness
}

}  // namespace
