// Tests for the RIO decentralized in-order runtime: Algorithm 1/2 protocol
// correctness, trace validity, streaming replay and task pruning.
//
// Every parallel assertion here runs on a potentially single-core host, so
// correctness must come from the protocol, not from scheduling luck; the
// yielding/blocking wait policies keep oversubscribed runs live.
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <numeric>

#include "rio/rio.hpp"
#include "stf/stf.hpp"
#include "workloads/workloads.hpp"

namespace {

using namespace rio;
using rio::rt::Config;
using rio::rt::Mapping;
using rio::rt::Runtime;
using rio::support::WaitPolicy;

// ------------------------------------------------------------- protocol ----

TEST(DataObject, DeclareTracksLocalState) {
  rt::LocalDataState local;
  rt::declare_read(local);
  rt::declare_read(local);
  EXPECT_EQ(local.nb_reads_since_write, 2u);
  rt::declare_write(local, 7);
  EXPECT_EQ(local.nb_reads_since_write, 0u);
  EXPECT_EQ(local.last_registered_write, 7u);
}

TEST(DataObject, FreshStatesAgree) {
  rt::SharedDataState shared;
  rt::LocalDataState local;
  // A read with no prior write must not block.
  EXPECT_FALSE(rt::get_read(shared, local, WaitPolicy::kSpin));
  EXPECT_FALSE(rt::get_write(shared, local, WaitPolicy::kSpin));
}

TEST(DataObject, TerminateWritePublishes) {
  rt::SharedDataState shared;
  rt::LocalDataState writer_local;
  rt::terminate_write(shared, writer_local, 3, WaitPolicy::kSpinYield);
  EXPECT_EQ(shared.last_executed_write.value.load(), 3u);
  EXPECT_EQ(shared.nb_reads_since_write.value.load(), 0u);
  EXPECT_EQ(writer_local.last_registered_write, 3u);

  // An observer that registered the same write passes immediately.
  rt::LocalDataState observer;
  rt::declare_write(observer, 3);
  EXPECT_FALSE(rt::get_read(shared, observer, WaitPolicy::kSpin));
}

TEST(DataObject, TerminateReadCounts) {
  rt::SharedDataState shared;
  rt::LocalDataState local;
  rt::terminate_read(shared, local, WaitPolicy::kSpinYield);
  rt::terminate_read(shared, local, WaitPolicy::kSpinYield);
  EXPECT_EQ(shared.nb_reads_since_write.value.load(), 2u);
  EXPECT_EQ(local.nb_reads_since_write, 2u);
}

// ------------------------------------------------------ basic execution ----

TEST(Runtime, ExecutesEveryTaskExactlyOnce) {
  stf::TaskFlow flow;
  std::atomic<int> hits{0};
  for (int i = 0; i < 100; ++i)
    flow.add("t", [&hits](stf::TaskContext&) { hits.fetch_add(1); }, {});
  Runtime rt(Config{.num_workers = 4});
  auto stats = rt.run(flow, rt::mapping::round_robin(4));
  EXPECT_EQ(hits.load(), 100);
  EXPECT_EQ(stats.tasks_executed(), 100u);
  // Everyone else declared the rest: (p-1) skips per task.
  std::uint64_t skipped = 0;
  for (auto& w : stats.workers) skipped += w.tasks_skipped;
  EXPECT_EQ(skipped, 300u);
}

TEST(Runtime, SingleWorkerDegeneratesToSequential) {
  stf::TaskFlow flow;
  auto d = flow.create_data<int>("d");
  for (int i = 1; i <= 5; ++i)
    flow.add("step",
             [d, i](stf::TaskContext& ctx) { ctx.scalar(d) = ctx.scalar(d) * 10 + i; },
             {stf::readwrite(d)});
  Runtime rt(Config{.num_workers = 1});
  rt.run(flow, rt::mapping::single());
  EXPECT_EQ(flow.registry().typed<int>(d)[0], 12345);
}

TEST(Runtime, ChainAcrossWorkersRespectsOrder) {
  // A strict RW chain alternating between two workers: the final value
  // proves every link waited for its predecessor.
  stf::TaskFlow flow;
  auto d = flow.create_data<std::uint64_t>("d");
  constexpr int kLinks = 64;
  for (int i = 0; i < kLinks; ++i)
    flow.add("link",
             [d](stf::TaskContext& ctx) { ctx.scalar(d) += 1; },
             {stf::readwrite(d)});
  Runtime rt(Config{.num_workers = 2, .enable_guard = true});
  rt.run(flow, rt::mapping::round_robin(2));
  EXPECT_EQ(flow.registry().typed<std::uint64_t>(d)[0],
            static_cast<std::uint64_t>(kLinks));
}

TEST(Runtime, FanOutReadersAllSeeTheWrite) {
  stf::TaskFlow flow;
  auto src = flow.create_data<int>("src");
  auto sums = flow.create_data<std::uint64_t>("sums", 8);
  flow.add("produce", [src](stf::TaskContext& ctx) { ctx.scalar(src) = 41; },
           {stf::write(src)});
  for (int r = 0; r < 8; ++r)
    flow.add("consume",
             [src, sums, r](stf::TaskContext& ctx) {
               ctx.get(sums)[r] =
                   static_cast<std::uint64_t>(ctx.scalar(src, stf::AccessMode::kRead)) + 1;
             },
             {stf::read(src), stf::readwrite(sums)});
  // NOTE: all consumers also RW the sums buffer, serializing them — the
  // point here is the producer/consumer write visibility.
  Runtime rt(Config{.num_workers = 3, .enable_guard = true});
  rt.run(flow, rt::mapping::round_robin(3));
  const auto* s = flow.registry().typed<std::uint64_t>(sums);
  for (int r = 0; r < 8; ++r) EXPECT_EQ(s[r], 42u);
}

TEST(Runtime, WriteWaitsForAllReaders) {
  // W r r r W pattern: the second write must observe all three reads done.
  stf::TaskFlow flow;
  auto d = flow.create_data<int>("d");
  auto out = flow.create_data<int>("out", 3);
  flow.add("w0", [d](stf::TaskContext& ctx) { ctx.scalar(d) = 7; },
           {stf::write(d)});
  for (int r = 0; r < 3; ++r)
    flow.add("read",
             [d, out, r](stf::TaskContext& ctx) {
               ctx.get(out)[r] = ctx.scalar(d, stf::AccessMode::kRead);
             },
             {stf::read(d), stf::readwrite(out)});
  flow.add("w1", [d](stf::TaskContext& ctx) { ctx.scalar(d) = 9; },
           {stf::write(d)});
  Runtime rt(Config{.num_workers = 4, .enable_guard = true});
  rt.run(flow, rt::mapping::round_robin(4));
  const int* o = flow.registry().typed<int>(out);
  for (int r = 0; r < 3; ++r) EXPECT_EQ(o[r], 7);  // readers saw w0, not w1
  EXPECT_EQ(flow.registry().typed<int>(d)[0], 9);
}

// ------------------------------------------------- property: vs oracle -----

// Runs a workload under RIO with tracing + guard, checks the trace against
// the DAG, and compares all data against the sequential oracle.
void check_against_oracle(stf::TaskFlow& parallel_flow,
                          stf::TaskFlow& sequential_flow,
                          std::uint32_t workers, WaitPolicy policy,
                          const Mapping& mapping) {
  stf::SequentialExecutor{}.run(sequential_flow);

  Runtime rt(Config{.num_workers = workers,
                    .wait_policy = policy,
                    .collect_trace = true,
                    .enable_guard = true});
  rt.run(parallel_flow, mapping);

  stf::DependencyGraph graph(parallel_flow);
  const auto validation = rt.trace().validate(parallel_flow, graph, true);
  ASSERT_TRUE(validation.ok()) << validation.reason;

  // Compare every data object byte-wise.
  const auto& pr = parallel_flow.registry();
  const auto& sr = sequential_flow.registry();
  ASSERT_EQ(pr.size(), sr.size());
  for (stf::DataId d = 0; d < pr.size(); ++d) {
    ASSERT_EQ(pr.bytes(d), sr.bytes(d));
    EXPECT_EQ(std::memcmp(pr.raw(d), sr.raw(d), pr.bytes(d)), 0)
        << "data object " << d << " (" << pr.name(d) << ") diverged";
  }
}

struct RandomGraphParam {
  std::uint64_t seed;
  std::uint32_t workers;
  WaitPolicy policy;
};

class RioRandomGraph : public ::testing::TestWithParam<RandomGraphParam> {};

// The counter bodies never touch the data objects, so to make the oracle
// comparison meaningful we use bodies that mutate the written objects in an
// order-sensitive way.
workloads::Workload make_order_sensitive_random(std::uint64_t seed,
                                                std::uint32_t workers) {
  workloads::RandomDepsSpec spec;
  spec.num_tasks = 400;
  spec.num_data = 32;
  spec.task_cost = 50;
  spec.body = workloads::BodyKind::kNone;
  spec.seed = seed;
  spec.num_workers = workers;
  auto w = workloads::make_random_deps(spec);
  // Replace bodies: fold the task id into every written object. The final
  // value of each object is then a function of the exact write order.
  stf::TaskFlow rebuilt;
  std::vector<stf::DataHandle<std::uint64_t>> data;
  for (std::uint32_t d = 0; d < spec.num_data; ++d)
    data.push_back(rebuilt.create_data<std::uint64_t>("d" + std::to_string(d)));
  for (const stf::Task& t : w.flow.tasks()) {
    stf::AccessList acc = t.accesses;
    const stf::TaskId id = t.id;
    std::vector<stf::DataId> written, readed;
    for (const auto& a : t.accesses)
      (is_write(a.mode) ? written : readed).push_back(a.data);
    rebuilt.add(
        t.name,
        [written, readed, id](stf::TaskContext& ctx) {
          std::uint64_t acc_val = id + 1;
          for (stf::DataId rd : readed)
            acc_val ^= *static_cast<const std::uint64_t*>(
                ctx.registry().raw(rd));
          for (stf::DataId wr : written) {
            auto* p = static_cast<std::uint64_t*>(ctx.registry().raw(wr));
            *p = *p * 1000003u + acc_val;
          }
        },
        std::move(acc), t.cost);
  }
  workloads::Workload out;
  out.name = w.name;
  out.flow = std::move(rebuilt);
  out.owners = w.owners;
  return out;
}

TEST_P(RioRandomGraph, MatchesSequentialOracle) {
  const auto param = GetParam();
  auto parallel = make_order_sensitive_random(param.seed, param.workers);
  auto sequential = make_order_sensitive_random(param.seed, param.workers);
  check_against_oracle(parallel.flow, sequential.flow, param.workers,
                       param.policy, parallel.mapping(param.workers));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RioRandomGraph,
    ::testing::Values(RandomGraphParam{1, 2, WaitPolicy::kSpinYield},
                      RandomGraphParam{2, 3, WaitPolicy::kSpinYield},
                      RandomGraphParam{3, 4, WaitPolicy::kBlock},
                      RandomGraphParam{4, 2, WaitPolicy::kBlock},
                      RandomGraphParam{5, 5, WaitPolicy::kSpinYield},
                      RandomGraphParam{6, 8, WaitPolicy::kBlock},
                      RandomGraphParam{7, 3, WaitPolicy::kSpin},
                      RandomGraphParam{8, 2, WaitPolicy::kSpin}));

// ------------------------------------------------------ numeric oracles ----

TEST(RioNumeric, TiledGemmMatchesSequential) {
  constexpr std::uint32_t nt = 3, dim = 8, workers = 3;
  workloads::TiledMatrix a1(nt, dim), b1(nt, dim), c1(nt, dim);
  workloads::TiledMatrix a2(nt, dim), b2(nt, dim), c2(nt, dim);
  a1.fill_random(1);
  b1.fill_random(2);
  a2.fill_random(1);
  b2.fill_random(2);

  auto wl_seq = workloads::make_gemm_numeric(a1, b1, c1);
  stf::SequentialExecutor{}.run(wl_seq.flow);

  auto wl_par = workloads::make_gemm_numeric(a2, b2, c2, workers);
  Runtime rt(Config{.num_workers = workers, .enable_guard = true});
  rt.run(wl_par.flow, wl_par.mapping(workers));

  EXPECT_EQ(c1.max_abs_diff(c2), 0.0);
}

TEST(RioNumeric, TiledLuMatchesSequential) {
  constexpr std::uint32_t nt = 3, dim = 8, workers = 4;
  workloads::TiledMatrix a1(nt, dim), a2(nt, dim);
  a1.fill_random_diagonally_dominant(11);
  a2.fill_random_diagonally_dominant(11);

  auto wl_seq = workloads::make_lu_numeric(a1);
  stf::SequentialExecutor{}.run(wl_seq.flow);

  auto wl_par = workloads::make_lu_numeric(a2, workers);
  Runtime rt(Config{.num_workers = workers, .enable_guard = true});
  rt.run(wl_par.flow, wl_par.mapping(workers));

  EXPECT_EQ(a1.max_abs_diff(a2), 0.0);
}

TEST(RioNumeric, TiledCholeskyMatchesSequential) {
  constexpr std::uint32_t nt = 3, dim = 8, workers = 2;
  workloads::TiledMatrix a1(nt, dim), a2(nt, dim);
  a1.fill_random_diagonally_dominant(21);
  a1.symmetrize();
  a2.fill_random_diagonally_dominant(21);
  a2.symmetrize();

  auto wl_seq = workloads::make_cholesky_numeric(a1);
  stf::SequentialExecutor{}.run(wl_seq.flow);

  auto wl_par = workloads::make_cholesky_numeric(a2, workers);
  Runtime rt(Config{.num_workers = workers, .enable_guard = true});
  rt.run(wl_par.flow, wl_par.mapping(workers));

  EXPECT_EQ(a1.max_abs_diff(a2), 0.0);
}

TEST(RioNumeric, StencilMatchesSequential) {
  constexpr std::uint32_t chunks = 8, len = 16, steps = 5, workers = 3;
  std::vector<double> a1(chunks * len), b1(chunks * len);
  std::vector<double> a2(chunks * len), b2(chunks * len);
  for (std::size_t i = 0; i < a1.size(); ++i)
    a1[i] = a2[i] = static_cast<double>(i % 17) - 8.0;

  auto wl_seq = workloads::make_stencil_numeric(chunks, len, steps, a1, b1);
  stf::SequentialExecutor{}.run(wl_seq.flow);

  auto wl_par =
      workloads::make_stencil_numeric(chunks, len, steps, a2, b2, workers);
  Runtime rt(Config{.num_workers = workers, .enable_guard = true});
  rt.run(wl_par.flow, wl_par.mapping(workers));

  for (std::size_t i = 0; i < a1.size(); ++i) {
    EXPECT_EQ(a1[i], a2[i]) << "buffer A diverged at " << i;
    EXPECT_EQ(b1[i], b2[i]) << "buffer B diverged at " << i;
  }
}

// -------------------------------------------------------- streaming mode ---

TEST(RunProgram, StreamingMatchesMaterialized) {
  // The same deterministic program executed (a) materialized and run by
  // RIO, (b) streamed by every worker. Results must agree.
  constexpr std::uint32_t workers = 3;
  constexpr int kTasks = 120;

  auto make_data = [](stf::TaskFlow& flow_or_reg,
                      std::vector<stf::DataHandle<std::uint64_t>>& out) {
    for (int d = 0; d < 5; ++d)
      out.push_back(flow_or_reg.create_data<std::uint64_t>(
          "d" + std::to_string(d)));
  };

  auto program = [&](std::vector<stf::DataHandle<std::uint64_t>> data) {
    return [data](stf::SubmitSink& sink) {
      for (int i = 0; i < kTasks; ++i) {
        const auto d = data[i % data.size()];
        const auto s = data[(i + 2) % data.size()];  // always distinct
        sink.submit(
            [d, s](stf::TaskContext& ctx) {
              ctx.scalar(d) = ctx.scalar(d) * 31 +
                              ctx.scalar(s, stf::AccessMode::kRead) + 1;
            },
            {stf::read(s), stf::readwrite(d)}, 10, "");
      }
    };
  };

  // (a) materialized
  stf::TaskFlow flow;
  std::vector<stf::DataHandle<std::uint64_t>> data_a;
  make_data(flow, data_a);
  program(data_a)(flow);
  Runtime rt_a(Config{.num_workers = workers, .enable_guard = true});
  rt_a.run(flow, rt::mapping::round_robin(workers));

  // (b) streaming over a standalone registry
  stf::DataRegistry registry;
  std::vector<stf::DataHandle<std::uint64_t>> data_b;
  for (int d = 0; d < 5; ++d)
    data_b.push_back(registry.create<std::uint64_t>("d" + std::to_string(d)));
  Runtime rt_b(Config{.num_workers = workers, .enable_guard = true});
  rt_b.run_program(registry, program(data_b), rt::mapping::round_robin(workers));

  for (int d = 0; d < 5; ++d) {
    EXPECT_EQ(*registry.typed<std::uint64_t>(data_b[d]),
              *flow.registry().typed<std::uint64_t>(data_a[d]))
        << "object " << d;
  }
}

// --------------------------------------------------------------- pruning ---

TEST(Pruning, PlanPartitionsAllTasks) {
  workloads::LuDagSpec spec;
  spec.row_tiles = 4;
  spec.col_tiles = 4;
  spec.body = workloads::BodyKind::kNone;
  spec.num_workers = 3;
  auto wl = workloads::make_lu_dag(spec);
  rt::PrunedPlan plan(wl.flow, wl.mapping(3), 3);
  EXPECT_EQ(plan.total_tasks(), wl.flow.num_tasks());
  std::size_t sum = 0;
  for (std::uint32_t w = 0; w < 3; ++w) sum += plan.tasks_for(w).size();
  EXPECT_EQ(sum, wl.flow.num_tasks());
}

TEST(Pruning, ExpectationsMatchDependencyAnalysis) {
  // For a simple W r r W flow the pruned expectations are fully known.
  stf::TaskFlow flow;
  auto d = flow.create_data<int>("d");
  flow.add("w0", {}, {stf::write(d)});
  flow.add("r1", {}, {stf::read(d)});
  flow.add("r2", {}, {stf::read(d)});
  flow.add("w3", {}, {stf::write(d)});
  rt::PrunedPlan plan(flow, rt::mapping::single(), 1);
  const auto& tasks = plan.tasks_for(0);
  ASSERT_EQ(tasks.size(), 4u);
  EXPECT_EQ(tasks[0].accesses[0].expected_writer, rt::kNoWrite);
  EXPECT_EQ(tasks[1].accesses[0].expected_writer, 0u);
  EXPECT_EQ(tasks[2].accesses[0].expected_writer, 0u);
  EXPECT_EQ(tasks[3].accesses[0].expected_writer, 0u);
  EXPECT_EQ(tasks[3].accesses[0].expected_reads, 2u);
}

TEST(Pruning, PrunedExecutionMatchesOracle) {
  constexpr std::uint32_t workers = 3;
  auto parallel = make_order_sensitive_random(99, workers);
  auto sequential = make_order_sensitive_random(99, workers);
  stf::SequentialExecutor{}.run(sequential.flow);

  rt::PrunedPlan plan(parallel.flow, parallel.mapping(workers), workers);
  rt::PrunedRuntime prt(Config{.num_workers = workers});
  auto stats = prt.run(parallel.flow, plan);
  EXPECT_EQ(stats.tasks_executed(), parallel.flow.num_tasks());

  const auto& pr = parallel.flow.registry();
  const auto& sr = sequential.flow.registry();
  for (stf::DataId d = 0; d < pr.size(); ++d)
    EXPECT_EQ(std::memcmp(pr.raw(d), sr.raw(d), pr.bytes(d)), 0)
        << "object " << d;
}

TEST(Pruning, NumericLuThroughPrunedRuntime) {
  constexpr std::uint32_t nt = 4, dim = 6, workers = 4;
  workloads::TiledMatrix a1(nt, dim), a2(nt, dim);
  a1.fill_random_diagonally_dominant(5);
  a2.fill_random_diagonally_dominant(5);

  auto wl_seq = workloads::make_lu_numeric(a1);
  stf::SequentialExecutor{}.run(wl_seq.flow);

  auto wl_par = workloads::make_lu_numeric(a2, workers);
  rt::PrunedPlan plan(wl_par.flow, wl_par.mapping(workers), workers);
  rt::PrunedRuntime prt(Config{.num_workers = workers});
  prt.run(wl_par.flow, plan);

  EXPECT_EQ(a1.max_abs_diff(a2), 0.0);
}

// ---------------------------------------------------------------- stats ----

TEST(Stats, BucketsRoughlyCoverWallTime) {
  workloads::IndependentSpec spec;
  spec.num_tasks = 200;
  spec.task_cost = 20000;
  spec.num_workers = 2;
  auto wl = workloads::make_independent(spec);
  Runtime rt(Config{.num_workers = 2});
  auto stats = rt.run(wl.flow, wl.mapping(2));
  const auto cum = stats.cumulative();
  EXPECT_GT(cum.task_ns, 0u);
  // tau_p == p * t_p within generous tolerance (oversubscribed host).
  EXPECT_LE(cum.total(), stats.wall_ns * 2 * 3);
  EXPECT_EQ(stats.tasks_executed(), 200u);
}

TEST(Stats, WaitsCountedOnDependencyStalls) {
  // A long chain between two workers must record at least one stall.
  stf::TaskFlow flow;
  auto d = flow.create_data<int>("d");
  for (int i = 0; i < 32; ++i)
    flow.add("c", [d](stf::TaskContext& ctx) { ctx.scalar(d) += 1; },
             {stf::readwrite(d)});
  Runtime rt(Config{.num_workers = 2});
  auto stats = rt.run(flow, rt::mapping::round_robin(2));
  std::uint64_t waits = 0;
  for (auto& w : stats.workers) waits += w.waits;
  EXPECT_GT(waits, 0u);
}

// ------------------------------------------------------------- mappings ----

TEST(Mapping, RoundRobinCycles) {
  auto m = rt::mapping::round_robin(3);
  EXPECT_EQ(m(0), 0u);
  EXPECT_EQ(m(1), 1u);
  EXPECT_EQ(m(2), 2u);
  EXPECT_EQ(m(3), 0u);
  EXPECT_EQ(m.name(), "round-robin/3");
}

TEST(Mapping, BlockIsContiguousAndClamped) {
  auto m = rt::mapping::block(10, 3);  // blocks of 4: 0..3 -> 0, 4..7 -> 1...
  EXPECT_EQ(m(0), 0u);
  EXPECT_EQ(m(3), 0u);
  EXPECT_EQ(m(4), 1u);
  EXPECT_EQ(m(9), 2u);
}

TEST(Mapping, TableLooksUp) {
  auto m = rt::mapping::table({2, 0, 1});
  EXPECT_EQ(m(0), 2u);
  EXPECT_EQ(m(1), 0u);
  EXPECT_EQ(m(2), 1u);
}

TEST(Mapping, GridPickerIsSquarest) {
  EXPECT_EQ(workloads::pick_grid(1), (std::pair<std::uint32_t, std::uint32_t>{1, 1}));
  EXPECT_EQ(workloads::pick_grid(4), (std::pair<std::uint32_t, std::uint32_t>{2, 2}));
  EXPECT_EQ(workloads::pick_grid(6), (std::pair<std::uint32_t, std::uint32_t>{2, 3}));
  EXPECT_EQ(workloads::pick_grid(7), (std::pair<std::uint32_t, std::uint32_t>{1, 7}));
  EXPECT_EQ(workloads::pick_grid(24), (std::pair<std::uint32_t, std::uint32_t>{4, 6}));
}

TEST(Mapping, CyclicOwnerInRange) {
  for (std::uint32_t i = 0; i < 8; ++i)
    for (std::uint32_t j = 0; j < 8; ++j)
      EXPECT_LT(workloads::cyclic_owner(i, j, 2, 3), 6u);
}

}  // namespace
