// Cross-module integration tests: flow ranges, trace exporters fed by real
// runtime traces, and the hybrid simulator against its component models.
#include <gtest/gtest.h>

#include <sstream>

#include "coor/coor.hpp"
#include "hybrid/hybrid.hpp"
#include "rio/rio.hpp"
#include "sim/sim.hpp"
#include "stf/stf.hpp"
#include "workloads/workloads.hpp"

namespace {

using namespace rio;

// ------------------------------------------------------------ FlowRange ----

TEST(FlowRange, WholeFlowView) {
  stf::TaskFlow flow;
  auto d = flow.create_data<int>("d");
  for (int i = 0; i < 4; ++i) flow.add_virtual(1, {stf::readwrite(d)});
  stf::FlowRange range(flow);
  EXPECT_EQ(range.size(), 4u);
  EXPECT_EQ(range.first_id(), 0u);
  EXPECT_EQ(range.num_data(), 1u);
  EXPECT_EQ(&range.registry(), &flow.registry());
}

TEST(FlowRange, SubRangeKeepsGlobalIds) {
  stf::TaskFlow flow;
  for (int i = 0; i < 10; ++i) flow.add_virtual(1, {});
  stf::FlowRange range(flow, 3, 4);
  EXPECT_EQ(range.size(), 4u);
  EXPECT_EQ(range.first_id(), 3u);
  EXPECT_EQ(range[0].id, 3u);
  EXPECT_EQ(range[3].id, 6u);
}

TEST(FlowRange, EmptyRange) {
  stf::TaskFlow flow;
  flow.add_virtual(1, {});
  stf::FlowRange range(flow, 1, 0);
  EXPECT_TRUE(range.empty());
  EXPECT_EQ(range.first_id(), stf::kInvalidTask);
}

TEST(FlowRange, DependencyGraphOnSubRangeIsLocal) {
  // A chain of 6; the sub-range [2,5) sees only its internal edges.
  stf::TaskFlow flow;
  auto d = flow.create_data<int>("d");
  for (int i = 0; i < 6; ++i) flow.add_virtual(1, {stf::readwrite(d)});
  stf::DependencyGraph g(stf::FlowRange(flow, 2, 3));
  EXPECT_EQ(g.num_tasks(), 3u);
  EXPECT_TRUE(g.predecessors(0).empty());  // cross-range dep not modelled
  EXPECT_EQ(g.predecessors(1), (std::vector<stf::TaskId>{0}));
  EXPECT_EQ(g.num_edges(), 2u);
}

TEST(FlowRange, RioRunsSubRange) {
  stf::TaskFlow flow;
  auto d = flow.create_data<std::uint64_t>("d");
  for (int i = 0; i < 8; ++i)
    flow.add("inc", [d](stf::TaskContext& ctx) { ctx.scalar(d) += 1; },
             {stf::readwrite(d)});
  rt::Runtime runtime(rt::Config{.num_workers = 2});
  runtime.run(stf::FlowRange(flow, 0, 5), rt::mapping::round_robin(2));
  EXPECT_EQ(*flow.registry().typed<std::uint64_t>(d), 5u);
  runtime.run(stf::FlowRange(flow, 5, 3), rt::mapping::round_robin(2));
  EXPECT_EQ(*flow.registry().typed<std::uint64_t>(d), 8u);
}

// ---------------------------------------------------------- trace export ---

stf::TaskFlow traced_flow(rt::Runtime& runtime, std::uint32_t workers) {
  stf::TaskFlow flow;
  auto d = flow.create_data<std::uint64_t>("d");
  for (int i = 0; i < 16; ++i)
    flow.add("chain_" + std::to_string(i),
             [d](stf::TaskContext& ctx) { ctx.scalar(d) += 1; },
             {stf::readwrite(d)});
  runtime.run(flow, rt::mapping::round_robin(workers));
  return flow;
}

TEST(TraceExport, ChromeJsonIsWellFormedIsh) {
  rt::Runtime runtime(rt::Config{.num_workers = 2, .collect_trace = true});
  auto flow = traced_flow(runtime, 2);
  std::ostringstream os;
  stf::export_chrome_trace(runtime.trace(), flow, os);
  const std::string json = os.str();
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(json.find("chain_0"), std::string::npos);
  EXPECT_NE(json.find("chain_15"), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  // Balanced braces (cheap structural sanity).
  long depth = 0;
  for (char c : json) {
    if (c == '{') ++depth;
    if (c == '}') --depth;
    ASSERT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
}

TEST(TraceExport, JsonEscapesSpecialCharacters) {
  stf::TaskFlow flow;
  flow.add("quote\"back\\slash", [](stf::TaskContext&) {}, {});
  rt::Runtime runtime(rt::Config{.num_workers = 1, .collect_trace = true});
  runtime.run(flow, rt::mapping::single());
  std::ostringstream os;
  stf::export_chrome_trace(runtime.trace(), flow, os);
  EXPECT_NE(os.str().find("quote\\\"back\\\\slash"), std::string::npos);
}

TEST(TraceExport, JsonEscapesControlCharacters) {
  // Regression: escape() used to pass through control chars below 0x20
  // other than '\n', producing invalid JSON for names with e.g. '\t'.
  stf::TaskFlow flow;
  flow.add(std::string("tab\there\x01raw\nline"), [](stf::TaskContext&) {},
           {});
  rt::Runtime runtime(rt::Config{.num_workers = 1, .collect_trace = true});
  runtime.run(flow, rt::mapping::single());
  std::ostringstream os;
  stf::export_chrome_trace(runtime.trace(), flow, os);
  const std::string json = os.str();
  EXPECT_NE(json.find("tab\\there\\u0001raw\\nline"), std::string::npos);
  for (char c : json)
    EXPECT_GE(static_cast<unsigned char>(c), 0x20u)
        << "raw control character leaked into the JSON output";
}

TEST(TraceExport, CsvQuotesNamesWithDelimiters) {
  // Regression: export_csv wrote names unquoted, so a comma in a task name
  // shifted every following column.
  stf::TaskFlow flow;
  flow.add("gemm(1,2)", [](stf::TaskContext&) {}, {});
  flow.add("say \"hi\"", [](stf::TaskContext&) {}, {});
  rt::Runtime runtime(rt::Config{.num_workers = 1, .collect_trace = true});
  runtime.run(flow, rt::mapping::single());
  std::ostringstream os;
  stf::export_csv(runtime.trace(), flow, os);
  const std::string csv = os.str();
  EXPECT_NE(csv.find("\"gemm(1,2)\""), std::string::npos);
  EXPECT_NE(csv.find("\"say \"\"hi\"\"\""), std::string::npos);
  // Every row still has exactly 6 commas (7 columns).
  std::istringstream lines(csv);
  std::string line;
  while (std::getline(lines, line)) {
    std::size_t commas = 0;
    bool quoted = false;
    for (char c : line) {
      if (c == '"') quoted = !quoted;
      if (c == ',' && !quoted) ++commas;
    }
    EXPECT_EQ(commas, 6u) << line;
  }
}

TEST(TraceExport, CsvHasHeaderAndAllRows) {
  rt::Runtime runtime(rt::Config{.num_workers = 2, .collect_trace = true});
  auto flow = traced_flow(runtime, 2);
  std::ostringstream os;
  stf::export_csv(runtime.trace(), flow, os);
  const std::string csv = os.str();
  EXPECT_EQ(csv.rfind("task,name,worker,", 0), 0u);
  std::size_t lines = 0;
  for (char c : csv) lines += (c == '\n');
  EXPECT_EQ(lines, 17u);  // header + 16 tasks
}

TEST(TraceExport, UtilizationSumsTasks) {
  rt::Runtime runtime(rt::Config{.num_workers = 3, .collect_trace = true});
  auto flow = traced_flow(runtime, 3);
  const auto util = stf::summarize_utilization(runtime.trace());
  ASSERT_EQ(util.size(), 3u);
  std::uint64_t tasks = 0;
  for (const auto& u : util) {
    tasks += u.tasks;
    EXPECT_LE(u.utilization(), 1.0 + 1e-9);
    EXPECT_LE(u.busy_ns, u.span_ns + 1);
  }
  EXPECT_EQ(tasks, 16u);
}

TEST(TraceExport, EmptyTraceProducesValidOutputs) {
  stf::TaskFlow flow;
  stf::Trace trace;
  std::ostringstream js, csv;
  stf::export_chrome_trace(trace, flow, js);
  stf::export_csv(trace, flow, csv);
  EXPECT_NE(js.str().find("\"traceEvents\":[]"), std::string::npos);
  EXPECT_TRUE(stf::summarize_utilization(trace).empty());
}

TEST(TraceExport, CoorTraceExportsToo) {
  stf::TaskFlow flow;
  for (int i = 0; i < 10; ++i)
    flow.add("t" + std::to_string(i), [](stf::TaskContext&) {}, {});
  coor::Runtime runtime(coor::Config{.num_workers = 2, .collect_trace = true});
  runtime.run(flow);
  std::ostringstream os;
  stf::export_chrome_trace(runtime.trace(), flow, os);
  EXPECT_NE(os.str().find("t9"), std::string::npos);
}

// ------------------------------------------------------------ hybrid sim ---

TEST(SimHybrid, SinglePhaseEqualsComponentModel) {
  workloads::IndependentSpec spec;
  spec.num_tasks = 1000;
  spec.task_cost = 500;
  spec.body = workloads::BodyKind::kNone;
  auto wl = workloads::make_independent(spec);
  sim::DecentralizedParams dp;
  dp.workers = 8;
  sim::CentralizedParams cp;
  cp.workers = 8;

  // All-static single phase == simulate_decentralized.
  std::vector<hybrid::Phase> all_static(1);
  all_static[0].kind = hybrid::Phase::Kind::kStatic;
  all_static[0].first = 0;
  all_static[0].count = 1000;
  all_static[0].mapping = rt::mapping::round_robin(8);
  const auto hyb =
      sim::simulate_hybrid(wl.flow, all_static, dp, cp);
  const auto pure =
      sim::simulate_decentralized(wl.flow, rt::mapping::round_robin(8), dp);
  EXPECT_EQ(hyb.makespan, pure.makespan);

  // All-dynamic single phase == simulate_centralized.
  std::vector<hybrid::Phase> all_dynamic(1);
  all_dynamic[0].kind = hybrid::Phase::Kind::kDynamic;
  all_dynamic[0].first = 0;
  all_dynamic[0].count = 1000;
  const auto hyb2 = sim::simulate_hybrid(wl.flow, all_dynamic, dp, cp);
  const auto pure2 = sim::simulate_centralized(wl.flow, cp);
  EXPECT_EQ(hyb2.makespan, pure2.makespan);
}

TEST(SimHybrid, MakespanIsSumOfPhases) {
  workloads::IndependentSpec spec;
  spec.num_tasks = 600;
  spec.task_cost = 1000;
  spec.body = workloads::BodyKind::kNone;
  auto wl = workloads::make_independent(spec);
  sim::DecentralizedParams dp;
  dp.workers = 4;
  sim::CentralizedParams cp;
  cp.workers = 4;

  std::vector<hybrid::Phase> phases(2);
  phases[0] = {hybrid::Phase::Kind::kStatic, 0, 300,
               rt::mapping::round_robin(4)};
  phases[1] = {hybrid::Phase::Kind::kDynamic, 300, 300, {}};
  const auto hyb = sim::simulate_hybrid(wl.flow, phases, dp, cp);

  const auto s = sim::simulate_decentralized(
      stf::FlowRange(wl.flow, 0, 300), rt::mapping::round_robin(4), dp);
  const auto d =
      sim::simulate_centralized(stf::FlowRange(wl.flow, 300, 300), cp);
  EXPECT_EQ(hyb.makespan, s.makespan + d.makespan);
  // Per-thread tau identity holds for the combined report too.
  for (const auto& w : hyb.stats.workers)
    EXPECT_EQ(w.buckets.total(), hyb.makespan);
}

TEST(SimHybrid, HplMixedFlowBeatsCentralizedAtFineGranularity) {
  workloads::TiledMatrix a(4, 64);
  a.fill_random(55);
  auto hpl = workloads::make_hpl_lu(a, 16);
  sim::DecentralizedParams dp;
  dp.workers = 16;
  sim::CentralizedParams cp;
  cp.workers = 16;
  const auto phases =
      hybrid::partition(hpl.workload.flow, hpl.partial_mapping(), 16);
  const auto hyb = sim::simulate_hybrid(hpl.workload.flow, phases, dp, cp);
  const auto coor = sim::simulate_centralized(hpl.workload.flow, cp);
  EXPECT_LT(hyb.makespan, coor.makespan);
}

// ----------------------------------------------------- cross-engine trace --

TEST(CrossEngine, AllEnginesProduceValidTracesOnLu) {
  workloads::LuDagSpec spec;
  spec.row_tiles = 4;
  spec.col_tiles = 4;
  spec.task_cost = 100;
  spec.num_workers = 3;
  auto wl = workloads::make_lu_dag(spec);
  stf::DependencyGraph graph(wl.flow);

  rt::Runtime rio_rt(rt::Config{.num_workers = 3, .collect_trace = true,
                                .enable_guard = true});
  rio_rt.run(wl.flow, wl.mapping(3));
  auto r1 = rio_rt.trace().validate(wl.flow, graph, true);
  EXPECT_TRUE(r1.ok()) << r1.reason;

  coor::Runtime coor_rt(coor::Config{.num_workers = 3, .collect_trace = true,
                                     .enable_guard = true});
  coor_rt.run(wl.flow);
  auto r2 = coor_rt.trace().validate(wl.flow, graph, false);
  EXPECT_TRUE(r2.ok()) << r2.reason;
}

}  // namespace
