// Failure-injection tests: a throwing task body must cancel the run
// deterministically — every worker drains, the first exception propagates
// to the caller, and the runtime object remains usable.
#include <gtest/gtest.h>

#include <stdexcept>

#include "coor/coor.hpp"
#include "hybrid/hybrid.hpp"
#include "rio/rio.hpp"
#include "stf/stf.hpp"

namespace {

using namespace rio;

struct BoomError : std::runtime_error {
  BoomError() : std::runtime_error("boom") {}
};

/// A chain flow whose middle task throws; tasks after it must be skipped
/// (their bodies never run) while the run still terminates.
stf::TaskFlow throwing_flow(int n, int throw_at, std::atomic<int>& executed) {
  stf::TaskFlow flow;
  auto d = flow.create_data<int>("d");
  for (int i = 0; i < n; ++i)
    flow.add("t" + std::to_string(i),
             [i, throw_at, &executed](stf::TaskContext&) {
               if (i == throw_at) throw BoomError{};
               executed.fetch_add(1);
             },
             {stf::readwrite(d)});
  return flow;
}

TEST(Failure, RioPropagatesFirstException) {
  std::atomic<int> executed{0};
  auto flow = throwing_flow(40, 10, executed);
  rt::Runtime runtime(rt::Config{.num_workers = 3});
  EXPECT_THROW(runtime.run(flow, rt::mapping::round_robin(3)), BoomError);
  // Tasks strictly after the throwing one on the chain never ran.
  EXPECT_EQ(executed.load(), 10);
}

TEST(Failure, RioRuntimeUsableAfterFailure) {
  std::atomic<int> executed{0};
  auto bad = throwing_flow(20, 0, executed);
  rt::Runtime runtime(rt::Config{.num_workers = 2});
  EXPECT_THROW(runtime.run(bad, rt::mapping::round_robin(2)), BoomError);

  stf::TaskFlow good;
  auto d = good.create_data<int>("d");
  for (int i = 0; i < 10; ++i)
    good.add("inc", [d](stf::TaskContext& ctx) { ctx.scalar(d) += 1; },
             {stf::readwrite(d)});
  runtime.run(good, rt::mapping::round_robin(2));
  EXPECT_EQ(*good.registry().typed<int>(d), 10);
}

TEST(Failure, CoorPropagatesException) {
  std::atomic<int> executed{0};
  auto flow = throwing_flow(30, 5, executed);
  coor::Runtime runtime(coor::Config{.num_workers = 3});
  EXPECT_THROW(runtime.run(flow), BoomError);
  EXPECT_EQ(executed.load(), 5);
}

TEST(Failure, PrunedRioPropagatesException) {
  std::atomic<int> executed{0};
  auto flow = throwing_flow(30, 7, executed);
  const auto mapping = rt::mapping::round_robin(2);
  rt::PrunedPlan plan(flow, mapping, 2);
  rt::PrunedRuntime runtime(rt::Config{.num_workers = 2});
  EXPECT_THROW(runtime.run(flow, plan), BoomError);
  EXPECT_EQ(executed.load(), 7);
}

TEST(Failure, StreamingModePropagates) {
  stf::DataRegistry registry;
  auto d = registry.create<int>("d");
  rt::Runtime runtime(rt::Config{.num_workers = 2});
  EXPECT_THROW(
      runtime.run_program(
          registry,
          [d](stf::SubmitSink& sink) {
            for (int i = 0; i < 10; ++i)
              sink.submit(
                  [i](stf::TaskContext&) {
                    if (i == 4) throw BoomError{};
                  },
                  {stf::readwrite(d)}, 1, "");
          },
          rt::mapping::round_robin(2)),
      BoomError);
}

TEST(Failure, HybridPropagatesFromEitherPhaseKind) {
  for (int throw_at : {2, 12}) {  // 2 = static phase, 12 = dynamic phase
    std::atomic<int> executed{0};
    auto flow = throwing_flow(20, throw_at, executed);
    hybrid::Runtime runtime(hybrid::Config{.num_workers = 2});
    EXPECT_THROW(
        runtime.run(flow,
                    [](stf::TaskId t) -> std::optional<stf::WorkerId> {
                      if (t < 10) return static_cast<stf::WorkerId>(t % 2);
                      return std::nullopt;
                    }),
        BoomError)
        << "throw_at=" << throw_at;
    EXPECT_EQ(executed.load(), throw_at);
  }
}

TEST(Failure, SequentialExecutorPropagatesNaturally) {
  std::atomic<int> executed{0};
  auto flow = throwing_flow(10, 3, executed);
  EXPECT_THROW(stf::SequentialExecutor{}.run(flow), BoomError);
  EXPECT_EQ(executed.load(), 3);
}

TEST(Failure, FirstOfManyExceptionsWins) {
  // Independent throwing tasks across workers: exactly one exception
  // surfaces and the run still drains all tasks' bookkeeping.
  stf::TaskFlow flow;
  for (int i = 0; i < 12; ++i)
    flow.add("boom", [](stf::TaskContext&) { throw BoomError{}; }, {});
  rt::Runtime runtime(rt::Config{.num_workers = 4});
  EXPECT_THROW(runtime.run(flow, rt::mapping::round_robin(4)), BoomError);
}

}  // namespace
