// Failure-injection tests: a throwing task body must cancel the run
// deterministically — every worker drains, the first exception propagates
// to the caller, and the runtime object remains usable. The second half
// covers the resilience layer: deterministic fault injection, retry with
// write rollback, structured TaskFailure escalation and the progress
// watchdog (docs/robustness.md).
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "coor/coor.hpp"
#include "engine/registry.hpp"
#include "engine/supervisor.hpp"
#include "hybrid/hybrid.hpp"
#include "obs/obs.hpp"
#include "rio/rio.hpp"
#include "support/fault.hpp"
#include "stf/frontier.hpp"
#include "stf/stf.hpp"

namespace {

using namespace rio;

struct BoomError : std::runtime_error {
  BoomError() : std::runtime_error("boom") {}
};

/// A chain flow whose middle task throws; tasks after it must be skipped
/// (their bodies never run) while the run still terminates.
stf::TaskFlow throwing_flow(int n, int throw_at, std::atomic<int>& executed) {
  stf::TaskFlow flow;
  auto d = flow.create_data<int>("d");
  for (int i = 0; i < n; ++i)
    flow.add("t" + std::to_string(i),
             [i, throw_at, &executed](stf::TaskContext&) {
               if (i == throw_at) throw BoomError{};
               executed.fetch_add(1);
             },
             {stf::readwrite(d)});
  return flow;
}

TEST(Failure, EveryBackendPropagatesBodyException) {
  // Registry matrix: every backend that really executes task bodies must
  // propagate the first body exception, and — the tasks forming a chain —
  // must never have run a body past the throwing task.
  for (const engine::Backend* backend : engine::Registry::instance().all()) {
    if (!backend->caps().executes_bodies) continue;
    SCOPED_TRACE(std::string(backend->name()));
    std::atomic<int> executed{0};
    auto flow = throwing_flow(40, 10, executed);
    engine::Launch launch;
    launch.workers = 3;
    if (backend->caps().needs_mapping)
      launch.mapping = rt::mapping::round_robin(3);
    EXPECT_THROW((void)backend->run(stf::FlowImage::compile(flow), launch),
                 BoomError);
    // Tasks strictly after the throwing one on the chain never ran.
    EXPECT_EQ(executed.load(), 10);
  }
}

TEST(Failure, RioRuntimeUsableAfterFailure) {
  std::atomic<int> executed{0};
  auto bad = throwing_flow(20, 0, executed);
  rt::Runtime runtime(rt::Config{.num_workers = 2});
  EXPECT_THROW(runtime.run(bad, rt::mapping::round_robin(2)), BoomError);

  stf::TaskFlow good;
  auto d = good.create_data<int>("d");
  for (int i = 0; i < 10; ++i)
    good.add("inc", [d](stf::TaskContext& ctx) { ctx.scalar(d) += 1; },
             {stf::readwrite(d)});
  runtime.run(good, rt::mapping::round_robin(2));
  EXPECT_EQ(*good.registry().typed<int>(d), 10);
}

TEST(Failure, StreamingModePropagates) {
  stf::DataRegistry registry;
  auto d = registry.create<int>("d");
  rt::Runtime runtime(rt::Config{.num_workers = 2});
  EXPECT_THROW(
      runtime.run_program(
          registry,
          [d](stf::SubmitSink& sink) {
            for (int i = 0; i < 10; ++i)
              sink.submit(
                  [i](stf::TaskContext&) {
                    if (i == 4) throw BoomError{};
                  },
                  {stf::readwrite(d)}, 1, "");
          },
          rt::mapping::round_robin(2)),
      BoomError);
}

TEST(Failure, HybridPropagatesFromEitherPhaseKind) {
  for (int throw_at : {2, 12}) {  // 2 = static phase, 12 = dynamic phase
    std::atomic<int> executed{0};
    auto flow = throwing_flow(20, throw_at, executed);
    hybrid::Runtime runtime(hybrid::Config{.num_workers = 2});
    EXPECT_THROW(
        runtime.run(flow,
                    [](stf::TaskId t) -> std::optional<stf::WorkerId> {
                      if (t < 10) return static_cast<stf::WorkerId>(t % 2);
                      return std::nullopt;
                    }),
        BoomError)
        << "throw_at=" << throw_at;
    EXPECT_EQ(executed.load(), throw_at);
  }
}

TEST(Failure, SequentialExecutorPropagatesNaturally) {
  std::atomic<int> executed{0};
  auto flow = throwing_flow(10, 3, executed);
  EXPECT_THROW(stf::SequentialExecutor{}.run(flow), BoomError);
  EXPECT_EQ(executed.load(), 3);
}

TEST(Failure, FirstOfManyExceptionsWins) {
  // Independent throwing tasks across workers: exactly one exception
  // surfaces and the run still drains all tasks' bookkeeping.
  stf::TaskFlow flow;
  for (int i = 0; i < 12; ++i)
    flow.add("boom", [](stf::TaskContext&) { throw BoomError{}; }, {});
  rt::Runtime runtime(rt::Config{.num_workers = 4});
  EXPECT_THROW(runtime.run(flow, rt::mapping::round_robin(4)), BoomError);
}

// ---- Resilience layer ----------------------------------------------------

/// Chain of n increments over one scalar. Injected faults fire AFTER the
/// body ran, so a correct final value proves the rollback really restored
/// the pre-attempt bytes before each re-run.
stf::TaskFlow increment_chain(int n, stf::DataHandle<int>& d_out) {
  stf::TaskFlow flow;
  d_out = flow.create_data<int>("d");
  auto d = d_out;
  for (int i = 0; i < n; ++i)
    flow.add("inc" + std::to_string(i),
             [d](stf::TaskContext& ctx) { ctx.scalar(d) += 1; },
             {stf::readwrite(d)});
  return flow;
}

TEST(Resilience, RetryRecoversWithRollbackOnEveryFaultBackend) {
  // Registry matrix: every executes_bodies backend with the supports_faults
  // capability (rio, rio-pruned, coor, hybrid) must recover an increment
  // chain via retry + rollback. Faults fire AFTER the body ran, so without
  // rollback each faulted task would over-apply its increment.
  for (const engine::Backend* backend : engine::Registry::instance().all()) {
    const engine::Capabilities& caps = backend->caps();
    if (!caps.executes_bodies || !caps.supports_faults) continue;
    SCOPED_TRACE(std::string(backend->name()));

    stf::DataHandle<int> d;
    auto flow = increment_chain(24, d);
    support::FaultPlan plan;
    plan.throw_tasks = {5, 18};  // one per default-partial hybrid phase kind
    plan.throw_attempts = 2;     // attempts 1 and 2 throw, attempt 3 succeeds
    support::FaultInjector injector(plan);

    engine::Launch launch;
    launch.workers = 2;
    launch.retry = {.max_attempts = 4};
    launch.fault = &injector;
    if (caps.needs_mapping) launch.mapping = rt::mapping::round_robin(2);
    (void)backend->run(stf::FlowImage::compile(flow), launch);
    EXPECT_EQ(*flow.registry().typed<int>(d), 24);
    EXPECT_EQ(injector.injected_throws(), 4u);
  }
}

TEST(Resilience, RetryExhaustionThrowsTaskFailure) {
  stf::DataHandle<int> d;
  auto flow = increment_chain(15, d);
  support::FaultPlan plan;
  plan.throw_tasks = {7};
  plan.throw_attempts = 99;  // never stops throwing
  support::FaultInjector injector(plan);
  rt::Runtime runtime(rt::Config{.num_workers = 2,
                                 .retry = {.max_attempts = 3},
                                 .fault = &injector});
  try {
    runtime.run(flow, rt::mapping::round_robin(2));
    FAIL() << "expected TaskFailure";
  } catch (const stf::TaskFailure& f) {
    EXPECT_EQ(f.report().task, 7u);
    EXPECT_EQ(f.report().attempts, 3u);
    EXPECT_EQ(f.report().name, "inc7");
    ASSERT_TRUE(f.cause());
    EXPECT_THROW(std::rethrow_exception(f.cause()), support::InjectedFault);
  }
  // The chain stops at the failed task; nothing after it ran.
  EXPECT_EQ(*flow.registry().typed<int>(d), 7);
}

TEST(Resilience, NoRetryKeepsBareExceptionContract) {
  // With an injector but retries DISABLED the historical contract holds:
  // the original exception propagates unwrapped.
  stf::DataHandle<int> d;
  auto flow = increment_chain(10, d);
  support::FaultPlan plan;
  plan.throw_tasks = {4};
  plan.throw_attempts = 99;
  support::FaultInjector injector(plan);
  rt::Runtime runtime(rt::Config{.num_workers = 2, .fault = &injector});
  EXPECT_THROW(runtime.run(flow, rt::mapping::round_robin(2)),
               support::InjectedFault);
}

TEST(Resilience, RioWatchdogFailsStalledRun) {
  stf::DataHandle<int> d;
  auto flow = increment_chain(30, d);
  support::FaultPlan plan;
  plan.stall_tasks = {10};
  plan.stall_ns = 10'000'000'000ull;  // 10 s — far beyond the window
  support::FaultInjector injector(plan);
  rt::Runtime runtime(rt::Config{.num_workers = 2,
                                 .fault = &injector,
                                 .watchdog_ns = 200'000'000ull});
  try {
    runtime.run(flow, rt::mapping::round_robin(2));
    FAIL() << "expected StallError";
  } catch (const stf::StallError& e) {
    // The diagnostic names every worker and was captured mid-stall.
    EXPECT_NE(e.diagnostic().find("worker 0"), std::string::npos);
    EXPECT_NE(e.diagnostic().find("worker 1"), std::string::npos);
  }
}

TEST(Resilience, WatchdogFailsStalledRunOnEveryWatchdogBackend) {
  // Registry matrix: every executes_bodies backend with supports_watchdog
  // (rio, rio-pruned, coor, hybrid) escalates a hung task to StallError.
  // Task 20 lands in the hybrid default partial's dynamic phase, so the
  // hybrid row exercises the coor-side watchdog behind the phase barrier.
  for (const engine::Backend* backend : engine::Registry::instance().all()) {
    const engine::Capabilities& caps = backend->caps();
    if (!caps.executes_bodies || !caps.supports_watchdog) continue;
    SCOPED_TRACE(std::string(backend->name()));

    stf::DataHandle<int> d;
    auto flow = increment_chain(30, d);
    support::FaultPlan plan;
    plan.stall_tasks = {20};
    plan.stall_ns = 10'000'000'000ull;  // 10 s — far beyond the window
    support::FaultInjector injector(plan);

    engine::Launch launch;
    launch.workers = 2;
    launch.fault = &injector;
    launch.watchdog_ns = 200'000'000ull;
    if (caps.needs_mapping) launch.mapping = rt::mapping::round_robin(2);
    EXPECT_THROW((void)backend->run(stf::FlowImage::compile(flow), launch),
                 stf::StallError);
  }
}

TEST(Resilience, CoorWatchdogFailsStalledRun) {
  stf::DataHandle<int> d;
  auto flow = increment_chain(30, d);
  support::FaultPlan plan;
  plan.stall_tasks = {10};
  plan.stall_ns = 10'000'000'000ull;
  support::FaultInjector injector(plan);
  coor::Runtime runtime(coor::Config{.num_workers = 2,
                                     .fault = &injector,
                                     .watchdog_ns = 200'000'000ull});
  try {
    runtime.run(flow);
    FAIL() << "expected StallError";
  } catch (const stf::StallError& e) {
    EXPECT_NE(e.diagnostic().find("coor"), std::string::npos);
    EXPECT_NE(e.diagnostic().find("worker"), std::string::npos);
  }
}

TEST(Resilience, HybridPhaseFailureCancelsLaterPhases) {
  // Three phases (static 0-9, dynamic 10-19, static 20-29); retry
  // exhaustion in the middle phase must propagate as TaskFailure and no
  // body of the last phase may ever run.
  std::atomic<int> max_phase{-1};
  stf::TaskFlow flow;
  auto d = flow.create_data<int>("d");
  for (int i = 0; i < 30; ++i)
    flow.add("t" + std::to_string(i),
             [i, &max_phase](stf::TaskContext&) {
               int phase = i / 10;
               int seen = max_phase.load();
               while (phase > seen &&
                      !max_phase.compare_exchange_weak(seen, phase)) {
               }
             },
             {stf::readwrite(d)});

  support::FaultPlan plan;
  plan.throw_tasks = {12};
  plan.throw_attempts = 99;
  support::FaultInjector injector(plan);
  hybrid::Runtime runtime(hybrid::Config{.num_workers = 2,
                                         .retry = {.max_attempts = 2},
                                         .fault = &injector});
  EXPECT_THROW(
      runtime.run(flow,
                  [](stf::TaskId t) -> std::optional<stf::WorkerId> {
                    if (t < 10 || t >= 20)
                      return static_cast<stf::WorkerId>(t % 2);
                    return std::nullopt;
                  }),
      stf::TaskFailure);
  EXPECT_EQ(runtime.completed_phases(), 1u);  // only the first static phase
  EXPECT_EQ(max_phase.load(), 1);             // no phase-2 body ever ran
}

TEST(Resilience, ThrowViaFlowImageRunCancels) {
  // PR-2 replay path: a throwing body reached through run(FlowImage) must
  // cancel exactly like the materialized path.
  std::atomic<int> executed{0};
  auto flow = throwing_flow(30, 9, executed);
  const auto image = stf::FlowImage::compile(flow);
  rt::Runtime runtime(rt::Config{.num_workers = 2});
  EXPECT_THROW(runtime.run(image, rt::mapping::round_robin(2)), BoomError);
  EXPECT_EQ(executed.load(), 9);
}

// ---- Per-task retry budgets (support::RetryPolicy::task_attempts) --------

TEST(Resilience, PerTaskRetryBudgetOverridesGlobal) {
  // Task 5 throws on attempts 1-3. The global budget (2) would fail it,
  // but its per-task override (5 attempts) lets attempt 4 succeed.
  stf::DataHandle<int> d;
  auto flow = increment_chain(12, d);
  support::FaultPlan plan;
  plan.throw_tasks = {5};
  plan.throw_attempts = 3;
  support::FaultInjector injector(plan);
  rt::Runtime runtime(
      rt::Config{.num_workers = 2,
                 .retry = {.max_attempts = 2, .task_attempts = {{5, 5}}},
                 .fault = &injector});
  runtime.run(flow, rt::mapping::round_robin(2));
  EXPECT_EQ(*flow.registry().typed<int>(d), 12);
  EXPECT_EQ(injector.injected_throws(), 3u);
}

TEST(Resilience, PerTaskRetryBudgetCanAlsoShrink) {
  // The override works downward too: a fail-fast task (budget 1) under a
  // generous global budget must escalate with attempts == 1.
  stf::DataHandle<int> d;
  auto flow = increment_chain(12, d);
  support::FaultPlan plan;
  plan.throw_tasks = {5};
  plan.throw_attempts = 99;
  support::FaultInjector injector(plan);
  rt::Runtime runtime(
      rt::Config{.num_workers = 2,
                 .retry = {.max_attempts = 4, .task_attempts = {{5, 1}}},
                 .fault = &injector});
  try {
    runtime.run(flow, rt::mapping::round_robin(2));
    FAIL() << "expected TaskFailure";
  } catch (const stf::TaskFailure& f) {
    EXPECT_EQ(f.report().task, 5u);
    EXPECT_EQ(f.report().attempts, 1u);
  }
}

// ---- Worker loss (docs/robustness.md "worker loss and recovery") ---------

TEST(Recovery, CompletionBoardTracksExactFrontier) {
  stf::CompletionBoard board;
  board.reset(10, 100, 4);  // base offset 10, sample every 4 completions
  std::uint32_t pending = 0;
  for (stf::TaskId t = 10; t < 35; ++t) {
    board.mark(t);
    board.note_completion(pending);
  }
  const stf::Frontier f = board.capture();
  EXPECT_EQ(f.completed, 25u);  // capture is exact regardless of sampling
  EXPECT_EQ(f.remaining(), 75u);
  for (stf::TaskId t = 10; t < 35; ++t) EXPECT_TRUE(f.done(t));
  EXPECT_FALSE(f.done(35));
  EXPECT_FALSE(f.done(109));
  // The sampled counter lags by at most sample_every - 1.
  EXPECT_LE(board.sampled_completed(), 25u);
  EXPECT_GE(board.sampled_completed() + 3, 25u);
}

TEST(Recovery, CrashWithoutSupervisorEscalatesWorkerLost) {
  // A crash-armed plan with nobody supervising: the run must abort with
  // stf::WorkerLost (not hang, not succeed), carrying the death record.
  stf::DataHandle<int> d;
  auto flow = increment_chain(20, d);
  support::FaultPlan plan;
  plan.crash_tasks = {8};
  plan.max_crashes = 1;
  support::FaultInjector injector(plan);
  rt::Runtime runtime(rt::Config{.num_workers = 2, .fault = &injector});
  try {
    runtime.run(flow, rt::mapping::round_robin(2));
    FAIL() << "expected WorkerLost";
  } catch (const stf::WorkerLost& loss) {
    ASSERT_EQ(loss.deaths().size(), 1u);
    EXPECT_EQ(loss.deaths()[0].task, 8u);
    EXPECT_EQ(loss.deaths()[0].worker, 8u % 2);
  }
  EXPECT_EQ(injector.injected_crashes(), 1u);
}

TEST(Recovery, SupervisedRunRecoversOnEveryRecoveryBackend) {
  // Registry matrix: every executes_bodies backend with supports_recovery
  // (rio, rio-pruned, coor, hybrid) survives a worker death mid-run via
  // evict-and-remap and still produces the exact sequential result. The
  // crash fires AFTER the body ran, so a correct final value proves the
  // dirty-span restore + frontier replay really happened.
  for (const engine::Backend* backend : engine::Registry::instance().all()) {
    const engine::Capabilities& caps = backend->caps();
    if (!caps.executes_bodies || !caps.supports_recovery) continue;
    SCOPED_TRACE(std::string(backend->name()));

    stf::DataHandle<int> d;
    auto flow = increment_chain(40, d);
    support::FaultPlan plan;
    plan.crash_tasks = {9};
    plan.max_crashes = 1;
    support::FaultInjector injector(plan);

    engine::Launch launch;
    launch.workers = 3;
    launch.fault = &injector;
    if (caps.needs_mapping) launch.mapping = rt::mapping::round_robin(3);
    const engine::Outcome out = engine::run_supervised(
        *backend, stf::FlowImage::compile(flow), launch);
    EXPECT_EQ(*flow.registry().typed<int>(d), 40);
    EXPECT_EQ(out.evictions, 1u);
    ASSERT_EQ(out.evicted_workers.size(), 1u);
    EXPECT_EQ(injector.injected_crashes(), 1u);
    EXPECT_GT(out.recovery_wall_ns, 0u);
  }
}

TEST(Recovery, SupervisorRethrowsWhenWorkersExhausted) {
  // Unlimited crash budget on one stubborn task: the supervisor evicts
  // down to a single worker, then the next death must escalate.
  stf::DataHandle<int> d;
  auto flow = increment_chain(20, d);
  support::FaultPlan plan;
  plan.crash_tasks = {6};  // max_crashes = 0: crashes forever
  support::FaultInjector injector(plan);

  const engine::Backend* rio = engine::Registry::instance().find("rio");
  ASSERT_NE(rio, nullptr);
  engine::Launch launch;
  launch.workers = 2;
  launch.fault = &injector;
  launch.mapping = rt::mapping::round_robin(2);
  EXPECT_THROW((void)engine::run_supervised(
                   *rio, stf::FlowImage::compile(flow), launch),
               stf::WorkerLost);
  EXPECT_EQ(injector.injected_crashes(), 2u);  // one per pool size 2, 1
}

TEST(Recovery, SupervisorHonoursEvictionBudget) {
  stf::DataHandle<int> d;
  auto flow = increment_chain(20, d);
  support::FaultPlan plan;
  plan.crash_tasks = {3, 11};
  plan.max_crashes = 2;
  support::FaultInjector injector(plan);

  const engine::Backend* rio = engine::Registry::instance().find("rio");
  ASSERT_NE(rio, nullptr);
  engine::Launch launch;
  launch.workers = 4;
  launch.fault = &injector;
  launch.mapping = rt::mapping::round_robin(4);
  engine::SupervisorOptions opts;
  opts.max_evictions = 1;  // the second death exceeds the budget
  EXPECT_THROW((void)engine::run_supervised(
                   *rio, stf::FlowImage::compile(flow), launch, opts),
               stf::WorkerLost);
}

TEST(Recovery, ResumeSkipsFrontierTasksAndReportsReplay) {
  // Direct resume (no supervisor): a frontier claiming tasks 0-9 done
  // must keep those bodies from running again while the protocol still
  // walks them, and the replay count must surface via obs.
  stf::TaskFlow flow;
  auto d = flow.create_data<int>("d");
  std::atomic<int> executed{0};
  for (int i = 0; i < 20; ++i)
    flow.add("t" + std::to_string(i),
             [&executed, d](stf::TaskContext& ctx) {
               ctx.scalar(d) += 1;
               executed.fetch_add(1);
             },
             {stf::readwrite(d)});

  stf::CompletionBoard board;
  board.reset(0, 20);
  for (stf::TaskId t = 0; t < 10; ++t) board.mark(t);
  const stf::Frontier frontier = board.capture();

  obs::Hub hub;
  rt::Runtime runtime(rt::Config{.num_workers = 2,
                                 .resume = &frontier,
                                 .obs = &hub});
  runtime.run(flow, rt::mapping::round_robin(2));
  EXPECT_EQ(executed.load(), 10);  // only the un-done half ran
  EXPECT_EQ(*flow.registry().typed<int>(d), 10);
  EXPECT_EQ(hub.counter_snapshot().total(obs::Counter::kTasksReplayed), 10u);
}

TEST(Recovery, EvictedMappingCoversAllWorkersInRange) {
  // mapping::evict: survivors keep a contiguous id space and every task
  // lands on a live worker.
  const rt::Mapping m = rt::mapping::round_robin(4);
  const rt::Mapping e = rt::mapping::evict(m, 1, 4);
  for (stf::TaskId t = 0; t < 64; ++t) {
    const stf::WorkerId w = e(t);
    EXPECT_LT(w, 3u);
    const stf::WorkerId old = m(t);
    if (old != 1) EXPECT_EQ(w, old > 1 ? old - 1 : old);
  }
}

TEST(Resilience, PrunedCachedPlanSurvivesFailure) {
  // A cancelled run through the cached-plan fast path must not poison the
  // cache: the next run over the same (image, mapping) reuses the plan and
  // completes.
  std::atomic<bool> armed{true};
  std::atomic<int> executed{0};
  stf::TaskFlow flow;
  auto d = flow.create_data<int>("d");
  for (int i = 0; i < 20; ++i)
    flow.add("t" + std::to_string(i),
             [i, &armed, &executed](stf::TaskContext&) {
               if (i == 7 && armed.load()) throw BoomError{};
               executed.fetch_add(1);
             },
             {stf::readwrite(d)});
  const auto image = stf::FlowImage::compile(flow);
  const auto mapping = rt::mapping::round_robin(2);
  rt::PrunedRuntime runtime(rt::Config{.num_workers = 2});

  EXPECT_THROW(runtime.run(image, mapping), BoomError);
  EXPECT_EQ(executed.load(), 7);

  armed.store(false);
  executed.store(0);
  runtime.run(image, mapping);  // must not throw
  EXPECT_EQ(executed.load(), 20);
  EXPECT_EQ(runtime.plan_compiles(), 1u);  // plan compiled exactly once
}

}  // namespace
