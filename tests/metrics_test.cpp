// Tests for the efficiency decomposition (Section 2.3): algebraic identity,
// limiting cases and degenerate inputs.
#include <gtest/gtest.h>

#include "metrics/efficiency.hpp"

namespace {

using rio::metrics::decompose;
using rio::metrics::decompose_synthetic;
using rio::metrics::parallel_efficiency;
using rio::support::TimeBuckets;

TEST(Efficiency, ProductEqualsParallelEfficiency) {
  // e_g*e_l*e_p*e_r must equal t / tau_p by the algebra of Section 2.3.
  const std::uint64_t t_best = 800, t_seq_g = 1000;
  const TimeBuckets cum{1200, 300, 100};
  const auto e = decompose(t_best, t_seq_g, cum);
  const double direct =
      static_cast<double>(t_best) / static_cast<double>(cum.total());
  EXPECT_NEAR(e.product(), direct, 1e-12);
}

TEST(Efficiency, SyntheticKernelHasUnitGranularityAndLocality) {
  const TimeBuckets cum{5000, 1000, 500};
  const auto e = decompose_synthetic(cum);
  EXPECT_DOUBLE_EQ(e.e_g, 1.0);
  EXPECT_DOUBLE_EQ(e.e_l, 1.0);
  EXPECT_NEAR(e.e_p, 5000.0 / 6000.0, 1e-12);
  EXPECT_NEAR(e.e_r, 6000.0 / 6500.0, 1e-12);
}

TEST(Efficiency, PerfectRunIsAllOnes) {
  const TimeBuckets cum{1000, 0, 0};
  const auto e = decompose(1000, 1000, cum);
  EXPECT_DOUBLE_EQ(e.e_g, 1.0);
  EXPECT_DOUBLE_EQ(e.e_l, 1.0);
  EXPECT_DOUBLE_EQ(e.e_p, 1.0);
  EXPECT_DOUBLE_EQ(e.e_r, 1.0);
  EXPECT_DOUBLE_EQ(e.product(), 1.0);
}

TEST(Efficiency, IdleOnlyHurtsPipelining) {
  const auto base = decompose(100, 100, TimeBuckets{100, 0, 0});
  const auto idle = decompose(100, 100, TimeBuckets{100, 100, 0});
  EXPECT_LT(idle.e_p, base.e_p);
  EXPECT_DOUBLE_EQ(idle.e_r, 1.0);
}

TEST(Efficiency, RuntimeOnlyHurtsRuntimeEfficiency) {
  const auto e = decompose(100, 100, TimeBuckets{100, 0, 100});
  EXPECT_DOUBLE_EQ(e.e_p, 1.0);
  EXPECT_NEAR(e.e_r, 0.5, 1e-12);
}

TEST(Efficiency, SuperLinearLocalityAllowed) {
  // e_l > 1: multi-cache effects can beat the sequential run (Section 2.3).
  const auto e = decompose(1000, 1000, TimeBuckets{800, 0, 0});
  EXPECT_GT(e.e_l, 1.0);
}

TEST(Efficiency, DegenerateZeroBucketsPrintable) {
  const auto e = decompose(0, 0, TimeBuckets{});
  EXPECT_EQ(e.e_g, 1.0);
  EXPECT_EQ(e.e_l, 1.0);
  EXPECT_EQ(e.e_p, 1.0);
  EXPECT_EQ(e.e_r, 1.0);
}

TEST(Efficiency, ParallelEfficiencyDirect) {
  EXPECT_NEAR(parallel_efficiency(1000, 4, 500), 0.5, 1e-12);
  EXPECT_EQ(parallel_efficiency(100, 0, 0), 1.0);
}

TEST(Efficiency, MasterlessCapMatchesPaper) {
  // A dedicated master caps e_r at (p-1)/p (Section 5.2): with p=4 threads,
  // 3 working and 1 managing for the whole run, e_r = 3/4.
  const std::uint64_t span = 1000;
  TimeBuckets cum{3 * span, 0, span};  // 3 workers fully busy + 1 master
  const auto e = decompose(3 * span, 3 * span, cum);
  EXPECT_NEAR(e.e_r, 0.75, 1e-12);
}

}  // namespace
