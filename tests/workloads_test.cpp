// Tests for the workload generators and numeric kernels: task counts, DAG
// shape invariants, owner-table validity, kernel correctness against
// straightforward references.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "stf/stf.hpp"
#include "workloads/workloads.hpp"

namespace {

using namespace rio;
using namespace rio::workloads;

// ------------------------------------------------------------ synthetic ----

TEST(Independent, CountAndNoData) {
  IndependentSpec spec;
  spec.num_tasks = 77;
  spec.num_workers = 3;
  auto wl = make_independent(spec);
  EXPECT_EQ(wl.flow.num_tasks(), 77u);
  EXPECT_EQ(wl.flow.num_data(), 0u);
  ASSERT_EQ(wl.owners.size(), 77u);
  for (std::size_t t = 0; t < 77; ++t)
    EXPECT_EQ(wl.owners[t], t % 3);
  stf::DependencyGraph g(wl.flow);
  EXPECT_EQ(g.num_edges(), 0u);
}

TEST(Independent, CostOnlyFlowHasNoBodies) {
  IndependentSpec spec;
  spec.num_tasks = 5;
  spec.task_cost = 123;
  spec.body = BodyKind::kNone;
  auto wl = make_independent(spec);
  for (const auto& t : wl.flow.tasks()) {
    EXPECT_FALSE(static_cast<bool>(t.fn));
    EXPECT_EQ(t.cost, 123u);
  }
}

TEST(RandomDeps, PaperParameters) {
  RandomDepsSpec spec;  // defaults are the paper's
  EXPECT_EQ(spec.num_data, 128u);
  EXPECT_EQ(spec.reads_per_task, 2u);
  EXPECT_EQ(spec.writes_per_task, 1u);
  spec.num_tasks = 500;
  auto wl = make_random_deps(spec);
  EXPECT_EQ(wl.flow.num_tasks(), 500u);
  EXPECT_EQ(wl.flow.num_data(), 128u);
  for (const auto& t : wl.flow.tasks()) {
    ASSERT_EQ(t.accesses.size(), 3u);
    int reads = 0, writes = 0;
    for (const auto& a : t.accesses) (is_write(a.mode) ? writes : reads)++;
    EXPECT_EQ(reads, 2);
    EXPECT_EQ(writes, 1);
    // Distinct objects within one task.
    EXPECT_NE(t.accesses[0].data, t.accesses[1].data);
    EXPECT_NE(t.accesses[0].data, t.accesses[2].data);
    EXPECT_NE(t.accesses[1].data, t.accesses[2].data);
  }
}

TEST(RandomDeps, SeedReproducibility) {
  RandomDepsSpec spec;
  spec.num_tasks = 100;
  auto a = make_random_deps(spec);
  auto b = make_random_deps(spec);
  spec.seed = 43;
  auto c = make_random_deps(spec);
  for (std::size_t t = 0; t < 100; ++t)
    EXPECT_EQ(a.flow.task(t).accesses[0].data, b.flow.task(t).accesses[0].data);
  bool any_diff = false;
  for (std::size_t t = 0; t < 100; ++t)
    any_diff |= a.flow.task(t).accesses[0].data != c.flow.task(t).accesses[0].data;
  EXPECT_TRUE(any_diff);
}

// ----------------------------------------------------------- gemm DAG ------

TEST(GemmDag, CountsAndChainStructure) {
  GemmDagSpec spec;
  spec.tiles = 3;
  spec.num_workers = 4;
  auto wl = make_gemm_dag(spec);
  EXPECT_EQ(wl.flow.num_tasks(), 27u);  // nt^3
  EXPECT_EQ(wl.flow.num_data(), 27u);   // 3 grids of nt^2
  stf::DependencyGraph g(wl.flow);
  // Each C(i,j) chain: k=0 task has no preds, k>0 depends on predecessor.
  EXPECT_EQ(g.max_ready_width(), 9u);   // all nt^2 chains start ready
  EXPECT_EQ(g.critical_path_cost(wl.flow), 3u * spec.task_cost);
  ASSERT_EQ(wl.owners.size(), 27u);
  for (auto o : wl.owners) EXPECT_LT(o, 4u);
}

TEST(GemmNumeric, MatchesBlockedDgemm) {
  constexpr std::uint32_t nt = 3, dim = 8;
  const std::size_t n = nt * dim;
  TiledMatrix a(nt, dim), b(nt, dim), c(nt, dim);
  a.fill_random(1);
  b.fill_random(2);
  auto wl = make_gemm_numeric(a, b, c);
  stf::SequentialExecutor{}.run(wl.flow);

  // Dense reference on the same values.
  std::vector<double> da(n * n), db(n * n), dc(n * n, 0.0);
  for (std::size_t r = 0; r < n; ++r)
    for (std::size_t col = 0; col < n; ++col) {
      da[r + col * n] = a.at(r, col);
      db[r + col * n] = b.at(r, col);
    }
  naive_dgemm(dc.data(), da.data(), db.data(), n);
  double worst = 0;
  for (std::size_t r = 0; r < n; ++r)
    for (std::size_t col = 0; col < n; ++col)
      worst = std::max(worst, std::fabs(dc[r + col * n] - c.at(r, col)));
  EXPECT_LT(worst, 1e-12);
}

// -------------------------------------------------------------- lu DAG -----

TEST(LuDag, TaskCountFormulaMatchesGenerator) {
  for (auto [r, c] : {std::pair{2u, 2u}, {3u, 2u}, {3u, 3u}, {5u, 4u}}) {
    LuDagSpec spec;
    spec.row_tiles = r;
    spec.col_tiles = c;
    auto wl = make_lu_dag(spec);
    EXPECT_EQ(wl.flow.num_tasks(), lu_dag_task_count(r, c))
        << r << "x" << c;
  }
}

TEST(LuDag, GetrfChainIsCriticalPathBackbone) {
  LuDagSpec spec;
  spec.row_tiles = 4;
  spec.col_tiles = 4;
  spec.task_cost = 10;
  auto wl = make_lu_dag(spec);
  stf::DependencyGraph g(wl.flow);
  // getrf(k) -> trsm -> gemm -> getrf(k+1): >= 3 tasks per step except the
  // last: critical path >= (3 * (nt-1) + 1) * cost.
  EXPECT_GE(g.critical_path_cost(wl.flow), (3u * 3u + 1u) * 10u);
}

TEST(LuDag, RectangularGridsSupported) {
  LuDagSpec spec;
  spec.row_tiles = 4;
  spec.col_tiles = 2;
  auto wl = make_lu_dag(spec);
  EXPECT_EQ(wl.flow.num_tasks(), lu_dag_task_count(4, 2));
  stf::DependencyGraph g(wl.flow);
  EXPECT_GT(g.num_edges(), 0u);
}

// ------------------------------------------------------------ cholesky -----

TEST(CholeskyDag, TaskCountFormulaMatchesGenerator) {
  for (std::uint32_t nt : {2u, 3u, 4u, 6u}) {
    CholeskyDagSpec spec;
    spec.tiles = nt;
    auto wl = make_cholesky_dag(spec);
    EXPECT_EQ(wl.flow.num_tasks(), cholesky_dag_task_count(nt)) << nt;
  }
}

TEST(CholeskyNumeric, ReconstructsSpdMatrix) {
  constexpr std::uint32_t nt = 3, dim = 8;
  const std::size_t n = nt * dim;
  TiledMatrix a(nt, dim);
  a.fill_random_diagonally_dominant(7);
  a.symmetrize();
  TiledMatrix original = a;
  auto wl = make_cholesky_numeric(a);
  stf::SequentialExecutor{}.run(wl.flow);
  // L * L^T must reproduce the original (lower triangle holds L).
  double worst = 0;
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = 0; c <= r; ++c) {
      double acc = 0;
      for (std::size_t k = 0; k <= c; ++k) acc += a.at(r, k) * a.at(c, k);
      worst = std::max(worst, std::fabs(acc - original.at(r, c)));
    }
  }
  EXPECT_LT(worst, 1e-10);
}

// ------------------------------------------------------------- stencil -----

TEST(StencilDag, TaskCountAndNeighbourDeps) {
  StencilSpec spec;
  spec.chunks = 8;
  spec.steps = 3;
  spec.num_workers = 4;
  auto wl = make_stencil_dag(spec);
  EXPECT_EQ(wl.flow.num_tasks(), 24u);
  stf::DependencyGraph g(wl.flow);
  // A middle chunk at step 1 depends on 3 writers from step 0.
  const stf::TaskId mid = 8 + 4;
  EXPECT_EQ(g.predecessors(mid).size(), 3u);
  // Border chunks depend on 2.
  EXPECT_EQ(g.predecessors(8).size(), 2u);
  // Owners are a non-decreasing block map over chunks.
  for (std::size_t t = 1; t < 8; ++t)
    EXPECT_LE(wl.owners[t - 1], wl.owners[t]);
}

TEST(StencilNumeric, ConservesMassRoughly) {
  // The 3-point kernel with reflective boundaries preserves the total sum.
  constexpr std::uint32_t chunks = 4, len = 8, steps = 6;
  std::vector<double> a(chunks * len, 0.0), b(chunks * len, 0.0);
  a[10] = 64.0;
  const double before = 64.0;
  auto wl = make_stencil_numeric(chunks, len, steps, a, b);
  stf::SequentialExecutor{}.run(wl.flow);
  const auto& result = (steps % 2 == 0) ? a : b;
  double after = 0;
  for (double v : result) after += v;
  EXPECT_NEAR(after, before, 1e-9);
}

// --------------------------------------------------------- dense kernels ---

TEST(DenseKernels, GetrfReconstructsMatrix) {
  constexpr std::size_t n = 6;
  std::vector<double> a(n * n);
  support::Xoshiro256 rng(3);
  for (auto& v : a) v = rng.uniform();
  for (std::size_t i = 0; i < n; ++i) a[i + i * n] += n;  // dominant
  auto lu = a;
  getrf_tile(lu.data(), n);
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = 0; c < n; ++c) {
      double acc = 0;
      for (std::size_t k = 0; k <= std::min(r, c); ++k)
        acc += (k == r ? 1.0 : lu[r + k * n]) * lu[k + c * n];
      EXPECT_NEAR(acc, a[r + c * n], 1e-10);
    }
  }
}

TEST(DenseKernels, TrsmLowerLeftSolves) {
  constexpr std::size_t n = 5;
  std::vector<double> lu(n * n, 0.0), b(n * n), x(n * n);
  support::Xoshiro256 rng(5);
  for (std::size_t c = 0; c < n; ++c)
    for (std::size_t r = 0; r < n; ++r)
      lu[r + c * n] = (r > c) ? rng.uniform() : (r == c ? 3.0 : rng.uniform());
  for (auto& v : x) v = rng.uniform();
  // b = L * x with unit diagonal L (lower part of lu).
  for (std::size_t c = 0; c < n; ++c)
    for (std::size_t r = 0; r < n; ++r) {
      double acc = x[r + c * n];
      for (std::size_t k = 0; k < r; ++k) acc += lu[r + k * n] * x[k + c * n];
      b[r + c * n] = acc;
    }
  trsm_lower_left(lu.data(), b.data(), n);
  for (std::size_t i = 0; i < n * n; ++i) EXPECT_NEAR(b[i], x[i], 1e-12);
}

TEST(DenseKernels, TrsmUpperRightSolves) {
  constexpr std::size_t n = 5;
  std::vector<double> lu(n * n, 0.0), x(n * n), b(n * n, 0.0);
  support::Xoshiro256 rng(6);
  for (std::size_t c = 0; c < n; ++c)
    for (std::size_t r = 0; r <= c; ++r)
      lu[r + c * n] = (r == c) ? 2.0 + rng.uniform() : rng.uniform();
  for (auto& v : x) v = rng.uniform();
  // b = X * U.
  for (std::size_t c = 0; c < n; ++c)
    for (std::size_t r = 0; r < n; ++r) {
      double acc = 0;
      for (std::size_t k = 0; k <= c; ++k)
        acc += x[r + k * n] * lu[k + c * n];
      b[r + c * n] = acc;
    }
  trsm_upper_right(lu.data(), b.data(), n);
  for (std::size_t i = 0; i < n * n; ++i) EXPECT_NEAR(b[i], x[i], 1e-12);
}

TEST(DenseKernels, PotrfFactorsSpd) {
  constexpr std::size_t n = 6;
  std::vector<double> a(n * n);
  support::Xoshiro256 rng(8);
  for (std::size_t c = 0; c < n; ++c)
    for (std::size_t r = 0; r <= c; ++r) {
      const double v = rng.uniform();
      a[r + c * n] = v;
      a[c + r * n] = v;
    }
  for (std::size_t i = 0; i < n; ++i) a[i + i * n] += n;
  auto l = a;
  potrf_tile(l.data(), n);
  for (std::size_t r = 0; r < n; ++r)
    for (std::size_t c = 0; c <= r; ++c) {
      double acc = 0;
      for (std::size_t k = 0; k <= c; ++k) acc += l[r + k * n] * l[c + k * n];
      EXPECT_NEAR(acc, a[r + c * n], 1e-10);
    }
}

TEST(DenseKernels, SyrkLowerTriangle) {
  constexpr std::size_t n = 4;
  std::vector<double> a(n * n), c(n * n, 0.0), expect(n * n, 0.0);
  support::Xoshiro256 rng(9);
  for (auto& v : a) v = rng.uniform();
  syrk_tile(c.data(), a.data(), n);
  for (std::size_t r = 0; r < n; ++r)
    for (std::size_t col = 0; col <= r; ++col) {
      double acc = 0;
      for (std::size_t k = 0; k < n; ++k)
        acc -= a[r + k * n] * a[col + k * n];
      expect[r + col * n] = acc;
    }
  for (std::size_t r = 0; r < n; ++r)
    for (std::size_t col = 0; col <= r; ++col)
      EXPECT_NEAR(c[r + col * n], expect[r + col * n], 1e-12);
}

class BlockedDgemm : public ::testing::TestWithParam<std::size_t> {};

TEST_P(BlockedDgemm, MatchesNaiveForAnyBlockSize) {
  constexpr std::size_t n = 37;  // deliberately not a multiple of any block
  std::vector<double> a(n * n), b(n * n), c1(n * n, 0.0), c2(n * n, 0.0);
  support::Xoshiro256 rng(11);
  for (auto& v : a) v = rng.uniform();
  for (auto& v : b) v = rng.uniform();
  naive_dgemm(c1.data(), a.data(), b.data(), n);
  blocked_dgemm(c2.data(), a.data(), b.data(), n, GetParam());
  for (std::size_t i = 0; i < n * n; ++i) EXPECT_NEAR(c1[i], c2[i], 1e-11);
}

INSTANTIATE_TEST_SUITE_P(Blocks, BlockedDgemm,
                         ::testing::Values(1, 4, 7, 16, 37, 64));

// ----------------------------------------------------------- TiledMatrix ---

TEST(TiledMatrix, GlobalIndexingRoundTrips) {
  TiledMatrix m(3, 4);
  for (std::size_t r = 0; r < 12; ++r)
    for (std::size_t c = 0; c < 12; ++c)
      m.at(r, c) = static_cast<double>(r * 100 + c);
  // Check via raw tile pointers.
  for (std::uint32_t ti = 0; ti < 3; ++ti)
    for (std::uint32_t tj = 0; tj < 3; ++tj) {
      const double* tile = m.tile(ti, tj);
      for (std::uint32_t r = 0; r < 4; ++r)
        for (std::uint32_t c = 0; c < 4; ++c)
          EXPECT_EQ(tile[r + c * 4],
                    static_cast<double>((ti * 4 + r) * 100 + tj * 4 + c));
    }
}

TEST(TiledMatrix, DiagonallyDominantIsLuSafe) {
  TiledMatrix m(2, 8);
  m.fill_random_diagonally_dominant(17);
  for (std::size_t r = 0; r < 16; ++r) {
    double off = 0;
    for (std::size_t c = 0; c < 16; ++c)
      if (c != r) off += std::fabs(m.at(r, c));
    EXPECT_GT(std::fabs(m.at(r, r)), off);
  }
}

TEST(TiledMatrix, SymmetrizeIsSymmetric) {
  TiledMatrix m(2, 4);
  m.fill_random(19);
  m.symmetrize();
  for (std::size_t r = 0; r < 8; ++r)
    for (std::size_t c = 0; c < 8; ++c)
      EXPECT_EQ(m.at(r, c), m.at(c, r));
}

// --------------------------------------------------------- kernel model ----

TEST(KernelModel, AnalyticEfficiencyMonotone) {
  KernelModel m;
  double prev = 0;
  for (double b : {8.0, 16.0, 64.0, 256.0, 2048.0}) {
    const double e = m.efficiency(b);
    EXPECT_GT(e, prev);
    EXPECT_LE(e, 1.0);
    prev = e;
  }
}

TEST(KernelModel, MeasuredPointsInterpolate) {
  auto m = KernelModel::from_measurements({{8, 0.4}, {64, 0.8}, {512, 1.0}});
  EXPECT_DOUBLE_EQ(m.efficiency(8), 0.4);
  EXPECT_DOUBLE_EQ(m.efficiency(512), 1.0);
  EXPECT_DOUBLE_EQ(m.efficiency(4), 0.4);     // clamped below
  EXPECT_DOUBLE_EQ(m.efficiency(1024), 1.0);  // clamped above
  const double mid = m.efficiency(22.6);       // ~log-midpoint of 8..64
  EXPECT_GT(mid, 0.55);
  EXPECT_LT(mid, 0.65);
}

TEST(KernelModel, TileCostInverseToEfficiency) {
  KernelModel m(1.0);  // peak 1 flop/tick
  const auto c64 = m.tile_cost(64);
  // cost = 2 b^3 / e: with e < 1, cost exceeds the raw flop count.
  EXPECT_GT(c64, 2ull * 64 * 64 * 64);
}

// ---------------------------------------------------------- counter cal ----

TEST(CounterCalibration, ProducesPlausibleRate) {
  const double rate = counter_iterations_per_ns(2);
  EXPECT_GT(rate, 0.01);  // >= 10 MHz equivalent
  EXPECT_LT(rate, 100.0); // <= 100 GHz equivalent
}

}  // namespace
