// Unit tests for the STF programming-model layer: flow building, dependency
// analysis, the sequential reference executor and the trace validator.
#include <gtest/gtest.h>

#include "stf/stf.hpp"

namespace {

using namespace rio;
using namespace rio::stf;

// --------------------------------------------------------------- builder ---

TEST(TaskFlow, AssignsIdsInSubmissionOrder) {
  TaskFlow flow;
  auto d = flow.create_data<int>("d");
  for (int i = 0; i < 5; ++i)
    flow.add("t" + std::to_string(i), [](TaskContext&) {}, {readwrite(d)});
  ASSERT_EQ(flow.num_tasks(), 5u);
  for (TaskId t = 0; t < 5; ++t) EXPECT_EQ(flow.task(t).id, t);
}

TEST(TaskFlow, RegistersAndResolvesData) {
  TaskFlow flow;
  auto a = flow.create_data<double>("a", 16);
  int external = 99;
  auto b = flow.attach_data<int>("b", &external);
  EXPECT_EQ(flow.num_data(), 2u);
  EXPECT_EQ(flow.registry().name(a.id), "a");
  EXPECT_EQ(flow.registry().bytes(a.id), 16 * sizeof(double));
  EXPECT_EQ(flow.registry().typed<int>(b), &external);
}

TEST(TaskFlow, FromProgramMaterializes) {
  auto flow = TaskFlow::from_program([](SubmitSink& sink) {
    for (int i = 0; i < 3; ++i) sink.submit({}, {}, 10, "p" + std::to_string(i));
  });
  ASSERT_EQ(flow.num_tasks(), 3u);
  EXPECT_EQ(flow.task(1).name, "p1");
  EXPECT_EQ(flow.total_cost(), 30u);
}

TEST(TaskFlow, VirtualTasksHaveNoBody) {
  TaskFlow flow;
  flow.add_virtual(100, {});
  EXPECT_FALSE(static_cast<bool>(flow.task(0).fn));
  EXPECT_EQ(flow.task(0).cost, 100u);
}

TEST(Task, FindsAccessAndDetectsWrites) {
  TaskFlow flow;
  auto a = flow.create_data<int>("a");
  auto b = flow.create_data<int>("b");
  flow.add("t", {}, {read(a), write(b)});
  const Task& t = flow.task(0);
  AccessMode m{};
  EXPECT_TRUE(t.finds_access(a.id, m));
  EXPECT_EQ(m, AccessMode::kRead);
  EXPECT_TRUE(t.finds_access(b.id, m));
  EXPECT_EQ(m, AccessMode::kWrite);
  EXPECT_TRUE(t.has_write());
}

// --------------------------------------------------------- access modes ----

TEST(AccessMode, ReadWriteClassification) {
  EXPECT_TRUE(is_read(AccessMode::kRead));
  EXPECT_FALSE(is_write(AccessMode::kRead));
  EXPECT_TRUE(is_write(AccessMode::kWrite));
  EXPECT_FALSE(is_read(AccessMode::kWrite));
  EXPECT_TRUE(is_read(AccessMode::kReadWrite));
  EXPECT_TRUE(is_write(AccessMode::kReadWrite));
}

// ------------------------------------------------------------ dependency ---

// Builds a flow with the given access pattern on a single data object and
// returns its DAG.
TaskFlow single_data_flow(const std::vector<AccessMode>& modes) {
  TaskFlow flow;
  auto d = flow.create_data<int>("d");
  for (AccessMode m : modes) {
    Access a{d.id, m};
    flow.add("", {}, {a});
  }
  return flow;
}

TEST(DependencyGraph, ReadAfterWrite) {
  auto flow = single_data_flow({AccessMode::kWrite, AccessMode::kRead});
  DependencyGraph g(flow);
  EXPECT_EQ(g.predecessors(1), (std::vector<TaskId>{0}));
  EXPECT_EQ(g.successors(0), (std::vector<TaskId>{1}));
}

TEST(DependencyGraph, ConcurrentReadsShareOneProducer) {
  auto flow = single_data_flow(
      {AccessMode::kWrite, AccessMode::kRead, AccessMode::kRead});
  DependencyGraph g(flow);
  EXPECT_EQ(g.predecessors(1), (std::vector<TaskId>{0}));
  EXPECT_EQ(g.predecessors(2), (std::vector<TaskId>{0}));
  // The two reads are NOT ordered against each other.
  EXPECT_EQ(g.num_edges(), 2u);
}

TEST(DependencyGraph, WriteAfterReadsAndWrite) {
  auto flow = single_data_flow({AccessMode::kWrite, AccessMode::kRead,
                                AccessMode::kRead, AccessMode::kWrite});
  DependencyGraph g(flow);
  // Final write waits on both reads and the original write.
  EXPECT_EQ(g.predecessors(3), (std::vector<TaskId>{0, 1, 2}));
}

TEST(DependencyGraph, WriteAfterWriteChains) {
  auto flow = single_data_flow(
      {AccessMode::kWrite, AccessMode::kWrite, AccessMode::kWrite});
  DependencyGraph g(flow);
  EXPECT_EQ(g.predecessors(1), (std::vector<TaskId>{0}));
  EXPECT_EQ(g.predecessors(2), (std::vector<TaskId>{1}));
}

TEST(DependencyGraph, ReadWriteActsAsBoth) {
  auto flow = single_data_flow(
      {AccessMode::kWrite, AccessMode::kReadWrite, AccessMode::kRead});
  DependencyGraph g(flow);
  EXPECT_EQ(g.predecessors(1), (std::vector<TaskId>{0}));
  EXPECT_EQ(g.predecessors(2), (std::vector<TaskId>{1}));
}

TEST(DependencyGraph, DeduplicatesSharedProducer) {
  TaskFlow flow;
  auto a = flow.create_data<int>("a");
  auto b = flow.create_data<int>("b");
  flow.add("w", {}, {write(a), write(b)});
  flow.add("r", {}, {read(a), read(b)});
  DependencyGraph g(flow);
  EXPECT_EQ(g.predecessors(1), (std::vector<TaskId>{0}));
  EXPECT_EQ(g.num_edges(), 1u);
}

TEST(DependencyGraph, IndependentTasksHaveNoEdges) {
  TaskFlow flow;
  for (int i = 0; i < 10; ++i) flow.add("", {}, {});
  DependencyGraph g(flow);
  EXPECT_EQ(g.num_edges(), 0u);
  EXPECT_EQ(g.max_ready_width(), 10u);
}

TEST(DependencyGraph, CriticalPathOfAChain) {
  TaskFlow flow;
  auto d = flow.create_data<int>("d");
  for (int i = 0; i < 4; ++i) flow.add_virtual(10, {readwrite(d)});
  DependencyGraph g(flow);
  EXPECT_EQ(g.critical_path_cost(flow), 40u);
  EXPECT_EQ(g.max_ready_width(), 1u);
}

TEST(DependencyGraph, CriticalPathOfIndependentTasks) {
  TaskFlow flow;
  for (int i = 0; i < 4; ++i) flow.add_virtual(10, {});
  DependencyGraph g(flow);
  EXPECT_EQ(g.critical_path_cost(flow), 10u);
}

// ------------------------------------------------------------ sequential ---

TEST(SequentialExecutor, RunsTasksInOrderWithEffects) {
  TaskFlow flow;
  auto d = flow.create_data<int>("d");
  for (int i = 1; i <= 4; ++i)
    flow.add("mul", [d, i](TaskContext& ctx) { ctx.scalar(d) =
                        ctx.scalar(d) * 10 + i; },
             {readwrite(d)});
  auto stats = SequentialExecutor{}.run(flow);
  EXPECT_EQ(flow.registry().typed<int>(d)[0], 1234);
  EXPECT_EQ(stats.tasks_executed(), 4u);
  EXPECT_EQ(stats.num_workers(), 1u);
}

TEST(SequentialExecutor, SkipsBodylessTasks) {
  TaskFlow flow;
  flow.add_virtual(100, {});
  flow.add("real", [](TaskContext&) {}, {});
  auto stats = SequentialExecutor{}.run(flow);
  EXPECT_EQ(stats.tasks_executed(), 1u);
}

// ----------------------------------------------------------------- trace ---

// A tiny W->R->W flow used to craft valid and invalid traces by hand.
struct TraceFixture : ::testing::Test {
  TaskFlow flow;
  void SetUp() override {
    auto d = flow.create_data<int>("d");
    flow.add("w0", {}, {write(d)});
    flow.add("r1", {}, {read(d)});
    flow.add("w2", {}, {write(d)});
  }
};

TEST_F(TraceFixture, AcceptsSequentialExecution) {
  DependencyGraph g(flow);
  Trace tr;
  tr.record({0, 0, 0, 10, 0});
  tr.record({1, 1, 10, 20, 1});
  tr.record({2, 0, 20, 30, 2});
  EXPECT_TRUE(tr.validate(flow, g, true).ok());
}

TEST_F(TraceFixture, RejectsMissingTask) {
  DependencyGraph g(flow);
  Trace tr;
  tr.record({0, 0, 0, 10, 0});
  tr.record({1, 1, 10, 20, 1});
  const auto r = tr.validate(flow, g, false);
  EXPECT_FALSE(r.ok());
  EXPECT_NE(r.reason.find("never executed"), std::string::npos);
}

TEST_F(TraceFixture, RejectsDoubleExecution) {
  DependencyGraph g(flow);
  Trace tr;
  tr.record({0, 0, 0, 10, 0});
  tr.record({0, 1, 10, 20, 1});
  tr.record({1, 1, 20, 30, 2});
  tr.record({2, 0, 30, 40, 3});
  EXPECT_FALSE(tr.validate(flow, g, false).ok());
}

TEST_F(TraceFixture, RejectsDependencyViolation) {
  DependencyGraph g(flow);
  Trace tr;
  tr.record({0, 0, 5, 10, 0});
  tr.record({1, 1, 2, 4, 1});  // read started before the write finished
  tr.record({2, 0, 20, 30, 2});
  const auto r = tr.validate(flow, g, false);
  EXPECT_FALSE(r.ok());
  EXPECT_NE(r.reason.find("dependency"), std::string::npos);
}

TEST_F(TraceFixture, RejectsOutOfOrderWorkerWhenRequired) {
  DependencyGraph g(flow);
  Trace tr;
  // Worker 0 runs task 2 (seq 1) before task... craft: worker 0 executes
  // tasks 0 and 2 but with seq order swapped.
  tr.record({0, 0, 0, 10, 5});
  tr.record({1, 1, 10, 20, 6});
  tr.record({2, 0, 20, 30, 2});  // seq 2 < seq 5: task 2 "before" task 0
  EXPECT_FALSE(tr.validate(flow, g, true).ok());
  EXPECT_TRUE(tr.validate(flow, g, false).ok());
}

TEST(TraceRace, DetectsOverlappingConflict) {
  TaskFlow flow;
  auto d = flow.create_data<int>("d");
  flow.add("r", {}, {read(d)});
  flow.add("r2", {}, {read(d)});
  flow.add("w", {}, {write(d)});
  DependencyGraph g(flow);
  Trace tr;
  tr.record({0, 0, 0, 10, 0});
  tr.record({1, 1, 0, 10, 1});   // two reads overlapping: fine
  tr.record({2, 2, 5, 15, 2});   // write overlaps the reads: race
  const auto r = tr.validate(flow, g, false);
  EXPECT_FALSE(r.ok());
  EXPECT_NE(r.reason.find("data race"), std::string::npos);
}

TEST(TraceRace, AllowsConcurrentReaders) {
  TaskFlow flow;
  auto d = flow.create_data<int>("d");
  flow.add("r", {}, {read(d)});
  flow.add("r2", {}, {read(d)});
  DependencyGraph g(flow);
  Trace tr;
  tr.record({0, 0, 0, 10, 0});
  tr.record({1, 1, 0, 10, 1});
  EXPECT_TRUE(tr.validate(flow, g, false).ok());
}

TEST_F(TraceFixture, ZeroTimestampsAreSkippedNotValidated) {
  // An engine that records no clocks (all start/end zero) used to sail
  // through the race and dependency checks; it must now say it skipped
  // them.
  DependencyGraph g(flow);
  Trace tr;
  tr.record({0, 0, 0, 0, 0});
  tr.record({1, 1, 0, 0, 1});
  tr.record({2, 0, 0, 0, 2});
  const auto r = tr.validate(flow, g, false);
  EXPECT_TRUE(r.ok());  // structural checks still passed
  EXPECT_FALSE(r.timing_checked);
  EXPECT_FALSE(r.fully_checked());
  EXPECT_NE(r.reason.find("timestamps unavailable"), std::string::npos);
}

TEST_F(TraceFixture, TimedTraceReportsFullyChecked) {
  DependencyGraph g(flow);
  Trace tr;
  tr.record({0, 0, 0, 10, 0});
  tr.record({1, 1, 10, 20, 1});
  tr.record({2, 0, 20, 30, 2});
  const auto r = tr.validate(flow, g, false);
  EXPECT_TRUE(r.ok());
  EXPECT_TRUE(r.fully_checked());
}

// ---------------------------------------------------------- access guard ---

TEST(AccessGuard, AllowsConcurrentReaders) {
  AccessGuard guard;
  guard.enable(1);
  Access r{0, AccessMode::kRead};
  guard.acquire(r);
  guard.acquire(r);
  guard.release(r);
  guard.release(r);
}

TEST(AccessGuardDeath, AbortsOnWriteDuringRead) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  AccessGuard guard;
  guard.enable(1);
  Access r{0, AccessMode::kRead};
  Access w{0, AccessMode::kWrite};
  guard.acquire(r);
  EXPECT_DEATH(guard.acquire(w), "data race");
  guard.release(r);
}

TEST(AccessGuard, DisabledGuardIsNoop) {
  AccessGuard guard;
  Access w{0, AccessMode::kWrite};
  guard.acquire(w);  // would index out of bounds if not disabled
  guard.release(w);
  EXPECT_FALSE(guard.enabled());
}

}  // namespace
