// Tests for the persistent worker pool and its integration with the
// execution engines.
#include <gtest/gtest.h>

#include <atomic>
#include <set>

#include "coor/coor.hpp"
#include "hybrid/hybrid.hpp"
#include "rio/rio.hpp"
#include "support/thread_pool.hpp"
#include "workloads/workloads.hpp"

namespace {

using namespace rio;
using support::ThreadPool;

TEST(ThreadPool, RunsJobOnEveryWorkerExactlyOnce) {
  ThreadPool pool(4);
  std::atomic<std::uint32_t> mask{0};
  pool.run([&](std::uint32_t w) { mask.fetch_or(1u << w); });
  EXPECT_EQ(mask.load(), 0b1111u);
  EXPECT_EQ(pool.size(), 4u);
}

TEST(ThreadPool, SequentialRunsReuseThreads) {
  ThreadPool pool(3);
  std::set<std::thread::id> ids_first, ids_second;
  std::mutex mu;
  pool.run([&](std::uint32_t) {
    std::lock_guard lock(mu);
    ids_first.insert(std::this_thread::get_id());
  });
  pool.run([&](std::uint32_t) {
    std::lock_guard lock(mu);
    ids_second.insert(std::this_thread::get_id());
  });
  EXPECT_EQ(ids_first, ids_second);
  EXPECT_EQ(ids_first.size(), 3u);
}

TEST(ThreadPool, ManyGenerationsDoNotMissWakeups) {
  ThreadPool pool(2);
  std::atomic<int> total{0};
  for (int i = 0; i < 500; ++i)
    pool.run([&](std::uint32_t) { total.fetch_add(1); });
  EXPECT_EQ(total.load(), 1000);
}

TEST(ThreadPool, RunParallelFallsBackToSpawn) {
  std::atomic<std::uint32_t> mask{0};
  support::run_parallel(nullptr, 3,
                        [&](std::uint32_t w) { mask.fetch_or(1u << w); });
  EXPECT_EQ(mask.load(), 0b111u);
}

TEST(ThreadPool, RunParallelUsesSubsetOfLargerPool) {
  ThreadPool pool(6);
  std::atomic<std::uint32_t> mask{0};
  support::run_parallel(&pool, 2,
                        [&](std::uint32_t w) { mask.fetch_or(1u << w); });
  EXPECT_EQ(mask.load(), 0b11u);
}

// ---------------------------------------------------- engine integration ---

TEST(PooledEngines, RioPooledMatchesSpawned) {
  auto make = [] {
    stf::TaskFlow flow;
    auto d = flow.create_data<std::uint64_t>("d");
    for (int i = 0; i < 50; ++i)
      flow.add("inc", [d](stf::TaskContext& ctx) { ctx.scalar(d) += 3; },
               {stf::readwrite(d)});
    return flow;
  };
  auto f1 = make();
  rt::Runtime spawned(rt::Config{.num_workers = 3});
  spawned.run(f1, rt::mapping::round_robin(3));

  auto f2 = make();
  ThreadPool pool(3);
  rt::Runtime pooled(rt::Config{.num_workers = 3});
  pooled.attach_pool(&pool);
  for (int rep = 0; rep < 3; ++rep) {  // repeated runs on one pool
    auto f = make();
    pooled.run(f, rt::mapping::round_robin(3));
    EXPECT_EQ(*f.registry().typed<std::uint64_t>(
                  stf::DataHandle<std::uint64_t>{0}),
              150u);
  }
  pooled.run(f2, rt::mapping::round_robin(3));
  EXPECT_EQ(*f1.registry().typed<std::uint64_t>(
                stf::DataHandle<std::uint64_t>{0}),
            *f2.registry().typed<std::uint64_t>(
                stf::DataHandle<std::uint64_t>{0}));
}

TEST(PooledEngines, CoorPooledExecutesAll) {
  workloads::LuDagSpec spec;
  spec.row_tiles = 4;
  spec.col_tiles = 4;
  spec.task_cost = 50;
  auto wl = workloads::make_lu_dag(spec);
  ThreadPool pool(4);  // 3 workers + master
  coor::Runtime rt(coor::Config{.num_workers = 3, .enable_guard = true});
  rt.attach_pool(&pool);
  for (int rep = 0; rep < 3; ++rep) {
    const auto stats = rt.run(wl.flow);
    EXPECT_EQ(stats.tasks_executed(), wl.flow.num_tasks());
  }
}

TEST(PooledEngines, HybridWithAndWithoutPoolAgree) {
  auto make = [] {
    workloads::TiledMatrix a(3, 8);
    a.fill_random(44);
    return a;
  };
  auto a1 = make(), a2 = make();
  auto h1 = workloads::make_hpl_lu(a1, 2);
  auto h2 = workloads::make_hpl_lu(a2, 2);

  hybrid::Runtime with_pool(hybrid::Config{.num_workers = 2, .use_pool = true});
  with_pool.run(h1.workload.flow, h1.partial_mapping());

  hybrid::Runtime no_pool(hybrid::Config{.num_workers = 2, .use_pool = false});
  no_pool.run(h2.workload.flow, h2.partial_mapping());

  EXPECT_EQ(a1.max_abs_diff(a2), 0.0);
  EXPECT_EQ(*h1.perm, *h2.perm);
}

}  // namespace
