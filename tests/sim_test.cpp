// Tests for the discrete-event simulator: exact tau identities, hand-
// computed schedules, cost-model asymptotics (Section 3.3 equations (1)
// and (2)) and determinism.
#include <gtest/gtest.h>

#include "sim/sim.hpp"
#include "workloads/workloads.hpp"

namespace {

using namespace rio;
using sim::CentralizedParams;
using sim::DecentralizedParams;

stf::TaskFlow independent_flow(std::uint64_t n, std::uint64_t cost) {
  workloads::IndependentSpec spec;
  spec.num_tasks = n;
  spec.task_cost = cost;
  spec.body = workloads::BodyKind::kNone;
  return std::move(workloads::make_independent(spec).flow);
}

// ------------------------------------------------------- exact identities --

TEST(SimRio, TauIdentityHoldsExactly) {
  auto flow = independent_flow(1000, 500);
  DecentralizedParams p;
  p.workers = 8;
  auto rep = sim::simulate_decentralized(flow, rt::mapping::round_robin(8), p);
  for (const auto& w : rep.stats.workers)
    EXPECT_EQ(w.buckets.total(), rep.makespan) << "per-worker tau identity";
  EXPECT_EQ(rep.stats.cumulative().total(), rep.makespan * 8);
}

TEST(SimCoor, TauIdentityHoldsExactly) {
  auto flow = independent_flow(1000, 500);
  CentralizedParams p;
  p.workers = 7;
  auto rep = sim::simulate_centralized(flow, p);
  ASSERT_EQ(rep.stats.workers.size(), 8u);  // 7 + master
  for (const auto& w : rep.stats.workers)
    EXPECT_EQ(w.buckets.total(), rep.makespan);
  EXPECT_EQ(rep.total_threads, 8u);
}

// --------------------------------------------------- hand-checked schedule -

TEST(SimRio, SingleWorkerChainIsSequential) {
  // 3-task RW chain, one worker, no skip cost (everything is its own).
  stf::TaskFlow flow;
  auto d = flow.create_data<int>("d");
  for (int i = 0; i < 3; ++i) flow.add_virtual(100, {stf::readwrite(d)});
  DecentralizedParams p;
  p.workers = 1;
  p.skip_per_task = 0;
  p.skip_per_access = 0;
  p.own_per_task = 10;
  p.own_per_access = 0;
  auto rep = sim::simulate_decentralized(flow, rt::mapping::single(), p);
  // Each task: 10 overhead + 100 exec, no stalls: makespan = 330.
  EXPECT_EQ(rep.makespan, 330u);
  EXPECT_EQ(rep.stats.workers[0].buckets.task_ns, 300u);
  EXPECT_EQ(rep.stats.workers[0].buckets.runtime_ns, 30u);
  EXPECT_EQ(rep.stats.workers[0].buckets.idle_ns, 0u);
}

TEST(SimRio, CrossWorkerChainStalls) {
  // Two tasks RW on the same data mapped to different workers: worker 1
  // must stall until worker 0 finishes.
  stf::TaskFlow flow;
  auto d = flow.create_data<int>("d");
  flow.add_virtual(100, {stf::readwrite(d)});
  flow.add_virtual(100, {stf::readwrite(d)});
  DecentralizedParams p;
  p.workers = 2;
  p.skip_per_task = 1;
  p.skip_per_access = 0;
  p.own_per_task = 5;
  p.own_per_access = 0;
  auto rep = sim::simulate_decentralized(flow, rt::mapping::round_robin(2), p);
  // Worker0: own(5) + exec(100) -> finish t0 at 105.
  // Worker1: skip t0 (1) + own(5) = ready at 6, stalls until 105, exec 100
  //          -> finish 205. Worker0 then skips t1 at 106.
  EXPECT_EQ(rep.makespan, 205u);
  EXPECT_EQ(rep.stats.workers[1].buckets.idle_ns, 99u);
  EXPECT_EQ(rep.stats.workers[1].waits, 1u);
}

TEST(SimCoor, MasterBoundWhenTasksTiny) {
  // Cost model (1): with tiny tasks the makespan approaches n * t_master.
  auto flow = independent_flow(1000, 1);
  CentralizedParams p;
  p.workers = 8;
  p.master_per_task = 1000;
  p.master_per_access = 0;
  p.worker_pop = 10;
  auto rep = sim::simulate_centralized(flow, p);
  EXPECT_GE(rep.makespan, 1000u * 1000u);
  EXPECT_LE(rep.makespan, 1000u * 1000u + 2000u);
}

TEST(SimCoor, WorkerBoundWhenTasksLarge) {
  // Cost model (1) other branch: makespan ~= n * t(g) / w.
  auto flow = independent_flow(64, 100000);
  CentralizedParams p;
  p.workers = 8;
  p.master_per_task = 100;
  p.master_per_access = 0;
  p.worker_pop = 10;
  auto rep = sim::simulate_centralized(flow, p);
  const std::uint64_t ideal = 64ull * 100000 / 8;
  EXPECT_GE(rep.makespan, ideal);
  EXPECT_LE(rep.makespan, ideal + ideal / 10);
}

TEST(SimRio, DecentralizedAdditiveCostModel) {
  // Cost model (2): t_p = n * t_r + n * t(g) / w. Even with large tasks the
  // unrolling term stays (additive, not max) — every worker walks all n.
  const std::uint64_t n = 1000;
  auto flow = independent_flow(n, 0);
  DecentralizedParams p;
  p.workers = 4;
  p.skip_per_task = 10;
  p.skip_per_access = 0;
  p.own_per_task = 10;
  p.own_per_access = 0;
  auto rep = sim::simulate_decentralized(flow, rt::mapping::round_robin(4), p);
  // Every worker pays ~n * 10 unrolling regardless of execution.
  EXPECT_GE(rep.makespan, n * 10);
  EXPECT_LE(rep.makespan, n * 10 + n);
}

// ------------------------------------------------------------- asymptotics -

TEST(SimComparison, RioWinsOnFineTasksCoorWinsPipelined) {
  // The paper's headline crossover (Figures 6/8): with default calibrated
  // costs, RIO beats the centralized model for fine tasks; for coarse
  // tasks both are near-ideal but centralized loses nothing.
  const std::uint64_t n = 4096;
  DecentralizedParams dp;  // defaults: 24 workers
  CentralizedParams cp;    // defaults: 23 workers + master

  auto fine = independent_flow(n, 1'000);     // ~1 us tasks
  auto coarse = independent_flow(n, 10'000'000);  // ~10 ms tasks

  const auto rio_fine =
      sim::simulate_decentralized(fine, rt::mapping::round_robin(24), dp);
  const auto coor_fine = sim::simulate_centralized(fine, cp);
  EXPECT_LT(rio_fine.makespan, coor_fine.makespan)
      << "RIO must win on fine-grained tasks";

  const auto rio_coarse =
      sim::simulate_decentralized(coarse, rt::mapping::round_robin(24), dp);
  const auto coor_coarse = sim::simulate_centralized(coarse, cp);
  // Both within a few percent of ideal for coarse tasks.
  stf::DependencyGraph g_coarse(coarse);
  const auto ideal = sim::ideal_makespan(coarse, g_coarse, 24);
  EXPECT_LT(static_cast<double>(rio_coarse.makespan), 1.05 * static_cast<double>(ideal));
  EXPECT_LT(static_cast<double>(coor_coarse.makespan), 1.10 * static_cast<double>(ideal));
}

TEST(SimRio, PruningRemovesUnrollOverhead) {
  const std::uint64_t n = 10000;
  auto flow = independent_flow(n, 100);
  DecentralizedParams full;
  full.workers = 16;
  DecentralizedParams pruned = full;
  pruned.pruned = true;
  const auto rep_full =
      sim::simulate_decentralized(flow, rt::mapping::round_robin(16), full);
  const auto rep_pruned =
      sim::simulate_decentralized(flow, rt::mapping::round_robin(16), pruned);
  EXPECT_LT(rep_pruned.makespan, rep_full.makespan);
  // Pruned runtime bucket excludes all skip costs.
  EXPECT_LT(rep_pruned.stats.cumulative().runtime_ns,
            rep_full.stats.cumulative().runtime_ns);
}

TEST(SimRio, UnrollOverheadGrowsWithWorkers) {
  // Figure 7: fixed tasks *per worker*; decentralized total time grows with
  // worker count because everyone unrolls everyone's tasks.
  std::uint64_t prev_makespan = 0;
  for (std::uint32_t w : {4u, 16u, 64u}) {
    auto flow = independent_flow(512ull * w, 100);
    DecentralizedParams p;
    p.workers = w;
    const auto rep =
        sim::simulate_decentralized(flow, rt::mapping::round_robin(w), p);
    EXPECT_GT(rep.makespan, prev_makespan);
    prev_makespan = rep.makespan;
  }
}

// ------------------------------------------------------------ determinism --

TEST(Sim, DeterministicAcrossRuns) {
  workloads::RandomDepsSpec spec;
  spec.num_tasks = 500;
  spec.body = workloads::BodyKind::kNone;
  spec.task_cost = 700;
  auto wl1 = workloads::make_random_deps(spec);
  auto wl2 = workloads::make_random_deps(spec);
  DecentralizedParams dp;
  dp.workers = 6;
  const auto a =
      sim::simulate_decentralized(wl1.flow, rt::mapping::round_robin(6), dp);
  const auto b =
      sim::simulate_decentralized(wl2.flow, rt::mapping::round_robin(6), dp);
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.stats.cumulative().idle_ns, b.stats.cumulative().idle_ns);

  CentralizedParams cp;
  const auto c = sim::simulate_centralized(wl1.flow, cp);
  const auto d = sim::simulate_centralized(wl2.flow, cp);
  EXPECT_EQ(c.makespan, d.makespan);
}

// -------------------------------------------------------- dependency sim ---

TEST(SimBoth, LuDagRespectsCriticalPath) {
  workloads::LuDagSpec spec;
  spec.row_tiles = 6;
  spec.col_tiles = 6;
  spec.task_cost = 10000;
  spec.body = workloads::BodyKind::kNone;
  spec.num_workers = 8;
  auto wl = workloads::make_lu_dag(spec);
  stf::DependencyGraph g(wl.flow);
  const auto ideal = sim::ideal_makespan(wl.flow, g, 8);

  DecentralizedParams dp;
  dp.workers = 8;
  const auto rio = sim::simulate_decentralized(wl.flow, wl.mapping(8), dp);
  CentralizedParams cp;
  cp.workers = 8;
  const auto coor = sim::simulate_centralized(wl.flow, cp);
  EXPECT_GE(rio.makespan, ideal);
  EXPECT_GE(coor.makespan, ideal);
}

TEST(Sim, IdealMakespanBounds) {
  auto flow = independent_flow(100, 10);
  stf::DependencyGraph g(flow);
  EXPECT_EQ(sim::ideal_makespan(flow, g, 10), 100u);  // perfectly balanced
  EXPECT_EQ(sim::ideal_makespan(flow, g, 1), 1000u);
}


// ------------------------------------------------- heterogeneity models ----

TEST(SimHeterogeneous, StragglerSlowsStaticMappingProportionally) {
  auto flow = independent_flow(240, 100000);
  DecentralizedParams dp;
  dp.workers = 4;
  const auto base =
      sim::simulate_decentralized(flow, rt::mapping::round_robin(4), dp);
  dp.worker_speed = {0.5, 1.0, 1.0, 1.0};
  const auto slow =
      sim::simulate_decentralized(flow, rt::mapping::round_robin(4), dp);
  // The straggler's share takes 2x: makespan doubles (round-robin gives it
  // a fixed 1/4 of the work).
  EXPECT_NEAR(static_cast<double>(slow.makespan) /
                  static_cast<double>(base.makespan),
              2.0, 0.05);
}

TEST(SimHeterogeneous, DynamicSchedulerRoutesAroundStraggler) {
  auto flow = independent_flow(240, 100000);
  CentralizedParams cp;
  cp.workers = 4;
  const auto base = sim::simulate_centralized(flow, cp);
  cp.worker_speed = {0.5, 1.0, 1.0, 1.0};
  const auto slow = sim::simulate_centralized(flow, cp);
  // List scheduling hands the straggler fewer tasks: far below 2x.
  EXPECT_LT(static_cast<double>(slow.makespan),
            1.3 * static_cast<double>(base.makespan));
}

TEST(SimLatency, CrossWorkerEdgePaysOnlyWhenCut) {
  // Two-task chain: same worker -> no latency; different workers -> +lat.
  stf::TaskFlow flow;
  auto d = flow.create_data<int>("d");
  flow.add_virtual(100, {stf::readwrite(d)});
  flow.add_virtual(100, {stf::readwrite(d)});
  DecentralizedParams dp;
  dp.workers = 2;
  dp.skip_per_task = 0;
  dp.skip_per_access = 0;
  dp.own_per_task = 0;
  dp.own_per_access = 0;
  dp.cross_worker_latency = 555;

  const auto same =
      sim::simulate_decentralized(flow, rt::mapping::single(), dp);
  const auto cross =
      sim::simulate_decentralized(flow, rt::mapping::round_robin(2), dp);
  EXPECT_EQ(same.makespan, 200u);
  EXPECT_EQ(cross.makespan, 200u + 555u);
}

TEST(SimLatency, CentralizedPaysOnEveryEdge) {
  stf::TaskFlow flow;
  auto d = flow.create_data<int>("d");
  for (int i = 0; i < 4; ++i) flow.add_virtual(100, {stf::readwrite(d)});
  CentralizedParams cp;
  cp.workers = 2;
  cp.master_per_task = 1;
  cp.master_per_access = 0;
  cp.worker_pop = 0;
  const auto base = sim::simulate_centralized(flow, cp);
  cp.cross_worker_latency = 1000;
  const auto lat = sim::simulate_centralized(flow, cp);
  // Three chain edges, each + 1000.
  EXPECT_EQ(lat.makespan - base.makespan, 3000u);
}

// ------------------------------------------------------------ fault model -

TEST(SimFaults, InjectedFaultsAreDeterministicAndCosted) {
  // Same plan + seed => identical makespan and counters; a faulted run is
  // strictly slower than a clean one (each retry pays cost + backoff, each
  // stall pays its window in virtual time).
  auto flow = independent_flow(400, 1000);
  DecentralizedParams p;
  p.workers = 4;
  p.faults.seed = 7;
  p.faults.throw_rate = 0.1;
  p.faults.stall_rate = 0.05;
  p.faults.stall_ns = 2000;
  p.retry.max_attempts = 3;
  p.retry.backoff_ns = 50;

  const auto a = sim::simulate_decentralized(flow, rt::mapping::round_robin(4), p);
  const auto b = sim::simulate_decentralized(flow, rt::mapping::round_robin(4), p);
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.injected_throws, b.injected_throws);
  EXPECT_EQ(a.injected_stalls, b.injected_stalls);
  EXPECT_EQ(a.retried_tasks, b.retried_tasks);
  EXPECT_GT(a.injected_throws, 0u);
  EXPECT_GT(a.injected_stalls, 0u);
  EXPECT_GT(a.retried_tasks, 0u);

  DecentralizedParams clean = p;
  clean.faults = {};
  const auto c =
      sim::simulate_decentralized(flow, rt::mapping::round_robin(4), clean);
  EXPECT_GT(a.makespan, c.makespan);
  EXPECT_EQ(c.injected_throws, 0u);
}

TEST(SimFaults, CentralizedCountsExhaustedTasks) {
  // retry budget 1 => every injected throw is terminal in the fault model;
  // the simulator records it and keeps simulating (virtual time has no
  // cancellation).
  auto flow = independent_flow(300, 500);
  CentralizedParams p;
  p.workers = 3;
  p.faults.seed = 11;
  p.faults.throw_rate = 0.2;
  p.retry.max_attempts = 1;
  const auto rep = sim::simulate_centralized(flow, p);
  EXPECT_GT(rep.injected_throws, 0u);
  EXPECT_EQ(rep.failed_tasks, rep.injected_throws);
  EXPECT_EQ(rep.retried_tasks, 0u);
}

}  // namespace
