// Engine-equivalence fuzzing.
//
// The strongest correctness statement this repository can make is: for ANY
// task flow, every execution engine leaves the data objects bitwise
// identical to the sequential executor. This suite generates arbitrary
// random flows (random access counts, modes, shapes — a superset of the
// paper's workloads) and checks that property for every executes_bodies
// backend in the engine::Registry, under randomized mappings, phase splits,
// schedulers and worker counts. New backends join the sweep just by
// registering.
#include <gtest/gtest.h>

#include <cstring>
#include <optional>

#include "coor/coor.hpp"
#include "engine/registry.hpp"
#include "engine/supervisor.hpp"
#include "hybrid/hybrid.hpp"
#include "rio/rio.hpp"
#include "support/rng.hpp"
#include "stf/stf.hpp"

namespace {

using namespace rio;

struct FuzzSpec {
  std::uint64_t seed = 1;
  std::uint32_t num_tasks = 150;
  std::uint32_t num_data = 12;
  std::uint32_t max_accesses = 3;
  std::uint32_t workers = 3;
};

/// Builds a random flow whose bodies fold (task id, read values) into the
/// written objects — any ordering difference changes the final bytes.
stf::TaskFlow make_fuzz_flow(const FuzzSpec& spec) {
  stf::TaskFlow flow;
  std::vector<stf::DataHandle<std::uint64_t>> data;
  for (std::uint32_t d = 0; d < spec.num_data; ++d)
    data.push_back(flow.create_data<std::uint64_t>("d" + std::to_string(d)));

  support::Xoshiro256 rng(spec.seed);
  for (std::uint32_t t = 0; t < spec.num_tasks; ++t) {
    // Draw 0..max_accesses distinct objects with random modes.
    const auto count =
        static_cast<std::uint32_t>(rng.bounded(spec.max_accesses + 1));
    std::vector<std::uint32_t> picked;
    while (picked.size() < count) {
      const auto c = static_cast<std::uint32_t>(rng.bounded(spec.num_data));
      bool dup = false;
      for (auto p : picked) dup |= (p == c);
      if (!dup) picked.push_back(c);
    }
    stf::AccessList acc;
    std::vector<stf::DataId> reads, writes;
    for (auto p : picked) {
      switch (rng.bounded(3)) {
        case 0:
          acc.push_back(stf::read(data[p]));
          reads.push_back(data[p].id);
          break;
        case 1:
          acc.push_back(stf::write(data[p]));
          writes.push_back(data[p].id);
          break;
        default:
          acc.push_back(stf::readwrite(data[p]));
          reads.push_back(data[p].id);
          writes.push_back(data[p].id);
          break;
      }
    }
    flow.add("fz" + std::to_string(t),
             [reads, writes, t](stf::TaskContext& ctx) {
               std::uint64_t acc_val = 0x9e3779b97f4a7c15ULL * (t + 1);
               for (stf::DataId r : reads)
                 acc_val ^= *static_cast<const std::uint64_t*>(
                     ctx.registry().raw(r));
               for (stf::DataId w : writes) {
                 auto* p =
                     static_cast<std::uint64_t*>(ctx.registry().raw(w));
                 *p = *p * 6364136223846793005ULL + acc_val;
               }
             },
             std::move(acc), /*cost=*/rng.bounded(500));
  }
  return flow;
}

void expect_same_data(const stf::TaskFlow& got, const stf::TaskFlow& want,
                      const char* engine) {
  ASSERT_EQ(got.num_data(), want.num_data());
  for (stf::DataId d = 0; d < got.num_data(); ++d)
    EXPECT_EQ(std::memcmp(got.registry().raw(d), want.registry().raw(d),
                          got.registry().bytes(d)),
              0)
        << engine << " diverged on object " << d;
}

class EngineFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EngineFuzz, AllEnginesMatchSequential) {
  FuzzSpec spec;
  spec.seed = GetParam();
  support::Xoshiro256 meta(spec.seed * 31 + 7);
  spec.num_tasks = 80 + static_cast<std::uint32_t>(meta.bounded(150));
  spec.num_data = 4 + static_cast<std::uint32_t>(meta.bounded(20));
  spec.workers = 2 + static_cast<std::uint32_t>(meta.bounded(4));

  auto oracle = make_fuzz_flow(spec);
  stf::SequentialExecutor{}.run(oracle);

  // Random (but valid) mapping table.
  std::vector<stf::WorkerId> owners(spec.num_tasks);
  for (auto& o : owners)
    o = static_cast<stf::WorkerId>(meta.bounded(spec.workers));
  const auto mapping = rt::mapping::table(owners);

  // Every backend that really runs task bodies must reproduce the oracle's
  // bytes, whatever optional capabilities we switch on for it.
  for (const engine::Backend* backend : engine::Registry::instance().all()) {
    const engine::Capabilities& caps = backend->caps();
    if (!caps.executes_bodies) continue;
    const std::string label(backend->name());
    SCOPED_TRACE(label);

    auto flow = make_fuzz_flow(spec);
    engine::Launch launch;
    launch.workers = spec.workers;
    launch.enable_guard = caps.supports_guard;
    launch.collect_trace = caps.supports_trace;
    if (caps.needs_mapping) launch.mapping = mapping;
    if (caps.partial_mapping) {
      const std::uint64_t segment = 1 + meta.bounded(40);
      launch.partial = [&owners, segment](
                           stf::TaskId t) -> std::optional<stf::WorkerId> {
        if ((t / segment) % 2 == 0) return owners[t];
        return std::nullopt;
      };
    }
    if (caps.uses_scheduler) {
      launch.scheduler = static_cast<coor::SchedulerKind>(meta.bounded(3));
      launch.work_stealing = meta.bounded(2) == 1;
    }
    if (caps.uses_queue && meta.bounded(2) == 1) {
      // Wait-free MPMC ready ring (fifo/lifo; the runtime falls back to
      // the locked deque for other scheduler modes).
      launch.queue = coor::QueueKind::kRing;
    }

    const auto outcome =
        backend->run(stf::FlowImage::compile(flow), launch);
    if (launch.collect_trace) {
      stf::DependencyGraph graph(flow);
      const auto v = outcome.trace.validate(flow, graph, caps.in_order);
      EXPECT_TRUE(v.ok()) << label << ": " << v.reason;
    }
    expect_same_data(flow, oracle, label.c_str());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EngineFuzz,
                         ::testing::Range<std::uint64_t>(1, 21));

// Wait-free ready ring fuzz: the byte-oracle property must hold with the
// MPMC ring enabled explicitly, across the schedulers it serves (fifo,
// lifo — the ring itself pops FIFO; lifo degrades to submission order) and
// all wait policies including parked (block) consumers.
class RingFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RingFuzz, RingQueueMatchesSequential) {
  FuzzSpec spec;
  spec.seed = GetParam() * 211 + 17;
  support::Xoshiro256 meta(spec.seed * 31 + 7);
  spec.num_tasks = 80 + static_cast<std::uint32_t>(meta.bounded(120));
  spec.num_data = 4 + static_cast<std::uint32_t>(meta.bounded(16));
  spec.workers = 2 + static_cast<std::uint32_t>(meta.bounded(3));

  auto oracle = make_fuzz_flow(spec);
  stf::SequentialExecutor{}.run(oracle);

  for (auto scheduler :
       {coor::SchedulerKind::kFifo, coor::SchedulerKind::kLifo}) {
    for (auto policy :
         {support::WaitPolicy::kSpin, support::WaitPolicy::kSpinYield,
          support::WaitPolicy::kBlock}) {
      auto flow = make_fuzz_flow(spec);
      coor::Config cfg;
      cfg.num_workers = spec.workers;
      cfg.scheduler = scheduler;
      cfg.queue = coor::QueueKind::kRing;
      cfg.wait_policy = policy;
      coor::Runtime(cfg).run(flow);
      expect_same_data(flow, oracle,
                       (std::string("coor-ring/") + support::to_string(policy))
                           .c_str());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RingFuzz,
                         ::testing::Range<std::uint64_t>(1, 6));

// Streaming replay fuzz: the same flow driven through run_program must
// agree with the materialized execution.
class StreamingFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(StreamingFuzz, StreamingMatchesMaterialized) {
  FuzzSpec spec;
  spec.seed = GetParam() * 97 + 13;
  spec.num_tasks = 120;
  spec.workers = 3;

  auto oracle = make_fuzz_flow(spec);
  stf::SequentialExecutor{}.run(oracle);

  // Streaming: rebuild the same task sequence through a SubmitSink against
  // a standalone registry with the same layout.
  stf::DataRegistry registry;
  for (std::uint32_t d = 0; d < spec.num_data; ++d)
    registry.create<std::uint64_t>("d" + std::to_string(d));

  auto reference = make_fuzz_flow(spec);  // only used as a task recipe
  stf::ProgramFn program = [&reference](stf::SubmitSink& sink) {
    for (const stf::Task& t : reference.tasks()) {
      stf::AccessList acc = t.accesses;
      sink.submit(t.fn, std::move(acc), t.cost, t.name);
    }
  };

  std::vector<stf::WorkerId> owners(spec.num_tasks);
  support::Xoshiro256 meta(spec.seed);
  for (auto& o : owners)
    o = static_cast<stf::WorkerId>(meta.bounded(spec.workers));

  rt::Runtime engine(
      rt::Config{.num_workers = spec.workers, .enable_guard = true});
  engine.run_program(registry, program, rt::mapping::table(owners));

  for (stf::DataId d = 0; d < spec.num_data; ++d)
    EXPECT_EQ(std::memcmp(registry.raw(d), oracle.registry().raw(d),
                          registry.bytes(d)),
              0)
        << "object " << d;
}

INSTANTIATE_TEST_SUITE_P(Seeds, StreamingFuzz,
                         ::testing::Range<std::uint64_t>(1, 9));

// Fault fuzz: the equivalence property must survive injected transient
// faults when retry+rollback is enabled. Faults fire AFTER the body ran
// (stf/resilience.hpp), so every retried task really did mutate its data
// and the byte-identical outcome proves the rollback path end to end.
class FaultFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FaultFuzz, RetriedRunsMatchSequential) {
  FuzzSpec spec;
  spec.seed = GetParam() * 131 + 5;
  support::Xoshiro256 meta(spec.seed * 31 + 7);
  spec.num_tasks = 80 + static_cast<std::uint32_t>(meta.bounded(120));
  spec.num_data = 4 + static_cast<std::uint32_t>(meta.bounded(16));
  spec.workers = 2 + static_cast<std::uint32_t>(meta.bounded(3));

  auto oracle = make_fuzz_flow(spec);
  stf::SequentialExecutor{}.run(oracle);

  std::vector<stf::WorkerId> owners(spec.num_tasks);
  for (auto& o : owners)
    o = static_cast<stf::WorkerId>(meta.bounded(spec.workers));
  const auto mapping = rt::mapping::table(owners);

  support::FaultPlan plan;
  plan.seed = spec.seed;
  plan.throw_rate = 0.08;
  const support::RetryPolicy retry{.max_attempts = 6};

  // Fault decisions are pure functions of (seed, task, attempt), so every
  // supports_faults backend sees the same injected throws and must still
  // reproduce the oracle via retry + rollback.
  for (const engine::Backend* backend : engine::Registry::instance().all()) {
    const engine::Capabilities& caps = backend->caps();
    if (!caps.executes_bodies || !caps.supports_faults) continue;
    const std::string label(backend->name());
    SCOPED_TRACE(label);

    auto flow = make_fuzz_flow(spec);
    support::FaultInjector injector(plan);
    engine::Launch launch;
    launch.workers = spec.workers;
    launch.retry = retry;
    launch.fault = &injector;
    if (caps.needs_mapping) launch.mapping = mapping;
    if (caps.partial_mapping) {
      const std::uint64_t segment = 1 + meta.bounded(40);
      launch.partial = [&owners, segment](
                           stf::TaskId t) -> std::optional<stf::WorkerId> {
        if ((t / segment) % 2 == 0) return owners[t];
        return std::nullopt;
      };
    }

    (void)backend->run(stf::FlowImage::compile(flow), launch);
    EXPECT_GT(injector.injected_throws(), 0u)
        << label << ": the plan never fired";
    expect_same_data(flow, oracle, (label + "+faults").c_str());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FaultFuzz,
                         ::testing::Range<std::uint64_t>(1, 9));

// Crash fuzz: the equivalence property must survive PERMANENT worker loss.
// Two crash sites per run kill two workers mid-flow; the supervisor evicts
// each dead worker, remaps its tasks onto the survivors and resumes from
// the checkpointed frontier — and the final bytes must still match the
// sequential oracle exactly. Crash faults fire AFTER the body mutated its
// data, so a byte-identical outcome proves the dirty-span restore, the
// frontier replay and the remap end to end. The random partial segment
// length spreads the crash sites over static and dynamic hybrid phases
// across seeds, so mid-phase death inside BOTH engine kinds is covered.
class CrashFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CrashFuzz, SupervisedRecoveryMatchesSequential) {
  FuzzSpec spec;
  spec.seed = GetParam() * 173 + 29;
  support::Xoshiro256 meta(spec.seed * 31 + 7);
  spec.num_tasks = 80 + static_cast<std::uint32_t>(meta.bounded(120));
  spec.num_data = 4 + static_cast<std::uint32_t>(meta.bounded(16));
  spec.workers = 3 + static_cast<std::uint32_t>(meta.bounded(2));

  auto oracle = make_fuzz_flow(spec);
  stf::SequentialExecutor{}.run(oracle);

  std::vector<stf::WorkerId> owners(spec.num_tasks);
  for (auto& o : owners)
    o = static_cast<stf::WorkerId>(meta.bounded(spec.workers));
  const auto mapping = rt::mapping::table(owners);

  support::FaultPlan plan;
  plan.seed = spec.seed;
  const std::uint64_t early = 1 + meta.bounded(spec.num_tasks / 2);
  const std::uint64_t late =
      spec.num_tasks / 2 + meta.bounded(spec.num_tasks / 2);
  plan.crash_tasks = {early, late};
  plan.max_crashes = 2;

  for (const engine::Backend* backend : engine::Registry::instance().all()) {
    const engine::Capabilities& caps = backend->caps();
    if (!caps.executes_bodies || !caps.supports_recovery) continue;
    const std::string label(backend->name());
    SCOPED_TRACE(label);

    auto flow = make_fuzz_flow(spec);
    support::FaultInjector injector(plan);
    engine::Launch launch;
    launch.workers = spec.workers;
    launch.fault = &injector;
    if (caps.needs_mapping) launch.mapping = mapping;
    if (caps.partial_mapping) {
      const std::uint64_t segment = 1 + meta.bounded(40);
      launch.partial = [&owners, segment](
                           stf::TaskId t) -> std::optional<stf::WorkerId> {
        if ((t / segment) % 2 == 0) return owners[t];
        return std::nullopt;
      };
    }

    const engine::Outcome out = engine::run_supervised(
        *backend, stf::FlowImage::compile(flow), launch);
    EXPECT_EQ(injector.injected_crashes(), 2u)
        << label << ": the crash plan never fully fired";
    EXPECT_EQ(out.evictions, 2u);
    EXPECT_EQ(out.evicted_workers.size(), 2u);
    expect_same_data(flow, oracle, (label + "+crash").c_str());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CrashFuzz,
                         ::testing::Range<std::uint64_t>(1, 11));

}  // namespace
