// Tests for the centralized OoO baseline runtime: dependency resolution,
// scheduler variants, stealing, traces and the sequential-consistency
// oracle.
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <thread>
#include <vector>

#include "coor/coor.hpp"
#include "stf/stf.hpp"
#include "workloads/workloads.hpp"

namespace {

using namespace rio;
using coor::Config;
using coor::Runtime;
using coor::SchedulerKind;

// ------------------------------------------------------------ ReadyQueue ---

TEST(ReadyQueue, FifoOrder) {
  coor::ReadyQueue q;
  q.push(1);
  q.push(2);
  q.push(3);
  EXPECT_EQ(q.pop().value(), 1u);
  EXPECT_EQ(q.pop().value(), 2u);
  EXPECT_EQ(q.size(), 1u);
}

TEST(ReadyQueue, LifoPushGoesFront) {
  coor::ReadyQueue q;
  q.push(1, /*lifo=*/true);
  q.push(2, /*lifo=*/true);
  EXPECT_EQ(q.pop().value(), 2u);
}

TEST(ReadyQueue, StealTakesFromBack) {
  coor::ReadyQueue q;
  q.push(1);
  q.push(2);
  EXPECT_EQ(q.try_steal().value(), 2u);
  EXPECT_EQ(q.try_pop().value(), 1u);
  EXPECT_FALSE(q.try_pop().has_value());
}

TEST(ReadyQueue, CloseDrainsThenEnds) {
  coor::ReadyQueue q;
  q.push(5);
  q.close();
  EXPECT_EQ(q.pop().value(), 5u);
  EXPECT_FALSE(q.pop().has_value());
}

// ------------------------------------------------------------- ReadyRing ---

coor::ReadyRing make_ring(std::size_t capacity) {
  return coor::ReadyRing(capacity, [](std::atomic<std::uint64_t>& w,
                                      std::uint64_t v) {
    w.store(v, std::memory_order_relaxed);
  });
}

TEST(ReadyRing, FifoOrderAndEmpty) {
  auto ring = make_ring(8);
  EXPECT_FALSE(ring.try_pop().has_value());
  EXPECT_FALSE(ring.push(1, support::WaitPolicy::kSpin));  // nobody parked
  ring.push(2, support::WaitPolicy::kSpin);
  ring.push(3, support::WaitPolicy::kSpin);
  EXPECT_EQ(ring.try_pop().value(), 1u);
  EXPECT_EQ(ring.try_pop().value(), 2u);
  EXPECT_EQ(ring.size(), 1u);
  EXPECT_EQ(ring.try_pop().value(), 3u);
  EXPECT_FALSE(ring.try_pop().has_value());
}

TEST(ReadyRing, CapacityRoundsUpToPowerOfTwo) {
  auto ring = make_ring(5);  // rounds to 8
  for (std::uint64_t i = 0; i < 8; ++i)
    ring.push(i, support::WaitPolicy::kSpin);
  for (std::uint64_t i = 0; i < 8; ++i)
    EXPECT_EQ(ring.try_pop().value(), i);
}

TEST(ReadyRing, OverflowFailsWithStructuredError) {
  // Sizing-contract violation (more pushes than capacity, nothing popped):
  // the wrap must surface as RingOverflow carrying the sizing facts, not
  // silent value loss or a livelocked chase.
  auto ring = make_ring(4);
  for (std::uint64_t i = 0; i < 4; ++i)
    ring.push(i, support::WaitPolicy::kSpin);
  try {
    ring.push(99, support::WaitPolicy::kSpin);
    FAIL() << "expected RingOverflow";
  } catch (const coor::RingOverflow& e) {
    EXPECT_EQ(e.capacity(), 4u);
    EXPECT_EQ(e.high_watermark(), 4u);
    EXPECT_NE(std::string(e.what()).find("capacity 4"), std::string::npos);
  }
  // The ring's contents survive the refused push.
  for (std::uint64_t i = 0; i < 4; ++i)
    EXPECT_EQ(ring.try_pop().value(), i);
}

TEST(ReadyRing, HighWatermarkTracksPeakOccupancy) {
  auto ring = make_ring(8);
  ring.push(0, support::WaitPolicy::kSpin);
  ring.push(1, support::WaitPolicy::kSpin);
  ring.push(2, support::WaitPolicy::kSpin);
  EXPECT_EQ(ring.high_watermark(), 3u);
  (void)ring.try_pop();
  (void)ring.try_pop();
  ring.push(3, support::WaitPolicy::kSpin);
  EXPECT_EQ(ring.high_watermark(), 3u);  // peak, not current (current = 2)
}

TEST(ReadyRing, CloseDrainsThenEnds) {
  auto ring = make_ring(4);
  ring.push(5, support::WaitPolicy::kBlock);
  ring.close(support::WaitPolicy::kBlock);
  EXPECT_EQ(
      ring.pop_blocking(support::WaitPolicy::kBlock, nullptr, nullptr).value(),
      5u);
  EXPECT_FALSE(
      ring.pop_blocking(support::WaitPolicy::kBlock, nullptr, nullptr)
          .has_value());
}

TEST(ReadyRing, AbortUnblocksWithoutNotify) {
  // Watchdog degradation: an armed abort flag must unblock a parked
  // consumer with no producer push — the abort-aware polling path.
  auto ring = make_ring(4);
  std::atomic<bool> abort{true};  // pre-aborted: the pop must return fast
  EXPECT_FALSE(
      ring.pop_blocking(support::WaitPolicy::kBlock, &abort, nullptr)
          .has_value());
}

TEST(ReadyRing, MpmcDeliversEveryValueExactlyOnce) {
  // 2 producers x 2 consumers under the block policy: every id arrives
  // exactly once, parked consumers are woken by pushes and by close().
  constexpr std::uint64_t kPerProducer = 2000;
  auto ring = make_ring(2 * kPerProducer);
  std::vector<std::atomic<std::uint32_t>> seen(2 * kPerProducer);
  for (auto& s : seen) s.store(0, std::memory_order_relaxed);
  std::atomic<std::uint32_t> producers_left{2};

  auto produce = [&](std::uint64_t base) {
    for (std::uint64_t i = 0; i < kPerProducer; ++i)
      ring.push(base + i, support::WaitPolicy::kBlock);
    if (producers_left.fetch_sub(1) == 1)
      ring.close(support::WaitPolicy::kBlock);
  };
  auto consume = [&] {
    while (auto v =
               ring.pop_blocking(support::WaitPolicy::kBlock, nullptr, nullptr))
      seen[*v].fetch_add(1);
  };
  std::thread p0(produce, 0), p1(produce, kPerProducer);
  std::thread c0(consume), c1(consume);
  p0.join();
  p1.join();
  c0.join();
  c1.join();
  for (std::size_t i = 0; i < seen.size(); ++i)
    EXPECT_EQ(seen[i].load(), 1u) << "value " << i;
}

// --------------------------------------------------------------- runtime ---

class CoorScheduler
    : public ::testing::TestWithParam<std::tuple<SchedulerKind, bool>> {};

TEST_P(CoorScheduler, ExecutesEveryTaskOnce) {
  const auto [sched, steal] = GetParam();
  stf::TaskFlow flow;
  std::atomic<int> hits{0};
  for (int i = 0; i < 200; ++i)
    flow.add("t", [&hits](stf::TaskContext&) { hits.fetch_add(1); }, {});
  Runtime rt(Config{.num_workers = 3, .scheduler = sched,
                    .work_stealing = steal});
  auto stats = rt.run(flow);
  EXPECT_EQ(hits.load(), 200);
  EXPECT_EQ(stats.tasks_executed(), 200u);
}

TEST_P(CoorScheduler, RespectsChainOrder) {
  const auto [sched, steal] = GetParam();
  stf::TaskFlow flow;
  auto d = flow.create_data<int>("d");
  for (int i = 1; i <= 6; ++i)
    flow.add("s",
             [d, i](stf::TaskContext& ctx) { ctx.scalar(d) = ctx.scalar(d) * 10 + i; },
             {stf::readwrite(d)});
  Runtime rt(Config{.num_workers = 3, .scheduler = sched,
                    .work_stealing = steal, .enable_guard = true});
  rt.run(flow);
  EXPECT_EQ(flow.registry().typed<int>(d)[0], 123456);
}

INSTANTIATE_TEST_SUITE_P(
    Schedulers, CoorScheduler,
    ::testing::Values(std::make_tuple(SchedulerKind::kFifo, false),
                      std::make_tuple(SchedulerKind::kLifo, false),
                      std::make_tuple(SchedulerKind::kLocality, false),
                      std::make_tuple(SchedulerKind::kLocality, true)),
    [](const auto& i) {
      return std::string(coor::to_string(std::get<0>(i.param))) +
             (std::get<1>(i.param) ? "Steal" : "NoSteal");
    });

TEST(Coor, EmptyFlowTerminates) {
  stf::TaskFlow flow;
  Runtime rt(Config{.num_workers = 2});
  auto stats = rt.run(flow);
  EXPECT_EQ(stats.tasks_executed(), 0u);
}

TEST(Coor, TraceIsSequentiallyConsistentButMaybeOutOfOrder) {
  workloads::LuDagSpec spec;
  spec.row_tiles = 4;
  spec.col_tiles = 4;
  spec.task_cost = 200;
  auto wl = workloads::make_lu_dag(spec);
  Runtime rt(Config{.num_workers = 4, .collect_trace = true,
                    .enable_guard = true});
  rt.run(wl.flow);
  stf::DependencyGraph graph(wl.flow);
  // OoO: no per-worker in-order requirement, but the DAG must hold.
  const auto r = rt.trace().validate(wl.flow, graph, false);
  EXPECT_TRUE(r.ok()) << r.reason;
}

TEST(Coor, MasterStatsAreRuntimeOnly) {
  workloads::IndependentSpec spec;
  spec.num_tasks = 500;
  spec.task_cost = 5000;
  auto wl = workloads::make_independent(spec);
  Runtime rt(Config{.num_workers = 2});
  auto stats = rt.run(wl.flow);
  ASSERT_EQ(stats.workers.size(), 3u);  // 2 workers + master
  const auto& master = stats.workers[2];
  EXPECT_EQ(master.buckets.task_ns, 0u);
  EXPECT_GT(master.buckets.runtime_ns, 0u);
  EXPECT_EQ(master.tasks_executed, 0u);
}

TEST(Coor, ArtificialMasterOverheadSlowsDispatch) {
  workloads::IndependentSpec spec;
  spec.num_tasks = 100;
  spec.task_cost = 1;
  auto wl = workloads::make_independent(spec);

  Runtime cheap(Config{.num_workers = 2, .master_overhead_ns = 0});
  Runtime costly(Config{.num_workers = 2, .master_overhead_ns = 50'000});
  const auto fast = cheap.run(wl.flow);
  const auto slow = costly.run(wl.flow);
  // 100 tasks x 50us >= 5ms of forced master time.
  EXPECT_GT(slow.wall_ns, fast.wall_ns);
  EXPECT_GT(slow.workers[2].buckets.runtime_ns, 4'000'000u);
}

// Oracle comparison on the random-dependency workload across schedulers.
class CoorOracle : public ::testing::TestWithParam<SchedulerKind> {};

TEST_P(CoorOracle, RandomGraphMatchesSequential) {
  // Order-sensitive bodies: fold task ids into written objects.
  auto make = [](std::uint64_t seed) {
    workloads::RandomDepsSpec spec;
    spec.num_tasks = 300;
    spec.num_data = 24;
    spec.body = workloads::BodyKind::kNone;
    spec.seed = seed;
    auto wl = workloads::make_random_deps(spec);
    stf::TaskFlow rebuilt;
    std::vector<stf::DataHandle<std::uint64_t>> data;
    for (std::uint32_t d = 0; d < spec.num_data; ++d)
      data.push_back(
          rebuilt.create_data<std::uint64_t>("d" + std::to_string(d)));
    for (const stf::Task& t : wl.flow.tasks()) {
      stf::AccessList acc = t.accesses;
      const stf::TaskId id = t.id;
      std::vector<stf::DataId> written, readed;
      for (const auto& a : t.accesses)
        (is_write(a.mode) ? written : readed).push_back(a.data);
      rebuilt.add(t.name,
                  [written, readed, id](stf::TaskContext& ctx) {
                    std::uint64_t v = id + 1;
                    for (stf::DataId rd : readed)
                      v ^= *static_cast<const std::uint64_t*>(
                          ctx.registry().raw(rd));
                    for (stf::DataId wr : written) {
                      auto* p =
                          static_cast<std::uint64_t*>(ctx.registry().raw(wr));
                      *p = *p * 1000003u + v;
                    }
                  },
                  std::move(acc), t.cost);
    }
    stf::TaskFlow out = std::move(rebuilt);
    return out;
  };

  auto seq_flow = make(17);
  stf::SequentialExecutor{}.run(seq_flow);

  auto par_flow = make(17);
  Runtime rt(Config{.num_workers = 4, .scheduler = GetParam(),
                    .work_stealing = GetParam() == SchedulerKind::kLocality,
                    .enable_guard = true});
  rt.run(par_flow);

  for (stf::DataId d = 0; d < par_flow.num_data(); ++d)
    EXPECT_EQ(std::memcmp(par_flow.registry().raw(d), seq_flow.registry().raw(d),
                          par_flow.registry().bytes(d)),
              0)
        << "object " << d;
}

INSTANTIATE_TEST_SUITE_P(AllSchedulers, CoorOracle,
                         ::testing::Values(SchedulerKind::kFifo,
                                           SchedulerKind::kLifo,
                                           SchedulerKind::kLocality),
                         [](const auto& i) {
                           return std::string(coor::to_string(i.param));
                         });

TEST(Coor, NumericLuMatchesSequential) {
  constexpr std::uint32_t nt = 3, dim = 8;
  workloads::TiledMatrix a1(nt, dim), a2(nt, dim);
  a1.fill_random_diagonally_dominant(31);
  a2.fill_random_diagonally_dominant(31);

  auto wl_seq = workloads::make_lu_numeric(a1);
  stf::SequentialExecutor{}.run(wl_seq.flow);

  auto wl_par = workloads::make_lu_numeric(a2);
  Runtime rt(Config{.num_workers = 4, .enable_guard = true});
  rt.run(wl_par.flow);

  EXPECT_EQ(a1.max_abs_diff(a2), 0.0);
}

}  // namespace
