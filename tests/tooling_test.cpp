// Tests for the tooling layers: topology/pinning, DOT export, flow
// summaries, and the pinned-runtime code paths.
#include <gtest/gtest.h>

#include <sstream>
#include <thread>

#include "coor/coor.hpp"
#include "rio/rio.hpp"
#include "support/topology.hpp"
#include "stf/stf.hpp"
#include "workloads/workloads.hpp"

namespace {

using namespace rio;

// -------------------------------------------------------------- topology ---

TEST(Topology, DetectsAtLeastOneCpu) {
  const auto topo = support::detect_topology();
  EXPECT_GE(topo.logical_cpus, 1u);
}

TEST(Topology, PinToCpuZeroSucceeds) {
  EXPECT_TRUE(support::pin_current_thread(0));
  EXPECT_TRUE(support::unpin_current_thread());
}

TEST(Topology, PinOutOfRangeFails) {
  EXPECT_FALSE(support::pin_current_thread(1u << 20));
}

TEST(Topology, PinFromSpawnedThread) {
  bool ok = false;
  std::thread t([&] { ok = support::pin_current_thread(0); });
  t.join();
  EXPECT_TRUE(ok);
  EXPECT_TRUE(support::unpin_current_thread());
}

TEST(PinnedRuntimes, RioWithPinningStillCorrect) {
  stf::TaskFlow flow;
  auto d = flow.create_data<std::uint64_t>("d");
  for (int i = 0; i < 40; ++i)
    flow.add("inc", [d](stf::TaskContext& ctx) { ctx.scalar(d) += 2; },
             {stf::readwrite(d)});
  rt::Runtime runtime(rt::Config{.num_workers = 2, .pin_workers = true});
  runtime.run(flow, rt::mapping::round_robin(2));
  EXPECT_EQ(*flow.registry().typed<std::uint64_t>(d), 80u);
}

TEST(PinnedRuntimes, CoorWithPinningStillCorrect) {
  workloads::LuDagSpec spec;
  spec.row_tiles = 3;
  spec.col_tiles = 3;
  spec.task_cost = 10;
  auto wl = workloads::make_lu_dag(spec);
  coor::Runtime runtime(coor::Config{.num_workers = 2, .pin_workers = true});
  const auto stats = runtime.run(wl.flow);
  EXPECT_EQ(stats.tasks_executed(), wl.flow.num_tasks());
}

// ------------------------------------------------------------ DOT export ---

TEST(DotExport, EmitsNodesAndEdges) {
  stf::TaskFlow flow;
  auto d = flow.create_data<int>("d");
  flow.add("producer", {}, {stf::write(d)});
  flow.add("consumer", {}, {stf::read(d)});
  stf::DependencyGraph g(flow);
  std::ostringstream os;
  stf::export_dot(flow, g, os);
  const std::string dot = os.str();
  EXPECT_EQ(dot.rfind("digraph taskflow {", 0), 0u);
  EXPECT_NE(dot.find("producer"), std::string::npos);
  EXPECT_NE(dot.find("t0 -> t1;"), std::string::npos);
  EXPECT_NE(dot.find("}\n"), std::string::npos);
}

TEST(DotExport, ClustersByWorker) {
  stf::TaskFlow flow;
  for (int i = 0; i < 4; ++i) flow.add_virtual(1, {});
  stf::DependencyGraph g(flow);
  std::ostringstream os;
  stf::DotOptions opt;
  opt.cluster_by_worker = true;
  stf::export_dot(flow, g, os, {0, 1, 0, stf::kInvalidWorker}, opt);
  const std::string dot = os.str();
  EXPECT_NE(dot.find("cluster_w0"), std::string::npos);
  EXPECT_NE(dot.find("cluster_w1"), std::string::npos);
  EXPECT_NE(dot.find("style=dashed"), std::string::npos);  // unmapped node
}

TEST(DotExport, SuppressesHugeGraphs) {
  stf::TaskFlow flow;
  for (int i = 0; i < 100; ++i) flow.add_virtual(1, {});
  stf::DependencyGraph g(flow);
  std::ostringstream os;
  stf::DotOptions opt;
  opt.max_tasks = 10;
  stf::export_dot(flow, g, os, {}, opt);
  EXPECT_NE(os.str().find("rendering suppressed"), std::string::npos);
}

TEST(DotExport, EscapesQuotesInNames) {
  stf::TaskFlow flow;
  flow.add("say \"hi\"", {}, {});
  stf::DependencyGraph g(flow);
  std::ostringstream os;
  stf::export_dot(flow, g, os);
  EXPECT_NE(os.str().find("say \\\"hi\\\""), std::string::npos);
}

// ----------------------------------------------------------- flow summary --

TEST(FlowSummary, MatchesLuStructure) {
  workloads::LuDagSpec spec;
  spec.row_tiles = 4;
  spec.col_tiles = 4;
  spec.task_cost = 10;
  auto wl = workloads::make_lu_dag(spec);
  stf::DependencyGraph g(wl.flow);
  const auto s = stf::summarize_flow(wl.flow, g);
  EXPECT_EQ(s.tasks, workloads::lu_dag_task_count(4, 4));
  EXPECT_EQ(s.data_objects, 16u);
  EXPECT_EQ(s.edges, g.num_edges());
  EXPECT_EQ(s.total_cost, s.tasks * 10);
  EXPECT_GT(s.parallelism(), 1.0);
  EXPECT_GT(s.avg_accesses_per_task, 1.0);

  std::ostringstream os;
  stf::print_summary(s, os);
  EXPECT_NE(os.str().find("critical path"), std::string::npos);
}

TEST(FlowSummary, EmptyFlowIsSane) {
  stf::TaskFlow flow;
  stf::DependencyGraph g(flow);
  const auto s = stf::summarize_flow(flow, g);
  EXPECT_EQ(s.tasks, 0u);
  EXPECT_EQ(s.parallelism(), 1.0);
}

}  // namespace
