// Tests for the causal profiler (docs/observability.md, "Causal
// profiling"): wait-cause attribution on the hot-path event schema, the
// obs::causal executed-DAG analyzer, sampled recording, the Perfetto dep
// flow events, rioflow blame / obs-diff, and the json_read parser.
//
// The load-bearing identities, in the same EXPECT_EQ-not-near discipline
// as the obs reconciliation suite:
//   * sim-rio on a dependency-bound chain: crit_path == makespan exactly
//     (the virtual clock makes the walk closed-form);
//   * every workload: crit_path <= makespan, structurally;
//   * rio: the analyzer's wait_total equals the recorder's acquire_wait
//     phase total, and every stalled acquire carries a data cause, so the
//     per-handle blame sums to the same number;
//   * sampling keeps recorded + dropped == pushed exact at any stride.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "cli/cli.hpp"
#include "engine/registry.hpp"
#include "engine/supervisor.hpp"
#include "obs/causal.hpp"
#include "obs/export.hpp"
#include "obs/obs.hpp"
#include "rio/rio.hpp"
#include "sim/sim.hpp"
#include "support/fault.hpp"
#include "support/json_read.hpp"
#include "workloads/workloads.hpp"

namespace {

using namespace rio;

constexpr std::size_t kWaitIdx =
    static_cast<std::size_t>(obs::Phase::kAcquireWait);

workloads::Workload chain(std::uint64_t tasks, std::uint64_t cost,
                          std::uint32_t workers, workloads::BodyKind body) {
  workloads::ChainSpec s;
  s.num_tasks = tasks;
  s.task_cost = cost;
  s.body = body;
  s.num_workers = workers;
  return workloads::make_chain(s);
}

workloads::Workload cholesky(std::uint32_t tiles, std::uint32_t workers,
                             workloads::BodyKind body) {
  workloads::CholeskyDagSpec s;
  s.tiles = tiles;
  s.task_cost = 2000;
  s.body = body;
  s.num_workers = workers;
  return workloads::make_cholesky_dag(s);
}

int run_cli(std::initializer_list<const char*> args,
            std::string* out_text = nullptr) {
  std::vector<const char*> argv{"rioflow"};
  argv.insert(argv.end(), args.begin(), args.end());
  cli::Options o;
  std::string error;
  if (!cli::parse(static_cast<int>(argv.size()), argv.data(), o, error))
    return -1;
  std::ostringstream out, err;
  const int rc = cli::run(o, out, err);
  if (out_text) *out_text = out.str() + err.str();
  return rc;
}

// --------------------------------------------------------- cause word -----

TEST(CausalCause, PackAndUnpackRoundTrip) {
  const std::uint64_t c = obs::make_cause(42, 7);
  EXPECT_EQ(obs::cause_producer(c), 42u);
  EXPECT_EQ(obs::cause_data(c), 7u);
  // Producer without a data object (coor / sims).
  const std::uint64_t p = obs::make_cause(9);
  EXPECT_EQ(obs::cause_producer(p), 9u);
  EXPECT_EQ(obs::cause_data(p), obs::kNoCauseData);
  // The sentinel is its own fixed point.
  EXPECT_EQ(obs::cause_producer(obs::kNoCause), obs::kNoTask);
  EXPECT_EQ(obs::cause_data(obs::kNoCause), obs::kNoCauseData);
  // A producer id too wide for 32 bits degrades to unattributed, never to
  // a wrong task.
  EXPECT_EQ(obs::cause_producer(obs::make_cause(0x1'0000'0000ull, 3)),
            obs::kNoTask);
}

// ---------------------------------------------------------- simulators ----

TEST(CausalSim, ChainCriticalPathEqualsMakespanExactly) {
  // A chain on the virtual-time simulator is dependency-bound from task 0:
  // the walk reaches the first task at arrival 0 and the identity is exact.
  const std::uint32_t p = 2;
  auto wl = chain(40, 5000, p, workloads::BodyKind::kNone);
  obs::Hub hub(obs::HubOptions{.recorder = true});
  sim::DecentralizedParams dp;
  dp.workers = p;
  dp.obs = &hub;
  const auto rep = sim::simulate_decentralized(wl.flow, wl.mapping(p), dp);

  const obs::causal::Analysis an = obs::causal::analyze(hub);
  EXPECT_TRUE(an.complete);
  EXPECT_EQ(an.makespan, rep.makespan);
  EXPECT_EQ(an.crit_path, an.makespan);  // the closed-form identity
  EXPECT_EQ(an.path.size(), 40u);        // every chain link is on the path
  EXPECT_EQ(an.path.front().task, 0u);
  EXPECT_EQ(an.path.back().task, 39u);
  // Path follows the chain in order, each link bound by its predecessor.
  for (std::size_t i = 1; i < an.path.size(); ++i)
    EXPECT_EQ(an.path[i].task, an.path[i - 1].task + 1);
  EXPECT_EQ(an.wait_attributed, an.wait_total);
}

TEST(CausalSim, CholeskyCritPathBoundedByMakespan) {
  const std::uint32_t p = 4;
  auto wl = cholesky(5, p, workloads::BodyKind::kNone);
  obs::Hub hub(obs::HubOptions{.recorder = true});
  sim::DecentralizedParams dp;
  dp.workers = p;
  dp.obs = &hub;
  const auto rep = sim::simulate_decentralized(wl.flow, wl.mapping(p), dp);

  const obs::causal::Analysis an = obs::causal::analyze(hub);
  EXPECT_EQ(an.makespan, rep.makespan);
  EXPECT_LE(an.crit_path, an.makespan);
  EXPECT_FALSE(an.path.empty());
  // The walk never loops: every path node is a distinct task.
  std::set<std::uint64_t> seen;
  for (const auto& n : an.path) EXPECT_TRUE(seen.insert(n.task).second);
  // Attributed edges point at real predecessors, never at the consumer.
  for (const auto& e : an.edges)
    if (e.producer != obs::kNoTask) EXPECT_NE(e.producer, e.consumer);
}

TEST(CausalSim, CentralizedWaitsAttributeToArgmaxPredecessor) {
  const std::uint32_t p = 3;
  auto wl = cholesky(5, p, workloads::BodyKind::kNone);
  obs::Hub hub(obs::HubOptions{.recorder = true});
  sim::CentralizedParams cp;
  cp.workers = p;
  cp.obs = &hub;
  const auto rep = sim::simulate_centralized(wl.flow, cp);

  const obs::causal::Analysis an = obs::causal::analyze(hub);
  EXPECT_EQ(an.makespan, rep.makespan);
  EXPECT_LE(an.crit_path, an.makespan);
  // Dependency-bound waits are attributed; discovery-bound ones are not —
  // but attribution never exceeds the total.
  EXPECT_LE(an.wait_attributed, an.wait_total);
}

// ------------------------------------------------------ reconciliation ----

TEST(CausalRio, WaitTotalReconcilesWithPhaseTotalExactly) {
  // On rio every stalled acquire knows its data object and expected
  // writer, so (with no ring drops) three independently-computed numbers
  // coincide exactly: the recorder's acquire_wait phase total, the
  // analyzer's wait_total, and the per-handle blame sum.
  const std::uint32_t p = 2;
  auto wl = chain(24, 100000, p, workloads::BodyKind::kCounter);
  obs::Hub hub(obs::HubOptions{.recorder = true});
  rt::Runtime eng(rt::Config{.num_workers = p,
                             .collect_stats = true,
                             .obs = &hub});
  eng.run(wl.flow, wl.mapping(p));
  ASSERT_EQ(hub.dropped(), 0u);

  const obs::causal::Analysis an = obs::causal::analyze(hub);
  std::uint64_t phase_wait = 0;
  for (std::uint32_t w = 0; w < hub.num_workers(); ++w)
    phase_wait += hub.phase_totals(w)[kWaitIdx];
  EXPECT_EQ(an.wait_total, phase_wait);
  EXPECT_EQ(an.wait_attributed, an.wait_total);  // rio: always has a cause

  std::uint64_t handle_sum = 0;
  for (const auto& b : an.handle_blame) handle_sum += b.blame;
  EXPECT_EQ(handle_sum, an.wait_total);
  std::uint64_t task_sum = 0;
  for (const auto& b : an.task_blame) task_sum += b.blame;
  EXPECT_EQ(task_sum, an.wait_total);
  // A round-robin chain ping-pongs between two workers: waits must exist.
  EXPECT_GT(an.edges.size(), 0u);
  EXPECT_LE(an.crit_path, an.makespan);
}

TEST(CausalRio, PrunedRuntimeAttributesToo) {
  const std::uint32_t p = 2;
  auto wl = chain(24, 100000, p, workloads::BodyKind::kCounter);
  obs::Hub hub(obs::HubOptions{.recorder = true});
  rt::PrunedPlan plan(wl.flow, wl.mapping(p), p);
  rt::PrunedRuntime eng(rt::Config{.num_workers = p,
                                   .collect_stats = true,
                                   .obs = &hub});
  eng.run(wl.flow, plan);
  ASSERT_EQ(hub.dropped(), 0u);

  const obs::causal::Analysis an = obs::causal::analyze(hub);
  std::uint64_t phase_wait = 0;
  for (std::uint32_t w = 0; w < hub.num_workers(); ++w)
    phase_wait += hub.phase_totals(w)[kWaitIdx];
  EXPECT_EQ(an.wait_total, phase_wait);
  EXPECT_EQ(an.wait_attributed, an.wait_total);
}

// ----------------------------------------------------------- flow events --

TEST(CausalExport, PerfettoFlowEventsAreStructurallyValid) {
  const std::uint32_t p = 2;
  auto wl = chain(24, 100000, p, workloads::BodyKind::kCounter);
  obs::Hub hub(obs::HubOptions{.recorder = true});
  rt::Runtime eng(rt::Config{.num_workers = p,
                             .collect_stats = true,
                             .obs = &hub});
  eng.run(wl.flow, wl.mapping(p));

  std::ostringstream os;
  obs::write_perfetto_trace(hub, os);
  const std::string json = os.str();

  const auto count = [&](const std::string& needle) {
    std::size_t n = 0;
    for (std::size_t pos = json.find(needle); pos != std::string::npos;
         pos = json.find(needle, pos + needle.size()))
      ++n;
    return n;
  };
  // Every flow start has exactly one matching finish, and the pair shares
  // the "dep" name; the walk above guarantees at least one wait edge.
  const std::size_t starts = count("\"ph\": \"s\"");
  const std::size_t finishes = count("\"ph\": \"f\"");
  EXPECT_EQ(starts, finishes);
  EXPECT_GT(starts, 0u);
  EXPECT_EQ(count("\"name\": \"dep\""), starts + finishes);
  EXPECT_EQ(count("\"bp\": \"e\""), finishes);
  // Still a well-formed JSON array.
  long depth = 0;
  for (char c : json) {
    if (c == '[' || c == '{') ++depth;
    if (c == ']' || c == '}') --depth;
    ASSERT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
}

// -------------------------------------------------------------- sampling --

TEST(CausalSampling, RingAccountingHoldsAtAnyStride) {
  // No overflow: recorded == ceil(pushed / stride), dropped = the rest.
  obs::EventRing ring(64, 4);
  for (std::uint64_t i = 0; i < 30; ++i)
    ring.push(obs::Event{i, i + 1, i, 0, obs::Phase::kBody});
  EXPECT_EQ(ring.pushed(), 30u);
  EXPECT_EQ(ring.recorded(), 8u);  // pushes 0, 4, 8, ..., 28
  EXPECT_EQ(ring.dropped(), 22u);
  EXPECT_EQ(ring.recorded() + ring.dropped(), ring.pushed());
  std::vector<obs::Event> out;
  ring.drain(out);
  ASSERT_EQ(out.size(), 8u);
  for (std::size_t i = 0; i < out.size(); ++i)
    EXPECT_EQ(out[i].task, i * 4);  // every 4th span, in order

  // With overflow on top of sampling the identity still holds exactly.
  obs::EventRing small(4, 3);
  for (std::uint64_t i = 0; i < 100; ++i)
    small.push(obs::Event{i, i + 1, i, 0, obs::Phase::kBody});
  EXPECT_EQ(small.pushed(), 100u);
  EXPECT_EQ(small.recorded(), 4u);
  EXPECT_EQ(small.recorded() + small.dropped(), small.pushed());
}

TEST(CausalSampling, SampledRunKeepsIdentityAndAnalyzerBounds) {
  const std::uint32_t p = 2;
  auto wl = cholesky(5, p, workloads::BodyKind::kCounter);
  obs::Hub hub(obs::HubOptions{.recorder = true, .sample = 4});
  rt::Runtime eng(rt::Config{.num_workers = p,
                             .collect_stats = true,
                             .obs = &hub});
  eng.run(wl.flow, wl.mapping(p));

  EXPECT_EQ(hub.sample_stride(), 4u);
  EXPECT_EQ(hub.recorded() + hub.dropped(), hub.pushed());
  EXPECT_GT(hub.dropped(), 0u);  // stride 4 necessarily drops spans

  // The analyzer must stay in bounds on the thinned DAG and flag it.
  const obs::causal::Analysis an = obs::causal::analyze(hub);
  EXPECT_FALSE(an.complete);
  EXPECT_LE(an.crit_path, an.makespan);
  std::set<std::uint64_t> seen;
  for (const auto& n : an.path) EXPECT_TRUE(seen.insert(n.task).second);
}

// -------------------------------------------------------------- recovery --

TEST(CausalRecovery, BlameSurvivesWorkerLoss) {
  // Kill a worker mid-run; the supervisor evicts and resumes. The rings
  // then hold spans from both generations — the analyzer must pick the
  // latest attempt per task and still produce an acyclic, bounded path.
  auto wl = cholesky(5, 3, workloads::BodyKind::kCounter);
  support::FaultPlan plan;
  plan.crash_tasks = {9};
  plan.max_crashes = 1;
  support::FaultInjector injector(plan);

  const engine::Backend* rio_backend =
      engine::Registry::instance().find("rio");
  ASSERT_NE(rio_backend, nullptr);
  obs::Hub hub(obs::HubOptions{.recorder = true});
  engine::Launch launch;
  launch.workers = 3;
  launch.fault = &injector;
  launch.mapping = wl.mapping(3);
  launch.obs = &hub;
  const engine::Outcome out = engine::run_supervised(
      *rio_backend, stf::FlowImage::compile(wl.flow), launch);
  EXPECT_EQ(out.evictions, 1u);

  const obs::causal::Analysis an = obs::causal::analyze(hub);
  EXPECT_LE(an.crit_path, an.makespan);
  EXPECT_FALSE(an.path.empty());
  std::set<std::uint64_t> seen;
  for (const auto& n : an.path) EXPECT_TRUE(seen.insert(n.task).second);
}

// ------------------------------------------------------------------ CLI ---

TEST(CausalCli, BlameJsonIsVersionedAndInternallyConsistent) {
  const std::string path = "/tmp/rioflow_test_blame.json";
  std::string text;
  const int rc =
      run_cli({"blame", "--engine", "sim-rio", "--workload", "chain",
               "--tasks", "40", "--task-size", "5000", "--json",
               path.c_str()},
              &text);
  EXPECT_EQ(rc, 0) << text;
  EXPECT_NE(text.find("critical path"), std::string::npos);

  std::ifstream f(path);
  ASSERT_TRUE(f.good());
  std::stringstream ss;
  ss << f.rdbuf();
  support::JsonValue doc;
  std::string error;
  ASSERT_TRUE(support::json_parse(ss.str(), doc, error)) << error;
  ASSERT_NE(doc.find("schema"), nullptr);
  EXPECT_EQ(doc.find("schema")->str_or(""), "rio.blame.v1");
  const support::JsonValue* cp = doc.find("critical_path");
  ASSERT_NE(cp, nullptr);
  const double makespan = doc.find("makespan")->num_or(-1.0);
  const double length = cp->find("length")->num_or(-1.0);
  EXPECT_EQ(length, makespan);  // sim-rio chain: the exact identity again
  const support::JsonValue* rec = doc.find("recorder");
  ASSERT_NE(rec, nullptr);
  EXPECT_EQ(rec->find("recorded")->num_or(-1.0) +
                rec->find("dropped")->num_or(-1.0),
            rec->find("pushed")->num_or(-2.0));
  std::remove(path.c_str());
}

TEST(CausalCli, ProfileBlameFlagAndSampleParse) {
  cli::Options o;
  std::string error;
  std::vector<const char*> argv{"rioflow", "profile", "--blame",
                                "--sample", "8",      "--top", "3"};
  ASSERT_TRUE(cli::parse(static_cast<int>(argv.size()), argv.data(), o,
                         error))
      << error;
  EXPECT_TRUE(o.blame);
  EXPECT_EQ(o.sample, 8u);
  EXPECT_EQ(o.top_edges, 3u);
  // --sample 0 is rejected, and positional operands only belong to
  // obs-diff.
  std::vector<const char*> bad{"rioflow", "profile", "--sample", "0"};
  EXPECT_FALSE(cli::parse(static_cast<int>(bad.size()), bad.data(), o,
                          error));
  std::vector<const char*> pos{"rioflow", "profile", "a.json"};
  EXPECT_FALSE(cli::parse(static_cast<int>(pos.size()), pos.data(), o,
                          error));
}

TEST(CausalCli, ObsDiffSelfIsZeroDriftAndExitZero) {
  const std::string path = "/tmp/rioflow_test_obsdiff_self.json";
  ASSERT_EQ(run_cli({"profile", "--engine", "sim-rio", "--workload",
                     "cholesky", "--tiles", "4", "--quick", "--json",
                     path.c_str()}),
            0);
  std::string text;
  const int rc = run_cli({"obs-diff", path.c_str(), path.c_str()}, &text);
  EXPECT_EQ(rc, 0) << text;
  EXPECT_NE(text.find("no regressions"), std::string::npos);
  EXPECT_EQ(text.find("REGRESSED"), std::string::npos);
  std::remove(path.c_str());
}

TEST(CausalCli, ObsDiffFlagsRegressionsWithExitThree) {
  // Hand-written minimal reports: the new run's acquire_wait grew 50%.
  const std::string old_path = "/tmp/rioflow_test_obsdiff_old.json";
  const std::string new_path = "/tmp/rioflow_test_obsdiff_new.json";
  const auto write = [](const std::string& p, std::uint64_t wait) {
    std::ofstream f(p);
    f << "{\"schema\": \"rio.obs.v1\", \"wall_ns\": 1000,\n"
      << " \"totals\": {\"phases\": {\"acquire_wait\": " << wait
      << ", \"body\": 500},\n"
      << "  \"counters\": {\"tasks_executed\": 10}},\n"
      << " \"decompose\": {\"product\": 0.5}}\n";
  };
  write(old_path, 200);
  write(new_path, 300);
  std::string text;
  const int rc = run_cli(
      {"obs-diff", old_path.c_str(), new_path.c_str(), "--threshold", "10"},
      &text);
  EXPECT_EQ(rc, 3) << text;
  EXPECT_NE(text.find("acquire_wait"), std::string::npos);
  EXPECT_NE(text.find("REGRESSED"), std::string::npos);
  // Same files, threshold above the drift: clean exit.
  EXPECT_EQ(run_cli({"obs-diff", old_path.c_str(), new_path.c_str(),
                     "--threshold", "60"}),
            0);
  // Wrong arity and a non-obs document are configuration errors.
  EXPECT_EQ(run_cli({"obs-diff", old_path.c_str()}), 1);
  std::ofstream(new_path) << "{\"schema\": \"rio.blame.v1\"}";
  EXPECT_EQ(run_cli({"obs-diff", old_path.c_str(), new_path.c_str()}), 1);
  std::remove(old_path.c_str());
  std::remove(new_path.c_str());
}

// ------------------------------------------------------------ json_read ---

TEST(CausalJsonRead, ParsesTheTreesOwnDocuments) {
  support::JsonValue v;
  std::string error;
  ASSERT_TRUE(support::json_parse(
      R"({"a": [1, 2.5, -3e2], "b": {"c": "x\ny"}, "d": true, "e": null})",
      v, error))
      << error;
  ASSERT_EQ(v.kind, support::JsonValue::Kind::kObject);
  const support::JsonValue* a = v.find("a");
  ASSERT_NE(a, nullptr);
  ASSERT_EQ(a->items.size(), 3u);
  EXPECT_EQ(a->items[0].num_or(0), 1.0);
  EXPECT_EQ(a->items[1].num_or(0), 2.5);
  EXPECT_EQ(a->items[2].num_or(0), -300.0);
  EXPECT_EQ(v.find("b")->find("c")->str_or(""), "x\ny");
  EXPECT_TRUE(v.find("d")->boolean);
  EXPECT_EQ(v.find("e")->kind, support::JsonValue::Kind::kNull);
  EXPECT_EQ(v.find("missing"), nullptr);
}

TEST(CausalJsonRead, RejectsMalformedInput) {
  support::JsonValue v;
  std::string error;
  EXPECT_FALSE(support::json_parse("{\"a\": 1,}", v, error));
  EXPECT_FALSE(support::json_parse("[1, 2] trailing", v, error));
  EXPECT_FALSE(support::json_parse("{\"a\" 1}", v, error));
  EXPECT_FALSE(support::json_parse("\"unterminated", v, error));
  EXPECT_FALSE(support::json_parse("{\"a\": \"\\q\"}", v, error));
  EXPECT_FALSE(support::json_parse("", v, error));
  // Errors carry a byte offset for the user.
  EXPECT_NE(error.find("offset"), std::string::npos);
}

}  // namespace
