// Tests for the hybrid runtime (dynamic OoO + static in-order phases under
// a partial mapping) and the pivoted-LU (HPL-style) workload that
// motivates it.
#include <gtest/gtest.h>

#include <cstring>
#include <optional>

#include "hybrid/hybrid.hpp"
#include "stf/stf.hpp"
#include "workloads/workloads.hpp"

namespace {

using namespace rio;
using hybrid::Phase;

// ---------------------------------------------------------- partition ------

TEST(Partition, SplitsAtMappingBoundaries) {
  stf::TaskFlow flow;
  for (int i = 0; i < 10; ++i) flow.add_virtual(1, {});
  // Tasks 0-2 unmapped, 3-6 mapped, 7-9 unmapped.
  auto pm = [](stf::TaskId t) -> std::optional<stf::WorkerId> {
    if (t >= 3 && t <= 6) return static_cast<stf::WorkerId>(t % 2);
    return std::nullopt;
  };
  const auto phases = hybrid::partition(flow, pm, 2);
  ASSERT_EQ(phases.size(), 3u);
  EXPECT_EQ(phases[0].kind, Phase::Kind::kDynamic);
  EXPECT_EQ(phases[0].first, 0u);
  EXPECT_EQ(phases[0].count, 3u);
  EXPECT_EQ(phases[1].kind, Phase::Kind::kStatic);
  EXPECT_EQ(phases[1].first, 3u);
  EXPECT_EQ(phases[1].count, 4u);
  EXPECT_TRUE(phases[1].mapping.valid());
  EXPECT_EQ(phases[1].mapping(4), 0u);
  EXPECT_EQ(phases[2].kind, Phase::Kind::kDynamic);
  EXPECT_EQ(phases[2].count, 3u);
}

TEST(Partition, AllMappedIsOneStaticPhase) {
  stf::TaskFlow flow;
  for (int i = 0; i < 5; ++i) flow.add_virtual(1, {});
  const auto phases = hybrid::partition(
      flow, [](stf::TaskId) { return std::optional<stf::WorkerId>(0); }, 1);
  ASSERT_EQ(phases.size(), 1u);
  EXPECT_EQ(phases[0].kind, Phase::Kind::kStatic);
  EXPECT_EQ(phases[0].count, 5u);
}

TEST(Partition, EmptyFlowHasNoPhases) {
  stf::TaskFlow flow;
  const auto phases = hybrid::partition(
      flow, [](stf::TaskId) { return std::nullopt; }, 2);
  EXPECT_TRUE(phases.empty());
}

// ------------------------------------------------------------ execution ----

TEST(Hybrid, MixedPhasesPreserveSequentialSemantics) {
  // A value threaded through alternating mapped/unmapped segments: any
  // reordering or lost barrier would corrupt the digits.
  auto build = [] {
    stf::TaskFlow flow;
    auto d = flow.create_data<std::uint64_t>("d");
    for (int i = 1; i <= 12; ++i)
      flow.add("s" + std::to_string(i),
               [d, i](stf::TaskContext& ctx) {
                 ctx.scalar(d) = ctx.scalar(d) * 10 +
                                 static_cast<std::uint64_t>(i % 10);
               },
               {stf::readwrite(d)});
    return flow;
  };
  auto seq_flow = build();
  stf::SequentialExecutor{}.run(seq_flow);
  const auto expect = *seq_flow.registry().typed<std::uint64_t>(
      stf::DataHandle<std::uint64_t>{0});

  auto flow = build();
  hybrid::Runtime rt(hybrid::Config{.num_workers = 3, .enable_guard = true});
  rt.run(flow, [](stf::TaskId t) -> std::optional<stf::WorkerId> {
    // Alternate segments of 3: mapped, unmapped, mapped, unmapped.
    if ((t / 3) % 2 == 0) return static_cast<stf::WorkerId>(t % 3);
    return std::nullopt;
  });
  EXPECT_EQ(rt.last_phase_count(), 4u);
  EXPECT_EQ(*flow.registry().typed<std::uint64_t>(
                stf::DataHandle<std::uint64_t>{0}),
            expect);
}

TEST(Hybrid, RandomGraphMatchesOracleAcrossPhaseShapes) {
  for (std::uint64_t segment : {1ull, 5ull, 17ull}) {
    auto make = [] {
      workloads::RandomDepsSpec spec;
      spec.num_tasks = 200;
      spec.num_data = 16;
      spec.body = workloads::BodyKind::kNone;
      spec.seed = 77;
      auto wl = workloads::make_random_deps(spec);
      // Rebuild with order-sensitive bodies.
      stf::TaskFlow rebuilt;
      std::vector<stf::DataHandle<std::uint64_t>> data;
      for (std::uint32_t d = 0; d < spec.num_data; ++d)
        data.push_back(
            rebuilt.create_data<std::uint64_t>("d" + std::to_string(d)));
      for (const stf::Task& t : wl.flow.tasks()) {
        stf::AccessList acc = t.accesses;
        const stf::TaskId id = t.id;
        std::vector<stf::DataId> written;
        for (const auto& a : t.accesses)
          if (is_write(a.mode)) written.push_back(a.data);
        rebuilt.add(t.name,
                    [written, id](stf::TaskContext& ctx) {
                      for (stf::DataId wr : written) {
                        auto* p = static_cast<std::uint64_t*>(
                            ctx.registry().raw(wr));
                        *p = *p * 31 + id + 1;
                      }
                    },
                    std::move(acc), t.cost);
      }
      return rebuilt;
    };

    auto seq_flow = make();
    stf::SequentialExecutor{}.run(seq_flow);

    auto flow = make();
    hybrid::Runtime rt(
        hybrid::Config{.num_workers = 3, .enable_guard = true});
    rt.run(flow, [segment](stf::TaskId t) -> std::optional<stf::WorkerId> {
      if ((t / segment) % 2 == 0) return static_cast<stf::WorkerId>(t % 3);
      return std::nullopt;
    });

    for (stf::DataId d = 0; d < flow.num_data(); ++d)
      EXPECT_EQ(std::memcmp(flow.registry().raw(d), seq_flow.registry().raw(d),
                            flow.registry().bytes(d)),
                0)
          << "segment " << segment << " object " << d;
  }
}

TEST(Hybrid, StatsAggregateAcrossPhases) {
  workloads::IndependentSpec spec;
  spec.num_tasks = 90;
  spec.task_cost = 2000;
  auto wl = workloads::make_independent(spec);
  hybrid::Runtime rt(hybrid::Config{.num_workers = 2});
  const auto stats =
      rt.run(wl.flow, [](stf::TaskId t) -> std::optional<stf::WorkerId> {
        if (t < 30) return static_cast<stf::WorkerId>(t % 2);  // static
        return std::nullopt;                                   // dynamic
      });
  EXPECT_EQ(rt.last_phase_count(), 2u);
  EXPECT_EQ(stats.tasks_executed(), 90u);
  ASSERT_EQ(stats.workers.size(), 3u);  // 2 workers + dynamic master slot
  EXPECT_EQ(stats.workers[2].tasks_executed, 0u);
  EXPECT_GT(stats.wall_ns, 0u);
}

// ------------------------------------------------------- HPL workload ------

TEST(Hpl, DenseReferencePivotsAndFactors) {
  // 3x3 known case: first pivot must be the largest |entry| of column 0.
  const std::size_t n = 3;
  std::vector<double> a = {1, 4, 2,   // column 0
                           2, 8, 5,   // column 1
                           3, 12, 7}; // column 2 (singular without pivoting)
  auto ap = a;
  const auto perm = workloads::dense_lu_pivoted(ap, n);
  EXPECT_EQ(perm[0], 1u);  // row 1 has the max |4|
  // Reconstruct P*A = L*U and compare.
  auto pa = a;
  for (std::size_t c = 0; c < n; ++c)
    if (perm[c] != c)
      for (std::size_t col = 0; col < n; ++col)
        std::swap(pa[c + col * n], pa[perm[c] + col * n]);
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = 0; c < n; ++c) {
      double acc = 0;
      for (std::size_t k = 0; k <= std::min(r, c); ++k)
        acc += (k == r ? 1.0 : ap[r + k * n]) * ap[k + c * n];
      EXPECT_NEAR(acc, pa[r + c * n], 1e-12) << r << "," << c;
    }
  }
}

struct HplParam {
  std::uint32_t tiles, dim, workers;
};

class HplEngines : public ::testing::TestWithParam<HplParam> {};

TEST_P(HplEngines, SequentialFactorizationIsCorrect) {
  const auto [nt, dim, workers] = GetParam();
  workloads::TiledMatrix a(nt, dim);
  a.fill_random(91);
  workloads::TiledMatrix original = a;
  auto hpl = workloads::make_hpl_lu(a, workers);
  stf::SequentialExecutor{}.run(hpl.workload.flow);
  EXPECT_LT(workloads::hpl_residual(original, a, *hpl.perm), 1e-13);
}

TEST_P(HplEngines, HybridMatchesSequential) {
  const auto [nt, dim, workers] = GetParam();
  workloads::TiledMatrix a1(nt, dim), a2(nt, dim);
  a1.fill_random(92);
  a2.fill_random(92);
  workloads::TiledMatrix original = a1;

  auto seq = workloads::make_hpl_lu(a1, workers);
  stf::SequentialExecutor{}.run(seq.workload.flow);

  auto hpl = workloads::make_hpl_lu(a2, workers);
  hybrid::Runtime rt(
      hybrid::Config{.num_workers = workers, .enable_guard = true});
  rt.run(hpl.workload.flow, hpl.partial_mapping());

  EXPECT_EQ(a1.max_abs_diff(a2), 0.0) << "hybrid diverged from sequential";
  EXPECT_EQ(*seq.perm, *hpl.perm);
  EXPECT_LT(workloads::hpl_residual(original, a2, *hpl.perm), 1e-13);
  // Alternating fine/coarse phases: 2 per panel step (first step has no
  // leading dynamic run), so at least nt phases.
  EXPECT_GE(rt.last_phase_count(), static_cast<std::size_t>(nt));
}

TEST_P(HplEngines, PureRioWithFullMappingMatches) {
  const auto [nt, dim, workers] = GetParam();
  workloads::TiledMatrix a1(nt, dim), a2(nt, dim);
  a1.fill_random(93);
  a2.fill_random(93);

  auto seq = workloads::make_hpl_lu(a1, workers);
  stf::SequentialExecutor{}.run(seq.workload.flow);

  auto hpl = workloads::make_hpl_lu(a2, workers);
  rt::Runtime runtime(
      rt::Config{.num_workers = workers, .enable_guard = true});
  runtime.run(hpl.workload.flow, hpl.full_mapping());

  EXPECT_EQ(a1.max_abs_diff(a2), 0.0);
  EXPECT_EQ(*seq.perm, *hpl.perm);
}

TEST_P(HplEngines, CentralizedOooMatches) {
  const auto [nt, dim, workers] = GetParam();
  workloads::TiledMatrix a1(nt, dim), a2(nt, dim);
  a1.fill_random(94);
  a2.fill_random(94);

  auto seq = workloads::make_hpl_lu(a1, workers);
  stf::SequentialExecutor{}.run(seq.workload.flow);

  auto hpl = workloads::make_hpl_lu(a2, workers);
  coor::Runtime runtime(
      coor::Config{.num_workers = workers, .enable_guard = true});
  runtime.run(hpl.workload.flow);

  EXPECT_EQ(a1.max_abs_diff(a2), 0.0);
}

INSTANTIATE_TEST_SUITE_P(Sizes, HplEngines,
                         ::testing::Values(HplParam{2, 4, 2},
                                           HplParam{3, 4, 3},
                                           HplParam{3, 8, 2},
                                           HplParam{4, 4, 4}),
                         [](const auto& i) {
                           return "t" + std::to_string(i.param.tiles) + "d" +
                                  std::to_string(i.param.dim) + "w" +
                                  std::to_string(i.param.workers);
                         });

TEST(Hpl, PivotingActuallyHappens) {
  // A matrix crafted so the naive (unpivoted) algorithm would divide by a
  // tiny pivot: pivoting must pick larger rows.
  constexpr std::uint32_t nt = 2, dim = 4;
  workloads::TiledMatrix a(nt, dim);
  a.fill_random(95);
  a.at(0, 0) = 1e-14;  // force a pivot swap at the very first column
  workloads::TiledMatrix original = a;

  auto hpl = workloads::make_hpl_lu(a, 2);
  stf::SequentialExecutor{}.run(hpl.workload.flow);
  EXPECT_NE((*hpl.perm)[0], 0u) << "first pivot should not stay in place";
  EXPECT_LT(workloads::hpl_residual(original, a, *hpl.perm), 1e-12);
}

}  // namespace
