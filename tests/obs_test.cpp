// Tests for rio::obs — the unified telemetry layer (docs/observability.md).
//
// The load-bearing properties:
//   * reconciliation: the flight recorder's kBody spans, the execution
//     trace's busy intervals and the RunStats tau buckets all describe the
//     SAME clock reads, so they must agree exactly (not approximately);
//   * ring overflow drops oldest and accounts for every lost event;
//   * the disabled path (null hub / unbound lens) never allocates;
//   * counters match the run's ground truth (tasks executed, waits,
//     injected faults, retries);
//   * the simulators emit the same schema in virtual ticks with the exact
//     per-worker identity kBody + kAcquireWait + kMgmt == makespan;
//   * obs.json round-trips the e_p / e_r decomposition bit-for-bit.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "coor/coor.hpp"
#include "engine/registry.hpp"
#include "hybrid/runtime.hpp"
#include "metrics/efficiency.hpp"
#include "obs/export.hpp"
#include "obs/obs.hpp"
#include "rio/rio.hpp"
#include "sim/sim.hpp"
#include "support/fault.hpp"
#include "workloads/workloads.hpp"

// Global allocation counter for the disabled-path guard. Counting is
// relaxed: we only compare totals before/after single-threaded sections.
namespace {
std::atomic<std::uint64_t> g_allocs{0};
}

void* operator new(std::size_t n) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n ? n : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t n) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n ? n : 1)) return p;
  throw std::bad_alloc();
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace {

using namespace rio;

constexpr std::size_t kBodyIdx = static_cast<std::size_t>(obs::Phase::kBody);
constexpr std::size_t kWaitIdx =
    static_cast<std::size_t>(obs::Phase::kAcquireWait);
constexpr std::size_t kStealIdx = static_cast<std::size_t>(obs::Phase::kSteal);
constexpr std::size_t kMgmtIdx = static_cast<std::size_t>(obs::Phase::kMgmt);

workloads::Workload cholesky(std::uint32_t tiles, std::uint32_t workers) {
  workloads::CholeskyDagSpec s;
  s.tiles = tiles;
  s.task_cost = 2000;
  s.body = workloads::BodyKind::kCounter;
  s.num_workers = workers;
  return workloads::make_cholesky_dag(s);
}

std::vector<std::uint64_t> trace_busy(const stf::Trace& trace,
                                      std::size_t workers) {
  std::vector<std::uint64_t> busy(workers, 0);
  for (const stf::TraceEvent& ev : trace.events())
    busy[ev.worker] += ev.end_ns - ev.start_ns;
  return busy;
}

std::vector<std::uint64_t> ring_body(const obs::Hub& hub) {
  std::vector<std::uint64_t> body(hub.num_workers(), 0);
  for (const obs::Event& ev : hub.drain_events())
    if (ev.phase == obs::Phase::kBody) body[ev.worker] += ev.end - ev.begin;
  return body;
}

// ------------------------------------------------------------- recorder ----

TEST(ObsRing, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(obs::EventRing(1).capacity(), 1u);
  EXPECT_EQ(obs::EventRing(3).capacity(), 4u);
  EXPECT_EQ(obs::EventRing(4).capacity(), 4u);
  EXPECT_EQ(obs::EventRing(1000).capacity(), 1024u);
}

TEST(ObsRing, OverflowDropsOldestAndAccounts) {
  obs::EventRing ring(4);
  for (std::uint64_t i = 0; i < 10; ++i)
    ring.push(obs::Event{i, i + 1, i, 0, obs::Phase::kBody});
  EXPECT_EQ(ring.pushed(), 10u);
  EXPECT_EQ(ring.recorded(), 4u);
  EXPECT_EQ(ring.dropped(), 6u);
  std::vector<obs::Event> out;
  ring.drain(out);
  ASSERT_EQ(out.size(), 4u);
  EXPECT_EQ(out.front().task, 6u);  // oldest retained, in push order
  EXPECT_EQ(out.back().task, 9u);
}

TEST(ObsRing, RecorderSumsAcrossWorkers) {
  obs::Recorder rec(4);
  rec.ensure(2);
  for (std::uint64_t i = 0; i < 6; ++i)
    rec.ring(0)->push(obs::Event{i, i, i, 0, obs::Phase::kSteal});
  rec.ring(1)->push(obs::Event{0, 0, 0, 1, obs::Phase::kSteal});
  EXPECT_EQ(rec.recorded(), 5u);  // 4 retained on worker 0 + 1 on worker 1
  EXPECT_EQ(rec.dropped(), 2u);
  EXPECT_EQ(rec.ring(7), nullptr);
}

TEST(ObsRing, EngineDropsAreReportedNotLost) {
  // A deliberately tiny ring: the run must still complete, and the hub must
  // report exactly how many events did not fit.
  auto wl = cholesky(5, 2);
  obs::Hub hub(obs::HubOptions{.recorder = true, .ring_capacity = 8});
  rt::Runtime eng(rt::Config{.num_workers = 2,
                             .collect_stats = false,
                             .obs = &hub});
  eng.run(wl.flow, wl.mapping(2));
  EXPECT_GT(hub.dropped(), 0u);
  EXPECT_LE(hub.recorded(), 2u * 8u);
  EXPECT_EQ(hub.drain_events().size(), hub.recorded());
}

// -------------------------------------------------------- disabled path ----

TEST(ObsDisabled, UnboundLensNeverAllocates) {
  obs::WorkerObs ob;
  EXPECT_FALSE(ob.recording());
  const std::uint64_t before = g_allocs.load(std::memory_order_relaxed);
  for (int i = 0; i < 1000; ++i) {
    ob.span(obs::Phase::kBody, 7, 10, 20);
    ob.instant(obs::Phase::kFaultInjected, 7, 15);
    ob.count(obs::Counter::kTasksExecuted);
    ob.spin_iters += 3;
  }
  ob.commit(nullptr);
  EXPECT_EQ(g_allocs.load(std::memory_order_relaxed), before);
  EXPECT_EQ(ob.phase_ns[kBodyIdx], 10000u);  // locals still accumulate
}

TEST(ObsDisabled, BoundLensEventsNeverAllocate) {
  obs::Hub hub(obs::HubOptions{.recorder = true, .ring_capacity = 16});
  hub.ensure_workers(1);
  obs::WorkerObs ob;
  ob.bind(&hub, 0);
  const std::uint64_t before = g_allocs.load(std::memory_order_relaxed);
  for (int i = 0; i < 1000; ++i) {  // far beyond capacity: overwrite path
    ob.span(obs::Phase::kBody, 1, 0, 5);
    ob.count(obs::Counter::kSteals);
  }
  EXPECT_EQ(g_allocs.load(std::memory_order_relaxed), before)
      << "hot-path span/count allocated";
}

TEST(ObsDisabled, CountersOnlyHubHasNoRecorder) {
  obs::Hub hub;  // default: counters only
  hub.ensure_workers(4);
  EXPECT_FALSE(hub.recorder_enabled());
  EXPECT_EQ(hub.ring_capacity(), 0u);
  EXPECT_EQ(hub.recorded(), 0u);
  obs::WorkerObs ob;
  ob.bind(&hub, 0);
  EXPECT_FALSE(ob.recording());
  EXPECT_TRUE(hub.drain_events().empty());
}

TEST(ObsDisabled, NullHubRunLeavesNothingBehind) {
  // Engines run with cfg.obs == nullptr: a separate hub stays all-zero.
  auto wl = cholesky(3, 2);
  rt::Runtime eng(rt::Config{.num_workers = 2});
  eng.run(wl.flow, wl.mapping(2));
  obs::Hub hub;
  const obs::CounterSnapshot snap = hub.counter_snapshot();
  for (std::size_t c = 0; c < obs::kNumCounters; ++c)
    EXPECT_EQ(snap.total(static_cast<obs::Counter>(c)), 0u);
  EXPECT_EQ(hub.num_workers(), 0u);
}

// -------------------------------------------------------- reconciliation ---

TEST(ObsReconcile, RioTraceRingAndBucketsAgreeExactly) {
  const std::uint32_t p = 2;
  auto wl = cholesky(4, p);
  obs::Hub hub(obs::HubOptions{.recorder = true});
  rt::Runtime eng(rt::Config{.num_workers = p,
                             .collect_stats = true,
                             .collect_trace = true,
                             .obs = &hub});
  const auto stats = eng.run(wl.flow, wl.mapping(p));

  // The trace's busy time and the ring's kBody spans record the SAME two
  // clock reads per task: equality is exact, not approximate.
  const auto busy = trace_busy(eng.trace(), p);
  const auto body = ring_body(hub);
  ASSERT_EQ(hub.num_workers(), p);
  std::uint64_t waits = 0;
  for (std::uint32_t w = 0; w < p; ++w) {
    EXPECT_EQ(body[w], busy[w]) << "worker " << w;
    const auto& ph = hub.phase_totals(w);
    EXPECT_EQ(ph[kBodyIdx], stats.workers[w].buckets.task_ns);
    EXPECT_EQ(ph[kWaitIdx] + ph[kStealIdx], stats.workers[w].buckets.idle_ns);
    waits += stats.workers[w].waits;
  }
  const obs::CounterSnapshot snap = hub.counter_snapshot();
  EXPECT_EQ(snap.total(obs::Counter::kTasksExecuted), wl.flow.num_tasks());
  EXPECT_EQ(snap.total(obs::Counter::kProtocolWaits), waits);
  for (std::uint32_t w = 0; w < p; ++w)
    EXPECT_EQ(snap.worker_value(w, obs::Counter::kTasksExecuted),
              stats.workers[w].tasks_executed);
}

TEST(ObsReconcile, PrunedRioAgreesToo) {
  const std::uint32_t p = 2;
  auto wl = cholesky(4, p);
  obs::Hub hub(obs::HubOptions{.recorder = true});
  rt::PrunedPlan plan(wl.flow, wl.mapping(p), p);
  rt::PrunedRuntime eng(rt::Config{.num_workers = p,
                                   .collect_stats = true,
                                   .collect_trace = true,
                                   .obs = &hub});
  const auto stats = eng.run(wl.flow, plan);
  const auto busy = trace_busy(eng.trace(), p);
  const auto body = ring_body(hub);
  for (std::uint32_t w = 0; w < p; ++w) {
    EXPECT_EQ(body[w], busy[w]) << "worker " << w;
    EXPECT_EQ(hub.phase_totals(w)[kBodyIdx],
              stats.workers[w].buckets.task_ns);
  }
  EXPECT_EQ(hub.counter_snapshot().total(obs::Counter::kTasksExecuted),
            wl.flow.num_tasks());
}

TEST(ObsReconcile, CoorWorkersAndMasterAgree) {
  const std::uint32_t p = 2;
  auto wl = cholesky(4, p);
  obs::Hub hub(obs::HubOptions{.recorder = true});
  coor::Runtime eng(coor::Config{.num_workers = p,
                                 .collect_stats = true,
                                 .collect_trace = true,
                                 .obs = &hub});
  const auto stats = eng.run(wl.flow);
  ASSERT_EQ(hub.num_workers(), p + 1);
  const auto busy = trace_busy(eng.trace(), p);
  const auto body = ring_body(hub);
  for (std::uint32_t w = 0; w < p; ++w) {
    EXPECT_EQ(body[w], busy[w]) << "worker " << w;
    EXPECT_EQ(hub.phase_totals(w)[kBodyIdx],
              stats.workers[w].buckets.task_ns);
    EXPECT_EQ(hub.phase_totals(w)[kWaitIdx] + hub.phase_totals(w)[kStealIdx],
              stats.workers[w].buckets.idle_ns);
  }
  // Master slot p: its kMgmt phase IS its runtime bucket (the unroll loop).
  EXPECT_EQ(hub.phase_totals(p)[kMgmtIdx],
            stats.workers[p].buckets.runtime_ns);
  EXPECT_EQ(hub.phase_totals(p)[kBodyIdx], 0u);
  const obs::CounterSnapshot snap = hub.counter_snapshot();
  EXPECT_EQ(snap.total(obs::Counter::kTasksExecuted), wl.flow.num_tasks());
  EXPECT_EQ(snap.total(obs::Counter::kQueuePops), wl.flow.num_tasks());
  EXPECT_EQ(snap.total(obs::Counter::kQueuePushes), wl.flow.num_tasks());
}

TEST(ObsReconcile, HybridAccumulatesAcrossPhases) {
  const std::uint32_t p = 2;
  auto wl = cholesky(4, p);
  obs::Hub hub(obs::HubOptions{.recorder = true});
  hybrid::Runtime eng(hybrid::Config{.num_workers = p,
                                     .collect_stats = true,
                                     .obs = &hub});
  const auto stats = eng.run(
      wl.flow, [p](stf::TaskId t) -> std::optional<stf::WorkerId> {
        if ((t / 4) % 2 == 0) return static_cast<stf::WorkerId>(t % p);
        return std::nullopt;
      });
  EXPECT_GT(eng.last_phase_count(), 1u);
  ASSERT_EQ(hub.num_workers(), p + 1);
  // Buckets folded per phase == phase totals accumulated across phases.
  for (std::uint32_t w = 0; w < p; ++w)
    EXPECT_EQ(hub.phase_totals(w)[kBodyIdx],
              stats.workers[w].buckets.task_ns);
  EXPECT_EQ(hub.counter_snapshot().total(obs::Counter::kTasksExecuted),
            wl.flow.num_tasks());
}

TEST(ObsReconcile, RetryCountersMatchInjector) {
  auto wl = cholesky(4, 2);
  support::FaultPlan plan;
  plan.throw_tasks = {3, 7};
  support::FaultInjector injector(plan);
  obs::Hub hub;
  rt::Runtime eng(rt::Config{.num_workers = 2,
                             .collect_stats = false,
                             .retry = {.max_attempts = 3},
                             .fault = &injector,
                             .obs = &hub});
  eng.run(wl.flow, wl.mapping(2));
  const obs::CounterSnapshot snap = hub.counter_snapshot();
  EXPECT_EQ(snap.total(obs::Counter::kFaultsInjected),
            injector.injected_throws());
  EXPECT_EQ(snap.total(obs::Counter::kRetries), injector.injected_throws());
  EXPECT_EQ(snap.total(obs::Counter::kFaultsInjected), 2u);
}

// ------------------------------------------------------- registry matrix ---

TEST(ObsMatrix, EverySupportsObsBackendPopulatesTheHub) {
  // Capability-driven sweep: any backend advertising supports_obs — real or
  // virtual-time, present or future — must wire a Launch's hub through to
  // its workers. Catches a backend that registers the flag but drops the
  // obs pointer on the floor when translating Launch to its native config.
  for (const engine::Backend* backend : engine::Registry::instance().all()) {
    const engine::Capabilities& caps = backend->caps();
    if (!caps.supports_obs) continue;
    SCOPED_TRACE(std::string(backend->name()));

    const std::uint32_t p = 2;
    auto wl = cholesky(4, p);
    obs::Hub hub(obs::HubOptions{.recorder = true});
    engine::Launch launch;
    launch.workers = p;
    launch.obs = &hub;
    if (caps.needs_mapping) launch.mapping = wl.mapping(p);
    (void)backend->run(stf::FlowImage::compile(wl.flow), launch);

    EXPECT_EQ(hub.num_workers(), caps.has_master ? p + 1 : p);
    if (caps.virtual_time)
      EXPECT_EQ(hub.clock_unit(), obs::ClockUnit::kTicks);
    EXPECT_EQ(hub.counter_snapshot().total(obs::Counter::kTasksExecuted),
              wl.flow.num_tasks());
  }
}

// ------------------------------------------------------------ simulators ---

TEST(ObsSim, DecentralizedEmitsTicksWithExactIdentity) {
  const std::uint32_t p = 4;
  auto wl = cholesky(5, p);
  obs::Hub hub(obs::HubOptions{.recorder = true});
  sim::DecentralizedParams dp;
  dp.workers = p;
  dp.obs = &hub;
  const auto rep = sim::simulate_decentralized(wl.flow, wl.mapping(p), dp);
  EXPECT_EQ(hub.clock_unit(), obs::ClockUnit::kTicks);
  ASSERT_EQ(hub.num_workers(), p);
  for (std::uint32_t w = 0; w < p; ++w) {
    const auto& ph = hub.phase_totals(w);
    const auto& b = rep.stats.workers[w].buckets;
    EXPECT_EQ(ph[kBodyIdx], b.task_ns);
    EXPECT_EQ(ph[kWaitIdx], b.idle_ns);
    EXPECT_EQ(ph[kMgmtIdx], b.runtime_ns);
    // The simulator's tick identity, straight from the phase totals.
    EXPECT_EQ(ph[kBodyIdx] + ph[kWaitIdx] + ph[kMgmtIdx], rep.makespan);
  }
  EXPECT_EQ(hub.counter_snapshot().total(obs::Counter::kTasksExecuted),
            wl.flow.num_tasks());
}

TEST(ObsSim, CentralizedMasterSlotMatches) {
  const std::uint32_t p = 3;
  auto wl = cholesky(5, p);
  obs::Hub hub(obs::HubOptions{.recorder = true});
  sim::CentralizedParams cp;
  cp.workers = p;
  cp.obs = &hub;
  const auto rep = sim::simulate_centralized(wl.flow, cp);
  ASSERT_EQ(hub.num_workers(), p + 1);
  for (std::uint32_t w = 0; w <= p; ++w) {
    const auto& ph = hub.phase_totals(w);
    const auto& b = rep.stats.workers[w].buckets;
    EXPECT_EQ(ph[kBodyIdx], b.task_ns) << "worker " << w;
    EXPECT_EQ(ph[kWaitIdx], b.idle_ns) << "worker " << w;
    EXPECT_EQ(ph[kMgmtIdx], b.runtime_ns) << "worker " << w;
  }
  EXPECT_EQ(hub.counter_snapshot().total(obs::Counter::kQueuePops),
            wl.flow.num_tasks());
}

// -------------------------------------------------------------- exporters --

TEST(ObsExport, PerfettoTraceIsStructurallySound) {
  auto wl = cholesky(4, 2);
  obs::Hub hub(obs::HubOptions{.recorder = true});
  rt::Runtime eng(rt::Config{.num_workers = 2,
                             .collect_stats = true,
                             .obs = &hub});
  eng.run(wl.flow, wl.mapping(2));
  std::ostringstream os;
  obs::write_perfetto_trace(hub, os);
  const std::string json = os.str();
  EXPECT_EQ(json.front(), '[');
  EXPECT_NE(json.find("thread_name"), std::string::npos);
  EXPECT_NE(json.find("\"body\""), std::string::npos);
  EXPECT_NE(json.find("executing"), std::string::npos);
  long depth = 0;
  for (char c : json) {
    if (c == '[' || c == '{') ++depth;
    if (c == ']' || c == '}') --depth;
    ASSERT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
}

TEST(ObsExport, ObsJsonRoundTripsDecompositionBitForBit) {
  const std::uint32_t p = 2;
  auto wl = cholesky(4, p);
  obs::Hub hub;
  rt::Runtime eng(rt::Config{.num_workers = p,
                             .collect_stats = true,
                             .obs = &hub});
  const auto stats = eng.run(wl.flow, wl.mapping(p));
  const auto e = metrics::decompose_synthetic(stats.cumulative());

  obs::ObsJsonMeta meta;
  meta.engine = "rio";
  meta.workload = wl.name;
  meta.e_p = e.e_p;
  meta.e_r = e.e_r;
  std::ostringstream os;
  obs::write_obs_json(hub, stats, meta, os);
  const std::string json = os.str();
  EXPECT_NE(json.find("\"rio.obs.v1\""), std::string::npos);

  // %.17g round-trips doubles exactly: parsing the emitted e_p/e_r must
  // reproduce the computed values bit for bit.
  auto parse_after = [&](const std::string& key) {
    const std::size_t pos = json.find(key);
    EXPECT_NE(pos, std::string::npos) << key;
    return std::strtod(json.c_str() + pos + key.size(), nullptr);
  };
  EXPECT_EQ(parse_after("\"e_p\": "), e.e_p);
  EXPECT_EQ(parse_after("\"e_r\": "), e.e_r);
  EXPECT_EQ(parse_after("\"product\": "), e.e_p * e.e_r);
}

}  // namespace
