// Tests for the engine:: backend seam (src/engine, docs/engines.md).
//
// The load-bearing properties:
//   * the registry holds exactly the built-in backends, with unique names,
//     and produces the structured unknown-name error every consumer prints;
//   * the ENGINE MATRIX: every executes_bodies backend leaves a fold-chain
//     workload's data byte-identical to the sequential oracle, and every
//     virtual_time backend produces a structurally sane virtual report —
//     iterated over Registry::all(), so a new backend joins the matrix by
//     registering and nothing else;
//   * a Launch asking for more than a backend's capabilities is rejected
//     with ONE UnsupportedLaunch naming every offending knob;
//   * per-backend Outcome extras (trace/sync, hybrid phases, pruned plan
//     compiles) are populated when the capability is exercised.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <set>
#include <string>

#include "engine/registry.hpp"
#include "obs/obs.hpp"
#include "rio/rio.hpp"
#include "stf/stf.hpp"

namespace {

using namespace rio;

/// Fold chain: every task reads one object and folds (task id, read value)
/// into another with a non-commutative update, so ANY ordering or rollback
/// mistake changes the final bytes.
stf::TaskFlow make_fold_chain(std::uint32_t num_tasks, std::uint32_t num_data) {
  stf::TaskFlow flow;
  std::vector<stf::DataHandle<std::uint64_t>> data;
  for (std::uint32_t d = 0; d < num_data; ++d)
    data.push_back(flow.create_data<std::uint64_t>("d" + std::to_string(d)));
  for (std::uint32_t t = 0; t < num_tasks; ++t) {
    const auto dst = data[t % num_data];
    const auto src = data[(t + 1) % num_data];  // always != dst (num_data > 1)
    flow.add("fold" + std::to_string(t),
             [src, dst, t](stf::TaskContext& ctx) {
               const std::uint64_t read = ctx.scalar(src);
               std::uint64_t& w = ctx.scalar(dst);
               w = w * 6364136223846793005ULL +
                   (read ^ (0x9e3779b97f4a7c15ULL * (t + 1)));
             },
             {stf::read(src), stf::readwrite(dst)}, /*cost=*/50 + t % 97);
  }
  return flow;
}

void expect_same_data(const stf::TaskFlow& got, const stf::TaskFlow& want,
                      const std::string& label) {
  ASSERT_EQ(got.num_data(), want.num_data());
  for (stf::DataId d = 0; d < got.num_data(); ++d)
    EXPECT_EQ(std::memcmp(got.registry().raw(d), want.registry().raw(d),
                          got.registry().bytes(d)),
              0)
        << label << " diverged from the oracle on object " << d;
}

// ------------------------------------------------------------- registry ----

TEST(EngineRegistry, HoldsTheBuiltinsWithUniqueNames) {
  auto& reg = engine::Registry::instance();
  const auto names = reg.names();
  for (const char* expected : {"seq", "rio", "rio-pruned", "coor", "hybrid",
                               "sim-rio", "sim-coor", "sim-hybrid"})
    EXPECT_NE(std::find(names.begin(), names.end(), expected), names.end())
        << expected << " missing from the registry";
  EXPECT_EQ(std::set<std::string>(names.begin(), names.end()).size(),
            names.size())
      << "duplicate backend names";
  for (const engine::Backend* b : reg.all()) {
    EXPECT_FALSE(std::string(b->name()).empty());
    EXPECT_FALSE(std::string(b->description()).empty());
    // Exactly one execution substrate per backend: real bodies or ticks.
    EXPECT_NE(b->caps().executes_bodies, b->caps().virtual_time)
        << b->name();
  }
}

TEST(EngineRegistry, FindAndStructuredUnknownNameError) {
  auto& reg = engine::Registry::instance();
  ASSERT_NE(reg.find("rio"), nullptr);
  EXPECT_EQ(reg.find("rio")->name(), "rio");
  EXPECT_EQ(reg.find("warp-drive"), nullptr);

  std::string error;
  EXPECT_EQ(reg.find_or_error("warp-drive", error), nullptr);
  EXPECT_NE(error.find("unknown engine 'warp-drive'"), std::string::npos)
      << error;
  EXPECT_NE(error.find("choices:"), std::string::npos) << error;
  for (const std::string& name : reg.names())
    EXPECT_NE(error.find(name), std::string::npos)
        << error << " should list " << name;
}

TEST(EngineRegistry, CapabilityListIsStableAndComplete) {
  const engine::Capabilities caps{.executes_bodies = true, .in_order = true};
  const auto list = engine::capability_list(caps);
  EXPECT_EQ(list.size(), 17u);  // one entry per Capabilities flag
  bool saw_exec = false, saw_virtual = false, saw_recovery = false;
  for (const auto& [name, value] : list) {
    if (name == "executes_bodies") saw_exec = value;
    if (name == "virtual_time") saw_virtual = !value;
    if (name == "supports_recovery") saw_recovery = !value;
  }
  EXPECT_TRUE(saw_exec);
  EXPECT_TRUE(saw_virtual);
  EXPECT_TRUE(saw_recovery);
}

// ---------------------------------------------------------- engine matrix --

TEST(EngineMatrix, EveryBackendRunsTheFoldChain) {
  const std::uint32_t kTasks = 180, kData = 9, kWorkers = 3;
  auto oracle = make_fold_chain(kTasks, kData);
  stf::SequentialExecutor{}.run(oracle);

  for (const engine::Backend* backend : engine::Registry::instance().all()) {
    const engine::Capabilities& caps = backend->caps();
    const std::string label(backend->name());
    SCOPED_TRACE(label);

    auto flow = make_fold_chain(kTasks, kData);
    engine::Launch launch;
    launch.workers = kWorkers;
    if (caps.needs_mapping) launch.mapping = rt::mapping::round_robin(kWorkers);
    const engine::Outcome outcome =
        backend->run(stf::FlowImage::compile(flow), launch);

    EXPECT_EQ(outcome.virtual_time, caps.virtual_time);
    if (caps.executes_bodies) {
      // The whole point of the matrix: byte-for-byte oracle agreement.
      expect_same_data(flow, oracle, label);
    } else {
      // Simulators never touch the data; they must report a sane virtual
      // schedule instead.
      EXPECT_GT(outcome.makespan, 0u);
      expect_same_data(flow, make_fold_chain(kTasks, kData), label);
    }
    ASSERT_FALSE(outcome.stats.workers.empty());
    EXPECT_EQ(outcome.stats.workers.size(),
              caps.has_master ? kWorkers + 1
              : label == "seq" ? 1u
                               : kWorkers);
    std::uint64_t executed = 0;
    for (const auto& w : outcome.stats.workers) executed += w.tasks_executed;
    EXPECT_EQ(executed, kTasks);
  }
}

// ------------------------------------------------------------ validation ---

TEST(EngineValidate, RejectsEveryUnsupportedKnobAtOnce) {
  auto& reg = engine::Registry::instance();
  const engine::Backend* seq = reg.find("seq");
  ASSERT_NE(seq, nullptr);

  obs::Hub hub;
  support::FaultPlan plan;
  plan.throw_rate = 0.5;
  support::FaultInjector injector(plan);
  engine::Launch launch;
  launch.collect_trace = true;
  launch.enable_guard = true;
  launch.fault = &injector;
  launch.watchdog_ns = 1000;
  launch.obs = &hub;

  const auto knobs = engine::unsupported_knobs(seq->caps(), launch);
  EXPECT_GE(knobs.size(), 5u);  // trace, guard, faults, watchdog, obs
  try {
    (void)seq->run(stf::FlowImage::compile(make_fold_chain(4, 2)), launch);
    FAIL() << "expected UnsupportedLaunch";
  } catch (const engine::UnsupportedLaunch& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("engine 'seq' cannot run this launch"),
              std::string::npos)
        << what;
    // ONE error names every offending knob, not just the first.
    for (const char* frag :
         {"collect_trace", "enable_guard", "fault", "watchdog", "obs"})
      EXPECT_NE(what.find(frag), std::string::npos) << what << "\n" << frag;
  }
}

TEST(EngineValidate, RingQueueRejectedWithoutUsesQueue) {
  // The queue knob is coor-only today; every backend that does not declare
  // uses_queue must reject a kRing launch with the structured error, and
  // every backend that does declare it must run the ring to the oracle.
  auto oracle = make_fold_chain(60, 6);
  stf::SequentialExecutor{}.run(oracle);
  for (const engine::Backend* backend : engine::Registry::instance().all()) {
    SCOPED_TRACE(std::string(backend->name()));
    engine::Launch launch;
    launch.workers = 2;
    launch.queue = coor::QueueKind::kRing;
    if (backend->caps().needs_mapping)
      launch.mapping = rt::mapping::round_robin(2);
    auto flow = make_fold_chain(60, 6);
    if (!backend->caps().uses_queue) {
      try {
        (void)backend->run(stf::FlowImage::compile(flow), launch);
        FAIL() << "expected UnsupportedLaunch for queue=ring";
      } catch (const engine::UnsupportedLaunch& e) {
        EXPECT_NE(std::string(e.what()).find("queue"), std::string::npos)
            << e.what();
      }
    } else {
      (void)backend->run(stf::FlowImage::compile(flow), launch);
      if (backend->caps().executes_bodies)
        expect_same_data(flow, oracle, std::string(backend->name()) + "+ring");
    }
  }
}

TEST(EngineValidate, NeedsMappingBackendsRejectEmptyMapping) {
  for (const engine::Backend* backend : engine::Registry::instance().all()) {
    if (!backend->caps().needs_mapping) continue;
    SCOPED_TRACE(std::string(backend->name()));
    engine::Launch launch;  // mapping left invalid
    EXPECT_THROW(
        (void)backend->run(stf::FlowImage::compile(make_fold_chain(4, 2)),
                           launch),
        engine::UnsupportedLaunch);
  }
}

TEST(EngineValidate, ZeroWorkersIsRejectedEverywhere) {
  for (const engine::Backend* backend : engine::Registry::instance().all()) {
    SCOPED_TRACE(std::string(backend->name()));
    engine::Launch launch;
    launch.workers = 0;
    if (backend->caps().needs_mapping)
      launch.mapping = rt::mapping::round_robin(1);
    EXPECT_THROW(
        (void)backend->run(stf::FlowImage::compile(make_fold_chain(4, 2)),
                           launch),
        engine::UnsupportedLaunch);
  }
}

// --------------------------------------------------------------- extras ----

TEST(EngineOutcome, RioCarriesTraceAndSyncWhenRequested) {
  auto flow = make_fold_chain(60, 6);
  const engine::Backend* rio_b = engine::Registry::instance().find("rio");
  ASSERT_NE(rio_b, nullptr);
  engine::Launch launch;
  launch.workers = 2;
  launch.mapping = rt::mapping::round_robin(2);
  launch.collect_trace = true;
  launch.collect_sync = true;
  const auto outcome = rio_b->run(stf::FlowImage::compile(flow), launch);
  EXPECT_EQ(outcome.trace.events().size(), 60u);
  EXPECT_FALSE(outcome.sync.events().empty());
  stf::DependencyGraph graph(flow);
  const auto v = outcome.trace.validate(flow, graph, /*worker_in_order=*/true);
  EXPECT_TRUE(v.ok()) << v.reason;
}

TEST(EngineOutcome, HybridDefaultPartialAlternatesPhases) {
  auto flow = make_fold_chain(64, 6);  // 4 segments of 16 under the default
  const engine::Backend* hy = engine::Registry::instance().find("hybrid");
  ASSERT_NE(hy, nullptr);
  engine::Launch launch;
  launch.workers = 2;
  const auto outcome = hy->run(stf::FlowImage::compile(flow), launch);
  EXPECT_EQ(outcome.phases, 4u);
  EXPECT_EQ(outcome.completed_phases, 4u);
}

TEST(EngineOutcome, PrunedReportsPlanCompiles) {
  auto flow = make_fold_chain(40, 4);
  const engine::Backend* pr = engine::Registry::instance().find("rio-pruned");
  ASSERT_NE(pr, nullptr);
  engine::Launch launch;
  launch.workers = 2;
  launch.mapping = rt::mapping::round_robin(2);
  const auto outcome = pr->run(stf::FlowImage::compile(flow), launch);
  EXPECT_EQ(outcome.plan_compiles, 1u);
}

}  // namespace
