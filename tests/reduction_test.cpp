// Tests for the commuting-reduction access mode (the SuperGlue-style
// versioning extension the paper cites in Section 3.4): dependency
// semantics, engine correctness, and the parallelism it unlocks.
#include <gtest/gtest.h>

#include <numeric>

#include "coor/coor.hpp"
#include "modelcheck/spec.hpp"
#include "rio/rio.hpp"
#include "sim/sim.hpp"
#include "stf/stf.hpp"

namespace {

using namespace rio;
using namespace rio::stf;

// ----------------------------------------------------------- semantics -----

TEST(AccessModeReduction, Classification) {
  EXPECT_TRUE(is_write(AccessMode::kReduction));
  EXPECT_TRUE(is_read(AccessMode::kReduction));
  EXPECT_TRUE(is_reduction(AccessMode::kReduction));
  EXPECT_FALSE(is_reduction(AccessMode::kReadWrite));
  EXPECT_STREQ(to_string(AccessMode::kReduction), "RED");
}

TaskFlow reduction_flow(const std::vector<AccessMode>& modes) {
  TaskFlow flow;
  auto d = flow.create_data<std::uint64_t>("acc");
  for (AccessMode m : modes) flow.add_virtual(1, {Access{d.id, m}});
  return flow;
}

TEST(ReductionDeps, RunMembersCarryNoMutualEdges) {
  auto flow = reduction_flow({AccessMode::kWrite, AccessMode::kReduction,
                              AccessMode::kReduction, AccessMode::kReduction});
  DependencyGraph g(flow);
  // Each reduction depends only on the initial write.
  for (TaskId t = 1; t <= 3; ++t)
    EXPECT_EQ(g.predecessors(t), (std::vector<TaskId>{0})) << t;
  EXPECT_EQ(g.num_edges(), 3u);
  EXPECT_EQ(g.max_ready_width(), 3u);  // all three commute
}

TEST(ReductionDeps, ReaderAfterRunDependsOnAllMembers) {
  auto flow = reduction_flow({AccessMode::kReduction, AccessMode::kReduction,
                              AccessMode::kRead});
  DependencyGraph g(flow);
  EXPECT_EQ(g.predecessors(2), (std::vector<TaskId>{0, 1}));
}

TEST(ReductionDeps, WriteAfterRunDependsOnAllMembers) {
  auto flow = reduction_flow({AccessMode::kReduction, AccessMode::kReduction,
                              AccessMode::kWrite});
  DependencyGraph g(flow);
  EXPECT_EQ(g.predecessors(2), (std::vector<TaskId>{0, 1}));
}

TEST(ReductionDeps, ReadSplitsTheRun) {
  // RED RED R RED: the last reduction must wait for the read (it writes),
  // and forms a NEW run.
  auto flow = reduction_flow({AccessMode::kReduction, AccessMode::kReduction,
                              AccessMode::kRead, AccessMode::kReduction});
  DependencyGraph g(flow);
  EXPECT_EQ(g.predecessors(2), (std::vector<TaskId>{0, 1}));
  // New run depends on the read AND the previous run's members.
  EXPECT_EQ(g.predecessors(3), (std::vector<TaskId>{0, 1, 2}));
}

TEST(ReductionDeps, WriteResetsEverything) {
  auto flow = reduction_flow({AccessMode::kReduction, AccessMode::kWrite,
                              AccessMode::kReduction});
  DependencyGraph g(flow);
  EXPECT_EQ(g.predecessors(1), (std::vector<TaskId>{0}));
  EXPECT_EQ(g.predecessors(2), (std::vector<TaskId>{1}));
}

TEST(ReductionDeps, CriticalPathCollapsesVsReadWriteChain) {
  // 64 accumulating tasks: as RW they form a chain of length 64; as RED
  // they form one parallel run of depth 1.
  auto chain = reduction_flow(std::vector<AccessMode>(64, AccessMode::kReadWrite));
  auto run = reduction_flow(std::vector<AccessMode>(64, AccessMode::kReduction));
  DependencyGraph gc(chain), gr(run);
  EXPECT_EQ(gc.critical_path_cost(chain), 64u);
  EXPECT_EQ(gr.critical_path_cost(run), 1u);
}

// ------------------------------------------------------------- engines -----

/// num_tasks tasks each adding a distinct value into one of `bins`
/// accumulators via a reduction access; +1 final reader per bin.
/// Integer addition commutes exactly, so every legal execution produces
/// the same bytes.
TaskFlow histogram_flow(std::uint32_t num_tasks, std::uint32_t bins) {
  TaskFlow flow;
  std::vector<DataHandle<std::uint64_t>> acc;
  for (std::uint32_t b = 0; b < bins; ++b)
    acc.push_back(flow.create_data<std::uint64_t>("bin" + std::to_string(b)));
  auto total = flow.create_data<std::uint64_t>("total");
  for (std::uint32_t t = 0; t < num_tasks; ++t) {
    const auto h = acc[t % bins];
    flow.add("add" + std::to_string(t),
             [h, t](TaskContext& ctx) { ctx.scalar(h) += (t + 1) * 7; },
             {reduce(h)});
  }
  AccessList finale;
  for (std::uint32_t b = 0; b < bins; ++b) finale.push_back(read(acc[b]));
  finale.push_back(write(total));
  flow.add("sum",
           [acc, total](TaskContext& ctx) {
             std::uint64_t s = 0;
             for (auto h : acc) s += ctx.scalar(h, AccessMode::kRead);
             ctx.scalar(total) = s;
           },
           std::move(finale));
  return flow;
}

std::uint64_t expected_total(std::uint32_t num_tasks) {
  std::uint64_t s = 0;
  for (std::uint32_t t = 0; t < num_tasks; ++t) s += (t + 1) * 7;
  return s;
}

TEST(ReductionEngines, SequentialIsTheOracle) {
  auto flow = histogram_flow(100, 4);
  SequentialExecutor{}.run(flow);
  EXPECT_EQ(*flow.registry().typed<std::uint64_t>(
                DataHandle<std::uint64_t>{4}),
            expected_total(100));
}

class ReductionCoor : public ::testing::TestWithParam<coor::SchedulerKind> {};

TEST_P(ReductionCoor, HistogramMatchesAndTraceValidates) {
  auto flow = histogram_flow(200, 4);
  coor::Runtime rt(coor::Config{.num_workers = 4, .scheduler = GetParam(),
                                .collect_trace = true, .enable_guard = true});
  rt.run(flow);
  EXPECT_EQ(*flow.registry().typed<std::uint64_t>(
                DataHandle<std::uint64_t>{4}),
            expected_total(200));
  DependencyGraph g(flow);
  const auto v = rt.trace().validate(flow, g, false);
  EXPECT_TRUE(v.ok()) << v.reason;
}

INSTANTIATE_TEST_SUITE_P(Schedulers, ReductionCoor,
                         ::testing::Values(coor::SchedulerKind::kFifo,
                                           coor::SchedulerKind::kLifo,
                                           coor::SchedulerKind::kLocality),
                         [](const auto& i) {
                           return std::string(coor::to_string(i.param));
                         });

TEST(ReductionEngines, RioExecutesReductionsInOrder) {
  auto flow = histogram_flow(120, 3);
  rt::Runtime rt(rt::Config{.num_workers = 3, .collect_trace = true,
                            .enable_guard = true});
  rt.run(flow, rt::mapping::round_robin(3));
  EXPECT_EQ(*flow.registry().typed<std::uint64_t>(
                DataHandle<std::uint64_t>{3}),
            expected_total(120));
  DependencyGraph g(flow);
  const auto v = rt.trace().validate(flow, g, true);
  EXPECT_TRUE(v.ok()) << v.reason;
}

TEST(ReductionEngines, PrunedRioMatches) {
  auto flow = histogram_flow(90, 2);
  const auto mapping = rt::mapping::round_robin(2);
  rt::PrunedPlan plan(flow, mapping, 2);
  rt::PrunedRuntime prt(rt::Config{.num_workers = 2});
  prt.run(flow, plan);
  EXPECT_EQ(*flow.registry().typed<std::uint64_t>(
                DataHandle<std::uint64_t>{2}),
            expected_total(90));
}

// ------------------------------------------------------------ simulator ----

TEST(ReductionSim, CommutingUnlocksParallelismInCentralizedModel) {
  // One shared accumulator, 4096 tasks: as a RW chain the centralized
  // model serializes them; as reductions they spread across workers.
  auto build = [](AccessMode mode) {
    TaskFlow flow;
    auto d = flow.create_data<std::uint64_t>("acc");
    for (int i = 0; i < 4096; ++i)
      flow.add_virtual(10'000, {Access{d.id, mode}});
    return flow;
  };
  sim::CentralizedParams cp;
  auto chain = build(AccessMode::kReadWrite);
  auto red = build(AccessMode::kReduction);
  const auto chain_rep = sim::simulate_centralized(chain, cp);
  const auto red_rep = sim::simulate_centralized(red, cp);
  EXPECT_LT(red_rep.makespan * 4, chain_rep.makespan)
      << "reductions should be at least 4x faster than the serial chain";
}

// --------------------------------------------------------------- limits ----

TEST(ReductionLimitsDeath, ModelCheckerRejectsReductions) {
  // The Appendix-B specs predate the reduction extension; the checker
  // refuses rather than silently mis-modelling commutativity.
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  auto flow = reduction_flow({AccessMode::kReduction});
  EXPECT_DEATH((void)mc::check_stf(flow, 2),
               "does not support reduction accesses");
}

}  // namespace
