// Tests for src/analysis: the static flow lint and the happens-before race
// checker. The fixtures must each produce their finding; every shipped
// workload generator must lint clean (no warnings/errors); and the injected
// race must be caught by the HB checker while the interval validator —
// which only sees disjoint wall-clock windows — passes.
#include <gtest/gtest.h>

#include <sstream>
#include <utility>

#include "analysis/analysis.hpp"
#include "coor/coor.hpp"
#include "rio/rio.hpp"
#include "stf/dependency.hpp"
#include "stf/trace.hpp"
#include "workloads/workloads.hpp"

namespace rio {
namespace {

analysis::Report lint(const stf::TaskFlow& flow,
                      const analysis::LintOptions& opts = {}) {
  stf::DependencyGraph graph(flow);
  return analysis::lint_flow(flow, graph, opts);
}

// ---- seeded-bad fixtures --------------------------------------------------

TEST(FlowLint, UninitReadFixtureFires) {
  const stf::TaskFlow flow = analysis::fixtures::bad_uninit_read();
  const analysis::Report r = lint(flow);
  EXPECT_TRUE(r.has("RF001"));
  EXPECT_GE(r.worst_severity(), analysis::Severity::kWarning);
  // Reported once per object, at the first offending task.
  std::size_t n = 0;
  for (const auto& f : r.findings())
    if (f.code == "RF001") {
      ++n;
      EXPECT_EQ(f.task, 0u);
    }
  EXPECT_EQ(n, 1u);
}

TEST(FlowLint, ZeroInitReadIsNotFlagged) {
  stf::TaskFlow flow;
  auto d = flow.create_data<double>("zeroed", 8);  // defined contents
  flow.add_virtual(1, {stf::read(d)}, "reader");
  EXPECT_FALSE(lint(flow).has("RF001"));
}

TEST(FlowLint, DeadWriteFixtureFires) {
  const stf::TaskFlow flow = analysis::fixtures::bad_dead_write();
  const analysis::Report r = lint(flow);
  ASSERT_TRUE(r.has("RF002"));
  for (const auto& f : r.findings())
    if (f.code == "RF002") EXPECT_EQ(f.task, 0u);  // the wasted write
}

TEST(FlowLint, ReadWriteKeepsPriorWriteLive) {
  stf::TaskFlow flow;
  auto x = flow.create_data<double>("x", 4);
  flow.add_virtual(1, {stf::write(x)}, "init");
  flow.add_virtual(1, {stf::readwrite(x)}, "update");  // consumes init
  flow.add_virtual(1, {stf::read(x)}, "reader");
  EXPECT_FALSE(lint(flow).has("RF002"));
}

TEST(FlowLint, UnusedHandleFixtureFires) {
  const analysis::Report r = lint(analysis::fixtures::bad_unused_handle());
  ASSERT_TRUE(r.has("RF003"));
  for (const auto& f : r.findings())
    if (f.code == "RF003") EXPECT_EQ(f.data, 1u);  // 'orphan'
}

TEST(FlowLint, RedundantEdgeFixtureFires) {
  const analysis::Report r = lint(analysis::fixtures::bad_redundant_edge());
  ASSERT_TRUE(r.has("RF004"));
  for (const auto& f : r.findings())
    if (f.code == "RF004") {
      EXPECT_EQ(f.severity, analysis::Severity::kInfo);
      EXPECT_EQ(f.count, 1u);
    }
}

TEST(FlowLint, ChainHasNoRedundantEdges) {
  stf::TaskFlow flow;
  auto x = flow.create_data<double>("x", 4);
  for (int i = 0; i < 5; ++i)
    flow.add_virtual(1, {stf::readwrite(x)}, "step");
  EXPECT_FALSE(lint(flow).has("RF004"));
}

TEST(FlowLint, ZeroAccessTasksAggregateToOneInfo) {
  stf::TaskFlow flow;
  for (int i = 0; i < 7; ++i) flow.add_virtual(1, {}, "free");
  const analysis::Report r = lint(flow);
  ASSERT_TRUE(r.has("RF005"));
  for (const auto& f : r.findings())
    if (f.code == "RF005") {
      EXPECT_EQ(f.count, 7u);
      EXPECT_EQ(f.severity, analysis::Severity::kInfo);
    }
  EXPECT_LT(r.worst_severity(), analysis::Severity::kWarning);
}

TEST(FlowLint, WriteOnlyObjectIsInfoNotDeadWrite) {
  stf::TaskFlow flow;
  auto sink = flow.create_data<double>("sink", 4);
  flow.add_virtual(1, {stf::write(sink)}, "w0");
  flow.add_virtual(1, {stf::write(sink)}, "w1");  // nothing ever reads sink
  const analysis::Report r = lint(flow);
  EXPECT_FALSE(r.has("RF002"));
  EXPECT_TRUE(r.has("RF006"));
  EXPECT_LT(r.worst_severity(), analysis::Severity::kWarning);
}

// ---- mapping + counter diagnostics ---------------------------------------

TEST(FlowLint, MappingOutOfRangeIsError) {
  stf::TaskFlow flow;
  auto x = flow.create_data<double>("x", 4);
  flow.add_virtual(1, {stf::readwrite(x)}, "t");
  const rt::Mapping bad = rt::mapping::custom(
      "bad", [](stf::TaskId) { return stf::WorkerId{9}; });
  analysis::LintOptions opts;
  opts.mapping = &bad;
  opts.num_workers = 2;
  const analysis::Report r = lint(flow, opts);
  EXPECT_TRUE(r.has("RM101"));
  EXPECT_EQ(r.worst_severity(), analysis::Severity::kError);
}

TEST(FlowLint, ImbalancedMappingWarns) {
  stf::TaskFlow flow;
  for (int i = 0; i < 64; ++i) flow.add_virtual(100, {}, "t");
  const rt::Mapping all_on_0 = rt::mapping::single(0);
  analysis::LintOptions opts;
  opts.mapping = &all_on_0;
  opts.num_workers = 4;  // everything lands on worker 0 => max/mean = 4
  EXPECT_TRUE(lint(flow, opts).has("RM102"));
}

TEST(FlowLint, BalancedMappingDoesNotWarn) {
  stf::TaskFlow flow;
  for (int i = 0; i < 64; ++i) flow.add_virtual(100, {}, "t");
  const rt::Mapping rr = rt::mapping::round_robin(4);
  analysis::LintOptions opts;
  opts.mapping = &rr;
  opts.num_workers = 4;
  EXPECT_FALSE(lint(flow, opts).has("RM102"));
}

TEST(FlowLint, NarrowCounterOverflowFires) {
  stf::TaskFlow flow;
  auto x = flow.create_data<double>("x", 4);
  flow.add_virtual(1, {stf::write(x)}, "init");
  for (int i = 0; i < 20; ++i)
    flow.add_virtual(1, {stf::read(x)}, "reader");  // 20 reads, no write
  analysis::LintOptions opts;
  opts.counter_bits = 4;  // 2^4 = 16 < 20 readers between writes
  const analysis::Report r = lint(flow, opts);
  EXPECT_TRUE(r.has("RP201"));  // 21 tasks >= 2^4 too
  EXPECT_TRUE(r.has("RP202"));
  EXPECT_FALSE(lint(flow).has("RP202"));  // 64-bit counters never overflow
}

// ---- phase-boundary lint (RH4xx) -----------------------------------------

analysis::Report lint_phases(const analysis::fixtures::PhaseFixture& fx,
                             std::uint32_t workers) {
  analysis::LintOptions opts;
  opts.phases = &fx.phases;
  opts.num_workers = workers;
  return lint(fx.flow, opts);
}

TEST(FlowLint, PhaseMappingOutOfRangeIsError) {
  const auto fx = analysis::fixtures::bad_phase_mapping();
  const analysis::Report r = lint_phases(fx, 2);
  EXPECT_TRUE(r.has("RH401"));
  EXPECT_EQ(r.worst_severity(), analysis::Severity::kError);
  // With enough workers the static mapping is in range again.
  EXPECT_FALSE(lint_phases(fx, 8).has("RH401"));
}

TEST(FlowLint, EmptyPhaseWarns) {
  const auto fx = analysis::fixtures::bad_empty_phase();
  const analysis::Report r = lint_phases(fx, 2);
  EXPECT_TRUE(r.has("RH402"));
  EXPECT_FALSE(r.has("RH401"));
  EXPECT_EQ(r.worst_severity(), analysis::Severity::kWarning);
}

TEST(FlowLint, CrossPhaseDependencyIsInfoOnly) {
  const auto fx = analysis::fixtures::cross_phase_dep();
  const analysis::Report r = lint_phases(fx, 2);
  EXPECT_TRUE(r.has("RH403"));
  EXPECT_FALSE(r.has("RH401"));
  EXPECT_FALSE(r.has("RH402"));
  // RH403 alone must not raise severity past info.
  bool phase_worse_than_info = false;
  for (const auto& f : r.findings())
    if (f.code.rfind("RH4", 0) == 0 && f.severity > analysis::Severity::kInfo)
      phase_worse_than_info = true;
  EXPECT_FALSE(phase_worse_than_info);
}

TEST(FlowLint, SinglePhaseCoveringFlowIsCleanOfPhaseFindings) {
  const auto base = analysis::fixtures::cross_phase_dep();
  analysis::LintPhase all;
  all.first = 0;
  all.count = base.flow.num_tasks();
  std::vector<analysis::LintPhase> phases{all};
  analysis::LintOptions opts;
  opts.phases = &phases;
  opts.num_workers = 2;
  const analysis::Report r = lint(base.flow, opts);
  EXPECT_FALSE(r.has("RH401"));
  EXPECT_FALSE(r.has("RH402"));
  EXPECT_FALSE(r.has("RH403"));
}

// ---- shipped workloads must lint clean (no warnings or errors) -----------

void expect_clean(const workloads::Workload& wl, std::uint32_t workers) {
  stf::DependencyGraph graph(wl.flow);
  const rt::Mapping mapping = wl.mapping(workers);
  analysis::LintOptions opts;
  opts.mapping = &mapping;
  opts.num_workers = workers;
  const analysis::Report r = analysis::lint_flow(wl.flow, graph, opts);
  if (r.worst_severity() >= analysis::Severity::kWarning) {
    std::ostringstream os;
    r.print(os);
    ADD_FAILURE() << "workload '" << wl.name
                  << "' is not lint-clean:\n" << os.str();
  }
}

TEST(FlowLint, ShippedWorkloadsAreClean) {
  {
    workloads::IndependentSpec s;
    s.num_tasks = 64;
    s.num_workers = 2;
    expect_clean(workloads::make_independent(s), 2);
  }
  {
    workloads::RandomDepsSpec s;
    s.num_tasks = 96;
    s.num_data = 24;  // small enough that every object is surely drawn
    s.num_workers = 2;
    expect_clean(workloads::make_random_deps(s), 2);
  }
  {
    workloads::GemmDagSpec s;
    s.tiles = 4;
    s.num_workers = 2;
    expect_clean(workloads::make_gemm_dag(s), 2);
  }
  {
    workloads::LuDagSpec s;
    s.row_tiles = 4;
    s.col_tiles = 4;
    s.num_workers = 2;
    expect_clean(workloads::make_lu_dag(s), 2);
  }
  {
    workloads::CholeskyDagSpec s;
    s.tiles = 4;
    s.num_workers = 2;
    expect_clean(workloads::make_cholesky_dag(s), 2);
  }
  {
    workloads::StencilSpec s;
    s.chunks = 6;
    s.steps = 4;
    s.num_workers = 2;
    expect_clean(workloads::make_stencil_dag(s), 2);
  }
}

TEST(FlowLint, TaskBenchPatternsAreClean) {
  for (auto p : workloads::kAllTaskBenchPatterns) {
    workloads::TaskBenchSpec s;
    s.pattern = p;
    s.width = 6;
    s.steps = 4;
    s.num_workers = 2;
    expect_clean(workloads::make_taskbench(s), 2);
  }
}

// ---- happens-before checker ----------------------------------------------

TEST(HbChecker, EmptySyncTraceWarns) {
  stf::TaskFlow flow;
  auto x = flow.create_data<double>("x", 4);
  flow.add_virtual(1, {stf::readwrite(x)}, "t");
  const analysis::Report r =
      analysis::check_happens_before(flow, stf::SyncTrace{});
  EXPECT_TRUE(r.has("RC302"));
}

TEST(HbChecker, InjectedRaceCaughtWhereIntervalCheckPasses) {
  const auto fx = analysis::fixtures::injected_race();
  stf::DependencyGraph graph(fx.flow);

  // The wall-clock intervals are disjoint and in dependency order: the
  // interval-overlap validator is fooled.
  const stf::ValidationResult vr = fx.trace.validate(fx.flow, graph, false);
  EXPECT_TRUE(vr.ok()) << vr.reason;
  EXPECT_TRUE(vr.fully_checked());

  // The happens-before checker is not.
  const analysis::Report r =
      analysis::check_happens_before(fx.flow, fx.sync);
  ASSERT_TRUE(r.has("RC301"));
  EXPECT_EQ(r.worst_severity(), analysis::Severity::kError);
}

TEST(HbChecker, OrderedWritesAreNotARace) {
  stf::TaskFlow flow;
  auto d = flow.create_data<double>("d", 4);
  flow.add_virtual(1, {stf::write(d)}, "w0");
  flow.add_virtual(1, {stf::write(d)}, "w1");
  // Proper order: w0 releases before w1 acquires.
  stf::SyncTrace sync;
  sync.record({0, 0, d.id, stf::AccessMode::kWrite,
               stf::SyncKind::kAcquire, 0});
  sync.record({0, 0, d.id, stf::AccessMode::kWrite,
               stf::SyncKind::kRelease, 1});
  sync.record({1, 1, d.id, stf::AccessMode::kWrite,
               stf::SyncKind::kAcquire, 2});
  sync.record({1, 1, d.id, stf::AccessMode::kWrite,
               stf::SyncKind::kRelease, 3});
  EXPECT_FALSE(analysis::check_happens_before(flow, sync).has("RC301"));
}

TEST(HbChecker, UnorderedReadWritePairIsARace) {
  stf::TaskFlow flow;
  auto d = flow.create_data<double>("d", 4);
  flow.add_virtual(1, {stf::write(d)}, "writer");
  flow.add_virtual(1, {stf::read(d)}, "reader");
  stf::SyncTrace sync;  // both acquire before either releases
  sync.record({0, 0, d.id, stf::AccessMode::kWrite,
               stf::SyncKind::kAcquire, 0});
  sync.record({1, 1, d.id, stf::AccessMode::kRead,
               stf::SyncKind::kAcquire, 1});
  sync.record({0, 0, d.id, stf::AccessMode::kWrite,
               stf::SyncKind::kRelease, 2});
  sync.record({1, 1, d.id, stf::AccessMode::kRead,
               stf::SyncKind::kRelease, 3});
  EXPECT_TRUE(analysis::check_happens_before(flow, sync).has("RC301"));
}

TEST(HbChecker, ConcurrentReadersAreNotARace) {
  stf::TaskFlow flow;
  auto d = flow.create_data<double>("d", 4);
  flow.add_virtual(1, {stf::write(d)}, "init");
  flow.add_virtual(1, {stf::read(d)}, "r0");
  flow.add_virtual(1, {stf::read(d)}, "r1");
  stf::SyncTrace sync;
  sync.record({0, 0, d.id, stf::AccessMode::kWrite,
               stf::SyncKind::kAcquire, 0});
  sync.record({0, 0, d.id, stf::AccessMode::kWrite,
               stf::SyncKind::kRelease, 1});
  // Both readers overlap each other, but both saw init's release.
  sync.record({1, 0, d.id, stf::AccessMode::kRead,
               stf::SyncKind::kAcquire, 2});
  sync.record({2, 1, d.id, stf::AccessMode::kRead,
               stf::SyncKind::kAcquire, 3});
  sync.record({1, 0, d.id, stf::AccessMode::kRead,
               stf::SyncKind::kRelease, 4});
  sync.record({2, 1, d.id, stf::AccessMode::kRead,
               stf::SyncKind::kRelease, 5});
  EXPECT_FALSE(analysis::check_happens_before(flow, sync).has("RC301"));
}

TEST(HbChecker, MissingTasksAreReported) {
  stf::TaskFlow flow;
  auto d = flow.create_data<double>("d", 4);
  flow.add_virtual(1, {stf::write(d)}, "recorded");
  flow.add_virtual(1, {stf::read(d)}, "missing");
  stf::SyncTrace sync;
  sync.record({0, 0, d.id, stf::AccessMode::kWrite,
               stf::SyncKind::kAcquire, 0});
  sync.record({0, 0, d.id, stf::AccessMode::kWrite,
               stf::SyncKind::kRelease, 1});
  EXPECT_TRUE(analysis::check_happens_before(flow, sync).has("RC304"));
}

// ---- end-to-end: real engines record sound sync traces --------------------

stf::TaskFlow make_chained_flow() {
  workloads::StencilSpec s;
  s.chunks = 4;
  s.steps = 6;
  s.task_cost = 64;
  s.body = workloads::BodyKind::kCounter;
  return std::move(workloads::make_stencil_dag(s).flow);
}

TEST(HbChecker, RioRecordedRunHasNoRaces) {
  stf::TaskFlow flow = make_chained_flow();
  rt::Runtime engine(rt::Config{.num_workers = 2,
                                .collect_trace = true,
                                .collect_sync = true});
  engine.run(flow, rt::mapping::round_robin(2));
  ASSERT_FALSE(engine.sync_trace().empty());
  const analysis::Report r =
      analysis::check_happens_before(flow, engine.sync_trace());
  std::ostringstream os;
  r.print(os);
  EXPECT_FALSE(r.has("RC301")) << os.str();
  EXPECT_FALSE(r.has("RC304")) << os.str();
}

TEST(HbChecker, CoorRecordedRunHasNoRaces) {
  stf::TaskFlow flow = make_chained_flow();
  coor::Runtime engine(coor::Config{.num_workers = 2,
                                    .collect_trace = true,
                                    .collect_sync = true});
  engine.run(flow);
  ASSERT_FALSE(engine.sync_trace().empty());
  const analysis::Report r =
      analysis::check_happens_before(flow, engine.sync_trace());
  std::ostringstream os;
  r.print(os);
  EXPECT_FALSE(r.has("RC301")) << os.str();
  EXPECT_FALSE(r.has("RC304")) << os.str();
}

TEST(HbChecker, SyncRecordingIsOffByDefault) {
  stf::TaskFlow flow = make_chained_flow();
  rt::Runtime engine(rt::Config{.num_workers = 2});
  engine.run(flow, rt::mapping::round_robin(2));
  EXPECT_TRUE(engine.sync_trace().empty());
}

}  // namespace
}  // namespace rio
