// FlowImage compilation and fast-replay equivalence.
//
// The compiled SoA image (stf/flow_image.hpp) must be a faithful mirror of
// the source flow — same accesses, costs, names, ids — and replaying it
// through any engine must be indistinguishable from streaming the AoS
// flow: identical traces (up to scheduling freedom), identical final data,
// clean happens-before verdicts, and a pruned-plan cache that compiles
// exactly once per (image, mapping, workers) key.
#include <algorithm>
#include <cstdint>
#include <cstring>
#include <gtest/gtest.h>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "analysis/hb_checker.hpp"
#include "rio/pruning.hpp"
#include "rio/runtime.hpp"
#include "coor/runtime.hpp"
#include "sim/simulate.hpp"
#include "stf/sequential.hpp"
#include "stf/stf.hpp"
#include "workloads/synthetic.hpp"

using namespace rio;

namespace {

stf::TaskFlow make_named_flow() {
  stf::TaskFlow flow;
  auto a = flow.create_data<int>("a");
  auto b = flow.create_data<int>("b");
  flow.add("init", {}, {stf::write(a)}, 10);
  flow.add("read-both", {}, {stf::read(a), stf::write(b)}, 20);
  flow.add_virtual(30, {});  // data-less, unnamed
  flow.add("fini", {}, {stf::readwrite(b)}, 40);
  return flow;
}

workloads::Workload make_equivalence_workload() {
  workloads::RandomDepsSpec spec;
  spec.num_tasks = 300;
  spec.num_data = 24;
  spec.task_cost = 50;
  spec.body = workloads::BodyKind::kCounter;
  spec.seed = 7;
  return workloads::make_random_deps(spec);
}

/// (task, worker) assignment of a trace, sorted by task id; the
/// scheduling-independent part every replay must agree on.
std::vector<std::pair<stf::TaskId, stf::WorkerId>> assignment(
    const stf::Trace& trace) {
  std::vector<std::pair<stf::TaskId, stf::WorkerId>> out;
  out.reserve(trace.size());
  for (const auto& ev : trace.events()) out.emplace_back(ev.task, ev.worker);
  std::sort(out.begin(), out.end());
  return out;
}

void expect_clean_sync(const stf::TaskFlow& flow, const stf::SyncTrace& sync,
                       const char* what) {
  ASSERT_FALSE(sync.empty()) << what;
  const analysis::Report r = analysis::check_happens_before(flow, sync);
  EXPECT_FALSE(r.has("RC301")) << what;
  EXPECT_FALSE(r.has("RC304")) << what;
}

void expect_same_registry(const stf::DataRegistry& got,
                          const stf::DataRegistry& want, const char* what) {
  ASSERT_EQ(got.size(), want.size());
  for (stf::DataId d = 0; d < want.size(); ++d)
    EXPECT_EQ(std::memcmp(got.raw(d), want.raw(d), want.bytes(d)), 0)
        << what << ", object " << d;
}

}  // namespace

// ---------------------------------------------------------------- layout ---

TEST(FlowImageLayout, MirrorsTheSourceFlow) {
  const stf::TaskFlow flow = make_named_flow();
  const stf::FlowImage img = stf::FlowImage::compile(flow);

  EXPECT_EQ(img.size(), flow.num_tasks());
  EXPECT_EQ(img.num_data(), flow.num_data());
  EXPECT_EQ(img.first_id(), 0u);
  EXPECT_EQ(img.num_accesses_total(), 4u);
  EXPECT_EQ(img.total_cost(), 100u);
  EXPECT_EQ(&img.registry(), &flow.registry());

  for (std::size_t i = 0; i < img.size(); ++i) {
    const stf::Task& src = flow.task(i);
    EXPECT_EQ(img.task_id(i), src.id);
    EXPECT_EQ(img.cost(i), src.cost);
    EXPECT_EQ(img.priority(i), src.priority);
    EXPECT_EQ(img.name(i), std::string_view(src.name));
    EXPECT_EQ(&img.task(i), &src);
    ASSERT_EQ(img.num_accesses(i), src.accesses.size());
    const stf::Access* acc = img.acc_begin(i);
    for (std::size_t k = 0; k < src.accesses.size(); ++k) {
      EXPECT_EQ(acc[k].data, src.accesses[k].data);
      EXPECT_EQ(acc[k].mode, src.accesses[k].mode);
    }
  }

  // Accesses are flat and contiguous: spans tile [0, total).
  const auto* spans = img.spans();
  std::uint32_t cursor = 0;
  for (std::size_t i = 0; i < img.size(); ++i) {
    EXPECT_EQ(spans[i].begin, cursor);
    cursor = spans[i].end;
  }
  EXPECT_EQ(cursor, img.num_accesses_total());
}

TEST(FlowImageLayout, SerialsAreProcessUnique) {
  const stf::TaskFlow flow = make_named_flow();
  const stf::FlowImage a = stf::FlowImage::compile(flow);
  const stf::FlowImage b = stf::FlowImage::compile(flow);
  EXPECT_NE(a.serial(), 0u);
  EXPECT_NE(a.serial(), b.serial());
}

TEST(FlowImageLayout, SubrangeCompilationKeepsGlobalIds) {
  const stf::TaskFlow flow = make_named_flow();
  const stf::FlowImage img =
      stf::FlowImage::compile(stf::FlowRange(flow, 1, 2));
  EXPECT_EQ(img.size(), 2u);
  EXPECT_EQ(img.first_id(), 1u);
  EXPECT_EQ(img.task_id(0), 1u);
  EXPECT_EQ(img.name(0), "read-both");
  EXPECT_EQ(img.num_accesses(0), 2u);
  EXPECT_EQ(img.num_accesses(1), 0u);
}

TEST(FlowImageLayout, ImageRangeSlicesShareAbsoluteAccessIndices) {
  const stf::TaskFlow flow = make_named_flow();
  const stf::FlowImage img = stf::FlowImage::compile(flow);
  const stf::ImageRange slice(img, 1, 2);
  EXPECT_EQ(slice.size(), 2u);
  EXPECT_EQ(slice.first_id(), 1u);
  EXPECT_EQ(slice.task_id(1), 2u);
  // Slice spans index into the IMAGE-absolute access array.
  const auto s0 = slice.spans()[0];
  EXPECT_EQ(slice.accesses_base() + s0.begin, slice.acc_begin(0));
  EXPECT_EQ(slice.num_accesses(0), 2u);
  EXPECT_EQ(&slice.task(0), &flow.task(1));
}

// ---------------------------------------------------------------- replay ---

TEST(FlowImageReplay, RioStreamingImageAndPrunedAgree) {
  constexpr std::uint32_t kWorkers = 3;
  auto wl_seq = make_equivalence_workload();
  stf::SequentialExecutor{}.run(wl_seq.flow);

  auto wl_stream = make_equivalence_workload();
  auto wl_image = make_equivalence_workload();
  auto wl_pruned = make_equivalence_workload();
  const rt::Config cfg{.num_workers = kWorkers,
                       .collect_trace = true,
                       .collect_sync = true};
  const stf::DependencyGraph graph(stf::FlowRange(wl_stream.flow));

  rt::Runtime streaming(cfg);
  streaming.run(wl_stream.flow, wl_stream.mapping(kWorkers));
  ASSERT_TRUE(
      streaming.trace().validate(wl_stream.flow, graph, true).ok());
  expect_clean_sync(wl_stream.flow, streaming.sync_trace(), "streaming");
  expect_same_registry(wl_stream.flow.registry(), wl_seq.flow.registry(),
                       "streaming");

  rt::Runtime image_rt(cfg);
  const stf::FlowImage image = stf::FlowImage::compile(wl_image.flow);
  image_rt.run(image, wl_image.mapping(kWorkers));
  ASSERT_TRUE(image_rt.trace().validate(wl_image.flow, graph, true).ok());
  expect_clean_sync(wl_image.flow, image_rt.sync_trace(), "image");
  expect_same_registry(wl_image.flow.registry(), wl_seq.flow.registry(),
                       "image");

  rt::PrunedRuntime pruned(cfg);
  const stf::FlowImage pruned_image = stf::FlowImage::compile(wl_pruned.flow);
  pruned.run(pruned_image, wl_pruned.mapping(kWorkers));
  ASSERT_TRUE(pruned.trace().validate(wl_pruned.flow, graph, true).ok());
  expect_clean_sync(wl_pruned.flow, pruned.sync_trace(), "pruned");
  expect_same_registry(wl_pruned.flow.registry(), wl_seq.flow.registry(),
                       "pruned");

  // Identical (task -> worker) assignment: the mapping is the schedule.
  EXPECT_EQ(assignment(streaming.trace()), assignment(image_rt.trace()));
  EXPECT_EQ(assignment(streaming.trace()), assignment(pruned.trace()));
}

TEST(FlowImageReplay, CoorImageMatchesStreaming) {
  auto wl_seq = make_equivalence_workload();
  stf::SequentialExecutor{}.run(wl_seq.flow);

  auto wl_stream = make_equivalence_workload();
  auto wl_image = make_equivalence_workload();
  const coor::Config cfg{.num_workers = 2,
                         .collect_trace = true,
                         .collect_sync = true};
  const stf::DependencyGraph graph(stf::FlowRange(wl_stream.flow));

  coor::Runtime streaming(cfg);
  streaming.run(wl_stream.flow);
  ASSERT_TRUE(
      streaming.trace().validate(wl_stream.flow, graph, false).ok());
  expect_clean_sync(wl_stream.flow, streaming.sync_trace(), "coor streaming");
  expect_same_registry(wl_stream.flow.registry(), wl_seq.flow.registry(),
                       "coor streaming");

  coor::Runtime image_rt(cfg);
  const stf::FlowImage image = stf::FlowImage::compile(wl_image.flow);
  image_rt.run(image);
  ASSERT_TRUE(image_rt.trace().validate(wl_image.flow, graph, false).ok());
  expect_clean_sync(wl_image.flow, image_rt.sync_trace(), "coor image");
  expect_same_registry(wl_image.flow.registry(), wl_seq.flow.registry(),
                       "coor image");

  // OoO scheduling may reorder, but both executions cover every task
  // exactly once.
  EXPECT_EQ(streaming.trace().size(), image_rt.trace().size());
}

// ----------------------------------------------------------------- cache ---

TEST(PruningCache, SecondRunCompilesNothing) {
  auto wl = make_equivalence_workload();
  const stf::FlowImage image = stf::FlowImage::compile(wl.flow);
  const rt::Mapping mapping = wl.mapping(2);

  rt::PrunedRuntime prt(rt::Config{.num_workers = 2});
  EXPECT_EQ(prt.plan_compiles(), 0u);
  prt.run(image, mapping);
  EXPECT_EQ(prt.plan_compiles(), 1u);
  prt.run(image, mapping);
  prt.run(image, mapping);
  EXPECT_EQ(prt.plan_compiles(), 1u);  // cache hit: zero recomputation

  // A different mapping is a different key...
  prt.run(image, rt::mapping::round_robin(2));
  EXPECT_EQ(prt.plan_compiles(), 2u);
  // ...and a recompiled image of the same flow is too (new serial).
  const stf::FlowImage again = stf::FlowImage::compile(wl.flow);
  prt.run(again, mapping);
  EXPECT_EQ(prt.plan_compiles(), 3u);
}

TEST(PruningCache, CopiedMappingSharesIdentity) {
  const rt::Mapping a = rt::mapping::round_robin(2);
  const rt::Mapping b = a;  // copies share the closure => same identity
  EXPECT_EQ(a.identity(), b.identity());
  EXPECT_NE(a.identity(), rt::mapping::round_robin(2).identity());

  auto wl = make_equivalence_workload();
  const stf::FlowImage image = stf::FlowImage::compile(wl.flow);
  rt::PrunedPlanCache cache;
  const auto p1 = cache.get(image, a, 2);
  const auto p2 = cache.get(image, b, 2);
  EXPECT_EQ(p1.get(), p2.get());
  EXPECT_EQ(cache.compiles(), 1u);
  cache.get(image, a, 4);  // worker count is part of the key
  EXPECT_EQ(cache.compiles(), 2u);
}

TEST(PruningCache, ImagePlanMatchesFlowPlan) {
  auto wl = make_equivalence_workload();
  const stf::FlowImage image = stf::FlowImage::compile(wl.flow);
  const rt::Mapping mapping = wl.mapping(3);
  const rt::PrunedPlan from_flow(wl.flow, mapping, 3);
  const rt::PrunedPlan from_image(image, mapping, 3);
  ASSERT_EQ(from_flow.total_tasks(), from_image.total_tasks());
  for (stf::WorkerId w = 0; w < 3; ++w) {
    const auto& fa = from_flow.tasks_for(w);
    const auto& fb = from_image.tasks_for(w);
    ASSERT_EQ(fa.size(), fb.size()) << "worker " << w;
    for (std::size_t i = 0; i < fa.size(); ++i) {
      EXPECT_EQ(fa[i].id, fb[i].id);
      ASSERT_EQ(fa[i].accesses.size(), fb[i].accesses.size());
      for (std::size_t k = 0; k < fa[i].accesses.size(); ++k) {
        EXPECT_EQ(fa[i].accesses[k].data, fb[i].accesses[k].data);
        EXPECT_EQ(fa[i].accesses[k].mode, fb[i].accesses[k].mode);
        EXPECT_EQ(fa[i].accesses[k].expected_writer,
                  fb[i].accesses[k].expected_writer);
        EXPECT_EQ(fa[i].accesses[k].expected_reads,
                  fb[i].accesses[k].expected_reads);
      }
    }
  }
}

// ------------------------------------------------------------------- sim ---

TEST(SimImage, FlowAndImageEntryPointsAreBitIdentical) {
  workloads::RandomDepsSpec spec;
  spec.num_tasks = 400;
  spec.num_data = 32;
  spec.body = workloads::BodyKind::kNone;
  auto wl = workloads::make_random_deps(spec);
  const stf::FlowImage image = stf::FlowImage::compile(wl.flow);

  sim::DecentralizedParams dp;
  dp.workers = 4;
  const auto via_flow =
      sim::simulate_decentralized(wl.flow, wl.mapping(4), dp);
  const auto via_image =
      sim::simulate_decentralized(image, wl.mapping(4), dp);
  EXPECT_EQ(via_flow.makespan, via_image.makespan);
  ASSERT_EQ(via_flow.stats.workers.size(), via_image.stats.workers.size());
  for (std::size_t w = 0; w < via_flow.stats.workers.size(); ++w) {
    EXPECT_EQ(via_flow.stats.workers[w].buckets.task_ns,
              via_image.stats.workers[w].buckets.task_ns);
    EXPECT_EQ(via_flow.stats.workers[w].buckets.idle_ns,
              via_image.stats.workers[w].buckets.idle_ns);
    EXPECT_EQ(via_flow.stats.workers[w].buckets.runtime_ns,
              via_image.stats.workers[w].buckets.runtime_ns);
  }

  sim::CentralizedParams cp;
  cp.workers = 4;
  EXPECT_EQ(sim::simulate_centralized(wl.flow, cp).makespan,
            sim::simulate_centralized(image, cp).makespan);
}
