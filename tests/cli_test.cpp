// Tests for the rioflow command-line driver (src/cli).
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "cli/cli.hpp"
#include "engine/registry.hpp"

namespace {

using rio::cli::Options;

bool parse_args(std::initializer_list<const char*> args, Options& o,
                std::string& error) {
  std::vector<const char*> argv{"rioflow"};
  argv.insert(argv.end(), args.begin(), args.end());
  return rio::cli::parse(static_cast<int>(argv.size()), argv.data(), o,
                         error);
}

int run_args(std::initializer_list<const char*> args, std::string* out_text =
                                                          nullptr) {
  Options o;
  std::string error;
  if (!parse_args(args, o, error)) return -1;
  std::ostringstream out, err;
  const int rc = rio::cli::run(o, out, err);
  if (out_text) *out_text = out.str() + err.str();
  return rc;
}

// ------------------------------------------------------------- parsing -----

TEST(CliParse, DefaultsAreSane) {
  Options o;
  std::string error;
  EXPECT_TRUE(parse_args({}, o, error));
  EXPECT_EQ(o.workload, "independent");
  EXPECT_EQ(o.engine, "rio");
  EXPECT_EQ(o.workers, 2u);
}

TEST(CliParse, AllKnobs) {
  Options o;
  std::string error;
  EXPECT_TRUE(parse_args({"--workload", "lu", "--engine", "coor", "--workers",
                          "7", "--tiles", "5", "--task-size", "123",
                          "--mapping", "rr", "--policy", "block",
                          "--scheduler", "priority", "--repeat", "3",
                          "--seed", "9", "--summary", "--decompose", "--csv"},
                         o, error))
      << error;
  EXPECT_EQ(o.workload, "lu");
  EXPECT_EQ(o.engine, "coor");
  EXPECT_EQ(o.workers, 7u);
  EXPECT_EQ(o.tiles, 5u);
  EXPECT_EQ(o.task_size, 123u);
  EXPECT_EQ(o.mapping, "rr");
  EXPECT_EQ(o.policy, "block");
  EXPECT_EQ(o.scheduler, "priority");
  EXPECT_EQ(o.repeat, 3);
  EXPECT_EQ(o.seed, 9u);
  EXPECT_TRUE(o.summary && o.decompose && o.csv);
}

TEST(CliParse, RejectsUnknownOption) {
  Options o;
  std::string error;
  EXPECT_FALSE(parse_args({"--frobnicate"}, o, error));
  EXPECT_NE(error.find("unknown option"), std::string::npos);
}

TEST(CliParse, RejectsMissingValue) {
  Options o;
  std::string error;
  EXPECT_FALSE(parse_args({"--workers"}, o, error));
}

TEST(CliParse, RejectsBadNumber) {
  Options o;
  std::string error;
  EXPECT_FALSE(parse_args({"--tasks", "banana"}, o, error));
  EXPECT_NE(error.find("bad numeric"), std::string::npos);
}

TEST(CliParse, RejectsZeroWorkers) {
  Options o;
  std::string error;
  EXPECT_FALSE(parse_args({"--workers", "0"}, o, error));
}

TEST(CliParse, HelpShortCircuits) {
  Options o;
  std::string error;
  EXPECT_TRUE(parse_args({"--help"}, o, error));
  EXPECT_TRUE(o.help);
  std::string text;
  EXPECT_EQ(run_args({"--help"}, &text), 0);
  EXPECT_NE(text.find("usage:"), std::string::npos);
}

// -------------------------------------------------------------- running ----

TEST(CliRun, EveryRegisteredEngineRunsEveryCompatibleWorkload) {
  // Driven by the registry, not a hand-kept list: a newly registered
  // backend is swept automatically (and must be runnable from the CLI with
  // default knobs — that is the point of the registry seam).
  for (const std::string& engine : rio::engine::Registry::instance().names()) {
    for (const char* workload :
         {"independent", "random", "gemm", "lu", "cholesky", "stencil",
          "taskbench:fft"}) {
      std::string text;
      const int rc = run_args({"--engine", engine.c_str(), "--workload",
                               workload, "--tasks", "200", "--tiles", "3",
                               "--width", "6", "--steps", "4", "--task-size",
                               "50", "--workers", "2"},
                              &text);
      EXPECT_EQ(rc, 0) << engine << " x " << workload << ": " << text;
      EXPECT_NE(text.find(engine), std::string::npos);
    }
  }
}

TEST(CliRun, UnknownEngineFails) {
  std::string text;
  EXPECT_EQ(run_args({"--engine", "warp-drive"}, &text), 1);
  EXPECT_NE(text.find("unknown engine"), std::string::npos);
}

TEST(CliRun, UnknownWorkloadFails) {
  std::string text;
  EXPECT_EQ(run_args({"--workload", "nonsense"}, &text), 1);
}

TEST(CliRun, UnknownTaskbenchPatternFails) {
  std::string text;
  EXPECT_EQ(run_args({"--workload", "taskbench:warp"}, &text), 1);
}

TEST(CliRun, SummaryAndDecomposePrint) {
  std::string text;
  EXPECT_EQ(run_args({"--workload", "lu", "--tiles", "3", "--summary",
                      "--decompose", "--task-size", "10"},
                     &text),
            0);
  EXPECT_NE(text.find("critical path"), std::string::npos);
  EXPECT_NE(text.find("e_p ="), std::string::npos);
}

TEST(CliRun, WritesDotAndTraceFiles) {
  const std::string dot = "/tmp/rioflow_test.dot";
  const std::string trace = "/tmp/rioflow_test_trace.json";
  std::remove(dot.c_str());
  std::remove(trace.c_str());
  std::string text;
  EXPECT_EQ(run_args({"--workload", "gemm", "--tiles", "2", "--engine", "rio",
                      "--task-size", "10", "--dot", dot.c_str(), "--trace",
                      trace.c_str()},
                     &text),
            0);
  std::ifstream fd(dot), ft(trace);
  ASSERT_TRUE(fd.good());
  ASSERT_TRUE(ft.good());
  std::stringstream sd, st;
  sd << fd.rdbuf();
  st << ft.rdbuf();
  EXPECT_NE(sd.str().find("digraph taskflow"), std::string::npos);
  EXPECT_NE(st.str().find("traceEvents"), std::string::npos);
  std::remove(dot.c_str());
  std::remove(trace.c_str());
}

TEST(CliRun, CsvOutput) {
  std::string text;
  EXPECT_EQ(run_args({"--csv", "--tasks", "50", "--task-size", "10"}, &text),
            0);
  EXPECT_NE(text.find("engine,workload,tasks,workers,time"),
            std::string::npos);
}

TEST(CliRun, SimEngineReportsVirtualTime) {
  std::string text;
  EXPECT_EQ(run_args({"--engine", "sim-coor", "--workers", "24", "--tasks",
                      "1000", "--task-size", "1000"},
                     &text),
            0);
  EXPECT_NE(text.find("(virtual)"), std::string::npos);
}

// ----------------------------------------------------------- lint/check ----

TEST(CliLint, ParsesSubcommandAndKnobs) {
  Options o;
  std::string error;
  EXPECT_TRUE(parse_args({"lint", "--workload", "gemm", "--counter-bits",
                          "16", "--fail-on", "info"},
                         o, error))
      << error;
  EXPECT_EQ(o.command, "lint");
  EXPECT_EQ(o.counter_bits, 16u);
  EXPECT_EQ(o.fail_on, "info");
}

TEST(CliLint, RejectsUnknownCommand) {
  Options o;
  std::string error;
  EXPECT_FALSE(parse_args({"frobnicate"}, o, error));
  EXPECT_NE(error.find("unknown command"), std::string::npos);
}

TEST(CliLint, RejectsBadFailOn) {
  std::string text;
  EXPECT_EQ(run_args({"lint", "--fail-on", "sometimes"}, &text), 1);
}

TEST(CliLint, EachBadFixtureFailsWithItsCode) {
  const struct {
    const char* workload;
    const char* code;
    const char* fail_on;
  } cases[] = {
      {"lintfix:uninit-read", "RF001", "warning"},
      {"lintfix:dead-write", "RF002", "warning"},
      {"lintfix:unused-handle", "RF003", "warning"},
      {"lintfix:redundant-edge", "RF004", "info"},
  };
  for (const auto& c : cases) {
    std::string text;
    const int rc = run_args(
        {"lint", "--workload", c.workload, "--fail-on", c.fail_on}, &text);
    EXPECT_EQ(rc, 3) << c.workload << ": " << text;
    EXPECT_NE(text.find(c.code), std::string::npos)
        << c.workload << ": " << text;
  }
}

TEST(CliLint, RedundantEdgeFixturePassesAtDefaultThreshold) {
  // The finding is informational (the dependency scanner itself emits such
  // edges for W->R->W patterns), so the default gate lets it through.
  std::string text;
  EXPECT_EQ(run_args({"lint", "--workload", "lintfix:redundant-edge"}, &text),
            0)
      << text;
  EXPECT_NE(text.find("RF004"), std::string::npos);
}

TEST(CliLint, ShippedWorkloadsExitZero) {
  for (const char* workload :
       {"independent", "random", "gemm", "lu", "cholesky", "stencil",
        "taskbench:fft", "taskbench:trivial", "taskbench:stencil_1d"}) {
    std::string text;
    const int rc = run_args({"lint", "--workload", workload, "--tasks",
                             "2048", "--tiles", "3", "--width", "6",
                             "--steps", "4", "--workers", "2"},
                            &text);
    EXPECT_EQ(rc, 0) << workload << ":\n" << text;
  }
}

TEST(CliLint, UnknownFixtureFails) {
  std::string text;
  EXPECT_EQ(run_args({"lint", "--workload", "lintfix:nonsense"}, &text), 1);
}

TEST(CliLint, NarrowCountersAreDiagnosed) {
  std::string text;
  const int rc = run_args({"lint", "--workload", "stencil", "--width", "6",
                           "--steps", "4", "--counter-bits", "1"},
                          &text);
  EXPECT_EQ(rc, 3) << text;
  EXPECT_NE(text.find("RP201"), std::string::npos);
}

TEST(CliCheck, CleanRunPassesOnAllSyncEngines) {
  // rio-pruned included: PrunedRuntime records the same acquire/release
  // sync events as the full runtime, so the happens-before checker must
  // find a populated trace (no RC302 "no events" escape hatch).
  for (const char* engine : {"rio", "rio-pruned", "coor"}) {
    std::string text;
    const int rc = run_args({"check", "--engine", engine, "--workload",
                             "stencil", "--width", "4", "--steps", "4",
                             "--task-size", "20", "--workers", "2"},
                            &text);
    EXPECT_EQ(rc, 0) << engine << ":\n" << text;
    EXPECT_NE(text.find("0 race(s)"), std::string::npos) << text;
    EXPECT_EQ(text.find("RC302"), std::string::npos) << engine << ":\n"
                                                     << text;
  }
}

TEST(CliCheck, InjectedRaceFixtureFails) {
  std::string text;
  const int rc = run_args({"check", "--workload", "lintfix:race"}, &text);
  EXPECT_EQ(rc, 3) << text;
  // The interval validator is satisfied by the disjoint wall-clock windows;
  // only the happens-before checker sees the race.
  EXPECT_NE(text.find("interval validation: ok"), std::string::npos) << text;
  EXPECT_NE(text.find("RC301"), std::string::npos) << text;
}

TEST(CliCheck, RejectsSimEnginesWithStructuredCapabilityError) {
  // Satellite of docs/engines.md: a knob the backend cannot honour is ONE
  // registry-generated UnsupportedLaunch error and exit code 2 — distinct
  // from exit 1 (unknown engine name).
  std::string text;
  EXPECT_EQ(run_args({"check", "--engine", "sim-rio"}, &text), 2);
  EXPECT_NE(text.find("engine 'sim-rio' cannot run this launch"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("collect_trace"), std::string::npos) << text;
}

TEST(CliChaos, ParsesFlags) {
  Options o;
  std::string error;
  ASSERT_TRUE(parse_args({"chaos", "--fault-rate", "0.25", "--fault-seeds",
                          "5", "--retries", "4", "--watchdog-ms", "750",
                          "--engines", "rio,coor", "--quick", "--workload",
                          "chain"},
                         o, error))
      << error;
  EXPECT_EQ(o.command, "chaos");
  EXPECT_DOUBLE_EQ(o.fault_rate, 0.25);
  EXPECT_EQ(o.fault_seeds, 5u);
  EXPECT_EQ(o.retries, 4u);
  EXPECT_EQ(o.watchdog_ms, 750u);
  EXPECT_EQ(o.engines, "rio,coor");
  EXPECT_TRUE(o.quick);
  EXPECT_TRUE(o.workload_given);
}

TEST(CliChaos, BadFaultRateFails) {
  Options o;
  std::string error;
  EXPECT_FALSE(parse_args({"chaos", "--fault-rate", "lots"}, o, error));
}

TEST(CliChaos, RejectsUnknownEngine) {
  std::string text;
  EXPECT_EQ(run_args({"chaos", "--engines", "rio,warp-drive"}, &text), 1);
  EXPECT_NE(text.find("warp-drive"), std::string::npos) << text;
}

TEST(CliChaos, QuickSweepSurvivesAndMatchesOracle) {
  std::string text;
  const int rc = run_args({"chaos", "--quick", "--workload", "chain",
                           "--tasks", "64", "--task-size", "50", "--workers",
                           "2", "--fault-rate", "0.1", "--retries", "4"},
                          &text);
  EXPECT_EQ(rc, 0) << text;
  EXPECT_NE(text.find("mismatched=0"), std::string::npos) << text;
  EXPECT_NE(text.find("stalled=0"), std::string::npos) << text;
  EXPECT_NE(
      text.find("all surviving runs matched the sequential oracle"),
      std::string::npos)
      << text;
}

TEST(CliChaos, ZeroRateSweepInjectsNothing) {
  std::string text;
  const int rc = run_args({"chaos", "--quick", "--workload", "chain",
                           "--tasks", "32", "--task-size", "20", "--workers",
                           "2", "--fault-rate", "0", "--engines", "rio"},
                          &text);
  EXPECT_EQ(rc, 0) << text;
  EXPECT_NE(text.find("injected-throws=0"), std::string::npos) << text;
}

// ------------------------------------------------------------- profile -----

std::string slurp(const std::string& path) {
  std::ifstream f(path);
  std::stringstream ss;
  ss << f.rdbuf();
  return ss.str();
}

TEST(CliProfile, ParsesCommandAndJsonFlag) {
  Options o;
  std::string error;
  EXPECT_TRUE(parse_args({"profile", "--workload", "cholesky", "--engine",
                          "coor", "--json", "/tmp/x.json", "--trace",
                          "/tmp/y.json", "--quick"},
                         o, error))
      << error;
  EXPECT_EQ(o.command, "profile");
  EXPECT_EQ(o.json_path, "/tmp/x.json");
  EXPECT_EQ(o.trace_path, "/tmp/y.json");
  EXPECT_TRUE(o.quick);
}

TEST(CliProfile, EveryObsEngineProducesPhaseTableAndDecomposition) {
  // Capability-driven: profile must work for exactly the supports_obs
  // backends in the registry (the others are covered by RejectsSeqEngine).
  for (const rio::engine::Backend* b :
       rio::engine::Registry::instance().all()) {
    if (!b->caps().supports_obs) continue;
    const std::string engine(b->name());
    std::string text;
    const int rc = run_args({"profile", "--quick", "--workload", "cholesky",
                             "--tiles", "3", "--workers", "2", "--engine",
                             engine.c_str()},
                            &text);
    EXPECT_EQ(rc, 0) << engine << ": " << text;
    EXPECT_NE(text.find("-- profile:"), std::string::npos) << engine;
    EXPECT_NE(text.find("acquire_wait"), std::string::npos) << engine;
    EXPECT_NE(text.find("e_p*e_r"), std::string::npos) << engine;
    EXPECT_NE(text.find("tasks_executed="), std::string::npos) << engine;
  }
}

TEST(CliProfile, WritesObsJsonAndPerfettoTrace) {
  const std::string json = "/tmp/rioflow_test_obs.json";
  const std::string trace = "/tmp/rioflow_test_obs_trace.json";
  std::remove(json.c_str());
  std::remove(trace.c_str());
  std::string text;
  const int rc = run_args({"profile", "--quick", "--workload", "cholesky",
                           "--tiles", "3", "--workers", "2", "--engine",
                           "rio", "--json", json.c_str(), "--trace",
                           trace.c_str()},
                          &text);
  EXPECT_EQ(rc, 0) << text;
  EXPECT_NE(slurp(json).find("\"rio.obs.v1\""), std::string::npos);
  const std::string tr = slurp(trace);
  EXPECT_EQ(tr.front(), '[');
  EXPECT_NE(tr.find("thread_name"), std::string::npos);
  std::remove(json.c_str());
  std::remove(trace.c_str());
}

TEST(CliProfile, SimEngineReportsTickClock) {
  std::string text;
  const int rc = run_args({"profile", "--quick", "--workload", "chain",
                           "--tasks", "32", "--engine", "sim-rio"},
                          &text);
  EXPECT_EQ(rc, 0) << text;
  EXPECT_NE(text.find("clock=ticks"), std::string::npos) << text;
}

TEST(CliProfile, RejectsSeqEngine) {
  // seq lacks supports_obs: the capability validator rejects the hub knob
  // with the structured UnsupportedLaunch error (exit 2, not 1).
  std::string text;
  EXPECT_EQ(run_args({"profile", "--engine", "seq"}, &text), 2);
  EXPECT_NE(text.find("engine 'seq' cannot run this launch"),
            std::string::npos)
      << text;
}

TEST(CliChaos, RejectsVirtualTimeEngineWithExitTwo) {
  // Chaos verifies bytes against the oracle; a simulator never executes
  // bodies, so the pre-flight rejects it with the capability vocabulary.
  std::string text;
  EXPECT_EQ(run_args({"chaos", "--engines", "sim-rio"}, &text), 2);
  EXPECT_NE(text.find("executes_bodies"), std::string::npos) << text;
}

// ------------------------------------------------------------- engines -----

TEST(CliEngines, ListsEveryRegisteredBackend) {
  std::string text;
  EXPECT_EQ(run_args({"engines"}, &text), 0);
  for (const std::string& name : rio::engine::Registry::instance().names())
    EXPECT_NE(text.find(name), std::string::npos) << name << ":\n" << text;
  EXPECT_NE(text.find("executes_bodies"), std::string::npos);
  EXPECT_NE(text.find("virtual_time"), std::string::npos);
}

TEST(CliEngines, JsonReportIsVersionedAndComplete) {
  const std::string json = "/tmp/rioflow_test_engines.json";
  std::remove(json.c_str());
  std::string text;
  EXPECT_EQ(run_args({"engines", "--json", json.c_str()}, &text), 0);
  std::ifstream f(json);
  std::stringstream ss;
  ss << f.rdbuf();
  const std::string doc = ss.str();
  EXPECT_NE(doc.find("\"rio.engines.v1\""), std::string::npos);
  for (const std::string& name : rio::engine::Registry::instance().names())
    EXPECT_NE(doc.find("\"" + name + "\""), std::string::npos) << name;
  EXPECT_NE(doc.find("\"capabilities\""), std::string::npos);
  std::remove(json.c_str());
}

// ------------------------------------------------------ JSON reports -------

TEST(CliJson, ChaosReportIsVersionedAndConsistent) {
  const std::string json = "/tmp/rioflow_test_chaos.json";
  std::remove(json.c_str());
  std::string text;
  const int rc = run_args({"chaos", "--quick", "--workload", "chain",
                           "--tasks", "32", "--task-size", "20", "--workers",
                           "2", "--engines", "rio", "--json", json.c_str()},
                          &text);
  EXPECT_EQ(rc, 0) << text;
  const std::string doc = slurp(json);
  EXPECT_NE(doc.find("\"rio.chaos.v2\""), std::string::npos);
  EXPECT_NE(doc.find("\"kind\": \"transient\""), std::string::npos);
  EXPECT_NE(doc.find("\"evictions\""), std::string::npos);
  EXPECT_NE(doc.find("\"summary\""), std::string::npos);
  EXPECT_NE(doc.find("\"failed\": false"), std::string::npos);
  std::remove(json.c_str());
}

TEST(CliJson, CrashChaosRecoversAndReportsEvictions) {
  const std::string json = "/tmp/rioflow_test_chaos_crash.json";
  std::remove(json.c_str());
  std::string text;
  const int rc = run_args(
      {"chaos", "--quick", "--workload", "chain", "--tasks", "48",
       "--task-size", "20", "--workers", "3", "--faults", "crash",
       "--fault-rate", "0.2", "--json", json.c_str()},
      &text);
  EXPECT_EQ(rc, 0) << text;
  const std::string doc = slurp(json);
  EXPECT_NE(doc.find("\"rio.chaos.v2\""), std::string::npos);
  EXPECT_NE(doc.find("\"kind\": \"crash\""), std::string::npos);
  EXPECT_NE(doc.find("\"failed\": false"), std::string::npos);
  // At this rate every seed kills at least one worker on the 48-task
  // chain, so the sweep must report recoveries, not just survivals.
  EXPECT_NE(text.find("worker-lost=0"), std::string::npos) << text;
  EXPECT_EQ(text.find("evictions=0 "), std::string::npos) << text;
  std::remove(json.c_str());
}

TEST(CliJson, LintReportCarriesFindings) {
  const std::string json = "/tmp/rioflow_test_lint.json";
  std::remove(json.c_str());
  std::string text;
  const int rc = run_args({"lint", "--workload", "lintfix:dead-write",
                           "--json", json.c_str()},
                          &text);
  EXPECT_EQ(rc, 3) << text;  // the fixture is seeded-bad on purpose
  const std::string doc = slurp(json);
  EXPECT_NE(doc.find("\"rio.lint.v1\""), std::string::npos);
  EXPECT_NE(doc.find("\"RF002\""), std::string::npos);
  EXPECT_NE(doc.find("\"worst\": \"warning\""), std::string::npos);
  std::remove(json.c_str());
}

TEST(CliJson, CheckReportIsVersioned) {
  const std::string json = "/tmp/rioflow_test_check.json";
  std::remove(json.c_str());
  std::string text;
  const int rc = run_args({"check", "--workload", "cholesky", "--tiles", "3",
                           "--engine", "rio", "--workers", "2", "--json",
                           json.c_str()},
                          &text);
  EXPECT_EQ(rc, 0) << text;
  const std::string doc = slurp(json);
  EXPECT_NE(doc.find("\"rio.check.v1\""), std::string::npos);
  EXPECT_NE(doc.find("interval validation"), std::string::npos);
  std::remove(json.c_str());
}

}  // namespace
