// Tests for the mini Task Bench workload family.
#include <gtest/gtest.h>

#include <cstring>

#include "coor/coor.hpp"
#include "rio/rio.hpp"
#include "stf/stf.hpp"
#include "workloads/taskbench.hpp"

namespace {

using namespace rio;
using namespace rio::workloads;

TaskBenchSpec spec_for(TaskBenchPattern p, std::uint32_t width = 8,
                       std::uint32_t steps = 4) {
  TaskBenchSpec s;
  s.pattern = p;
  s.width = width;
  s.steps = steps;
  s.body = BodyKind::kNone;
  return s;
}

// ------------------------------------------------------------ dep shapes ---

TEST(TaskBenchDeps, FirstStepHasNone) {
  for (auto p : kAllTaskBenchPatterns)
    EXPECT_TRUE(taskbench_deps(spec_for(p), 0, 3).empty())
        << to_string(p);
}

TEST(TaskBenchDeps, TrivialAlwaysEmpty) {
  const auto s = spec_for(TaskBenchPattern::kTrivial);
  for (std::uint32_t t = 1; t < 4; ++t)
    for (std::uint32_t d = 0; d < 8; ++d)
      EXPECT_TRUE(taskbench_deps(s, t, d).empty());
}

TEST(TaskBenchDeps, NoCommIsSelfOnly) {
  const auto s = spec_for(TaskBenchPattern::kNoComm);
  EXPECT_EQ(taskbench_deps(s, 2, 5), (std::vector<std::uint32_t>{5}));
}

TEST(TaskBenchDeps, StencilClampsBorders) {
  const auto s = spec_for(TaskBenchPattern::kStencil1D);
  EXPECT_EQ(taskbench_deps(s, 1, 0), (std::vector<std::uint32_t>{0, 1}));
  EXPECT_EQ(taskbench_deps(s, 1, 7), (std::vector<std::uint32_t>{6, 7}));
  EXPECT_EQ(taskbench_deps(s, 1, 3), (std::vector<std::uint32_t>{2, 3, 4}));
}

TEST(TaskBenchDeps, PeriodicWraps) {
  const auto s = spec_for(TaskBenchPattern::kStencil1DPeriodic);
  EXPECT_EQ(taskbench_deps(s, 1, 0), (std::vector<std::uint32_t>{0, 1, 7}));
}

TEST(TaskBenchDeps, FftButterflyPartners) {
  const auto s = spec_for(TaskBenchPattern::kFft, 8);
  // width 8 -> 3 levels; step 1 uses stride 1, step 2 stride 2, step 3
  // stride 4, step 4 wraps to stride 1.
  EXPECT_EQ(taskbench_deps(s, 1, 0), (std::vector<std::uint32_t>{0, 1}));
  EXPECT_EQ(taskbench_deps(s, 2, 0), (std::vector<std::uint32_t>{0, 2}));
  EXPECT_EQ(taskbench_deps(s, 3, 0), (std::vector<std::uint32_t>{0, 4}));
  EXPECT_EQ(taskbench_deps(s, 4, 0), (std::vector<std::uint32_t>{0, 1}));
}

TEST(TaskBenchDeps, AllToAllIsFullRow) {
  const auto s = spec_for(TaskBenchPattern::kAllToAll, 5);
  EXPECT_EQ(taskbench_deps(s, 1, 2).size(), 5u);
}

TEST(TaskBenchDeps, SpreadHasSelfPlusStrides) {
  const auto s = spec_for(TaskBenchPattern::kSpread, 16);
  const auto deps = taskbench_deps(s, 2, 1);
  // self=1, offsets 2,4,6 -> {1,3,5,7}
  EXPECT_EQ(deps, (std::vector<std::uint32_t>{1, 3, 5, 7}));
}

// -------------------------------------------------------------- workload ---

TEST(TaskBenchFlow, GridSizeAndOwners) {
  auto s = spec_for(TaskBenchPattern::kStencil1D, 6, 5);
  s.num_workers = 3;
  auto wl = make_taskbench(s);
  EXPECT_EQ(wl.flow.num_tasks(), 30u);
  EXPECT_EQ(wl.flow.num_data(), 12u);  // double-buffered width
  ASSERT_EQ(wl.owners.size(), 30u);
  for (std::size_t i = 0; i < 30; ++i)
    EXPECT_EQ(wl.owners[i], (i % 6) % 3);  // point-sharded mapping
}

TEST(TaskBenchFlow, DagWidthMatchesPattern) {
  // no_comm: width independent chains -> max ready width == width.
  auto wl = make_taskbench(spec_for(TaskBenchPattern::kNoComm, 8, 4));
  stf::DependencyGraph g(wl.flow);
  EXPECT_EQ(g.max_ready_width(), 8u);
  // all_to_all still exposes width parallelism per step, but the critical
  // path grows with steps.
  auto wl2 = make_taskbench(spec_for(TaskBenchPattern::kAllToAll, 8, 4));
  stf::DependencyGraph g2(wl2.flow);
  EXPECT_EQ(g2.critical_path_cost(wl2.flow), 4u * 1000u);
}

// Executable flows: chase values through the grid and compare engines.
class TaskBenchEngines
    : public ::testing::TestWithParam<TaskBenchPattern> {};

TEST_P(TaskBenchEngines, RioAndCoorMatchSequential) {
  auto make = [&] {
    TaskBenchSpec s = spec_for(GetParam(), 8, 6);
    s.num_workers = 3;
    auto wl = make_taskbench(s);
    // Give every task an order-sensitive body over its declared accesses.
    stf::TaskFlow rebuilt;
    std::vector<stf::DataHandle<std::uint64_t>> handles;
    for (std::uint32_t d = 0; d < wl.flow.num_data(); ++d)
      handles.push_back(
          rebuilt.create_data<std::uint64_t>("h" + std::to_string(d)));
    for (const stf::Task& t : wl.flow.tasks()) {
      stf::AccessList acc = t.accesses;
      std::vector<stf::DataId> reads;
      stf::DataId written = stf::kInvalidData;
      for (const auto& a : t.accesses)
        if (is_write(a.mode))
          written = a.data;
        else
          reads.push_back(a.data);
      const stf::TaskId id = t.id;
      rebuilt.add(t.name,
                  [reads, written, id](stf::TaskContext& ctx) {
                    std::uint64_t v = id * 2654435761u + 1;
                    for (stf::DataId r : reads)
                      v += *static_cast<const std::uint64_t*>(
                          ctx.registry().raw(r));
                    *static_cast<std::uint64_t*>(
                        ctx.registry().raw(written)) = v;
                  },
                  std::move(acc), t.cost);
    }
    workloads::Workload out;
    out.flow = std::move(rebuilt);
    out.owners = wl.owners;
    return out;
  };

  auto oracle = make();
  stf::SequentialExecutor{}.run(oracle.flow);

  auto wl_rio = make();
  rt::Runtime rio_rt(rt::Config{.num_workers = 3, .enable_guard = true});
  rio_rt.run(wl_rio.flow, wl_rio.mapping(3));

  auto wl_coor = make();
  coor::Runtime coor_rt(coor::Config{.num_workers = 3, .enable_guard = true});
  coor_rt.run(wl_coor.flow);

  for (stf::DataId d = 0; d < oracle.flow.num_data(); ++d) {
    EXPECT_EQ(std::memcmp(wl_rio.flow.registry().raw(d),
                          oracle.flow.registry().raw(d), sizeof(std::uint64_t)),
              0)
        << "rio, object " << d;
    EXPECT_EQ(std::memcmp(wl_coor.flow.registry().raw(d),
                          oracle.flow.registry().raw(d), sizeof(std::uint64_t)),
              0)
        << "coor, object " << d;
  }
}

INSTANTIATE_TEST_SUITE_P(Patterns, TaskBenchEngines,
                         ::testing::ValuesIn(kAllTaskBenchPatterns),
                         [](const auto& i) {
                           return std::string(to_string(i.param));
                         });

}  // namespace
