// Quickstart: the STF programming model on the RIO runtime in ~60 lines.
//
// Builds a small sequential task flow (a producer, parallel consumers, a
// reduction), supplies the static mapping RIO requires, runs it on 4
// workers and checks the result against the sequential executor.
#include <cstdint>
#include <iostream>

#include "rio/rio.hpp"
#include "stf/stf.hpp"

using namespace rio;

int main() {
  // 1. Describe the computation as a sequential flow of tasks with
  //    declared data accesses. Dependencies are implicit (STF).
  stf::TaskFlow flow;
  auto input = flow.create_data<std::uint64_t>("input");
  auto partial = flow.create_data<std::uint64_t>("partial", 4);
  auto result = flow.create_data<std::uint64_t>("result");

  flow.add("produce",
           [input](stf::TaskContext& ctx) { ctx.scalar(input) = 10; },
           {stf::write(input)});

  for (std::uint32_t i = 0; i < 4; ++i) {
    flow.add("square+" + std::to_string(i),
             [input, partial, i](stf::TaskContext& ctx) {
               const std::uint64_t v =
                   ctx.scalar(input, stf::AccessMode::kRead) + i;
               ctx.get(partial)[i] = v * v;
             },
             {stf::read(input), stf::readwrite(partial)});
  }

  flow.add("reduce",
           [partial, result](stf::TaskContext& ctx) {
             const std::uint64_t* p =
                 ctx.get(partial, stf::AccessMode::kRead);
             std::uint64_t sum = 0;
             for (int i = 0; i < 4; ++i) sum += p[i];
             ctx.scalar(result) = sum;
           },
           {stf::read(partial), stf::write(result)});

  // 2. Supply the mapping TaskID -> WorkerID (Section 3.2 of the paper):
  //    here a simple round-robin; real applications use owner-computes
  //    maps (see the lu_solver example).
  const std::uint32_t workers = 4;
  rt::Runtime runtime(rt::Config{.num_workers = workers});
  runtime.run(flow, rt::mapping::round_robin(workers));

  const std::uint64_t got = *flow.registry().typed<std::uint64_t>(result);
  std::cout << "10^2 + 11^2 + 12^2 + 13^2 = " << got << "\n";

  // 3. Every execution model must agree with the sequential semantics.
  const std::uint64_t expect = 10 * 10 + 11 * 11 + 12 * 12 + 13 * 13;
  if (got != expect) {
    std::cerr << "MISMATCH: expected " << expect << "\n";
    return 1;
  }
  std::cout << "matches the sequential execution — OK\n";
  return 0;
}
