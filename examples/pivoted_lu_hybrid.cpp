// LU with partial pivoting on the HYBRID runtime — the paper's motivating
// problem solved with the combination its conclusion proposes.
//
// HPL-style factorizations mix coarse trailing updates (ideal for a
// dynamic, centralized scheduler) with fine-grained pivoting (which that
// scheduler cannot afford). The hybrid runtime executes each at the model
// that suits it, from ONE task flow and a PARTIAL mapping: only the fine
// pivoting tasks carry an owner.
#include <cstdint>
#include <iostream>

#include "hybrid/hybrid.hpp"
#include "stf/stf.hpp"
#include "support/clock.hpp"
#include "workloads/workloads.hpp"

using namespace rio;

int main() {
  constexpr std::uint32_t kTiles = 4;
  constexpr std::uint32_t kTileDim = 24;
  constexpr std::uint32_t kWorkers = 3;
  const std::size_t n = static_cast<std::size_t>(kTiles) * kTileDim;

  workloads::TiledMatrix a(kTiles, kTileDim);
  a.fill_random(7);               // general matrix: pivoting REQUIRED
  workloads::TiledMatrix original = a;

  auto hpl = workloads::make_hpl_lu(a, kWorkers);
  std::size_t fine = 0;
  for (auto o : hpl.workload.owners) fine += o != stf::kInvalidWorker;
  std::cout << "pivoted LU of a " << n << "x" << n << " matrix: "
            << hpl.workload.flow.num_tasks() << " tasks, " << fine
            << " fine-grained pivoting tasks (mapped), "
            << hpl.workload.flow.num_tasks() - fine
            << " coarse update tasks (dynamic)\n";

  hybrid::Runtime runtime(
      hybrid::Config{.num_workers = kWorkers, .enable_guard = true});
  support::Stopwatch sw;
  const auto stats = runtime.run(hpl.workload.flow, hpl.partial_mapping());
  std::cout << "executed in " << sw.elapsed_s() * 1e3 << " ms across "
            << runtime.last_phase_count()
            << " phases (static pivoting / dynamic update alternation)\n";

  // Verify: P*A = L*U against the untouched input.
  const double residual = workloads::hpl_residual(original, a, *hpl.perm);
  std::cout << "||P*A - L*U|| / (n*||A||) = " << residual << "\n";
  if (residual > 1e-12) {
    std::cerr << "FACTORIZATION INCORRECT\n";
    return 1;
  }

  std::size_t swaps = 0;
  for (std::size_t c = 0; c < n; ++c) swaps += (*hpl.perm)[c] != c;
  std::cout << swaps << "/" << n << " columns required a row swap; "
            << stats.tasks_executed() << " tasks executed — OK\n";
  return 0;
}
