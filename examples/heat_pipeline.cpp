// Fine-grained software pipeline: 1-D heat diffusion through RIO's
// STREAMING mode.
//
// This example exercises the paper's actual decentralized unrolling
// (Section 3.3, Figure 5): no task flow is ever materialized — every
// worker runs the program itself and executes only the chunks a block
// mapping assigns to it, synchronizing with neighbours through the
// data-object protocol. The per-time-step tasks are deliberately tiny:
// exactly the granularity regime where a master-based runtime drowns.
#include <cmath>
#include <cstdint>
#include <iostream>
#include <vector>

#include "rio/rio.hpp"
#include "stf/stf.hpp"
#include "support/clock.hpp"

using namespace rio;

namespace {

constexpr std::uint32_t kChunks = 32;
constexpr std::uint32_t kChunkLen = 64;
constexpr std::uint32_t kSteps = 200;
constexpr std::uint32_t kWorkers = 4;

// Sequential reference of the same 3-point update.
void reference(std::vector<double>& u) {
  std::vector<double> next(u.size());
  for (std::uint32_t t = 0; t < kSteps; ++t) {
    const std::size_t n = u.size();
    for (std::size_t i = 0; i < n; ++i) {
      const double l = i > 0 ? u[i - 1] : u[0];
      const double r = i + 1 < n ? u[i + 1] : u[n - 1];
      next[i] = 0.25 * l + 0.5 * u[i] + 0.25 * r;
    }
    u.swap(next);
  }
}

}  // namespace

int main() {
  const std::size_t total = static_cast<std::size_t>(kChunks) * kChunkLen;

  // Initial condition: a hot spot in the middle.
  std::vector<double> init(total, 0.0);
  for (std::size_t i = total / 2 - 8; i < total / 2 + 8; ++i) init[i] = 100.0;

  // --- streaming RIO execution -------------------------------------------
  // Data objects registered once, up front, in a standalone registry.
  stf::DataRegistry registry;
  std::vector<double> buf_a = init, buf_b(total, 0.0);
  std::vector<stf::DataHandle<double>> h[2];
  std::vector<double>* store[2] = {&buf_a, &buf_b};
  for (int p = 0; p < 2; ++p)
    for (std::uint32_t c = 0; c < kChunks; ++c)
      h[p].push_back(registry.attach<double>(
          "u" + std::to_string(p) + "[" + std::to_string(c) + "]",
          store[p]->data() + static_cast<std::size_t>(c) * kChunkLen,
          kChunkLen));

  // The deterministic program every worker unrolls (Figure 5).
  stf::ProgramFn program = [&](stf::SubmitSink& sink) {
    for (std::uint32_t t = 0; t < kSteps; ++t) {
      const auto& cur = h[t % 2];
      const auto& nxt = h[(t + 1) % 2];
      for (std::uint32_t c = 0; c < kChunks; ++c) {
        const bool left = c > 0, right = c + 1 < kChunks;
        const auto hl = left ? cur[c - 1] : cur[c];
        const auto hm = cur[c];
        const auto hr = right ? cur[c + 1] : cur[c];
        const auto hn = nxt[c];
        stf::AccessList acc;
        if (left) acc.push_back(stf::read(hl));
        acc.push_back(stf::read(hm));
        if (right) acc.push_back(stf::read(hr));
        acc.push_back(stf::write(hn));
        sink.submit(
            [hl, hm, hr, hn, left, right](stf::TaskContext& ctx) {
              const double* lo = ctx.get(hl, stf::AccessMode::kRead);
              const double* mi = ctx.get(hm, stf::AccessMode::kRead);
              const double* ro = ctx.get(hr, stf::AccessMode::kRead);
              double* out = ctx.get(hn);
              for (std::uint32_t x = 0; x < kChunkLen; ++x) {
                const double lv = x > 0 ? mi[x - 1]
                                  : left ? lo[kChunkLen - 1]
                                         : mi[0];
                const double rv = x + 1 < kChunkLen ? mi[x + 1]
                                  : right           ? ro[0]
                                                    : mi[kChunkLen - 1];
                out[x] = 0.25 * lv + 0.5 * mi[x] + 0.25 * rv;
              }
            },
            std::move(acc), 4 * kChunkLen);
      }
    }
  };

  // Block mapping: task id -> chunk id -> contiguous worker blocks, so a
  // worker only ever waits on its two neighbours.
  auto mapping = rt::mapping::custom("block-by-chunk", [](stf::TaskId t) {
    const auto chunk = static_cast<std::uint32_t>(t % kChunks);
    return static_cast<stf::WorkerId>(
        static_cast<std::uint64_t>(chunk) * kWorkers / kChunks);
  });

  rt::Runtime runtime(rt::Config{.num_workers = kWorkers});
  support::Stopwatch sw;
  const auto stats = runtime.run_program(registry, program, mapping);
  const double ms = sw.elapsed_s() * 1e3;

  // --- verify against the sequential reference ---------------------------
  std::vector<double> ref = init;
  reference(ref);
  const std::vector<double>& result = (kSteps % 2 == 0) ? buf_a : buf_b;
  double err = 0.0;
  for (std::size_t i = 0; i < total; ++i)
    err = std::max(err, std::fabs(result[i] - ref[i]));

  std::cout << "streamed " << kSteps * kChunks << " tasks ("
            << stats.tasks_executed() << " executed across " << kWorkers
            << " workers, nothing materialized) in " << ms << " ms\n"
            << "max |pipeline - reference| = " << err << "\n";
  if (err != 0.0) {
    std::cerr << "MISMATCH\n";
    return 1;
  }
  std::cout << "bitwise identical to the sequential sweep — OK\n";
  return 0;
}
