// Verifying an application's mapping with the model checker.
//
// Before committing to a static mapping (the extra information RIO's
// enriched STF model requires), a developer can exhaustively check small
// instances of their task graph: data-race freedom, deadlock freedom,
// termination, and that the in-order execution refines the STF semantics.
// This example does so for a small Cholesky factorization under three
// candidate mappings and prints the checker's verdicts and state counts.
#include <iostream>
#include <vector>

#include "modelcheck/spec.hpp"
#include "workloads/cholesky.hpp"

using namespace rio;

int main() {
  workloads::CholeskyDagSpec spec;
  spec.tiles = 4;
  spec.body = workloads::BodyKind::kNone;
  spec.num_workers = 2;
  auto wl = workloads::make_cholesky_dag(spec);
  std::cout << "Cholesky " << spec.tiles << "x" << spec.tiles << " tiles: "
            << wl.flow.num_tasks() << " tasks\n\n";

  // The space of STF-legal executions (the envelope any runtime must stay
  // inside) — checked once.
  const auto stf_result = mc::check_stf(wl.flow, 2);
  std::cout << "STF envelope:   " << stf_result.distinct_states
            << " distinct states, "
            << (stf_result.ok() ? "all properties hold" : stf_result.violation)
            << "\n\n";

  struct Candidate {
    const char* name;
    rt::Mapping mapping;
  };
  std::vector<Candidate> candidates;
  candidates.push_back({"round-robin", rt::mapping::round_robin(2)});
  candidates.push_back({"block", rt::mapping::block(wl.flow.num_tasks(), 2)});
  candidates.push_back({"owner-computes", wl.mapping(2)});

  for (const auto& c : candidates) {
    const auto r = mc::check_run_in_order(wl.flow, 2, c.mapping);
    std::cout << "mapping '" << c.name << "':\n"
              << "  distinct states: " << r.distinct_states
              << " (generated " << r.generated_states << ")\n"
              << "  race-free: " << (r.race_free ? "yes" : "NO")
              << ", deadlock-free: " << (r.deadlock_free ? "yes" : "NO")
              << ", terminates: " << (r.termination_reached ? "yes" : "NO")
              << ", refines STF: " << (r.refines_stf ? "yes" : "NO") << "\n";
    if (!r.ok()) {
      std::cerr << "  VIOLATION: " << r.violation << "\n";
      return 1;
    }
  }
  std::cout << "\nall candidate mappings are safe for in-order execution — "
               "pick by performance (see bench/abl_ablations)\n";
  return 0;
}
