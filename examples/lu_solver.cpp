// Dense linear-system solver on the RIO runtime.
//
// The paper's motivating application domain: tiled dense factorizations
// whose pivoting steps need fine-grained tasks (HPL / LU, Section 1).
// This example factorizes a diagonally-dominant matrix with the tiled
// unpivoted LU task graph under an owner-computes 2-D block-cyclic
// mapping, executes it with (a) the sequential executor, (b) RIO, (c) the
// centralized OoO baseline, verifies all three agree, then solves
// A x = b by forward/backward substitution and reports the residual.
#include <cmath>
#include <cstdint>
#include <iostream>
#include <vector>

#include "coor/coor.hpp"
#include "rio/rio.hpp"
#include "stf/stf.hpp"
#include "support/clock.hpp"
#include "workloads/workloads.hpp"

using namespace rio;

namespace {

// y = A * x for the original (pre-factorization) tiled matrix.
std::vector<double> matvec(const workloads::TiledMatrix& a,
                           const std::vector<double>& x) {
  const std::size_t n = a.order();
  std::vector<double> y(n, 0.0);
  for (std::size_t r = 0; r < n; ++r)
    for (std::size_t c = 0; c < n; ++c) y[r] += a.at(r, c) * x[c];
  return y;
}

// Solves L U x = b given the packed LU factors.
std::vector<double> lu_solve(const workloads::TiledMatrix& lu,
                             std::vector<double> b) {
  const std::size_t n = lu.order();
  // Forward: L y = b (unit diagonal).
  for (std::size_t r = 0; r < n; ++r)
    for (std::size_t c = 0; c < r; ++c) b[r] -= lu.at(r, c) * b[c];
  // Backward: U x = y.
  for (std::size_t r = n; r-- > 0;) {
    for (std::size_t c = r + 1; c < n; ++c) b[r] -= lu.at(r, c) * b[c];
    b[r] /= lu.at(r, r);
  }
  return b;
}

}  // namespace

int main() {
  constexpr std::uint32_t kTiles = 6;
  constexpr std::uint32_t kTileDim = 24;
  constexpr std::uint32_t kWorkers = 4;
  const std::size_t n = static_cast<std::size_t>(kTiles) * kTileDim;

  std::cout << "Tiled LU (no pivoting) of a " << n << "x" << n << " matrix, "
            << kTiles << "x" << kTiles << " tiles of " << kTileDim << "^2\n\n";

  // Keep a pristine copy for the residual check.
  workloads::TiledMatrix original(kTiles, kTileDim);
  original.fill_random_diagonally_dominant(2024);

  auto factorize = [&](auto&& run, const char* label,
                       workloads::TiledMatrix& m) {
    m = original;  // fresh copy
    support::Stopwatch sw;
    run(m);
    std::cout << "  " << label << ": " << sw.elapsed_s() * 1e3 << " ms\n";
  };

  workloads::TiledMatrix seq(kTiles, kTileDim), rio_m(kTiles, kTileDim),
      coor_m(kTiles, kTileDim);

  factorize(
      [&](workloads::TiledMatrix& m) {
        auto wl = workloads::make_lu_numeric(m);
        stf::SequentialExecutor{}.run(wl.flow);
      },
      "sequential        ", seq);

  factorize(
      [&](workloads::TiledMatrix& m) {
        auto wl = workloads::make_lu_numeric(m, kWorkers);
        rt::Runtime runtime(rt::Config{.num_workers = kWorkers});
        // Owner-computes 2-D block-cyclic mapping from the generator.
        runtime.run(wl.flow, wl.mapping(kWorkers));
      },
      "RIO (4 workers)   ", rio_m);

  factorize(
      [&](workloads::TiledMatrix& m) {
        auto wl = workloads::make_lu_numeric(m);
        coor::Runtime runtime(coor::Config{.num_workers = kWorkers});
        runtime.run(wl.flow);
      },
      "centralized OoO   ", coor_m);

  std::cout << "\n  max |RIO - sequential|  = " << rio_m.max_abs_diff(seq)
            << "\n  max |OoO - sequential|  = " << coor_m.max_abs_diff(seq)
            << "\n";
  if (rio_m.max_abs_diff(seq) != 0.0 || coor_m.max_abs_diff(seq) != 0.0) {
    std::cerr << "FACTORIZATIONS DISAGREE\n";
    return 1;
  }

  // Solve A x = b with the RIO-produced factors.
  std::vector<double> x_true(n);
  for (std::size_t i = 0; i < n; ++i)
    x_true[i] = std::sin(static_cast<double>(i) * 0.37) + 1.5;
  const auto b = matvec(original, x_true);
  const auto x = lu_solve(rio_m, b);

  double err = 0.0;
  for (std::size_t i = 0; i < n; ++i)
    err = std::max(err, std::fabs(x[i] - x_true[i]));
  std::cout << "  solve A x = b: max |x - x_true| = " << err << "\n";
  if (err > 1e-8) {
    std::cerr << "SOLVE FAILED\n";
    return 1;
  }
  std::cout << "\nall three execution models agree; solution verified — OK\n";
  return 0;
}
