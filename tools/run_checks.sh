#!/usr/bin/env bash
# One-command static-analysis + test gate:
#   1. configure + build (compile_commands.json exported for clang-tidy);
#   2. run the full ctest suite;
#   3. clang-tidy over src/ (skipped with a notice when not installed);
#   4. `rioflow lint` over every shipped workload — all must exit 0;
#   5. `rioflow lint` over every seeded-bad fixture — all must exit non-zero;
#   6. `rioflow check` on every sync-capable engine (rio, rio-pruned, coor)
#      plus the injected-race fixture;
#   7. `rioflow chaos --quick` — the fault sweep must survive with zero
#      oracle mismatches, and a `--faults crash` sweep must recover every
#      permanent worker death by evict-and-remap with the oracle still
#      matching (docs/robustness.md, "Worker loss and recovery");
#   8. rioflow JSON reports — `profile --quick --json --trace` on two
#      workloads x two engines, plus `chaos --json` and `lint --json`;
#      every emitted document must parse (docs/observability.md);
#   9. `rioflow blame --quick --json` on rio, coor and sim-rio — the causal
#      profiler must emit a parsing rio.blame.v1 report on a real engine,
#      the decentralized coordinator and the exact simulator; then
#      `rioflow obs-diff` of an obs.json report against itself must report
#      zero drift (exit 0) and emit a parsing rio.obsdiff.v1 report;
#  10. engine registry sweep — `rioflow engines --json` must emit a parsing
#      rio.engines.v1 report, every backend it lists must smoke-run
#      (`rioflow run`), and every supports_obs backend must also
#      `rioflow profile` (docs/engines.md);
#  11. `rioflow optimize --passes fuse,map --report --json` on cholesky and
#      chain — the flowpass pipeline must emit a parsing rio.optimize.v1
#      report, and the optimized image must stay byte-identical to the
#      sequential oracle on BOTH rio and coor (optimize exits 3 on any
#      divergence; docs/passes.md);
#  12. bench JSON reporters — micro_unroll, micro_protocol, micro_recovery,
#      micro_obs, micro_fuse and fig7_workers emit BENCH_*.json, all must
#      parse; BENCH_unroll.json, BENCH_protocol.json, BENCH_recovery.json,
#      BENCH_obs_overhead.json and BENCH_fuse.json are kept at the repo
#      root (committed reference numbers, see docs/perf.md);
#  13. `rioflow verify --quick` — the implementation-level model checker
#      must exhaust its reduced interleaving space with zero violations and
#      emit a parsing rio.verify.v1 report (docs/analysis.md). Every sync
#      engine is checked under the default policy AND --policy block (the
#      doorbell/parking rewrite), coor additionally with --queue ring
#      (the wait-free MPMC ready ring), and every engine again with
#      --recover (crash + evicted-resume two-phase exploration);
#  14. ThreadSanitizer pass (skipped with RIO_SKIP_TSAN=1): rebuilds the
#      failure suite + model checker + rioflow with RIO_SANITIZE=thread and
#      reruns the resilience tests (incl. the recovery + crash-fuzz
#      suites), the modelcheck suite, the quick chaos sweeps (transient
#      AND crash kinds) and the new wait/notify configurations
#      (block-policy doorbells, coor --queue ring) under TSan — the retry
#      / watchdog / abort / eviction machinery, the controlled scheduler
#      and the new lock-free primitives are exactly the kind of code TSan
#      earns its keep on.
#
# Usage: tools/run_checks.sh [build-dir]   (default: build)
set -u

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="${1:-$ROOT/build}"
FAILURES=0

step() { printf '\n== %s ==\n' "$*"; }
fail() { printf 'FAIL: %s\n' "$*"; FAILURES=$((FAILURES + 1)); }

step "configure + build ($BUILD)"
cmake -B "$BUILD" -S "$ROOT" -DCMAKE_EXPORT_COMPILE_COMMANDS=ON || exit 1
cmake --build "$BUILD" -j "$(nproc)" || exit 1

step "ctest"
(cd "$BUILD" && ctest --output-on-failure -j "$(nproc)") || fail "ctest"

step "clang-tidy"
if command -v clang-tidy >/dev/null 2>&1; then
  # Sources only; headers are covered through HeaderFilterRegex.
  find "$ROOT/src" -name '*.cpp' -print0 |
    xargs -0 clang-tidy -p "$BUILD" --quiet || fail "clang-tidy"
else
  echo "clang-tidy not installed; skipping (install it to enable this gate)"
fi

RIOFLOW="$BUILD/rioflow"
if [ ! -x "$RIOFLOW" ]; then
  fail "rioflow binary not found at $RIOFLOW"
  exit 1
fi

step "rioflow lint: shipped workloads must be clean"
WORKLOADS="independent random chain gemm lu cholesky stencil
  taskbench:trivial taskbench:no_comm taskbench:stencil_1d
  taskbench:stencil_1d_periodic taskbench:fft taskbench:tree
  taskbench:all_to_all taskbench:spread"
for w in $WORKLOADS; do
  if ! "$RIOFLOW" lint --workload "$w" --tiles 4 --width 8 --steps 6 \
       --workers 2 >/dev/null; then
    fail "lint $w (expected clean)"
  fi
done

step "rioflow lint: seeded-bad fixtures must be caught"
for f in "lintfix:uninit-read warning" "lintfix:dead-write warning" \
         "lintfix:unused-handle warning" "lintfix:redundant-edge info" \
         "lintfix:phase-mapping error" "lintfix:empty-phase warning" \
         "lintfix:cross-phase-dep info" "lintfix:tiny-tasks warning"; do
  set -- $f
  if "$RIOFLOW" lint --workload "$1" --fail-on "$2" >/dev/null; then
    fail "lint $1 (expected findings)"
  fi
done

step "rioflow check: clean runs + injected race"
for e in rio rio-pruned coor; do
  if ! "$RIOFLOW" check --engine "$e" --workload stencil --width 6 --steps 4 \
       --task-size 50 --workers 2 >/dev/null; then
    fail "check engine $e (expected clean)"
  fi
done
if "$RIOFLOW" check --workload lintfix:race >/dev/null; then
  fail "check lintfix:race (expected a reported race)"
fi

step "rioflow chaos: quick fault sweep must match the oracle"
if ! "$RIOFLOW" chaos --quick --workers 2 >/dev/null; then
  fail "chaos --quick (stall, oracle mismatch or unexpected error)"
fi

step "rioflow chaos: crash faults must recover by evict-and-remap"
if ! "$RIOFLOW" chaos --quick --workers 3 --faults crash >/dev/null; then
  fail "chaos --faults crash (worker lost, oracle mismatch or error)"
fi

json_ok() {  # validate without depending on a system json tool chain
  if command -v python3 >/dev/null 2>&1; then
    python3 -m json.tool "$1" >/dev/null
  else
    [ -s "$1" ]  # last resort: non-empty
  fi
}

step "rioflow json reports: profile / chaos / lint (rio.*.v1 schemas)"
OBSDIR="$BUILD/obs-check"
mkdir -p "$OBSDIR"
for w in cholesky stencil; do
  for e in rio coor; do
    OBS="$OBSDIR/$w-$e.obs.json"
    TRACE="$OBSDIR/$w-$e.trace.json"
    if "$RIOFLOW" profile --quick --workload "$w" --engine "$e" --workers 2 \
         --json "$OBS" --trace "$TRACE" >/dev/null; then
      json_ok "$OBS" || fail "profile $w/$e: obs.json does not parse"
      json_ok "$TRACE" || fail "profile $w/$e: trace does not parse"
      grep -q '"rio.obs.v1"' "$OBS" || fail "profile $w/$e: missing schema tag"
    else
      fail "profile --quick $w/$e"
    fi
  done
done
if "$RIOFLOW" chaos --quick --workers 2 --json "$OBSDIR/chaos.json" \
     >/dev/null; then
  json_ok "$OBSDIR/chaos.json" || fail "chaos.json does not parse"
  grep -q '"rio.chaos.v2"' "$OBSDIR/chaos.json" ||
    fail "chaos.json: missing schema tag"
else
  fail "chaos --quick --json"
fi
# The fixture is seeded-bad, so lint exits non-zero AND writes the report.
"$RIOFLOW" lint --workload lintfix:dead-write --json "$OBSDIR/lint.json" \
  >/dev/null
if json_ok "$OBSDIR/lint.json"; then
  grep -q '"rio.lint.v1"' "$OBSDIR/lint.json" ||
    fail "lint.json: missing schema tag"
else
  fail "lint.json does not parse"
fi

step "rioflow blame: causal analyzer on real engines + exact simulator"
for e in rio coor sim-rio; do
  BLAME="$OBSDIR/blame-$e.json"
  if "$RIOFLOW" blame --quick --workload cholesky --tiles 4 --engine "$e" \
       --workers 2 --json "$BLAME" >/dev/null; then
    json_ok "$BLAME" || fail "blame $e: blame.json does not parse"
    grep -q '"rio.blame.v1"' "$BLAME" || fail "blame $e: missing schema tag"
  else
    fail "blame --quick --engine $e"
  fi
done

step "rioflow obs-diff: a report diffed against itself is zero drift"
SELF="$OBSDIR/cholesky-rio.obs.json"  # written by the profile step above
DIFFJSON="$OBSDIR/obsdiff.json"
if "$RIOFLOW" obs-diff "$SELF" "$SELF" --json "$DIFFJSON" >/dev/null; then
  json_ok "$DIFFJSON" || fail "obsdiff.json does not parse"
  grep -q '"rio.obsdiff.v1"' "$DIFFJSON" ||
    fail "obsdiff.json: missing schema tag"
  grep -q '"regressed": false' "$DIFFJSON" ||
    fail "obs-diff self-check: expected zero drift"
else
  fail "obs-diff self-check (expected exit 0)"
fi

step "rioflow engines: registry-driven smoke of every backend"
ENGJSON="$OBSDIR/engines.json"
if "$RIOFLOW" engines --json "$ENGJSON" >/dev/null; then
  json_ok "$ENGJSON" || fail "engines.json does not parse"
  grep -q '"rio.engines.v1"' "$ENGJSON" ||
    fail "engines.json: missing schema tag"
  if command -v python3 >/dev/null 2>&1; then
    ENGINES="$(python3 -c 'import json,sys
d = json.load(open(sys.argv[1]))
print(" ".join(e["name"] for e in d["engines"]))' "$ENGJSON")"
    OBS_ENGINES="$(python3 -c 'import json,sys
d = json.load(open(sys.argv[1]))
print(" ".join(e["name"] for e in d["engines"]
               if e["capabilities"]["supports_obs"]))' "$ENGJSON")"
  else
    # Degraded extraction without python3: names only, skip the obs sweep.
    ENGINES="$(grep -o '"name": "[^"]*"' "$ENGJSON" | cut -d'"' -f4)"
    OBS_ENGINES=""
  fi
  [ -n "$ENGINES" ] || fail "engines.json lists no backends"
  for e in $ENGINES; do
    "$RIOFLOW" --engine "$e" --workload cholesky --tiles 3 --task-size 50 \
      --workers 2 >/dev/null || fail "run --engine $e"
  done
  for e in $OBS_ENGINES; do
    "$RIOFLOW" profile --quick --workload cholesky --tiles 3 --workers 2 \
      --engine "$e" >/dev/null || fail "profile --engine $e"
  done
else
  fail "engines --json"
fi

step "rioflow optimize: fuse+map pipeline, byte-verified (rio.optimize.v1)"
# optimize byte-compares BOTH the optimized and unoptimized runs against the
# sequential oracle and exits 3 on any divergence, so a zero exit here IS the
# semantic-preservation proof on a real engine.
for w in "cholesky --tiles 4" "chain --tasks 64"; do
  set -- $w
  WL="$1"; shift
  for e in rio coor; do
    OPTJSON="$OBSDIR/optimize-$WL-$e.json"
    if "$RIOFLOW" optimize --workload "$WL" "$@" --task-size 5 --workers 2 \
         --engine "$e" --passes fuse,map --report --json "$OPTJSON" \
         >/dev/null; then
      json_ok "$OPTJSON" || fail "optimize $WL/$e: json does not parse"
      grep -q '"rio.optimize.v1"' "$OPTJSON" ||
        fail "optimize $WL/$e: missing schema tag"
    else
      fail "optimize $WL/$e (pipeline error or oracle mismatch)"
    fi
  done
done
# Tuned mapping search under the exact simulator must also verify + parse.
TUNEJSON="$OBSDIR/optimize-tuned.json"
if "$RIOFLOW" optimize --workload cholesky --tiles 4 --task-size 50 \
     --workers 2 --engine sim-rio --tune --json "$TUNEJSON" >/dev/null; then
  json_ok "$TUNEJSON" || fail "optimize --tune: json does not parse"
else
  fail "optimize --tune --engine sim-rio"
fi

step "bench json reporters"
# Run from the repo root: the reporters write BENCH_<id>.json into $PWD.
if (cd "$ROOT" && "$BUILD/bench/micro_unroll" --quick --json >/dev/null); then
  if ! json_ok "$ROOT/BENCH_unroll.json"; then
    fail "BENCH_unroll.json does not parse"
  fi
else
  fail "micro_unroll --quick --json"
fi
if (cd "$ROOT" && "$BUILD/bench/micro_protocol" --quick --json >/dev/null); then
  if ! json_ok "$ROOT/BENCH_protocol.json"; then
    fail "BENCH_protocol.json does not parse"
  fi
else
  fail "micro_protocol --quick --json"
fi
if (cd "$ROOT" && "$BUILD/bench/micro_recovery" --quick --json >/dev/null); then
  if ! json_ok "$ROOT/BENCH_recovery.json"; then
    fail "BENCH_recovery.json does not parse"
  fi
else
  fail "micro_recovery --quick --json"
fi
if (cd "$ROOT" && "$BUILD/bench/micro_obs" --quick --json >/dev/null); then
  if ! json_ok "$ROOT/BENCH_obs_overhead.json"; then
    fail "BENCH_obs_overhead.json does not parse"
  fi
else
  fail "micro_obs --quick --json"
fi
if (cd "$ROOT" && "$BUILD/bench/micro_fuse" --quick --json >/dev/null); then
  if ! json_ok "$ROOT/BENCH_fuse.json"; then
    fail "BENCH_fuse.json does not parse"
  fi
else
  fail "micro_fuse --quick --json"
fi
if (cd "$ROOT" && "$BUILD/bench/fig7_workers" --quick --json >/dev/null); then
  if ! json_ok "$ROOT/BENCH_fig7_workers.json"; then
    fail "BENCH_fig7_workers.json does not parse"
  fi
  rm -f "$ROOT/BENCH_fig7_workers.json"  # unroll stays; figures are transient
else
  fail "fig7_workers --quick --json"
fi

step "rioflow verify: model-check the real protocol (rio.verify.v1)"
VERJSON="$OBSDIR/verify.json"
for e in rio rio-pruned coor; do
  if ! "$RIOFLOW" verify --engine "$e" --workload chain --quick \
       >/dev/null; then
    fail "verify --engine $e --quick (expected zero violations)"
  fi
  # The parking rewrite: block-policy waits (doorbells on rio engines,
  # parked ring consumers on coor) must stay lost-wakeup free.
  if ! "$RIOFLOW" verify --engine "$e" --workload chain --quick \
       --policy block >/dev/null; then
    fail "verify --engine $e --policy block --quick"
  fi
  # The eviction protocol: explore the crash, then the resumed workers-1
  # configuration under the evicted mapping.
  if ! "$RIOFLOW" verify --engine "$e" --workload chain --quick \
       --recover >/dev/null; then
    fail "verify --engine $e --recover --quick"
  fi
done
for p in yield block; do
  if ! "$RIOFLOW" verify --engine coor --workload chain --quick \
       --queue ring --policy "$p" >/dev/null; then
    fail "verify --engine coor --queue ring --policy $p --quick"
  fi
done
if "$RIOFLOW" verify --engine rio --workload chain --quick \
     --json "$VERJSON" >/dev/null; then
  json_ok "$VERJSON" || fail "verify.json does not parse"
  grep -q '"rio.verify.v1"' "$VERJSON" ||
    fail "verify.json: missing schema tag"
else
  fail "verify --quick --json"
fi

step "thread sanitizer: resilience + modelcheck suites + quick chaos sweep"
if [ "${RIO_SKIP_TSAN:-0}" = "1" ]; then
  echo "RIO_SKIP_TSAN=1; skipping"
else
  TSAN_BUILD="$BUILD-tsan"
  if cmake -B "$TSAN_BUILD" -S "$ROOT" -DRIO_SANITIZE=thread \
       -DCMAKE_BUILD_TYPE=RelWithDebInfo >/dev/null &&
     cmake --build "$TSAN_BUILD" -j "$(nproc)" \
       --target failure_test modelcheck_test rioflow >/dev/null; then
    "$TSAN_BUILD/tests/failure_test" >/dev/null ||
      fail "failure_test under TSan"
    "$TSAN_BUILD/tests/modelcheck_test" >/dev/null ||
      fail "modelcheck_test under TSan"
    "$TSAN_BUILD/rioflow" chaos --quick --workers 2 >/dev/null ||
      fail "chaos --quick under TSan"
    # Worker-death recovery: the DeathBoard, dirty-span restore and
    # evict-and-resume paths race with the survivors by design.
    "$TSAN_BUILD/rioflow" chaos --quick --workers 3 --faults crash \
      >/dev/null || fail "chaos --faults crash under TSan"
    # New wait/notify configurations: doorbell-batched block wakeups on the
    # rio engines, the wait-free MPMC ring (spin + parked consumers) on coor.
    for e in rio rio-pruned; do
      "$TSAN_BUILD/rioflow" --engine "$e" --workload cholesky --tiles 3 \
        --task-size 50 --workers 2 --policy block >/dev/null ||
        fail "$e --policy block under TSan"
    done
    for p in spin block; do
      "$TSAN_BUILD/rioflow" --engine coor --workload cholesky --tiles 3 \
        --task-size 50 --workers 2 --queue ring --policy "$p" >/dev/null ||
        fail "coor --queue ring --policy $p under TSan"
    done
  else
    fail "TSan build (set RIO_SKIP_TSAN=1 to skip)"
  fi
fi

step "summary"
if [ "$FAILURES" -ne 0 ]; then
  echo "$FAILURES check(s) failed"
  exit 1
fi
echo "all checks passed"
