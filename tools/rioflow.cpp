// rioflow entry point — all logic lives in src/cli (testable).
#include <iostream>

#include "cli/cli.hpp"

int main(int argc, char** argv) {
  rio::cli::Options options;
  std::string error;
  if (!rio::cli::parse(argc, argv, options, error)) {
    std::cerr << "rioflow: " << error << "\n\n" << rio::cli::usage();
    return 1;
  }
  return rio::cli::run(options, std::cout, std::cerr);
}
