// Locality ablation — what a mapping-aware static placement buys when
// dependencies cost cache transfers.
//
// The simulator's cross_worker_latency models the cost of a dependency
// whose producer and consumer live on different workers (cache-to-cache /
// cross-socket transfer). The decentralized model pays it only on edges
// its STATIC mapping actually cuts; the queue-fed centralized model gives
// no producer-consumer affinity and pays on (almost) every edge. This is
// the simulator-level counterpart of the paper's locality efficiency e_l.
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "sim/sim.hpp"
#include "workloads/lu.hpp"
#include "workloads/stencil.hpp"

using namespace rio;

namespace {

void sweep(const char* name, const workloads::Workload& wl,
           const rt::Mapping& good, const rt::Mapping& bad,
           const bench::Options& opt) {
  std::cout << "-- " << name << " --\n";
  support::Table table({"cross_latency_ticks", "rio_good_map_ms",
                        "rio_bad_map_ms", "centralized_ms"});
  for (std::uint64_t lat : {0ull, 5'000ull, 20'000ull, 50'000ull}) {
    sim::DecentralizedParams dp;
    dp.workers = 24;
    dp.cross_worker_latency = lat;
    sim::CentralizedParams cp;
    cp.workers = 23;
    cp.cross_worker_latency = lat;
    const auto good_rep = sim::simulate_decentralized(wl.flow, good, dp);
    const auto bad_rep = sim::simulate_decentralized(wl.flow, bad, dp);
    const auto coor_rep = sim::simulate_centralized(wl.flow, cp);
    table.row()
        .integer(static_cast<long long>(lat))
        .num(static_cast<double>(good_rep.makespan) * 1e-6, 2)
        .num(static_cast<double>(bad_rep.makespan) * 1e-6, 2)
        .num(static_cast<double>(coor_rep.makespan) * 1e-6, 2);
  }
  bench::emit(table, opt);
}

}  // namespace

int main(int argc, char** argv) {
  const auto opt = bench::Options::parse(argc, argv);

  bench::header("Locality ablation",
                "cross-worker dependency latency vs mapping quality, 24 "
                "virtual threads, fine-grained tasks");

  {
    // Stencil at fine granularity: transfers are comparable to task cost,
    // so placement decisions become visible.
    workloads::StencilSpec spec;
    spec.chunks = 96;
    spec.steps = opt.quick ? 16 : 64;
    spec.task_cost = 5'000;
    spec.body = workloads::BodyKind::kNone;
    spec.num_workers = 24;
    auto wl = workloads::make_stencil_dag(spec);
    sweep("1-D stencil (neighbour edges)", wl, wl.mapping(24),
          rt::mapping::round_robin(24), opt);
  }
  {
    // LU: the owner-computes 2-D cyclic map localizes the C-chain updates.
    workloads::LuDagSpec spec;
    spec.row_tiles = opt.quick ? 12 : 20;
    spec.col_tiles = spec.row_tiles;
    spec.task_cost = 50'000;
    spec.body = workloads::BodyKind::kNone;
    spec.num_workers = 24;
    auto wl = workloads::make_lu_dag(spec);
    sweep("tiled LU (panel/update edges)", wl, wl.mapping(24),
          rt::mapping::round_robin(24), opt);
  }

  std::cout
      << "Two effects, both honest outputs of the model:\n"
         "  1. at fine granularity the centralized model loses on BOTH\n"
         "     fronts: the master bottleneck (flat floor at lat=0) plus a\n"
         "     transfer cost on every edge (it grows with the latency),\n"
         "     while static maps pay only on the edges they cut.\n"
         "  2. Between static maps the winner is workload-dependent: at\n"
         "     this depth an interleaved placement pipelines the stencil's\n"
         "     boundary transfers better than contiguous blocks, while the\n"
         "     in-order batching of several tasks per worker hides latency\n"
         "     entirely at coarse granularity (rerun with a larger\n"
         "     --task-size to see the columns converge).\n";
  return 0;
}
