// Figure 2 — Execution time vs task (tile) size for a 4096^2 GEMM under a
// centralized OoO runtime on 24 threads.
//
// Paper: StarPU + MKL DGEMM on a dual 12-core Xeon; time grows steeply as
// tiles shrink (kernel efficiency loss + runtime overhead + master
// bottleneck). Here: the discrete-event centralized model on 24 virtual
// threads (23 workers + master), with per-tile task costs from the
// Figure-3 kernel-efficiency model. The ideal line (perfect runtime, same
// kernel) separates the kernel-efficiency contribution from the runtime's.
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "sim/sim.hpp"
#include "workloads/gemm.hpp"
#include "workloads/kernel_model.hpp"

using namespace rio;

int main(int argc, char** argv) {
  const auto opt = bench::Options::parse(argc, argv);
  const std::uint32_t matrix = 4096;
  const std::vector<std::uint32_t> tiles =
      opt.quick ? std::vector<std::uint32_t>{256, 512, 1024, 2048}
                : std::vector<std::uint32_t>{64, 128, 256, 512, 1024, 2048};

  bench::header("Figure 2",
                "execution time vs tile size, 4096^2 GEMM, centralized OoO "
                "model, 24 virtual threads (23 workers + master)");

  const workloads::KernelModel kernel;  // analytic Fig-3 curve
  sim::CentralizedParams cp;            // defaults: 23 workers + master

  support::Table table(
      {"tile", "tasks", "task_cost_ticks", "time_ms_sim", "ideal_ms",
       "slowdown_vs_ideal"});
  for (std::uint32_t b : tiles) {
    const std::uint32_t nt = matrix / b;
    workloads::GemmDagSpec spec;
    spec.tiles = nt;
    spec.task_cost = kernel.tile_cost(b);
    spec.body = workloads::BodyKind::kNone;
    auto wl = workloads::make_gemm_dag(spec);

    const auto rep = sim::simulate_centralized(wl.flow, cp);
    stf::DependencyGraph graph(wl.flow);
    const auto ideal = sim::ideal_makespan(wl.flow, graph, 24);

    table.row()
        .integer(b)
        .integer(static_cast<long long>(wl.flow.num_tasks()))
        .integer(static_cast<long long>(spec.task_cost))
        .num(static_cast<double>(rep.makespan) * 1e-6, 3)
        .num(static_cast<double>(ideal) * 1e-6, 3)
        .num(static_cast<double>(rep.makespan) / static_cast<double>(ideal),
             3);
  }
  bench::emit(table, opt);

  std::cout << "Paper shape: time explodes for small tiles (runtime-bound),\n"
               "flattens near the ideal for large ones (kernel-bound).\n";
  return 0;
}
