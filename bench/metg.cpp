// METG — minimum effective task granularity, after Task Bench
// [Slaughter et al., SC20], the study that motivates the paper.
//
// For each dependence pattern and each execution model, sweep the task
// granularity downward and report the smallest task size whose overall
// efficiency (ideal time / achieved time on the same cores) stays >= 50%.
// Task Bench measured StarPU-class centralized runtimes at METG ~ 1e5 ns
// on ~24-core nodes; the paper's claim is that the decentralized in-order
// model pushes METG down by orders of magnitude. 24 virtual threads,
// instructions ~ ns (TimeScale default).
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "sim/sim.hpp"
#include "workloads/taskbench.hpp"

using namespace rio;

namespace {

double efficiency(std::uint64_t ideal, std::uint64_t actual) {
  return actual > 0 ? static_cast<double>(ideal) / static_cast<double>(actual)
                    : 1.0;
}

/// Smallest task size (log ladder) with efficiency >= 0.5, or 0 when even
/// the largest probed size stays below it.
template <typename RunFn>
std::uint64_t metg(const workloads::TaskBenchSpec& base, RunFn&& run) {
  std::uint64_t best = 0;
  for (std::uint64_t size = 100'000'000; size >= 100; size /= 10) {
    workloads::TaskBenchSpec spec = base;
    spec.task_cost = size;
    auto wl = workloads::make_taskbench(spec);
    stf::DependencyGraph graph(wl.flow);
    const auto ideal = sim::ideal_makespan(wl.flow, graph, 24);
    const auto actual = run(wl);
    if (efficiency(ideal, actual) >= 0.5)
      best = size;
    else
      break;  // efficiency is monotone in task size on these patterns
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  const auto opt = bench::Options::parse(argc, argv);
  const std::uint32_t width = 24;
  const std::uint32_t steps = opt.quick ? 16 : 64;

  bench::header("METG (Task Bench methodology)",
                "minimum task size with >= 50% efficiency, width " +
                    std::to_string(width) + " x " + std::to_string(steps) +
                    " steps, 24 virtual threads");

  sim::DecentralizedParams dp;  // 24 workers
  sim::CentralizedParams cp;    // 23 workers + master

  support::Table table({"pattern", "tasks", "metg_rio_instr",
                        "metg_centralized_instr", "ratio"});
  for (auto pattern : workloads::kAllTaskBenchPatterns) {
    workloads::TaskBenchSpec base;
    base.pattern = pattern;
    base.width = width;
    base.steps = steps;
    base.body = workloads::BodyKind::kNone;
    base.num_workers = 24;

    const auto rio_metg = metg(base, [&](const workloads::Workload& wl) {
      return sim::simulate_decentralized(wl.flow, wl.mapping(24), dp)
          .makespan;
    });
    sim::CentralizedParams cp_local = cp;
    const auto coor_metg = metg(base, [&](const workloads::Workload& wl) {
      return sim::simulate_centralized(wl.flow, cp_local).makespan;
    });

    auto row = table.row();
    row.str(workloads::to_string(pattern))
        .integer(static_cast<long long>(width) * steps)
        .integer(static_cast<long long>(rio_metg))
        .integer(static_cast<long long>(coor_metg));
    if (rio_metg > 0 && coor_metg > 0)
      row.num(static_cast<double>(coor_metg) / static_cast<double>(rio_metg),
              0);
    else
      row.str("-");
  }
  bench::emit(table, opt);

  std::cout
      << "Task Bench reports StarPU-class METG around 1e5 ns on 24-core\n"
         "nodes — matching the centralized column. The decentralized model\n"
         "sustains 50% efficiency at tasks 10-100x smaller except where\n"
         "the pattern itself serializes (all_to_all).\n";
  return 0;
}
