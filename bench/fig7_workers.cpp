// Figure 7 — Total execution time of 2^15 independent counter tasks PER
// WORKER, as a function of the worker count (paper: 64-core AMD EPYC).
//
// Paper: the decentralized model's time grows with the worker count even
// though per-worker work is constant, because every worker unrolls every
// worker's tasks (Section 3.5). Here: the decentralized model at 1..64
// virtual workers, plus the task-pruning variant (flat, since pruning
// removes the shared unrolling) and the centralized model (explodes much
// sooner: the master must dispatch w * 2^15 tasks serially).
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "sim/sim.hpp"
#include "workloads/synthetic.hpp"

using namespace rio;

int main(int argc, char** argv) {
  const auto opt = bench::Options::parse(argc, argv);
  bench::JsonReporter json("fig7_workers", opt);
  const std::uint64_t per_worker = opt.quick ? 1u << 12 : 1u << 15;
  const std::uint64_t task_size = 1u << 10;  // ~1 us tasks
  const std::vector<std::uint32_t> workers =
      opt.quick ? std::vector<std::uint32_t>{1, 8, 64}
                : std::vector<std::uint32_t>{1, 2, 4, 8, 16, 32, 64};

  bench::header(
      "Figure 7",
      std::to_string(per_worker) +
          " independent counter tasks per worker (task size " +
          std::to_string(task_size) + " instr) vs number of workers");

  support::Table table({"workers", "tasks", "rio_ms", "rio_pruned_ms",
                        "centralized_ms", "ideal_ms"});
  for (std::uint32_t w : workers) {
    workloads::IndependentSpec spec;
    spec.num_tasks = per_worker * w;
    spec.task_cost = task_size;
    spec.body = workloads::BodyKind::kNone;
    auto wl = workloads::make_independent(spec);
    // One compiled image serves all three simulated engines.
    const stf::FlowImage image = stf::FlowImage::compile(wl.flow);

    sim::DecentralizedParams dp;
    dp.workers = w;
    const auto full =
        sim::simulate_decentralized(image, rt::mapping::round_robin(w), dp);
    sim::DecentralizedParams pp = dp;
    pp.pruned = true;
    const auto pruned =
        sim::simulate_decentralized(image, rt::mapping::round_robin(w), pp);
    sim::CentralizedParams cp;
    cp.workers = w;  // w workers + 1 master: w+1 threads total
    const auto coor = sim::simulate_centralized(image, cp);
    stf::DependencyGraph graph(wl.flow);
    const auto ideal = sim::ideal_makespan(wl.flow, graph, w);

    table.row()
        .integer(w)
        .integer(static_cast<long long>(spec.num_tasks))
        .num(static_cast<double>(full.makespan) * 1e-6, 2)
        .num(static_cast<double>(pruned.makespan) * 1e-6, 2)
        .num(static_cast<double>(coor.makespan) * 1e-6, 2)
        .num(static_cast<double>(ideal) * 1e-6, 2);
  }
  bench::emit(table, opt, json, "scaling");

  std::cout << "Paper shape: RIO grows linearly with workers (duplicated\n"
               "unrolling); pruning flattens it; the centralized master\n"
               "serializes w*2^15 dispatches and grows far faster.\n";
  bench::finish(json);
  return 0;
}
