// Ablation benches for the design choices DESIGN.md calls out:
//
//   A. wait policy (spin / spin-yield / block) on a dependency-heavy flow
//      executed by the REAL RIO runtime;
//   B. task pruning (Section 3.5) on the simulator, sweeping worker count;
//   C. mapping family (round-robin vs block vs 2-D block-cyclic) on the
//      simulated LU DAG — the "proper task mapping supplied by the
//      programmer" premise of the paper's abstract;
//   D. centralized scheduler variant (fifo / lifo / locality / locality+
//      stealing) on the REAL centralized runtime.
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "coor/coor.hpp"
#include "rio/rio.hpp"
#include "sim/sim.hpp"
#include "support/clock.hpp"
#include "workloads/workloads.hpp"

using namespace rio;

namespace {

void ablate_wait_policy(const bench::Options& opt) {
  bench::header("Ablation A", "RIO wait policy on a cross-worker LU flow "
                              "(real threads; oversubscription-sensitive)");
  const std::uint32_t nt = opt.quick ? 4 : 6;
  support::Table table({"policy", "time_ms", "waits"});
  for (auto policy :
       {support::WaitPolicy::kSpin, support::WaitPolicy::kSpinYield,
        support::WaitPolicy::kBlock}) {
    workloads::LuDagSpec spec;
    spec.row_tiles = nt;
    spec.col_tiles = nt;
    spec.task_cost = 20'000;
    spec.num_workers = 2;
    auto wl = workloads::make_lu_dag(spec);
    rt::Runtime runtime(rt::Config{.num_workers = 2, .wait_policy = policy});
    support::Stopwatch sw;
    const auto stats = runtime.run(wl.flow, wl.mapping(2));
    std::uint64_t waits = 0;
    for (const auto& w : stats.workers) waits += w.waits;
    table.row()
        .str(support::to_string(policy))
        .num(sw.elapsed_s() * 1e3, 2)
        .integer(static_cast<long long>(waits));
  }
  bench::emit(table, opt);
}

void ablate_pruning(const bench::Options& opt) {
  bench::header("Ablation B", "task pruning vs full replay (simulated, "
                              "independent tasks, fixed work per worker)");
  support::Table table({"workers", "full_ms", "pruned_ms", "saving_pct"});
  const std::uint64_t per_worker = opt.quick ? 2048 : 16384;
  for (std::uint32_t w : {2u, 8u, 24u, 64u}) {
    workloads::IndependentSpec spec;
    spec.num_tasks = per_worker * w;
    spec.task_cost = 1000;
    spec.body = workloads::BodyKind::kNone;
    auto wl = workloads::make_independent(spec);
    sim::DecentralizedParams full;
    full.workers = w;
    auto pruned = full;
    pruned.pruned = true;
    const auto a =
        sim::simulate_decentralized(wl.flow, rt::mapping::round_robin(w), full);
    const auto b = sim::simulate_decentralized(
        wl.flow, rt::mapping::round_robin(w), pruned);
    table.row()
        .integer(w)
        .num(static_cast<double>(a.makespan) * 1e-6, 2)
        .num(static_cast<double>(b.makespan) * 1e-6, 2)
        .num(100.0 * (1.0 - static_cast<double>(b.makespan) /
                                static_cast<double>(a.makespan)),
             1);
  }
  bench::emit(table, opt);
}

void ablate_mapping(const bench::Options& opt) {
  bench::header("Ablation C", "mapping family on the simulated LU DAG "
                              "(24 workers): the static-mapping premise");
  const std::uint32_t nt = opt.quick ? 16 : 32;
  workloads::LuDagSpec spec;
  spec.row_tiles = nt;
  spec.col_tiles = nt;
  spec.task_cost = 50'000;
  spec.body = workloads::BodyKind::kNone;
  spec.num_workers = 24;
  auto wl = workloads::make_lu_dag(spec);
  const auto n = wl.flow.num_tasks();

  sim::DecentralizedParams dp;
  dp.workers = 24;
  stf::DependencyGraph graph(wl.flow);
  const auto ideal = sim::ideal_makespan(wl.flow, graph, 24);

  support::Table table({"mapping", "time_ms", "vs_ideal", "idle_share_pct"});
  auto eval = [&](const std::string& name, const rt::Mapping& m) {
    const auto rep = sim::simulate_decentralized(wl.flow, m, dp);
    const auto cum = rep.stats.cumulative();
    table.row()
        .str(name)
        .num(static_cast<double>(rep.makespan) * 1e-6, 2)
        .num(static_cast<double>(rep.makespan) / static_cast<double>(ideal),
             2)
        .num(100.0 * static_cast<double>(cum.idle_ns) /
                 static_cast<double>(cum.total()),
             1);
  };
  eval("round-robin", rt::mapping::round_robin(24));
  eval("block", rt::mapping::block(n, 24));
  eval("2d-block-cyclic(owner)", wl.mapping(24));
  bench::emit(table, opt);
  std::cout << "The owner-computes 2-D cyclic mapping is the \"proper\n"
               "mapping\" the paper's conclusions assume; block mapping\n"
               "serializes the factorization almost entirely.\n\n";
}

void ablate_scheduler(const bench::Options& opt) {
  bench::header("Ablation D", "centralized scheduler variants on the real "
                              "runtime (LU flow, counter tasks)");
  const std::uint32_t nt = opt.quick ? 4 : 6;
  support::Table table({"scheduler", "time_ms", "tasks"});
  struct Variant {
    const char* name;
    coor::SchedulerKind kind;
    bool steal;
  };
  for (const Variant& v :
       {Variant{"fifo", coor::SchedulerKind::kFifo, false},
        Variant{"lifo", coor::SchedulerKind::kLifo, false},
        Variant{"locality", coor::SchedulerKind::kLocality, false},
        Variant{"locality+steal", coor::SchedulerKind::kLocality, true},
        Variant{"priority(cp)", coor::SchedulerKind::kPriority, false}}) {
    workloads::LuDagSpec spec;
    spec.row_tiles = nt;
    spec.col_tiles = nt;
    spec.task_cost = 20'000;
    auto wl = workloads::make_lu_dag(spec);
    if (v.kind == coor::SchedulerKind::kPriority) {
      // Critical-path (bottom-level) priorities.
      stf::DependencyGraph g(wl.flow);
      const auto levels = g.bottom_levels(wl.flow);
      for (stf::TaskId t = 0; t < wl.flow.num_tasks(); ++t)
        wl.flow.set_priority(t, static_cast<std::int32_t>(levels[t]));
    }
    coor::Runtime runtime(coor::Config{.num_workers = 2,
                                       .scheduler = v.kind,
                                       .work_stealing = v.steal});
    support::Stopwatch sw;
    const auto stats = runtime.run(wl.flow);
    table.row()
        .str(v.name)
        .num(sw.elapsed_s() * 1e3, 2)
        .integer(static_cast<long long>(stats.tasks_executed()));
  }
  bench::emit(table, opt);
}

}  // namespace

int main(int argc, char** argv) {
  const auto opt = bench::Options::parse(argc, argv);
  ablate_wait_policy(opt);
  ablate_pruning(opt);
  ablate_mapping(opt);
  ablate_scheduler(opt);
  return 0;
}
