// Straggler ablation — the price of losing dynamic scheduling.
//
// The paper's abstract concedes that RIO trades "dynamic mapping for
// efficiency": a static mapping cannot route around a slow core. This
// bench quantifies that trade on the simulator: one of 24 workers runs at
// reduced speed, everything else is homogeneous. The dynamic centralized
// scheduler naturally gives the straggler fewer tasks; the static in-order
// mapping keeps feeding it its fixed share, and the whole machine waits.
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "sim/sim.hpp"
#include "workloads/synthetic.hpp"

using namespace rio;

int main(int argc, char** argv) {
  const auto opt = bench::Options::parse(argc, argv);
  const std::uint64_t n = opt.quick ? 4096 : 16384;
  const std::uint64_t task_cost = 1'000'000;  // coarse: isolate reactivity

  bench::header("Straggler ablation",
                std::to_string(n) + " independent 1e6-instr tasks, 24 "
                "threads, ONE worker slowed down");

  support::Table table({"straggler_speed", "rio_static_ms",
                        "centralized_dynamic_ms", "rio_penalty"});
  for (double speed : {1.0, 0.75, 0.5, 0.25, 0.1}) {
    workloads::IndependentSpec spec;
    spec.num_tasks = n;
    spec.task_cost = task_cost;
    spec.body = workloads::BodyKind::kNone;
    auto wl = workloads::make_independent(spec);

    sim::DecentralizedParams dp;
    dp.workers = 24;
    dp.worker_speed.assign(24, 1.0);
    dp.worker_speed[0] = speed;
    const auto rio_rep =
        sim::simulate_decentralized(wl.flow, rt::mapping::round_robin(24), dp);

    sim::CentralizedParams cp;
    cp.workers = 23;
    cp.worker_speed.assign(23, 1.0);
    cp.worker_speed[0] = speed;
    const auto coor_rep = sim::simulate_centralized(wl.flow, cp);

    table.row()
        .num(speed, 2)
        .num(static_cast<double>(rio_rep.makespan) * 1e-6, 1)
        .num(static_cast<double>(coor_rep.makespan) * 1e-6, 1)
        .num(static_cast<double>(rio_rep.makespan) /
                 static_cast<double>(coor_rep.makespan),
             2);
  }
  bench::emit(table, opt);

  std::cout
      << "With coarse tasks and a straggler, the DYNAMIC model wins — the\n"
         "flip side of Figures 6/8 and exactly the regime the paper says\n"
         "centralized OoO runtimes are built for. The hybrid runtime\n"
         "exists to get both halves (see bench/hpl_mixed_granularity).\n";
  return 0;
}
