// abl_wait_policy — the wait-policy ablation advertised in support/wait.hpp.
//
// Algorithm 2's two wait loops can spin, spin-then-yield, or park on a
// futex (std::atomic::wait). The right choice depends on whether stalls
// happen at all and on how oversubscribed the machine is, so the ablation
// runs the real rio engine over two extreme workloads:
//
//   * no-stall  — private per-worker chains (micro_unroll's workload): no
//     get_* ever waits, so the columns isolate each policy's PUBLICATION
//     cost (kBlock pays a notify per protocol write even with no waiter);
//   * ping-pong — one read-write chain alternating between two workers:
//     every task stalls on the other worker, so the columns show wake-up
//     latency and, on oversubscribed hosts, kSpin's livelock-by-timeslice
//     pathology (this is why the engines default to kSpinYield).
#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "rio/mapping.hpp"
#include "rio/runtime.hpp"
#include "support/clock.hpp"
#include "support/thread_pool.hpp"
#include "stf/flow_image.hpp"
#include "stf/task_flow.hpp"

using namespace rio;

namespace {

constexpr std::size_t kChains = 64;  // divisible by every tested p

stf::TaskFlow make_private_chains(std::size_t n) {
  stf::TaskFlow flow;
  std::vector<stf::DataHandle<std::uint64_t>> chain;
  chain.reserve(kChains);
  for (std::size_t c = 0; c < kChains; ++c)
    chain.push_back(
        flow.create_data<std::uint64_t>("chain" + std::to_string(c)));
  for (std::size_t i = 0; i < n; ++i)
    flow.add_virtual(0, {stf::write(chain[i % kChains])});
  return flow;
}

stf::TaskFlow make_pingpong(std::size_t n) {
  stf::TaskFlow flow;
  auto x = flow.create_data<std::uint64_t>("x");
  for (std::size_t i = 0; i < n; ++i)
    flow.add_virtual(0, {stf::readwrite(x)});
  return flow;
}

template <typename RunFn>
double min_wall_ms(int reps, RunFn&& run) {
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    support::Stopwatch sw;
    run();
    best = std::min(best, static_cast<double>(sw.elapsed_ns()) * 1e-6);
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  const auto opt = bench::Options::parse(argc, argv);
  bench::JsonReporter json("wait_policy", opt);

  const std::size_t n_free = opt.quick ? (1u << 12) : (1u << 15);
  const std::size_t n_ping = opt.quick ? 256 : 1024;
  const int reps = opt.quick ? 3 : 5;
  const std::vector<support::WaitPolicy> policies = {
      support::WaitPolicy::kSpin, support::WaitPolicy::kSpinYield,
      support::WaitPolicy::kBlock};

  bench::header("Ablation: wait policy",
                "publication cost (no-stall chains) and wake-up latency "
                "(cross-worker ping-pong) of spin / spin-yield / block");

  support::ThreadPool pool(2);
  const stf::TaskFlow free_flow = make_private_chains(n_free);
  const stf::FlowImage free_image = stf::FlowImage::compile(free_flow);
  const stf::TaskFlow ping_flow = make_pingpong(n_ping);
  const stf::FlowImage ping_image = stf::FlowImage::compile(ping_flow);
  const rt::Mapping two = rt::mapping::round_robin(2);

  support::Table no_stall(
      {"policy", "wall_ms", "ns_per_task"});
  support::Table pingpong(
      {"policy", "wall_ms", "us_per_handoff", "stalls"});
  for (const support::WaitPolicy policy : policies) {
    const rt::Config cfg{.num_workers = 2,
                         .wait_policy = policy,
                         .collect_stats = false};
    rt::Runtime eng(cfg);
    eng.attach_pool(&pool);
    const double free_ms =
        min_wall_ms(reps, [&] { eng.run(free_image, two); });
    no_stall.row()
        .str(support::to_string(policy))
        .num(free_ms, 3)
        .num(free_ms * 1e6 / static_cast<double>(n_free), 1);

    rt::Config scfg = cfg;
    scfg.collect_stats = true;  // count the stalls to prove the shape
    rt::Runtime stalling(scfg);
    stalling.attach_pool(&pool);
    std::uint64_t stalls = 0;
    const double ping_ms = min_wall_ms(reps, [&] {
      const auto stats = stalling.run(ping_image, two);
      stalls = 0;
      for (const auto& wst : stats.workers) stalls += wst.waits;
    });
    pingpong.row()
        .str(support::to_string(policy))
        .num(ping_ms, 3)
        .num(ping_ms * 1e3 / static_cast<double>(n_ping), 2)
        .integer(static_cast<long long>(stalls));
  }

  std::cout << "-- no-stall private chains (" << n_free << " tasks) --\n";
  bench::emit(no_stall, opt, json, "no_stall");
  std::cout << "-- cross-worker ping-pong (" << n_ping << " tasks) --\n";
  bench::emit(pingpong, opt, json, "pingpong");

  std::cout << "Expected shape: without stalls the policies tie (kBlock pays\n"
               "an uncontended notify per write); under ping-pong, kSpin\n"
               "degrades badly when workers outnumber cores while kBlock\n"
               "parks cleanly — the reason kSpinYield is the default.\n";
  bench::finish(json);
  return 0;
}
