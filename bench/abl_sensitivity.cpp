// Sensitivity of the headline result to the simulator's cost parameters.
//
// EXPERIMENTS.md's main threat to validity is that the multicore figures
// come from a simulator with calibrated per-model costs. This bench sweeps
// those costs over two orders of magnitude and reports where the
// RIO-vs-centralized crossover lands (the smallest task size at which the
// centralized model is within 1.5x of RIO): the paper's conclusion — RIO
// wins at fine granularity — must hold for EVERY plausible calibration,
// not just the default one.
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "sim/sim.hpp"
#include "workloads/synthetic.hpp"

using namespace rio;

namespace {

/// Smallest task size (instructions) at which centralized time <= 1.5x RIO
/// time, scanning a log grid. Returns 0 when centralized never catches up.
std::uint64_t crossover(const sim::DecentralizedParams& dp,
                        const sim::CentralizedParams& cp, std::uint64_t n) {
  for (std::uint64_t size = 100; size <= 100'000'000; size *= 10) {
    workloads::IndependentSpec spec;
    spec.num_tasks = n;
    spec.task_cost = size;
    spec.body = workloads::BodyKind::kNone;
    auto wl = workloads::make_independent(spec);
    const auto rio_rep = sim::simulate_decentralized(
        wl.flow, rt::mapping::round_robin(dp.workers), dp);
    const auto coor_rep = sim::simulate_centralized(wl.flow, cp);
    if (static_cast<double>(coor_rep.makespan) <=
        1.5 * static_cast<double>(rio_rep.makespan))
      return size;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const auto opt = bench::Options::parse(argc, argv);
  const std::uint64_t n = opt.quick ? 2048 : 8192;

  bench::header("Sensitivity",
                "crossover task size (centralized within 1.5x of RIO) vs "
                "simulator cost calibration, " +
                    std::to_string(n) + " independent tasks, 24 threads");

  // Sweep the centralized master cost (the paper's t_r,centralized).
  {
    support::Table table({"master_per_task_ticks", "crossover_instr"});
    for (std::uint64_t master : {150ull, 400ull, 1200ull, 4000ull, 12000ull}) {
      sim::DecentralizedParams dp;  // defaults
      sim::CentralizedParams cp;
      cp.master_per_task = master;
      table.row()
          .integer(static_cast<long long>(master))
          .integer(static_cast<long long>(crossover(dp, cp, n)));
    }
    std::cout << "-- centralized master cost sweep --\n";
    bench::emit(table, opt);
  }

  // Sweep RIO's skip cost (the paper's t_r,decentralized).
  {
    support::Table table(
        {"skip_per_task_ticks", "crossover_instr", "rio_floor_ms"});
    for (std::uint64_t skip : {1ull, 3ull, 10ull, 30ull, 100ull}) {
      sim::DecentralizedParams dp;
      dp.skip_per_task = skip;
      sim::CentralizedParams cp;
      workloads::IndependentSpec spec;
      spec.num_tasks = n;
      spec.task_cost = 100;
      spec.body = workloads::BodyKind::kNone;
      auto wl = workloads::make_independent(spec);
      const auto rep = sim::simulate_decentralized(
          wl.flow, rt::mapping::round_robin(24), dp);
      table.row()
          .integer(static_cast<long long>(skip))
          .integer(static_cast<long long>(crossover(dp, cp, n)))
          .num(static_cast<double>(rep.makespan) * 1e-6, 3);
    }
    std::cout << "-- RIO skip cost sweep --\n";
    bench::emit(table, opt);
  }

  std::cout << "Across two orders of magnitude in either calibration knob,\n"
               "the centralized model only becomes competitive at task\n"
               "sizes of 1e4-1e6 instructions — the paper's conclusion is\n"
               "not an artifact of the chosen constants.\n";
  return 0;
}
