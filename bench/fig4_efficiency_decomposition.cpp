// Figure 4 — Efficiency decomposition for the 4096^2 GEMM under the
// centralized OoO model (24 threads).
//
// Paper: e_g dominates at small tiles (kernel inefficiency), e_p peaks at
// mid granularity (enough parallelism without flooding the runtime), e_r
// is capped below (p-1)/p by the dedicated master. Here: the simulated
// centralized model with the Figure-3 kernel curve; locality is not
// modelled by the simulator, so e_l = 1 (the real-measurement counterpart
// of this decomposition is exercised by the rio/coor runtimes' stats in
// bench/abl_* and the examples).
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "metrics/efficiency.hpp"
#include "sim/sim.hpp"
#include "workloads/gemm.hpp"
#include "workloads/kernel_model.hpp"

using namespace rio;

int main(int argc, char** argv) {
  const auto opt = bench::Options::parse(argc, argv);
  const std::uint32_t matrix = 4096;
  const std::vector<std::uint32_t> tiles =
      opt.quick ? std::vector<std::uint32_t>{256, 1024}
                : std::vector<std::uint32_t>{64, 128, 256, 512, 1024, 2048};

  bench::header("Figure 4",
                "efficiency decomposition e = e_g*e_l*e_p*e_r, 4096^2 GEMM, "
                "centralized OoO model, 24 virtual threads");

  const workloads::KernelModel kernel;
  sim::CentralizedParams cp;

  support::Table table({"tile", "e_g", "e_l", "e_p", "e_r", "e"});
  for (std::uint32_t b : tiles) {
    workloads::GemmDagSpec spec;
    spec.tiles = matrix / b;
    spec.task_cost = kernel.tile_cost(b);
    spec.body = workloads::BodyKind::kNone;
    auto wl = workloads::make_gemm_dag(spec);

    const auto rep = sim::simulate_centralized(wl.flow, cp);
    const auto cum = rep.stats.cumulative();

    // Sequential reference times in the same virtual unit:
    //   t(g)  = total kernel work at this granularity (tau_{p,t} since the
    //           simulator has no locality effects),
    //   t     = the same work at the most efficient granularity.
    const double t_seq_g = static_cast<double>(cum.task_ns);
    const double best_eff = kernel.efficiency(2048);
    const double t_best = t_seq_g * kernel.efficiency(b) / best_eff;

    auto e = metrics::decompose(static_cast<std::uint64_t>(t_best),
                                static_cast<std::uint64_t>(t_seq_g), cum);
    table.row()
        .integer(b)
        .num(e.e_g, 3)
        .num(e.e_l, 3)
        .num(e.e_p, 3)
        .num(e.e_r, 3)
        .num(e.product(), 3);
  }
  bench::emit(table, opt);

  std::cout << "Paper shape: e_g climbs with tile size; e_p peaks at medium\n"
               "tiles; e_r stays below (p-1)/p = 0.958 (dedicated master)\n"
               "and collapses for tiny tiles (master-bound).\n";
  return 0;
}
