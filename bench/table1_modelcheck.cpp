// Table 1 — Model checking the STF and Run-In-Order specifications on the
// tiled-LU task graph with two workers.
//
// Paper (TLC, Java): generated/distinct states and wall time for LU 2x2,
// 3x2, 3x3; 3x3 Run-In-Order exceeded 48 h. Here: our explicit-state C++
// checker over the same state spaces. Distinct-state counts are directly
// comparable (same state variables: pendingTasks + workerStates) — and
// indeed match the paper's 23 / 94 / 655 for STF. "Generated" counts
// differ from TLC's (TLC re-generates states massively during its
// breadth-first fingerprinting), so compare growth, not absolutes.
// We extend the table with 4x3 and 4x4, out of TLC's practical reach.
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "modelcheck/spec.hpp"
#include "workloads/lu.hpp"

using namespace rio;

int main(int argc, char** argv) {
  const auto opt = bench::Options::parse(argc, argv);
  struct Size {
    std::uint32_t rows, cols;
    const char* paper_stf;  // paper's distinct-state count, "-" if absent
    const char* paper_rio;
  };
  std::vector<Size> sizes = {{2, 2, "23", "11"},
                             {3, 2, "94", "29"},
                             {3, 3, "655", ">48h"}};
  if (!opt.quick) {
    sizes.push_back({4, 3, "-", "-"});
    sizes.push_back({4, 4, "-", "-"});
  }

  bench::header("Table 1",
                "explicit-state checking of the STF and Run-In-Order "
                "specifications on tiled LU, 2 workers");

  support::Table table({"size", "tasks", "stf_generated", "stf_distinct",
                        "stf_paper_distinct", "stf_time_s", "rio_generated",
                        "rio_distinct", "rio_paper", "rio_time_s", "ok"});
  for (const auto& s : sizes) {
    workloads::LuDagSpec spec;
    spec.row_tiles = s.rows;
    spec.col_tiles = s.cols;
    spec.body = workloads::BodyKind::kNone;
    auto wl = workloads::make_lu_dag(spec);

    const auto stf_r = mc::check_stf(wl.flow, 2);
    const auto rio_r =
        mc::check_run_in_order(wl.flow, 2, rt::mapping::round_robin(2));

    table.row()
        .str(std::to_string(s.rows) + "x" + std::to_string(s.cols))
        .integer(static_cast<long long>(wl.flow.num_tasks()))
        .integer(static_cast<long long>(stf_r.generated_states))
        .integer(static_cast<long long>(stf_r.distinct_states))
        .str(s.paper_stf)
        .num(stf_r.seconds, 3)
        .integer(static_cast<long long>(rio_r.generated_states))
        .integer(static_cast<long long>(rio_r.distinct_states))
        .str(s.paper_rio)
        .num(rio_r.seconds, 3)
        .str(stf_r.ok() && rio_r.ok() ? "yes" : "VIOLATION: " +
                                                    stf_r.violation +
                                                    rio_r.violation);
  }
  bench::emit(table, opt);

  std::cout
      << "Properties verified in every state: data-race freedom, deadlock\n"
         "freedom, termination reachability; Run-In-Order steps checked\n"
         "against the STF guard (refinement). Distinct STF counts match\n"
         "the paper's TLC results exactly; Run-In-Order counts depend on\n"
         "the mapping (paper's mapping unpublished; ours is round-robin).\n";
  return 0;
}
