// Mixed-granularity LU with partial pivoting — the experiment the paper's
// conclusion asks for.
//
// Section 1 motivates the whole study with HPL: coarse trailing updates
// interleaved with fine-grained pivoting that centralized runtimes cannot
// execute efficiently. Section 6 proposes "combining both execution
// models (and thus requiring only partial mappings)". This bench runs that
// combination on the pivoted-LU flow (workloads::make_hpl_lu):
//
//   * pure centralized OoO       (no mapping needed, master-bound on the
//                                 fine pivot tasks)
//   * pure decentralized in-order (needs a FULL mapping, cheap fine tasks,
//                                 but static placement of the coarse ones)
//   * hybrid                     (partial mapping: fine tasks static,
//                                 coarse tasks dynamic)
//
// Simulated at 24 virtual threads; a --real mode runs the actual runtimes
// on a small instance for a host-level check.
#include <cstring>
#include <iostream>

#include "bench_common.hpp"
#include "coor/coor.hpp"
#include "hybrid/hybrid.hpp"
#include "rio/rio.hpp"
#include "sim/sim.hpp"
#include "support/clock.hpp"
#include "stf/sequential.hpp"
#include "workloads/workloads.hpp"

using namespace rio;

namespace {

void simulated(const bench::Options& opt) {
  const std::uint32_t nt = opt.quick ? 4 : 8;
  const std::uint32_t dim = opt.quick ? 64 : 128;
  bench::header("HPL mixed granularity (simulated)",
                "pivoted LU, " + std::to_string(nt) + "x" + std::to_string(nt) +
                    " tiles of " + std::to_string(dim) +
                    "^2, 24 virtual threads");

  workloads::TiledMatrix a(nt, dim);
  a.fill_random(123);
  auto hpl = workloads::make_hpl_lu(a, 24);
  const auto& flow = hpl.workload.flow;

  std::size_t fine = 0;
  for (auto o : hpl.workload.owners) fine += o != stf::kInvalidWorker;
  std::cout << flow.num_tasks() << " tasks (" << fine << " fine pivoting + "
            << flow.num_tasks() - fine << " coarse update)\n\n";

  sim::DecentralizedParams dp;
  dp.workers = 24;
  sim::CentralizedParams cp;
  cp.workers = 24;  // + master = 25 threads; hybrid/decentralized use 24+1

  const auto coor_rep = sim::simulate_centralized(flow, cp);
  const auto rio_rep =
      sim::simulate_decentralized(flow, hpl.full_mapping(), dp);
  const auto phases = hybrid::partition(flow, hpl.partial_mapping(), 24);
  const auto hyb_rep = sim::simulate_hybrid(flow, phases, dp, cp);

  stf::DependencyGraph graph(flow);
  const auto ideal = sim::ideal_makespan(flow, graph, 24);

  support::Table table({"model", "time_ms", "vs_ideal", "mapping_required"});
  auto row = [&](const char* name, const sim::Report& rep, const char* map) {
    table.row()
        .str(name)
        .num(static_cast<double>(rep.makespan) * 1e-6, 3)
        .num(static_cast<double>(rep.makespan) / static_cast<double>(ideal),
             2)
        .str(map);
  };
  row("centralized OoO", coor_rep, "none");
  row("decentralized in-order", rio_rep, "FULL (every task)");
  row("hybrid (paper Sec. 6)", hyb_rep, "partial (fine tasks only)");
  table.row().str("ideal").num(static_cast<double>(ideal) * 1e-6, 3).num(1.0, 2).str("-");
  bench::emit(table, opt);

  std::cout << "Expected shape: the centralized model pays its per-task\n"
               "dispatch on every fine pivoting task; the hybrid model\n"
               "matches the pure in-order runtime without demanding a\n"
               "mapping for the coarse phase (" << phases.size()
            << " phases).\n";
}

void real_threads(const bench::Options& opt) {
  const std::uint32_t nt = opt.quick ? 3 : 6;
  const std::uint32_t dim = 16;
  const std::uint32_t workers = 2;
  bench::header("HPL mixed granularity (real threads)",
                std::to_string(nt) + "x" + std::to_string(nt) + " tiles of " +
                    std::to_string(dim) + "^2, " + std::to_string(workers) +
                    " workers on the host");

  auto run = [&](const char* name, auto&& body) {
    workloads::TiledMatrix a(nt, dim);
    a.fill_random(321);
    workloads::TiledMatrix original = a;
    auto hpl = workloads::make_hpl_lu(a, workers);
    support::Stopwatch sw;
    body(hpl);
    const double ms = sw.elapsed_s() * 1e3;
    const double res = workloads::hpl_residual(original, a, *hpl.perm);
    std::cout << "  " << name << ": " << ms << " ms, residual " << res
              << (res < 1e-12 ? " (ok)" : " (FAIL)") << "\n";
  };

  run("sequential          ", [&](workloads::HplWorkload& h) {
    stf::SequentialExecutor{}.run(h.workload.flow);
  });
  run("centralized OoO     ", [&](workloads::HplWorkload& h) {
    coor::Runtime rt(coor::Config{.num_workers = workers});
    rt.run(h.workload.flow);
  });
  run("decentralized (RIO) ", [&](workloads::HplWorkload& h) {
    rt::Runtime rt(rt::Config{.num_workers = workers});
    rt.run(h.workload.flow, h.full_mapping());
  });
  run("hybrid              ", [&](workloads::HplWorkload& h) {
    hybrid::Runtime rt(hybrid::Config{.num_workers = workers});
    rt.run(h.workload.flow, h.partial_mapping());
  });
  std::cout << std::endl;
}

}  // namespace

int main(int argc, char** argv) {
  const auto opt = bench::Options::parse(argc, argv);
  simulated(opt);
  real_threads(opt);
  return 0;
}
