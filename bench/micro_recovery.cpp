// micro_recovery — price of the worker-loss recovery machinery.
//
// docs/robustness.md ("Worker loss and recovery") makes two promises this
// bench prices on the real engines:
//
//   * checkpointing is cheap — a live stf::CompletionBoard adds one relaxed
//     fetch_or per completed task (plus one sampled counter bump every 64),
//     so a fault-free run with the board attached must sit within noise of
//     the same run without it;
//   * recovery is bounded — after one mid-flow worker death, the
//     supervisor's restore + evict-and-remap + resume loop costs time
//     proportional to the surviving work, not to the whole flow: completed
//     tasks replay as protocol no-ops, so the resumed attempt only pays
//     full price for the unfinished suffix. Detection latency is the
//     watchdog tripwire's (~window/8) and is kept out of recovery_ms by
//     running a deliberately tight window here.
//
// Workloads: the checkpoint section reuses micro_obs's 64-chain stall-free
// construction (richer protocol traffic); the recovery section uses fully
// INDEPENDENT single-write tasks, because a chain workload that was
// stall-free at 4 workers serializes badly once the eviction leaves 3
// (64 % 3 != 0 interleaves every chain across workers) — that would price
// the remapped schedule, not the recovery machinery.
#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "engine/registry.hpp"
#include "engine/supervisor.hpp"
#include "support/clock.hpp"
#include "support/fault.hpp"
#include "rio/mapping.hpp"
#include "stf/frontier.hpp"
#include "stf/task_flow.hpp"

using namespace rio;

namespace {

// Task i writes chain i mod kChains; kChains divisible by every tested
// worker count, so round-robin keeps each chain on one worker and the
// measured time contains no dependency stalls.
constexpr std::size_t kChains = 64;

stf::TaskFlow make_chains(std::size_t n) {
  stf::TaskFlow flow;
  std::vector<stf::DataHandle<std::uint64_t>> chain;
  chain.reserve(kChains);
  for (std::size_t c = 0; c < kChains; ++c)
    chain.push_back(
        flow.create_data<std::uint64_t>("chain" + std::to_string(c)));
  for (std::size_t i = 0; i < n; ++i)
    flow.add_virtual(0, {stf::write(chain[i % kChains])});
  return flow;
}

// Every task writes its own datum: no cross-worker dependencies under ANY
// mapping, so the resumed (evicted) schedule is as stall-free as the
// original and the measured recovery time is pure machinery cost.
stf::TaskFlow make_independent(std::size_t n) {
  stf::TaskFlow flow;
  for (std::size_t i = 0; i < n; ++i)
    flow.add_virtual(
        0, {stf::write(flow.create_data<std::uint64_t>("d" +
                                                       std::to_string(i)))});
  return flow;
}

template <typename RunFn>
double min_wall_ms(int reps, RunFn&& run) {
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    support::Stopwatch sw;
    run();
    best = std::min(best, static_cast<double>(sw.elapsed_ns()) * 1e-6);
  }
  return best;
}

/// The registry backends whose caps advertise supports_recovery — the
/// exact set the supervisor can evict-and-remap over.
std::vector<const engine::Backend*> recovery_backends() {
  std::vector<const engine::Backend*> out;
  for (const engine::Backend* b : engine::Registry::instance().all())
    if (b->caps().supports_recovery) out.push_back(b);
  return out;
}

engine::Launch base_launch(const engine::Backend& b, std::uint32_t workers) {
  engine::Launch l;
  l.workers = workers;
  l.wait_policy = support::WaitPolicy::kSpin;
  l.collect_stats = false;
  if (b.caps().needs_mapping) l.mapping = rt::mapping::round_robin(workers);
  return l;
}

}  // namespace

int main(int argc, char** argv) {
  const auto opt = bench::Options::parse(argc, argv);
  bench::JsonReporter json("recovery", opt);

  const std::uint32_t workers = 4;
  const std::size_t n = opt.quick ? (1u << 12) : (1u << 15);
  const int reps = opt.quick ? 3 : 7;

  bench::header("micro_recovery",
                "checkpointed completion frontier + evict-and-remap "
                "recovery cost on every supports_recovery engine");
  json.note("workers", std::to_string(workers));
  json.note("tasks", std::to_string(n));

  const std::vector<const engine::Backend*> engines = recovery_backends();

  // ------------------------------------------------------------------
  // (a) Fault-free checkpoint overhead: the same run with and without a
  //     live CompletionBoard at the default 64-completion sample stride.
  // ------------------------------------------------------------------
  {
    const stf::TaskFlow flow = make_chains(n);
    const stf::FlowImage image = stf::FlowImage::compile(flow);

    support::Table table(
        {"engine", "mode", "wall_ms", "ns_per_task", "delta_ns"});
    for (const engine::Backend* b : engines) {
      const engine::Launch launch = base_launch(*b, workers);

      const double off_ms = min_wall_ms(
          reps, [&] { (void)b->run(image, launch); });

      stf::CompletionBoard board;
      board.reset(image.first_id(), image.size(),
                  stf::CompletionBoard::kDefaultSampleEvery);
      engine::Launch with_board = launch;
      with_board.checkpoint = &board;
      const double board_ms = min_wall_ms(reps, [&] {
        board.clear();
        (void)b->run(image, with_board);
      });

      const auto add = [&](const char* mode, double ms) {
        table.row()
            .str(std::string(b->name()))
            .str(mode)
            .num(ms, 3)
            .num(ms * 1e6 / static_cast<double>(n), 1)
            .num((ms - off_ms) * 1e6 / static_cast<double>(n), 1);
      };
      add("off", off_ms);
      add("board", board_ms);
    }
    bench::emit(table, opt, json, "checkpoint_overhead");
    std::cout << "Expected shape: board within noise of off (one relaxed "
                 "fetch_or per task; the sampled counter bumps once per 64 "
                 "completions).\n\n";
  }

  // ------------------------------------------------------------------
  // (b) Recovery latency: one worker dies right after executing task
  //     n/2; engine::run_supervised restores the dirty spans, evicts the
  //     dead id and resumes from the captured frontier. recovery_ms is
  //     the supervisor's own clock (loss caught -> resumed run done), so
  //     it excludes the watchdog detection window.
  // ------------------------------------------------------------------
  {
    const std::vector<std::size_t> sizes =
        opt.quick ? std::vector<std::size_t>{1u << 10, 1u << 12}
                  : std::vector<std::size_t>{1u << 12, 1u << 14};

    support::Table table({"engine", "tasks", "wall_ms", "recovery_ms",
                          "evictions", "replayed"});
    for (const engine::Backend* b : engines) {
      for (const std::size_t sz : sizes) {
        const stf::TaskFlow flow = make_independent(sz);
        const stf::FlowImage image = stf::FlowImage::compile(flow);

        support::FaultPlan plan;
        plan.crash_tasks = {sz / 2};
        plan.max_crashes = 1;

        engine::Outcome last;
        const double wall_ms = min_wall_ms(reps, [&] {
          support::FaultInjector injector(plan);
          engine::Launch launch = base_launch(*b, workers);
          launch.fault = &injector;
          // Tight window so the tripwire (~window/8 poll) reports the
          // death in ~5ms instead of the production default.
          launch.watchdog_ns = 40'000'000;
          last = engine::run_supervised(*b, image, launch);
        });

        table.row()
            .str(std::string(b->name()))
            .integer(static_cast<std::uint64_t>(sz))
            .num(wall_ms, 3)
            .num(static_cast<double>(last.recovery_wall_ns) * 1e-6, 3)
            .integer(last.evictions)
            .integer(last.tasks_replayed);
      }
    }
    bench::emit(table, opt, json, "recovery_latency");
    std::cout << "Expected shape: recovery_ms grows with the unfinished "
                 "suffix plus the replayed-prefix no-op walk, and stays a "
                 "small fraction of wall_ms; replayed tracks the frontier "
                 "captured at the loss.\n";
  }

  bench::finish(json);
  return 0;
}
