// Figure 8 — Efficiency decomposition vs task size, RIO vs centralized
// OoO, on the four synthetic experiments of Section 5.1:
//
//   1. independent tasks
//   2. random dependencies (128 data objects, 2 random reads + 1 random
//      write per task)
//   3. the matrix-multiplication dependency graph
//   4. the LU-factorization (no pivoting) dependency graph
//
// All tasks are the paper's synthetic counter kernel, so e_g = e_l = 1 and
// only the pipelining efficiency e_p and runtime efficiency e_r remain
// (Section 5.1). 24 virtual threads (RIO: 24 workers; centralized: 23
// workers + one dedicated master, as in StarPU).
#include <functional>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "metrics/efficiency.hpp"
#include "sim/sim.hpp"
#include "workloads/workloads.hpp"

using namespace rio;

namespace {

struct Experiment {
  std::string name;
  std::function<workloads::Workload(std::uint64_t task_cost,
                                    std::uint32_t workers)>
      make;
};

void run_experiment(const Experiment& exp, const bench::Options& opt) {
  const std::vector<std::uint64_t> sizes =
      opt.quick ? std::vector<std::uint64_t>{1'000, 1'000'000}
                : std::vector<std::uint64_t>{100, 1'000, 10'000, 100'000,
                                             1'000'000, 10'000'000};
  constexpr std::uint32_t kThreads = 24;

  std::cout << "--- Experiment: " << exp.name << " ---\n";
  support::Table table({"task_size", "rio_e_p", "rio_e_r", "rio_e",
                        "coor_e_p", "coor_e_r", "coor_e"});
  for (std::uint64_t sz : sizes) {
    auto wl_rio = exp.make(sz, kThreads);
    sim::DecentralizedParams dp;
    dp.workers = kThreads;
    const auto rio_rep =
        sim::simulate_decentralized(wl_rio.flow, wl_rio.mapping(kThreads), dp);
    const auto rio_e =
        metrics::decompose_synthetic(rio_rep.stats.cumulative());

    auto wl_coor = exp.make(sz, kThreads);
    sim::CentralizedParams cp;
    cp.workers = kThreads - 1;  // 23 workers + master = 24 threads
    const auto coor_rep = sim::simulate_centralized(wl_coor.flow, cp);
    const auto coor_e =
        metrics::decompose_synthetic(coor_rep.stats.cumulative());

    table.row()
        .integer(static_cast<long long>(sz))
        .num(rio_e.e_p, 3)
        .num(rio_e.e_r, 3)
        .num(rio_e.product(), 3)
        .num(coor_e.e_p, 3)
        .num(coor_e.e_r, 3)
        .num(coor_e.product(), 3);
  }
  bench::emit(table, opt);
}

}  // namespace

int main(int argc, char** argv) {
  const auto opt = bench::Options::parse(argc, argv);
  const std::uint64_t n = opt.quick ? 2048 : 16384;

  bench::header("Figure 8",
                "efficiency decomposition vs task size, RIO vs centralized "
                "OoO, 24 virtual threads, counter kernel (e_g = e_l = 1)");

  const std::vector<Experiment> experiments = {
      {"1: independent tasks",
       [n](std::uint64_t cost, std::uint32_t workers) {
         workloads::IndependentSpec spec;
         spec.num_tasks = n;
         spec.task_cost = cost;
         spec.body = workloads::BodyKind::kNone;
         spec.num_workers = workers;
         return workloads::make_independent(spec);
       }},
      {"2: random dependencies (128 data, 2R+1W per task)",
       [n](std::uint64_t cost, std::uint32_t workers) {
         workloads::RandomDepsSpec spec;
         spec.num_tasks = n;
         spec.task_cost = cost;
         spec.body = workloads::BodyKind::kNone;
         spec.num_workers = workers;
         return workloads::make_random_deps(spec);
       }},
      {"3: matrix-multiplication DAG",
       [](std::uint64_t cost, std::uint32_t workers) {
         workloads::GemmDagSpec spec;
         spec.tiles = 24;  // 13824 tasks
         spec.task_cost = cost;
         spec.body = workloads::BodyKind::kNone;
         spec.num_workers = workers;
         return workloads::make_gemm_dag(spec);
       }},
      {"4: LU factorization DAG (no pivoting)",
       [](std::uint64_t cost, std::uint32_t workers) {
         workloads::LuDagSpec spec;
         spec.row_tiles = 32;  // 11440 tasks
         spec.col_tiles = 32;
         spec.task_cost = cost;
         spec.body = workloads::BodyKind::kNone;
         spec.num_workers = workers;
         return workloads::make_lu_dag(spec);
       }},
  };

  for (const auto& exp : experiments) run_experiment(exp, opt);

  std::cout
      << "Paper shape: the centralized model's e_p collapses below ~1e5-1e6\n"
         "instructions on every experiment (master-bound); RIO keeps high\n"
         "efficiency to ~1e3-1e4 on experiments 1 and 3 (few/read-mostly\n"
         "synchronizations) and is limited by e_p (dependency stalls) on\n"
         "experiments 2 and 4.\n";
  return 0;
}
