// Figure 6 — Execution time vs task size for a fixed number of independent
// counter-increment tasks: centralized (StarPU-like) vs decentralized
// in-order (RIO).
//
// Paper: on 24 cores, StarPU's time is flat (per-task master cost
// dominates) until tasks reach ~1e5-1e6 instructions, while RIO tracks the
// ideal down to ~1e3-1e4 instructions. Here: both discrete-event models at
// the calibrated default costs, 24 virtual threads, plus the ideal line.
// A secondary real-thread mode (--real) runs the actual runtimes with the
// counter kernel at small scale for a host-level sanity check.
#include <cstring>
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "rio/rio.hpp"
#include "sim/sim.hpp"
#include "support/clock.hpp"
#include "workloads/synthetic.hpp"

using namespace rio;

namespace {

void simulated(const bench::Options& opt) {
  const std::uint64_t n = opt.quick ? 4096 : 16384;
  const std::vector<std::uint64_t> sizes =
      opt.quick
          ? std::vector<std::uint64_t>{100, 10'000, 1'000'000}
          : std::vector<std::uint64_t>{100, 1'000, 10'000, 100'000, 1'000'000,
                                       10'000'000, 100'000'000};

  bench::header("Figure 6",
                "time vs task size, " + std::to_string(n) +
                    " independent counter tasks, 24 virtual threads "
                    "(RIO: 24 workers; centralized: 23 workers + master)");

  sim::DecentralizedParams dp;  // 24 workers
  sim::CentralizedParams cp;    // 23 + master

  support::Table table({"task_size_instr", "rio_ms", "centralized_ms",
                        "ideal_ms", "rio_vs_ideal", "centralized_vs_ideal"});
  for (std::uint64_t sz : sizes) {
    workloads::IndependentSpec spec;
    spec.num_tasks = n;
    spec.task_cost = sz;
    spec.body = workloads::BodyKind::kNone;
    auto wl = workloads::make_independent(spec);

    const auto rio_rep =
        sim::simulate_decentralized(wl.flow, rt::mapping::round_robin(24), dp);
    const auto coor_rep = sim::simulate_centralized(wl.flow, cp);
    stf::DependencyGraph graph(wl.flow);
    const auto ideal = sim::ideal_makespan(wl.flow, graph, 24);

    table.row()
        .integer(static_cast<long long>(sz))
        .num(static_cast<double>(rio_rep.makespan) * 1e-6, 3)
        .num(static_cast<double>(coor_rep.makespan) * 1e-6, 3)
        .num(static_cast<double>(ideal) * 1e-6, 3)
        .num(static_cast<double>(rio_rep.makespan) /
                 static_cast<double>(ideal),
             2)
        .num(static_cast<double>(coor_rep.makespan) /
                 static_cast<double>(ideal),
             2);
  }
  bench::emit(table, opt);

  std::cout << "Paper shape: centralized time is flat below the crossover\n"
               "(master-bound: n * t_master), RIO follows the ideal well\n"
               "into fine granularity.\n";
}

void real_threads(const bench::Options& opt) {
  // Host check with the actual runtimes and the actual counter kernel.
  // Worker counts are kept small: the reproduction host may have 1 core,
  // and this mode demonstrates correctness + relative per-task overhead,
  // not 24-core scaling.
  const std::uint64_t n = opt.quick ? 2000 : 20000;
  const std::uint32_t workers = 2;
  bench::header("Figure 6 (real-thread mode)",
                std::to_string(n) + " independent counter tasks, " +
                    std::to_string(workers) + "+ workers on the host");

  support::Table table(
      {"task_size_instr", "rio_ms", "centralized_ms", "sequential_ms"});
  for (std::uint64_t sz : {100ull, 1000ull, 10000ull}) {
    workloads::IndependentSpec spec;
    spec.num_tasks = n;
    spec.task_cost = sz;
    spec.body = workloads::BodyKind::kCounter;

    // One launcher for every column: the engine::Registry dispatches by
    // name, so this bench never touches an engine-specific Config again.
    const auto measure_ms = [&](const char* engine_name) {
      auto wl = workloads::make_independent(spec);
      const auto image = stf::FlowImage::compile(wl.flow);
      engine::Launch launch;
      launch.workers = workers;
      launch.collect_stats = false;
      support::Stopwatch sw;
      (void)bench::run_backend(engine_name, image, launch);
      return sw.elapsed_s() * 1e3;
    };

    table.row()
        .integer(static_cast<long long>(sz))
        .num(measure_ms("rio"), 2)
        .num(measure_ms("coor"), 2)
        .num(measure_ms("seq"), 2);
  }
  bench::emit(table, opt);
}

}  // namespace

int main(int argc, char** argv) {
  const auto opt = bench::Options::parse(argc, argv, {"--real"});
  bool real = false;
  for (int i = 1; i < argc; ++i)
    if (std::strcmp(argv[i], "--real") == 0) real = true;
  simulated(opt);
  if (real || !opt.quick) real_threads(opt);
  return 0;
}
