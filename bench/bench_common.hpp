// Shared plumbing for the figure-reproduction binaries.
//
// Every bench prints (a) a header identifying the experiment and the
// parameters used, (b) a human-readable aligned table whose rows mirror the
// series of the paper's figure, and (c) optionally the same data as CSV
// (--csv) for plotting. --quick shrinks problem sizes for smoke runs.
#pragma once

#include <cstdint>
#include <cstring>
#include <iostream>
#include <string>

#include "support/format.hpp"

namespace rio::bench {

struct Options {
  bool csv = false;
  bool quick = false;

  static Options parse(int argc, char** argv) {
    Options o;
    for (int i = 1; i < argc; ++i) {
      if (std::strcmp(argv[i], "--csv") == 0) o.csv = true;
      if (std::strcmp(argv[i], "--quick") == 0) o.quick = true;
      if (std::strcmp(argv[i], "--help") == 0 ||
          std::strcmp(argv[i], "-h") == 0) {
        std::cout << "options: --csv (machine-readable) --quick (small sizes)\n";
        std::exit(0);
      }
    }
    return o;
  }
};

inline void header(const std::string& id, const std::string& what) {
  std::cout << "==========================================================\n"
            << id << ": " << what << "\n"
            << "==========================================================\n";
}

inline void emit(const support::Table& table, const Options& opt) {
  if (opt.csv)
    table.print_csv(std::cout);
  else
    table.print(std::cout);
  std::cout << std::endl;
}

}  // namespace rio::bench
