// Shared plumbing for the figure-reproduction binaries.
//
// Every bench prints (a) a header identifying the experiment and the
// parameters used, (b) a human-readable aligned table whose rows mirror the
// series of the paper's figure, and (c) optionally the same data as CSV
// (--csv) or a structured JSON report (--json, written to BENCH_<id>.json
// in the current directory — see docs/perf.md). --quick shrinks problem
// sizes for smoke runs. Unknown flags are an error: a typo'd flag silently
// running the full-size experiment wastes minutes before anyone notices.
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "engine/registry.hpp"
#include "support/format.hpp"
#include "stf/flow_image.hpp"

namespace rio::bench {

/// Launches registry backend `name` on `image` — the bench-side consumer of
/// the engine seam (docs/engines.md). needs_mapping backends whose Launch
/// carries no mapping get round-robin over launch.workers, so a bench can
/// sweep engines by name with zero per-engine dispatch. An unknown name
/// aborts the bench with the registry's structured error (exit 2); a knob
/// the backend lacks propagates as engine::UnsupportedLaunch.
inline engine::Outcome run_backend(const std::string& name,
                                   const stf::FlowImage& image,
                                   engine::Launch launch = {}) {
  std::string error;
  const engine::Backend* backend =
      engine::Registry::instance().find_or_error(name, error);
  if (backend == nullptr) {
    std::cerr << error << "\n";
    std::exit(2);
  }
  if (backend->caps().needs_mapping && !launch.mapping.valid())
    launch.mapping = rt::mapping::round_robin(launch.workers);
  return backend->run(image, launch);
}

struct Options {
  bool csv = false;
  bool quick = false;
  bool json = false;

  /// Parses the common flags. `extra` lists additional flags the CALLING
  /// bench handles itself (e.g. fig6's --real) so they pass validation;
  /// anything else prints usage and exits non-zero.
  static Options parse(int argc, char** argv,
                       const std::vector<std::string>& extra = {}) {
    Options o;
    for (int i = 1; i < argc; ++i) {
      if (std::strcmp(argv[i], "--csv") == 0) {
        o.csv = true;
      } else if (std::strcmp(argv[i], "--quick") == 0) {
        o.quick = true;
      } else if (std::strcmp(argv[i], "--json") == 0) {
        o.json = true;
      } else if (std::strcmp(argv[i], "--help") == 0 ||
                 std::strcmp(argv[i], "-h") == 0) {
        std::cout << usage(extra);
        std::exit(0);
      } else {
        bool known = false;
        for (const std::string& e : extra)
          if (e == argv[i]) known = true;
        if (!known) {
          std::cerr << "unknown option: " << argv[i] << "\n" << usage(extra);
          std::exit(2);
        }
      }
    }
    return o;
  }

  static std::string usage(const std::vector<std::string>& extra) {
    std::string u =
        "options: --csv (machine-readable) --quick (small sizes) "
        "--json (write BENCH_<id>.json)";
    for (const std::string& e : extra) u += " " + e;
    u += "\n";
    return u;
  }
};

inline void header(const std::string& id, const std::string& what) {
  std::cout << "==========================================================\n"
            << id << ": " << what << "\n"
            << "==========================================================\n";
}

/// Accumulates the tables a bench emits and writes them as one JSON report
/// BENCH_<id>.json: {"bench": id, "quick": ..., "sections": {name: [row
/// objects keyed by column]}, "notes": {...}}. Cells that parse as numbers
/// are emitted raw so downstream tooling gets real numerics. Inactive
/// (records nothing, writes nothing) unless the bench ran with --json.
class JsonReporter {
 public:
  JsonReporter(std::string id, const Options& opt)
      : id_(std::move(id)), active_(opt.json), quick_(opt.quick) {}

  void add(const std::string& section, const support::Table& table) {
    if (active_) sections_.emplace_back(section, table);
  }

  void note(const std::string& key, const std::string& value) {
    if (active_) notes_.emplace_back(key, value);
  }

  /// Writes BENCH_<id>.json into the current directory; returns the file
  /// name (empty when inactive).
  std::string write() const {
    if (!active_) return {};
    const std::string path = "BENCH_" + id_ + ".json";
    std::ofstream os(path);
    os << "{\n  \"bench\": " << quote(id_) << ",\n"
       << "  \"quick\": " << (quick_ ? "true" : "false") << ",\n"
       << "  \"notes\": {";
    for (std::size_t i = 0; i < notes_.size(); ++i)
      os << (i ? ", " : "") << quote(notes_[i].first) << ": "
         << cell(notes_[i].second);
    os << "},\n  \"sections\": {\n";
    for (std::size_t s = 0; s < sections_.size(); ++s) {
      const auto& [name, table] = sections_[s];
      os << "    " << quote(name) << ": [\n";
      const auto& cols = table.header();
      const auto& rows = table.rows();
      for (std::size_t r = 0; r < rows.size(); ++r) {
        os << "      {";
        for (std::size_t c = 0; c < cols.size() && c < rows[r].size(); ++c)
          os << (c ? ", " : "") << quote(cols[c]) << ": " << cell(rows[r][c]);
        os << "}" << (r + 1 < rows.size() ? "," : "") << "\n";
      }
      os << "    ]" << (s + 1 < sections_.size() ? "," : "") << "\n";
    }
    os << "  }\n}\n";
    return path;
  }

 private:
  static std::string quote(const std::string& s) {
    std::string out = "\"";
    for (char ch : s) {
      switch (ch) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\t': out += "\\t"; break;
        default:
          if (static_cast<unsigned char>(ch) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof buf, "\\u%04x", ch);
            out += buf;
          } else {
            out += ch;
          }
      }
    }
    out += '"';
    return out;
  }

  /// Numbers pass through raw (so JSON consumers get numerics), everything
  /// else is quoted.
  static std::string cell(const std::string& s) {
    if (!s.empty()) {
      char* end = nullptr;
      std::strtod(s.c_str(), &end);
      if (end == s.c_str() + s.size()) return s;
    }
    return quote(s);
  }

  std::string id_;
  bool active_ = false;
  bool quick_ = false;
  std::vector<std::pair<std::string, support::Table>> sections_;
  std::vector<std::pair<std::string, std::string>> notes_;
};

inline void emit(const support::Table& table, const Options& opt) {
  if (opt.csv)
    table.print_csv(std::cout);
  else
    table.print(std::cout);
  std::cout << std::endl;
}

/// Print AND record under `section` in the JSON report.
inline void emit(const support::Table& table, const Options& opt,
                 JsonReporter& json, const std::string& section) {
  emit(table, opt);
  json.add(section, table);
}

/// Writes the report (if --json) and tells the user where it went.
inline void finish(const JsonReporter& json) {
  const std::string path = json.write();
  if (!path.empty()) std::cout << "json report: " << path << "\n";
}

}  // namespace rio::bench
