// micro_fuse — what the flowpass fuse/map passes buy (BENCH_fuse.json).
//
// The paper's Fig. 2-4 decomposition shows fine-grained flows drowning in
// per-task runtime overhead (e_r): below ~10us of work per task the
// protocol costs more than the kernels. `optimize --passes fuse` attacks
// exactly that regime by collapsing chains of tiny tasks into composite
// bodies, paying the publication protocol once per GROUP instead of once
// per task. This bench quantifies the win three ways:
//
//   * real      — fine-grained chain and gemm flows with counter-kernel
//                 bodies on the real rio engine: wall time unfused vs
//                 fused (same bodies, same total work);
//   * virtual   — the same rewrite under sim-rio: virtual makespan ticks,
//                 bit-deterministic, machine-comparable;
//   * tune      — the map pass's candidate search with --tune scoring:
//                 every candidate's simulated makespan, proving the chosen
//                 mapping never regresses the round-robin identity.
#include <algorithm>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "bench_common.hpp"
#include "engine/registry.hpp"
#include "flowpass/pass.hpp"
#include "rio/mapping.hpp"
#include "stf/flow_image.hpp"
#include "stf/task_flow.hpp"
#include "support/clock.hpp"
#include "workloads/workloads.hpp"

using namespace rio;

namespace {

/// `chains` independent chains of `len` tiny counter tasks each. Chains are
/// disjoint, so fusion can collapse every one of them while the flow still
/// scales across workers.
stf::TaskFlow make_fine_chains(std::size_t chains, std::size_t len,
                               std::uint64_t iters) {
  stf::TaskFlow flow;
  std::vector<stf::DataHandle<std::uint64_t>> data;
  data.reserve(chains);
  for (std::size_t c = 0; c < chains; ++c)
    data.push_back(
        flow.create_data<std::uint64_t>("chain" + std::to_string(c)));
  for (std::size_t i = 0; i < chains * len; ++i)
    flow.add("t" + std::to_string(i), workloads::counter_body(iters),
             {stf::readwrite(data[i % chains])}, /*cost=*/iters);
  return flow;
}

stf::TaskFlow make_fine_gemm(std::uint32_t tiles, std::uint64_t iters) {
  workloads::GemmDagSpec s;
  s.tiles = tiles;
  s.task_cost = iters;
  s.body = workloads::BodyKind::kCounter;
  s.num_workers = 4;
  return workloads::make_gemm_dag(s).flow;
}

double min_wall_ms(int reps, const engine::Backend& backend,
                   const stf::FlowImage& image, const engine::Launch& launch) {
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    support::Stopwatch sw;
    (void)backend.run(image, launch);
    best = std::min(best, static_cast<double>(sw.elapsed_ns()) * 1e-6);
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  const auto opt = bench::Options::parse(argc, argv);
  bench::JsonReporter json("fuse", opt);

  const std::size_t len = opt.quick ? 256 : 2048;
  const std::size_t chains = 8;
  const std::uint64_t iters = 16;  // far below the ~10us overhead knee
  const int reps = opt.quick ? 3 : 7;

  bench::header("micro_fuse",
                "flowpass fusion on fine-grained flows: wall time and "
                "virtual makespan, unfused vs `optimize --passes fuse`");

  flowpass::PassOptions popts;
  popts.fuse_threshold = 1000;
  popts.fuse_max_group = 16;

  const engine::Backend& rio_eng = *engine::Registry::instance().find("rio");
  const engine::Backend& sim_eng =
      *engine::Registry::instance().find("sim-rio");

  std::vector<std::pair<std::string, stf::TaskFlow>> flows;
  flows.emplace_back("chain-fine", make_fine_chains(chains, len, iters));
  flows.emplace_back("gemm-fine",
                     make_fine_gemm(opt.quick ? 6 : 10, iters));

  support::Table real({"workload", "workers", "tasks_unfused", "tasks_fused",
                       "unfused_ms", "fused_ms", "speedup"});
  support::Table virt({"workload", "workers", "unfused_ticks", "fused_ticks",
                       "speedup"});

  for (auto& [name, flow] : flows) {
    const stf::FlowImage image = stf::FlowImage::compile(flow);
    for (const std::uint32_t w : {2u, 4u}) {
      popts.workers = w;
      const flowpass::PipelineResult fused =
          flowpass::run_pipeline(image, {"fuse"}, popts);
      if (!fused.ok()) {
        std::cerr << "fuse failed: " << fused.error << "\n";
        return 1;
      }

      engine::Launch launch;
      launch.workers = w;
      launch.mapping = rt::mapping::round_robin(w);
      launch.collect_stats = false;

      const double unfused_ms = min_wall_ms(reps, rio_eng, image, launch);
      const double fused_ms = min_wall_ms(reps, rio_eng, fused.image, launch);
      real.row()
          .str(name)
          .integer(w)
          .integer(static_cast<long long>(image.size()))
          .integer(static_cast<long long>(fused.image.size()))
          .num(unfused_ms, 3)
          .num(fused_ms, 3)
          .num(unfused_ms / fused_ms, 2);

      engine::Launch sim_launch = launch;
      sim_launch.collect_stats = true;
      const std::uint64_t unfused_ticks =
          sim_eng.run(image, sim_launch).makespan;
      const std::uint64_t fused_ticks =
          sim_eng.run(fused.image, sim_launch).makespan;
      virt.row()
          .str(name)
          .integer(w)
          .integer(static_cast<long long>(unfused_ticks))
          .integer(static_cast<long long>(fused_ticks))
          .num(static_cast<double>(unfused_ticks) /
                   static_cast<double>(fused_ticks),
               2);
    }
  }
  std::cout << "-- real (rio engine, counter bodies, best of " << reps
            << ") --\n";
  bench::emit(real, opt, json, "real");
  std::cout << "-- virtual (sim-rio makespan ticks) --\n";
  bench::emit(virt, opt, json, "virtual");

  // Tuning: the map pass scored by simulated makespan. The round-robin
  // identity is always candidate 0, so "chosen <= identity" is visible in
  // the table itself.
  {
    workloads::CholeskyDagSpec s;
    s.tiles = opt.quick ? 6 : 10;
    s.task_cost = 40;
    s.body = workloads::BodyKind::kNone;
    s.num_workers = 4;
    stf::TaskFlow flow = workloads::make_cholesky_dag(s).flow;
    const stf::FlowImage image = stf::FlowImage::compile(flow);
    flowpass::PassOptions tune_opts;
    tune_opts.workers = 4;
    tune_opts.tune = true;
    const flowpass::PipelineResult tuned =
        flowpass::run_pipeline(image, {"map"}, tune_opts);
    if (!tuned.ok()) {
      std::cerr << "map --tune failed: " << tuned.error << "\n";
      return 1;
    }
    support::Table tune(
        {"workload", "candidate", "virtual_makespan", "chosen"});
    for (const flowpass::TuneStep& t : tuned.passes.front().tuning)
      tune.row()
          .str("cholesky-dag")
          .str(t.candidate)
          .integer(static_cast<long long>(t.score))
          .str(t.chosen ? "yes" : "");
    std::cout << "-- tune (map pass, simulated scoring, 4 workers) --\n";
    bench::emit(tune, opt, json, "tune");
  }

  std::cout << "Expected shape: fused wall time and ticks below unfused on "
               "both flows (protocol paid per composite, not per task); the "
               "chosen mapping's makespan never exceeds round-robin's.\n";
  bench::finish(json);
  return 0;
}
