// Figure 3 — Sequential GEMM kernel efficiency vs tile size.
//
// Paper: Intel MKL DGEMM on a 4096x4096 multiply, 1 thread; efficiency
// falls as tiles shrink because cache reuse shrinks with them.
// Here: our own blocked_dgemm (DESIGN.md substitution) on a matrix scaled
// to the host budget. The reported series is e_g(b) = t(best) / t(b),
// exactly the paper's definition; the GFLOP/s column shows the absolute
// kernel speed for context.
#include <cstdint>
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "support/clock.hpp"
#include "support/rng.hpp"
#include "workloads/dense.hpp"

using namespace rio;

namespace {

double time_blocked(std::size_t n, std::size_t block, int reps) {
  std::vector<double> a(n * n), b(n * n), c(n * n);
  support::Xoshiro256 rng(7);
  for (auto& v : a) v = rng.uniform();
  for (auto& v : b) v = rng.uniform();
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    std::fill(c.begin(), c.end(), 0.0);
    support::Stopwatch sw;
    workloads::blocked_dgemm(c.data(), a.data(), b.data(), n, block);
    best = std::min(best, sw.elapsed_s());
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  const auto opt = bench::Options::parse(argc, argv);
  const std::size_t n = opt.quick ? 256 : 512;
  const int reps = opt.quick ? 1 : 2;
  const std::vector<std::size_t> blocks =
      opt.quick ? std::vector<std::size_t>{8, 32, 128, 256}
                : std::vector<std::size_t>{8, 16, 32, 64, 128, 256, 512};

  bench::header("Figure 3",
                "sequential kernel efficiency vs tile size (real host "
                "measurement, matrix " +
                    std::to_string(n) + "^2, our blocked DGEMM)");

  std::vector<double> times;
  times.reserve(blocks.size());
  for (std::size_t b : blocks) times.push_back(time_blocked(n, b, reps));
  const double best = *std::min_element(times.begin(), times.end());

  support::Table table({"tile", "time_s", "gflops", "efficiency_eg"});
  for (std::size_t i = 0; i < blocks.size(); ++i) {
    table.row()
        .integer(static_cast<long long>(blocks[i]))
        .num(times[i], 4)
        .num(workloads::gemm_flops(n) / times[i] * 1e-9, 3)
        .num(best / times[i], 4);
  }
  bench::emit(table, opt);

  std::cout << "Paper shape: efficiency rises monotonically with tile size\n"
               "and saturates once tiles amortize cache traffic.\n";
  return 0;
}
