// micro_unroll — per-task replay overhead of the decentralized unroll.
//
// The paper's cost model prices a NON-mapped task at one or two private
// writes per access; everything else a replay pays on top of that is
// representation overhead. This bench isolates it by replaying the same
// flow three ways on the real rio engine:
//
//   * streaming      — Runtime::run(FlowRange): walks the AoS Task array
//                      (std::function + std::string per record);
//   * image          — Runtime::run(FlowImage): walks the compiled SoA
//                      image (stf/flow_image.hpp), 8-byte spans + flat
//                      access array;
//   * pruned-image   — PrunedRuntime::run(FlowImage, Mapping): each worker
//                      only visits its own tasks; the plan comes from the
//                      internal cache, so repeated runs pay zero
//                      recompilation.
//
// The workload is stall-free by construction (see make_chains), so wall
// time is pure unroll + protocol publication cost, swept across worker
// counts and wait policies.
#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "rio/mapping.hpp"
#include "rio/pruning.hpp"
#include "rio/runtime.hpp"
#include "support/clock.hpp"
#include "support/thread_pool.hpp"
#include "stf/flow_image.hpp"
#include "stf/task_flow.hpp"

using namespace rio;

namespace {

// Task i writes chain i mod kChains. kChains is divisible by every tested
// worker count, so under a round-robin mapping each chain lives entirely on
// one worker: no get_* ever has to wait on another worker and the measured
// time contains no dependency stalls.
constexpr std::size_t kChains = 64;

stf::TaskFlow make_chains(std::size_t n) {
  stf::TaskFlow flow;
  std::vector<stf::DataHandle<std::uint64_t>> chain;
  chain.reserve(kChains);
  for (std::size_t c = 0; c < kChains; ++c)
    chain.push_back(
        flow.create_data<std::uint64_t>("chain" + std::to_string(c)));
  for (std::size_t i = 0; i < n; ++i)
    flow.add_virtual(0, {stf::write(chain[i % kChains])});
  return flow;
}

template <typename RunFn>
double min_wall_ms(int reps, RunFn&& run) {
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    support::Stopwatch sw;
    run();
    best = std::min(best, static_cast<double>(sw.elapsed_ns()) * 1e-6);
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  const auto opt = bench::Options::parse(argc, argv);
  bench::JsonReporter json("unroll", opt);

  const std::size_t n = opt.quick ? (1u << 13) : (1u << 16);
  const int reps = opt.quick ? 3 : 7;
  const std::vector<std::uint32_t> workers = {1, 2, 4};
  const std::vector<support::WaitPolicy> policies = {
      support::WaitPolicy::kSpin, support::WaitPolicy::kSpinYield,
      support::WaitPolicy::kBlock};

  bench::header("micro_unroll",
                std::to_string(n) +
                    " empty single-write tasks, stall-free chains; replay "
                    "overhead per task: streaming vs image vs pruned image");

  const stf::TaskFlow flow = make_chains(n);

  support::Stopwatch compile_sw;
  const stf::FlowImage image = stf::FlowImage::compile(flow);
  const double compile_ms =
      static_cast<double>(compile_sw.elapsed_ns()) * 1e-6;
  json.note("tasks", std::to_string(n));
  json.note("image_compile_ms", std::to_string(compile_ms));

  support::ThreadPool pool(
      *std::max_element(workers.begin(), workers.end()));

  support::Table table(
      {"workers", "policy", "engine", "wall_ms", "ns_per_task"});
  std::uint64_t total_plan_compiles = 0;
  for (const std::uint32_t w : workers) {
    const rt::Mapping mapping = rt::mapping::round_robin(w);
    for (const support::WaitPolicy policy : policies) {
      const rt::Config cfg{.num_workers = w,
                           .wait_policy = policy,
                           .collect_stats = false};
      rt::Runtime eng(cfg);
      eng.attach_pool(&pool);
      rt::PrunedRuntime pruned(cfg);
      pruned.attach_pool(&pool);

      const double streaming_ms = min_wall_ms(
          reps, [&] { eng.run(stf::FlowRange(flow), mapping); });
      const double image_ms =
          min_wall_ms(reps, [&] { eng.run(image, mapping); });
      // First call compiles the plan into the cache; every rep after (and
      // every future run with this image+mapping) replays it for free.
      const double pruned_ms =
          min_wall_ms(reps, [&] { pruned.run(image, mapping); });
      total_plan_compiles += pruned.plan_compiles();

      const auto add = [&](const char* engine, double ms) {
        table.row()
            .integer(w)
            .str(support::to_string(policy))
            .str(engine)
            .num(ms, 3)
            .num(ms * 1e6 / static_cast<double>(n), 1);
      };
      add("streaming", streaming_ms);
      add("image", image_ms);
      add("pruned-image", pruned_ms);
    }
  }
  bench::emit(table, opt, json, "unroll");
  json.note("plan_compiles", std::to_string(total_plan_compiles));

  std::cout << "image compile: " << compile_ms << " ms for "
            << n << " tasks; pruned plans compiled " << total_plan_compiles
            << "x (one per worker-count/policy runtime, cached across "
            << reps << " reps each)\n"
            << "Expected shape: image < streaming per task (dense spans vs "
               "AoS Task records); pruned-image lowest (each worker visits "
               "only its own tasks).\n";
  bench::finish(json);
  return 0;
}
