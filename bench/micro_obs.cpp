// micro_obs — per-task cost of the rio::obs telemetry layer.
//
// docs/observability.md promises that counters alone are cheap enough to
// leave on in production runs and that a disabled hub costs nothing. This
// bench prices all three tiers on the real rio engine with a stall-free
// chain workload (same construction as micro_unroll, so wall time is pure
// protocol + instrumentation cost):
//
//   * off        — Config::obs == nullptr: the per-worker lens is unbound
//                  and every obs call is a null-check;
//   * counters   — Hub without a recorder: per-worker cache-line-padded
//                  increments only; the engine's `timed` flag stays false,
//                  so no clock reads are added;
//   * recorder   — Hub with per-worker event rings: every task body becomes
//                  a timed span pushed into a fixed ring (two clock reads
//                  plus one 40-byte store per phase);
//   * sampled    — recorder at --sample 8: the ring keeps every 8th span,
//                  shaving the store (the clock reads remain), so this
//                  tier bounds what sampling can and cannot buy.
//
// Expected shape: counters within noise of off; recorder adds a bounded
// constant per task (clock reads dominate), comparable to collect_stats;
// sampled sits between counters and recorder.
#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "obs/obs.hpp"
#include "rio/mapping.hpp"
#include "rio/runtime.hpp"
#include "support/clock.hpp"
#include "support/thread_pool.hpp"
#include "stf/task_flow.hpp"

using namespace rio;

namespace {

// Task i writes chain i mod kChains; kChains divisible by every tested
// worker count, so round-robin keeps each chain on one worker and the
// measured time contains no dependency stalls.
constexpr std::size_t kChains = 64;

stf::TaskFlow make_chains(std::size_t n) {
  stf::TaskFlow flow;
  std::vector<stf::DataHandle<std::uint64_t>> chain;
  chain.reserve(kChains);
  for (std::size_t c = 0; c < kChains; ++c)
    chain.push_back(
        flow.create_data<std::uint64_t>("chain" + std::to_string(c)));
  for (std::size_t i = 0; i < n; ++i)
    flow.add_virtual(0, {stf::write(chain[i % kChains])});
  return flow;
}

template <typename RunFn>
double min_wall_ms(int reps, RunFn&& run) {
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    support::Stopwatch sw;
    run();
    best = std::min(best, static_cast<double>(sw.elapsed_ns()) * 1e-6);
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  const auto opt = bench::Options::parse(argc, argv);
  bench::JsonReporter json("obs_overhead", opt);

  const std::size_t n = opt.quick ? (1u << 13) : (1u << 16);
  const int reps = opt.quick ? 3 : 7;
  const std::vector<std::uint32_t> workers = {1, 2, 4};

  bench::header("micro_obs",
                std::to_string(n) +
                    " empty single-write tasks, stall-free chains; per-task "
                    "telemetry cost: obs off vs counters vs counters+ring");
  json.note("tasks", std::to_string(n));

  const stf::TaskFlow flow = make_chains(n);
  support::ThreadPool pool(
      *std::max_element(workers.begin(), workers.end()));

  support::Table table(
      {"workers", "mode", "wall_ms", "ns_per_task", "vs_off_ns"});
  for (const std::uint32_t w : workers) {
    const rt::Mapping mapping = rt::mapping::round_robin(w);

    const auto run_mode = [&](obs::Hub* hub) {
      rt::Runtime eng(rt::Config{.num_workers = w,
                                 .wait_policy = support::WaitPolicy::kSpin,
                                 .collect_stats = false,
                                 .obs = hub});
      eng.attach_pool(&pool);
      return min_wall_ms(reps, [&] {
        if (hub != nullptr) hub->reset();
        eng.run(stf::FlowRange(flow), mapping);
      });
    };

    const double off_ms = run_mode(nullptr);

    obs::HubOptions counters_only;
    counters_only.recorder = false;
    obs::Hub chub(counters_only);
    const double counters_ms = run_mode(&chub);

    obs::HubOptions with_ring;
    with_ring.recorder = true;
    obs::Hub rhub(with_ring);
    const double recorder_ms = run_mode(&rhub);

    obs::HubOptions sampled;
    sampled.recorder = true;
    sampled.sample = 8;
    obs::Hub shub(sampled);
    const double sampled_ms = run_mode(&shub);

    const auto add = [&](const char* mode, double ms) {
      table.row()
          .integer(w)
          .str(mode)
          .num(ms, 3)
          .num(ms * 1e6 / static_cast<double>(n), 1)
          .num((ms - off_ms) * 1e6 / static_cast<double>(n), 1);
    };
    add("off", off_ms);
    add("counters", counters_ms);
    add("counters+ring", recorder_ms);
    add("ring 1-in-8", sampled_ms);
  }
  bench::emit(table, opt, json, "obs_overhead");

  std::cout << "Expected shape: counters within noise of off (padded "
               "per-worker increments, no clock reads); counters+ring adds "
               "a bounded constant per task from the two clock reads and "
               "one ring store per phase; ring 1-in-8 keeps the clock reads "
               "but skips 7 of 8 stores.\n";
  bench::finish(json);
  return 0;
}
