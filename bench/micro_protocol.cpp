// micro_protocol — wait/notify hot-path cost of both runtimes.
//
// Two stall-free workload shapes (round-robin mapping keeps every chain on
// one worker, so wall time is pure unroll + protocol publication cost):
//
//   * section "protocol" — the micro_unroll shape (1 write/task, 64
//     chains), swept across workers x policy x engine, so spin rows are
//     directly comparable with BENCH_unroll.json;
//   * section "fan" — 8 writes/task (8 chain groups x 8 chains), where
//     per-word notify cost dominates the block policy: the shape that
//     shows the doorbell-batching win.
//
// Engines:
//   * rio / rio-pruned — Algorithm 2 publications; under kBlock the
//     per-worker doorbells batch wakeups (src/rio/doorbell.hpp);
//   * rio-wordnotify / rio-pruned-wordnotify (block rows only) — the same
//     runtimes with Config::doorbells off: the legacy per-word notify_all
//     path, i.e. the measured pre-change baseline;
//   * coor-locked — centralized runtime, mutex+condvar ReadyQueue;
//   * coor-ring — centralized runtime, wait-free MPMC ready ring
//     (coor/ready_ring.hpp).
//
// Each configuration is timed cold (no telemetry, collect_stats off), then
// re-run once with an obs::Hub attached to count wakeups: wakeups/task is
// the notify-attempt rate, issued/task the real syscall rate, elided/task
// the batching/elision win. BENCH_protocol.json is the trend file
// tools/run_checks.sh refreshes and validates (docs/perf.md).
#include <algorithm>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "coor/runtime.hpp"
#include "obs/obs.hpp"
#include "rio/mapping.hpp"
#include "rio/pruning.hpp"
#include "rio/runtime.hpp"
#include "support/clock.hpp"
#include "support/thread_pool.hpp"
#include "stf/flow_image.hpp"
#include "stf/task_flow.hpp"

using namespace rio;

namespace {

constexpr std::size_t kChains = 64;

// micro_unroll shape: task i writes chain i mod kChains; kChains is
// divisible by every tested worker count, so round-robin keeps each chain
// worker-local and the run is stall-free by construction.
stf::TaskFlow make_chains(std::size_t n) {
  stf::TaskFlow flow;
  std::vector<stf::DataHandle<std::uint64_t>> chain;
  chain.reserve(kChains);
  for (std::size_t c = 0; c < kChains; ++c)
    chain.push_back(
        flow.create_data<std::uint64_t>("chain" + std::to_string(c)));
  for (std::size_t i = 0; i < n; ++i)
    flow.add_virtual(0, {stf::write(chain[i % kChains])});
  return flow;
}

// Fan shape: task i writes all kFan chains of group i mod kGroups. Still
// stall-free (group g tasks stay on worker g mod w for every tested w),
// but each task makes kFan publications — the per-word notify multiplier.
constexpr std::size_t kGroups = 8;
constexpr std::size_t kFan = kChains / kGroups;

stf::TaskFlow make_fans(std::size_t n) {
  stf::TaskFlow flow;
  std::vector<stf::DataHandle<std::uint64_t>> chain;
  chain.reserve(kChains);
  for (std::size_t c = 0; c < kChains; ++c)
    chain.push_back(
        flow.create_data<std::uint64_t>("chain" + std::to_string(c)));
  for (std::size_t i = 0; i < n; ++i) {
    stf::AccessList acc;
    for (std::size_t j = 0; j < kFan; ++j)
      acc.push_back(stf::write(chain[(i % kGroups) * kFan + j]));
    flow.add_virtual(0, acc);
  }
  return flow;
}

template <typename RunFn>
double min_wall_ms(int reps, RunFn&& run) {
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    support::Stopwatch sw;
    run();
    best = std::min(best, static_cast<double>(sw.elapsed_ns()) * 1e-6);
  }
  return best;
}

struct Sweep {
  bench::JsonReporter* json = nullptr;
  const bench::Options* opt = nullptr;
  support::ThreadPool* pool = nullptr;
  std::size_t n = 0;
  int reps = 0;
  bool with_coor = false;  ///< coor rows only where comparable (1 write/task)
};

void run_section(const Sweep& s, const char* section,
                 const stf::FlowImage& image) {
  support::Table table({"workers", "policy", "engine", "wall_ms",
                        "ns_per_task", "wakeups_per_task", "issued_per_task",
                        "elided_per_task"});
  const double dn = static_cast<double>(s.n);

  for (const std::uint32_t w : {1u, 2u, 4u}) {
    const rt::Mapping mapping = rt::mapping::round_robin(w);
    for (const support::WaitPolicy policy :
         {support::WaitPolicy::kSpin, support::WaitPolicy::kSpinYield,
          support::WaitPolicy::kBlock}) {
      // One timed (telemetry-free) + one counted (obs-attached) engine per
      // configuration; the counted run never contributes to wall_ms.
      // make_run constructs the engine eagerly (outside the stopwatch, as
      // micro_unroll does) and returns the per-rep run closure, so reps
      // after the first measure steady state: cached pruned plan, recycled
      // sync-word arenas.
      const auto measure = [&](const char* engine, auto&& make_run) {
        const double ms = min_wall_ms(s.reps, make_run(nullptr));
        obs::Hub hub;
        make_run(&hub)();
        const obs::CounterSnapshot snap = hub.counter_snapshot();
        const auto per_task = [&](obs::Counter c) {
          return static_cast<double>(snap.total(c)) / dn;
        };
        table.row()
            .integer(w)
            .str(support::to_string(policy))
            .str(engine)
            .num(ms, 3)
            .num(ms * 1e6 / dn, 1)
            .num(per_task(obs::Counter::kWakeups), 3)
            .num(per_task(obs::Counter::kWakeupsIssued), 3)
            .num(per_task(obs::Counter::kWakeupsElided), 3);
      };

      const auto rio_cfg = [&](obs::Hub* hub, bool doorbells) {
        rt::Config cfg;
        cfg.num_workers = w;
        cfg.wait_policy = policy;
        cfg.collect_stats = false;
        cfg.doorbells = doorbells;
        cfg.obs = hub;
        return cfg;
      };
      const auto rio_run = [&](bool doorbells) {
        return [&, doorbells](obs::Hub* hub) {
          auto eng = std::make_shared<rt::Runtime>(rio_cfg(hub, doorbells));
          eng->attach_pool(s.pool);
          return [&, eng] { eng->run(image, mapping); };
        };
      };
      const auto pruned_run = [&](bool doorbells) {
        return [&, doorbells](obs::Hub* hub) {
          auto eng =
              std::make_shared<rt::PrunedRuntime>(rio_cfg(hub, doorbells));
          eng->attach_pool(s.pool);
          return [&, eng] { eng->run(image, mapping); };
        };
      };

      measure("rio", rio_run(true));
      measure("rio-pruned", pruned_run(true));
      if (policy == support::WaitPolicy::kBlock) {
        // Legacy per-word notify path = the pre-change block baseline,
        // measured in the same binary for an honest A/B.
        measure("rio-wordnotify", rio_run(false));
        measure("rio-pruned-wordnotify", pruned_run(false));
      }
      if (s.with_coor) {
        const auto coor_run = [&](coor::QueueKind queue) {
          return [&, queue](obs::Hub* hub) {
            coor::Config cfg;
            cfg.num_workers = w;
            cfg.queue = queue;
            cfg.wait_policy = policy;
            cfg.collect_stats = false;
            cfg.obs = hub;
            auto eng = std::make_shared<coor::Runtime>(cfg);
            eng->attach_pool(s.pool);
            return [&, eng] { eng->run(image); };
          };
        };
        measure("coor-locked", coor_run(coor::QueueKind::kLocked));
        measure("coor-ring", coor_run(coor::QueueKind::kRing));
      }
    }
  }
  bench::emit(table, *s.opt, *s.json, section);
}

}  // namespace

int main(int argc, char** argv) {
  const auto opt = bench::Options::parse(argc, argv);
  bench::JsonReporter json("protocol", opt);

  const std::size_t n = opt.quick ? (1u << 13) : (1u << 16);
  const int reps = opt.quick ? 3 : 7;

  bench::header("micro_protocol",
                std::to_string(n) +
                    " stall-free virtual tasks; wait/notify hot-path cost "
                    "per engine x policy (1-write and 8-write shapes)");

  json.note("tasks", std::to_string(n));
  json.note("fan_writes", std::to_string(kFan));

  support::ThreadPool pool(5);  // max workers (4) + coor master

  Sweep sweep{&json, &opt, &pool, n, reps, /*with_coor=*/true};
  run_section(sweep, "protocol", stf::FlowImage::compile(make_chains(n)));
  sweep.with_coor = false;  // coor pays per-access master cost; rio A/B only
  run_section(sweep, "fan", stf::FlowImage::compile(make_fans(n)));

  std::cout
      << "Expected shape: block-policy rio within noise of spin/yield "
         "(doorbell batching elides per-word notifies on stall-free "
         "workloads: issued_per_task ~ 0), rio-wordnotify paying one "
         "notify per write (the \"fan\" section multiplies it by "
      << kFan
      << "); coor-ring at or below coor-locked (wait-free push/pop, "
         "wakeups only when a consumer is parked).\n";
  bench::finish(json);
  return 0;
}
