// Micro-benchmarks (google-benchmark) of the primitives whose costs the
// paper's argument rests on:
//
//   * RIO's declare path (the cost of SKIPPING a task: one or two private
//     writes per access — Section 3.4);
//   * RIO's get/terminate path (the cost of executing an owned task);
//   * the centralized runtime's per-task dispatch cost (queue round trip);
//   * end-to-end per-task overhead of both runtimes on empty tasks;
//   * dependency-graph and pruned-plan construction throughput.
//
// These measured numbers are also how one calibrates sim::*Params for this
// host (see EXPERIMENTS.md).
#include <benchmark/benchmark.h>

#include "coor/coor.hpp"
#include "rio/rio.hpp"
#include "stf/stf.hpp"
#include "workloads/workloads.hpp"

using namespace rio;

namespace {

// --------------------------------------------------------- protocol ops ----

void BM_DeclareRead(benchmark::State& state) {
  rt::LocalDataState local;
  for (auto _ : state) {
    rt::declare_read(local);
    benchmark::DoNotOptimize(local);
  }
}
BENCHMARK(BM_DeclareRead);

void BM_DeclareWrite(benchmark::State& state) {
  rt::LocalDataState local;
  stf::TaskId id = 0;
  for (auto _ : state) {
    rt::declare_write(local, id++);
    benchmark::DoNotOptimize(local);
  }
}
BENCHMARK(BM_DeclareWrite);

void BM_GetReadUncontended(benchmark::State& state) {
  rt::SharedDataState shared;
  rt::LocalDataState local;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        rt::get_read(shared, local, support::WaitPolicy::kSpin));
  }
}
BENCHMARK(BM_GetReadUncontended);

void BM_TerminateReadPlusWrite(benchmark::State& state) {
  rt::SharedDataState shared;
  rt::LocalDataState local;
  stf::TaskId id = 0;
  for (auto _ : state) {
    rt::terminate_read(shared, local, support::WaitPolicy::kSpinYield);
    rt::terminate_write(shared, local, id++, support::WaitPolicy::kSpinYield);
  }
}
BENCHMARK(BM_TerminateReadPlusWrite);

// ------------------------------------------------------- queue round trip --

void BM_ReadyQueuePushPop(benchmark::State& state) {
  coor::ReadyQueue q;
  for (auto _ : state) {
    q.push(1);
    benchmark::DoNotOptimize(q.try_pop());
  }
}
BENCHMARK(BM_ReadyQueuePushPop);

// ----------------------------------------------- end-to-end per-task cost --

void BM_RioPerTaskOverhead(benchmark::State& state) {
  const auto workers = static_cast<std::uint32_t>(state.range(0));
  workloads::IndependentSpec spec;
  spec.num_tasks = 4096;
  spec.task_cost = 0;
  spec.body = workloads::BodyKind::kNone;
  auto wl = workloads::make_independent(spec);
  rt::Runtime runtime(
      rt::Config{.num_workers = workers, .collect_stats = false});
  const auto mapping = rt::mapping::round_robin(workers);
  for (auto _ : state) runtime.run(wl.flow, mapping);
  state.SetItemsProcessed(state.iterations() * 4096);
}
BENCHMARK(BM_RioPerTaskOverhead)->Arg(1)->Arg(2)->Arg(4);

void BM_RioPrunedPerTaskOverhead(benchmark::State& state) {
  const auto workers = static_cast<std::uint32_t>(state.range(0));
  workloads::IndependentSpec spec;
  spec.num_tasks = 4096;
  spec.task_cost = 0;
  spec.body = workloads::BodyKind::kNone;
  auto wl = workloads::make_independent(spec);
  rt::PrunedPlan plan(wl.flow, rt::mapping::round_robin(workers), workers);
  rt::PrunedRuntime runtime(
      rt::Config{.num_workers = workers, .collect_stats = false});
  for (auto _ : state) runtime.run(wl.flow, plan);
  state.SetItemsProcessed(state.iterations() * 4096);
}
BENCHMARK(BM_RioPrunedPerTaskOverhead)->Arg(1)->Arg(2)->Arg(4);

void BM_CoorPerTaskOverhead(benchmark::State& state) {
  const auto workers = static_cast<std::uint32_t>(state.range(0));
  workloads::IndependentSpec spec;
  spec.num_tasks = 4096;
  spec.task_cost = 0;
  spec.body = workloads::BodyKind::kNone;
  auto wl = workloads::make_independent(spec);
  coor::Runtime runtime(
      coor::Config{.num_workers = workers, .collect_stats = false});
  for (auto _ : state) runtime.run(wl.flow);
  state.SetItemsProcessed(state.iterations() * 4096);
}
BENCHMARK(BM_CoorPerTaskOverhead)->Arg(1)->Arg(2)->Arg(4);

// ------------------------------------------------------- analysis builds ---

void BM_DependencyGraphBuild(benchmark::State& state) {
  workloads::RandomDepsSpec spec;
  spec.num_tasks = static_cast<std::uint64_t>(state.range(0));
  spec.body = workloads::BodyKind::kNone;
  auto wl = workloads::make_random_deps(spec);
  for (auto _ : state) {
    stf::DependencyGraph g(wl.flow);
    benchmark::DoNotOptimize(g.num_edges());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_DependencyGraphBuild)->Arg(1024)->Arg(16384);

void BM_PrunedPlanBuild(benchmark::State& state) {
  workloads::RandomDepsSpec spec;
  spec.num_tasks = static_cast<std::uint64_t>(state.range(0));
  spec.body = workloads::BodyKind::kNone;
  auto wl = workloads::make_random_deps(spec);
  const auto mapping = rt::mapping::round_robin(8);
  for (auto _ : state) {
    rt::PrunedPlan plan(wl.flow, mapping, 8);
    benchmark::DoNotOptimize(plan.total_tasks());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_PrunedPlanBuild)->Arg(1024)->Arg(16384);

// --------------------------------------------------- counter calibration ---

void BM_CounterKernel(benchmark::State& state) {
  const auto n = static_cast<std::uint64_t>(state.range(0));
  for (auto _ : state) workloads::counter_kernel(n);
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n));
}
BENCHMARK(BM_CounterKernel)->Arg(1000)->Arg(100000);

}  // namespace

BENCHMARK_MAIN();
