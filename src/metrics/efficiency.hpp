// Efficiency decomposition — Section 2.3 of the paper.
//
// The parallel efficiency e(g) = t / (p * t_p(g)) is decomposed into
//
//   e = e_g * e_l * e_p * e_r
//
//   e_g = t / t(g)                         granularity efficiency
//   e_l = t(g) / tau_{p,t}                 locality efficiency
//   e_p = tau_{p,t} / (tau_{p,t}+tau_{p,i})    pipelining efficiency
//   e_r = (tau_{p,t}+tau_{p,i}) / tau_p        runtime efficiency
//
// where t is the best sequential time, t(g) the sequential time at
// granularity g, and tau_{p,*} the cumulative task/idle/runtime times of a
// parallel run (stats.hpp). With the paper's synthetic counter kernel,
// e_g = e_l = 1 by construction and the decomposition isolates exactly the
// two runtime-attributable terms (Section 5.1).
#pragma once

#include <cstdint>

#include "support/stats.hpp"

namespace rio::metrics {

struct Efficiencies {
  double e_g = 1.0;  ///< granularity
  double e_l = 1.0;  ///< locality
  double e_p = 1.0;  ///< pipelining
  double e_r = 1.0;  ///< runtime

  [[nodiscard]] double product() const noexcept {
    return e_g * e_l * e_p * e_r;
  }
};

/// Full decomposition from measured/simulated quantities.
///   t_best:   fastest sequential execution (any granularity)
///   t_seq_g:  sequential execution at the evaluated granularity
///   cum:      cumulative tau buckets of the parallel run
/// Degenerate inputs (zero buckets) yield efficiency 1 for the affected
/// term rather than NaN, so tables stay printable for empty runs.
Efficiencies decompose(std::uint64_t t_best, std::uint64_t t_seq_g,
                       const support::TimeBuckets& cum);

/// Convenience: with the counter kernel e_g = e_l = 1 and the sequential
/// time equals tau_{p,t} (Section 5.1); only e_p and e_r are meaningful.
Efficiencies decompose_synthetic(const support::TimeBuckets& cum);

/// Direct parallel efficiency e = t_best / (p * t_p).
double parallel_efficiency(std::uint64_t t_best, std::uint64_t threads,
                           std::uint64_t t_p);

}  // namespace rio::metrics
