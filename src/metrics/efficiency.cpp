#include "metrics/efficiency.hpp"

namespace rio::metrics {
namespace {

double ratio_or_one(double num, double den) {
  return den > 0.0 ? num / den : 1.0;
}

}  // namespace

Efficiencies decompose(std::uint64_t t_best, std::uint64_t t_seq_g,
                       const support::TimeBuckets& cum) {
  Efficiencies e;
  const auto task = static_cast<double>(cum.task_ns);
  const auto idle = static_cast<double>(cum.idle_ns);
  const auto runtime = static_cast<double>(cum.runtime_ns);
  e.e_g = ratio_or_one(static_cast<double>(t_best),
                       static_cast<double>(t_seq_g));
  e.e_l = ratio_or_one(static_cast<double>(t_seq_g), task);
  e.e_p = ratio_or_one(task, task + idle);
  e.e_r = ratio_or_one(task + idle, task + idle + runtime);
  return e;
}

Efficiencies decompose_synthetic(const support::TimeBuckets& cum) {
  // e_g = e_l = 1: t_best == t(g) == tau_{p,t} for the counter kernel.
  return decompose(cum.task_ns, cum.task_ns, cum);
}

double parallel_efficiency(std::uint64_t t_best, std::uint64_t threads,
                           std::uint64_t t_p) {
  const double den = static_cast<double>(threads) * static_cast<double>(t_p);
  return den > 0.0 ? static_cast<double>(t_best) / den : 1.0;
}

}  // namespace rio::metrics
