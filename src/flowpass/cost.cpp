#include "flowpass/cost.hpp"

#include <algorithm>
#include <vector>

#include "sim/simulate.hpp"
#include "stf/dependency.hpp"

namespace rio::flowpass::cost {
namespace {

std::uint64_t cost_of(const stf::FlowImage& image, std::size_t i) {
  const std::uint64_t c = image.cost(i);
  return c > 0 ? c : 1;
}

}  // namespace

std::uint64_t critical_path(const stf::FlowImage& image) {
  const std::size_t n = image.size();
  if (n == 0) return 0;
  const stf::DependencyGraph g{stf::ImageRange(image)};
  // Task ids are a topological order, so one forward sweep suffices.
  std::vector<std::uint64_t> finish(n, 0);
  std::uint64_t best = 0;
  for (std::size_t i = 0; i < n; ++i) {
    std::uint64_t start = 0;
    for (const stf::TaskId p : g.predecessors(i)) {
      start = std::max(start, finish[p]);
    }
    finish[i] = start + cost_of(image, i);
    best = std::max(best, finish[i]);
  }
  return best;
}

double balance(const stf::FlowImage& image, const rt::Mapping& mapping,
               std::uint32_t workers) {
  const std::size_t n = image.size();
  if (n == 0 || workers == 0 || !mapping.valid()) return 0.0;
  std::vector<std::uint64_t> load(workers, 0);
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const stf::WorkerId w = mapping(image.task_id(i));
    const std::uint64_t c = cost_of(image, i);
    if (w < workers) load[w] += c;
    total += c;
  }
  const std::uint64_t max_load = *std::max_element(load.begin(), load.end());
  const double mean = static_cast<double>(total) / workers;
  return mean > 0.0 ? static_cast<double>(max_load) / mean : 0.0;
}

std::uint64_t static_estimate(const stf::FlowImage& image,
                              const rt::Mapping& mapping,
                              std::uint32_t workers) {
  const std::size_t n = image.size();
  if (n == 0 || workers == 0) return 0;
  std::vector<std::uint64_t> load(workers, 0);
  for (std::size_t i = 0; i < n; ++i) {
    const stf::WorkerId w = mapping(image.task_id(i));
    if (w < workers) load[w] += cost_of(image, i);
  }
  const std::uint64_t max_load = *std::max_element(load.begin(), load.end());
  return std::max(max_load, critical_path(image));
}

std::uint64_t simulated_makespan(const stf::FlowImage& image,
                                 const rt::Mapping& mapping,
                                 const PassOptions& opts) {
  sim::DecentralizedParams params = opts.sim_params;
  params.workers = opts.workers;
  return sim::simulate_decentralized(image, mapping, params).makespan;
}

}  // namespace rio::flowpass::cost
