#include <utility>

#include "flowpass/pass.hpp"
#include "stf/flow_rewrite.hpp"
#include "support/assert.hpp"

namespace rio::flowpass {

namespace detail {
// Defined in passes.cpp. Referencing it from instance() forces the linker
// to keep the passes translation unit even in a static library.
void register_builtins(Registry& reg);
}  // namespace detail

Registry& Registry::instance() {
  static Registry* reg = [] {
    auto* r = new Registry();  // leaked on purpose: lives for the process
    detail::register_builtins(*r);
    return r;
  }();
  return *reg;
}

void Registry::add(std::unique_ptr<Pass> pass) {
  RIO_ASSERT_MSG(pass && !pass->name().empty(), "pass must carry a name");
  RIO_ASSERT_MSG(find(pass->name()) == nullptr, "duplicate pass registration");
  passes_.push_back(std::move(pass));
}

const Pass* Registry::find(std::string_view name) const noexcept {
  // The ONLY pass-name string matching in the codebase lives here.
  for (const auto& p : passes_)
    if (p->name() == name) return p.get();
  return nullptr;
}

const Pass* Registry::find_or_error(std::string_view name,
                                    std::string& error) const {
  if (const Pass* p = find(name)) return p;
  error = "unknown pass '" + std::string(name) +
          "' (choices: " + names_csv() + ")";
  return nullptr;
}

std::vector<const Pass*> Registry::all() const {
  std::vector<const Pass*> out;
  out.reserve(passes_.size());
  for (const auto& p : passes_) out.push_back(p.get());
  return out;
}

std::vector<std::string> Registry::names() const {
  std::vector<std::string> out;
  out.reserve(passes_.size());
  for (const auto& p : passes_) out.emplace_back(p->name());
  return out;
}

std::string Registry::names_csv(std::string_view sep) const {
  std::string out;
  for (const auto& p : passes_) {
    if (!out.empty()) out += sep;
    out += p->name();
  }
  return out;
}

PipelineResult run_pipeline(const stf::FlowImage& src,
                            const std::vector<std::string>& pass_names,
                            const PassOptions& opts) {
  PipelineResult out;
  // Resolve every name up front so a typo at position k cannot leave a
  // half-rewritten pipeline behind.
  std::vector<const Pass*> passes;
  passes.reserve(pass_names.size());
  for (const std::string& name : pass_names) {
    const Pass* p = Registry::instance().find_or_error(name, out.error);
    if (p == nullptr) return out;
    passes.push_back(p);
  }

  stf::FlowImage held;  // current image once the first pass has run
  const stf::FlowImage* cur = &src;
  for (const Pass* p : passes) {
    PassReport rep;
    rep.pass = std::string(p->name());
    stf::FlowImage next = p->run(*cur, opts, rep);
    // The machine-checkable half of the preservation contract: a rewrite
    // never changes which data it talks about, the flow's total work, or
    // its position in the global id space. (The byte-oracle tests check
    // the other half — that executing it produces identical data.)
    RIO_ASSERT_MSG(&next.registry() == &cur->registry(),
                   "pass must preserve the data registry");
    RIO_ASSERT_MSG(next.num_data() == cur->num_data(),
                   "pass must preserve the data-object count");
    RIO_ASSERT_MSG(next.total_cost() == cur->total_cost(),
                   "pass must preserve total flow cost");
    RIO_ASSERT_MSG(next.first_id() == cur->first_id(),
                   "pass must preserve the first task id");
    RIO_ASSERT_MSG(next.serial() == cur->serial(),
                   "pass must preserve the image lineage serial");
    if (rep.mapping.valid()) out.mapping = rep.mapping;
    if (!rep.phases.empty()) out.phases = rep.phases;
    out.passes.push_back(std::move(rep));
    held = std::move(next);
    cur = &held;
  }

  if (passes.empty()) {
    // Identity pipeline: clone the source so callers always own the result.
    held = stf::FlowRewriter(src).compile();
  }
  out.image = std::move(held);
  return out;
}

}  // namespace rio::flowpass
