// flowpass: compiler-style optimization passes over compiled FlowImages.
//
// The paper's Fig. 2-4 decomposition shows fine-grained flows drowning in
// per-task runtime overhead (e_r). That is a granularity/placement problem,
// and it is best fixed ABOVE the engines: rewrite the flow once, before any
// worker runs it. Each pass is a FlowImage -> FlowImage rewrite with a
// machine-checked semantic-preservation contract:
//
//   * the rewritten image talks about the same DataRegistry, the same data
//     objects and the same total cost (asserted by run_pipeline);
//   * executing the rewritten image produces byte-identical data to the
//     sequential oracle on the source flow (enforced by the flowpass test
//     matrix and the run_checks.sh optimize step for every registered pass
//     on every executes_bodies backend).
//
// Built-in passes (registration order — also the default pipeline):
//   fuse       collapse chains of tiny tasks into one composite body
//   reorder    renumber tasks for data locality, preserving STF order
//   partition  split the flow into per-worker shards + hybrid:: phases
//   map        static mapping search scored by cost model / simulation
//
// Passes that compute placement (partition, map) return their product in
// PassReport::mapping / phases; the image itself passes through unchanged.
// Because sim:: executes any FlowImage in virtual time, the map pass can be
// auto-tuned: score every candidate mapping by simulated makespan and run
// the winner on a real engine (PassOptions::tune).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "hybrid/runtime.hpp"
#include "rio/mapping.hpp"
#include "sim/params.hpp"
#include "stf/flow_image.hpp"

namespace rio::flowpass {

/// Tuning knobs shared by all passes. One struct so the CLI and tests can
/// thread a single options object through a whole pipeline.
struct PassOptions {
  /// Worker count the flow is being optimized FOR (partition shard count,
  /// mapping search width, simulation cores).
  std::uint32_t workers = 2;

  /// fuse: tasks with cost strictly below this are fusion candidates. The
  /// default matches the shipped workloads' default task cost, so fusion is
  /// a no-op unless the flow is genuinely finer-grained than the baseline.
  std::uint64_t fuse_threshold = 1000;

  /// fuse: maximum chain members collapsed into one composite.
  std::size_t fuse_max_group = 8;

  /// map: score candidates by simulated makespan (sim-rio as cost oracle)
  /// instead of the static critical-path/balance estimate.
  bool tune = false;

  /// map --tune: simulator cost parameters (workers is overridden with
  /// `workers` above).
  sim::DecentralizedParams sim_params;
};

/// One scored candidate from the map pass's search (or the static scores
/// when tuning is off). Feeds the rio.optimize.v1 "tuning" array.
struct TuneStep {
  std::string candidate;
  std::uint64_t score = 0;  ///< simulated makespan ticks, or static estimate
  bool chosen = false;
};

/// What one pass did — task/edge deltas, cost-model scores, and any
/// placement product. `mapping.valid()` / `!phases.empty()` signal that the
/// pass produced a placement.
struct PassReport {
  std::string pass;
  std::string detail;  ///< one human-readable line for --report
  std::size_t tasks_before = 0;
  std::size_t tasks_after = 0;
  std::size_t edges_before = 0;
  std::size_t edges_after = 0;
  std::uint64_t critical_path_before = 0;
  std::uint64_t critical_path_after = 0;
  double balance_before = 0.0;  ///< max/mean worker load under the baseline
  double balance_after = 0.0;
  std::vector<TuneStep> tuning;
  rt::Mapping mapping;
  std::vector<hybrid::Phase> phases;
};

/// A named FlowImage -> FlowImage rewrite. Implementations must be pure
/// (same input image + options => same output) and semantics-preserving.
class Pass {
 public:
  virtual ~Pass() = default;

  [[nodiscard]] virtual std::string_view name() const noexcept = 0;
  [[nodiscard]] virtual std::string_view description() const noexcept = 0;

  /// Rewrites `in`. The returned image owns its tasks, borrows `in`'s
  /// registry and inherits `in`'s serial (fingerprint changes iff content
  /// does). Must fill `report` with before/after metrics.
  [[nodiscard]] virtual stf::FlowImage run(const stf::FlowImage& in,
                                           const PassOptions& opts,
                                           PassReport& report) const = 0;
};

/// Process-wide pass directory, mirroring engine::Registry: the pass list
/// lives in ONE place, and usage strings / error messages / the test matrix
/// all derive from names(). First access registers the built-ins.
class Registry {
 public:
  static Registry& instance();

  /// Registers a pass. Name must be non-empty and unique.
  void add(std::unique_ptr<Pass> pass);

  /// nullptr when no pass carries `name`.
  [[nodiscard]] const Pass* find(std::string_view name) const noexcept;

  /// find() with the structured unknown-name error:
  /// "unknown pass 'x' (choices: fuse, reorder, ...)".
  [[nodiscard]] const Pass* find_or_error(std::string_view name,
                                          std::string& error) const;

  [[nodiscard]] std::vector<const Pass*> all() const;
  [[nodiscard]] std::vector<std::string> names() const;
  [[nodiscard]] std::string names_csv(std::string_view sep = ", ") const;

 private:
  std::vector<std::unique_ptr<Pass>> passes_;
};

/// A whole pipeline run: the final image plus per-pass reports and the last
/// placement any pass produced. Move-only (owns the image).
struct PipelineResult {
  stf::FlowImage image;
  std::vector<PassReport> passes;
  rt::Mapping mapping;               ///< last mapping produced (may be invalid)
  std::vector<hybrid::Phase> phases; ///< last phase split produced (may be empty)
  std::string error;                 ///< non-empty => pipeline did not run

  [[nodiscard]] bool ok() const noexcept { return error.empty(); }
};

/// Applies `pass_names` to `src` in order. Unknown names fail the whole
/// pipeline (error set, image empty). An empty list clones `src`. Asserts
/// the per-pass preservation contract: same registry, same data-object
/// count, same total cost, same first id.
[[nodiscard]] PipelineResult run_pipeline(
    const stf::FlowImage& src, const std::vector<std::string>& pass_names,
    const PassOptions& opts);

}  // namespace rio::flowpass
