// The built-in passes. Each is a pure FlowImage -> FlowImage rewrite; see
// pass.hpp for the preservation contract and docs/passes.md for the
// add-a-pass recipe.
#include <algorithm>
#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "flowpass/cost.hpp"
#include "flowpass/pass.hpp"
#include "stf/dependency.hpp"
#include "stf/flow_rewrite.hpp"
#include "support/assert.hpp"

namespace rio::flowpass {
namespace {

std::uint64_t cost_of(const stf::FlowImage& image, std::size_t i) {
  const std::uint64_t c = image.cost(i);
  return c > 0 ? c : 1;
}

bool has_reduction(const stf::FlowImage& image, std::size_t i) {
  for (const stf::Access* a = image.acc_begin(i); a != image.acc_end(i); ++a)
    if (stf::is_reduction(a->mode)) return true;
  return false;
}

/// Fills the shared before/after metrics. `before` selects which side.
void measure(PassReport& report, const stf::FlowImage& image,
             const PassOptions& opts, bool before) {
  const stf::DependencyGraph g{stf::ImageRange(image)};
  const rt::Mapping base = rt::mapping::round_robin(
      opts.workers > 0 ? opts.workers : 1);
  if (before) {
    report.tasks_before = image.size();
    report.edges_before = g.num_edges();
    report.critical_path_before = cost::critical_path(image);
    report.balance_before = cost::balance(image, base, opts.workers);
  } else {
    report.tasks_after = image.size();
    report.edges_after = g.num_edges();
    report.critical_path_after = cost::critical_path(image);
    report.balance_after = cost::balance(image, base, opts.workers);
  }
}

/// Clone without content changes — for passes whose product is a placement,
/// not a rewrite (partition, map). Same fingerprint as the input, by design.
stf::FlowImage clone(const stf::FlowImage& image) {
  return stf::FlowRewriter(image).compile();
}

/// Greedy balanced k-way owners with predecessor affinity: each task (in id
/// order) goes to the worker minimizing load minus the cost of its
/// predecessors already placed there. Deterministic; shared by the
/// partition and map passes.
std::vector<stf::WorkerId> greedy_owners(const stf::FlowImage& image,
                                         const stf::DependencyGraph& g,
                                         std::uint32_t workers) {
  const std::size_t n = image.size();
  std::vector<stf::WorkerId> owners(n, 0);
  std::vector<std::int64_t> load(workers, 0);
  std::vector<std::int64_t> aff(workers, 0);
  for (std::size_t i = 0; i < n; ++i) {
    std::fill(aff.begin(), aff.end(), 0);
    for (const stf::TaskId p : g.predecessors(i)) {
      aff[owners[p]] += static_cast<std::int64_t>(cost_of(image, p));
    }
    stf::WorkerId best = 0;
    std::int64_t best_score = load[0] - aff[0];
    for (stf::WorkerId w = 1; w < workers; ++w) {
      const std::int64_t score = load[w] - aff[w];
      if (score < best_score) {
        best = w;
        best_score = score;
      }
    }
    owners[i] = best;
    load[best] += static_cast<std::int64_t>(cost_of(image, i));
  }
  return owners;
}

/// Earliest-finish-time list schedule over the exact DAG: tasks in id order
/// (a topological order), each to the worker where it can start soonest.
std::vector<stf::WorkerId> eft_owners(const stf::FlowImage& image,
                                      const stf::DependencyGraph& g,
                                      std::uint32_t workers) {
  const std::size_t n = image.size();
  std::vector<stf::WorkerId> owners(n, 0);
  std::vector<std::uint64_t> avail(workers, 0);
  std::vector<std::uint64_t> finish(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    std::uint64_t ready = 0;
    for (const stf::TaskId p : g.predecessors(i))
      ready = std::max(ready, finish[p]);
    stf::WorkerId best = 0;
    std::uint64_t best_start = std::max(avail[0], ready);
    for (stf::WorkerId w = 1; w < workers; ++w) {
      const std::uint64_t start = std::max(avail[w], ready);
      if (start < best_start) {
        best = w;
        best_start = start;
      }
    }
    owners[i] = best;
    finish[i] = best_start + cost_of(image, i);
    avail[best] = finish[i];
  }
  return owners;
}

/// Owner tables are indexed by GLOBAL task id; pad for images whose id
/// space does not start at zero (sub-range compiles).
rt::Mapping to_table(const stf::FlowImage& in,
                     std::vector<stf::WorkerId> owners, std::string name) {
  const auto shift = static_cast<std::size_t>(in.first_id());
  if (shift > 0) owners.insert(owners.begin(), shift, 0);
  return rt::mapping::table(std::move(owners), std::move(name));
}

// ---------------------------------------------------------------------------
// fuse: collapse chains of tiny tasks into one composite body.
//
// A chain is fusable when every interior link is exclusive — succ(prev) ==
// {cur} and pred(cur) == {prev} in the exact conflict DAG — and every
// member's cost is below the threshold. Exclusivity over the conflict DAG is
// what makes hoisting later members up to the head's position safe: any task
// between two members that touched a member's data would appear as an extra
// pred/succ and break the chain, and everything else commutes (Bernstein).
// Tasks with reduction accesses never fuse: a composite would change which
// accesses form a commuting run.
// ---------------------------------------------------------------------------
class FusePass final : public Pass {
 public:
  [[nodiscard]] std::string_view name() const noexcept override {
    return "fuse";
  }
  [[nodiscard]] std::string_view description() const noexcept override {
    return "collapse chains of tiny tasks into composite bodies";
  }

  [[nodiscard]] stf::FlowImage run(const stf::FlowImage& in,
                                   const PassOptions& opts,
                                   PassReport& report) const override {
    measure(report, in, opts, /*before=*/true);
    const std::size_t n = in.size();
    const stf::DependencyGraph g{stf::ImageRange(in)};

    // Group discovery: walk tasks in id order, greedily extending a chain
    // from each still-free tiny task.
    std::vector<bool> grouped(n, false);
    std::vector<std::vector<std::size_t>> groups;
    const std::size_t max_group =
        opts.fuse_max_group > 1 ? opts.fuse_max_group : 1;
    for (std::size_t i = 0; i < n; ++i) {
      if (grouped[i] || in.cost(i) >= opts.fuse_threshold ||
          has_reduction(in, i)) {
        continue;
      }
      std::vector<std::size_t> chain{i};
      std::size_t cur = i;
      while (chain.size() < max_group) {
        const auto& succs = g.successors(cur);
        if (succs.size() != 1) break;
        const std::size_t next = succs[0];
        if (g.predecessors(next).size() != 1) break;
        if (grouped[next] || in.cost(next) >= opts.fuse_threshold ||
            has_reduction(in, next)) {
          break;
        }
        chain.push_back(next);
        cur = next;
      }
      if (chain.size() < 2) continue;
      for (const std::size_t m : chain) grouped[m] = true;
      groups.push_back(std::move(chain));
    }

    stf::FlowRewriter rw(in);
    std::vector<stf::Task>& src = rw.tasks();
    std::vector<std::size_t> leader(n, n);  // task -> its group, else n
    for (std::size_t k = 0; k < groups.size(); ++k)
      for (const std::size_t m : groups[k]) leader[m] = k;

    std::vector<stf::Task> out;
    out.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      if (leader[i] == n) {
        out.push_back(std::move(src[i]));
        continue;
      }
      // Emit the composite at the head's position; later members vanish.
      if (groups[leader[i]].front() != i) continue;
      out.push_back(make_composite(src, groups[leader[i]]));
    }
    rw.tasks() = std::move(out);

    report.detail = "fused " + std::to_string(n - rw.tasks().size() +
                                              groups.size()) +
                    " tasks into " + std::to_string(groups.size()) +
                    " composites (threshold " +
                    std::to_string(opts.fuse_threshold) + ")";
    stf::FlowImage result = std::move(rw).compile();
    measure(report, result, opts, /*before=*/false);
    return result;
  }

 private:
  /// One task that runs every member in chain order. Each member executes
  /// against its pristine descriptor (original id + access list), so
  /// id-sensitive bodies and the debug access checks behave exactly as in
  /// the source flow. The composite's access list is the mode-join union of
  /// the members' — a safe over-approximation (it can only ADD ordering).
  static stf::Task make_composite(const std::vector<stf::Task>& src,
                                  const std::vector<std::size_t>& chain) {
    auto members = std::make_shared<std::vector<stf::Task>>();
    members->reserve(chain.size());
    for (const std::size_t m : chain) members->push_back(src[m]);

    stf::Task t;
    t.id = members->front().id;
    t.priority = members->front().priority;
    bool any_body = false;
    for (const stf::Task& m : *members) {
      t.cost += m.cost;
      t.priority = std::max(t.priority, m.priority);
      if (m.fn) any_body = true;
      for (const stf::Access& a : m.accesses) {
        bool found = false;
        for (stf::Access& u : t.accesses) {
          if (u.data != a.data) continue;
          const bool r = stf::is_read(u.mode) || stf::is_read(a.mode);
          const bool w = stf::is_write(u.mode) || stf::is_write(a.mode);
          u.mode = r && w ? stf::AccessMode::kReadWrite
                   : w    ? stf::AccessMode::kWrite
                          : stf::AccessMode::kRead;
          found = true;
          break;
        }
        if (!found) t.accesses.push_back(a);
      }
    }
    t.name = "fuse[" + std::to_string(chain.size()) + "]";
    if (!members->front().name.empty()) t.name += ":" + members->front().name;
    if (any_body) {
      std::shared_ptr<const std::vector<stf::Task>> shared = members;
      t.fn = [shared](stf::TaskContext& ctx) {
        for (const stf::Task& m : *shared) {
          if (!m.fn) continue;
          stf::TaskContext sub(m, ctx.registry(), ctx.worker());
          m.fn(sub);
        }
      };
    }
    return t;
  }
};

// ---------------------------------------------------------------------------
// reorder: renumber tasks for data locality while preserving STF order.
//
// Emits a topological linearization of the exact conflict DAG (plus chain
// edges pinning the relative order of same-data reduction runs, so even
// non-commutative bodies behind a reduction access stay deterministic),
// greedily preferring the ready task sharing the most data objects with the
// task just emitted. Every conflict edge is respected, so the permuted flow
// computes byte-identical results.
// ---------------------------------------------------------------------------
class ReorderPass final : public Pass {
 public:
  [[nodiscard]] std::string_view name() const noexcept override {
    return "reorder";
  }
  [[nodiscard]] std::string_view description() const noexcept override {
    return "renumber tasks for data locality, preserving STF order";
  }

  [[nodiscard]] stf::FlowImage run(const stf::FlowImage& in,
                                   const PassOptions& opts,
                                   PassReport& report) const override {
    measure(report, in, opts, /*before=*/true);
    const std::size_t n = in.size();
    const stf::DependencyGraph g{stf::ImageRange(in)};

    std::vector<std::size_t> indeg(n, 0);
    std::vector<std::vector<std::size_t>> extra(n);
    for (std::size_t i = 0; i < n; ++i) indeg[i] = g.in_degree(i);
    {
      // Reduction runs commute in the DAG; chain them explicitly so the
      // rewrite keeps their flow order.
      std::vector<std::size_t> last_red(in.num_data(), n);
      for (std::size_t i = 0; i < n; ++i) {
        for (const stf::Access* a = in.acc_begin(i); a != in.acc_end(i); ++a) {
          if (!stf::is_reduction(a->mode)) continue;
          if (last_red[a->data] != n) {
            extra[last_red[a->data]].push_back(i);
            ++indeg[i];
          }
          last_red[a->data] = i;
        }
      }
    }

    std::vector<std::size_t> ready;
    for (std::size_t i = 0; i < n; ++i)
      if (indeg[i] == 0) ready.push_back(i);

    std::vector<std::size_t> order;
    order.reserve(n);
    std::vector<stf::DataId> last_data;
    while (!ready.empty()) {
      std::size_t best_pos = 0;
      std::size_t best_aff = affinity(in, ready[0], last_data);
      for (std::size_t k = 1; k < ready.size(); ++k) {
        const std::size_t aff = affinity(in, ready[k], last_data);
        if (aff > best_aff ||
            (aff == best_aff && ready[k] < ready[best_pos])) {
          best_pos = k;
          best_aff = aff;
        }
      }
      const std::size_t sel = ready[best_pos];
      ready[best_pos] = ready.back();
      ready.pop_back();
      order.push_back(sel);
      last_data.clear();
      for (const stf::Access* a = in.acc_begin(sel); a != in.acc_end(sel);
           ++a) {
        last_data.push_back(a->data);
      }
      for (const stf::TaskId s : g.successors(sel))
        if (--indeg[s] == 0) ready.push_back(s);
      for (const std::size_t s : extra[sel])
        if (--indeg[s] == 0) ready.push_back(s);
    }
    RIO_ASSERT_MSG(order.size() == n, "reorder lost tasks (cyclic DAG?)");

    std::size_t moved = 0;
    for (std::size_t k = 0; k < n; ++k)
      if (order[k] != k) ++moved;

    stf::FlowRewriter rw(in);
    std::vector<stf::Task> out;
    out.reserve(n);
    for (const std::size_t o : order) out.push_back(std::move(rw.tasks()[o]));
    rw.tasks() = std::move(out);

    report.detail =
        "moved " + std::to_string(moved) + "/" + std::to_string(n) + " tasks";
    stf::FlowImage result = std::move(rw).compile();
    measure(report, result, opts, /*before=*/false);
    return result;
  }

 private:
  static std::size_t affinity(const stf::FlowImage& in, std::size_t i,
                              const std::vector<stf::DataId>& last_data) {
    std::size_t shared = 0;
    for (const stf::Access* a = in.acc_begin(i); a != in.acc_end(i); ++a) {
      for (const stf::DataId d : last_data) {
        if (a->data == d) {
          ++shared;
          break;
        }
      }
    }
    return shared;
  }
};

// ---------------------------------------------------------------------------
// partition: split the flow into per-worker shards + hybrid:: phases.
//
// Product, not rewrite: the image passes through unchanged; the report
// carries an owner-table Mapping (greedy balanced k-way with predecessor
// affinity) and a contiguous cost-balanced phase split consumable by the
// hybrid engine.
// ---------------------------------------------------------------------------
class PartitionPass final : public Pass {
 public:
  [[nodiscard]] std::string_view name() const noexcept override {
    return "partition";
  }
  [[nodiscard]] std::string_view description() const noexcept override {
    return "split the flow into per-worker shards and hybrid phases";
  }

  [[nodiscard]] stf::FlowImage run(const stf::FlowImage& in,
                                   const PassOptions& opts,
                                   PassReport& report) const override {
    measure(report, in, opts, /*before=*/true);
    const std::size_t n = in.size();
    const std::uint32_t workers = opts.workers > 0 ? opts.workers : 1;
    if (n > 0) {
      const stf::DependencyGraph g{stf::ImageRange(in)};
      std::vector<stf::WorkerId> owners = greedy_owners(in, g, workers);
      report.mapping =
          to_table(in, owners, "partition/" + std::to_string(workers));

      // Contiguous cost-balanced phases: cut after every total/P share.
      const std::size_t num_phases =
          std::min<std::size_t>(workers, n) > 0
              ? std::min<std::size_t>(workers, n)
              : 1;
      std::uint64_t total = 0;
      for (std::size_t i = 0; i < n; ++i) total += cost_of(in, i);
      std::vector<std::size_t> phase_of(n, 0);
      std::uint64_t acc = 0;
      std::size_t start = 0;
      std::size_t k = 1;
      for (std::size_t i = 0; i < n; ++i) {
        acc += cost_of(in, i);
        const bool last = i + 1 == n;
        if (last || (k < num_phases && acc * num_phases >= total * k)) {
          hybrid::Phase ph;
          ph.kind = hybrid::Phase::Kind::kStatic;
          ph.first = in.task_id(start);
          ph.count = i + 1 - start;
          ph.mapping = report.mapping;
          report.phases.push_back(ph);
          for (std::size_t j = start; j <= i; ++j) phase_of[j] = k - 1;
          start = i + 1;
          ++k;
        }
      }
      std::size_t cross = 0;
      for (std::size_t i = 0; i < n; ++i)
        for (const stf::TaskId s : g.successors(i))
          if (phase_of[i] != phase_of[s]) ++cross;
      report.detail = std::to_string(workers) + " shards, " +
                      std::to_string(report.phases.size()) + " phases, " +
                      std::to_string(cross) + " cross-phase deps";
    } else {
      report.detail = "empty flow";
    }
    stf::FlowImage result = clone(in);
    measure(report, result, opts, /*before=*/false);
    return result;
  }
};

// ---------------------------------------------------------------------------
// map: static mapping search scored by cost model or simulation.
//
// Candidates: round-robin (the baseline every engine defaults to), block,
// the partition pass's affinity owners, and an earliest-finish-time list
// schedule. Scored by the static max(critical path, max load) estimate, or
// — with PassOptions::tune — by the sim-rio virtual makespan. The baseline
// is always in the candidate set, so the winner's score never exceeds it.
// ---------------------------------------------------------------------------
class MapPass final : public Pass {
 public:
  [[nodiscard]] std::string_view name() const noexcept override {
    return "map";
  }
  [[nodiscard]] std::string_view description() const noexcept override {
    return "search static mappings with cost-model / simulated scoring";
  }

  [[nodiscard]] stf::FlowImage run(const stf::FlowImage& in,
                                   const PassOptions& opts,
                                   PassReport& report) const override {
    measure(report, in, opts, /*before=*/true);
    const std::size_t n = in.size();
    const std::uint32_t workers = opts.workers > 0 ? opts.workers : 1;
    if (n > 0) {
      const stf::DependencyGraph g{stf::ImageRange(in)};
      std::vector<std::pair<std::string, rt::Mapping>> candidates;
      candidates.emplace_back("round-robin",
                              rt::mapping::round_robin(workers));
      candidates.emplace_back("block", rt::mapping::block(n, workers));
      candidates.emplace_back(
          "partition",
          to_table(in, greedy_owners(in, g, workers), "map-partition"));
      candidates.emplace_back(
          "eft", to_table(in, eft_owners(in, g, workers), "map-eft"));

      std::size_t best = 0;
      std::uint64_t best_score = 0;
      for (std::size_t c = 0; c < candidates.size(); ++c) {
        const std::uint64_t score =
            opts.tune
                ? cost::simulated_makespan(in, candidates[c].second, opts)
                : cost::static_estimate(in, candidates[c].second, workers);
        report.tuning.push_back({candidates[c].first, score, false});
        if (c == 0 || score < best_score) {
          best = c;
          best_score = score;
        }
      }
      report.tuning[best].chosen = true;
      report.mapping = candidates[best].second;
      report.detail = "picked " + candidates[best].first + " (score " +
                      std::to_string(best_score) + " vs round-robin " +
                      std::to_string(report.tuning[0].score) + ", " +
                      (opts.tune ? "simulated" : "static") + ")";
    } else {
      report.detail = "empty flow";
    }
    stf::FlowImage result = clone(in);
    measure(report, result, opts, /*before=*/false);
    return result;
  }
};

}  // namespace

namespace detail {

void register_builtins(Registry& reg) {
  reg.add(std::make_unique<FusePass>());
  reg.add(std::make_unique<ReorderPass>());
  reg.add(std::make_unique<PartitionPass>());
  reg.add(std::make_unique<MapPass>());
}

}  // namespace detail
}  // namespace rio::flowpass
