// Cost functions the passes score rewrites with. Two static estimators
// (critical path, load balance) plus the simulator as a virtual-makespan
// oracle — the same sim-rio model every bench uses, so tuned choices are
// reproducible bit-for-bit.
#pragma once

#include <cstdint>

#include "flowpass/pass.hpp"
#include "rio/mapping.hpp"
#include "stf/flow_image.hpp"

namespace rio::flowpass::cost {

/// Length (sum of task costs, >= 1 each) of the longest dependency chain in
/// the image — the lower bound no mapping can beat.
[[nodiscard]] std::uint64_t critical_path(const stf::FlowImage& image);

/// max worker load / mean worker load under `mapping` (costs >= 1 each).
/// 1.0 is perfectly balanced; returns 0.0 for empty flows.
[[nodiscard]] double balance(const stf::FlowImage& image,
                             const rt::Mapping& mapping,
                             std::uint32_t workers);

/// Static schedule estimate: max(critical path, max worker load) — the
/// classic two-sided lower bound, used to rank mappings without simulating.
[[nodiscard]] std::uint64_t static_estimate(const stf::FlowImage& image,
                                            const rt::Mapping& mapping,
                                            std::uint32_t workers);

/// Virtual makespan of the image under `mapping` on the decentralized
/// (sim-rio) model with `opts.sim_params` costs and `opts.workers` cores.
[[nodiscard]] std::uint64_t simulated_makespan(const stf::FlowImage& image,
                                               const rt::Mapping& mapping,
                                               const PassOptions& opts);

}  // namespace rio::flowpass::cost
