#include "analysis/fixtures.hpp"

#include "stf/types.hpp"

namespace rio::analysis::fixtures {

using stf::read;
using stf::readwrite;
using stf::write;

stf::TaskFlow bad_uninit_read() {
  stf::TaskFlow flow;
  auto scratch = flow.create_uninitialized_data<double>("scratch", 16);
  auto out = flow.create_data<double>("out", 16);
  // Reads `scratch` before anything has written it — the hazard.
  flow.add_virtual(1, {read(scratch), write(out)}, "consume");
  flow.add_virtual(1, {write(scratch)}, "init-too-late");
  flow.add_virtual(1, {read(scratch), readwrite(out)}, "consume-again");
  return flow;
}

stf::TaskFlow bad_dead_write() {
  stf::TaskFlow flow;
  auto x = flow.create_data<double>("x", 8);
  flow.add_virtual(1, {write(x)}, "wasted-write");   // overwritten below
  flow.add_virtual(1, {write(x)}, "real-write");
  flow.add_virtual(1, {read(x)}, "reader");
  return flow;
}

stf::TaskFlow bad_unused_handle() {
  stf::TaskFlow flow;
  auto used = flow.create_data<double>("used", 4);
  flow.create_data<double>("orphan", 4);  // never accessed
  flow.add_virtual(1, {write(used)}, "producer");
  flow.add_virtual(1, {read(used)}, "consumer");
  return flow;
}

stf::TaskFlow bad_redundant_edge() {
  stf::TaskFlow flow;
  auto a = flow.create_data<double>("a", 4);
  auto b = flow.create_data<double>("b", 4);
  flow.add_virtual(1, {write(a)}, "t0");
  flow.add_virtual(1, {read(a), write(b)}, "t1");
  // Depends on t0 directly (reads a) and through t1 (reads b): the direct
  // edge t0 -> t2 is implied by t0 -> t1 -> t2.
  flow.add_virtual(1, {read(b), read(a)}, "t2");
  return flow;
}

RaceFixture injected_race() {
  RaceFixture fx;
  auto d = fx.flow.create_data<double>("shared", 4);
  fx.flow.add_virtual(10, {write(d)}, "writer-a");
  fx.flow.add_virtual(10, {write(d)}, "writer-b");

  // Disjoint intervals ([0,10) then [20,30)) in dependency order: the
  // interval-overlap validator is satisfied.
  fx.trace.record({/*task=*/0, /*worker=*/0, /*start=*/0, /*end=*/10,
                   /*seq=*/0});
  fx.trace.record({/*task=*/1, /*worker=*/1, /*start=*/20, /*end=*/30,
                   /*seq=*/1});

  // But the sync order says writer-b acquired BEFORE writer-a released:
  // nothing ordered the two bodies — a race the wall clock happened to
  // hide.
  fx.sync.record({0, 0, d.id, stf::AccessMode::kWrite,
                  stf::SyncKind::kAcquire, /*stamp=*/0});
  fx.sync.record({1, 1, d.id, stf::AccessMode::kWrite,
                  stf::SyncKind::kAcquire, /*stamp=*/1});
  fx.sync.record({0, 0, d.id, stf::AccessMode::kWrite,
                  stf::SyncKind::kRelease, /*stamp=*/2});
  fx.sync.record({1, 1, d.id, stf::AccessMode::kWrite,
                  stf::SyncKind::kRelease, /*stamp=*/3});
  return fx;
}

}  // namespace rio::analysis::fixtures
