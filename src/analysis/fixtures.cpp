#include "analysis/fixtures.hpp"

#include "stf/types.hpp"

namespace rio::analysis::fixtures {

using stf::read;
using stf::readwrite;
using stf::write;

stf::TaskFlow bad_uninit_read() {
  stf::TaskFlow flow;
  auto scratch = flow.create_uninitialized_data<double>("scratch", 16);
  auto out = flow.create_data<double>("out", 16);
  // Reads `scratch` before anything has written it — the hazard.
  flow.add_virtual(1, {read(scratch), write(out)}, "consume");
  flow.add_virtual(1, {write(scratch)}, "init-too-late");
  flow.add_virtual(1, {read(scratch), readwrite(out)}, "consume-again");
  return flow;
}

stf::TaskFlow bad_dead_write() {
  stf::TaskFlow flow;
  auto x = flow.create_data<double>("x", 8);
  flow.add_virtual(1, {write(x)}, "wasted-write");   // overwritten below
  flow.add_virtual(1, {write(x)}, "real-write");
  flow.add_virtual(1, {read(x)}, "reader");
  return flow;
}

stf::TaskFlow bad_unused_handle() {
  stf::TaskFlow flow;
  auto used = flow.create_data<double>("used", 4);
  flow.create_data<double>("orphan", 4);  // never accessed
  flow.add_virtual(1, {write(used)}, "producer");
  flow.add_virtual(1, {read(used)}, "consumer");
  return flow;
}

stf::TaskFlow bad_redundant_edge() {
  stf::TaskFlow flow;
  auto a = flow.create_data<double>("a", 4);
  auto b = flow.create_data<double>("b", 4);
  flow.add_virtual(1, {write(a)}, "t0");
  flow.add_virtual(1, {read(a), write(b)}, "t1");
  // Depends on t0 directly (reads a) and through t1 (reads b): the direct
  // edge t0 -> t2 is implied by t0 -> t1 -> t2.
  flow.add_virtual(1, {read(b), read(a)}, "t2");
  return flow;
}

stf::TaskFlow bad_tiny_tasks() {
  // 16 tasks: exactly LintOptions::fusion_min_tasks, so the fixture sits on
  // the smallest flow RF501 is willing to warn about.
  stf::TaskFlow flow;
  auto x = flow.create_data<double>("x", 8);
  flow.add_virtual(5, {write(x)}, "tiny-head");
  for (int i = 0; i < 14; ++i)
    flow.add_virtual(5, {readwrite(x)}, "tiny-link");
  flow.add_virtual(5, {read(x)}, "tiny-tail");
  return flow;
}

namespace {

/// Two-phase body shared by the phase fixtures: producer tasks in a static
/// phase, consumers in a dynamic one, with a real data dependency between
/// the halves.
PhaseFixture two_phase_base() {
  PhaseFixture fx;
  auto x = fx.flow.create_data<double>("x", 4);
  auto y = fx.flow.create_data<double>("y", 4);
  fx.flow.add_virtual(1, {write(x)}, "p0");
  fx.flow.add_virtual(1, {write(y)}, "p1");
  fx.flow.add_virtual(1, {read(x), read(y)}, "c0");
  fx.flow.add_virtual(1, {readwrite(y)}, "c1");
  return fx;
}

}  // namespace

PhaseFixture bad_phase_mapping() {
  PhaseFixture fx = two_phase_base();
  LintPhase st;
  st.first = 0;
  st.count = 2;
  st.is_static = true;
  // Sends task 1 to worker 7 — beyond any sane --workers for this fixture.
  st.mapping = rt::mapping::table({0, 7}, "bad-static");
  LintPhase dyn;
  dyn.first = 2;
  dyn.count = 2;
  fx.phases = {st, dyn};
  return fx;
}

PhaseFixture bad_empty_phase() {
  PhaseFixture fx = two_phase_base();
  LintPhase a;
  a.first = 0;
  a.count = 2;
  a.is_static = true;
  a.mapping = rt::mapping::round_robin(2);
  LintPhase hole;  // zero tasks: two barriers back to back
  hole.first = 2;
  hole.count = 0;
  LintPhase b;
  b.first = 2;
  b.count = 2;
  fx.phases = {a, hole, b};
  return fx;
}

PhaseFixture cross_phase_dep() {
  PhaseFixture fx = two_phase_base();
  LintPhase a;
  a.first = 0;
  a.count = 2;
  a.is_static = true;
  a.mapping = rt::mapping::round_robin(2);
  LintPhase b;
  b.first = 2;
  b.count = 2;
  fx.phases = {a, b};  // c0/c1 read what p0/p1 wrote: edges cross the cut
  return fx;
}

RaceFixture injected_race() {
  RaceFixture fx;
  auto d = fx.flow.create_data<double>("shared", 4);
  fx.flow.add_virtual(10, {write(d)}, "writer-a");
  fx.flow.add_virtual(10, {write(d)}, "writer-b");

  // Disjoint intervals ([0,10) then [20,30)) in dependency order: the
  // interval-overlap validator is satisfied.
  fx.trace.record({/*task=*/0, /*worker=*/0, /*start=*/0, /*end=*/10,
                   /*seq=*/0});
  fx.trace.record({/*task=*/1, /*worker=*/1, /*start=*/20, /*end=*/30,
                   /*seq=*/1});

  // But the sync order says writer-b acquired BEFORE writer-a released:
  // nothing ordered the two bodies — a race the wall clock happened to
  // hide.
  fx.sync.record({0, 0, d.id, stf::AccessMode::kWrite,
                  stf::SyncKind::kAcquire, /*stamp=*/0});
  fx.sync.record({1, 1, d.id, stf::AccessMode::kWrite,
                  stf::SyncKind::kAcquire, /*stamp=*/1});
  fx.sync.record({0, 0, d.id, stf::AccessMode::kWrite,
                  stf::SyncKind::kRelease, /*stamp=*/2});
  fx.sync.record({1, 1, d.id, stf::AccessMode::kWrite,
                  stf::SyncKind::kRelease, /*stamp=*/3});
  return fx;
}

}  // namespace rio::analysis::fixtures
