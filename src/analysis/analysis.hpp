// Umbrella header for the static/dynamic analysis subsystem.
//
//   * flow_lint  — pure static lint over a TaskFlow + DependencyGraph
//                  (hazards, mapping diagnostics, counter-width risks);
//   * hb_checker — precise happens-before race check over recorded
//                  acquire/release events (strictly stronger than the
//                  interval-overlap test in Trace::validate);
//   * fixtures   — known-bad flows the tests and the CLI's lintfix:*
//                  workloads use to prove each finding fires.
#pragma once

#include "analysis/finding.hpp"    // IWYU pragma: export
#include "analysis/fixtures.hpp"   // IWYU pragma: export
#include "analysis/flow_lint.hpp"  // IWYU pragma: export
#include "analysis/hb_checker.hpp" // IWYU pragma: export
