// Flat W-wide vector clocks stored in one buffer.
//
// Shared by the happens-before race checker (analysis/hb_checker.cpp) and
// the implementation-level model checker's dynamic partial-order reduction
// (modelcheck/impl.cpp): both need "rows of W logical clocks" with join
// (component-wise max) and assign, and both want the rows contiguous so a
// whole table is one allocation.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace rio::analysis {

class VectorClocks {
 public:
  VectorClocks(std::size_t rows, std::size_t width)
      : width_(width), v_(rows * width, 0) {}

  [[nodiscard]] std::size_t width() const noexcept { return width_; }

  std::uint64_t* row(std::size_t r) { return &v_[r * width_]; }
  [[nodiscard]] const std::uint64_t* row(std::size_t r) const {
    return &v_[r * width_];
  }

  /// dst := component-wise max(dst, src).
  void join(std::size_t dst, const std::uint64_t* src) {
    std::uint64_t* d = row(dst);
    for (std::size_t i = 0; i < width_; ++i) d[i] = std::max(d[i], src[i]);
  }

  void assign(std::size_t dst, const std::uint64_t* src) {
    std::copy(src, src + width_, row(dst));
  }

  /// Does row `r` dominate (>= component-wise) the clock `src`? The
  /// happens-before test the DPOR backtrack rule is built on.
  [[nodiscard]] bool dominates(std::size_t r, const std::uint64_t* src) const {
    const std::uint64_t* d = row(r);
    for (std::size_t i = 0; i < width_; ++i)
      if (d[i] < src[i]) return false;
    return true;
  }

  void reset() { std::fill(v_.begin(), v_.end(), 0); }

 private:
  std::size_t width_;
  std::vector<std::uint64_t> v_;
};

}  // namespace rio::analysis
