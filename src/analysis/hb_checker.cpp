#include "analysis/hb_checker.hpp"

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "analysis/vector_clock.hpp"

namespace rio::analysis {
namespace {

using Clocks = VectorClocks;

std::string task_ref(const stf::TaskFlow& flow, stf::TaskId t) {
  std::string s = "task " + std::to_string(t);
  const std::string& name = flow.task(t).name;
  if (!name.empty()) s += " '" + name + "'";
  return s;
}

std::string data_ref(const stf::TaskFlow& flow, stf::DataId d) {
  const std::string& name = flow.registry().name(d);
  if (!name.empty()) return "'" + name + "'";
  return "data " + std::to_string(d);
}

}  // namespace

Report check_happens_before(const stf::TaskFlow& flow,
                            const stf::SyncTrace& sync,
                            const HbOptions& opts) {
  Report report;
  if (sync.empty()) {
    report.add("RC302", Severity::kWarning,
               "no synchronization events recorded; run the engine with "
               "collect_sync enabled");
    return report;
  }

  std::vector<stf::SyncEvent> events = sync.events();
  std::sort(events.begin(), events.end(),
            [](const stf::SyncEvent& a, const stf::SyncEvent& b) {
              return a.stamp < b.stamp;
            });

  stf::WorkerId max_worker = 0;
  for (const stf::SyncEvent& ev : events)
    max_worker = std::max(max_worker, ev.worker);
  const std::size_t W = static_cast<std::size_t>(max_worker) + 1;
  const std::size_t n_tasks = flow.num_tasks();
  const std::size_t n_data = flow.num_data();

  // Per-worker current clock; own component starts at 1 so epoch 0 means
  // "never observed".
  Clocks worker_clock(W, W);
  for (std::size_t w = 0; w < W; ++w) worker_clock.row(w)[w] = 1;
  // Per-data join of clocks at write releases / read releases.
  Clocks write_rel(n_data, W);
  Clocks read_rel(n_data, W);
  // Per-task: executing worker, epoch (own-component value while running),
  // and the clock snapshot after its acquires completed.
  std::vector<stf::WorkerId> task_worker(n_tasks, stf::kInvalidWorker);
  std::vector<std::uint64_t> task_epoch(n_tasks, 0);
  Clocks task_acq(n_tasks, W);
  std::vector<stf::TaskId> current(W, stf::kInvalidTask);

  for (const stf::SyncEvent& ev : events) {
    if (ev.task >= n_tasks || ev.data >= n_data) continue;  // foreign event
    const std::size_t w = ev.worker;
    if (current[w] != ev.task) {
      // First event of a new task on this worker: open a fresh epoch.
      current[w] = ev.task;
      std::uint64_t* c = worker_clock.row(w);
      ++c[w];
      task_worker[ev.task] = ev.worker;
      task_epoch[ev.task] = c[w];
    }
    if (ev.kind == stf::SyncKind::kAcquire) {
      // Completing a dependency wait on `data` synchronizes with the
      // releases the wait could have observed: prior writes always; prior
      // reads too when this access is itself a write.
      worker_clock.join(w, write_rel.row(ev.data));
      if (stf::is_write(ev.mode))
        worker_clock.join(w, read_rel.row(ev.data));
      task_acq.assign(ev.task, worker_clock.row(w));
    } else {
      // Releases are stamped after the body: publishing into the per-data
      // clocks here is what lets successors order after this whole task.
      if (stf::is_write(ev.mode))
        write_rel.join(ev.data, worker_clock.row(w));
      else
        read_rel.join(ev.data, worker_clock.row(w));
    }
  }

  // Tasks with accesses that never appeared in the sync trace cannot be
  // checked; say so rather than silently passing them.
  std::uint64_t missing = 0;
  stf::TaskId first_missing = stf::kInvalidTask;
  for (const stf::Task& t : flow.tasks()) {
    if (t.accesses.empty()) continue;
    if (task_worker[t.id] == stf::kInvalidWorker) {
      if (missing == 0) first_missing = t.id;
      ++missing;
    }
  }
  if (missing > 0)
    report.add("RC304", Severity::kWarning,
               std::to_string(missing) +
                   " task(s) with accesses are absent from the sync trace "
                   "(first: " +
                   task_ref(flow, first_missing) + "); they were not checked",
               first_missing, stf::kInvalidData, missing);

  // t1 happens-before t2 iff t2's acquire snapshot saw t1's epoch. Releases
  // are post-body, so observing the epoch implies the whole task finished.
  auto ordered = [&](stf::TaskId t1, stf::TaskId t2) {
    return task_epoch[t1] <= task_acq.row(t2)[task_worker[t1]];
  };

  // Group accessors per data object, then scan conflicting pairs.
  struct Accessor {
    stf::TaskId task;
    bool reads = false;
    bool writes = false;
  };
  std::vector<std::vector<Accessor>> by_data(n_data);
  for (const stf::Task& t : flow.tasks()) {
    if (task_worker[t.id] == stf::kInvalidWorker) continue;
    for (const stf::Access& a : t.accesses) {
      auto& v = by_data[a.data];
      if (v.empty() || v.back().task != t.id) v.push_back({t.id});
      v.back().reads |= stf::is_read(a.mode);
      v.back().writes |= stf::is_write(a.mode);
    }
  }

  std::uint64_t checks = 0;
  std::uint64_t races = 0;
  bool truncated = false;
  for (stf::DataId d = 0; d < n_data && !truncated; ++d) {
    const auto& v = by_data[d];
    for (std::size_t i = 0; i < v.size() && !truncated; ++i) {
      for (std::size_t j = i + 1; j < v.size(); ++j) {
        if (!v[i].writes && !v[j].writes) continue;  // read/read never races
        if (++checks > opts.max_pair_checks) {
          truncated = true;
          break;
        }
        const stf::TaskId t1 = v[i].task;
        const stf::TaskId t2 = v[j].task;
        if (ordered(t1, t2) || ordered(t2, t1)) continue;
        ++races;
        if (races <= opts.max_reported_races)
          report.add(
              "RC301", Severity::kError,
              "data race on " + data_ref(flow, d) + ": " +
                  task_ref(flow, t1) + " (" +
                  std::string(v[i].writes ? "write" : "read") + ", worker " +
                  std::to_string(task_worker[t1]) + ") and " +
                  task_ref(flow, t2) + " (" +
                  std::string(v[j].writes ? "write" : "read") + ", worker " +
                  std::to_string(task_worker[t2]) +
                  ") are not ordered by happens-before",
              t1, d);
      }
    }
  }
  if (races > opts.max_reported_races)
    report.add("RC301", Severity::kError,
               std::to_string(races - opts.max_reported_races) +
                   " further race pair(s) not listed",
               stf::kInvalidTask, stf::kInvalidData,
               races - opts.max_reported_races);
  if (truncated)
    report.add("RC303", Severity::kInfo,
               "pair scan stopped after " +
                   std::to_string(opts.max_pair_checks) +
                   " comparisons; later pairs were not checked");

  report.add_metric(std::to_string(events.size()) + " sync events, " +
                    std::to_string(W) + " workers, " +
                    std::to_string(checks) + " conflicting pairs checked, " +
                    std::to_string(races) + " race(s)");
  return report;
}

}  // namespace rio::analysis
