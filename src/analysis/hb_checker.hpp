// Precise happens-before race checking over recorded sync events.
//
// The interval test in Trace::validate calls two conflicting tasks racy
// only when their [start,end) wall-clock intervals overlap — a lucky
// scheduling gap hides the race. This checker ignores wall clocks entirely:
// it replays the acquire/release events the engines record (Config::
// collect_sync) in global stamp order, builds vector clocks, and reports
// every conflicting access pair that no happens-before path orders. A race
// that happened to execute without overlapping is still reported.
//
// Soundness contract with the engines (rio::rt::Runtime, coor::Runtime):
//   * a task's ACQUIRE stamps are drawn after all its dependency waits
//     complete (and after reduction locks are held);
//   * a task's RELEASE stamps are drawn after its body, before anything is
//     published that could admit a successor.
// Hence every release an acquire could have observed carries a smaller
// stamp, and replaying in stamp order never fabricates an ordering the
// execution did not enforce — no false races on correct runs.
//
// Finding codes:
//   RC301  race                 error    conflicting pair, HB-unordered
//   RC302  no sync events       warning  trace empty (collect_sync off?)
//   RC303  pair check truncated info     quadratic pair scan hit its cap
//   RC304  incomplete trace     warning  flow tasks missing from the trace
#pragma once

#include <cstdint>

#include "analysis/finding.hpp"
#include "stf/task_flow.hpp"
#include "stf/trace.hpp"

namespace rio::analysis {

struct HbOptions {
  /// The pair scan is quadratic in tasks-per-data; stop after this many
  /// comparisons and note the truncation (RC303).
  std::uint64_t max_pair_checks = 1u << 22;
  /// Cap on individual RC301 findings; the rest fold into one aggregate.
  std::uint64_t max_reported_races = 100;
};

/// Replays `sync` (recorded while executing `flow`) and reports every
/// conflicting, happens-before-unordered access pair.
[[nodiscard]] Report check_happens_before(const stf::TaskFlow& flow,
                                          const stf::SyncTrace& sync,
                                          const HbOptions& opts = {});

}  // namespace rio::analysis
