// Known-bad flows for exercising the analyzers.
//
// Each fixture is deliberately minimal: one hazard, a couple of tasks, so a
// test (or `rioflow lint --workload lintfix:<name>`) can assert that the
// analyzer reports exactly the expected finding code. The race fixture also
// carries a hand-built Trace/SyncTrace pair whose wall-clock intervals are
// disjoint — the interval overlap test passes while the happens-before
// checker must still report the race.
#pragma once

#include <vector>

#include "analysis/flow_lint.hpp"
#include "stf/task_flow.hpp"
#include "stf/trace.hpp"

namespace rio::analysis::fixtures {

/// RF001: a task reads an uninitialized scratch object before any write.
[[nodiscard]] stf::TaskFlow bad_uninit_read();

/// RF002: a write is overwritten with no intervening read.
[[nodiscard]] stf::TaskFlow bad_dead_write();

/// RF003: a data object is registered but never accessed.
[[nodiscard]] stf::TaskFlow bad_unused_handle();

/// RF004: a dependency edge is transitively implied by a two-hop path.
[[nodiscard]] stf::TaskFlow bad_redundant_edge();

/// RF501: a chain of tasks whose median cost sits far below the fusion
/// threshold — the flow `optimize --passes fuse` exists for.
[[nodiscard]] stf::TaskFlow bad_tiny_tasks();

/// RC301 material: two unordered writes whose recorded intervals do not
/// overlap. `trace` passes Trace::validate (the interval test); `sync`
/// makes check_happens_before report the race.
struct RaceFixture {
  stf::TaskFlow flow;
  stf::Trace trace;
  stf::SyncTrace sync;
};
[[nodiscard]] RaceFixture injected_race();

/// RH4xx material: a flow plus the hybrid phase partition to lint it under.
struct PhaseFixture {
  stf::TaskFlow flow;
  std::vector<LintPhase> phases;
};

/// RH401: a static phase whose mapping sends a task beyond the worker set.
[[nodiscard]] PhaseFixture bad_phase_mapping();

/// RH402: a partition containing a zero-task phase (barrier-only overhead).
[[nodiscard]] PhaseFixture bad_empty_phase();

/// RH403: a dependency edge crossing a phase boundary — serialized by the
/// barrier, not by any runtime protocol. Info, not a bug.
[[nodiscard]] PhaseFixture cross_phase_dep();

}  // namespace rio::analysis::fixtures
