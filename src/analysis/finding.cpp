#include "analysis/finding.hpp"

#include <ostream>

#include "support/json.hpp"

namespace rio::analysis {

void Report::print(std::ostream& os) const {
  std::size_t errors = 0, warnings = 0, infos = 0;
  for (const Finding& f : findings_) {
    os << to_string(f.severity) << ' ' << f.code << ": " << f.message << '\n';
    switch (f.severity) {
      case Severity::kError: ++errors; break;
      case Severity::kWarning: ++warnings; break;
      case Severity::kInfo: ++infos; break;
    }
  }
  for (const std::string& m : metrics_) os << "metric: " << m << '\n';
  os << errors << " error(s), " << warnings << " warning(s), " << infos
     << " info\n";
}

void Report::write_json(std::ostream& os, const std::string& schema) const {
  std::size_t errors = 0, warnings = 0, infos = 0;
  for (const Finding& f : findings_) {
    switch (f.severity) {
      case Severity::kError: ++errors; break;
      case Severity::kWarning: ++warnings; break;
      case Severity::kInfo: ++infos; break;
    }
  }
  os << "{\n  \"schema\": " << support::json_quote(schema)
     << ",\n  \"findings\": [";
  for (std::size_t i = 0; i < findings_.size(); ++i) {
    const Finding& f = findings_[i];
    os << (i == 0 ? "\n" : ",\n") << "    {\"code\": "
       << support::json_quote(f.code) << ", \"severity\": "
       << support::json_quote(to_string(f.severity)) << ", \"task\": ";
    if (f.task != stf::kInvalidTask) os << f.task;
    else os << "null";
    os << ", \"data\": ";
    if (f.data != stf::kInvalidData) os << f.data;
    else os << "null";
    os << ", \"count\": " << f.count
       << ", \"message\": " << support::json_quote(f.message) << "}";
  }
  os << (findings_.empty() ? "]" : "\n  ]") << ",\n  \"metrics\": [";
  for (std::size_t i = 0; i < metrics_.size(); ++i)
    os << (i == 0 ? "\n    " : ",\n    ") << support::json_quote(metrics_[i]);
  os << (metrics_.empty() ? "]" : "\n  ]")
     << ",\n  \"summary\": {\"errors\": " << errors
     << ", \"warnings\": " << warnings << ", \"infos\": " << infos
     << ", \"worst\": " << support::json_quote(to_string(worst_severity()))
     << "}\n}\n";
}

}  // namespace rio::analysis
