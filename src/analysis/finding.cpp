#include "analysis/finding.hpp"

#include <ostream>

namespace rio::analysis {

void Report::print(std::ostream& os) const {
  std::size_t errors = 0, warnings = 0, infos = 0;
  for (const Finding& f : findings_) {
    os << to_string(f.severity) << ' ' << f.code << ": " << f.message << '\n';
    switch (f.severity) {
      case Severity::kError: ++errors; break;
      case Severity::kWarning: ++warnings; break;
      case Severity::kInfo: ++infos; break;
    }
  }
  for (const std::string& m : metrics_) os << "metric: " << m << '\n';
  os << errors << " error(s), " << warnings << " warning(s), " << infos
     << " info\n";
}

}  // namespace rio::analysis
