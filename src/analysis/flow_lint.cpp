#include "analysis/flow_lint.hpp"

#include <algorithm>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace rio::analysis {
namespace {

std::string task_ref(const stf::TaskFlow& flow, stf::TaskId t) {
  std::string s = "task " + std::to_string(t);
  const std::string& name = flow.task(t).name;
  if (!name.empty()) s += " '" + name + "'";
  return s;
}

std::string data_ref(const stf::TaskFlow& flow, stf::DataId d) {
  const std::string& name = flow.registry().name(d);
  if (!name.empty()) return "'" + name + "'";
  return "data " + std::to_string(d);
}

/// Per-data scan state; mirrors the dependency scanner's frontier.
struct DataState {
  stf::TaskId last_write = stf::kInvalidTask;
  std::uint64_t reads_since_write = 0;
  std::uint64_t max_reads_between_writes = 0;
  std::uint64_t total_reads = 0;
  std::uint64_t total_writes = 0;
};

void lint_accesses(const stf::TaskFlow& flow, const LintOptions& opts,
                   Report& report) {
  const std::size_t num_data = flow.num_data();
  std::vector<DataState> state(num_data);
  std::vector<bool> uninit_reported(num_data, false);
  std::vector<std::pair<stf::TaskId, stf::DataId>> dead_writes;
  std::uint64_t zero_access_tasks = 0;
  stf::TaskId first_zero_access = stf::kInvalidTask;

  for (const stf::Task& task : flow.tasks()) {
    if (task.accesses.empty()) {
      if (zero_access_tasks == 0) first_zero_access = task.id;
      ++zero_access_tasks;
      continue;
    }
    // Reads first, then writes: a ReadWrite/Reduction access consumes the
    // previous value before replacing it, so it keeps the prior write live.
    for (const stf::Access& a : task.accesses) {
      if (!stf::is_read(a.mode)) continue;
      DataState& ds = state[a.data];
      if (ds.total_writes == 0 && !flow.registry().initialized(a.data) &&
          !uninit_reported[a.data]) {
        uninit_reported[a.data] = true;
        report.add("RF001", Severity::kWarning,
                   task_ref(flow, task.id) + " reads " +
                       data_ref(flow, a.data) +
                       " before any task writes it (object was created "
                       "uninitialized)",
                   task.id, a.data);
      }
      ++ds.total_reads;
      ++ds.reads_since_write;
      if (ds.reads_since_write > ds.max_reads_between_writes)
        ds.max_reads_between_writes = ds.reads_since_write;
    }
    for (const stf::Access& a : task.accesses) {
      if (!stf::is_write(a.mode)) continue;
      DataState& ds = state[a.data];
      if (ds.last_write != stf::kInvalidTask && ds.reads_since_write == 0)
        dead_writes.emplace_back(ds.last_write, a.data);
      ds.last_write = task.id;
      ds.reads_since_write = 0;
      ++ds.total_writes;
    }
  }

  for (const auto& [task, data] : dead_writes) {
    // A write to an object nothing ever reads is the write-only-object
    // pattern (RF006 below), not a dead store within a live object.
    if (state[data].total_reads == 0) continue;
    report.add("RF002", Severity::kWarning,
               task_ref(flow, task) + " writes " + data_ref(flow, data) +
                   " but the value is overwritten before any task reads it",
               task, data);
  }

  for (stf::DataId d = 0; d < num_data; ++d) {
    const DataState& ds = state[d];
    if (ds.total_reads == 0 && ds.total_writes == 0)
      report.add("RF003", Severity::kWarning,
                 data_ref(flow, d) +
                     " is registered but no task ever accesses it",
                 stf::kInvalidTask, d);
  }

  if (zero_access_tasks > 0)
    report.add("RF005", Severity::kInfo,
               std::to_string(zero_access_tasks) +
                   " task(s) declare no data accesses (first: " +
                   task_ref(flow, first_zero_access) +
                   "); they synchronize with nothing",
               first_zero_access, stf::kInvalidData, zero_access_tasks);

  std::uint64_t write_only = 0;
  stf::DataId first_write_only = stf::kInvalidData;
  for (stf::DataId d = 0; d < num_data; ++d) {
    if (state[d].total_writes > 0 && state[d].total_reads == 0) {
      if (write_only == 0) first_write_only = d;
      ++write_only;
    }
  }
  if (write_only > 0)
    report.add("RF006", Severity::kInfo,
               std::to_string(write_only) +
                   " data object(s) are written but never read (first: " +
                   data_ref(flow, first_write_only) + ")",
               stf::kInvalidTask, first_write_only, write_only);

  // RP2xx — protocol counter widths (Section 3.3 keeps one task-id word and
  // one reads-since-write counter per data object).
  if (opts.counter_bits < 64) {
    const std::uint64_t limit = std::uint64_t{1} << opts.counter_bits;
    if (flow.num_tasks() >= limit)
      report.add("RP201", Severity::kWarning,
                 "flow has " + std::to_string(flow.num_tasks()) +
                     " tasks; a " + std::to_string(opts.counter_bits) +
                     "-bit task-id counter overflows");
    std::uint64_t worst = 0;
    stf::DataId worst_d = stf::kInvalidData;
    for (stf::DataId d = 0; d < num_data; ++d)
      if (state[d].max_reads_between_writes > worst) {
        worst = state[d].max_reads_between_writes;
        worst_d = d;
      }
    if (worst >= limit)
      report.add("RP202", Severity::kWarning,
                 data_ref(flow, worst_d) + " sees " + std::to_string(worst) +
                     " reads between writes; a " +
                     std::to_string(opts.counter_bits) +
                     "-bit reads-since-write counter overflows",
                 stf::kInvalidTask, worst_d);
  }
}

void lint_redundant_edges(const stf::TaskFlow& flow,
                          const stf::DependencyGraph& graph,
                          const LintOptions& opts, Report& report) {
  const std::size_t n = graph.num_tasks();
  if (n == 0) return;
  if (n > opts.max_reachability_tasks) {
    report.add_metric("redundant-edge analysis skipped (" +
                      std::to_string(n) + " tasks > cap of " +
                      std::to_string(opts.max_reachability_tasks) + ")");
    return;
  }
  // Ancestor bitsets in task-id order (ids are already topological).
  const std::size_t words = (n + 63) / 64;
  std::vector<std::uint64_t> anc(n * words, 0);
  std::vector<std::uint64_t> joined(words);
  std::uint64_t redundant = 0;
  stf::TaskId first_pred = stf::kInvalidTask;
  stf::TaskId first_succ = stf::kInvalidTask;
  for (stf::TaskId t = 0; t < n; ++t) {
    std::uint64_t* mine = &anc[t * words];
    const auto& preds = graph.predecessors(t);
    // joined = union of the ancestors of every predecessor: a direct edge
    // (p, t) is transitively implied iff p is an ancestor of another pred.
    std::fill(joined.begin(), joined.end(), 0);
    for (stf::TaskId p : preds) {
      const std::uint64_t* pa = &anc[p * words];
      for (std::size_t w = 0; w < words; ++w) joined[w] |= pa[w];
    }
    for (stf::TaskId p : preds) {
      if ((joined[p / 64] >> (p % 64)) & 1u) {
        if (redundant == 0) {
          first_pred = p;
          first_succ = t;
        }
        ++redundant;
      }
      mine[p / 64] |= std::uint64_t{1} << (p % 64);
    }
    for (std::size_t w = 0; w < words; ++w) mine[w] |= joined[w];
  }
  if (redundant > 0)
    report.add("RF004", Severity::kInfo,
               std::to_string(redundant) +
                   " dependency edge(s) are transitively implied by other "
                   "paths (first: " +
                   task_ref(flow, first_pred) + " -> " +
                   task_ref(flow, first_succ) +
                   "); harmless but they inflate in-degrees",
               first_succ, stf::kInvalidData, redundant);
}

void lint_mapping(const stf::TaskFlow& flow, const stf::DependencyGraph& graph,
                  const LintOptions& opts, Report& report) {
  const rt::Mapping& map = *opts.mapping;
  const std::uint32_t p = opts.num_workers;
  std::vector<std::uint64_t> load(p, 0);
  std::uint64_t out_of_range = 0;
  stf::TaskId first_bad = stf::kInvalidTask;
  for (const stf::Task& task : flow.tasks()) {
    const stf::WorkerId w = map(task.id);
    if (w >= p) {
      if (out_of_range == 0) first_bad = task.id;
      ++out_of_range;
      continue;
    }
    load[w] += task.cost > 0 ? task.cost : 1;
  }
  if (out_of_range > 0) {
    report.add("RM101", Severity::kError,
               "mapping '" + map.name() + "' sends " +
                   std::to_string(out_of_range) +
                   " task(s) to workers >= " + std::to_string(p) +
                   " (first: " + task_ref(flow, first_bad) + ")",
               first_bad, stf::kInvalidData, out_of_range);
    return;  // load numbers below would be meaningless
  }
  std::uint64_t max_load = 0, total = 0;
  std::uint32_t max_w = 0;
  for (std::uint32_t w = 0; w < p; ++w) {
    total += load[w];
    if (load[w] > max_load) {
      max_load = load[w];
      max_w = w;
    }
  }
  const double mean = p > 0 ? static_cast<double>(total) / p : 0.0;
  if (mean > 0.0) {
    const double ratio = static_cast<double>(max_load) / mean;
    if (ratio > opts.imbalance_threshold)
      report.add("RM102", Severity::kWarning,
                 "mapping '" + map.name() + "' is imbalanced: worker " +
                     std::to_string(max_w) + " carries " +
                     std::to_string(max_load) + " cost units, " +
                     std::to_string(ratio) + "x the mean");
    report.add_metric("per-worker load: max " + std::to_string(max_load) +
                      ", mean " + std::to_string(mean) + " (mapping '" +
                      map.name() + "', " + std::to_string(p) + " workers)");
  }
  const std::size_t width = graph.max_ready_width();
  if (p > width)
    report.add("RM103", Severity::kInfo,
               std::to_string(p) + " workers exceed the flow's maximum "
                   "ready width of " + std::to_string(width) +
                   "; some workers can never be busy");
}

/// RH4xx — hybrid phase-boundary diagnostics. A phase boundary is a
/// barrier: tasks of later phases start only after every earlier phase
/// drained, so the structure of the partition itself (not the protocol)
/// decides how much concurrency survives.
void lint_phases(const stf::TaskFlow& flow, const stf::DependencyGraph& graph,
                 const LintOptions& opts, Report& report) {
  const std::vector<LintPhase>& phases = *opts.phases;
  const std::size_t n = flow.num_tasks();

  // task -> phase index (tasks outside every phase keep kNone).
  constexpr std::size_t kNone = static_cast<std::size_t>(-1);
  std::vector<std::size_t> phase_of(n, kNone);
  std::uint64_t empty = 0;
  std::size_t first_empty = 0;
  for (std::size_t pi = 0; pi < phases.size(); ++pi) {
    const LintPhase& ph = phases[pi];
    if (ph.count == 0) {
      if (empty == 0) first_empty = pi;
      ++empty;
      continue;
    }
    for (std::size_t k = 0; k < ph.count; ++k) {
      const stf::TaskId t = ph.first + k;
      if (t < n) phase_of[t] = pi;
    }
  }
  if (empty > 0)
    report.add("RH402", Severity::kWarning,
               std::to_string(empty) + " empty phase(s) (first: phase " +
                   std::to_string(first_empty) +
                   "); their barriers are pure overhead",
               stf::kInvalidTask, stf::kInvalidData, empty);

  // RH401: a static phase whose mapping sends a task outside the worker
  // set. Same hazard as RM101, but scoped to the phase that would crash.
  if (opts.num_workers > 0) {
    std::uint64_t bad = 0;
    stf::TaskId first_bad = stf::kInvalidTask;
    std::size_t first_bad_phase = 0;
    for (std::size_t pi = 0; pi < phases.size(); ++pi) {
      const LintPhase& ph = phases[pi];
      if (!ph.is_static || !ph.mapping.valid()) continue;
      for (std::size_t k = 0; k < ph.count; ++k) {
        const stf::TaskId t = ph.first + k;
        if (t >= n) continue;
        if (ph.mapping(t) >= opts.num_workers) {
          if (bad == 0) {
            first_bad = t;
            first_bad_phase = pi;
          }
          ++bad;
        }
      }
    }
    if (bad > 0)
      report.add("RH401", Severity::kError,
                 "static phase mapping sends " + std::to_string(bad) +
                     " task(s) to workers >= " +
                     std::to_string(opts.num_workers) + " (first: " +
                     task_ref(flow, first_bad) + " in phase " +
                     std::to_string(first_bad_phase) + ")",
                 first_bad, stf::kInvalidData, bad);
  }

  // RH403: dependency edges whose endpoints sit in different phases. Each
  // one is satisfied by the barrier rather than by any runtime protocol —
  // a count of how load-bearing the partition's serialization is.
  std::uint64_t crossing = 0;
  stf::TaskId first_src = stf::kInvalidTask, first_dst = stf::kInvalidTask;
  for (stf::TaskId t = 0; t < n; ++t) {
    for (stf::TaskId p : graph.predecessors(t)) {
      if (phase_of[p] == kNone || phase_of[t] == kNone) continue;
      if (phase_of[p] != phase_of[t]) {
        if (crossing == 0) {
          first_src = p;
          first_dst = t;
        }
        ++crossing;
      }
    }
  }
  if (crossing > 0)
    report.add("RH403", Severity::kInfo,
               std::to_string(crossing) +
                   " dependency edge(s) cross phase boundaries and are "
                   "serialized by the barrier (first: " +
                   task_ref(flow, first_src) + " -> " +
                   task_ref(flow, first_dst) + ")",
               first_dst, stf::kInvalidData, crossing);
  report.add_metric(std::to_string(phases.size()) + " phases, " +
                    std::to_string(crossing) + " cross-phase edge(s)");
}

}  // namespace

/// RF501: the paper's Fig. 2-4 cliff — flows of tiny tasks pay more runtime
/// overhead than work. Median (not mean) so a few expensive tasks cannot
/// mask a fine-grained bulk.
void lint_granularity(const stf::TaskFlow& flow, const LintOptions& opts,
                      Report& report) {
  if (flow.num_tasks() < opts.fusion_min_tasks || opts.fusion_threshold == 0)
    return;
  std::vector<std::uint64_t> costs;
  costs.reserve(flow.num_tasks());
  for (const stf::Task& t : flow.tasks()) costs.push_back(t.cost);
  const std::size_t mid = costs.size() / 2;
  std::nth_element(costs.begin(), costs.begin() + mid, costs.end());
  const std::uint64_t median = costs[mid];
  if (median == 0 || median >= opts.fusion_threshold) return;
  report.add("RF501", Severity::kWarning,
             "median task cost " + std::to_string(median) +
                 " is below the fusion threshold " +
                 std::to_string(opts.fusion_threshold) +
                 "; this flow would benefit from `optimize --passes fuse`",
             stf::kInvalidTask, stf::kInvalidData, flow.num_tasks());
}

Report lint_flow(const stf::TaskFlow& flow, const stf::DependencyGraph& graph,
                 const LintOptions& opts) {
  Report report;
  lint_accesses(flow, opts, report);
  lint_granularity(flow, opts, report);
  lint_redundant_edges(flow, graph, opts, report);
  if (opts.mapping != nullptr && opts.mapping->valid() && opts.num_workers > 0)
    lint_mapping(flow, graph, opts, report);
  if (opts.phases != nullptr && !opts.phases->empty())
    lint_phases(flow, graph, opts, report);

  const std::uint64_t cp = graph.critical_path_cost(flow);
  std::uint64_t total = 0;
  for (const stf::Task& t : flow.tasks()) total += t.cost > 0 ? t.cost : 1;
  report.add_metric("tasks " + std::to_string(flow.num_tasks()) + ", data " +
                    std::to_string(flow.num_data()) + ", edges " +
                    std::to_string(graph.num_edges()));
  if (cp > 0)
    report.add_metric(
        "critical path cost " + std::to_string(cp) + " of " +
        std::to_string(total) + " total (avg parallelism " +
        std::to_string(static_cast<double>(total) / static_cast<double>(cp)) +
        ", max ready width " + std::to_string(graph.max_ready_width()) + ")");
  return report;
}

}  // namespace rio::analysis
