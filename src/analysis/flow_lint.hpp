// Static flow lint: pure analysis over a TaskFlow and its DependencyGraph.
//
// Nothing here executes a task. One scan in flow order reproduces exactly
// the state the dependency scanner keeps (last writer, readers since), so
// every hazard is decided the same way the runtimes would order it.
//
// Finding codes (see docs/analysis.md):
//   RF001  uninitialized read     warning  read before the first write of a
//                                          create_uninitialized object
//   RF002  dead write             warning  write overwritten with no read in
//                                          between (object is read elsewhere)
//   RF003  unused handle          warning  data registered, never accessed
//   RF004  redundant edges        info     transitively implied dep edges
//   RF005  zero-access tasks      info     tasks declaring no accesses
//   RF006  write-only objects     info     data written but never read
//   RM101  mapping out of range   error    mapping(t) >= num_workers
//   RM102  load imbalance         warning  max/mean per-worker cost too high
//   RM103  excess workers         info     workers > max ready width
//   RP201  task counter overflow  warning  tasks >= 2^counter_bits
//   RP202  read counter overflow  warning  reads between writes >= 2^bits
#pragma once

#include <cstdint>

#include "analysis/finding.hpp"
#include "rio/mapping.hpp"
#include "stf/dependency.hpp"
#include "stf/task_flow.hpp"

namespace rio::analysis {

struct LintOptions {
  /// Optional deterministic mapping to diagnose (RM1xx). Requires
  /// num_workers > 0 when set.
  const rt::Mapping* mapping = nullptr;
  std::uint32_t num_workers = 0;

  /// Width of the RIO protocol counters (task ids, reads-since-write).
  /// 64 (the shipped width) never overflows; narrower embedded builds can
  /// pass their width to get RP2xx findings.
  std::uint32_t counter_bits = 64;

  /// Redundant-edge detection keeps one ancestor bitset per task, so memory
  /// is quadratic; flows beyond this many tasks skip the pass (noted as a
  /// metric line, not a finding).
  std::size_t max_reachability_tasks = 8192;

  /// RM102 threshold on (max per-worker cost) / (mean per-worker cost).
  double imbalance_threshold = 2.0;
};

/// Lints `flow` against `graph` (which must have been built from the same
/// flow). Pure: no task body runs, no data is touched.
[[nodiscard]] Report lint_flow(const stf::TaskFlow& flow,
                               const stf::DependencyGraph& graph,
                               const LintOptions& opts = {});

}  // namespace rio::analysis
