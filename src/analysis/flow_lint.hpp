// Static flow lint: pure analysis over a TaskFlow and its DependencyGraph.
//
// Nothing here executes a task. One scan in flow order reproduces exactly
// the state the dependency scanner keeps (last writer, readers since), so
// every hazard is decided the same way the runtimes would order it.
//
// Finding codes (see docs/analysis.md):
//   RF001  uninitialized read     warning  read before the first write of a
//                                          create_uninitialized object
//   RF002  dead write             warning  write overwritten with no read in
//                                          between (object is read elsewhere)
//   RF003  unused handle          warning  data registered, never accessed
//   RF004  redundant edges        info     transitively implied dep edges
//   RF005  zero-access tasks      info     tasks declaring no accesses
//   RF006  write-only objects     info     data written but never read
//   RM101  mapping out of range   error    mapping(t) >= num_workers
//   RM102  load imbalance         warning  max/mean per-worker cost too high
//   RM103  excess workers         info     workers > max ready width
//   RP201  task counter overflow  warning  tasks >= 2^counter_bits
//   RP202  read counter overflow  warning  reads between writes >= 2^bits
//   RH401  phase mapping range    error    static phase mapping(t) >= workers
//   RH402  empty phase            warning  a phase containing no tasks (its
//                                          barrier is pure overhead)
//   RH403  cross-phase deps       info     dependency edges crossing a phase
//                                          boundary (each is serialized by
//                                          the barrier, not by the protocol)
//   RF501  tiny-task granularity  warning  median task cost below the fusion
//                                          threshold — the flow would benefit
//                                          from `optimize --passes fuse`
#pragma once

#include <cstdint>
#include <vector>

#include "analysis/finding.hpp"
#include "rio/mapping.hpp"
#include "stf/dependency.hpp"
#include "stf/task_flow.hpp"

namespace rio::analysis {

/// One phase of a hybrid partition, described structurally so the linter
/// does not depend on the hybrid runtime: a contiguous task slice
/// [first, first + count) and, for static phases, the mapping it runs
/// under. Mirrors hybrid::Phase (src/hybrid/runtime.hpp).
struct LintPhase {
  stf::TaskId first = 0;
  std::size_t count = 0;
  bool is_static = false;
  rt::Mapping mapping;  ///< checked only when is_static and valid()
};

struct LintOptions {
  /// Optional deterministic mapping to diagnose (RM1xx). Requires
  /// num_workers > 0 when set.
  const rt::Mapping* mapping = nullptr;
  std::uint32_t num_workers = 0;

  /// Width of the RIO protocol counters (task ids, reads-since-write).
  /// 64 (the shipped width) never overflows; narrower embedded builds can
  /// pass their width to get RP2xx findings.
  std::uint32_t counter_bits = 64;

  /// Redundant-edge detection keeps one ancestor bitset per task, so memory
  /// is quadratic; flows beyond this many tasks skip the pass (noted as a
  /// metric line, not a finding).
  std::size_t max_reachability_tasks = 8192;

  /// RM102 threshold on (max per-worker cost) / (mean per-worker cost).
  double imbalance_threshold = 2.0;

  /// Optional hybrid phase partition to diagnose (RH4xx). Phases must be
  /// in flow order; RH401 additionally needs num_workers > 0.
  const std::vector<LintPhase>* phases = nullptr;

  /// RF501 threshold: warn when the flow's median task cost is positive but
  /// strictly below this (matches flowpass::PassOptions::fuse_threshold).
  /// Flows with an all-zero cost model skip the check — fusion advice means
  /// nothing without costs.
  std::uint64_t fusion_threshold = 1000;

  /// RF501 only fires on flows with at least this many tasks: per-task
  /// overhead is a problem of scale, and warning on a 4-task fixture would
  /// be noise (the analyzer fixtures all use cost-1 virtual tasks).
  std::size_t fusion_min_tasks = 16;
};

/// Lints `flow` against `graph` (which must have been built from the same
/// flow). Pure: no task body runs, no data is touched.
[[nodiscard]] Report lint_flow(const stf::TaskFlow& flow,
                               const stf::DependencyGraph& graph,
                               const LintOptions& opts = {});

}  // namespace rio::analysis
