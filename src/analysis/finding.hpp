// Findings: the vocabulary shared by every analyzer in src/analysis.
//
// A Finding is one diagnostic — a short stable code (grep-able, documented
// in docs/analysis.md), a severity, the task/data it points at when that is
// meaningful, and a fully formatted one-line message. Analyzers return a
// Report, which the CLI prints and turns into an exit code; tests assert on
// codes, not on message wording.
#pragma once

#include <algorithm>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

#include "stf/types.hpp"

namespace rio::analysis {

/// Ordered: anything >= kWarning fails the default CLI gate.
enum class Severity : std::uint8_t { kInfo, kWarning, kError };

constexpr const char* to_string(Severity s) noexcept {
  switch (s) {
    case Severity::kInfo: return "info";
    case Severity::kWarning: return "warning";
    case Severity::kError: return "error";
  }
  return "?";
}

/// One diagnostic. Aggregated findings (e.g. "N redundant edges") set
/// `count` > 1 and leave task/data invalid.
struct Finding {
  std::string code;                    ///< stable id, e.g. "RF001"
  Severity severity = Severity::kInfo;
  stf::TaskId task = stf::kInvalidTask;
  stf::DataId data = stf::kInvalidData;
  std::string message;                 ///< one line, already formatted
  std::uint64_t count = 1;             ///< occurrences folded into this entry
};

/// Result of one analyzer run: findings plus free-form metric lines (the
/// critical-path / load summaries that are informational, never gating).
class Report {
 public:
  void add(Finding f) { findings_.push_back(std::move(f)); }

  void add(std::string code, Severity severity, std::string message,
           stf::TaskId task = stf::kInvalidTask,
           stf::DataId data = stf::kInvalidData, std::uint64_t count = 1) {
    findings_.push_back(
        {std::move(code), severity, task, data, std::move(message), count});
  }

  void add_metric(std::string line) { metrics_.push_back(std::move(line)); }

  [[nodiscard]] const std::vector<Finding>& findings() const noexcept {
    return findings_;
  }
  [[nodiscard]] const std::vector<std::string>& metrics() const noexcept {
    return metrics_;
  }
  [[nodiscard]] bool empty() const noexcept { return findings_.empty(); }

  /// Worst severity present; kInfo when the report is empty.
  [[nodiscard]] Severity worst_severity() const noexcept {
    Severity worst = Severity::kInfo;
    for (const Finding& f : findings_) worst = std::max(worst, f.severity);
    return worst;
  }

  [[nodiscard]] std::size_t count_at_least(Severity s) const noexcept {
    std::size_t n = 0;
    for (const Finding& f : findings_)
      if (f.severity >= s) ++n;
    return n;
  }

  /// True when any finding carries `code` (tests key on this).
  [[nodiscard]] bool has(const std::string& code) const noexcept {
    return std::any_of(findings_.begin(), findings_.end(),
                       [&](const Finding& f) { return f.code == code; });
  }

  /// Merges another report's findings and metrics into this one.
  void merge(Report other) {
    for (Finding& f : other.findings_) findings_.push_back(std::move(f));
    for (std::string& m : other.metrics_) metrics_.push_back(std::move(m));
  }

  /// Prints findings (one per line), then metrics, then a summary line.
  void print(std::ostream& os) const;

  /// Machine-readable variant: a versioned JSON document with the findings,
  /// metrics and the severity summary. `schema` names the document (e.g.
  /// "rio.lint.v1") so CI consumers can gate on the format they parsed.
  void write_json(std::ostream& os, const std::string& schema) const;

 private:
  std::vector<Finding> findings_;
  std::vector<std::string> metrics_;
};

}  // namespace rio::analysis
