#include "hybrid/runtime.hpp"

#include <memory>

#include "support/assert.hpp"
#include "stf/flow_image.hpp"

namespace rio::hybrid {

std::vector<Phase> partition(std::size_t num_tasks, const PartialMapping& pm,
                             std::uint32_t num_workers) {
  RIO_ASSERT(pm && num_workers > 0);
  const std::size_t n = num_tasks;

  // One shared owner table: static phases index into it by global id.
  auto owners = std::make_shared<std::vector<stf::WorkerId>>(
      n, stf::kInvalidWorker);
  rt::Mapping table("hybrid/partial-owners", [owners](stf::TaskId t) {
    RIO_DEBUG_ASSERT(t < owners->size() &&
                     (*owners)[t] != stf::kInvalidWorker);
    return (*owners)[t];
  });

  std::vector<Phase> phases;
  std::size_t i = 0;
  while (i < n) {
    const auto owner = pm(i);
    if (owner.has_value()) {
      RIO_ASSERT_MSG(*owner < num_workers, "partial mapping out of range");
      (*owners)[i] = *owner;
    }
    const bool is_static = owner.has_value();
    std::size_t j = i + 1;
    while (j < n) {
      const auto next = pm(j);
      if (next.has_value() != is_static) break;
      if (next.has_value()) {
        RIO_ASSERT_MSG(*next < num_workers, "partial mapping out of range");
        (*owners)[j] = *next;
      }
      ++j;
    }
    Phase ph;
    ph.kind = is_static ? Phase::Kind::kStatic : Phase::Kind::kDynamic;
    ph.first = i;
    ph.count = j - i;
    if (is_static) ph.mapping = table;
    phases.push_back(std::move(ph));
    i = j;
  }
  return phases;
}

std::vector<Phase> partition(const stf::TaskFlow& flow,
                             const PartialMapping& pm,
                             std::uint32_t num_workers) {
  return partition(flow.num_tasks(), pm, num_workers);
}

Runtime::Runtime(Config cfg) : cfg_(cfg) {
  RIO_ASSERT_MSG(cfg_.num_workers > 0, "need at least one worker");
}

support::RunStats Runtime::run(const stf::TaskFlow& flow,
                               const std::vector<Phase>& phases) {
  // One compilation serves every phase: each phase executes an ImageRange
  // slice, so neither engine ever walks the AoS Task array while unrolling.
  const stf::FlowImage image = stf::FlowImage::compile(flow);
  return run(image, phases);
}

support::RunStats Runtime::run(const stf::FlowImage& image,
                               const std::vector<Phase>& phases) {
  // Validate the tiling before touching anything.
  std::size_t expect = 0;
  for (const Phase& ph : phases) {
    RIO_ASSERT_MSG(ph.first == expect, "phases must tile the flow in order");
    expect += ph.count;
    if (ph.kind == Phase::Kind::kStatic)
      RIO_ASSERT_MSG(ph.mapping.valid(), "static phase without a mapping");
  }
  RIO_ASSERT_MSG(expect == image.size(), "phases must cover the flow");

  const std::uint32_t p = cfg_.num_workers;
  support::RunStats total;
  // Worker slots 0..p-1 aggregate across phases; slot p is the dynamic
  // phases' master (idle during static phases by construction).
  total.workers.resize(p + 1);

  rt::Runtime rio_engine(rt::Config{.num_workers = p,
                                    .wait_policy = cfg_.wait_policy,
                                    .collect_stats = cfg_.collect_stats,
                                    .collect_trace = false,
                                    .enable_guard = cfg_.enable_guard,
                                    .retry = cfg_.retry,
                                    .fault = cfg_.fault,
                                    .watchdog_ns = cfg_.watchdog_ns,
                                    .resume = cfg_.resume,
                                    .checkpoint = cfg_.checkpoint,
                                    .obs = cfg_.obs});
  coor::Runtime coor_engine(
      coor::Config{.num_workers = p,
                   .scheduler = cfg_.dynamic_scheduler,
                   .work_stealing = cfg_.dynamic_work_stealing,
                   .collect_stats = cfg_.collect_stats,
                   .collect_trace = false,
                   .enable_guard = cfg_.enable_guard,
                   .retry = cfg_.retry,
                   .fault = cfg_.fault,
                   .watchdog_ns = cfg_.watchdog_ns,
                   .resume = cfg_.resume,
                   .checkpoint = cfg_.checkpoint,
                   .obs = cfg_.obs});
  if (cfg_.use_pool) {
    // One persistent pool for every phase: p workers + 1 master-capable
    // thread (idle during static phases). Amortizes thread startup across
    // the potentially many fine-grained phases.
    if (!pool_) pool_ = std::make_unique<support::ThreadPool>(p + 1);
    rio_engine.attach_pool(pool_.get());
    coor_engine.attach_pool(pool_.get());
  }

  // Cross-phase failure propagation: a failing phase (retry exhaustion,
  // stall, any thrown body) throws out of its engine's run() and out of
  // this loop — later phases are cancelled by never starting. The phase
  // barrier guarantees none of their task bodies has run.
  last_phases_ = phases.size();
  completed_phases_ = 0;
  for (const Phase& ph : phases) {
    if (ph.count == 0) {
      ++completed_phases_;
      continue;
    }
    const stf::ImageRange range(image, ph.first, ph.count);
    support::RunStats phase_stats;
    if (ph.kind == Phase::Kind::kStatic) {
      // Phase barrier semantics: everything before `first` completed, so
      // the in-order protocol may start from fresh per-phase state.
      phase_stats = rio_engine.run(range, ph.mapping);
    } else {
      phase_stats = coor_engine.run(range);
    }
    ++completed_phases_;
    total.wall_ns += phase_stats.wall_ns;
    for (std::size_t w = 0; w < phase_stats.workers.size(); ++w) {
      auto& dst = total.workers[w < p ? w : p];
      const auto& src = phase_stats.workers[w];
      dst.buckets += src.buckets;
      dst.tasks_executed += src.tasks_executed;
      dst.tasks_skipped += src.tasks_skipped;
      dst.waits += src.waits;
    }
  }
  return total;
}

support::RunStats Runtime::run(const stf::TaskFlow& flow,
                               const PartialMapping& pm) {
  return run(flow, partition(flow, pm, cfg_.num_workers));
}

support::RunStats Runtime::run(const stf::FlowImage& image,
                               const PartialMapping& pm) {
  return run(image, partition(image.size(), pm, cfg_.num_workers));
}

}  // namespace rio::hybrid
