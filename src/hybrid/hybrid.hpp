// Umbrella header for the hybrid (dynamic + static phases) runtime.
#pragma once

#include "hybrid/runtime.hpp"  // IWYU pragma: export
