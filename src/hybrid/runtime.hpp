// Hybrid execution — the combination the paper's conclusion calls for.
//
// "…we hope that the present study might motivate future work combining
//  both execution models (and thus requiring only partial mappings) for
//  enabling efficient and portable implementations of wider classes of
//  algorithms within the STF programming model."     (RR-9450, Section 6)
//
// This module implements that combination in its bulk-synchronous form:
// the task flow is partitioned into contiguous PHASES, each executed by
// the engine that suits its granularity —
//
//   * DYNAMIC phases run on the centralized out-of-order engine
//     (src/coor): coarse tasks, no mapping needed, full scheduling
//     freedom;
//   * STATIC phases run on the decentralized in-order engine (src/rio):
//     fine-grained tasks with a programmer-supplied mapping and
//     near-zero per-task overhead.
//
// The programmer supplies only a PARTIAL mapping: tasks with an owner go
// to static phases, unmapped tasks to dynamic phases; `partition()` cuts
// the flow at the boundaries. A phase boundary is a barrier, which makes
// cross-phase dependencies trivially satisfied and lets each engine reason
// about its slice in isolation (exactly how HPL alternates coarse trailing
// updates with fine-grained panel pivoting).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "support/stats.hpp"
#include "support/thread_pool.hpp"
#include "support/wait.hpp"
#include "coor/runtime.hpp"
#include "rio/runtime.hpp"
#include "stf/task_flow.hpp"

namespace rio::obs {
class Hub;
}

namespace rio::hybrid {

/// Partial mapping: nullopt = "let the dynamic scheduler place it",
/// a WorkerId = "this fine-grained task runs in-order on that worker".
using PartialMapping =
    std::function<std::optional<stf::WorkerId>(stf::TaskId)>;

/// One contiguous slice of the flow and the engine that executes it.
struct Phase {
  enum class Kind : std::uint8_t { kDynamic, kStatic };
  Kind kind = Kind::kDynamic;
  stf::TaskId first = 0;
  std::size_t count = 0;
  rt::Mapping mapping;  ///< valid for static phases only
};

/// Cuts tasks [0, num_tasks) into maximal runs of mapped / unmapped tasks
/// under `pm`. The returned phases cover the range exactly, in order.
std::vector<Phase> partition(std::size_t num_tasks, const PartialMapping& pm,
                             std::uint32_t num_workers);

/// Convenience overload on a materialized flow.
std::vector<Phase> partition(const stf::TaskFlow& flow,
                             const PartialMapping& pm,
                             std::uint32_t num_workers);

struct Config {
  std::uint32_t num_workers = 2;  ///< executing workers in BOTH phase kinds
                                  ///< (dynamic phases use one extra pooled
                                  ///< thread as master, as in src/coor)
  support::WaitPolicy wait_policy = support::WaitPolicy::kSpinYield;
  coor::SchedulerKind dynamic_scheduler = coor::SchedulerKind::kFifo;
  bool dynamic_work_stealing = false;
  bool collect_stats = true;
  bool enable_guard = false;
  bool use_pool = true;  ///< persistent num_workers+1 thread pool shared by
                         ///< all phases (off: spawn threads per phase)

  // Resilience (docs/robustness.md), forwarded to BOTH per-phase engines.
  // A phase failure (retry exhaustion or stall) propagates out of run() and
  // cancels every later phase: a phase boundary is a barrier, so no task of
  // a later phase can have started.
  support::RetryPolicy retry;
  support::FaultInjector* fault = nullptr;
  std::uint64_t watchdog_ns = 0;

  // Recovery (docs/robustness.md "worker loss"), forwarded to BOTH
  // per-phase engines. The frontier/checkpoint bitmaps are indexed by
  // GLOBAL task id, so a mid-phase worker death resumes correctly: earlier
  // phases replay as no-ops, the interrupted phase replays its completed
  // prefix and re-executes the rest.
  const stf::Frontier* resume = nullptr;
  stf::CompletionBoard* checkpoint = nullptr;

  obs::Hub* obs = nullptr;  ///< telemetry hub (docs/observability.md); not
                            ///< owned. Forwarded to BOTH per-phase engines:
                            ///< worker slots 0..p-1 accumulate across every
                            ///< phase, slot p is the dynamic phases' master.
};

class Runtime {
 public:
  explicit Runtime(Config cfg);

  /// Executes pre-partitioned phases. Phases must tile the flow
  /// contiguously from task 0 to the end.
  support::RunStats run(const stf::TaskFlow& flow,
                        const std::vector<Phase>& phases);

  /// Convenience: partition by a partial mapping, then run.
  support::RunStats run(const stf::TaskFlow& flow, const PartialMapping& pm);

  /// Replay from a compiled image (stf/flow_image.hpp): phases execute
  /// ImageRange slices directly — compile once, run many times. The TaskFlow
  /// overloads compile a throwaway image and forward here.
  support::RunStats run(const stf::FlowImage& image,
                        const std::vector<Phase>& phases);
  support::RunStats run(const stf::FlowImage& image, const PartialMapping& pm);

  /// Phase count of the last run (observability for tests/benches).
  [[nodiscard]] std::size_t last_phase_count() const noexcept {
    return last_phases_;
  }

  /// Phases that ran to completion in the last run. Equal to
  /// last_phase_count() on success; smaller when a phase failure cancelled
  /// the rest (the cross-phase propagation tests assert on this).
  [[nodiscard]] std::size_t completed_phases() const noexcept {
    return completed_phases_;
  }

 private:
  Config cfg_;
  std::size_t last_phases_ = 0;
  std::size_t completed_phases_ = 0;
  std::unique_ptr<support::ThreadPool> pool_;  // lazily built when use_pool
};

}  // namespace rio::hybrid
