// Tiled matrix-multiplication task graph — Experiment 3 of Section 5.1 and
// the workload behind Figures 2-4.
//
// C(i,j) accumulates sum_k A(i,k) * B(k,j): one task per (i,j,k) triple
// with reads on A(i,k), B(k,j) and a read-write on C(i,j). Iterating k
// innermost makes each C tile's accumulation a contiguous chain in the
// flow, which is the submission order a programmer would naturally write
// and the one RIO's in-order execution benefits from.
#pragma once

#include <cstdint>

#include "workloads/kernels.hpp"
#include "workloads/tiled_matrix.hpp"
#include "workloads/workload.hpp"

namespace rio::workloads {

struct GemmDagSpec {
  std::uint32_t tiles = 4;        ///< square tile grid: tiles x tiles
  std::uint64_t task_cost = 1000; ///< counter iterations / virtual cost
  BodyKind body = BodyKind::kCounter;
  std::uint32_t num_workers = 0;  ///< >0: owner-computes 2-D cyclic table
};

/// Synthetic GEMM DAG (dependency structure only; bodies per `spec.body`).
/// Owners follow the C-tile owner under a 2-D block-cyclic distribution.
Workload make_gemm_dag(const GemmDagSpec& spec);

/// Numeric tiled GEMM: builds the same DAG with real gemm_tile bodies over
/// caller-owned tiled matrices (C += A * B). Matrices must be attached by
/// this call's flow and outlive it.
Workload make_gemm_numeric(TiledMatrix& a, TiledMatrix& b, TiledMatrix& c,
                           std::uint32_t num_workers = 0);

}  // namespace rio::workloads
