// Umbrella header for the workload generators.
#pragma once

#include "workloads/cholesky.hpp"      // IWYU pragma: export
#include "workloads/dense.hpp"         // IWYU pragma: export
#include "workloads/gemm.hpp"          // IWYU pragma: export
#include "workloads/hpl.hpp"          // IWYU pragma: export
#include "workloads/kernel_model.hpp"  // IWYU pragma: export
#include "workloads/kernels.hpp"       // IWYU pragma: export
#include "workloads/lu.hpp"            // IWYU pragma: export
#include "workloads/stencil.hpp"       // IWYU pragma: export
#include "workloads/synthetic.hpp"     // IWYU pragma: export
#include "workloads/taskbench.hpp"     // IWYU pragma: export
#include "workloads/tiled_matrix.hpp"  // IWYU pragma: export
#include "workloads/workload.hpp"      // IWYU pragma: export
