// Tiled LU factorization without pivoting — Experiment 4 of Section 5.1 and
// the task graph the paper model-checks in Table 1.
//
// For an rt x ct tile grid, panel step k emits:
//   getrf(k,k):    RW A(k,k)
//   trsm_u(k,j):   R  A(k,k), RW A(k,j)          for j > k   (row panel)
//   trsm_l(i,k):   R  A(k,k), RW A(i,k)          for i > k   (column panel)
//   gemm(i,j,k):   R  A(i,k), R A(k,j), RW A(i,j) for i,j > k (trailing)
//
// This is the dependency pattern whose fine-grained variant motivates the
// paper (HPL's partial pivoting needs fine tasks; we reproduce the
// unpivoted structure the paper evaluates). The generator supports
// rectangular grids (3 x 2 etc.) to match Table 1's model-checking sizes.
#pragma once

#include <cstdint>

#include "workloads/kernels.hpp"
#include "workloads/tiled_matrix.hpp"
#include "workloads/workload.hpp"

namespace rio::workloads {

struct LuDagSpec {
  std::uint32_t row_tiles = 4;
  std::uint32_t col_tiles = 4;
  std::uint64_t task_cost = 1000;
  BodyKind body = BodyKind::kCounter;
  std::uint32_t num_workers = 0;  ///< >0: owner-computes 2-D cyclic table
};

/// Synthetic LU DAG (structure only). Owners follow the written tile under
/// a 2-D block-cyclic distribution.
Workload make_lu_dag(const LuDagSpec& spec);

/// Numeric tiled LU of `a` in place (no pivoting — callers must supply a
/// diagonally dominant matrix, see TiledMatrix::fill_random_diagonally_
/// dominant). Square grids only.
Workload make_lu_numeric(TiledMatrix& a, std::uint32_t num_workers = 0);

/// Number of tasks the LU DAG emits for an rt x ct grid (used by tests and
/// the model-checking bench to report problem sizes).
std::uint64_t lu_dag_task_count(std::uint32_t row_tiles,
                                std::uint32_t col_tiles);

}  // namespace rio::workloads
