#include "workloads/taskbench.hpp"

#include <algorithm>

#include "support/assert.hpp"

namespace rio::workloads {
namespace {

std::uint32_t floor_log2(std::uint32_t v) {
  std::uint32_t r = 0;
  while (v >>= 1) ++r;
  return r;
}

}  // namespace

std::vector<std::uint32_t> taskbench_deps(const TaskBenchSpec& spec,
                                          std::uint32_t t, std::uint32_t d) {
  const std::uint32_t w = spec.width;
  std::vector<std::uint32_t> deps;
  if (t == 0) return deps;  // first step has no upstream row
  switch (spec.pattern) {
    case TaskBenchPattern::kTrivial:
      break;
    case TaskBenchPattern::kNoComm:
      deps = {d};
      break;
    case TaskBenchPattern::kStencil1D:
      if (d > 0) deps.push_back(d - 1);
      deps.push_back(d);
      if (d + 1 < w) deps.push_back(d + 1);
      break;
    case TaskBenchPattern::kStencil1DPeriodic:
      deps = {(d + w - 1) % w, d, (d + 1) % w};
      std::sort(deps.begin(), deps.end());
      deps.erase(std::unique(deps.begin(), deps.end()), deps.end());
      break;
    case TaskBenchPattern::kFft: {
      const std::uint32_t levels = std::max(1u, floor_log2(w));
      const std::uint32_t partner = d ^ (1u << ((t - 1) % levels));
      deps.push_back(d);
      if (partner < w && partner != d) deps.push_back(partner);
      std::sort(deps.begin(), deps.end());
      break;
    }
    case TaskBenchPattern::kTree: {
      // Folded binary tree: at step t, point d also consumes its sibling
      // at distance 2^((t-1) mod levels) below it.
      const std::uint32_t levels = std::max(1u, floor_log2(w));
      const std::uint32_t stride = 1u << ((t - 1) % levels);
      deps.push_back(d);
      if (d + stride < w) deps.push_back(d + stride);
      break;
    }
    case TaskBenchPattern::kAllToAll:
      deps.resize(w);
      for (std::uint32_t i = 0; i < w; ++i) deps[i] = i;
      break;
    case TaskBenchPattern::kSpread: {
      // k = 3 strided dependencies, Task Bench's information-spreading
      // pattern: offsets t, 2t, 3t (mod width), plus the point itself.
      deps.push_back(d);
      for (std::uint32_t k = 1; k <= 3; ++k)
        deps.push_back((d + k * t) % w);
      std::sort(deps.begin(), deps.end());
      deps.erase(std::unique(deps.begin(), deps.end()), deps.end());
      break;
    }
  }
  return deps;
}

Workload make_taskbench(const TaskBenchSpec& spec) {
  RIO_ASSERT(spec.width > 0 && spec.steps > 0);
  Workload w;
  w.name = std::string("taskbench/") + to_string(spec.pattern);

  // Double-buffered per-point objects: buf[parity][point].
  std::vector<stf::DataHandle<std::uint64_t>> buf[2];
  for (int p = 0; p < 2; ++p) {
    buf[p].reserve(spec.width);
    for (std::uint32_t d = 0; d < spec.width; ++d)
      buf[p].push_back(w.flow.create_data<std::uint64_t>(
          "p" + std::to_string(p) + "[" + std::to_string(d) + "]"));
  }

  for (std::uint32_t t = 0; t < spec.steps; ++t) {
    const auto& cur = buf[t % 2];
    const auto& nxt = buf[(t + 1) % 2];
    for (std::uint32_t d = 0; d < spec.width; ++d) {
      stf::AccessList acc;
      for (std::uint32_t dep : taskbench_deps(spec, t, d))
        acc.push_back(stf::read(cur[dep]));
      acc.push_back(stf::write(nxt[d]));
      w.flow.add(std::string(to_string(spec.pattern)) + "(" +
                     std::to_string(t) + "," + std::to_string(d) + ")",
                 make_body(spec.body, spec.task_cost), std::move(acc),
                 spec.task_cost);
      if (spec.num_workers > 0)
        w.owners.push_back(static_cast<stf::WorkerId>(d % spec.num_workers));
    }
  }
  return w;
}

}  // namespace rio::workloads
