#include "workloads/gemm.hpp"

#include "support/assert.hpp"
#include "workloads/dense.hpp"

namespace rio::workloads {

Workload make_gemm_dag(const GemmDagSpec& spec) {
  RIO_ASSERT(spec.tiles > 0);
  Workload w;
  w.name = "gemm-dag";
  const std::uint32_t nt = spec.tiles;

  // Register the tile grid as (body-less) data objects: dependencies only.
  std::vector<stf::DataHandle<std::uint64_t>> ta, tb, tc;
  auto grid = [&](const char* base, auto& out) {
    out.reserve(static_cast<std::size_t>(nt) * nt);
    for (std::uint32_t i = 0; i < nt; ++i)
      for (std::uint32_t j = 0; j < nt; ++j)
        out.push_back(w.flow.create_data<std::uint64_t>(
            std::string(base) + "(" + std::to_string(i) + "," +
            std::to_string(j) + ")"));
  };
  grid("A", ta);
  grid("B", tb);
  grid("C", tc);
  auto idx = [nt](std::uint32_t i, std::uint32_t j) {
    return static_cast<std::size_t>(i) * nt + j;
  };

  const auto [pr, pc] =
      spec.num_workers > 0 ? pick_grid(spec.num_workers)
                           : std::pair<std::uint32_t, std::uint32_t>{1, 1};

  for (std::uint32_t i = 0; i < nt; ++i) {
    for (std::uint32_t j = 0; j < nt; ++j) {
      for (std::uint32_t k = 0; k < nt; ++k) {
        w.flow.add("gemm(" + std::to_string(i) + "," + std::to_string(j) +
                       "," + std::to_string(k) + ")",
                   make_body(spec.body, spec.task_cost),
                   {stf::read(ta[idx(i, k)]), stf::read(tb[idx(k, j)]),
                    stf::readwrite(tc[idx(i, j)])},
                   spec.task_cost);
        if (spec.num_workers > 0)
          w.owners.push_back(cyclic_owner(i, j, pr, pc));
      }
    }
  }
  return w;
}

Workload make_gemm_numeric(TiledMatrix& a, TiledMatrix& b, TiledMatrix& c,
                           std::uint32_t num_workers) {
  RIO_ASSERT(a.tiles() == b.tiles() && b.tiles() == c.tiles());
  RIO_ASSERT(a.tile_dim() == b.tile_dim() && b.tile_dim() == c.tile_dim());
  Workload w;
  w.name = "gemm-numeric";
  const std::uint32_t nt = a.tiles();
  const std::uint32_t dim = a.tile_dim();
  a.attach(w.flow, "A");
  b.attach(w.flow, "B");
  c.attach(w.flow, "C");

  const auto [pr, pc] = num_workers > 0
                            ? pick_grid(num_workers)
                            : std::pair<std::uint32_t, std::uint32_t>{1, 1};
  // ~2 dim^3 fused multiply-adds per tile multiply.
  const std::uint64_t cost = 2ull * dim * dim * dim;

  for (std::uint32_t i = 0; i < nt; ++i) {
    for (std::uint32_t j = 0; j < nt; ++j) {
      for (std::uint32_t k = 0; k < nt; ++k) {
        const auto ha = a.handle(i, k);
        const auto hb = b.handle(k, j);
        const auto hc = c.handle(i, j);
        w.flow.add(
            "gemm(" + std::to_string(i) + "," + std::to_string(j) + "," +
                std::to_string(k) + ")",
            [ha, hb, hc, dim](stf::TaskContext& ctx) {
              gemm_tile(ctx.get(hc), ctx.get(ha, stf::AccessMode::kRead),
                        ctx.get(hb, stf::AccessMode::kRead), dim);
            },
            {stf::read(ha), stf::read(hb), stf::readwrite(hc)}, cost);
        if (num_workers > 0) w.owners.push_back(cyclic_owner(i, j, pr, pc));
      }
    }
  }
  return w;
}

}  // namespace rio::workloads
