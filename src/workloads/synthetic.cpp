#include "workloads/synthetic.hpp"

#include <algorithm>

#include "support/assert.hpp"
#include "support/rng.hpp"

namespace rio::workloads {

Workload make_independent(const IndependentSpec& spec) {
  Workload w;
  w.name = "independent";
  for (std::uint64_t t = 0; t < spec.num_tasks; ++t) {
    w.flow.submit(make_body(spec.body, spec.task_cost), /*accesses=*/{},
                  spec.task_cost);
  }
  if (spec.num_workers > 0) {
    w.owners.reserve(spec.num_tasks);
    for (std::uint64_t t = 0; t < spec.num_tasks; ++t)
      w.owners.push_back(static_cast<stf::WorkerId>(t % spec.num_workers));
  }
  return w;
}

Workload make_random_deps(const RandomDepsSpec& spec) {
  RIO_ASSERT_MSG(spec.reads_per_task + spec.writes_per_task <= spec.num_data,
                 "not enough data objects for distinct accesses");
  Workload w;
  w.name = "random-deps";

  // The data objects exist for their dependency structure only; the counter
  // body never dereferences them, matching the paper's methodology.
  std::vector<stf::DataHandle<std::uint64_t>> data;
  data.reserve(spec.num_data);
  for (std::uint32_t d = 0; d < spec.num_data; ++d)
    data.push_back(
        w.flow.create_data<std::uint64_t>("d" + std::to_string(d)));

  support::Xoshiro256 rng(spec.seed);
  std::vector<std::uint32_t> picked;
  for (std::uint64_t t = 0; t < spec.num_tasks; ++t) {
    // Draw reads_per_task + writes_per_task distinct objects.
    picked.clear();
    while (picked.size() < spec.reads_per_task + spec.writes_per_task) {
      const auto candidate =
          static_cast<std::uint32_t>(rng.bounded(spec.num_data));
      if (std::find(picked.begin(), picked.end(), candidate) == picked.end())
        picked.push_back(candidate);
    }
    stf::AccessList accesses;
    for (std::uint32_t r = 0; r < spec.reads_per_task; ++r)
      accesses.push_back(stf::read(data[picked[r]]));
    // ReadWrite, not Write: it orders identically (the DAG is unchanged)
    // but marks the previous value as consumed, so random back-to-back
    // updates of one object are not dead stores to the lint pass.
    for (std::uint32_t wr = 0; wr < spec.writes_per_task; ++wr)
      accesses.push_back(
          stf::readwrite(data[picked[spec.reads_per_task + wr]]));
    w.flow.submit(make_body(spec.body, spec.task_cost), std::move(accesses),
                  spec.task_cost);
  }

  if (spec.num_workers > 0) {
    w.owners.reserve(spec.num_tasks);
    for (std::uint64_t t = 0; t < spec.num_tasks; ++t)
      w.owners.push_back(static_cast<stf::WorkerId>(t % spec.num_workers));
  }
  return w;
}

Workload make_chain(const ChainSpec& spec) {
  Workload w;
  w.name = "chain";
  const auto link = w.flow.create_data<std::uint64_t>("link");
  for (std::uint64_t t = 0; t < spec.num_tasks; ++t) {
    w.flow.submit(make_body(spec.body, spec.task_cost),
                  {stf::readwrite(link)}, spec.task_cost);
  }
  if (spec.num_workers > 0) {
    w.owners.reserve(spec.num_tasks);
    for (std::uint64_t t = 0; t < spec.num_tasks; ++t)
      w.owners.push_back(static_cast<stf::WorkerId>(t % spec.num_workers));
  }
  return w;
}

}  // namespace rio::workloads
