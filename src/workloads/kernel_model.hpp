// GEMM kernel-efficiency model for the Figure 2/4 simulations.
//
// Figure 3 of the paper measures how the sequential DGEMM kernel loses
// efficiency at small tile sizes (less cache reuse per tile). The
// simulated multicore experiments need that curve to convert a tile size
// into a per-task virtual cost:
//
//     cost(b) = 2 b^3 / (peak * e_g(b))
//
// The model ships with an analytic default, e_g(b) = 1 / (1 + a/b), which
// matches the measured shape of our blocked_dgemm (bench/fig3) and of the
// paper's MKL curve: efficiency climbing steeply through small tiles and
// saturating near 1 for large ones. Benches can replace it with measured
// (tile, efficiency) points; interpolation is piecewise linear in log(b).
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <utility>
#include <vector>

#include "support/assert.hpp"

namespace rio::workloads {

class KernelModel {
 public:
  /// Analytic model. `half_eff_tile` is the tile size at which the kernel
  /// reaches 50% efficiency (a = half_eff_tile).
  explicit KernelModel(double peak_flops_per_tick = 16.0,
                       double half_eff_tile = 20.0)
      : peak_(peak_flops_per_tick), a_(half_eff_tile) {}

  /// Model from measured points (tile size -> efficiency in (0, 1]).
  static KernelModel from_measurements(
      std::vector<std::pair<double, double>> points,
      double peak_flops_per_tick = 16.0) {
    RIO_ASSERT(!points.empty());
    KernelModel m(peak_flops_per_tick);
    std::sort(points.begin(), points.end());
    m.points_ = std::move(points);
    return m;
  }

  /// Granularity efficiency e_g at tile size b.
  [[nodiscard]] double efficiency(double tile) const {
    RIO_ASSERT(tile > 0);
    if (points_.empty()) return 1.0 / (1.0 + a_ / tile);
    if (tile <= points_.front().first) return points_.front().second;
    if (tile >= points_.back().first) return points_.back().second;
    for (std::size_t i = 1; i < points_.size(); ++i) {
      if (tile <= points_[i].first) {
        const auto [x0, y0] = points_[i - 1];
        const auto [x1, y1] = points_[i];
        const double f =
            (std::log(tile) - std::log(x0)) / (std::log(x1) - std::log(x0));
        return y0 + f * (y1 - y0);
      }
    }
    return points_.back().second;
  }

  /// Virtual cost (ticks) of one b x b x b GEMM tile task.
  [[nodiscard]] std::uint64_t tile_cost(std::uint32_t tile) const {
    const double flops = 2.0 * static_cast<double>(tile) *
                         static_cast<double>(tile) *
                         static_cast<double>(tile);
    return static_cast<std::uint64_t>(
        std::llround(flops / (peak_ * efficiency(tile))));
  }

  [[nodiscard]] double peak() const noexcept { return peak_; }

 private:
  double peak_;
  double a_ = 20.0;
  std::vector<std::pair<double, double>> points_;
};

}  // namespace rio::workloads
