// Tiled LU factorization WITH partial pivoting — the paper's motivating
// workload.
//
// Section 1: "the core of the HPL algorithm is a LU matrix factorization
// with partial pivoting: while most operations are performed at coarse
// granularity, the pivoting itself requires fine-grained operations that
// can not be efficiently executed as tasks with such runtime systems."
//
// This generator emits exactly that mixed-granularity flow. For each panel
// step k over an nt x nt grid of b x b tiles:
//
//   FINE (per panel column c = 0..b-1; O(b) or O(b^2/nt) work each):
//     search(i):      find the max |entry| of column c in tile row i
//     reduce+swap:    pick the global pivot, swap the panel rows, record
//                     the pivot index (conservative superset access
//                     declaration over the panel tiles — the pivot row is
//                     data-dependent, the classic reason pivoting is hard
//                     for STF runtimes)
//     update(i):      scale column c and rank-1-update the panel tile row
//
//   COARSE (per step; O(b^2)–O(b^3) work each):
//     laswp(j):       apply the panel's row swaps to tile column j != k
//     trsm(j):        A(k,j) <- L(k,k)^{-1} A(k,j)          for j > k
//     gemm(i,j):      A(i,j) -= A(i,k) * A(k,j)             for i,j > k
//
// The generator fills `owners` for the FINE tasks only (search/update by
// tile row, reduce by panel, cyclic over workers) and leaves the coarse
// tasks unmapped — i.e. it produces the PARTIAL mapping the hybrid runtime
// consumes: fine phases run decentralized in-order, coarse phases run on
// the centralized OoO engine.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "workloads/tiled_matrix.hpp"
#include "workloads/workload.hpp"

namespace rio::workloads {

struct HplWorkload {
  Workload workload;  ///< `workload.owners` holds the PARTIAL table:
                      ///< fine tasks own a worker, coarse tasks are
                      ///< stf::kInvalidWorker (dynamic phase)
  /// Complete owner table (fine: row-cyclic; coarse: tile-owner cyclic)
  /// for running the WHOLE flow on the pure in-order runtime.
  std::vector<stf::WorkerId> full_owners;
  /// Pivot indices (global row chosen for each column), filled at
  /// execution time; needed to verify P A = L U.
  std::shared_ptr<std::vector<std::uint64_t>> perm;

  /// The partial mapping for hybrid::Runtime: owners[t] for fine tasks,
  /// nullopt for coarse ones.
  [[nodiscard]] std::function<std::optional<stf::WorkerId>(stf::TaskId)>
  partial_mapping() const {
    const auto owners = workload.owners;
    return [owners](stf::TaskId t) -> std::optional<stf::WorkerId> {
      if (t >= owners.size() || owners[t] == stf::kInvalidWorker)
        return std::nullopt;
      return owners[t];
    };
  }

  /// Total mapping over the complete owner table (pure-RIO execution).
  [[nodiscard]] rt::Mapping full_mapping() const {
    return rt::mapping::table(full_owners, "hpl/full-owners");
  }
};

/// Builds the pivoted-LU flow over `a` (in place: on completion the tiles
/// hold L\U of P*A). `num_workers` sizes the fine-task owner assignment.
HplWorkload make_hpl_lu(TiledMatrix& a, std::uint32_t num_workers);

/// Reference dense LU with partial pivoting (right-looking, unblocked) on
/// a column-major n x n matrix; returns the pivot rows per column.
/// The verification oracle for the tiled flow.
std::vector<std::uint64_t> dense_lu_pivoted(std::vector<double>& a,
                                            std::size_t n);

/// Max-norm residual ||P*A - L*U|| / (n * ||A||) of a factorization stored
/// tiled in `lu` with pivot rows `perm`, against the original `a`.
double hpl_residual(const TiledMatrix& original, const TiledMatrix& lu,
                    const std::vector<std::uint64_t>& perm);

}  // namespace rio::workloads
