// Tiled Cholesky factorization (extension workload).
//
// Not part of the paper's four experiments, but the canonical STF workload
// its cited related work revolves around ([Agullo et al., IPDPS 2016]
// studies static schedules on exactly this factorization). Used by the
// mapping-ablation bench and as a third numeric example:
//   potrf(k):     RW A(k,k)
//   trsm(i,k):    R  A(k,k), RW A(i,k)            for i > k
//   syrk(i,k):    R  A(i,k), RW A(i,i)            for i > k
//   gemm(i,j,k):  R  A(i,k), R A(j,k), RW A(i,j)  for i > j > k
#pragma once

#include <cstdint>

#include "workloads/kernels.hpp"
#include "workloads/tiled_matrix.hpp"
#include "workloads/workload.hpp"

namespace rio::workloads {

struct CholeskyDagSpec {
  std::uint32_t tiles = 4;
  std::uint64_t task_cost = 1000;
  BodyKind body = BodyKind::kCounter;
  std::uint32_t num_workers = 0;
};

/// Synthetic Cholesky DAG (structure only).
Workload make_cholesky_dag(const CholeskyDagSpec& spec);

/// Numeric tiled Cholesky of the SPD matrix `a`, in place (lower triangle;
/// strictly-upper tiles are left untouched).
Workload make_cholesky_numeric(TiledMatrix& a, std::uint32_t num_workers = 0);

/// Task count of the Cholesky DAG for an nt-tile grid.
std::uint64_t cholesky_dag_task_count(std::uint32_t tiles);

}  // namespace rio::workloads
