// Common workload vocabulary.
//
// A Workload bundles a generated task flow with the static mapping its
// generator recommends (Section 3.2: the mapping is supplied together with
// the algorithm, typically an owner-computes / block-cyclic distribution
// for linear algebra). Generators fill `owners` when the spec names a
// worker count; `mapping()` wraps it into the closure RIO consumes.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "rio/mapping.hpp"
#include "stf/task_flow.hpp"

namespace rio::workloads {

struct Workload {
  std::string name;
  stf::TaskFlow flow;
  std::vector<stf::WorkerId> owners;  ///< one entry per task (may be empty)

  /// The generator-recommended static mapping. Falls back to round-robin
  /// over `fallback_workers` when the generator computed no owner table.
  [[nodiscard]] rt::Mapping mapping(std::uint32_t fallback_workers = 1) const {
    if (!owners.empty()) return rt::mapping::table(owners, name + "/owners");
    return rt::mapping::round_robin(fallback_workers);
  }
};

/// Splits p workers into the most square pr x pc process grid (pr*pc == p,
/// pr <= pc). The standard choice for 2-D block-cyclic distributions.
inline std::pair<std::uint32_t, std::uint32_t> pick_grid(std::uint32_t p) {
  std::uint32_t pr = 1;
  for (std::uint32_t d = 1; d * d <= p; ++d)
    if (p % d == 0) pr = d;
  return {pr, p / pr};
}

/// Owner of tile (i, j) under a 2-D block-cyclic distribution on a pr x pc
/// grid — the ScaLAPACK-style mapping the paper cites for dense linear
/// algebra [Blackford et al., ScaLAPACK Users' Guide].
inline stf::WorkerId cyclic_owner(std::uint32_t i, std::uint32_t j,
                                  std::uint32_t pr, std::uint32_t pc) {
  return static_cast<stf::WorkerId>((i % pr) * pc + (j % pc));
}

}  // namespace rio::workloads
