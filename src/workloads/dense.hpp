// Dense linear-algebra tile kernels.
//
// These are the real numerical bodies behind the GEMM / LU / Cholesky task
// graphs: unblocked kernels operating on square b x b column-major tiles.
// They replace the Intel MKL kernels of the paper's Figures 2-4 (see
// DESIGN.md, substitution table). blocked_dgemm() is the cache-blocked
// full-matrix multiply used to measure kernel efficiency vs tile size
// (Figure 3).
#pragma once

#include <cstddef>
#include <cstdint>

namespace rio::workloads {

// All kernels use column-major storage: element (r, c) of a b x b tile is
// at [r + c * b], matching the BLAS convention the paper's kernels use.

/// C += A * B on b x b tiles.
void gemm_tile(double* c, const double* a, const double* b, std::size_t dim);

/// C -= A * B on b x b tiles (the Schur-complement update of LU/Cholesky).
void gemm_minus_tile(double* c, const double* a, const double* b,
                     std::size_t dim);

/// In-place unpivoted LU of a b x b tile: A <- L\U with unit-diagonal L
/// stored below the diagonal and U on/above it.
void getrf_tile(double* a, std::size_t dim);

/// B <- L^{-1} * B where L is the unit-lower-triangular factor stored in
/// `lu` (the row-panel update of tiled LU).
void trsm_lower_left(const double* lu, double* b, std::size_t dim);

/// B <- B * U^{-1} where U is the upper-triangular factor stored in `lu`
/// (the column-panel update of tiled LU).
void trsm_upper_right(const double* lu, double* b, std::size_t dim);

/// In-place Cholesky of a symmetric positive-definite tile: A <- L with L
/// lower-triangular (upper part left untouched).
void potrf_tile(double* a, std::size_t dim);

/// B <- B * L^{-T} (the panel update of tiled Cholesky).
void trsm_right_lower_transpose(const double* l, double* b, std::size_t dim);

/// C -= A * A^T restricted to the lower triangle (Cholesky diagonal update).
void syrk_tile(double* c, const double* a, std::size_t dim);

/// Reference n x n matrix multiply (ikj order, no blocking): the oracle for
/// blocked_dgemm and the t(g->n) endpoint of the Figure-3 sweep.
void naive_dgemm(double* c, const double* a, const double* b, std::size_t n);

/// Cache-blocked n x n multiply with block size `block`: the whole
/// computation is split into block-sized sub-multiplications, exactly the
/// task decomposition of Figures 2-3. n need not be a multiple of block.
void blocked_dgemm(double* c, const double* a, const double* b, std::size_t n,
                   std::size_t block);

/// FLOP count of an n x n GEMM (2 n^3), for efficiency reporting.
constexpr double gemm_flops(std::size_t n) {
  return 2.0 * static_cast<double>(n) * static_cast<double>(n) *
         static_cast<double>(n);
}

}  // namespace rio::workloads
