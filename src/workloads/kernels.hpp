// Synthetic task kernels.
//
// Section 5.1: to isolate the pipelining and runtime efficiencies from
// granularity/locality effects, the paper substitutes every real task with
// a common synthetic kernel that increments a stack-local counter. Its
// duration is linear in N, it touches no shared memory, and splitting the
// same total work across more tasks costs nothing — hence e_g = e_l = 1 by
// construction.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <cstring>

#include "stf/task.hpp"

namespace rio::workloads {

/// The paper's synthetic kernel (verbatim semantics):
///   volatile uint64_t counter = 0;
///   for (i = 0; i < n; i++) counter = i;
/// The volatile store defeats vectorization/DCE, making the loop a stable
/// ~1-instruction-per-iteration time unit on any compiler.
inline void counter_kernel(std::uint64_t n) noexcept {
  volatile std::uint64_t counter = 0;
  for (std::uint64_t i = 0; i < n; ++i) counter = i;
  (void)counter;
}

/// Task body wrapping counter_kernel with a fixed iteration count.
inline stf::TaskFn counter_body(std::uint64_t iterations) {
  return [iterations](stf::TaskContext&) { counter_kernel(iterations); };
}

/// Order-sensitive fold over the task's declared accesses, on top of the
/// counter kernel. Each task mixes a per-task constant with the leading 8
/// bytes of every data object it reads, then folds the mix into every
/// object it writes:
///
///   acc = GOLDEN * (id + 1) ^ read values
///   v   = v * LCG_MULT + acc        (per written object)
///
/// Any dependency-respecting execution order yields byte-identical data
/// (writes to one object are totally ordered by the protocol), while a
/// mis-ordered, lost or double-applied write changes the result — making
/// the sequential oracle a byte-for-byte corruption detector for the chaos
/// harness. NOT commutative: unusable with kReduction accesses, whose
/// members may legally execute in any relative order.
inline stf::TaskFn fold_body(std::uint64_t iterations) {
  return [iterations](stf::TaskContext& ctx) {
    counter_kernel(iterations);
    const stf::Task& task = ctx.task();
    const stf::DataRegistry& reg = ctx.registry();
    std::uint64_t acc = 0x9e3779b97f4a7c15ULL * (task.id + 1);
    for (const stf::Access& a : task.accesses) {
      if (stf::is_write(a.mode)) continue;
      std::uint64_t v = 0;
      std::memcpy(&v, reg.raw(a.data),
                  std::min<std::size_t>(sizeof(v), reg.bytes(a.data)));
      acc ^= v;
    }
    for (const stf::Access& a : task.accesses) {
      if (!stf::is_write(a.mode)) continue;
      const std::size_t nb =
          std::min<std::size_t>(sizeof(std::uint64_t), reg.bytes(a.data));
      std::uint64_t v = 0;
      std::memcpy(&v, reg.raw(a.data), nb);
      v = v * 6364136223846793005ULL + acc;
      std::memcpy(reg.raw(a.data), &v, nb);
    }
  };
}

/// How generators fill task bodies.
enum class BodyKind : std::uint8_t {
  kNone,     ///< cost-only tasks for the discrete-event simulator
  kCounter,  ///< the paper's synthetic counter kernel (real execution)
  kFold,     ///< counter kernel + oracle-checkable data fold (chaos runs)
};

/// Builds the body for a task of virtual cost `cost` under `kind`.
inline stf::TaskFn make_body(BodyKind kind, std::uint64_t cost) {
  switch (kind) {
    case BodyKind::kNone: return {};
    case BodyKind::kCounter: return counter_body(cost);
    case BodyKind::kFold: return fold_body(cost);
  }
  return {};
}

/// Calibrates how many counter-kernel iterations fit in one nanosecond on
/// the host (median of `rounds` probes). Benches use it to translate the
/// paper's "task size in instructions" axis into host-time task sizes.
double counter_iterations_per_ns(int rounds = 5);

}  // namespace rio::workloads
