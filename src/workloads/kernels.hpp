// Synthetic task kernels.
//
// Section 5.1: to isolate the pipelining and runtime efficiencies from
// granularity/locality effects, the paper substitutes every real task with
// a common synthetic kernel that increments a stack-local counter. Its
// duration is linear in N, it touches no shared memory, and splitting the
// same total work across more tasks costs nothing — hence e_g = e_l = 1 by
// construction.
#pragma once

#include <cstdint>

#include "stf/task.hpp"

namespace rio::workloads {

/// The paper's synthetic kernel (verbatim semantics):
///   volatile uint64_t counter = 0;
///   for (i = 0; i < n; i++) counter = i;
/// The volatile store defeats vectorization/DCE, making the loop a stable
/// ~1-instruction-per-iteration time unit on any compiler.
inline void counter_kernel(std::uint64_t n) noexcept {
  volatile std::uint64_t counter = 0;
  for (std::uint64_t i = 0; i < n; ++i) counter = i;
  (void)counter;
}

/// Task body wrapping counter_kernel with a fixed iteration count.
inline stf::TaskFn counter_body(std::uint64_t iterations) {
  return [iterations](stf::TaskContext&) { counter_kernel(iterations); };
}

/// How generators fill task bodies.
enum class BodyKind : std::uint8_t {
  kNone,     ///< cost-only tasks for the discrete-event simulator
  kCounter,  ///< the paper's synthetic counter kernel (real execution)
};

/// Builds the body for a task of virtual cost `cost` under `kind`.
inline stf::TaskFn make_body(BodyKind kind, std::uint64_t cost) {
  switch (kind) {
    case BodyKind::kNone: return {};
    case BodyKind::kCounter: return counter_body(cost);
  }
  return {};
}

/// Calibrates how many counter-kernel iterations fit in one nanosecond on
/// the host (median of `rounds` probes). Benches use it to translate the
/// paper's "task size in instructions" axis into host-time task sizes.
double counter_iterations_per_ns(int rounds = 5);

}  // namespace rio::workloads
