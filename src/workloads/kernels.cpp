#include "workloads/kernels.hpp"

#include <algorithm>
#include <vector>

#include "support/clock.hpp"

namespace rio::workloads {

double counter_iterations_per_ns(int rounds) {
  constexpr std::uint64_t kProbeIters = 4'000'000;
  std::vector<double> rates;
  rates.reserve(static_cast<std::size_t>(rounds));
  for (int r = 0; r < rounds; ++r) {
    const std::uint64_t t0 = support::monotonic_ns();
    counter_kernel(kProbeIters);
    const std::uint64_t dt = support::monotonic_ns() - t0;
    rates.push_back(static_cast<double>(kProbeIters) /
                    static_cast<double>(dt > 0 ? dt : 1));
  }
  std::sort(rates.begin(), rates.end());
  return rates[rates.size() / 2];
}

}  // namespace rio::workloads
