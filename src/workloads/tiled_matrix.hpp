// Tiled matrix storage for the numeric task graphs.
//
// An nt x nt grid of dim x dim column-major tiles, stored contiguously
// tile-by-tile so that each tile is one data object with unit-stride
// columns — the layout task-based dense linear algebra uses so a task's
// working set is exactly its tiles.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "support/assert.hpp"
#include "support/rng.hpp"
#include "stf/task_flow.hpp"

namespace rio::workloads {

class TiledMatrix {
 public:
  TiledMatrix(std::uint32_t tiles, std::uint32_t dim)
      : tiles_(tiles),
        dim_(dim),
        storage_(static_cast<std::size_t>(tiles) * tiles * dim * dim, 0.0) {}

  [[nodiscard]] std::uint32_t tiles() const noexcept { return tiles_; }
  [[nodiscard]] std::uint32_t tile_dim() const noexcept { return dim_; }
  [[nodiscard]] std::size_t order() const noexcept {
    return static_cast<std::size_t>(tiles_) * dim_;
  }

  [[nodiscard]] double* tile(std::uint32_t i, std::uint32_t j) noexcept {
    RIO_DEBUG_ASSERT(i < tiles_ && j < tiles_);
    return storage_.data() +
           (static_cast<std::size_t>(i) * tiles_ + j) * dim_ * dim_;
  }
  [[nodiscard]] const double* tile(std::uint32_t i,
                                   std::uint32_t j) const noexcept {
    RIO_DEBUG_ASSERT(i < tiles_ && j < tiles_);
    return storage_.data() +
           (static_cast<std::size_t>(i) * tiles_ + j) * dim_ * dim_;
  }

  /// Element access in global (row, col) coordinates, column-major within
  /// the owning tile. For tests and verification only — O(1) but does the
  /// tile arithmetic every call.
  [[nodiscard]] double& at(std::size_t r, std::size_t c) noexcept {
    return tile(static_cast<std::uint32_t>(r / dim_),
                static_cast<std::uint32_t>(c / dim_))[(r % dim_) +
                                                      (c % dim_) * dim_];
  }
  [[nodiscard]] double at(std::size_t r, std::size_t c) const noexcept {
    return tile(static_cast<std::uint32_t>(r / dim_),
                static_cast<std::uint32_t>(c / dim_))[(r % dim_) +
                                                      (c % dim_) * dim_];
  }

  /// Registers every tile as a data object of `flow`; handle(i, j) resolves
  /// them afterwards. The matrix must outlive the flow's executions.
  void attach(stf::TaskFlow& flow, const std::string& name) {
    handles_.clear();
    handles_.reserve(static_cast<std::size_t>(tiles_) * tiles_);
    for (std::uint32_t i = 0; i < tiles_; ++i)
      for (std::uint32_t j = 0; j < tiles_; ++j)
        handles_.push_back(flow.attach_data<double>(
            name + "(" + std::to_string(i) + "," + std::to_string(j) + ")",
            tile(i, j), static_cast<std::size_t>(dim_) * dim_));
  }

  [[nodiscard]] stf::DataHandle<double> handle(std::uint32_t i,
                                               std::uint32_t j) const {
    RIO_DEBUG_ASSERT(!handles_.empty());
    return handles_[static_cast<std::size_t>(i) * tiles_ + j];
  }

  /// Uniform random entries in [-1, 1).
  void fill_random(std::uint64_t seed) {
    support::Xoshiro256 rng(seed);
    for (double& v : storage_) v = rng.uniform() * 2.0 - 1.0;
  }

  /// Random entries made strongly diagonally dominant, so unpivoted LU is
  /// numerically safe (and Cholesky after symmetrization is SPD).
  void fill_random_diagonally_dominant(std::uint64_t seed) {
    fill_random(seed);
    const std::size_t n = order();
    for (std::size_t r = 0; r < n; ++r) at(r, r) += static_cast<double>(n);
  }

  /// Symmetrizes in place: A <- (A + A^T) / 2.
  void symmetrize() {
    const std::size_t n = order();
    for (std::size_t r = 0; r < n; ++r)
      for (std::size_t c = r + 1; c < n; ++c) {
        const double v = 0.5 * (at(r, c) + at(c, r));
        at(r, c) = v;
        at(c, r) = v;
      }
  }

  /// Max absolute element-wise difference against another matrix.
  [[nodiscard]] double max_abs_diff(const TiledMatrix& other) const {
    RIO_ASSERT(tiles_ == other.tiles_ && dim_ == other.dim_);
    double worst = 0.0;
    for (std::size_t i = 0; i < storage_.size(); ++i) {
      const double d = storage_[i] - other.storage_[i];
      worst = d > worst ? d : (-d > worst ? -d : worst);
    }
    return worst;
  }

  [[nodiscard]] const std::vector<double>& raw() const noexcept {
    return storage_;
  }

 private:
  std::uint32_t tiles_;
  std::uint32_t dim_;
  std::vector<double> storage_;
  std::vector<stf::DataHandle<double>> handles_;
};

}  // namespace rio::workloads
