#include "workloads/lu.hpp"

#include <algorithm>
#include <string>

#include "support/assert.hpp"
#include "workloads/dense.hpp"

namespace rio::workloads {

namespace {
std::string tile_name(const char* op, std::uint32_t i, std::uint32_t j) {
  return std::string(op) + "(" + std::to_string(i) + "," + std::to_string(j) +
         ")";
}
}  // namespace

Workload make_lu_dag(const LuDagSpec& spec) {
  RIO_ASSERT(spec.row_tiles > 0 && spec.col_tiles > 0);
  Workload w;
  w.name = "lu-dag";
  const std::uint32_t rt = spec.row_tiles;
  const std::uint32_t ct = spec.col_tiles;

  std::vector<stf::DataHandle<std::uint64_t>> tiles;
  tiles.reserve(static_cast<std::size_t>(rt) * ct);
  for (std::uint32_t i = 0; i < rt; ++i)
    for (std::uint32_t j = 0; j < ct; ++j)
      tiles.push_back(w.flow.create_data<std::uint64_t>(tile_name("A", i, j)));
  auto h = [&](std::uint32_t i, std::uint32_t j) {
    return tiles[static_cast<std::size_t>(i) * ct + j];
  };

  const auto [pr, pc] =
      spec.num_workers > 0 ? pick_grid(spec.num_workers)
                           : std::pair<std::uint32_t, std::uint32_t>{1, 1};
  auto owner = [&, pr = pr, pc = pc](std::uint32_t i, std::uint32_t j) {
    if (spec.num_workers > 0) w.owners.push_back(cyclic_owner(i, j, pr, pc));
  };

  const std::uint32_t steps = std::min(rt, ct);
  for (std::uint32_t k = 0; k < steps; ++k) {
    w.flow.add(tile_name("getrf", k, k), make_body(spec.body, spec.task_cost),
               {stf::readwrite(h(k, k))}, spec.task_cost);
    owner(k, k);
    for (std::uint32_t j = k + 1; j < ct; ++j) {
      w.flow.add(tile_name("trsm_u", k, j),
                 make_body(spec.body, spec.task_cost),
                 {stf::read(h(k, k)), stf::readwrite(h(k, j))},
                 spec.task_cost);
      owner(k, j);
    }
    for (std::uint32_t i = k + 1; i < rt; ++i) {
      w.flow.add(tile_name("trsm_l", i, k),
                 make_body(spec.body, spec.task_cost),
                 {stf::read(h(k, k)), stf::readwrite(h(i, k))},
                 spec.task_cost);
      owner(i, k);
    }
    for (std::uint32_t i = k + 1; i < rt; ++i) {
      for (std::uint32_t j = k + 1; j < ct; ++j) {
        w.flow.add(
            tile_name("gemm", i, j) + "@" + std::to_string(k),
            make_body(spec.body, spec.task_cost),
            {stf::read(h(i, k)), stf::read(h(k, j)), stf::readwrite(h(i, j))},
            spec.task_cost);
        owner(i, j);
      }
    }
  }
  return w;
}

Workload make_lu_numeric(TiledMatrix& a, std::uint32_t num_workers) {
  Workload w;
  w.name = "lu-numeric";
  const std::uint32_t nt = a.tiles();
  const std::uint32_t dim = a.tile_dim();
  a.attach(w.flow, "A");

  const auto [pr, pc] = num_workers > 0
                            ? pick_grid(num_workers)
                            : std::pair<std::uint32_t, std::uint32_t>{1, 1};
  auto owner = [&, pr = pr, pc = pc](std::uint32_t i, std::uint32_t j) {
    if (num_workers > 0) w.owners.push_back(cyclic_owner(i, j, pr, pc));
  };
  const std::uint64_t cost = 2ull * dim * dim * dim;

  for (std::uint32_t k = 0; k < nt; ++k) {
    const auto hkk = a.handle(k, k);
    w.flow.add(
        tile_name("getrf", k, k),
        [hkk, dim](stf::TaskContext& ctx) { getrf_tile(ctx.get(hkk), dim); },
        {stf::readwrite(hkk)}, cost);
    owner(k, k);
    for (std::uint32_t j = k + 1; j < nt; ++j) {
      const auto hkj = a.handle(k, j);
      w.flow.add(
          tile_name("trsm_u", k, j),
          [hkk, hkj, dim](stf::TaskContext& ctx) {
            trsm_lower_left(ctx.get(hkk, stf::AccessMode::kRead),
                            ctx.get(hkj), dim);
          },
          {stf::read(hkk), stf::readwrite(hkj)}, cost);
      owner(k, j);
    }
    for (std::uint32_t i = k + 1; i < nt; ++i) {
      const auto hik = a.handle(i, k);
      w.flow.add(
          tile_name("trsm_l", i, k),
          [hkk, hik, dim](stf::TaskContext& ctx) {
            trsm_upper_right(ctx.get(hkk, stf::AccessMode::kRead),
                             ctx.get(hik), dim);
          },
          {stf::read(hkk), stf::readwrite(hik)}, cost);
      owner(i, k);
    }
    for (std::uint32_t i = k + 1; i < nt; ++i) {
      for (std::uint32_t j = k + 1; j < nt; ++j) {
        const auto hik = a.handle(i, k);
        const auto hkj = a.handle(k, j);
        const auto hij = a.handle(i, j);
        w.flow.add(
            tile_name("gemm", i, j) + "@" + std::to_string(k),
            [hik, hkj, hij, dim](stf::TaskContext& ctx) {
              gemm_minus_tile(ctx.get(hij),
                              ctx.get(hik, stf::AccessMode::kRead),
                              ctx.get(hkj, stf::AccessMode::kRead), dim);
            },
            {stf::read(hik), stf::read(hkj), stf::readwrite(hij)}, cost);
        owner(i, j);
      }
    }
  }
  return w;
}

std::uint64_t lu_dag_task_count(std::uint32_t rt, std::uint32_t ct) {
  std::uint64_t n = 0;
  const std::uint32_t steps = std::min(rt, ct);
  for (std::uint32_t k = 0; k < steps; ++k) {
    n += 1;                                   // getrf
    n += ct - k - 1;                          // trsm_u
    n += rt - k - 1;                          // trsm_l
    n += static_cast<std::uint64_t>(rt - k - 1) * (ct - k - 1);  // gemm
  }
  return n;
}

}  // namespace rio::workloads
