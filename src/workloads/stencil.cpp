#include "workloads/stencil.hpp"

#include <string>
#include <vector>

#include "support/assert.hpp"

namespace rio::workloads {

Workload make_stencil_dag(const StencilSpec& spec) {
  RIO_ASSERT(spec.chunks > 0 && spec.steps > 0);
  Workload w;
  w.name = "stencil-dag";
  const std::uint32_t n = spec.chunks;

  // Double-buffered chunk handles: buf[parity][chunk].
  std::vector<stf::DataHandle<std::uint64_t>> buf[2];
  for (int p = 0; p < 2; ++p) {
    buf[p].reserve(n);
    for (std::uint32_t i = 0; i < n; ++i)
      buf[p].push_back(w.flow.create_data<std::uint64_t>(
          "u" + std::to_string(p) + "[" + std::to_string(i) + "]"));
  }

  for (std::uint32_t t = 0; t < spec.steps; ++t) {
    const auto& cur = buf[t % 2];
    const auto& nxt = buf[(t + 1) % 2];
    for (std::uint32_t i = 0; i < n; ++i) {
      stf::AccessList acc;
      if (i > 0) acc.push_back(stf::read(cur[i - 1]));
      acc.push_back(stf::read(cur[i]));
      if (i + 1 < n) acc.push_back(stf::read(cur[i + 1]));
      acc.push_back(stf::write(nxt[i]));
      w.flow.add("step" + std::to_string(t) + "[" + std::to_string(i) + "]",
                 make_body(spec.body, spec.task_cost), std::move(acc),
                 spec.task_cost);
      if (spec.num_workers > 0)
        w.owners.push_back(static_cast<stf::WorkerId>(
            static_cast<std::uint64_t>(i) * spec.num_workers / n));
    }
  }
  return w;
}

Workload make_stencil_numeric(std::uint32_t chunks, std::uint32_t chunk_len,
                              std::uint32_t steps,
                              std::vector<double>& buffer_a,
                              std::vector<double>& buffer_b,
                              std::uint32_t num_workers) {
  RIO_ASSERT(chunks > 0 && chunk_len > 0 && steps > 0);
  const std::size_t total = static_cast<std::size_t>(chunks) * chunk_len;
  RIO_ASSERT_MSG(buffer_a.size() == total && buffer_b.size() == total,
                 "buffers must be chunks * chunk_len doubles");
  Workload w;
  w.name = "stencil-numeric";

  std::vector<stf::DataHandle<double>> buf[2];
  std::vector<double>* store[2] = {&buffer_a, &buffer_b};
  for (int p = 0; p < 2; ++p) {
    buf[p].reserve(chunks);
    for (std::uint32_t i = 0; i < chunks; ++i)
      buf[p].push_back(w.flow.attach_data<double>(
          "u" + std::to_string(p) + "[" + std::to_string(i) + "]",
          store[p]->data() + static_cast<std::size_t>(i) * chunk_len,
          chunk_len));
  }

  // 3-point heat update with reflective boundaries:
  //   next[x] = 0.25*left + 0.5*mid + 0.25*right.
  const std::uint64_t cost = 4ull * chunk_len;
  for (std::uint32_t t = 0; t < steps; ++t) {
    const auto& cur = buf[t % 2];
    const auto& nxt = buf[(t + 1) % 2];
    for (std::uint32_t i = 0; i < chunks; ++i) {
      const bool has_left = i > 0;
      const bool has_right = i + 1 < chunks;
      const auto hl = has_left ? cur[i - 1] : cur[i];
      const auto hm = cur[i];
      const auto hr = has_right ? cur[i + 1] : cur[i];
      const auto hn = nxt[i];
      stf::AccessList acc;
      if (has_left) acc.push_back(stf::read(hl));
      acc.push_back(stf::read(hm));
      if (has_right) acc.push_back(stf::read(hr));
      acc.push_back(stf::write(hn));
      w.flow.add(
          "step" + std::to_string(t) + "[" + std::to_string(i) + "]",
          [hl, hm, hr, hn, chunk_len, has_left,
           has_right](stf::TaskContext& ctx) {
            const double* left = ctx.get(hl, stf::AccessMode::kRead);
            const double* mid = ctx.get(hm, stf::AccessMode::kRead);
            const double* right = ctx.get(hr, stf::AccessMode::kRead);
            double* out = ctx.get(hn);
            for (std::uint32_t x = 0; x < chunk_len; ++x) {
              const double lv = x > 0           ? mid[x - 1]
                                : has_left      ? left[chunk_len - 1]
                                                : mid[0];
              const double rv = x + 1 < chunk_len ? mid[x + 1]
                                : has_right       ? right[0]
                                                  : mid[chunk_len - 1];
              out[x] = 0.25 * lv + 0.5 * mid[x] + 0.25 * rv;
            }
          },
          std::move(acc), cost);
      if (num_workers > 0)
        w.owners.push_back(static_cast<stf::WorkerId>(
            static_cast<std::uint64_t>(i) * num_workers / chunks));
    }
  }
  return w;
}

}  // namespace rio::workloads
