#include "workloads/hpl.hpp"

#include <cmath>
#include <string>

#include "support/assert.hpp"
#include "workloads/dense.hpp"

namespace rio::workloads {
namespace {

/// Per-tile-row pivot candidate exchanged between search and reduce tasks.
struct Cand {
  double value = 0.0;        // |entry|
  std::uint32_t local_row = 0;
};

std::string nm(const char* op, std::uint32_t a, std::uint32_t b) {
  return std::string(op) + "(" + std::to_string(a) + "," + std::to_string(b) +
         ")";
}

}  // namespace

HplWorkload make_hpl_lu(TiledMatrix& a, std::uint32_t num_workers) {
  RIO_ASSERT(num_workers > 0);
  const std::uint32_t nt = a.tiles();
  const std::uint32_t b = a.tile_dim();
  const std::size_t n = a.order();

  HplWorkload out;
  Workload& w = out.workload;
  w.name = "hpl-lu";
  a.attach(w.flow, "A");

  // Pivot-candidate slots (one per tile row) and the permutation record.
  std::vector<stf::DataHandle<Cand>> cand;
  for (std::uint32_t i = 0; i < nt; ++i)
    cand.push_back(w.flow.create_data<Cand>("cand[" + std::to_string(i) + "]"));
  out.perm = std::make_shared<std::vector<std::uint64_t>>(n, 0);
  auto perm_h = w.flow.attach_data<std::uint64_t>("perm", out.perm->data(), n);
  const auto perm_ptr = out.perm;

  std::vector<bool> is_fine;
  auto fine_owner = [&](stf::WorkerId owner) {
    w.owners.push_back(owner);
    is_fine.push_back(true);
  };
  auto coarse_owner = [&](std::uint32_t i, std::uint32_t j) {
    const auto [pr, pc] = pick_grid(num_workers);
    w.owners.push_back(cyclic_owner(i, j, pr, pc));
    is_fine.push_back(false);
  };

  const std::uint64_t fine_cost = 4ull * b;          // O(b) scans
  const std::uint64_t coarse_cost = 2ull * b * b * b;  // O(b^3) updates

  for (std::uint32_t k = 0; k < nt; ++k) {
    // ---------------- FINE: pivoted panel factorization ------------------
    for (std::uint32_t c = 0; c < b; ++c) {
      // search(i): local max of panel column c in tile row i.
      for (std::uint32_t i = k; i < nt; ++i) {
        const auto hik = a.handle(i, k);
        const auto hc = cand[i];
        const std::uint32_t from = (i == k) ? c : 0;
        w.flow.add(
            nm("search", i, c) + "@" + std::to_string(k),
            [hik, hc, from, c, b](stf::TaskContext& ctx) {
              const double* tile = ctx.get(hik, stf::AccessMode::kRead);
              Cand best{-1.0, from};
              for (std::uint32_t r = from; r < b; ++r) {
                const double v = std::fabs(tile[r + c * b]);
                if (v > best.value) best = {v, r};
              }
              *ctx.get(hc) = best;
            },
            {stf::read(hik), stf::write(hc)}, fine_cost);
        fine_owner(static_cast<stf::WorkerId>(i % num_workers));
      }

      // reduce+swap: pick the global pivot, swap the panel rows, record it.
      {
        stf::AccessList acc;
        for (std::uint32_t i = k; i < nt; ++i) acc.push_back(stf::read(cand[i]));
        for (std::uint32_t i = k; i < nt; ++i)
          acc.push_back(stf::readwrite(a.handle(i, k)));
        acc.push_back(stf::readwrite(perm_h));
        std::vector<stf::DataHandle<Cand>> cands(cand.begin() + k, cand.end());
        std::vector<stf::DataHandle<double>> tiles;
        for (std::uint32_t i = k; i < nt; ++i) tiles.push_back(a.handle(i, k));
        w.flow.add(
            nm("pivot", k, c),
            [cands, tiles, perm_ptr, k, c, b](stf::TaskContext& ctx) {
              // Global argmax, first-wins on ties (matches the dense
              // reference's strict-greater scan).
              std::uint32_t best_tile = 0;
              Cand best = *ctx.get(cands[0], stf::AccessMode::kRead);
              for (std::uint32_t t = 1; t < cands.size(); ++t) {
                const Cand cd = *ctx.get(cands[t], stf::AccessMode::kRead);
                if (cd.value > best.value) {
                  best = cd;
                  best_tile = t;
                }
              }
              const std::uint64_t cur = static_cast<std::uint64_t>(k) * b + c;
              const std::uint64_t piv =
                  static_cast<std::uint64_t>(k + best_tile) * b +
                  best.local_row;
              (*perm_ptr)[cur] = piv;
              if (piv != cur) {
                // Swap the panel-width rows (tile column k only; trailing
                // columns are swapped by the coarse laswp tasks).
                double* trow = ctx.get(tiles[0]);            // tile (k,k)
                double* prow = ctx.get(tiles[best_tile]);    // tile (ir,k)
                for (std::uint32_t col = 0; col < b; ++col)
                  std::swap(trow[c + col * b],
                            prow[best.local_row + col * b]);
              }
            },
            std::move(acc), fine_cost);
        fine_owner(static_cast<stf::WorkerId>(k % num_workers));
      }

      // update(i): scale column c below the pivot + rank-1 panel update.
      for (std::uint32_t i = k; i < nt; ++i) {
        const auto hkk = a.handle(k, k);
        const auto hik = a.handle(i, k);
        stf::AccessList acc;
        if (i == k)
          acc.push_back(stf::readwrite(hkk));
        else {
          acc.push_back(stf::read(hkk));
          acc.push_back(stf::readwrite(hik));
        }
        w.flow.add(
            nm("panel_update", i, c) + "@" + std::to_string(k),
            [hkk, hik, i, k, c, b](stf::TaskContext& ctx) {
              const double* pivot_tile =
                  (i == k) ? ctx.get(hkk) : ctx.get(hkk, stf::AccessMode::kRead);
              double* tile = (i == k) ? ctx.get(hkk) : ctx.get(hik);
              const double pivot = pivot_tile[c + c * b];
              RIO_DEBUG_ASSERT(pivot != 0.0);
              const double inv = 1.0 / pivot;
              const std::uint32_t from = (i == k) ? c + 1 : 0;
              for (std::uint32_t r = from; r < b; ++r) {
                const double l = tile[r + c * b] * inv;
                tile[r + c * b] = l;
                for (std::uint32_t cc = c + 1; cc < b; ++cc)
                  tile[r + cc * b] -= l * pivot_tile[c + cc * b];
              }
            },
            std::move(acc), fine_cost);
        fine_owner(static_cast<stf::WorkerId>(i % num_workers));
      }
    }

    // ---------------- COARSE: swaps, solves, trailing update --------------
    // laswp(j): apply this panel's row swaps to every other tile column.
    for (std::uint32_t j = 0; j < nt; ++j) {
      if (j == k) continue;
      stf::AccessList acc;
      acc.push_back(stf::read(perm_h));
      for (std::uint32_t i = k; i < nt; ++i)
        acc.push_back(stf::readwrite(a.handle(i, j)));
      std::vector<stf::DataHandle<double>> tiles;
      for (std::uint32_t i = k; i < nt; ++i) tiles.push_back(a.handle(i, j));
      w.flow.add(
          nm("laswp", k, j),
          [tiles, perm_ptr, k, b](stf::TaskContext& ctx) {
            for (std::uint32_t c = 0; c < b; ++c) {
              const std::uint64_t cur = static_cast<std::uint64_t>(k) * b + c;
              const std::uint64_t piv = (*perm_ptr)[cur];
              if (piv == cur) continue;
              double* trow = ctx.get(tiles[0]);
              double* prow = ctx.get(tiles[piv / b - k]);
              const auto pr_local = static_cast<std::uint32_t>(piv % b);
              for (std::uint32_t col = 0; col < b; ++col)
                std::swap(trow[c + col * b], prow[pr_local + col * b]);
            }
          },
          std::move(acc), coarse_cost);
      coarse_owner(k, j);
    }
    // trsm(j): row-panel solves with the unit-lower panel factor.
    for (std::uint32_t j = k + 1; j < nt; ++j) {
      const auto hkk = a.handle(k, k);
      const auto hkj = a.handle(k, j);
      w.flow.add(
          nm("trsm", k, j),
          [hkk, hkj, b](stf::TaskContext& ctx) {
            trsm_lower_left(ctx.get(hkk, stf::AccessMode::kRead),
                            ctx.get(hkj), b);
          },
          {stf::read(hkk), stf::readwrite(hkj)}, coarse_cost);
      coarse_owner(k, j);
    }
    // gemm(i,j): trailing update.
    for (std::uint32_t i = k + 1; i < nt; ++i) {
      for (std::uint32_t j = k + 1; j < nt; ++j) {
        const auto hik = a.handle(i, k);
        const auto hkj = a.handle(k, j);
        const auto hij = a.handle(i, j);
        w.flow.add(
            nm("gemm", i, j) + "@" + std::to_string(k),
            [hik, hkj, hij, b](stf::TaskContext& ctx) {
              gemm_minus_tile(ctx.get(hij),
                              ctx.get(hik, stf::AccessMode::kRead),
                              ctx.get(hkj, stf::AccessMode::kRead), b);
            },
            {stf::read(hik), stf::read(hkj), stf::readwrite(hij)},
            coarse_cost);
        coarse_owner(i, j);
      }
    }
  }

  // Encode "coarse" as kInvalidWorker in a COPY used by partial_mapping();
  // keep complete owners in `workload.owners` so pure-RIO runs also work.
  // partial_mapping() needs the fine/coarse distinction: rebuild owners
  // with kInvalidWorker for coarse tasks into a dedicated vector stored in
  // the closure.
  {
    std::vector<stf::WorkerId> partial(w.owners.size());
    for (std::size_t t = 0; t < w.owners.size(); ++t)
      partial[t] = is_fine[t] ? w.owners[t] : stf::kInvalidWorker;
    // Stash the partial table by swapping: HplWorkload::partial_mapping()
    // reads workload.owners, so store the PARTIAL view there and keep the
    // complete table under a custom mapping for full-RIO users.
    out.full_owners = std::move(w.owners);
    w.owners = std::move(partial);
  }
  return out;
}

std::vector<std::uint64_t> dense_lu_pivoted(std::vector<double>& a,
                                            std::size_t n) {
  RIO_ASSERT(a.size() == n * n);
  std::vector<std::uint64_t> perm(n);
  for (std::size_t c = 0; c < n; ++c) {
    std::size_t piv = c;
    double best = std::fabs(a[c + c * n]);
    for (std::size_t r = c + 1; r < n; ++r) {
      const double v = std::fabs(a[r + c * n]);
      if (v > best) {
        best = v;
        piv = r;
      }
    }
    perm[c] = piv;
    if (piv != c)
      for (std::size_t col = 0; col < n; ++col)
        std::swap(a[c + col * n], a[piv + col * n]);
    const double inv = 1.0 / a[c + c * n];
    for (std::size_t r = c + 1; r < n; ++r) {
      const double l = a[r + c * n] * inv;
      a[r + c * n] = l;
      for (std::size_t col = c + 1; col < n; ++col)
        a[r + col * n] -= l * a[c + col * n];
    }
  }
  return perm;
}

double hpl_residual(const TiledMatrix& original, const TiledMatrix& lu,
                    const std::vector<std::uint64_t>& perm) {
  const std::size_t n = original.order();
  RIO_ASSERT(perm.size() == n && lu.order() == n);

  // P*A: apply the recorded swaps, in order, to a dense copy.
  std::vector<double> pa(n * n);
  for (std::size_t r = 0; r < n; ++r)
    for (std::size_t c = 0; c < n; ++c) pa[r + c * n] = original.at(r, c);
  for (std::size_t c = 0; c < n; ++c) {
    const std::size_t piv = perm[c];
    if (piv != c)
      for (std::size_t col = 0; col < n; ++col)
        std::swap(pa[c + col * n], pa[piv + col * n]);
  }

  double norm_a = 0.0, worst = 0.0;
  for (double v : pa) norm_a = std::max(norm_a, std::fabs(v));
  // ||P*A - L*U||_max, computing (L*U)(r,c) on the fly.
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = 0; c < n; ++c) {
      double acc = 0.0;
      const std::size_t kmax = std::min(r, c);
      for (std::size_t k = 0; k <= kmax; ++k) {
        const double l = (k == r) ? 1.0 : lu.at(r, k);
        acc += l * lu.at(k, c);
      }
      worst = std::max(worst, std::fabs(pa[r + c * n] - acc));
    }
  }
  return worst / (static_cast<double>(n) * norm_a);
}

}  // namespace rio::workloads
