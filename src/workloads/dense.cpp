#include "workloads/dense.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "support/assert.hpp"

namespace rio::workloads {

namespace {
// Column-major indexing helper.
inline std::size_t at(std::size_t r, std::size_t c, std::size_t ld) {
  return r + c * ld;
}
}  // namespace

void gemm_tile(double* c, const double* a, const double* b, std::size_t dim) {
  // jki order: stream down columns of C and A (unit stride, column-major),
  // broadcast one B element per inner loop — the textbook cache-friendly
  // order for column-major data; GCC vectorizes the inner loop.
  for (std::size_t j = 0; j < dim; ++j) {
    for (std::size_t k = 0; k < dim; ++k) {
      const double bkj = b[at(k, j, dim)];
      const double* ak = a + k * dim;
      double* cj = c + j * dim;
      for (std::size_t i = 0; i < dim; ++i) cj[i] += ak[i] * bkj;
    }
  }
}

void gemm_minus_tile(double* c, const double* a, const double* b,
                     std::size_t dim) {
  for (std::size_t j = 0; j < dim; ++j) {
    for (std::size_t k = 0; k < dim; ++k) {
      const double bkj = b[at(k, j, dim)];
      const double* ak = a + k * dim;
      double* cj = c + j * dim;
      for (std::size_t i = 0; i < dim; ++i) cj[i] -= ak[i] * bkj;
    }
  }
}

void getrf_tile(double* a, std::size_t dim) {
  // Right-looking unpivoted LU. Valid for the diagonally-dominant inputs
  // the workload generators produce.
  for (std::size_t k = 0; k < dim; ++k) {
    const double pivot = a[at(k, k, dim)];
    RIO_DEBUG_ASSERT(pivot != 0.0);
    const double inv = 1.0 / pivot;
    for (std::size_t i = k + 1; i < dim; ++i) a[at(i, k, dim)] *= inv;
    for (std::size_t j = k + 1; j < dim; ++j) {
      const double ukj = a[at(k, j, dim)];
      for (std::size_t i = k + 1; i < dim; ++i)
        a[at(i, j, dim)] -= a[at(i, k, dim)] * ukj;
    }
  }
}

void trsm_lower_left(const double* lu, double* b, std::size_t dim) {
  // Forward substitution with the unit-lower factor, one column at a time.
  for (std::size_t j = 0; j < dim; ++j) {
    double* bj = b + j * dim;
    for (std::size_t k = 0; k < dim; ++k) {
      const double bkj = bj[k];  // L has unit diagonal: no divide
      for (std::size_t i = k + 1; i < dim; ++i)
        bj[i] -= lu[at(i, k, dim)] * bkj;
    }
  }
}

void trsm_upper_right(const double* lu, double* b, std::size_t dim) {
  // Solve X * U = B column-block-wise: for column j of U, X(:,j) =
  // (B(:,j) - X(:,0..j-1) * U(0..j-1, j)) / U(j,j).
  for (std::size_t j = 0; j < dim; ++j) {
    double* bj = b + j * dim;
    for (std::size_t k = 0; k < j; ++k) {
      const double ukj = lu[at(k, j, dim)];
      const double* bk = b + k * dim;
      for (std::size_t i = 0; i < dim; ++i) bj[i] -= bk[i] * ukj;
    }
    const double inv = 1.0 / lu[at(j, j, dim)];
    for (std::size_t i = 0; i < dim; ++i) bj[i] *= inv;
  }
}

void potrf_tile(double* a, std::size_t dim) {
  for (std::size_t k = 0; k < dim; ++k) {
    double diag = a[at(k, k, dim)];
    for (std::size_t m = 0; m < k; ++m) {
      const double lkm = a[at(k, m, dim)];
      diag -= lkm * lkm;
    }
    RIO_DEBUG_ASSERT(diag > 0.0);
    diag = std::sqrt(diag);
    a[at(k, k, dim)] = diag;
    const double inv = 1.0 / diag;
    for (std::size_t i = k + 1; i < dim; ++i) {
      double v = a[at(i, k, dim)];
      for (std::size_t m = 0; m < k; ++m)
        v -= a[at(i, m, dim)] * a[at(k, m, dim)];
      a[at(i, k, dim)] = v * inv;
    }
  }
}

void trsm_right_lower_transpose(const double* l, double* b, std::size_t dim) {
  // Solve X * L^T = B  =>  column k of X depends on columns 0..k-1.
  for (std::size_t k = 0; k < dim; ++k) {
    double* bk = b + k * dim;
    for (std::size_t m = 0; m < k; ++m) {
      const double lkm = l[at(k, m, dim)];
      const double* bm = b + m * dim;
      for (std::size_t i = 0; i < dim; ++i) bk[i] -= bm[i] * lkm;
    }
    const double inv = 1.0 / l[at(k, k, dim)];
    for (std::size_t i = 0; i < dim; ++i) bk[i] *= inv;
  }
}

void syrk_tile(double* c, const double* a, std::size_t dim) {
  // Lower triangle of C -= A * A^T.
  for (std::size_t j = 0; j < dim; ++j) {
    for (std::size_t k = 0; k < dim; ++k) {
      const double ajk = a[at(j, k, dim)];
      for (std::size_t i = j; i < dim; ++i)
        c[at(i, j, dim)] -= a[at(i, k, dim)] * ajk;
    }
  }
}

void naive_dgemm(double* c, const double* a, const double* b, std::size_t n) {
  gemm_tile(c, a, b, n);
}

void blocked_dgemm(double* c, const double* a, const double* b, std::size_t n,
                   std::size_t block) {
  RIO_ASSERT(block > 0);
  // Pack the active tiles of A and B into contiguous scratch so each
  // sub-multiplication works on dense column-major tiles — this is what
  // gives small blocks their cache penalty relative to large ones, the
  // effect Figure 3 measures.
  std::vector<double> apack(block * block), bpack(block * block),
      cpack(block * block);
  for (std::size_t jj = 0; jj < n; jj += block) {
    const std::size_t jb = std::min(block, n - jj);
    for (std::size_t ii = 0; ii < n; ii += block) {
      const std::size_t ib = std::min(block, n - ii);
      // Load C tile.
      for (std::size_t j = 0; j < jb; ++j)
        for (std::size_t i = 0; i < ib; ++i)
          cpack[at(i, j, ib)] = c[at(ii + i, jj + j, n)];
      for (std::size_t kk = 0; kk < n; kk += block) {
        const std::size_t kb = std::min(block, n - kk);
        for (std::size_t k = 0; k < kb; ++k)
          for (std::size_t i = 0; i < ib; ++i)
            apack[at(i, k, ib)] = a[at(ii + i, kk + k, n)];
        for (std::size_t j = 0; j < jb; ++j)
          for (std::size_t k = 0; k < kb; ++k)
            bpack[at(k, j, kb)] = b[at(kk + k, jj + j, n)];
        // C_tile += A_tile * B_tile (rectangular-safe jki kernel).
        for (std::size_t j = 0; j < jb; ++j) {
          for (std::size_t k = 0; k < kb; ++k) {
            const double bkj = bpack[at(k, j, kb)];
            const double* ak = apack.data() + k * ib;
            double* cj = cpack.data() + j * ib;
            for (std::size_t i = 0; i < ib; ++i) cj[i] += ak[i] * bkj;
          }
        }
      }
      // Store C tile back.
      for (std::size_t j = 0; j < jb; ++j)
        for (std::size_t i = 0; i < ib; ++i)
          c[at(ii + i, jj + j, n)] = cpack[at(i, j, ib)];
    }
  }
}

}  // namespace rio::workloads
