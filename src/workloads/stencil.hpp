// 1-D stencil sweep (extension workload).
//
// T Jacobi time-steps over a double-buffered array of chunks: updating
// chunk i at step t reads chunks i-1, i, i+1 of the current buffer and
// writes chunk i of the next buffer. With a block mapping, RIO's
// neighbour-only synchronization makes the steady state a software
// pipeline — the classic case where the decentralized model's cheap
// point-to-point waits shine and the centralized master adds nothing.
#pragma once

#include <cstdint>
#include <vector>

#include "workloads/kernels.hpp"
#include "workloads/workload.hpp"

namespace rio::workloads {

struct StencilSpec {
  std::uint32_t chunks = 16;       ///< spatial decomposition
  std::uint32_t steps = 8;         ///< time steps
  std::uint64_t task_cost = 1000;
  BodyKind body = BodyKind::kCounter;
  std::uint32_t num_workers = 0;   ///< >0: contiguous block owner table
};

/// Synthetic stencil DAG. Owners: chunk i belongs to worker
/// i * p / chunks (contiguous blocks — the natural domain decomposition).
Workload make_stencil_dag(const StencilSpec& spec);

struct NumericStencilResult {
  Workload workload;
  stf::DataHandle<double> result;  ///< handle of the final buffer's chunk 0
};

/// Numeric 3-point heat-equation stencil over `chunks` chunks of
/// `chunk_len` doubles, `steps` sweeps. Verifiable against a sequential
/// reference by the test suite.
Workload make_stencil_numeric(std::uint32_t chunks, std::uint32_t chunk_len,
                              std::uint32_t steps,
                              std::vector<double>& buffer_a,
                              std::vector<double>& buffer_b,
                              std::uint32_t num_workers = 0);

}  // namespace rio::workloads
