#include "workloads/cholesky.hpp"

#include <string>
#include <vector>

#include "support/assert.hpp"
#include "workloads/dense.hpp"

namespace rio::workloads {

namespace {
std::string nm(const char* op, std::uint32_t i, std::uint32_t j) {
  return std::string(op) + "(" + std::to_string(i) + "," + std::to_string(j) +
         ")";
}
}  // namespace

Workload make_cholesky_dag(const CholeskyDagSpec& spec) {
  RIO_ASSERT(spec.tiles > 0);
  Workload w;
  w.name = "cholesky-dag";
  const std::uint32_t nt = spec.tiles;

  // Only the lower triangle exists: the factorization never touches
  // A(i,j) for j > i, and registering those tiles would leave dangling
  // handles (lint finding RF003).
  std::vector<stf::DataHandle<std::uint64_t>> tiles;
  tiles.reserve((static_cast<std::size_t>(nt) * (nt + 1)) / 2);
  for (std::uint32_t i = 0; i < nt; ++i)
    for (std::uint32_t j = 0; j <= i; ++j)
      tiles.push_back(w.flow.create_data<std::uint64_t>(nm("A", i, j)));
  auto h = [&](std::uint32_t i, std::uint32_t j) {
    RIO_DEBUG_ASSERT(j <= i);
    return tiles[(static_cast<std::size_t>(i) * (i + 1)) / 2 + j];
  };

  const auto [pr, pc] =
      spec.num_workers > 0 ? pick_grid(spec.num_workers)
                           : std::pair<std::uint32_t, std::uint32_t>{1, 1};
  auto owner = [&, pr = pr, pc = pc](std::uint32_t i, std::uint32_t j) {
    if (spec.num_workers > 0) w.owners.push_back(cyclic_owner(i, j, pr, pc));
  };

  for (std::uint32_t k = 0; k < nt; ++k) {
    w.flow.add(nm("potrf", k, k), make_body(spec.body, spec.task_cost),
               {stf::readwrite(h(k, k))}, spec.task_cost);
    owner(k, k);
    for (std::uint32_t i = k + 1; i < nt; ++i) {
      w.flow.add(nm("trsm", i, k), make_body(spec.body, spec.task_cost),
                 {stf::read(h(k, k)), stf::readwrite(h(i, k))},
                 spec.task_cost);
      owner(i, k);
    }
    for (std::uint32_t i = k + 1; i < nt; ++i) {
      w.flow.add(nm("syrk", i, k), make_body(spec.body, spec.task_cost),
                 {stf::read(h(i, k)), stf::readwrite(h(i, i))},
                 spec.task_cost);
      owner(i, i);
      for (std::uint32_t j = k + 1; j < i; ++j) {
        w.flow.add(
            nm("gemm", i, j) + "@" + std::to_string(k),
            make_body(spec.body, spec.task_cost),
            {stf::read(h(i, k)), stf::read(h(j, k)), stf::readwrite(h(i, j))},
            spec.task_cost);
        owner(i, j);
      }
    }
  }
  return w;
}

Workload make_cholesky_numeric(TiledMatrix& a, std::uint32_t num_workers) {
  Workload w;
  w.name = "cholesky-numeric";
  const std::uint32_t nt = a.tiles();
  const std::uint32_t dim = a.tile_dim();
  a.attach(w.flow, "A");

  const auto [pr, pc] = num_workers > 0
                            ? pick_grid(num_workers)
                            : std::pair<std::uint32_t, std::uint32_t>{1, 1};
  auto owner = [&, pr = pr, pc = pc](std::uint32_t i, std::uint32_t j) {
    if (num_workers > 0) w.owners.push_back(cyclic_owner(i, j, pr, pc));
  };
  const std::uint64_t cost = 2ull * dim * dim * dim;

  for (std::uint32_t k = 0; k < nt; ++k) {
    const auto hkk = a.handle(k, k);
    w.flow.add(
        nm("potrf", k, k),
        [hkk, dim](stf::TaskContext& ctx) { potrf_tile(ctx.get(hkk), dim); },
        {stf::readwrite(hkk)}, cost);
    owner(k, k);
    for (std::uint32_t i = k + 1; i < nt; ++i) {
      const auto hik = a.handle(i, k);
      w.flow.add(
          nm("trsm", i, k),
          [hkk, hik, dim](stf::TaskContext& ctx) {
            trsm_right_lower_transpose(ctx.get(hkk, stf::AccessMode::kRead),
                                       ctx.get(hik), dim);
          },
          {stf::read(hkk), stf::readwrite(hik)}, cost);
      owner(i, k);
    }
    for (std::uint32_t i = k + 1; i < nt; ++i) {
      const auto hik = a.handle(i, k);
      const auto hii = a.handle(i, i);
      w.flow.add(
          nm("syrk", i, k),
          [hik, hii, dim](stf::TaskContext& ctx) {
            syrk_tile(ctx.get(hii), ctx.get(hik, stf::AccessMode::kRead), dim);
          },
          {stf::read(hik), stf::readwrite(hii)}, cost);
      owner(i, i);
      for (std::uint32_t j = k + 1; j < i; ++j) {
        const auto hjk = a.handle(j, k);
        const auto hij = a.handle(i, j);
        w.flow.add(
            nm("gemm", i, j) + "@" + std::to_string(k),
            [hik, hjk, hij, dim](stf::TaskContext& ctx) {
              // C(i,j) -= A(i,k) * A(j,k)^T; reuse gemm_minus on a
              // transposed copy-free basis is not possible with our simple
              // kernel, so materialize A(j,k)^T into a stack tile.
              const double* ajk = ctx.get(hjk, stf::AccessMode::kRead);
              std::vector<double> ajkT(static_cast<std::size_t>(dim) * dim);
              for (std::uint32_t r = 0; r < dim; ++r)
                for (std::uint32_t c = 0; c < dim; ++c)
                  ajkT[c + static_cast<std::size_t>(r) * dim] =
                      ajk[r + static_cast<std::size_t>(c) * dim];
              gemm_minus_tile(ctx.get(hij),
                              ctx.get(hik, stf::AccessMode::kRead),
                              ajkT.data(), dim);
            },
            {stf::read(hik), stf::read(hjk), stf::readwrite(hij)}, cost);
        owner(i, j);
      }
    }
  }
  return w;
}

std::uint64_t cholesky_dag_task_count(std::uint32_t nt) {
  std::uint64_t n = 0;
  for (std::uint32_t k = 0; k < nt; ++k) {
    n += 1;                // potrf
    n += nt - k - 1;       // trsm
    n += nt - k - 1;       // syrk
    for (std::uint32_t i = k + 1; i < nt; ++i) n += i - k - 1;  // gemm
  }
  return n;
}

}  // namespace rio::workloads
