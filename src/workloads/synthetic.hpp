// Synthetic task graphs — Experiments 1 and 2 of Section 5.1.
//
// Experiment 1: independent tasks (no data, no dependencies) — isolates the
// raw per-task cost of each execution model (also Figures 6 and 7).
//
// Experiment 2: random dependencies — each task draws 2 random read
// dependencies and 1 random write dependency over a pool of 128 data
// objects. With no exploitable structure, no good static mapping or
// submission order exists: this is RIO's designed-in worst case.
#pragma once

#include <cstdint>

#include "workloads/kernels.hpp"
#include "workloads/workload.hpp"

namespace rio::workloads {

struct IndependentSpec {
  std::uint64_t num_tasks = 1024;
  std::uint64_t task_cost = 1000;     ///< counter iterations / virtual cost
  BodyKind body = BodyKind::kCounter;
  std::uint32_t num_workers = 0;      ///< >0: fill round-robin owner table
};

/// Experiment-1 generator: `num_tasks` tasks touching no data at all.
Workload make_independent(const IndependentSpec& spec);

struct RandomDepsSpec {
  std::uint64_t num_tasks = 1024;
  std::uint32_t num_data = 128;       ///< paper: 128 data objects
  std::uint32_t reads_per_task = 2;   ///< paper: 2 random read deps
  std::uint32_t writes_per_task = 1;  ///< paper: 1 random write dep
  std::uint64_t task_cost = 1000;
  BodyKind body = BodyKind::kCounter;
  std::uint64_t seed = 42;
  std::uint32_t num_workers = 0;      ///< >0: fill round-robin owner table
};

/// Experiment-2 generator. Reads and the write target distinct objects
/// (a task never lists the same data twice).
Workload make_random_deps(const RandomDepsSpec& spec);

struct ChainSpec {
  std::uint64_t num_tasks = 256;
  std::uint64_t task_cost = 500;     ///< counter iterations / virtual cost
  BodyKind body = BodyKind::kCounter;
  std::uint32_t num_workers = 0;     ///< >0: fill round-robin owner table
};

/// Fully serial chain: every task readwrites ONE data object, so task t
/// depends on task t-1 and nothing ever runs in parallel. The degenerate
/// workload where every runtime overhead sits on the critical path — and,
/// with a round-robin owner table, where every dependency crosses workers:
/// the chaos harness's most order-sensitive case (one misordered or
/// double-applied fold corrupts every later value).
Workload make_chain(const ChainSpec& spec);

}  // namespace rio::workloads
