// Mini Task Bench — the parameterized dependence patterns of the paper's
// motivating study.
//
// The paper's granularity argument rests on the Task Bench survey
// [Slaughter et al., SC20]: STF runtimes only become profitable above a
// minimum task granularity (~100 us on ~24-core nodes for StarPU-class
// systems). Task Bench expresses workloads as an iteration space of
// `width` points by `steps` time steps with a per-step dependence pattern.
// This module reimplements the core patterns over our STF layer, so the
// METG (minimum effective task granularity) methodology can be replayed
// against both execution models (bench/metg).
//
// Every point of every step is one task: it reads the previous-step
// objects of its dependence neighbourhood and writes its own double-
// buffered object.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "workloads/kernels.hpp"
#include "workloads/workload.hpp"

namespace rio::workloads {

/// Task Bench dependence patterns (the shared-memory-relevant subset).
enum class TaskBenchPattern : std::uint8_t {
  kTrivial,           ///< no dependencies at all
  kNoComm,            ///< same-point only: width independent chains
  kStencil1D,         ///< points d-1, d, d+1 (clamped at the borders)
  kStencil1DPeriodic, ///< same, wrapping around
  kFft,               ///< butterfly: d and d XOR 2^(t mod log2(width))
  kTree,              ///< binary reduction tree folded over the steps
  kAllToAll,          ///< every point depends on every previous point
  kSpread,            ///< k strided dependencies (k = 3) spreading info
};

constexpr const char* to_string(TaskBenchPattern p) noexcept {
  switch (p) {
    case TaskBenchPattern::kTrivial: return "trivial";
    case TaskBenchPattern::kNoComm: return "no_comm";
    case TaskBenchPattern::kStencil1D: return "stencil_1d";
    case TaskBenchPattern::kStencil1DPeriodic: return "stencil_1d_periodic";
    case TaskBenchPattern::kFft: return "fft";
    case TaskBenchPattern::kTree: return "tree";
    case TaskBenchPattern::kAllToAll: return "all_to_all";
    case TaskBenchPattern::kSpread: return "spread";
  }
  return "?";
}

/// All patterns, for parameterized tests/benches.
inline constexpr TaskBenchPattern kAllTaskBenchPatterns[] = {
    TaskBenchPattern::kTrivial,   TaskBenchPattern::kNoComm,
    TaskBenchPattern::kStencil1D, TaskBenchPattern::kStencil1DPeriodic,
    TaskBenchPattern::kFft,       TaskBenchPattern::kTree,
    TaskBenchPattern::kAllToAll,  TaskBenchPattern::kSpread,
};

struct TaskBenchSpec {
  TaskBenchPattern pattern = TaskBenchPattern::kStencil1D;
  std::uint32_t width = 24;     ///< points per step (Task Bench: ~cores)
  std::uint32_t steps = 32;     ///< time steps
  std::uint64_t task_cost = 1000;
  BodyKind body = BodyKind::kNone;
  std::uint32_t num_workers = 0;  ///< >0: owner table (point d -> d mod p,
                                  ///< the Task Bench shard mapping)
};

/// Dependence neighbourhood of point `d` at step `t` (indices into the
/// previous step's row). Exposed for tests.
std::vector<std::uint32_t> taskbench_deps(const TaskBenchSpec& spec,
                                          std::uint32_t t, std::uint32_t d);

/// Builds the width x steps task grid for `spec`.
Workload make_taskbench(const TaskBenchSpec& spec);

}  // namespace rio::workloads
