#include "coor/runtime.hpp"

#include <algorithm>
#include <atomic>
#include <barrier>
#include <deque>
#include <exception>
#include <mutex>
#include <optional>
#include <sstream>
#include <thread>
#include <utility>
#include <vector>

#include "obs/obs.hpp"
#include "support/assert.hpp"
#include "support/clock.hpp"
#include "support/topology.hpp"
#include "support/align.hpp"
#include "support/watchdog.hpp"
#include "coor/sync_ops.hpp"
#include "stf/access_guard.hpp"
#include "stf/dep_scanner.hpp"
#include "stf/failure.hpp"
#include "stf/resilience.hpp"

namespace rio::coor {
namespace detail {

/// Per-task dependency bookkeeping. One node per task for the whole range —
/// the linear-space structure the paper contrasts with RIO's O(data)
/// footprint. Indexed by the task's position WITHIN the range.
struct TaskNode {
  // Unresolved predecessor count, +1 discovery guard held by the master
  // while it registers edges. The task becomes ready when this hits zero.
  std::atomic<std::int32_t> remaining{1};
  std::mutex mu;
  std::vector<std::size_t> successors;  // local indices
  bool finished = false;
  // Wait-cause provenance: the task whose complete() made this one ready
  // (kNoTask when the master dispatched it). Written by the dispatching
  // thread before the queue push, read after the pop — the queue's own
  // synchronization orders the plain accesses.
  std::uint64_t dispatcher = obs::kNoTask;
};

}  // namespace detail

/// Recycled across runs of one Runtime: TaskNode holds a std::mutex, so the
/// pool is a deque (grows in place, no moves) and entries are reset rather
/// than reconstructed.
struct Runtime::NodeArena {
  std::deque<detail::TaskNode> nodes;
  std::vector<support::AlignedAtomic<std::uint32_t>> reduction_locks;
};

namespace {

using detail::TaskNode;

/// Burns approximately `ns` nanoseconds — the artificial master-overhead
/// knob used to calibrate COOR's dispatch cost against heavier runtimes.
void burn_ns(std::uint64_t ns) {
  if (ns == 0) return;
  const std::uint64_t until = support::monotonic_ns() + ns;
  while (support::monotonic_ns() < until) support::cpu_pause();
}

struct Engine {
  stf::ImageRange range;  // cheap view; the backing FlowImage outlives us
  const Config& cfg;
  std::deque<TaskNode>& nodes;  // arena-backed, reset for this run
  std::deque<ReadyQueue> queues;  // 1 (central) or num_workers (locality)
  // Wait-free central queue (ready_ring.hpp), engaged for queue == kRing in
  // the central fifo/lifo modes. A ring pop is FIFO regardless of the lifo
  // flag — OoO correctness is order-independent, so kLifo + kRing degrades
  // to FIFO order (documented in docs/perf.md).
  std::optional<ReadyRing> ring;
  std::atomic<std::uint64_t> completed{0};
  std::atomic<bool> done{false};
  std::atomic<std::uint64_t> seq{0};
  std::atomic<std::uint64_t> sync_stamp{0};
  stf::AccessGuard guard;
  // First failure wins; after cancellation remaining bodies are skipped
  // while completion bookkeeping continues, so the run drains cleanly.
  std::atomic<bool> cancelled{false};
  // Set only by a firing watchdog: makes injected stalls give up and lets
  // the run tear down with completed < n.
  std::atomic<bool> aborted{false};
  std::exception_ptr first_error;
  std::mutex error_mu;
  stf::DeathBoard deaths;  // crash blotter; observed by the tripwire
  bool watched = false;    // effective (crash-armed forces a watchdog)

  void record_failure(std::exception_ptr error) {
    std::lock_guard lock(error_mu);
    if (!first_error) first_error = std::move(error);
    cancelled.store(true, std::memory_order_release);
  }
  // Per-data exclusivity locks for commuting reductions: the dependency
  // scanner puts NO edges between members of a reduction run, so the OoO
  // workers may pick them in any order — but one at a time per object.
  std::vector<support::AlignedAtomic<std::uint32_t>>& reduction_locks;

  Engine(const stf::ImageRange& r, const Config& c, Runtime::NodeArena& arena)
      : range(r),
        cfg(c),
        nodes(arena.nodes),
        reduction_locks(arena.reduction_locks) {
    const std::size_t n = r.size();
    while (nodes.size() < n) nodes.emplace_back();
    for (std::size_t i = 0; i < n; ++i) {
      nodes[i].remaining.store(1, std::memory_order_relaxed);
      nodes[i].finished = false;
      nodes[i].successors.clear();
      nodes[i].dispatcher = obs::kNoTask;
    }
    const std::size_t nd = r.num_data();
    if (reduction_locks.size() < nd) {
      reduction_locks =
          std::vector<support::AlignedAtomic<std::uint32_t>>(nd);
    } else {
      for (std::size_t d = 0; d < nd; ++d)
        reduction_locks[d].value.store(0, std::memory_order_relaxed);
    }
    if (c.queue == QueueKind::kRing &&
        (c.scheduler == SchedulerKind::kFifo ||
         c.scheduler == SchedulerKind::kLifo)) {
      ring.emplace(std::max<std::size_t>(n, 1),
                   [](std::atomic<std::uint64_t>& w, std::uint64_t v) {
                     w.store(v, std::memory_order_relaxed);
                   });
    } else {
      const std::size_t nq =
          c.scheduler == SchedulerKind::kLocality ? c.num_workers : 1;
      const bool prioritized = c.scheduler == SchedulerKind::kPriority;
      for (std::size_t q = 0; q < nq; ++q) queues.emplace_back(prioritized);
    }
    if (cfg.enable_guard) guard.enable(r.num_data());
  }

  /// Watchdog abort flag for ring pops (nullptr when unwatched, so the
  /// block policy may park; see pop_blocking's degradation contract).
  [[nodiscard]] const std::atomic<bool>* pop_abort() const noexcept {
    return watched ? &aborted : nullptr;
  }

  void close_queues() {
    if (ring) ring->close(cfg.wait_policy);
    for (auto& q : queues) q.close();
  }

  /// Acquires the reduction locks of `task` in ascending data order (no
  /// deadlock) and returns the locked ids; no-op for reduction-free tasks.
  void lock_reductions(const stf::Task& task,
                       std::vector<stf::DataId>& locked) {
    locked.clear();
    for (const stf::Access& a : task.accesses)
      if (is_reduction(a.mode)) locked.push_back(a.data);
    std::sort(locked.begin(), locked.end());
    for (stf::DataId d : locked) {
      auto& word = reduction_locks[d].value;
      std::uint32_t expected = 0;
      while (!word.compare_exchange_weak(expected, 1,
                                         std::memory_order_acquire,
                                         std::memory_order_relaxed)) {
        expected = 0;
        std::this_thread::yield();
      }
    }
  }

  void unlock_reductions(const std::vector<stf::DataId>& locked) {
    for (auto it = locked.rbegin(); it != locked.rend(); ++it)
      reduction_locks[*it].value.store(0, std::memory_order_release);
  }

  /// Deterministic home queue of a task in locality mode: follow the first
  /// data object the task touches, so tasks sharing data land on the same
  /// worker; round-robin for data-less tasks.
  [[nodiscard]] std::size_t home_queue(std::size_t li) const {
    if (queues.size() == 1) return 0;
    if (range.num_accesses(li) == 0) return li % queues.size();
    return range.acc_begin(li)->data % queues.size();
  }

  /// Returns true when the push actually woke a parked/blocked consumer
  /// (a syscall was issued) — the kWakeupsIssued / kWakeupsElided feed.
  bool dispatch(std::size_t li) {
    if (ring) return ring->push(li, cfg.wait_policy);
    return queues[home_queue(li)].push(li,
                                       cfg.scheduler == SchedulerKind::kLifo,
                                       range.priority(li));
  }

  struct DispatchTally {
    std::size_t dispatched = 0;  ///< successors made ready (queue pushes)
    std::size_t woke = 0;        ///< of those, pushes that issued a wake
  };

  /// Worker-side completion: mark finished, release registered successors.
  DispatchTally complete(std::size_t li) {
    std::vector<std::size_t> succs;
    {
      std::lock_guard lock(nodes[li].mu);
      nodes[li].finished = true;
      succs.swap(nodes[li].successors);
    }
    DispatchTally tally;
    for (std::size_t s : succs) {
      if (dep_release(nodes[s].remaining)) {
        nodes[s].dispatcher = static_cast<std::uint64_t>(range.task(li).id);
        if (dispatch(s)) ++tally.woke;
        ++tally.dispatched;
      }
    }
    if (completed.fetch_add(1, std::memory_order_acq_rel) + 1 ==
        range.size()) {
      done.store(true, std::memory_order_release);
      close_queues();
    }
    return tally;
  }

  /// Pops the next task for worker w, stealing if configured. Returns
  /// nullopt when the range is fully executed; `stole` reports whether the
  /// pop came from another worker's queue (the kSteal phase).
  std::optional<stf::TaskId> next_task(std::uint32_t w, bool& stole,
                                       std::uint64_t* spins) {
    stole = false;
    if (ring) return ring->pop_blocking(cfg.wait_policy, pop_abort(), spins);
    if (queues.size() == 1) return queues[0].pop();
    // Locality mode: own queue first, then (optionally) steal, then block
    // briefly on the own queue again.
    for (;;) {
      if (auto t = queues[w].try_pop()) return t;
      if (cfg.work_stealing) {
        for (std::size_t off = 1; off < queues.size(); ++off) {
          if (auto t = queues[(w + off) % queues.size()].try_steal()) {
            stole = true;
            return t;
          }
        }
      }
      if (done.load(std::memory_order_acquire)) {
        // Drain one last time: a final dispatch may have raced `done`.
        if (auto t = queues[w].try_pop()) return t;
        if (cfg.work_stealing) {
          for (std::size_t off = 1; off < queues.size(); ++off) {
            if (auto t = queues[(w + off) % queues.size()].try_steal()) {
              stole = true;
              return t;
            }
          }
        }
        return std::nullopt;
      }
      std::this_thread::yield();
    }
  }
};

}  // namespace

Runtime::Runtime(Config cfg)
    : cfg_(cfg), arena_(std::make_unique<NodeArena>()) {
  RIO_ASSERT_MSG(cfg_.num_workers > 0, "need at least one worker");
}

Runtime::~Runtime() = default;

support::RunStats Runtime::run(const stf::TaskFlow& flow) {
  const stf::FlowImage image = stf::FlowImage::compile(flow);
  return run(stf::ImageRange(image));
}

support::RunStats Runtime::run(const stf::FlowRange& range) {
  const stf::FlowImage image = stf::FlowImage::compile(range);
  return run(stf::ImageRange(image));
}

support::RunStats Runtime::run(const stf::FlowImage& image) {
  return run(stf::ImageRange(image));
}

support::RunStats Runtime::run(const stf::ImageRange& range) {
  Engine eng(range, cfg_, *arena_);
  const std::uint32_t p = cfg_.num_workers;
  const std::size_t n = range.size();

  support::RunStats stats;
  stats.workers.resize(p + 1);  // + master
  std::vector<std::vector<stf::TraceEvent>> traces(p);
  std::vector<std::vector<stf::SyncEvent>> syncs(p);
  std::vector<std::uint64_t> worker_wall(p, 0);

  // Crash-armed plans force a watchdog (same contract as rt::launch): a
  // worker death must escalate as stf::WorkerLost, never hang the run.
  const bool crash_armed =
      cfg_.fault != nullptr && cfg_.fault->plan().crash_armed();
  const std::uint64_t watchdog_ns =
      cfg_.watchdog_ns > 0 ? cfg_.watchdog_ns
                           : (crash_armed ? 100'000'000ULL : 0);
  const bool watched = watchdog_ns > 0;
  eng.watched = watched;
  std::vector<support::WorkerProbe> probes(watched ? p : 0);
  stf::ResilienceOpts res_proto;
  res_proto.retry = cfg_.retry;
  res_proto.fault = cfg_.fault;
  res_proto.abort = watched ? &eng.aborted : nullptr;
  const bool resilient = res_proto.active();

  // Telemetry lenses: worker slots 0..p-1 plus the master at slot p.
  if (cfg_.obs != nullptr) cfg_.obs->ensure_workers(p + 1);
  std::vector<obs::WorkerObs> obses(p + 1);
  for (std::uint32_t w = 0; w <= p; ++w) obses[w].bind(cfg_.obs, w);

  std::barrier start(static_cast<std::ptrdiff_t>(p) + 1);

  // Worker role (pool/thread indices 0..p-1).
  const std::uint32_t cpus = support::detect_topology().logical_cpus;
  const auto worker_body = [&](std::uint32_t w) {
      if (cfg_.pin_workers) support::pin_current_thread(w % cpus);
      support::WorkerStats& st = stats.workers[w];
      std::vector<stf::DataId> locked_reductions;
      support::WorkerProbe* probe = watched ? &probes[w] : nullptr;
      stf::ResilienceOpts res = res_proto;  // worker-private copy
      stf::DataSnapshot snapshot;
      std::uint32_t checkpoint_pending = 0;
      obs::WorkerObs& ob = obses[w];
      res.obs = &ob;
      const bool timed =
          cfg_.collect_stats || cfg_.collect_trace || ob.recording();
      start.arrive_and_wait();
      const std::uint64_t begin = support::monotonic_ns();
      for (;;) {
        std::uint64_t idle0 = 0;
        if (timed) idle0 = support::monotonic_ns();
        if (probe != nullptr) probe->set_state(support::ProbeState::kWaiting);
        bool stole = false;
        auto li = eng.next_task(w, stole, &ob.spin_iters);
        if (timed) {
          // Every pop — including the final empty one — is wait time; a
          // successful steal is attributed to the kSteal phase instead.
          // A popped task's queue-wait cause is its dispatcher: the
          // predecessor whose complete() made it ready (kNoTask when the
          // master dispatched it or the queue closed empty).
          const std::uint64_t id =
              li ? static_cast<std::uint64_t>(range.task(*li).id) : obs::kNoTask;
          const std::uint64_t cause =
              li ? obs::make_cause(eng.nodes[*li].dispatcher) : obs::kNoCause;
          ob.span(stole ? obs::Phase::kSteal : obs::Phase::kAcquireWait, id,
                  idle0, support::monotonic_ns(), cause);
        }
        if (cfg_.collect_stats) ++st.waits;
        if (!li) break;
        ob.count(obs::Counter::kQueuePops);
        if (stole) ob.count(obs::Counter::kSteals);

        const stf::Task& task = range.task(*li);
        if (probe != nullptr) {
          probe->task.store(task.id, std::memory_order_relaxed);
          probe->set_state(support::ProbeState::kExecuting);
        }
        eng.lock_reductions(task, locked_reductions);
        // Acquire stamps are drawn after the pop (every predecessor already
        // published its releases) and after the reduction locks are held.
        if (cfg_.collect_sync) {
          for (const stf::Access& a : task.accesses)
            syncs[w].push_back(
                {task.id, w, a.data, a.mode, stf::SyncKind::kAcquire,
                 eng.sync_stamp.fetch_add(1, std::memory_order_acq_rel)});
        }
        if (cfg_.enable_guard)
          for (const stf::Access& a : task.accesses) eng.guard.acquire(a);
        // Resume replay: the task completed in a previous attempt — keep
        // the dependency bookkeeping (complete() below) but skip the body,
        // fault injection and checkpoint mark.
        const bool replay =
            cfg_.resume != nullptr && cfg_.resume->done(task.id);
        bool body_ok = !replay;
        bool crashed = false;
        std::uint64_t t0 = 0, t1 = 0;
        if (timed) t0 = support::monotonic_ns();
        if (replay) {
          ob.count(obs::Counter::kTasksReplayed);
        } else if (resilient) {
          if (!eng.cancelled.load(std::memory_order_acquire)) {
            // Rollback is race-free here: the task holds exclusive protocol
            // ownership of its written data between the pop and complete().
            stf::BodyResult r =
                stf::execute_body(task, range.registry(), w, res, snapshot);
            if (r.crashed) {
              crashed = true;
            } else if (!r.ok) {
              body_ok = false;
              eng.record_failure(std::move(r.error));
            }
          } else {
            body_ok = false;
          }
        } else if (task.fn && !eng.cancelled.load(std::memory_order_acquire)) {
          stf::TaskContext ctx(task, range.registry(), w);
          try {
            task.fn(ctx);
          } catch (...) {
            body_ok = false;
            eng.record_failure(std::current_exception());
          }
        } else if (eng.cancelled.load(std::memory_order_acquire)) {
          body_ok = false;
        }
        if (timed) {
          t1 = support::monotonic_ns();
          ob.span(obs::Phase::kBody, task.id, t0, t1);
        }
        if (cfg_.enable_guard)
          for (const stf::Access& a : task.accesses) eng.guard.release(a);

        if (crashed) {
          // Permanent worker death: release the reduction locks (a peer
          // spinning on one has no abort path), record the dirty spans, and
          // never call complete() — the task's successors stay blocked
          // until the tripwire aborts the run.
          eng.unlock_reductions(locked_reductions);
          stf::DeathRecord d;
          d.worker = w;
          d.task = task.id;
          d.dirty = std::move(snapshot);
          eng.deaths.record(std::move(d));
          break;
        }

        // Checkpoint mark: after the body succeeded, before complete()
        // publishes the task to its successors.
        if (cfg_.checkpoint != nullptr && body_ok) {
          cfg_.checkpoint->mark(task.id);
          cfg_.checkpoint->note_completion(checkpoint_pending);
        }
        // Release stamps precede both the reduction unlock and complete(),
        // the two publications that can admit a successor.
        if (cfg_.collect_sync) {
          for (const stf::Access& a : task.accesses)
            syncs[w].push_back(
                {task.id, w, a.data, a.mode, stf::SyncKind::kRelease,
                 eng.sync_stamp.fetch_add(1, std::memory_order_acq_rel)});
        }
        eng.unlock_reductions(locked_reductions);
        if (cfg_.collect_trace)
          traces[w].push_back(
              {task.id, w, t0, t1,
               eng.seq.fetch_add(1, std::memory_order_relaxed)});
        const Engine::DispatchTally tally = eng.complete(*li);
        if (timed)
          ob.span(obs::Phase::kRelease, task.id, t1, support::monotonic_ns());
        if (tally.dispatched > 0) {
          ob.count(obs::Counter::kQueuePushes, tally.dispatched);
          ob.count(obs::Counter::kWakeups, tally.dispatched);
          ob.count(obs::Counter::kWakeupsIssued, tally.woke);
          ob.count(obs::Counter::kWakeupsElided, tally.dispatched - tally.woke);
        }
        ob.count(obs::Counter::kTasksExecuted);
        if (probe != nullptr)
          probe->progress.fetch_add(1, std::memory_order_relaxed);
        if (cfg_.collect_stats) ++st.tasks_executed;
      }
      if (probe != nullptr) probe->set_state(support::ProbeState::kDone);
      worker_wall[w] = support::monotonic_ns() - begin;
  };

  // ---- master role (pool/thread index p): unroll + dispatch --------------
  std::uint64_t master_begin = 0, master_unroll_end = 0;
  const auto master_body = [&] {
    if (cfg_.pin_workers) support::pin_current_thread(p % cpus);
    obs::WorkerObs& ob = obses[p];
    std::uint64_t master_dispatches = 0;
    std::uint64_t master_wakes = 0;
    start.arrive_and_wait();
    master_begin = support::monotonic_ns();
    {
    // Incremental dependency discovery through the shared scanner — the
    // same rules as DependencyGraph, paid one task at a time (cost model
    // (1)'s serialized management work). Ids are range-local indices.
    stf::DependencyScanner scanner(range.num_data());
    std::vector<stf::TaskId> preds;

    for (std::size_t li = 0; li < n; ++li) {
      // Flat-array scan: the master never touches a Task record while
      // unrolling — only the image's dense access spans.
      scanner.next(range.acc_begin(li), range.acc_end(li), li, preds);

      for (std::size_t prev : preds) {
        std::lock_guard lock(eng.nodes[prev].mu);
        if (!eng.nodes[prev].finished) {
          eng.nodes[prev].successors.push_back(li);
          dep_retain(eng.nodes[li].remaining);
        }
      }
      burn_ns(cfg_.master_overhead_ns);
      // Drop the discovery guard; dispatch if all predecessors done.
      if (dep_release(eng.nodes[li].remaining)) {
        if (eng.dispatch(li)) ++master_wakes;
        ++master_dispatches;
      }
    }
    }
    if (n == 0) {
      // Nothing will ever complete: release the workers directly.
      eng.done.store(true, std::memory_order_release);
      eng.close_queues();
    }
    master_unroll_end = support::monotonic_ns();
    // The whole unroll is one management span on the master's track.
    if (cfg_.collect_stats || cfg_.collect_trace || ob.recording())
      ob.span(obs::Phase::kMgmt, obs::kNoTask, master_begin,
              master_unroll_end);
    if (master_dispatches > 0) {
      ob.count(obs::Counter::kQueuePushes, master_dispatches);
      ob.count(obs::Counter::kWakeups, master_dispatches);
      ob.count(obs::Counter::kWakeupsIssued, master_wakes);
      ob.count(obs::Counter::kWakeupsElided,
               master_dispatches - master_wakes);
    }
  };

  // Progress watchdog: global completion count frozen for the whole window
  // with tasks outstanding means the run is stuck (a worker wedged in a
  // stalled body, or a lost dispatch). Capture the diagnostic first, then
  // cancel + abort + release every queue so the workers drain and exit.
  std::optional<support::Watchdog> watchdog;
  if (watched) {
    watchdog.emplace(
        watchdog_ns,
        [&eng, hub = cfg_.obs]() noexcept {
          if (hub != nullptr)
            hub->global_counters().add(obs::Counter::kWatchdogProbes);
          return eng.completed.load(std::memory_order_relaxed);
        },
        [&] {
          if (cfg_.obs != nullptr) {
            const std::uint64_t now = support::monotonic_ns();
            for (std::uint32_t w = 0; w < p; ++w)
              cfg_.obs->instant(
                  {now, now, probes[w].task.load(std::memory_order_relaxed), w,
                   obs::Phase::kStallSnapshot});
          }
          std::ostringstream os;
          os << "coor: no progress for "
             << static_cast<double>(watchdog_ns) / 1e6 << " ms\n"
             << "  completed " << eng.completed.load(std::memory_order_relaxed)
             << " of " << n << " tasks\n";
          if (eng.ring)
            os << "  ring: depth=" << eng.ring->size() << "\n";
          for (std::size_t q = 0; q < eng.queues.size(); ++q)
            os << "  queue " << q << ": depth=" << eng.queues[q].size() << "\n";
          for (std::uint32_t w = 0; w < p; ++w) {
            const support::WorkerProbe& pr = probes[w];
            const support::ProbeState ps = pr.get_state();
            os << "  worker " << w << ": " << support::to_string(ps)
               << ", executed=" << pr.progress.load(std::memory_order_relaxed);
            if (ps == support::ProbeState::kExecuting)
              os << ", task=" << pr.task.load(std::memory_order_relaxed);
            os << "\n";
          }
          return os.str();
        },
        [&eng] {
          eng.cancelled.store(true, std::memory_order_release);
          eng.aborted.store(true, std::memory_order_release);
          eng.done.store(true, std::memory_order_release);
          eng.close_queues();
        },
        crash_armed ? std::function<bool()>([&eng] {
          return eng.deaths.any_death();
        })
                    : std::function<bool()>());
  }

  const std::uint64_t run_begin = support::monotonic_ns();
  support::run_parallel(pool_, p + 1, [&](std::uint32_t w) {
    if (w < p)
      worker_body(w);
    else
      master_body();
  });
  const std::uint64_t run_end = support::monotonic_ns();
  stats.wall_ns = run_end - run_begin;
  if (watchdog) watchdog->stop();

  if (cfg_.collect_stats) {
    // Worker buckets derived from the obs phase accumulators.
    for (std::uint32_t w = 0; w < p; ++w)
      stats.workers[w].buckets = obses[w].buckets(worker_wall[w]);
    // The master executes no tasks: its unrolling time (the kMgmt span) is
    // pure runtime management, the tail spent waiting for workers is idle.
    auto& mb = stats.workers[p].buckets;
    mb.runtime_ns = master_unroll_end - master_begin;
    mb.idle_ns = run_end > master_unroll_end ? run_end - master_unroll_end : 0;
  }
  for (std::uint32_t w = 0; w <= p; ++w) obses[w].commit(cfg_.obs);

  trace_.clear();
  if (cfg_.collect_trace) {
    trace_.reserve(n);
    for (auto& tr : traces)
      for (const auto& ev : tr) trace_.record(ev);
  }
  sync_trace_.clear();
  if (cfg_.collect_sync) {
    for (auto& sy : syncs)
      for (const auto& ev : sy) sync_trace_.record(ev);
  }
  // Worker loss outranks a stall outranks a task failure.
  if (eng.deaths.any_death())
    throw stf::WorkerLost(eng.deaths.take(), watchdog && watchdog->fired()
                                                 ? watchdog->diagnostic()
                                                 : std::string());
  if (watchdog && watchdog->fired())
    throw stf::StallError(watchdog->diagnostic());
  // Only an aborted run may finish with completed < n.
  RIO_ASSERT(eng.completed.load() == n);
  if (eng.first_error) std::rethrow_exception(eng.first_error);
  return stats;
}

}  // namespace rio::coor
