// Ready-task queues for the centralized OoO runtime.
//
// The central queue is deliberately a mutex + condition-variable protected
// deque: the serialization it causes under fine-grained load is not an
// implementation accident but the phenomenon the paper attributes to
// centralized execution models (Section 3.3, cost model (1)). A per-worker
// variant with stealing implements the locality scheduler ablation. The
// wait-free alternative for central fifo/lifo modes lives in
// ready_ring.hpp and is selected with the engine::Launch queue knob.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <queue>

#include "stf/types.hpp"

namespace rio::coor {

/// How the scheduler orders ready tasks.
enum class SchedulerKind : std::uint8_t {
  kFifo,      ///< central queue, submission order among ready tasks
  kLifo,      ///< central stack, depth-first (cache-hot) order
  kLocality,  ///< per-worker queues keyed by written-data affinity
  kPriority,  ///< central queue ordered by Task::priority (e.g. bottom
              ///< levels — critical-path list scheduling)
};

constexpr const char* to_string(SchedulerKind k) noexcept {
  switch (k) {
    case SchedulerKind::kFifo: return "fifo";
    case SchedulerKind::kLifo: return "lifo";
    case SchedulerKind::kLocality: return "locality";
    case SchedulerKind::kPriority: return "priority";
  }
  return "?";
}

/// Blocking MPMC queue of ready task ids. In prioritized mode pops return
/// the highest-priority entry (FIFO among equals) instead of queue order.
class ReadyQueue {
 public:
  explicit ReadyQueue(bool prioritized = false) : prioritized_(prioritized) {}

  /// Returns true when a waiter was actually notified. The syscall is
  /// skipped when nobody is parked: `waiters_` is maintained under `mu_`,
  /// so a consumer that is about to wait either (a) incremented it before
  /// we took the lock — we see it and notify — or (b) takes the lock after
  /// us, sees the pushed item, and never blocks.
  bool push(stf::TaskId t, bool lifo = false, std::int32_t priority = 0) {
    bool wake = false;
    {
      std::lock_guard lock(mu_);
      if (prioritized_) {
        heap_.push({priority, next_seq_++, t});
      } else if (lifo) {
        items_.push_front(t);
      } else {
        items_.push_back(t);
      }
      wake = waiters_ > 0;
    }
    if (wake) cv_.notify_one();
    return wake;
  }

  /// Pops the next task; blocks while the queue is open and empty.
  /// Returns nullopt once closed and drained.
  std::optional<stf::TaskId> pop() {
    std::unique_lock lock(mu_);
    ++waiters_;
    cv_.wait(lock, [&] { return !empty_locked() || closed_; });
    --waiters_;
    return take_locked();
  }

  /// Non-blocking pop from the back — used by work stealing so thieves and
  /// the owner touch opposite ends (prioritized queues have no "back":
  /// thieves get the best entry like everyone else).
  std::optional<stf::TaskId> try_steal() {
    std::lock_guard lock(mu_);
    if (prioritized_) return take_locked();
    if (items_.empty()) return std::nullopt;
    const stf::TaskId t = items_.back();
    items_.pop_back();
    return t;
  }

  /// Non-blocking pop from the front.
  std::optional<stf::TaskId> try_pop() {
    std::lock_guard lock(mu_);
    return take_locked();
  }

  /// Marks the stream complete; blocked and future pops drain then return
  /// nullopt.
  void close() {
    {
      std::lock_guard lock(mu_);
      closed_ = true;
    }
    cv_.notify_all();
  }

  [[nodiscard]] std::size_t size() const {
    std::lock_guard lock(mu_);
    return prioritized_ ? heap_.size() : items_.size();
  }

 private:
  struct Entry {
    std::int32_t priority;
    std::uint64_t seq;  // FIFO tie-break (smaller first)
    stf::TaskId task;
    bool operator<(const Entry& o) const noexcept {
      // std::priority_queue is a max-heap: higher priority wins, then
      // LOWER sequence number (so invert the seq comparison).
      if (priority != o.priority) return priority < o.priority;
      return seq > o.seq;
    }
  };

  [[nodiscard]] bool empty_locked() const {
    return prioritized_ ? heap_.empty() : items_.empty();
  }

  std::optional<stf::TaskId> take_locked() {
    if (prioritized_) {
      if (heap_.empty()) return std::nullopt;
      const stf::TaskId t = heap_.top().task;
      heap_.pop();
      return t;
    }
    if (items_.empty()) return std::nullopt;
    const stf::TaskId t = items_.front();
    items_.pop_front();
    return t;
  }

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<stf::TaskId> items_;
  std::priority_queue<Entry> heap_;
  std::uint64_t next_seq_ = 0;
  std::uint32_t waiters_ = 0;  // guarded by mu_
  bool prioritized_ = false;
  bool closed_ = false;
};

}  // namespace rio::coor
