// COOR — a centralized out-of-order STF runtime (the baseline model).
//
// This is the execution model of Figure 1, the one StarPU and its peers use
// within a shared-memory node: a MASTER thread unrolls the task flow,
// derives dependencies from access modes, and dispatches tasks whose
// dependencies are resolved to a pool of WORKER threads. Ready tasks can be
// executed in any order (out-of-order), which buys scheduling freedom at
// the price of:
//
//   * per-task bookkeeping allocated for the whole flow (space linear in
//     the number of tasks — Section 3.1);
//   * a serialization point at the master/queue (cost model (1), the
//     bottleneck that collapses pipelining efficiency for fine tasks);
//   * one thread that executes no tasks, capping runtime efficiency at
//     (p-1)/p (Section 5.2).
//
// The implementation is intentionally lean — it under-estimates StarPU's
// per-task cost, so wherever COOR shows a centralized bottleneck, StarPU's
// would be at least as severe. An optional artificial per-task master
// overhead knob lets benches calibrate it against published StarPU costs.
#pragma once

#include <cstdint>

#include <memory>

#include "support/fault.hpp"
#include "support/stats.hpp"
#include "support/thread_pool.hpp"
#include "support/wait.hpp"
#include "coor/ready_queue.hpp"
#include "coor/ready_ring.hpp"
#include "stf/flow_image.hpp"
#include "stf/flow_range.hpp"
#include "stf/frontier.hpp"
#include "stf/task_flow.hpp"
#include "stf/trace.hpp"

namespace rio::obs {
class Hub;
}

namespace rio::coor {

struct Config {
  std::uint32_t num_workers = 2;  ///< task-executing threads (master extra)
  SchedulerKind scheduler = SchedulerKind::kFifo;
  QueueKind queue = QueueKind::kLocked;  ///< central ready-queue impl;
                                         ///< kRing applies to fifo/lifo
                                         ///< only (locked fallback else)
  support::WaitPolicy wait_policy = support::WaitPolicy::kSpinYield;
  ///< how ring consumers wait when idle (ignored by the locked queue,
  ///< whose condvar always blocks)
  bool work_stealing = false;     ///< locality mode: steal from siblings
  std::uint64_t master_overhead_ns = 0;  ///< artificial per-task master cost
                                         ///< (0 = just our real cost)
  bool collect_stats = true;
  bool collect_trace = false;
  bool collect_sync = false;  ///< record acquire/release sync events for
                              ///< the happens-before checker (src/analysis)
  bool enable_guard = false;
  bool pin_workers = false;  ///< pin workers (and master) to logical CPUs

  // Resilience (docs/robustness.md). All default-off: the fast path is
  // byte-identical to the pre-resilience runtime.
  support::RetryPolicy retry;  ///< max_attempts > 1 enables retry+rollback
  support::FaultInjector* fault = nullptr;  ///< deterministic fault
                                            ///< injection (not owned)
  std::uint64_t watchdog_ns = 0;  ///< > 0: monitor thread fails the run
                                  ///< with stf::StallError after this
                                  ///< no-progress window instead of hanging

  // Recovery (docs/robustness.md "worker loss"): same contract as
  // rt::Config — `resume` replays frontier-done tasks as completions
  // without re-running bodies, `checkpoint` is the live done bitmap.
  const stf::Frontier* resume = nullptr;
  stf::CompletionBoard* checkpoint = nullptr;

  obs::Hub* obs = nullptr;  ///< telemetry hub (docs/observability.md); not
                            ///< owned. Worker slots 0..p-1, master slot p.
};

class Runtime {
 public:
  explicit Runtime(Config cfg);
  ~Runtime();
  Runtime(const Runtime&) = delete;
  Runtime& operator=(const Runtime&) = delete;

  /// Runs `flow` to completion. The calling thread becomes the master;
  /// stats.workers holds num_workers entries followed by one entry for the
  /// master (whose time is management/idle only, never task time).
  /// Internally compiles a throwaway FlowImage — callers that run the same
  /// flow repeatedly should compile once and use the image overloads.
  support::RunStats run(const stf::TaskFlow& flow);

  /// Range variant for hybrid phase execution: all tasks preceding the
  /// range must already be complete (dependencies are derived within the
  /// range only).
  support::RunStats run(const stf::FlowRange& range);

  /// Fast replay from a compiled image: the master's incremental unroll and
  /// the locality router walk the image's flat metadata (stf/flow_image.hpp)
  /// instead of Task records. Compile once, run many times.
  support::RunStats run(const stf::FlowImage& image);

  /// Image-slice variant (hybrid phase execution).
  support::RunStats run(const stf::ImageRange& range);

  [[nodiscard]] const stf::Trace& trace() const noexcept { return trace_; }

  /// Synchronization events of the last run (empty unless cfg.collect_sync).
  [[nodiscard]] const stf::SyncTrace& sync_trace() const noexcept {
    return sync_trace_;
  }

  [[nodiscard]] const Config& config() const noexcept { return cfg_; }

  /// Uses `pool` (>= num_workers + 1 threads: workers + master) for
  /// subsequent runs instead of spawning threads per run.
  void attach_pool(support::ThreadPool* pool) noexcept { pool_ = pool; }

  // Recycled per-run task-node pool + reduction-lock array (pimpl: the node
  // type is internal to runtime.cpp, which defines and uses the struct).
  // Repeated runs on the same Runtime reuse the arena instead of
  // reallocating linear-in-tasks bookkeeping.
  struct NodeArena;

 private:
  Config cfg_;
  stf::Trace trace_;
  stf::SyncTrace sync_trace_;
  support::ThreadPool* pool_ = nullptr;
  std::unique_ptr<NodeArena> arena_;
};

}  // namespace rio::coor
