// COOR's dependency-counter protocol, expressed through the proto:: seam.
//
// A task node carries one counter: the number of unresolved predecessor
// edges plus a discovery guard the master holds while it registers edges.
// Three operations touch it concurrently (master registering edges and
// dropping the guard, workers completing predecessors), and a task becomes
// ready exactly when the counter hits zero — the decentralized analogue of
// a dependency-graph runtime's "release" step.
//
// Like the Algorithm 2 routines in src/rio/data_object.hpp, these are
// templates over the counter type: production code instantiates them with
// std::atomic<int32_t> (proto:: inlines to the raw acq_rel RMWs used
// before the seam), and mc::impl instantiates them with its instrumented
// Word<int32_t> to model-check the same functions. The ready QUEUE itself
// (mutex + condition variable, src/coor/ready_queue.hpp) is not a word
// protocol; mc::impl models it at scheduler level (docs/protocol.md).
#pragma once

#include <cstdint>

#include "rio/proto.hpp"

namespace rio::coor {

/// dep_retain: register one more unresolved predecessor edge (master only,
/// always while the counter is still > 0 thanks to the discovery guard).
template <typename Counter>
inline void dep_retain(Counter& remaining) {
  using proto::fetch_add;
  fetch_add(remaining, std::int32_t{1});
}

/// dep_release: drop one predecessor edge — or the discovery guard.
/// Returns true when this release was the last one, i.e. the task just
/// became ready and the caller must dispatch it (exactly once: the acq_rel
/// RMW makes one releaser observe the 1 -> 0 transition).
template <typename Counter>
[[nodiscard]] inline bool dep_release(Counter& remaining) {
  using proto::fetch_add;
  return fetch_add(remaining, std::int32_t{-1}) == 1;
}

}  // namespace rio::coor
