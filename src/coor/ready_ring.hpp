// Bounded wait-free MPMC ready ring for the centralized OoO runtime.
//
// The locked ReadyQueue (ready_queue.hpp) is the paper's cost-model-(1)
// bottleneck made concrete: every dispatch serializes on one mutex and —
// before PR 7 — paid one condvar notify per push. This ring replaces it for
// the central FIFO/LIFO modes with the classic bounded MPMC design
// (per-slot sequence words + CAS-claimed cursors, à la Vyukov): producers
// claim a slot by CAS on `tail_`, publish the value with a release store of
// the slot's sequence word, and consumers claim by CAS on `head_`. The
// capacity is sized to the total task count (a task id is enqueued at most
// once per run), so the ring never wraps and "full" is unreachable; pushes
// are therefore wait-free apart from the CAS claim, and pops are lock-free.
//
// Idle consumers wait on a separate *doorbell pair*:
//   * `version_` — bumped (fetch_add, release RMW) by every push and by
//     close(). Consumers sample it before a failed pop and park until it
//     moves (proto::wait_changed). Because only producers bump it, the
//     parked-on word changes a finite number of times — which keeps the
//     model checker's state space finite and makes the futex protocol
//     obviously live.
//   * `waiters_` — count of consumers currently registered to park. Under
//     kBlock a producer probes it (fetch_add of 0 — an RMW on purpose, see
//     below) after bumping `version_` and only issues the futex wake when
//     it is non-zero: the syscall is elided whenever nobody sleeps.
//
// Missed-wakeup argument (the Dekker pattern): the consumer registers on
// `waiters_` (RMW) and then parks only if `version_` still equals its
// sample; the producer bumps `version_` (RMW) and then probes `waiters_`
// (RMW). Both sides' first op is a read-modify-write, so on every target
// architecture the second op observes the other side's first op whenever
// the probe misses the registration — a pure load probe would not give
// that guarantee under store->load reordering. The model checker explores
// this interleaving space directly (kBlock parks are futex-faithful) and
// the drop_notify shim demonstrates the wake is load-bearing.
//
// Every shared word is accessed through the proto:: seam (unqualified
// calls resolved by ADL), so mc::impl can substitute its instrumented
// Word<T> and model-check this exact code. The word type is a template
// parameter for that reason; the `Init` constructor functor lets the
// checker bind each word to its controlled-scheduler table.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "rio/proto.hpp"
#include "support/align.hpp"
#include "support/wait.hpp"

namespace rio::coor {

/// Which ready-queue implementation the engine uses for central modes.
enum class QueueKind : std::uint8_t {
  kLocked,  ///< mutex + condvar deque (ready_queue.hpp) — all schedulers
  kRing,    ///< wait-free MPMC ring — central fifo/lifo only; the engine
            ///< falls back to kLocked for kPriority/kLocality
};

constexpr const char* to_string(QueueKind k) noexcept {
  switch (k) {
    case QueueKind::kLocked: return "locked";
    case QueueKind::kRing: return "ring";
  }
  return "?";
}

/// The structured "ring sized too small" error: the capacity contract
/// (>= total pushes over the ring's lifetime) was violated and a push was
/// about to wrap a full lap onto an unconsumed slot. Carries the sizing
/// facts the caller needs to fix the launch; throwing beats the silent
/// value loss (or livelock) the wrap would otherwise degenerate to.
class RingOverflow : public std::logic_error {
 public:
  RingOverflow(std::size_t capacity, std::uint64_t position,
               std::uint64_t high_watermark)
      : std::logic_error(
            "ready ring overflow: push position " + std::to_string(position) +
            " wraps capacity " + std::to_string(capacity) +
            " (high watermark " + std::to_string(high_watermark) +
            "); size the ring to the total task count"),
        capacity_(capacity),
        high_watermark_(high_watermark) {}

  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] std::uint64_t high_watermark() const noexcept {
    return high_watermark_;
  }

 private:
  std::size_t capacity_;
  std::uint64_t high_watermark_;
};

/// Bounded MPMC ring of task ids. `Word64` is std::atomic<std::uint64_t>
/// in production and mc::impl::Word<std::uint64_t> under the checker.
template <typename Word64>
class ReadyRingT {
 public:
  /// `capacity` must be >= the total number of pushes over the ring's
  /// lifetime (task count); it is rounded up to a power of two. `init`
  /// is called as init(word, initial_value) for every shared word.
  template <typename Init>
  ReadyRingT(std::size_t capacity, Init&& init) {
    std::size_t cap = 1;
    while (cap < capacity) cap <<= 1;
    mask_ = cap - 1;
    slots_ = std::vector<Slot>(cap);
    // Slot i is writable once its sequence word equals its index (Vyukov's
    // invariant: seq == pos means "free for the push at position pos",
    // seq == pos + 1 means "holds the value pushed at position pos").
    for (std::size_t i = 0; i < cap; ++i) {
      init(slots_[i].seq, static_cast<std::uint64_t>(i));
    }
    init(head_, 0);
    init(tail_, 0);
    init(version_, 0);
    init(waiters_, 0);
    init(closed_, 0);
  }

  /// Enqueues `value` and rings the doorbell. Returns true when a futex
  /// wake was issued (a parked consumer existed), false when the wake was
  /// elided or the policy never parks — the issued/elided telemetry feed.
  bool push(std::uint64_t value, support::WaitPolicy policy) {
    using proto::cas;
    using proto::fetch_add;
    using proto::load_acq;
    using proto::notify;
    using proto::store_rel;
    std::uint64_t pos = load_acq(tail_);
    for (;;) {
      Slot& slot = slots_[pos & mask_];
      const std::uint64_t seq = load_acq(slot.seq);
      if (seq == pos) {
        if (cas(tail_, pos, pos + 1)) {
          slot.value = value;
          store_rel(slot.seq, pos + 1);
          // Telemetry-only high watermark (relaxed CAS-max, off the
          // protocol seam): feeds the overflow diagnostic and lets sizing
          // be audited after a run.
          const std::uint64_t h = load_acq(head_);
          const std::uint64_t occ = pos + 1 > h ? pos + 1 - h : 0;
          std::uint64_t hw = high_water_.load(std::memory_order_relaxed);
          while (occ > hw &&
                 !high_water_.compare_exchange_weak(
                     hw, occ, std::memory_order_relaxed)) {
          }
          break;
        }
        // cas loaded the observed tail into pos; retry against it.
      } else if (seq > pos) {
        // Another producer claimed this position; chase the cursor.
        pos = load_acq(tail_);
      } else {
        // seq < pos means the ring wrapped a full lap: the capacity
        // contract (>= total pushes) was violated. In correct use this
        // state is unreachable even transiently — slot sequence words
        // never trail the claimed position — so fail loudly with the
        // sizing facts instead of losing the value or livelocking.
        throw RingOverflow(mask_ + 1, pos,
                           high_water_.load(std::memory_order_relaxed));
      }
    }
    fetch_add(version_, std::uint64_t{1});
    if (policy == support::WaitPolicy::kBlock &&
        fetch_add(waiters_, std::uint64_t{0}) != 0) {
      notify(version_, policy);
      return true;
    }
    return false;
  }

  /// Non-blocking pop. Returns nullopt when the ring is (momentarily)
  /// empty.
  std::optional<std::uint64_t> try_pop() {
    using proto::cas;
    using proto::load_acq;
    using proto::store_rel;
    std::uint64_t pos = load_acq(head_);
    for (;;) {
      Slot& slot = slots_[pos & mask_];
      const std::uint64_t seq = load_acq(slot.seq);
      if (seq == pos + 1) {
        if (cas(head_, pos, pos + 1)) {
          const std::uint64_t value = slot.value;
          // Hand the slot back to the producer of lap pos + capacity.
          store_rel(slot.seq, pos + mask_ + 1);
          return value;
        }
      } else if (seq <= pos) {
        return std::nullopt;  // nothing published at this position yet
      } else {
        pos = load_acq(head_);
      }
    }
  }

  /// Blocking pop: waits (per policy) while the ring is open and empty;
  /// returns nullopt once closed and drained, or on abort.
  std::optional<std::uint64_t> pop_blocking(support::WaitPolicy policy,
                                            const std::atomic<bool>* abort,
                                            std::uint64_t* spins) {
    using proto::fetch_add;
    using proto::load_acq;
    using proto::wait_changed;
    for (;;) {
      // Sample the doorbell BEFORE the pop attempt: a push that lands
      // after the failed attempt bumps version_ past the sample, so the
      // park below cannot sleep through it.
      const std::uint64_t ver = load_acq(version_);
      if (auto v = try_pop()) return v;
      if (load_acq(closed_) != 0) {
        // close() bumps version_ after setting closed_, so a racing
        // watchdog close is drained here rather than slept through.
        if (auto v = try_pop()) return v;
        return std::nullopt;
      }
      if (policy == support::WaitPolicy::kBlock && abort == nullptr) {
        fetch_add(waiters_, std::uint64_t{1});
        wait_changed(version_, ver, policy, nullptr, spins);
        fetch_add(waiters_, std::uint64_t{0} - 1);
      } else {
        // Spin policies and watchdog-armed runs poll; the abort flag
        // (watchdog) must be able to unblock us without a notify.
        if (!wait_changed(version_, ver, policy, abort, spins)) {
          if (auto v = try_pop()) return v;
          return std::nullopt;
        }
      }
    }
  }

  /// Marks the stream complete: pops drain the remaining entries, then
  /// return nullopt. Wakes every parked consumer.
  void close(support::WaitPolicy policy) {
    using proto::fetch_add;
    using proto::notify;
    using proto::store_rel;
    store_rel(closed_, std::uint64_t{1});
    fetch_add(version_, std::uint64_t{1});
    if (policy == support::WaitPolicy::kBlock &&
        fetch_add(waiters_, std::uint64_t{0}) != 0) {
      notify(version_, policy);
    }
  }

  /// Highest observed occupancy (racy by nature; telemetry/sizing audit).
  [[nodiscard]] std::uint64_t high_watermark() const noexcept {
    return high_water_.load(std::memory_order_relaxed);
  }

  /// Approximate occupancy (racy by nature; watchdog diagnostics only).
  [[nodiscard]] std::size_t size() {
    using proto::load_acq;
    const std::uint64_t t = load_acq(tail_);
    const std::uint64_t h = load_acq(head_);
    return t > h ? static_cast<std::size_t>(t - h) : 0;
  }

 private:
  struct Slot {
    Word64 seq;
    std::uint64_t value = 0;  // plain: published via the seq release store
  };

  std::vector<Slot> slots_;
  std::size_t mask_ = 0;
  alignas(support::kCacheLineSize) Word64 head_;
  alignas(support::kCacheLineSize) Word64 tail_;
  alignas(support::kCacheLineSize) Word64 version_;
  alignas(support::kCacheLineSize) Word64 waiters_;
  Word64 closed_;
  std::atomic<std::uint64_t> high_water_{0};  // telemetry, not protocol
};

/// Production instantiation.
using ReadyRing = ReadyRingT<std::atomic<std::uint64_t>>;

}  // namespace rio::coor
