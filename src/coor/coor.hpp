// Umbrella header for the centralized OoO baseline runtime.
#pragma once

#include "coor/ready_queue.hpp"  // IWYU pragma: export
#include "coor/ready_ring.hpp"   // IWYU pragma: export
#include "coor/runtime.hpp"      // IWYU pragma: export
