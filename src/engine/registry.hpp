// engine::Registry — the process-wide backend directory.
//
// The registry is the ONE place the engine list lives: usage strings, error
// messages, the `rioflow engines` report, the test matrices and the
// run_checks.sh smoke gate all derive from Registry::names(), so the list
// can never drift from the code again. Built-in backends are registered on
// first use (src/engine/backends.cpp) — a function call, not a static
// initializer, so static-library linking cannot drop them.
#pragma once

#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "engine/engine.hpp"

namespace rio::engine {

class Registry {
 public:
  /// The singleton. First access registers the built-in backends (seq, rio,
  /// rio-pruned, coor, hybrid, sim-rio, sim-coor, sim-hybrid) in that
  /// order. Thread-safe initialization (magic static).
  static Registry& instance();

  /// Registers a backend. The name must be non-empty and unique; tests may
  /// add experimental backends on top of the built-ins.
  void add(std::unique_ptr<Backend> backend);

  /// Registers `alias` as a second name for the backend called `target`.
  /// The target must already be registered and the alias must not collide
  /// with any canonical name or existing alias. Built-ins: `pruned` ->
  /// rio-pruned, `sim` -> sim-rio.
  void add_alias(std::string alias, std::string_view target);

  /// nullptr when no backend carries `name` (canonical names first, then
  /// aliases).
  [[nodiscard]] const Backend* find(std::string_view name) const noexcept;

  /// Aliases pointing at the backend named `name`, in registration order.
  [[nodiscard]] std::vector<std::string> aliases_for(
      std::string_view name) const;

  /// find() with the structured unknown-name error every consumer prints:
  /// "unknown engine 'x' (choices: seq, rio, ...)". CLI exit code 1.
  [[nodiscard]] const Backend* find_or_error(std::string_view name,
                                             std::string& error) const;

  /// All backends in registration order.
  [[nodiscard]] std::vector<const Backend*> all() const;

  /// Registered names, in registration order.
  [[nodiscard]] std::vector<std::string> names() const;

  /// Names joined with `sep` — feeds usage strings and error messages.
  [[nodiscard]] std::string names_csv(std::string_view sep = ", ") const;

 private:
  std::vector<std::unique_ptr<Backend>> backends_;
  std::vector<std::pair<std::string, std::string>> aliases_;  // alias -> target
};

}  // namespace rio::engine
