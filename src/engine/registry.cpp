#include "engine/registry.hpp"

#include <utility>

#include "support/assert.hpp"

namespace rio::engine {

namespace detail {
// Defined in backends.cpp. Referencing it from instance() forces the linker
// to keep the backends translation unit even in a static library.
void register_builtins(Registry& reg);
}  // namespace detail

Registry& Registry::instance() {
  static Registry* reg = [] {
    auto* r = new Registry();  // leaked on purpose: lives for the process
    detail::register_builtins(*r);
    return r;
  }();
  return *reg;
}

void Registry::add(std::unique_ptr<Backend> backend) {
  RIO_ASSERT_MSG(backend && !backend->name().empty(),
                 "backend must carry a name");
  RIO_ASSERT_MSG(find(backend->name()) == nullptr,
                 "duplicate backend registration");
  backends_.push_back(std::move(backend));
}

void Registry::add_alias(std::string alias, std::string_view target) {
  RIO_ASSERT_MSG(!alias.empty(), "alias must be non-empty");
  RIO_ASSERT_MSG(find(alias) == nullptr, "alias collides with existing name");
  const Backend* t = find(target);
  RIO_ASSERT_MSG(t != nullptr, "alias target is not registered");
  aliases_.emplace_back(std::move(alias), std::string(t->name()));
}

const Backend* Registry::find(std::string_view name) const noexcept {
  // The ONLY engine-name string matching in the codebase lives here.
  for (const auto& b : backends_)
    if (b->name() == name) return b.get();
  for (const auto& [alias, target] : aliases_) {
    if (alias != name) continue;
    for (const auto& b : backends_)
      if (b->name() == target) return b.get();
  }
  return nullptr;
}

std::vector<std::string> Registry::aliases_for(std::string_view name) const {
  std::vector<std::string> out;
  for (const auto& [alias, target] : aliases_)
    if (target == name) out.push_back(alias);
  return out;
}

const Backend* Registry::find_or_error(std::string_view name,
                                       std::string& error) const {
  if (const Backend* b = find(name)) return b;
  error = "unknown engine '" + std::string(name) +
          "' (choices: " + names_csv() + ")";
  return nullptr;
}

std::vector<const Backend*> Registry::all() const {
  std::vector<const Backend*> out;
  out.reserve(backends_.size());
  for (const auto& b : backends_) out.push_back(b.get());
  return out;
}

std::vector<std::string> Registry::names() const {
  std::vector<std::string> out;
  out.reserve(backends_.size());
  for (const auto& b : backends_) out.emplace_back(b->name());
  return out;
}

std::string Registry::names_csv(std::string_view sep) const {
  std::string out;
  for (const auto& b : backends_) {
    if (!out.empty()) out += sep;
    out += b->name();
  }
  return out;
}

std::vector<std::pair<std::string_view, bool>> capability_list(
    const Capabilities& c) {
  return {{"executes_bodies", c.executes_bodies},
          {"virtual_time", c.virtual_time},
          {"supports_faults", c.supports_faults},
          {"supports_watchdog", c.supports_watchdog},
          {"supports_trace", c.supports_trace},
          {"supports_sync", c.supports_sync},
          {"supports_obs", c.supports_obs},
          {"supports_guard", c.supports_guard},
          {"supports_streaming", c.supports_streaming},
          {"needs_mapping", c.needs_mapping},
          {"partial_mapping", c.partial_mapping},
          {"uses_wait_policy", c.uses_wait_policy},
          {"uses_scheduler", c.uses_scheduler},
          {"uses_queue", c.uses_queue},
          {"in_order", c.in_order},
          {"has_master", c.has_master},
          {"supports_recovery", c.supports_recovery}};
}

std::vector<std::string> unsupported_knobs(const Capabilities& caps,
                                           const Launch& launch) {
  std::vector<std::string> bad;
  if (launch.workers == 0) bad.emplace_back("workers=0 (need at least one)");
  if (caps.needs_mapping && !launch.mapping.valid())
    bad.emplace_back("missing mapping (backend needs_mapping)");
  if (launch.partial && !caps.partial_mapping)
    bad.emplace_back("partial mapping (backend lacks partial_mapping)");
  if (launch.collect_trace && !caps.supports_trace)
    bad.emplace_back("collect_trace (backend lacks supports_trace)");
  if (launch.collect_sync && !caps.supports_sync)
    bad.emplace_back("collect_sync (backend lacks supports_sync)");
  if (launch.enable_guard && !caps.supports_guard)
    bad.emplace_back("enable_guard (backend lacks supports_guard)");
  if (launch.obs != nullptr && !caps.supports_obs)
    bad.emplace_back("obs hub (backend lacks supports_obs)");
  if ((launch.fault != nullptr || launch.retry.enabled()) &&
      !caps.supports_faults)
    bad.emplace_back("faults/retry (backend lacks supports_faults)");
  if (launch.watchdog_ns > 0 && !caps.supports_watchdog)
    bad.emplace_back("watchdog (backend lacks supports_watchdog)");
  if (launch.work_stealing && !caps.uses_scheduler)
    bad.emplace_back("work_stealing (backend lacks uses_scheduler)");
  if (launch.queue != coor::QueueKind::kLocked && !caps.uses_queue)
    bad.emplace_back("queue (backend lacks uses_queue)");
  if ((launch.resume != nullptr || launch.checkpoint != nullptr) &&
      !caps.supports_recovery)
    bad.emplace_back("resume/checkpoint (backend lacks supports_recovery)");
  if (launch.fault != nullptr && launch.fault->plan().crash_armed() &&
      !caps.supports_recovery && !caps.virtual_time)
    bad.emplace_back("crash faults (backend lacks supports_recovery)");
  return bad;
}

void validate(const Backend& backend, const Launch& launch) {
  const std::vector<std::string> bad =
      unsupported_knobs(backend.caps(), launch);
  if (bad.empty()) return;
  std::string detail;
  for (const std::string& b : bad) {
    if (!detail.empty()) detail += "; ";
    detail += b;
  }
  throw UnsupportedLaunch(backend.name(), detail);
}

}  // namespace rio::engine
