#include "engine/supervisor.hpp"

#include <algorithm>
#include <chrono>
#include <functional>
#include <optional>
#include <utility>
#include <vector>

#include "support/assert.hpp"
#include "obs/obs.hpp"
#include "rio/mapping.hpp"
#include "stf/failure.hpp"
#include "stf/flow_image.hpp"

namespace rio::engine {
namespace {

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Rewrites a partial mapping after worker `dead` left a pool of
/// `old_workers`: statically-owned tasks of the dead worker round-robin
/// over the survivors, owners above the dead id shift down, dynamic tasks
/// stay dynamic. The exact partial-mapping analogue of rt::mapping::evict.
hybrid::PartialMapping evict_partial(hybrid::PartialMapping old,
                                     stf::WorkerId dead,
                                     std::uint32_t old_workers) {
  const std::uint32_t survivors = old_workers - 1;
  return [old = std::move(old), dead,
          survivors](stf::TaskId t) -> std::optional<stf::WorkerId> {
    const std::optional<stf::WorkerId> o = old(t);
    if (!o.has_value()) return std::nullopt;
    if (*o == dead) return static_cast<stf::WorkerId>(t % survivors);
    if (*o > dead) return static_cast<stf::WorkerId>(*o - 1);
    return o;
  };
}

}  // namespace

Outcome run_supervised(const Backend& backend, const stf::FlowImage& image,
                       Launch launch, const SupervisorOptions& opts) {
  const Capabilities& caps = backend.caps();
  if (!caps.supports_recovery) return backend.run(image, launch);

  // The supervisor owns a board unless the caller brought one (e.g. to
  // inspect the frontier afterwards). Either way the board is wired into
  // every attempt so the frontier is always capturable at the next loss.
  stf::CompletionBoard own_board;
  if (launch.checkpoint == nullptr) {
    own_board.reset(image.first_id(), image.size(), opts.checkpoint_every);
    launch.checkpoint = &own_board;
  }
  stf::CompletionBoard* board = launch.checkpoint;

  // `frontier` must outlive the attempt that consumes launch.resume, and is
  // recaptured (not reallocated fresh) at every loss.
  stf::Frontier frontier;
  std::uint64_t evictions = 0;
  std::uint64_t replayed = 0;
  std::uint64_t first_loss_ns = 0;
  std::vector<stf::WorkerId> evicted;  // original worker numbering

  // Maps a CURRENT worker id back to the original numbering for reporting:
  // original_id[w] is worker w's id before any eviction.
  std::vector<stf::WorkerId> original_id(launch.workers);
  for (std::uint32_t w = 0; w < launch.workers; ++w) original_id[w] = w;

  for (;;) {
    try {
      Outcome out = backend.run(image, launch);
      out.evictions = evictions;
      out.tasks_replayed += replayed;
      out.evicted_workers = std::move(evicted);
      if (evictions > 0) out.recovery_wall_ns = now_ns() - first_loss_ns;
      return out;
    } catch (const stf::WorkerLost& loss) {
      if (first_loss_ns == 0) first_loss_ns = now_ns();
      if (launch.workers <= 1) throw;  // nobody left to take over

      // Distinct dead worker ids, descending: evicting the highest id
      // first keeps the remaining dead ids valid in the shrinking pool.
      std::vector<stf::WorkerId> dead_ids;
      for (const stf::DeathRecord& d : loss.deaths())
        dead_ids.push_back(d.worker);
      std::sort(dead_ids.begin(), dead_ids.end(),
                std::greater<stf::WorkerId>());
      dead_ids.erase(std::unique(dead_ids.begin(), dead_ids.end()),
                     dead_ids.end());
      if (dead_ids.empty()) throw;  // defensive: loss without a record
      if (dead_ids.size() >= launch.workers) throw;  // everyone died
      if (opts.max_evictions != 0 &&
          evictions + dead_ids.size() > opts.max_evictions)
        throw;

      // Roll the dead workers' dirty write spans back to the pre-task
      // bytes so re-execution starts from clean inputs.
      for (const stf::DeathRecord& d : loss.deaths())
        d.dirty.restore(image.registry());

      for (const stf::WorkerId dead : dead_ids) {
        RIO_ASSERT(dead < launch.workers);
        evicted.push_back(original_id[dead]);
        original_id.erase(original_id.begin() + dead);
        if (launch.mapping.valid())
          launch.mapping =
              rt::mapping::evict(launch.mapping, dead, launch.workers);
        if (launch.partial)
          launch.partial =
              evict_partial(std::move(launch.partial), dead, launch.workers);
        launch.workers -= 1;
        ++evictions;
      }
      if (launch.obs != nullptr)
        launch.obs->global_counters().add(obs::Counter::kEvictions,
                                          dead_ids.size());

      // Resume past everything the board has seen complete. Tasks done
      // before the loss replay as protocol no-ops on the next attempt.
      frontier = board->capture();
      replayed += frontier.completed;
      launch.resume = &frontier;
    }
  }
}

}  // namespace rio::engine
