// Built-in backends. This file is the "exactly one place" a new backend is
// added: implement engine::Backend (usually a thin facade over an existing
// runtime) and append one line to register_builtins() at the bottom.

#include <memory>
#include <optional>
#include <utility>

#include "engine/registry.hpp"
#include "coor/runtime.hpp"
#include "hybrid/runtime.hpp"
#include "rio/pruning.hpp"
#include "rio/runtime.hpp"
#include "sim/simulate.hpp"
#include "stf/sequential.hpp"

namespace rio::engine {
namespace {

Outcome base_outcome(support::RunStats stats, const Capabilities& caps) {
  Outcome out;
  out.stats = std::move(stats);
  out.virtual_time = caps.virtual_time;
  out.makespan = out.stats.wall_ns;
  return out;
}

/// Default partial mapping for hybrid backends when the Launch carries
/// none: alternate 16-task static (owner = t mod p) / dynamic segments —
/// the shape profile and chaos always exercised.
hybrid::PartialMapping default_partial(std::uint32_t workers) {
  return [workers](stf::TaskId t) -> std::optional<stf::WorkerId> {
    if ((t / 16) % 2 == 0) return static_cast<stf::WorkerId>(t % workers);
    return std::nullopt;
  };
}

rt::Config make_rio_config(const Launch& l) {
  return rt::Config{.num_workers = l.workers,
                    .wait_policy = l.wait_policy,
                    .collect_stats = l.collect_stats,
                    .collect_trace = l.collect_trace,
                    .collect_sync = l.collect_sync,
                    .enable_guard = l.enable_guard,
                    .pin_workers = l.pin_workers,
                    .retry = l.retry,
                    .fault = l.fault,
                    .watchdog_ns = l.watchdog_ns,
                    .resume = l.resume,
                    .checkpoint = l.checkpoint,
                    .obs = l.obs};
}

class SeqBackend final : public Backend {
 public:
  [[nodiscard]] std::string_view name() const noexcept override {
    return "seq";
  }
  [[nodiscard]] std::string_view description() const noexcept override {
    return "sequential reference executor (the correctness oracle)";
  }
  [[nodiscard]] const Capabilities& caps() const noexcept override {
    static const Capabilities c{.executes_bodies = true, .in_order = true};
    return c;
  }
  [[nodiscard]] Outcome run(const stf::FlowImage& image,
                            const Launch& launch) const override {
    validate(*this, launch);
    return base_outcome(stf::SequentialExecutor{}.run(image), caps());
  }
};

class RioBackend final : public Backend {
 public:
  [[nodiscard]] std::string_view name() const noexcept override {
    return "rio";
  }
  [[nodiscard]] std::string_view description() const noexcept override {
    return "decentralized in-order runtime (the paper's model, Section 3)";
  }
  [[nodiscard]] const Capabilities& caps() const noexcept override {
    static const Capabilities c{.executes_bodies = true,
                                .supports_faults = true,
                                .supports_watchdog = true,
                                .supports_trace = true,
                                .supports_sync = true,
                                .supports_obs = true,
                                .supports_guard = true,
                                .supports_streaming = true,
                                .needs_mapping = true,
                                .uses_wait_policy = true,
                                .in_order = true,
                                .supports_recovery = true};
    return c;
  }
  [[nodiscard]] Outcome run(const stf::FlowImage& image,
                            const Launch& launch) const override {
    validate(*this, launch);
    rt::Runtime eng(make_rio_config(launch));
    Outcome out = base_outcome(eng.run(image, launch.mapping), caps());
    out.trace = eng.trace();
    out.sync = eng.sync_trace();
    return out;
  }
};

class PrunedBackend final : public Backend {
 public:
  [[nodiscard]] std::string_view name() const noexcept override {
    return "rio-pruned";
  }
  [[nodiscard]] std::string_view description() const noexcept override {
    return "decentralized in-order runtime with task pruning (Section 3.5)";
  }
  [[nodiscard]] const Capabilities& caps() const noexcept override {
    static const Capabilities c{.executes_bodies = true,
                                .supports_faults = true,
                                .supports_watchdog = true,
                                .supports_trace = true,
                                .supports_sync = true,
                                .supports_obs = true,
                                .needs_mapping = true,
                                .uses_wait_policy = true,
                                .in_order = true,
                                .supports_recovery = true};
    return c;
  }
  [[nodiscard]] Outcome run(const stf::FlowImage& image,
                            const Launch& launch) const override {
    validate(*this, launch);
    rt::PrunedRuntime eng(make_rio_config(launch));
    Outcome out = base_outcome(eng.run(image, launch.mapping), caps());
    out.trace = eng.trace();
    out.sync = eng.sync_trace();
    out.plan_compiles = eng.plan_compiles();
    return out;
  }
};

class CoorBackend final : public Backend {
 public:
  [[nodiscard]] std::string_view name() const noexcept override {
    return "coor";
  }
  [[nodiscard]] std::string_view description() const noexcept override {
    return "centralized out-of-order master/worker runtime (Figure 1)";
  }
  [[nodiscard]] const Capabilities& caps() const noexcept override {
    static const Capabilities c{.executes_bodies = true,
                                .supports_faults = true,
                                .supports_watchdog = true,
                                .supports_trace = true,
                                .supports_sync = true,
                                .supports_obs = true,
                                .supports_guard = true,
                                .uses_wait_policy = true,
                                .uses_scheduler = true,
                                .uses_queue = true,
                                .has_master = true,
                                .supports_recovery = true};
    return c;
  }
  [[nodiscard]] Outcome run(const stf::FlowImage& image,
                            const Launch& launch) const override {
    validate(*this, launch);
    coor::Runtime eng(coor::Config{.num_workers = launch.workers,
                                   .scheduler = launch.scheduler,
                                   .queue = launch.queue,
                                   .wait_policy = launch.wait_policy,
                                   .work_stealing = launch.work_stealing,
                                   .collect_stats = launch.collect_stats,
                                   .collect_trace = launch.collect_trace,
                                   .collect_sync = launch.collect_sync,
                                   .enable_guard = launch.enable_guard,
                                   .pin_workers = launch.pin_workers,
                                   .retry = launch.retry,
                                   .fault = launch.fault,
                                   .watchdog_ns = launch.watchdog_ns,
                                   .resume = launch.resume,
                                   .checkpoint = launch.checkpoint,
                                   .obs = launch.obs});
    Outcome out = base_outcome(eng.run(image), caps());
    out.trace = eng.trace();
    out.sync = eng.sync_trace();
    return out;
  }
};

class HybridBackend final : public Backend {
 public:
  [[nodiscard]] std::string_view name() const noexcept override {
    return "hybrid";
  }
  [[nodiscard]] std::string_view description() const noexcept override {
    return "bulk-synchronous phases: static slices on rio, dynamic on coor";
  }
  [[nodiscard]] const Capabilities& caps() const noexcept override {
    static const Capabilities c{.executes_bodies = true,
                                .supports_faults = true,
                                .supports_watchdog = true,
                                .supports_obs = true,
                                .supports_guard = true,
                                .partial_mapping = true,
                                .uses_wait_policy = true,
                                .uses_scheduler = true,
                                .has_master = true,
                                .supports_recovery = true};
    return c;
  }
  [[nodiscard]] Outcome run(const stf::FlowImage& image,
                            const Launch& launch) const override {
    validate(*this, launch);
    hybrid::Runtime eng(
        hybrid::Config{.num_workers = launch.workers,
                       .wait_policy = launch.wait_policy,
                       .dynamic_scheduler = launch.scheduler,
                       .dynamic_work_stealing = launch.work_stealing,
                       .collect_stats = launch.collect_stats,
                       .enable_guard = launch.enable_guard,
                       .retry = launch.retry,
                       .fault = launch.fault,
                       .watchdog_ns = launch.watchdog_ns,
                       .resume = launch.resume,
                       .checkpoint = launch.checkpoint,
                       .obs = launch.obs});
    const hybrid::PartialMapping& pm =
        launch.partial ? launch.partial : default_partial(launch.workers);
    Outcome out = base_outcome(eng.run(image, pm), caps());
    out.phases = eng.last_phase_count();
    out.completed_phases = eng.completed_phases();
    return out;
  }
};

sim::DecentralizedParams make_dparams(const Launch& l) {
  sim::DecentralizedParams p;
  p.workers = l.workers;
  if (l.fault != nullptr) p.faults = l.fault->plan();
  p.retry = l.retry;
  p.obs = l.obs;
  return p;
}

sim::CentralizedParams make_cparams(const Launch& l) {
  sim::CentralizedParams p;
  p.workers = l.workers;
  if (l.fault != nullptr) p.faults = l.fault->plan();
  p.retry = l.retry;
  p.obs = l.obs;
  return p;
}

Outcome sim_outcome(sim::Report rep, const Capabilities& caps) {
  Outcome out = base_outcome(std::move(rep.stats), caps);
  out.makespan = rep.makespan;
  out.injected_throws = rep.injected_throws;
  out.injected_stalls = rep.injected_stalls;
  out.retried_tasks = rep.retried_tasks;
  out.failed_tasks = rep.failed_tasks;
  out.evictions = rep.evictions;
  out.tasks_replayed = rep.tasks_replayed;
  return out;
}

class SimRioBackend final : public Backend {
 public:
  [[nodiscard]] std::string_view name() const noexcept override {
    return "sim-rio";
  }
  [[nodiscard]] std::string_view description() const noexcept override {
    return "discrete-event simulation of the decentralized in-order model";
  }
  [[nodiscard]] const Capabilities& caps() const noexcept override {
    static const Capabilities c{.virtual_time = true,
                                .supports_faults = true,
                                .supports_obs = true,
                                .needs_mapping = true,
                                .in_order = true};
    return c;
  }
  [[nodiscard]] Outcome run(const stf::FlowImage& image,
                            const Launch& launch) const override {
    validate(*this, launch);
    return sim_outcome(
        sim::simulate_decentralized(image, launch.mapping, make_dparams(launch)),
        caps());
  }
};

class SimCoorBackend final : public Backend {
 public:
  [[nodiscard]] std::string_view name() const noexcept override {
    return "sim-coor";
  }
  [[nodiscard]] std::string_view description() const noexcept override {
    return "discrete-event simulation of the centralized out-of-order model";
  }
  [[nodiscard]] const Capabilities& caps() const noexcept override {
    static const Capabilities c{.virtual_time = true,
                                .supports_faults = true,
                                .supports_obs = true,
                                .has_master = true};
    return c;
  }
  [[nodiscard]] Outcome run(const stf::FlowImage& image,
                            const Launch& launch) const override {
    validate(*this, launch);
    return sim_outcome(sim::simulate_centralized(image, make_cparams(launch)),
                       caps());
  }
};

class SimHybridBackend final : public Backend {
 public:
  [[nodiscard]] std::string_view name() const noexcept override {
    return "sim-hybrid";
  }
  [[nodiscard]] std::string_view description() const noexcept override {
    return "discrete-event simulation of the hybrid phase model";
  }
  [[nodiscard]] const Capabilities& caps() const noexcept override {
    static const Capabilities c{.virtual_time = true,
                                .supports_faults = true,
                                .supports_obs = true,
                                .partial_mapping = true,
                                .has_master = true};
    return c;
  }
  [[nodiscard]] Outcome run(const stf::FlowImage& image,
                            const Launch& launch) const override {
    validate(*this, launch);
    const hybrid::PartialMapping& pm =
        launch.partial ? launch.partial : default_partial(launch.workers);
    const std::vector<hybrid::Phase> phases =
        hybrid::partition(image.size(), pm, launch.workers);
    Outcome out = sim_outcome(
        sim::simulate_hybrid(image, phases, make_dparams(launch),
                             make_cparams(launch)),
        caps());
    out.phases = phases.size();
    out.completed_phases = phases.size();
    return out;
  }
};

}  // namespace

namespace detail {

void register_builtins(Registry& reg) {
  reg.add(std::make_unique<SeqBackend>());
  reg.add(std::make_unique<RioBackend>());
  reg.add(std::make_unique<PrunedBackend>());
  reg.add(std::make_unique<CoorBackend>());
  reg.add(std::make_unique<HybridBackend>());
  reg.add(std::make_unique<SimRioBackend>());
  reg.add(std::make_unique<SimCoorBackend>());
  reg.add(std::make_unique<SimHybridBackend>());
  reg.add_alias("pruned", "rio-pruned");
  reg.add_alias("sim", "sim-rio");
}

}  // namespace detail
}  // namespace rio::engine
