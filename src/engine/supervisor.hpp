// engine::run_supervised — evict-and-remap recovery over the backend seam.
//
// A permanent worker loss (support::FaultPlan crash faults, or a real stuck
// thread surfacing as stf::WorkerLost) would otherwise abort the whole run
// and lose every completed task body. The supervisor turns that into a
// bounded-loss restart:
//
//   1. run the backend with a live stf::CompletionBoard checkpoint;
//   2. on stf::WorkerLost: restore the dead workers' dirty write spans
//      (DeathRecord::dirty), EVICT each dead worker id from the Launch
//      (mapping rewritten via rt::mapping::evict, partial mappings wrapped,
//      workers decremented), capture the completion Frontier;
//   3. resume the SAME FlowImage with Launch::resume set — completed tasks
//      replay as protocol no-ops, everything else re-executes;
//   4. repeat until the run finishes or the eviction budget / worker pool
//      is exhausted (then the WorkerLost escalates to the caller).
//
// The Outcome reports evictions, evicted worker ids (original numbering),
// tasks replayed across resumed attempts and the recovery wall time.
// Backends without supports_recovery pass through untouched.
// See docs/robustness.md ("Worker loss and recovery").
#pragma once

#include <cstdint>

#include "engine/engine.hpp"
#include "stf/frontier.hpp"

namespace rio::engine {

struct SupervisorOptions {
  /// Evictions allowed across the whole supervised run; 0 = no explicit
  /// cap (still bounded by the worker pool — the last worker is never
  /// evicted, the loss escalates instead).
  std::uint32_t max_evictions = 0;
  /// CompletionBoard sampling stride for the board the supervisor owns
  /// (ignored when the caller supplies Launch::checkpoint).
  std::uint32_t checkpoint_every = stf::CompletionBoard::kDefaultSampleEvery;
};

/// Runs `image` on `backend` under the recovery loop above. `launch` is
/// taken by value: the supervisor rewrites workers/mapping/partial/resume
/// across attempts. Throws whatever the backend throws for non-recoverable
/// failures (TaskFailure, StallError, body exceptions); rethrows the final
/// stf::WorkerLost when recovery is impossible or the budget is spent.
[[nodiscard]] Outcome run_supervised(const Backend& backend,
                                     const stf::FlowImage& image,
                                     Launch launch,
                                     const SupervisorOptions& opts = {});

}  // namespace rio::engine
