// engine:: — the uniform backend seam every consumer launches through.
//
// The paper's whole argument is a controlled comparison of execution models
// (RIO vs. centralized out-of-order, Fig. 1 / Section 5). Before this layer
// every consumer — rioflow run/profile/chaos, the bench suite, the
// fuzz/failure/obs tests — re-implemented its own `if (engine == "rio") …`
// dispatch over five divergent Config structs. Now there is exactly one
// seam:
//
//   * Backend   — `run(const stf::FlowImage&, const Launch&) -> Outcome`;
//   * Launch    — one struct unifying the knobs of rt::Config, coor::Config,
//                 hybrid::Config and sim::*Params;
//   * Capabilities — per-backend flags consumers branch on instead of name
//                 strings; a Launch asking for more than a backend offers is
//                 rejected with ONE structured UnsupportedLaunch error;
//   * Registry  — the process-wide directory (registry.hpp) where seq, rio,
//                 rio-pruned, coor, hybrid, sim-rio, sim-coor and sim-hybrid
//                 self-register by name.
//
// Adding a backend = implement Backend + one registration line in
// src/engine/backends.cpp. See docs/engines.md for the recipe.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "support/fault.hpp"
#include "support/stats.hpp"
#include "support/wait.hpp"
#include "coor/ready_queue.hpp"
#include "coor/ready_ring.hpp"
#include "hybrid/runtime.hpp"
#include "rio/mapping.hpp"
#include "stf/flow_image.hpp"
#include "stf/frontier.hpp"
#include "stf/trace.hpp"

namespace rio::obs {
class Hub;
}

namespace rio::engine {

/// What a backend can do. Consumers branch on these flags instead of on
/// engine-name strings; `validate()` turns a Launch that asks for more than
/// the backend offers into one structured error (CLI exit code 2).
struct Capabilities {
  bool executes_bodies = false;  ///< task bodies really run — results are
                                 ///< byte-comparable to the sequential oracle
  bool virtual_time = false;     ///< makespan/buckets are virtual ticks, not
                                 ///< wall-clock ns (discrete-event simulator)
  bool supports_faults = false;  ///< fault injection + retry policy honoured
  bool supports_watchdog = false;  ///< progress watchdog (real-time engines)
  bool supports_trace = false;   ///< records a validatable execution trace
  bool supports_sync = false;    ///< records acquire/release sync events for
                                 ///< the happens-before checker (src/analysis)
  bool supports_obs = false;     ///< obs::Hub telemetry (docs/observability.md)
  bool supports_guard = false;   ///< dynamic access-guard race detection
  bool supports_streaming = false;  ///< has a run_program streaming front end
                                    ///< (outside this interface; rio only)
  bool needs_mapping = false;    ///< requires a full static Launch::mapping
  bool partial_mapping = false;  ///< consumes a hybrid::PartialMapping
  bool uses_wait_policy = false;  ///< honours Launch::wait_policy
  bool uses_scheduler = false;    ///< honours Launch::scheduler/work_stealing
  bool uses_queue = false;        ///< honours Launch::queue (central
                                  ///< ready-queue implementation; coor only)
  bool in_order = false;   ///< per-worker in-order execution (what
                           ///< Trace::validate's worker_in_order checks)
  bool has_master = false;  ///< RunStats carries an extra master slot (p)
  bool supports_recovery = false;  ///< honours Launch::resume/checkpoint and
                                   ///< escalates worker death as
                                   ///< stf::WorkerLost — the Supervisor's
                                   ///< evict-and-remap loop works here
};

/// The flags as a stable (name, value) list — one place feeds the `rioflow
/// engines` table, the rio.engines.v1 JSON and docs/engines.md.
[[nodiscard]] std::vector<std::pair<std::string_view, bool>> capability_list(
    const Capabilities& caps);

/// One launch request — the union of the knobs that used to be threaded
/// through rt::Config / coor::Config / hybrid::Config / sim::*Params at six
/// call sites per feature. Knobs a backend lacks the capability for must be
/// left at their defaults or run() refuses (UnsupportedLaunch).
struct Launch {
  std::uint32_t workers = 2;
  support::WaitPolicy wait_policy = support::WaitPolicy::kSpinYield;
  coor::SchedulerKind scheduler = coor::SchedulerKind::kFifo;
  coor::QueueKind queue = coor::QueueKind::kLocked;
  ///< uses_queue backends only. kRing selects the wait-free MPMC ready
  ///< ring for fifo/lifo scheduling (kPriority/kLocality keep the locked
  ///< queues — see coor/ready_ring.hpp).
  bool work_stealing = false;      ///< uses_scheduler backends only
  rt::Mapping mapping;             ///< full static mapping (needs_mapping)
  hybrid::PartialMapping partial;  ///< partial mapping (partial_mapping
                                   ///< backends); empty = the backend's
                                   ///< default 16-task alternation
  bool collect_stats = true;
  bool collect_trace = false;  ///< supports_trace backends only
  bool collect_sync = false;   ///< supports_sync backends only
  bool enable_guard = false;   ///< supports_guard backends only
  bool pin_workers = false;
  support::RetryPolicy retry;               ///< supports_faults backends only
  support::FaultInjector* fault = nullptr;  ///< not owned; supports_faults
  std::uint64_t watchdog_ns = 0;            ///< supports_watchdog backends
  const stf::Frontier* resume = nullptr;  ///< supports_recovery: replay
                                          ///< frontier-done tasks as no-ops
  stf::CompletionBoard* checkpoint = nullptr;  ///< supports_recovery: live
                                               ///< done bitmap (not owned)
  obs::Hub* obs = nullptr;  ///< not owned; supports_obs backends only
};

/// What one run produced. `stats` is always filled; the extras are only
/// meaningful when the corresponding capability is set (and cheap/empty
/// otherwise), so generic consumers can carry one Outcome type around.
struct Outcome {
  support::RunStats stats;
  bool virtual_time = false;   ///< copied from the backend's capabilities
  std::uint64_t makespan = 0;  ///< wall ns, or virtual ticks for simulators

  stf::Trace trace;     ///< filled when Launch::collect_trace
  stf::SyncTrace sync;  ///< filled when Launch::collect_sync

  // Simulator resilience counters (sim::Report); real engines count via the
  // FaultInjector the caller passed in.
  std::uint64_t injected_throws = 0;
  std::uint64_t injected_stalls = 0;
  std::uint64_t retried_tasks = 0;
  std::uint64_t failed_tasks = 0;

  // Hybrid extras.
  std::size_t phases = 0;
  std::size_t completed_phases = 0;

  // rio-pruned extra: plan-cache misses paid by this run.
  std::uint64_t plan_compiles = 0;

  // Recovery extras (filled by engine::run_supervised, or by simulators
  // modelling eviction): how many workers died and were evicted, how many
  // tasks the resumed attempts walked again, and the wall time spent in
  // recovery (restore + remap + resumed attempts) beyond the first run.
  std::uint64_t evictions = 0;
  std::uint64_t tasks_replayed = 0;
  std::uint64_t recovery_wall_ns = 0;
  std::vector<stf::WorkerId> evicted_workers;
};

/// The one structured "that knob is not supported here" error (satellite of
/// docs/engines.md): lists every offending Launch knob at once. The CLI maps
/// it to exit code 2; unknown engine NAMES are a different error (exit 1).
class UnsupportedLaunch : public std::runtime_error {
 public:
  UnsupportedLaunch(std::string_view backend, const std::string& detail)
      : std::runtime_error("engine '" + std::string(backend) +
                           "' cannot run this launch: " + detail) {}
};

/// A registered execution backend. Implementations are stateless facades:
/// run() builds a fresh underlying runtime per call, so backends are safe to
/// share and re-enter from different tests/commands.
class Backend {
 public:
  Backend() = default;
  Backend(const Backend&) = delete;
  Backend& operator=(const Backend&) = delete;
  virtual ~Backend() = default;

  [[nodiscard]] virtual std::string_view name() const noexcept = 0;
  [[nodiscard]] virtual std::string_view description() const noexcept = 0;
  [[nodiscard]] virtual const Capabilities& caps() const noexcept = 0;

  /// Validates `launch` against caps() — throws UnsupportedLaunch naming
  /// every unsupported knob — then executes the whole image to completion.
  /// Failure semantics are the underlying engine's: stf::TaskFailure on
  /// retry exhaustion, stf::StallError on watchdog fire, first body
  /// exception otherwise.
  [[nodiscard]] virtual Outcome run(const stf::FlowImage& image,
                                    const Launch& launch) const = 0;
};

/// Every Launch knob `caps` cannot honour, as human-readable fragments
/// (empty = launchable). Shared by validate() and the CLI's pre-flight.
[[nodiscard]] std::vector<std::string> unsupported_knobs(
    const Capabilities& caps, const Launch& launch);

/// Throws UnsupportedLaunch listing every offending knob; no-op when the
/// launch fits the backend's capabilities.
void validate(const Backend& backend, const Launch& launch);

}  // namespace rio::engine
