// Wait policies for dependency stalls.
//
// Algorithm 2 of the paper contains two "wait for <shared word> == <local
// value>" loops. How a worker waits is a policy decision with a large
// performance impact:
//   * pure spinning has the lowest wake-up latency but burns a hardware
//     thread, and livelocks when workers are oversubscribed on few cores;
//   * spin-then-yield keeps low latency while remaining safe under
//     oversubscription (this reproduction's test machine has one core);
//   * C++20 std::atomic::wait parks the thread in the kernel (futex on
//     Linux), which is what a production runtime wants for long stalls.
//
// The policy is a template parameter of the hot loops and a runtime knob of
// the public API, so benches can ablate it (bench/abl_wait_policy).
#pragma once

#include <atomic>
#include <cstdint>
#include <thread>

namespace rio::support {

/// Selects how a worker waits for a shared atomic to reach a target value.
enum class WaitPolicy : std::uint8_t {
  kSpin,       ///< busy-poll with a pause instruction, never yield
  kSpinYield,  ///< short pause burst, then std::this_thread::yield
  kBlock,      ///< short spin, then std::atomic::wait (futex)
};

/// Architectural pause: lowers power and frees pipeline slots for the
/// sibling hyperthread while spinning.
inline void cpu_pause() noexcept {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#elif defined(__aarch64__)
  asm volatile("yield" ::: "memory");
#else
  std::atomic_signal_fence(std::memory_order_seq_cst);
#endif
}

/// Exponential spin backoff with an oversubscription escape hatch.
/// After kSpinLimit rounds the caller should fall back to yielding or
/// blocking; the backoff object tracks that state.
class Backoff {
 public:
  /// One backoff round. Returns true while still in the spin phase.
  bool spin() noexcept {
    if (rounds_ >= kSpinLimit) return false;
    const std::uint32_t iters = std::uint32_t{1} << (rounds_ < 6 ? rounds_ : 6);
    for (std::uint32_t i = 0; i < iters; ++i) cpu_pause();
    ++rounds_;
    return true;
  }

  void yield() noexcept { std::this_thread::yield(); }

  void reset() noexcept { rounds_ = 0; }

 private:
  static constexpr std::uint32_t kSpinLimit = 10;
  std::uint32_t rounds_ = 0;
};

/// Blocks until `word.load(acquire) == expected`, following `policy`.
///
/// The predicate is an equality on purpose: both waits in Algorithm 2
/// compare a thread-local replica against the shared state, and equality
/// (not >=) is what keeps the protocol correct for writes that reset
/// nb_reads_since_write to zero.
///
/// A non-null `spins` receives the number of wait rounds performed — the
/// telemetry feed for the obs spin-iteration counter. The tally is
/// accumulated in a local and flushed on exit so the hot loop stays free
/// of extra memory traffic.
template <typename T>
void wait_until_equal(const std::atomic<T>& word, T expected,
                      WaitPolicy policy,
                      std::uint64_t* spins = nullptr) noexcept {
  if (word.load(std::memory_order_acquire) == expected) return;
  Backoff backoff;
  std::uint64_t rounds = 0;
  for (;;) {
    ++rounds;
    switch (policy) {
      case WaitPolicy::kSpin:
        cpu_pause();
        break;
      case WaitPolicy::kSpinYield:
        if (!backoff.spin()) backoff.yield();
        break;
      case WaitPolicy::kBlock: {
        if (backoff.spin()) break;
        // atomic::wait needs the *current* (unwanted) value; re-read it to
        // avoid a missed wakeup between the check and the park.
        T current = word.load(std::memory_order_acquire);
        if (current == expected) {
          if (spins != nullptr) *spins += rounds;
          return;
        }
        word.wait(current, std::memory_order_acquire);
        break;
      }
    }
    if (word.load(std::memory_order_acquire) == expected) {
      if (spins != nullptr) *spins += rounds;
      return;
    }
  }
}

/// Abortable wait: like wait_until_equal, but additionally gives up when
/// `*abort` becomes true — the progress watchdog's escape hatch for waits
/// whose expected value will never arrive. Returns true when equality was
/// reached, false on abort. A null abort delegates to the plain wait.
///
/// With a non-null abort the kBlock policy degrades to a spin/yield poll:
/// a futex park cannot observe the abort flag, and the watchdog must be
/// able to unblock every waiter without touching the protocol words.
template <typename T>
bool wait_until_equal_or(const std::atomic<T>& word, T expected,
                         WaitPolicy policy, const std::atomic<bool>* abort,
                         std::uint64_t* spins = nullptr) noexcept {
  if (abort == nullptr) {
    wait_until_equal(word, expected, policy, spins);
    return true;
  }
  if (word.load(std::memory_order_acquire) == expected) return true;
  Backoff backoff;
  std::uint64_t rounds = 0;
  for (;;) {
    ++rounds;
    if (abort->load(std::memory_order_acquire)) {
      if (spins != nullptr) *spins += rounds;
      return false;
    }
    if (policy == WaitPolicy::kSpin) {
      cpu_pause();
    } else if (!backoff.spin()) {
      backoff.yield();
    }
    if (word.load(std::memory_order_acquire) == expected) {
      if (spins != nullptr) *spins += rounds;
      return true;
    }
  }
}

/// Blocks until `word.load(acquire) != old`, following `policy`.
///
/// The inequality predicate is the doorbell/version shape: producers only
/// ever *bump* the word (monotone fetch_add), so "changed since I sampled
/// it" is exactly "something was published after my sample". Unlike the
/// equality wait, kBlock can park directly on the sampled value —
/// std::atomic::wait(old) already returns when the word differs from old,
/// so there is no check/park re-read gap to close.
template <typename T>
void wait_until_changed(const std::atomic<T>& word, T old, WaitPolicy policy,
                        std::uint64_t* spins = nullptr) noexcept {
  if (word.load(std::memory_order_acquire) != old) return;
  Backoff backoff;
  std::uint64_t rounds = 0;
  for (;;) {
    ++rounds;
    switch (policy) {
      case WaitPolicy::kSpin:
        cpu_pause();
        break;
      case WaitPolicy::kSpinYield:
        if (!backoff.spin()) backoff.yield();
        break;
      case WaitPolicy::kBlock:
        if (backoff.spin()) break;
        word.wait(old, std::memory_order_acquire);
        break;
    }
    if (word.load(std::memory_order_acquire) != old) {
      if (spins != nullptr) *spins += rounds;
      return;
    }
  }
}

/// Abortable variant of wait_until_changed, mirroring wait_until_equal_or:
/// returns true when the word moved, false on abort. With a non-null abort
/// the kBlock policy degrades to a spin/yield poll — a futex park cannot
/// observe the abort flag, and the watchdog must be able to unblock every
/// waiter without touching the protocol words.
template <typename T>
bool wait_until_changed_or(const std::atomic<T>& word, T old,
                           WaitPolicy policy, const std::atomic<bool>* abort,
                           std::uint64_t* spins = nullptr) noexcept {
  if (abort == nullptr) {
    wait_until_changed(word, old, policy, spins);
    return true;
  }
  if (word.load(std::memory_order_acquire) != old) return true;
  Backoff backoff;
  std::uint64_t rounds = 0;
  for (;;) {
    ++rounds;
    if (abort->load(std::memory_order_acquire)) {
      if (spins != nullptr) *spins += rounds;
      return false;
    }
    if (policy == WaitPolicy::kSpin) {
      cpu_pause();
    } else if (!backoff.spin()) {
      backoff.yield();
    }
    if (word.load(std::memory_order_acquire) != old) {
      if (spins != nullptr) *spins += rounds;
      return true;
    }
  }
}

/// Store + wake for the kBlock policy. Release ordering publishes all task
/// side effects before dependents are allowed through.
template <typename T>
void store_and_notify(std::atomic<T>& word, T value, WaitPolicy policy) noexcept {
  word.store(value, std::memory_order_release);
  if (policy == WaitPolicy::kBlock) word.notify_all();
}

/// Human-readable policy name for bench/report output.
constexpr const char* to_string(WaitPolicy p) noexcept {
  switch (p) {
    case WaitPolicy::kSpin: return "spin";
    case WaitPolicy::kSpinYield: return "spin-yield";
    case WaitPolicy::kBlock: return "block";
  }
  return "?";
}

}  // namespace rio::support
