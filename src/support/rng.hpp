// Deterministic pseudo-random number generation.
//
// The synthetic workloads of Section 5 (random read/write dependencies) and
// the property-based tests need fast, seedable, reproducible randomness that
// is identical across platforms — std::mt19937 would do, but xoshiro256**
// is both faster and the de-facto standard in HPC micro-benchmarks. All
// task-graph generators take an explicit seed so experiments are replayable.
#pragma once

#include <array>
#include <cstdint>
#include <limits>

namespace rio::support {

/// SplitMix64: used to expand a single 64-bit seed into the xoshiro state.
/// (Recommended seeding procedure from the xoshiro authors.)
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  constexpr std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256** 1.0 by Blackman & Vigna (public domain reference algorithm).
/// Satisfies UniformRandomBitGenerator so it plugs into <random>
/// distributions where needed.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit constexpr Xoshiro256(std::uint64_t seed = 0x9E3779B97F4A7C15ULL) noexcept {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm.next();
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  constexpr result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Unbiased integer in [0, bound) via Lemire's multiply-shift rejection.
  constexpr std::uint64_t bounded(std::uint64_t bound) noexcept {
    if (bound == 0) return 0;
    std::uint64_t x = (*this)();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < bound) {
      const std::uint64_t threshold = (0 - bound) % bound;
      while (lo < threshold) {
        x = (*this)();
        m = static_cast<__uint128_t>(x) * bound;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform double in [0, 1).
  constexpr double uniform() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

}  // namespace rio::support
