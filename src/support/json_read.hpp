// Minimal recursive-descent JSON reader — just enough to load the tree's
// own versioned reports (rio.obs.v1 etc.) back in, with no external
// dependency. Numbers are held as doubles: every count in those reports
// is well below 2^53, and the consumers (rioflow obs-diff) compute
// relative drifts anyway. Writers live in json.hpp; keeping the reader
// separate means exporters do not pay for the parse code.
#pragma once

#include <cctype>
#include <cstddef>
#include <cstdlib>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace rio::support {

class JsonValue {
 public:
  enum class Kind : unsigned char { kNull, kBool, kNumber, kString, kObject, kArray };

  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string str;
  std::vector<std::pair<std::string, JsonValue>> members;  ///< objects
  std::vector<JsonValue> items;                            ///< arrays

  /// Object member lookup; nullptr when absent or not an object.
  [[nodiscard]] const JsonValue* find(std::string_view key) const {
    for (const auto& [k, v] : members)
      if (k == key) return &v;
    return nullptr;
  }
  [[nodiscard]] double num_or(double fallback) const {
    return kind == Kind::kNumber ? number : fallback;
  }
  [[nodiscard]] std::string_view str_or(std::string_view fallback) const {
    return kind == Kind::kString ? std::string_view(str) : fallback;
  }
};

namespace detail {

struct JsonParser {
  const char* begin;
  const char* p;
  const char* end;
  std::string* error;

  void skip_ws() {
    while (p < end && (*p == ' ' || *p == '\t' || *p == '\n' || *p == '\r'))
      ++p;
  }

  bool fail(const char* msg) {
    if (error->empty()) {
      *error = msg;
      *error += " at offset ";
      *error += std::to_string(static_cast<std::size_t>(p - begin));
    }
    return false;
  }

  bool literal(const char* lit) {
    const char* q = lit;
    const char* save = p;
    while (*q != '\0') {
      if (p >= end || *p != *q) {
        p = save;
        return false;
      }
      ++p;
      ++q;
    }
    return true;
  }

  bool parse_string(std::string& out) {
    if (p >= end || *p != '"') return fail("expected string");
    ++p;
    out.clear();
    while (p < end && *p != '"') {
      char c = *p++;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (p >= end) return fail("truncated escape");
      const char e = *p++;
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (end - p < 4) return fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = *p++;
            code <<= 4;
            if (h >= '0' && h <= '9')
              code += static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f')
              code += static_cast<unsigned>(h - 'a') + 10;
            else if (h >= 'A' && h <= 'F')
              code += static_cast<unsigned>(h - 'A') + 10;
            else
              return fail("bad \\u escape");
          }
          // Our own writers only emit \u00xx control escapes; anything
          // wider degrades to '?' rather than growing a UTF-8 encoder.
          out += code < 0x80 ? static_cast<char>(code) : '?';
          break;
        }
        default: return fail("unknown escape");
      }
    }
    if (p >= end) return fail("unterminated string");
    ++p;  // closing quote
    return true;
  }

  bool parse_value(JsonValue& out, int depth) {
    if (depth > 64) return fail("nesting too deep");
    skip_ws();
    if (p >= end) return fail("unexpected end of input");
    if (*p == '{') {
      ++p;
      out.kind = JsonValue::Kind::kObject;
      skip_ws();
      if (p < end && *p == '}') {
        ++p;
        return true;
      }
      for (;;) {
        skip_ws();
        std::string key;
        if (!parse_string(key)) return false;
        skip_ws();
        if (p >= end || *p != ':') return fail("expected ':'");
        ++p;
        JsonValue v;
        if (!parse_value(v, depth + 1)) return false;
        out.members.emplace_back(std::move(key), std::move(v));
        skip_ws();
        if (p < end && *p == ',') {
          ++p;
          continue;
        }
        if (p < end && *p == '}') {
          ++p;
          return true;
        }
        return fail("expected ',' or '}'");
      }
    }
    if (*p == '[') {
      ++p;
      out.kind = JsonValue::Kind::kArray;
      skip_ws();
      if (p < end && *p == ']') {
        ++p;
        return true;
      }
      for (;;) {
        JsonValue v;
        if (!parse_value(v, depth + 1)) return false;
        out.items.push_back(std::move(v));
        skip_ws();
        if (p < end && *p == ',') {
          ++p;
          continue;
        }
        if (p < end && *p == ']') {
          ++p;
          return true;
        }
        return fail("expected ',' or ']'");
      }
    }
    if (*p == '"') {
      out.kind = JsonValue::Kind::kString;
      return parse_string(out.str);
    }
    if (literal("true")) {
      out.kind = JsonValue::Kind::kBool;
      out.boolean = true;
      return true;
    }
    if (literal("false")) {
      out.kind = JsonValue::Kind::kBool;
      out.boolean = false;
      return true;
    }
    if (literal("null")) {
      out.kind = JsonValue::Kind::kNull;
      return true;
    }
    // Number: delegate to strtod over a bounded copy.
    const char* start = p;
    while (p < end && (std::isdigit(static_cast<unsigned char>(*p)) != 0 ||
                       *p == '-' || *p == '+' || *p == '.' || *p == 'e' ||
                       *p == 'E'))
      ++p;
    if (p == start) return fail("unexpected character");
    const std::string num(start, p);
    char* parsed_end = nullptr;
    out.number = std::strtod(num.c_str(), &parsed_end);
    if (parsed_end == num.c_str() || *parsed_end != '\0')
      return fail("malformed number");
    out.kind = JsonValue::Kind::kNumber;
    return true;
  }
};

}  // namespace detail

/// Parses `text` into `out`. Returns false and fills `error` on the first
/// syntax problem; trailing non-whitespace after the document is an error.
inline bool json_parse(std::string_view text, JsonValue& out,
                       std::string& error) {
  error.clear();
  detail::JsonParser parser{text.data(), text.data(),
                            text.data() + text.size(), &error};
  if (!parser.parse_value(out, 0)) {
    if (error.empty()) error = "parse error";
    return false;
  }
  parser.skip_ws();
  if (parser.p != parser.end) {
    error = "trailing characters after JSON document";
    return false;
  }
  return true;
}

}  // namespace rio::support
