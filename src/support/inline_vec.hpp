// Small-buffer vector.
//
// A task's access list has 1–3 entries for every workload in the paper
// (2 reads + 1 write in the random-dependency experiment is the maximum).
// Storing them inline avoids a heap allocation per task, which matters when
// the whole point of the runtime is sub-microsecond per-task overhead.
#pragma once

#include <cstddef>
#include <initializer_list>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

#include "support/assert.hpp"

namespace rio::support {

/// Vector with inline storage for N elements, spilling to the heap beyond.
/// Deliberately minimal: the subset of std::vector the runtimes need.
template <typename T, std::size_t N>
class InlineVec {
  static_assert(N > 0);

 public:
  InlineVec() noexcept = default;

  InlineVec(std::initializer_list<T> init) {
    for (const T& v : init) push_back(v);
  }

  InlineVec(const InlineVec& other) {
    reserve(other.size_);
    for (std::size_t i = 0; i < other.size_; ++i)
      ::new (static_cast<void*>(data() + i)) T(other.data()[i]);
    size_ = other.size_;
  }

  InlineVec(InlineVec&& other) noexcept(std::is_nothrow_move_constructible_v<T>) {
    if (other.heap_) {
      heap_ = other.heap_;
      capacity_ = other.capacity_;
      size_ = other.size_;
      other.heap_ = nullptr;
      other.capacity_ = N;
      other.size_ = 0;
    } else {
      for (std::size_t i = 0; i < other.size_; ++i)
        ::new (static_cast<void*>(data() + i)) T(std::move(other.data()[i]));
      size_ = other.size_;
      other.clear();
    }
  }

  InlineVec& operator=(const InlineVec& other) {
    if (this != &other) {
      clear();
      reserve(other.size_);
      for (std::size_t i = 0; i < other.size_; ++i)
        ::new (static_cast<void*>(data() + i)) T(other.data()[i]);
      size_ = other.size_;
    }
    return *this;
  }

  InlineVec& operator=(InlineVec&& other) noexcept(
      std::is_nothrow_move_constructible_v<T>) {
    if (this != &other) {
      this->~InlineVec();
      ::new (static_cast<void*>(this)) InlineVec(std::move(other));
    }
    return *this;
  }

  ~InlineVec() {
    clear();
    if (heap_) ::operator delete(heap_);
  }

  void push_back(const T& v) { emplace_back(v); }
  void push_back(T&& v) { emplace_back(std::move(v)); }

  template <typename... Args>
  T& emplace_back(Args&&... args) {
    if (size_ == capacity_) grow(capacity_ * 2);
    T* slot = data() + size_;
    ::new (static_cast<void*>(slot)) T(std::forward<Args>(args)...);
    ++size_;
    return *slot;
  }

  void reserve(std::size_t cap) {
    if (cap > capacity_) grow(cap);
  }

  void clear() noexcept {
    for (std::size_t i = 0; i < size_; ++i) data()[i].~T();
    size_ = 0;
  }

  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] bool is_inline() const noexcept { return heap_ == nullptr; }

  T* data() noexcept {
    return heap_ ? heap_ : std::launder(reinterpret_cast<T*>(inline_storage_));
  }
  const T* data() const noexcept {
    return heap_ ? heap_
                 : std::launder(reinterpret_cast<const T*>(inline_storage_));
  }

  T& operator[](std::size_t i) noexcept {
    RIO_DEBUG_ASSERT(i < size_);
    return data()[i];
  }
  const T& operator[](std::size_t i) const noexcept {
    RIO_DEBUG_ASSERT(i < size_);
    return data()[i];
  }

  T* begin() noexcept { return data(); }
  T* end() noexcept { return data() + size_; }
  const T* begin() const noexcept { return data(); }
  const T* end() const noexcept { return data() + size_; }

 private:
  void grow(std::size_t new_cap) {
    if (new_cap < size_ + 1) new_cap = size_ + 1;
    T* fresh = static_cast<T*>(::operator new(new_cap * sizeof(T)));
    for (std::size_t i = 0; i < size_; ++i) {
      ::new (static_cast<void*>(fresh + i)) T(std::move(data()[i]));
      data()[i].~T();
    }
    if (heap_) ::operator delete(heap_);
    heap_ = fresh;
    capacity_ = new_cap;
  }

  alignas(T) unsigned char inline_storage_[N * sizeof(T)];
  T* heap_ = nullptr;
  std::size_t size_ = 0;
  std::size_t capacity_ = N;
};

}  // namespace rio::support
