// Deterministic fault injection — the chaos half of the resilience layer.
//
// A FaultPlan describes WHICH faults a run should experience (transient
// task-body throws, worker stall windows), a FaultInjector answers the
// per-task questions at execution time. Decisions are pure functions of
// (seed, task id, attempt) via a SplitMix64-style hash, NOT of thread
// interleaving: the same plan injects the same faults into the real
// runtimes, the pruned replay and the discrete-event simulator, which is
// what makes fault sweeps (rioflow chaos, sim/params.hpp) reproducible.
//
// N-shot budgets (max_throws / max_stalls) are the only shared-mutable
// state; they are atomics, so one injector may be shared by all workers of
// a run — or by several runs when a sweep wants a global fault budget.
#pragma once

#include <atomic>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "support/clock.hpp"
#include "support/wait.hpp"

namespace rio::support {

/// Retry knob carried by every runtime config. max_attempts counts the
/// initial execution: 1 means fail fast (today's first-exception-wins
/// cancellation), >1 enables snapshot/rollback/re-run of failing bodies.
struct RetryPolicy {
  std::uint32_t max_attempts = 1;
  std::uint64_t backoff_ns = 0;  ///< pause between attempts (0 = immediate)

  /// Per-task attempt overrides: a task listed here gets its own budget
  /// instead of max_attempts (a flaky-but-cheap task may retry 5 times
  /// while an expensive one fails fast). Small and linear-scanned: retry
  /// paths are already off the fast path.
  std::vector<std::pair<std::uint64_t, std::uint32_t>> task_attempts;

  [[nodiscard]] bool enabled() const noexcept {
    if (max_attempts > 1) return true;
    for (const auto& [task, limit] : task_attempts)
      if (limit > 1) return true;
    return false;
  }

  /// Attempt budget for `task` (>= 1): the per-task override when listed,
  /// max_attempts otherwise.
  [[nodiscard]] std::uint32_t attempts_for(std::uint64_t task) const noexcept {
    for (const auto& [t, limit] : task_attempts)
      if (t == task) return limit > 0 ? limit : 1;
    return max_attempts > 0 ? max_attempts : 1;
  }
};

/// Declarative fault schedule. Rates draw per (task, attempt) from `seed`;
/// the targeted lists fire unconditionally (subject to the budgets), which
/// is how tests pin a fault onto one specific task.
struct FaultPlan {
  std::uint64_t seed = 1;

  // Transient task-body throws.
  double throw_rate = 0.0;        ///< P(throw) per (task, attempt)
  std::uint32_t max_throws = 0;   ///< N-shot budget (0 = unlimited)
  std::vector<std::uint64_t> throw_tasks;  ///< always-throw task ids...
  std::uint32_t throw_attempts = 1;        ///< ...on attempts <= this

  // Worker stall windows (the body hangs for stall_ns before running).
  double stall_rate = 0.0;        ///< P(stall) per task
  std::uint64_t stall_ns = 0;     ///< stall duration when one fires
  std::uint32_t max_stalls = 0;   ///< N-shot budget (0 = unlimited)
  std::vector<std::uint64_t> stall_tasks;  ///< always-stall task ids

  // Permanent worker death (docs/robustness.md "worker loss"): after the
  // task's body runs, the executing worker exits its loop and never
  // returns — distinct from a bounded stall window. Recovery is the
  // supervisor's job (engine/supervisor.hpp); a crash with no supervisor
  // escalates as stf::WorkerLost.
  double crash_rate = 0.0;        ///< P(crash) per task
  std::uint32_t max_crashes = 0;  ///< N-shot budget (0 = unlimited)
  std::vector<std::uint64_t> crash_tasks;  ///< always-crash task ids

  /// True when the plan can inject anything at all — engines skip the
  /// resilience path entirely for empty plans.
  [[nodiscard]] bool any() const noexcept {
    return throw_rate > 0.0 || stall_rate > 0.0 || crash_rate > 0.0 ||
           !throw_tasks.empty() || !stall_tasks.empty() ||
           !crash_tasks.empty();
  }

  /// True when the plan can kill a worker — engines arm the death board
  /// and a default watchdog only for these plans.
  [[nodiscard]] bool crash_armed() const noexcept {
    return crash_rate > 0.0 || !crash_tasks.empty();
  }
};

/// The exception a transient injected fault raises inside a task body.
class InjectedFault : public std::runtime_error {
 public:
  InjectedFault(std::uint64_t task, std::uint32_t attempt)
      : std::runtime_error("injected transient fault (task " +
                           std::to_string(task) + ", attempt " +
                           std::to_string(attempt) + ")"),
        task_(task),
        attempt_(attempt) {}

  [[nodiscard]] std::uint64_t task() const noexcept { return task_; }
  [[nodiscard]] std::uint32_t attempt() const noexcept { return attempt_; }

 private:
  std::uint64_t task_;
  std::uint32_t attempt_;
};

/// Answers a plan's per-task questions. Thread-safe; share one instance
/// across the workers of a run.
class FaultInjector {
 public:
  explicit FaultInjector(FaultPlan plan) : plan_(std::move(plan)) {}
  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  /// Should attempt `attempt` (1-based) of `task` throw an InjectedFault?
  [[nodiscard]] bool should_throw(std::uint64_t task,
                                  std::uint32_t attempt) noexcept {
    bool hit = false;
    for (std::uint64_t t : plan_.throw_tasks)
      hit |= (t == task && attempt <= plan_.throw_attempts);
    if (!hit && plan_.throw_rate > 0.0)
      hit = hash_uniform(plan_.seed, task, attempt, 0x7468726f77ULL) <
            plan_.throw_rate;
    if (!hit) return false;
    if (!take_shot(throws_used_, plan_.max_throws)) return false;
    injected_throws_.fetch_add(1, std::memory_order_relaxed);
    return true;
  }

  /// Stall window (ns) to impose before executing `task`; 0 = none.
  [[nodiscard]] std::uint64_t stall_ns(std::uint64_t task) noexcept {
    bool hit = false;
    for (std::uint64_t t : plan_.stall_tasks) hit |= (t == task);
    if (!hit && plan_.stall_rate > 0.0)
      hit = hash_uniform(plan_.seed, task, 0, 0x7374616c6cULL) <
            plan_.stall_rate;
    if (!hit || plan_.stall_ns == 0) return 0;
    if (!take_shot(stalls_used_, plan_.max_stalls)) return 0;
    injected_stalls_.fetch_add(1, std::memory_order_relaxed);
    return plan_.stall_ns;
  }

  /// Should the worker that just ran `task` die permanently? Decisions are
  /// attempt-independent (a crash ends the worker, not the attempt) and the
  /// budget is shared across recovery attempts: a supervisor that resumes
  /// the run reuses this injector, so a replayed task cannot crash the
  /// replacement assignment forever once the budget is spent.
  [[nodiscard]] bool should_crash(std::uint64_t task) noexcept {
    bool hit = false;
    for (std::uint64_t t : plan_.crash_tasks) hit |= (t == task);
    if (!hit && plan_.crash_rate > 0.0)
      hit = hash_uniform(plan_.seed, task, 0, 0x6372617368ULL) <
            plan_.crash_rate;
    if (!hit) return false;
    if (!take_shot(crashes_used_, plan_.max_crashes)) return false;
    injected_crashes_.fetch_add(1, std::memory_order_relaxed);
    return true;
  }

  [[nodiscard]] std::uint64_t injected_throws() const noexcept {
    return injected_throws_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t injected_stalls() const noexcept {
    return injected_stalls_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t injected_crashes() const noexcept {
    return injected_crashes_.load(std::memory_order_relaxed);
  }

  [[nodiscard]] const FaultPlan& plan() const noexcept { return plan_; }

 private:
  /// Uniform double in [0, 1) from (seed, a, b, salt) — a stateless
  /// SplitMix64 finalizer, so decisions are interleaving-independent.
  [[nodiscard]] static double hash_uniform(std::uint64_t seed, std::uint64_t a,
                                           std::uint64_t b,
                                           std::uint64_t salt) noexcept {
    std::uint64_t z = seed + 0x9e3779b97f4a7c15ULL * (a + 1) +
                      0xbf58476d1ce4e5b9ULL * (b + 1) + salt;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    z ^= z >> 31;
    return static_cast<double>(z >> 11) * 0x1.0p-53;
  }

  /// Consumes one shot of an N-shot budget (0 = unlimited).
  [[nodiscard]] bool take_shot(std::atomic<std::uint32_t>& used,
                               std::uint32_t budget) noexcept {
    if (budget == 0) return true;
    return used.fetch_add(1, std::memory_order_relaxed) < budget;
  }

  FaultPlan plan_;
  std::atomic<std::uint32_t> throws_used_{0};
  std::atomic<std::uint32_t> stalls_used_{0};
  std::atomic<std::uint32_t> crashes_used_{0};
  std::atomic<std::uint64_t> injected_throws_{0};
  std::atomic<std::uint64_t> injected_stalls_{0};
  std::atomic<std::uint64_t> injected_crashes_{0};
};

/// Busy-waits for `ns` nanoseconds, giving up early when `*abort` becomes
/// true — an injected stall must stay interruptible or the watchdog's
/// StallError could never drain the run.
inline void stall_for(std::uint64_t ns,
                      const std::atomic<bool>* abort) noexcept {
  const std::uint64_t until = monotonic_ns() + ns;
  while (monotonic_ns() < until) {
    if (abort != nullptr && abort->load(std::memory_order_acquire)) return;
    cpu_pause();
  }
}

}  // namespace rio::support
