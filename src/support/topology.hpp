// CPU topology discovery and thread pinning.
//
// The paper's artifact depends on hwloc for binding workers to cores; this
// is the minimal substitute: count online CPUs, pin threads with the
// native affinity call. Pinning matters for the decentralized model —
// worker-private local state only stays private to a cache if the worker
// stays on its core. On hosts without affinity support (or a single CPU)
// everything degrades to a no-op gracefully.
#pragma once

#include <cstdint>

namespace rio::support {

struct CpuTopology {
  std::uint32_t logical_cpus = 1;  ///< online logical processors
};

/// Detects the host topology (never fails; falls back to 1 CPU).
CpuTopology detect_topology() noexcept;

/// Pins the calling thread to `cpu` (logical index). Returns false when the
/// cpu does not exist or the platform refuses.
bool pin_current_thread(std::uint32_t cpu) noexcept;

/// Clears the calling thread's pinning (allow all CPUs). Returns false on
/// unsupported platforms.
bool unpin_current_thread() noexcept;

}  // namespace rio::support
