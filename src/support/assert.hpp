// Assertion macros.
//
// RIO_ASSERT is active in all build types: the invariants it guards (the
// sequential-consistency protocol state, simulator event ordering) are cheap
// integer comparisons whose cost is irrelevant next to what they protect.
// RIO_DEBUG_ASSERT compiles out in release builds and is used on hot paths.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace rio::support::detail {
[[noreturn]] inline void assert_fail(const char* expr, const char* file,
                                     int line, const char* msg) {
  std::fprintf(stderr, "RIO_ASSERT failed: %s\n  at %s:%d\n  %s\n", expr, file,
               line, msg ? msg : "");
  std::abort();
}
}  // namespace rio::support::detail

#define RIO_ASSERT(expr)                                                     \
  do {                                                                       \
    if (!(expr))                                                             \
      ::rio::support::detail::assert_fail(#expr, __FILE__, __LINE__, nullptr); \
  } while (0)

#define RIO_ASSERT_MSG(expr, msg)                                            \
  do {                                                                       \
    if (!(expr))                                                             \
      ::rio::support::detail::assert_fail(#expr, __FILE__, __LINE__, (msg)); \
  } while (0)

#ifdef NDEBUG
#define RIO_DEBUG_ASSERT(expr) ((void)0)
#else
#define RIO_DEBUG_ASSERT(expr) RIO_ASSERT(expr)
#endif
