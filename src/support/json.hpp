// Tiny JSON / CSV string helpers shared by every exporter in the tree.
//
// Each exporter used to carry its own escape(); the trace exporter's copy
// forgot control characters below 0x20 and produced invalid JSON for task
// names containing e.g. '\t'. Centralising the rules here keeps the fix in
// one place: JSON strings escape the two mandatory characters plus ALL
// control characters (with shorthands for the common whitespace ones),
// doubles round-trip via %.17g, and CSV cells follow RFC 4180 quoting.
#pragma once

#include <cstdio>
#include <string>
#include <string_view>

namespace rio::support {

/// Escapes `s` for embedding inside a JSON string literal (surrounding
/// quotes NOT included). All control chars < 0x20 are escaped — RFC 8259
/// requires it, and Perfetto rejects traces that skip it.
inline std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char ch : s) {
    switch (ch) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(ch)));
          out += buf;
        } else {
          out += ch;
        }
    }
  }
  return out;
}

/// `s` as a complete JSON string literal, quotes included.
inline std::string json_quote(std::string_view s) {
  std::string out = "\"";
  out += json_escape(s);
  out += '"';
  return out;
}

/// A double formatted so it round-trips exactly (%.17g): the obs exporter
/// relies on this so e_p / e_r written to obs.json compare bit-for-bit
/// with the values recomputed from the same run.
inline std::string json_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return {buf};
}

/// RFC-4180 CSV cell: quoted iff it contains a delimiter, quote or newline;
/// embedded quotes are doubled.
inline std::string csv_quote(std::string_view s) {
  bool needs = false;
  for (char ch : s)
    if (ch == ',' || ch == '"' || ch == '\n' || ch == '\r') needs = true;
  if (!needs) return std::string(s);
  std::string out = "\"";
  for (char ch : s) {
    if (ch == '"')
      out += "\"\"";
    else
      out += ch;
  }
  out += '"';
  return out;
}

}  // namespace rio::support
