// Progress watchdog — turns a hung run into a diagnosable failure.
//
// The equality waits of Algorithm 2 (and coor's blocking queue pops) hang
// forever when a counter can never reach its expected value — a protocol
// bug, a crashed worker, or an injected stall. The watchdog is an optional
// monitor thread that samples a caller-supplied progress counter; when it
// stays frozen for a full window it captures a diagnostic (while the stuck
// state is still observable), then triggers an abort callback that unblocks
// every waiter. The engine then fails the run with stf::StallError instead
// of hanging the process.
//
// WorkerProbe is the per-worker observability slot the diagnostic reads:
// engines publish what each worker is doing (executing / waiting on which
// data, expecting which counter values) with relaxed atomics — a few plain
// stores per task, cheap enough to keep on whenever the watchdog is.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <utility>

#include "support/clock.hpp"

namespace rio::support {

/// What a worker is doing right now, per its probe.
enum class ProbeState : std::uint8_t {
  kIdle = 0,       ///< before the start barrier / between tasks
  kWaiting = 1,    ///< blocked in a dependency wait
  kExecuting = 2,  ///< running a task body
  kDone = 3,       ///< finished its walk of the flow
};

constexpr const char* to_string(ProbeState s) noexcept {
  switch (s) {
    case ProbeState::kIdle: return "idle";
    case ProbeState::kWaiting: return "waiting";
    case ProbeState::kExecuting: return "executing";
    case ProbeState::kDone: return "done";
  }
  return "?";
}

/// One worker's observability slot. Own cache line: the owner hammers it
/// with relaxed stores, the watchdog reads it rarely.
struct alignas(64) WorkerProbe {
  std::atomic<std::uint64_t> progress{0};  ///< tasks executed by this worker
  std::atomic<std::uint64_t> task{~0ULL};  ///< task currently held
  std::atomic<std::uint32_t> data{~0U};    ///< data object being waited on
  std::atomic<std::uint64_t> expected_writer{0};  ///< protocol expectation
  std::atomic<std::uint64_t> expected_reads{0};   ///< protocol expectation
  std::atomic<std::uint8_t> state{0};

  void set_state(ProbeState s) noexcept {
    state.store(static_cast<std::uint8_t>(s), std::memory_order_relaxed);
  }
  [[nodiscard]] ProbeState get_state() const noexcept {
    return static_cast<ProbeState>(state.load(std::memory_order_relaxed));
  }
};

/// The monitor thread. Construction starts it; stop() (or the destructor)
/// joins it. Exactly one of two things happens: the engine finishes and
/// calls stop(), or the window expires with frozen progress and the
/// watchdog captures `diagnose()` then runs `on_fire()`.
class Watchdog {
 public:
  /// `tripwire` (optional) is polled alongside progress: when it returns
  /// true the watchdog fires IMMEDIATELY without waiting for a full
  /// no-progress window — how a recorded worker death aborts a run whose
  /// survivors may still be making progress on independent tasks.
  Watchdog(std::uint64_t window_ns, std::function<std::uint64_t()> progress,
           std::function<std::string()> diagnose,
           std::function<void()> on_fire,
           std::function<bool()> tripwire = nullptr)
      : window_ns_(window_ns),
        progress_(std::move(progress)),
        diagnose_(std::move(diagnose)),
        on_fire_(std::move(on_fire)),
        tripwire_(std::move(tripwire)),
        thread_([this] { monitor(); }) {}

  Watchdog(const Watchdog&) = delete;
  Watchdog& operator=(const Watchdog&) = delete;
  ~Watchdog() { stop(); }

  void stop() {
    {
      std::lock_guard lock(mu_);
      done_ = true;
    }
    cv_.notify_all();
    if (thread_.joinable()) thread_.join();
  }

  /// True when the no-progress window expired (valid after stop()).
  [[nodiscard]] bool fired() const noexcept {
    return fired_.load(std::memory_order_acquire);
  }

  /// The captured per-worker diagnostic (valid after stop(), when fired).
  [[nodiscard]] const std::string& diagnostic() const noexcept {
    return diagnostic_;
  }

 private:
  void monitor() {
    // Poll well inside the window so a stall is detected within ~1.1x of
    // the configured window rather than up to 2x.
    const auto poll = std::chrono::nanoseconds(
        std::max<std::uint64_t>(window_ns_ / 8, 1'000'000));
    std::uint64_t last = progress_();
    std::uint64_t last_change = monotonic_ns();
    std::unique_lock lock(mu_);
    for (;;) {
      if (cv_.wait_for(lock, poll, [this] { return done_; })) return;
      const bool tripped = tripwire_ && tripwire_();
      const std::uint64_t now_progress = progress_();
      const std::uint64_t now = monotonic_ns();
      if (!tripped) {
        if (now_progress != last) {
          last = now_progress;
          last_change = now;
          continue;
        }
        if (now - last_change < window_ns_) continue;
      }
      // Frozen for a full window. Capture the diagnostic FIRST — the abort
      // below wakes the waiters and destroys the evidence.
      diagnostic_ = diagnose_ ? diagnose_() : std::string();
      fired_.store(true, std::memory_order_release);
      if (on_fire_) on_fire_();
      return;
    }
  }

  std::uint64_t window_ns_;
  std::function<std::uint64_t()> progress_;
  std::function<std::string()> diagnose_;
  std::function<void()> on_fire_;
  std::function<bool()> tripwire_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool done_ = false;
  std::atomic<bool> fired_{false};
  std::string diagnostic_;
  std::thread thread_;
};

}  // namespace rio::support
