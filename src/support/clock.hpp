// Time sources.
//
// The efficiency-decomposition methodology of Section 2.3 needs two kinds of
// time per worker: wall-clock intervals (to bucket task / idle / runtime
// phases) and CPU time (the paper derives RIO idle time from the CPU-time
// share because its blocking waits do not consume CPU). Both are wrapped
// here behind cheap, testable helpers.
#pragma once

#include <chrono>
#include <cstdint>
#include <ctime>

namespace rio::support {

/// Nanoseconds since an arbitrary epoch; monotonic, steady across threads.
inline std::uint64_t monotonic_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// CPU time consumed by the *calling thread*, in nanoseconds. Used to
/// separate idle (blocked, no CPU burn) from busy phases without dumping
/// traces — the paper's non-intrusive measurement for RIO (Section 5.1).
inline std::uint64_t thread_cpu_ns() noexcept {
#if defined(__linux__)
  timespec ts{};
  clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts);
  return static_cast<std::uint64_t>(ts.tv_sec) * 1'000'000'000ULL +
         static_cast<std::uint64_t>(ts.tv_nsec);
#else
  return monotonic_ns();
#endif
}

/// Scoped stopwatch accumulating into a caller-owned counter. Zero overhead
/// when the counter is local; used to attribute time to the tau buckets.
class ScopedTimer {
 public:
  explicit ScopedTimer(std::uint64_t& sink) noexcept
      : sink_(sink), start_(monotonic_ns()) {}
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;
  ~ScopedTimer() { sink_ += monotonic_ns() - start_; }

 private:
  std::uint64_t& sink_;
  std::uint64_t start_;
};

/// Simple start/stop stopwatch for benches and examples.
class Stopwatch {
 public:
  Stopwatch() : start_(monotonic_ns()) {}
  void reset() noexcept { start_ = monotonic_ns(); }
  [[nodiscard]] std::uint64_t elapsed_ns() const noexcept {
    return monotonic_ns() - start_;
  }
  [[nodiscard]] double elapsed_s() const noexcept {
    return static_cast<double>(elapsed_ns()) * 1e-9;
  }

 private:
  std::uint64_t start_;
};

}  // namespace rio::support
