// Cache-line alignment utilities.
//
// Shared synchronization state that is written by one thread and polled by
// others must live on its own cache line, otherwise unrelated writes cause
// coherence traffic ("false sharing") that dominates fine-grained runtime
// overhead — exactly the regime the RIO execution model targets.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <new>
#include <type_traits>

namespace rio::support {

/// Size of a destructive-interference-free block. We pin this to 64 bytes
/// (the line size of every x86-64 and most AArch64 parts) instead of
/// std::hardware_destructive_interference_size, whose value is ABI-fragile
/// and triggers -Winterference-size on GCC.
inline constexpr std::size_t kCacheLineSize = 64;

/// Wraps a T so that it occupies (at least) one full cache line and starts
/// on a cache-line boundary. Intended for per-worker counters and for the
/// shared state words of data objects.
template <typename T>
struct alignas(kCacheLineSize) CacheAligned {
  static_assert(!std::is_reference_v<T>);

  T value{};

  CacheAligned() = default;
  explicit CacheAligned(const T& v) : value(v) {}
  explicit CacheAligned(T&& v) : value(static_cast<T&&>(v)) {}

  T& operator*() noexcept { return value; }
  const T& operator*() const noexcept { return value; }
  T* operator->() noexcept { return &value; }
  const T* operator->() const noexcept { return &value; }

 private:
  // Pad up to a full line so adjacent array elements do not share a line.
  char pad_[kCacheLineSize > sizeof(T) ? kCacheLineSize - sizeof(T) : 1]{};
};

/// A cache-line-isolated atomic counter, the building block of both the
/// RIO shared data-object state and the runtimes' statistics counters.
template <typename T>
using AlignedAtomic = CacheAligned<std::atomic<T>>;

static_assert(sizeof(CacheAligned<std::atomic<std::uint64_t>>) >= kCacheLineSize);
static_assert(alignof(CacheAligned<std::atomic<std::uint64_t>>) == kCacheLineSize);

}  // namespace rio::support
