#include "support/topology.hpp"

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#include <unistd.h>
#endif

namespace rio::support {

CpuTopology detect_topology() noexcept {
  CpuTopology topo;
#if defined(__linux__)
  const long online = sysconf(_SC_NPROCESSORS_ONLN);
  if (online > 0) topo.logical_cpus = static_cast<std::uint32_t>(online);
#endif
  return topo;
}

bool pin_current_thread(std::uint32_t cpu) noexcept {
#if defined(__linux__)
  if (cpu >= CPU_SETSIZE) return false;
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(cpu, &set);
  return pthread_setaffinity_np(pthread_self(), sizeof(set), &set) == 0;
#else
  (void)cpu;
  return false;
#endif
}

bool unpin_current_thread() noexcept {
#if defined(__linux__)
  cpu_set_t set;
  CPU_ZERO(&set);
  const std::uint32_t n = detect_topology().logical_cpus;
  for (std::uint32_t c = 0; c < n && c < CPU_SETSIZE; ++c) CPU_SET(c, &set);
  return pthread_setaffinity_np(pthread_self(), sizeof(set), &set) == 0;
#else
  return false;
#endif
}

}  // namespace rio::support
