// Minimal table / CSV emitters used by the bench harness and examples.
//
// Every figure-reproduction binary prints both a human-readable aligned
// table (for eyeballing the shape against the paper) and machine-readable
// CSV (for plotting). Keeping the emitters here avoids ad-hoc printf
// formatting drifting apart across bench binaries.
#pragma once

#include <algorithm>
#include <cstddef>
#include <iomanip>
#include <ostream>
#include <sstream>
#include <string>
#include <vector>

namespace rio::support {

/// A simple column-aligned text table. Cells are strings; numeric
/// convenience adders format with fixed precision.
class Table {
 public:
  explicit Table(std::vector<std::string> header) : header_(std::move(header)) {}

  class RowBuilder {
   public:
    explicit RowBuilder(std::vector<std::string>& row) : row_(row) {}
    RowBuilder& str(std::string s) {
      row_.push_back(std::move(s));
      return *this;
    }
    RowBuilder& num(double v, int precision = 4) {
      std::ostringstream os;
      os << std::fixed << std::setprecision(precision) << v;
      row_.push_back(os.str());
      return *this;
    }
    RowBuilder& sci(double v, int precision = 3) {
      std::ostringstream os;
      os << std::scientific << std::setprecision(precision) << v;
      row_.push_back(os.str());
      return *this;
    }
    RowBuilder& integer(long long v) {
      row_.push_back(std::to_string(v));
      return *this;
    }

   private:
    std::vector<std::string>& row_;
  };

  RowBuilder row() {
    rows_.emplace_back();
    return RowBuilder(rows_.back());
  }

  /// Aligned, boxed-off table for terminals.
  void print(std::ostream& os) const {
    std::vector<std::size_t> width(header_.size());
    for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
    for (const auto& r : rows_)
      for (std::size_t c = 0; c < r.size() && c < width.size(); ++c)
        width[c] = std::max(width[c], r[c].size());

    auto print_row = [&](const std::vector<std::string>& r) {
      os << "| ";
      for (std::size_t c = 0; c < width.size(); ++c) {
        const std::string& cell = c < r.size() ? r[c] : std::string();
        os << std::left << std::setw(static_cast<int>(width[c])) << cell
           << (c + 1 < width.size() ? " | " : " |");
      }
      os << '\n';
    };
    print_row(header_);
    os << "|";
    for (std::size_t c = 0; c < width.size(); ++c)
      os << std::string(width[c] + 2, '-') << (c + 1 < width.size() ? "|" : "|");
    os << '\n';
    for (const auto& r : rows_) print_row(r);
  }

  /// RFC-4180-ish CSV (no quoting needed for our numeric content).
  void print_csv(std::ostream& os) const {
    auto emit = [&](const std::vector<std::string>& r) {
      for (std::size_t c = 0; c < r.size(); ++c)
        os << r[c] << (c + 1 < r.size() ? "," : "");
      os << '\n';
    };
    emit(header_);
    for (const auto& r : rows_) emit(r);
  }

  [[nodiscard]] std::size_t num_rows() const noexcept { return rows_.size(); }

  /// Structured access for non-text emitters (bench JSON reporter).
  [[nodiscard]] const std::vector<std::string>& header() const noexcept {
    return header_;
  }
  [[nodiscard]] const std::vector<std::vector<std::string>>& rows()
      const noexcept {
    return rows_;
  }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a nanosecond count with an adaptive unit (ns/us/ms/s).
inline std::string format_duration_ns(double ns) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(2);
  if (ns < 1e3)
    os << ns << " ns";
  else if (ns < 1e6)
    os << ns / 1e3 << " us";
  else if (ns < 1e9)
    os << ns / 1e6 << " ms";
  else
    os << ns / 1e9 << " s";
  return os.str();
}

}  // namespace rio::support
