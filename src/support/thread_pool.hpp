// Persistent worker pool.
//
// The runtimes spawn their workers per run by default, which is simple and
// correct but costs tens of microseconds per run — significant for the
// hybrid engine (one run per phase) and for repeated fine-grained runs.
// ThreadPool keeps p parked threads and broadcasts one job to all of them:
// exactly the "fork" shape every engine here needs (each worker runs the
// same function with its worker id; the caller blocks until all finish).
//
// Synchronization is generation-based: workers park on an atomic
// generation word (futex via std::atomic::wait); run() installs the job,
// bumps the generation and wakes everyone; the last worker to finish wakes
// the caller. No locks on the hot path.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <thread>
#include <vector>

#include "support/assert.hpp"

namespace rio::support {

class ThreadPool {
 public:
  using Job = std::function<void(std::uint32_t worker)>;

  explicit ThreadPool(std::uint32_t threads) : size_(threads) {
    RIO_ASSERT_MSG(threads > 0, "pool needs at least one thread");
    workers_.reserve(threads);
    for (std::uint32_t w = 0; w < threads; ++w)
      workers_.emplace_back([this, w] { worker_loop(w); });
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  ~ThreadPool() {
    stop_.store(true, std::memory_order_release);
    generation_.fetch_add(1, std::memory_order_acq_rel);
    generation_.notify_all();
    for (auto& t : workers_) t.join();
  }

  [[nodiscard]] std::uint32_t size() const noexcept { return size_; }

  /// Runs `job(w)` on every pool thread; returns when all completed.
  /// Not reentrant: one run at a time (engines are the only callers).
  void run(const Job& job) {
    job_ = &job;
    remaining_.store(size_, std::memory_order_release);
    generation_.fetch_add(1, std::memory_order_acq_rel);
    generation_.notify_all();
    // Park until the last worker signals completion.
    std::uint32_t left = remaining_.load(std::memory_order_acquire);
    while (left != 0) {
      remaining_.wait(left, std::memory_order_acquire);
      left = remaining_.load(std::memory_order_acquire);
    }
    job_ = nullptr;
  }

 private:
  void worker_loop(std::uint32_t w) {
    std::uint64_t seen = 0;
    for (;;) {
      std::uint64_t gen = generation_.load(std::memory_order_acquire);
      while (gen == seen) {
        generation_.wait(gen, std::memory_order_acquire);
        gen = generation_.load(std::memory_order_acquire);
      }
      seen = gen;
      if (stop_.load(std::memory_order_acquire)) return;
      (*job_)(w);
      if (remaining_.fetch_sub(1, std::memory_order_acq_rel) == 1)
        remaining_.notify_all();
    }
  }

  std::uint32_t size_;
  const Job* job_ = nullptr;
  std::atomic<std::uint64_t> generation_{0};
  std::atomic<std::uint32_t> remaining_{0};
  std::atomic<bool> stop_{false};
  std::vector<std::thread> workers_;
};

/// Fork-join helper used by every engine: runs `fn(w)` for w in [0, p) on
/// the pool when one is attached (extra pool threads no-op), otherwise on
/// freshly spawned threads. Blocks until all complete.
inline void run_parallel(ThreadPool* pool, std::uint32_t p,
                         const ThreadPool::Job& fn) {
  if (pool != nullptr) {
    RIO_ASSERT_MSG(pool->size() >= p, "pool smaller than worker count");
    pool->run([&](std::uint32_t w) {
      if (w < p) fn(w);
    });
    return;
  }
  std::vector<std::thread> threads;
  threads.reserve(p);
  for (std::uint32_t w = 0; w < p; ++w) threads.emplace_back(fn, w);
  for (auto& t : threads) t.join();
}

}  // namespace rio::support
