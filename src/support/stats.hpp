// Cumulative-time bookkeeping for the efficiency decomposition.
//
// Section 2.3 decomposes the cumulative parallel time tau_p = p * t_p into
// three buckets: tau_{p,t} (executing tasks), tau_{p,i} (idle, waiting on a
// dependency), tau_{p,r} (runtime management). Every execution engine in
// this repository — the real RIO runtime, the centralized OoO baseline and
// the discrete-event simulator — reports its execution as a TimeBuckets
// value per worker, which metrics/ then turns into the e_p / e_r
// efficiencies of the paper.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace rio::support {

/// The three tau buckets of Section 2.3, in nanoseconds (real runtimes) or
/// virtual ticks (simulator). The decomposition identity
/// tau_p = task + idle + runtime holds by construction for the simulator
/// and up to measurement noise for the real runtimes.
struct TimeBuckets {
  std::uint64_t task_ns = 0;     ///< tau_{p,t}: inside user task bodies
  std::uint64_t idle_ns = 0;     ///< tau_{p,i}: stalled on a dependency
  std::uint64_t runtime_ns = 0;  ///< tau_{p,r}: management (everything else)

  [[nodiscard]] std::uint64_t total() const noexcept {
    return task_ns + idle_ns + runtime_ns;
  }

  TimeBuckets& operator+=(const TimeBuckets& o) noexcept {
    task_ns += o.task_ns;
    idle_ns += o.idle_ns;
    runtime_ns += o.runtime_ns;
    return *this;
  }

  friend TimeBuckets operator+(TimeBuckets a, const TimeBuckets& b) noexcept {
    a += b;
    return a;
  }
};

/// Per-worker execution statistics reported by every engine.
struct WorkerStats {
  TimeBuckets buckets;
  std::uint64_t tasks_executed = 0;  ///< tasks this worker ran
  std::uint64_t tasks_skipped = 0;   ///< tasks declared-only (RIO) / n.a.
  std::uint64_t waits = 0;           ///< dependency stalls encountered
};

/// Whole-run report: per-worker stats plus the wall-clock makespan.
struct RunStats {
  std::vector<WorkerStats> workers;
  std::uint64_t wall_ns = 0;  ///< t_p: makespan of the parallel run

  [[nodiscard]] TimeBuckets cumulative() const noexcept {
    TimeBuckets sum;
    for (const auto& w : workers) sum += w.buckets;
    return sum;
  }

  [[nodiscard]] std::uint64_t tasks_executed() const noexcept {
    std::uint64_t n = 0;
    for (const auto& w : workers) n += w.tasks_executed;
    return n;
  }

  [[nodiscard]] std::size_t num_workers() const noexcept {
    return workers.size();
  }
};

}  // namespace rio::support
