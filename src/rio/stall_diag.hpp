// Stall diagnostic rendering for the decentralized engines (full + pruned).
//
// When the progress watchdog fires, this builds the evidence string carried
// by stf::StallError: one line per worker showing what it was doing, and —
// for waiting workers — WHICH data object it waits on with the expected vs
// live-observed protocol counters. That pair is exactly what a protocol
// bug, a lost wakeup or an injected stall leaves behind.
#pragma once

#include <cstdint>
#include <sstream>
#include <string>

#include "support/watchdog.hpp"
#include "rio/data_object.hpp"

namespace rio::rt {

namespace detail {
inline std::string fmt_task_id(std::uint64_t id) {
  return id == static_cast<std::uint64_t>(kNoWrite) ? "none"
                                                    : std::to_string(id);
}
}  // namespace detail

/// Renders the per-worker diagnostic from the probes plus the live shared
/// protocol words. Called on the watchdog thread while workers are still
/// stuck — relaxed/acquire reads only, no locks.
inline std::string stall_diagnostic(const char* engine,
                                    std::uint64_t window_ns,
                                    const support::WorkerProbe* probes,
                                    std::uint32_t num_workers,
                                    const SharedDataState* shared,
                                    std::size_t num_data) {
  std::ostringstream os;
  os << engine << ": no progress for "
     << static_cast<double>(window_ns) / 1e6 << " ms\n";
  for (std::uint32_t w = 0; w < num_workers; ++w) {
    const support::WorkerProbe& pr = probes[w];
    const support::ProbeState st = pr.get_state();
    os << "  worker " << w << ": " << support::to_string(st)
       << ", executed=" << pr.progress.load(std::memory_order_relaxed);
    const std::uint64_t task = pr.task.load(std::memory_order_relaxed);
    if (st == support::ProbeState::kWaiting ||
        st == support::ProbeState::kExecuting) {
      os << ", task=" << detail::fmt_task_id(task);
    }
    if (st == support::ProbeState::kWaiting) {
      const std::uint32_t d = pr.data.load(std::memory_order_relaxed);
      if (d < num_data) {
        const SharedDataState& s = shared[d];
        os << ", waiting on data " << d << " (expected writer="
           << detail::fmt_task_id(
                  pr.expected_writer.load(std::memory_order_relaxed))
           << ", observed="
           << detail::fmt_task_id(s.last_executed_write.value.load(
                  std::memory_order_acquire))
           << "; expected reads="
           << pr.expected_reads.load(std::memory_order_relaxed)
           << ", observed="
           << s.nb_reads_since_write.value.load(std::memory_order_acquire)
           << ")";
      }
    }
    os << "\n";
  }
  return os.str();
}

}  // namespace rio::rt
