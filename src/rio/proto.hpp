// proto:: — the sync-word seam between shipped and verified code.
//
// Algorithm 2 (src/rio/data_object.hpp), the pruned executor
// (src/rio/pruning.cpp), COOR's dependency counters (src/coor), the
// wait-free ready ring (src/coor/ready_ring.hpp) and the per-worker
// doorbells (src/rio/doorbell.hpp) all reduce to a handful of tiny
// operations on a shared machine word:
//
//   load_acq     acquire load
//   store_rel    release store
//   store_rlx    relaxed store (the nb_reads reset inside terminate_write)
//   fetch_add    acq_rel read-modify-write
//   cas          acq_rel compare-exchange (ring slot/cursor claims)
//   wait_equal   block until the word equals a local replica value
//   wait_changed block until the word differs from a sampled value
//   notify       wake parked waiters (kBlock policy)
//
// This header defines those operations for plain std::atomic<T> — they
// compile to exactly the loads/stores/futex calls the code used before the
// seam existed. The protocol routines are templates over the *shared-state
// type* and call these operations UNQUALIFIED after `using proto::...;`
// declarations, so argument-dependent lookup can substitute a
// checker-instrumented word type: mc::impl (src/modelcheck/impl.hpp)
// defines the same six functions for its mc::impl::Word<T> and thereby runs
// the very same protocol functions under a controlled scheduler. The
// verified code and the shipped code are the same functions; only the word
// type differs.
//
// Contract for an alternative word type W<T>:
//   * load_acq(const W<T>&) -> T            acquire semantics
//   * store_rel(W<T>&, T)                   release semantics
//   * store_rlx(W<T>&, T)                   no ordering (callers sequence it
//                                           before a store_rel on another
//                                           word of the same object)
//   * fetch_add(W<T>&, T) -> T              acq_rel, returns the OLD value
//   * cas(W<T>&, T& expected, T desired)
//       -> bool                             acq_rel strong compare-exchange;
//                                           on failure loads the observed
//                                           value into `expected`
//   * wait_equal(const W<T>&, T expected, WaitPolicy,
//                const std::atomic<bool>* abort, std::uint64_t* spins)
//       -> bool                             true when equality was reached,
//                                           false on abort; must re-check
//                                           the value before parking
//   * wait_changed(const W<T>&, T old, WaitPolicy,
//                  const std::atomic<bool>* abort, std::uint64_t* spins)
//       -> bool                             true when the word moved away
//                                           from `old`, false on abort;
//                                           kBlock parks futex-style on the
//                                           sampled value
//   * notify(W<T>&, WaitPolicy)             wake all waiters iff kBlock
#pragma once

#include <atomic>
#include <cstdint>

#include "support/wait.hpp"

namespace rio::proto {

template <typename T>
[[nodiscard]] inline T load_acq(const std::atomic<T>& word) noexcept {
  return word.load(std::memory_order_acquire);
}

template <typename T>
inline void store_rel(std::atomic<T>& word, T value) noexcept {
  word.store(value, std::memory_order_release);
}

template <typename T>
inline void store_rlx(std::atomic<T>& word, T value) noexcept {
  word.store(value, std::memory_order_relaxed);
}

template <typename T>
inline T fetch_add(std::atomic<T>& word, T delta) noexcept {
  return word.fetch_add(delta, std::memory_order_acq_rel);
}

template <typename T>
inline bool cas(std::atomic<T>& word, T& expected, T desired) noexcept {
  return word.compare_exchange_strong(expected, desired,
                                      std::memory_order_acq_rel,
                                      std::memory_order_acquire);
}

template <typename T>
inline bool wait_equal(const std::atomic<T>& word, T expected,
                       support::WaitPolicy policy,
                       const std::atomic<bool>* abort = nullptr,
                       std::uint64_t* spins = nullptr) noexcept {
  return support::wait_until_equal_or(word, expected, policy, abort, spins);
}

template <typename T>
inline bool wait_changed(const std::atomic<T>& word, T old,
                         support::WaitPolicy policy,
                         const std::atomic<bool>* abort = nullptr,
                         std::uint64_t* spins = nullptr) noexcept {
  return support::wait_until_changed_or(word, old, policy, abort, spins);
}

template <typename T>
inline void notify(std::atomic<T>& word, support::WaitPolicy policy) noexcept {
  if (policy == support::WaitPolicy::kBlock) word.notify_all();
}

}  // namespace rio::proto
