#include "rio/pruning.hpp"

#include <atomic>
#include <barrier>
#include <exception>
#include <mutex>
#include <thread>

#include "support/assert.hpp"
#include "support/clock.hpp"

namespace rio::rt {

PrunedPlan::PrunedPlan(const stf::TaskFlow& flow, const Mapping& mapping,
                       std::uint32_t num_workers) {
  RIO_ASSERT(mapping.valid() && num_workers > 0);
  per_worker_.resize(num_workers);

  // The same scan state the dependency analyzer uses, but instead of
  // emitting edges we snapshot the (last_writer, reads_since) pair into the
  // owner's plan.
  struct ScanState {
    stf::TaskId last_writer = kNoWrite;
    std::uint64_t reads_since_write = 0;
  };
  std::vector<ScanState> data(flow.num_data());

  for (const stf::Task& task : flow.tasks()) {
    const stf::WorkerId owner = mapping(task.id);
    RIO_ASSERT_MSG(owner < num_workers, "mapping produced out-of-range worker");

    PrunedTask pt;
    pt.id = task.id;
    for (const stf::Access& a : task.accesses) {
      const ScanState& s = data[a.data];
      PrunedAccess pa;
      pa.data = a.data;
      pa.mode = a.mode;
      pa.expected_writer = s.last_writer;
      pa.expected_reads = s.reads_since_write;
      pt.accesses.push_back(pa);
    }
    per_worker_[owner].push_back(std::move(pt));
    ++total_;

    for (const stf::Access& a : task.accesses) {
      ScanState& s = data[a.data];
      if (is_write(a.mode)) {
        s.last_writer = task.id;
        s.reads_since_write = 0;
      } else {
        s.reads_since_write += 1;
      }
    }
  }
}

PrunedRuntime::PrunedRuntime(Config cfg) : cfg_(cfg) {
  RIO_ASSERT(cfg_.num_workers > 0);
}

support::RunStats PrunedRuntime::run(const stf::TaskFlow& flow,
                                     const PrunedPlan& plan) {
  RIO_ASSERT_MSG(plan.num_workers() == cfg_.num_workers,
                 "plan built for a different worker count");
  const std::uint32_t p = cfg_.num_workers;

  std::vector<SharedDataState> shared(flow.num_data());
  std::atomic<bool> cancelled{false};
  std::exception_ptr first_error;
  std::mutex error_mu;
  std::barrier start(static_cast<std::ptrdiff_t>(p) + 1);
  std::vector<support::WorkerStats> wstats(p);
  std::vector<std::uint64_t> worker_wall(p, 0);

  std::vector<std::thread> threads;
  threads.reserve(p);
  for (std::uint32_t w = 0; w < p; ++w) {
    threads.emplace_back([&, w] {
      const auto& mine = plan.tasks_for(w);
      support::WorkerStats& st = wstats[w];
      const auto policy = cfg_.wait_policy;
      start.arrive_and_wait();
      const std::uint64_t begin = support::monotonic_ns();
      for (const PrunedTask& pt : mine) {
        // Wait on the precomputed expectations — no local replica needed.
        bool stalled = false;
        std::uint64_t wait_begin = 0;
        if (cfg_.collect_stats) wait_begin = support::monotonic_ns();
        for (const PrunedAccess& pa : pt.accesses) {
          const SharedDataState& s = shared[pa.data];
          if (s.last_executed_write.value.load(std::memory_order_acquire) !=
              pa.expected_writer) {
            stalled = true;
            support::wait_until_equal(s.last_executed_write.value,
                                      pa.expected_writer, policy);
          }
          if (is_write(pa.mode) &&
              s.nb_reads_since_write.value.load(std::memory_order_acquire) !=
                  pa.expected_reads) {
            stalled = true;
            support::wait_until_equal(s.nb_reads_since_write.value,
                                      pa.expected_reads, policy);
          }
        }
        if (cfg_.collect_stats && stalled) {
          st.buckets.idle_ns += support::monotonic_ns() - wait_begin;
          ++st.waits;
        }

        const stf::Task& task = flow.task(pt.id);
        std::uint64_t t0 = 0;
        if (cfg_.collect_stats) t0 = support::monotonic_ns();
        if (task.fn && !cancelled.load(std::memory_order_acquire)) {
          stf::TaskContext tc(task, flow.registry(), w);
          try {
            task.fn(tc);
          } catch (...) {
            std::lock_guard lock(error_mu);
            if (!first_error) first_error = std::current_exception();
            cancelled.store(true, std::memory_order_release);
          }
        }
        if (cfg_.collect_stats)
          st.buckets.task_ns += support::monotonic_ns() - t0;

        for (const PrunedAccess& pa : pt.accesses) {
          SharedDataState& s = shared[pa.data];
          if (is_write(pa.mode)) {
            s.nb_reads_since_write.value.store(0, std::memory_order_relaxed);
            support::store_and_notify(s.last_executed_write.value, pt.id,
                                      policy);
            if (policy == support::WaitPolicy::kBlock)
              s.nb_reads_since_write.value.notify_all();
          } else {
            s.nb_reads_since_write.value.fetch_add(1,
                                                   std::memory_order_acq_rel);
            if (policy == support::WaitPolicy::kBlock)
              s.nb_reads_since_write.value.notify_all();
          }
        }
        if (cfg_.collect_stats) ++st.tasks_executed;
      }
      worker_wall[w] = support::monotonic_ns() - begin;
    });
  }
  start.arrive_and_wait();
  const std::uint64_t t0 = support::monotonic_ns();
  for (auto& th : threads) th.join();

  support::RunStats stats;
  stats.wall_ns = support::monotonic_ns() - t0;
  stats.workers = std::move(wstats);
  if (cfg_.collect_stats) {
    for (std::uint32_t w = 0; w < p; ++w) {
      auto& b = stats.workers[w].buckets;
      const std::uint64_t busy = b.task_ns + b.idle_ns;
      b.runtime_ns = worker_wall[w] > busy ? worker_wall[w] - busy : 0;
    }
  }
  if (first_error) std::rethrow_exception(first_error);
  return stats;
}

}  // namespace rio::rt
