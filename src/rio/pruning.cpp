#include "rio/pruning.hpp"

#include <atomic>
#include <barrier>
#include <exception>
#include <mutex>
#include <optional>
#include <thread>
#include <utility>

#include "obs/obs.hpp"
#include "support/assert.hpp"
#include "support/clock.hpp"
#include "support/topology.hpp"
#include "support/watchdog.hpp"
#include "rio/stall_diag.hpp"
#include "stf/failure.hpp"
#include "stf/resilience.hpp"

namespace rio::rt {
namespace {

/// Shared scan state: what a fully-unrolling worker's local replica would
/// contain just before each task.
struct ScanState {
  stf::TaskId last_writer = kNoWrite;
  std::uint64_t reads_since_write = 0;
};

/// Core pruned execution: fork p workers, each walks only its own plan
/// slice, waiting on precomputed protocol values. `body_of(id)` resolves a
/// task id to its source descriptor (TaskFlow or FlowImage backed).
template <typename BodyOf>
support::RunStats run_pruned(const Config& cfg, support::ThreadPool* pool,
                             const stf::DataRegistry& registry,
                             std::size_t num_data, const PrunedPlan& plan,
                             stf::Trace& trace_out, stf::SyncTrace& sync_out,
                             RunArenas& arenas, BodyOf&& body_of) {
  RIO_ASSERT_MSG(plan.num_workers() == cfg.num_workers,
                 "plan built for a different worker count");
  const std::uint32_t p = cfg.num_workers;
  // Crash-armed plans force a watchdog, same contract as the full
  // runtime's launch(): a worker death escalates as stf::WorkerLost.
  const bool crash_armed =
      cfg.fault != nullptr && cfg.fault->plan().crash_armed();
  const std::uint64_t watchdog_ns =
      cfg.watchdog_ns > 0 ? cfg.watchdog_ns
                          : (crash_armed ? 100'000'000ULL : 0);
  const bool watched_pre = watchdog_ns > 0;
  // Doorbell batching replaces per-word notifies for unwatched kBlock runs
  // (same gate as the full runtime's launch()).
  const bool use_bells = cfg.wait_policy == support::WaitPolicy::kBlock &&
                         !watched_pre && cfg.doorbells;

  // Recycled sync-word arena: reset in place when it already fits (the
  // replay loop `while (...) prt.run(image, mapping)` is the hot consumer).
  std::vector<SharedDataState>& shared = arenas.shared;
  if (shared.size() < num_data) {
    shared = std::vector<SharedDataState>(num_data);
  } else {
    for (std::size_t d = 0; d < num_data; ++d) {
      shared[d].last_executed_write.value.store(kNoWrite,
                                                std::memory_order_relaxed);
      shared[d].nb_reads_since_write.value.store(0, std::memory_order_relaxed);
    }
  }
  if (use_bells) {
    if (arenas.bells.size() < p) {
      arenas.bells = std::vector<support::AlignedAtomic<std::uint64_t>>(p);
    } else {
      for (std::uint32_t w = 0; w < p; ++w)
        arenas.bells[w].value.store(0, std::memory_order_relaxed);
    }
  }
  std::atomic<std::uint64_t> seq{0};
  std::atomic<std::uint64_t> sync_stamp{0};
  std::atomic<bool> cancelled{false};
  std::atomic<bool> abort{false};  // set only by a firing watchdog
  std::exception_ptr first_error;
  std::mutex error_mu;
  stf::DeathBoard deaths;

  const bool watched = watchdog_ns > 0;
  std::vector<support::WorkerProbe> probes(watched ? p : 0);
  stf::ResilienceOpts res_proto;
  res_proto.retry = cfg.retry;
  res_proto.fault = cfg.fault;
  res_proto.abort = watched ? &abort : nullptr;
  const bool resilient = res_proto.active();

  std::barrier start(static_cast<std::ptrdiff_t>(p));
  std::vector<support::WorkerStats> wstats(p);
  std::vector<std::uint64_t> worker_wall(p, 0);
  std::vector<std::vector<stf::TraceEvent>> traces(p);
  std::vector<std::vector<stf::SyncEvent>> syncs(p);
  if (cfg.obs != nullptr) cfg.obs->ensure_workers(p);
  std::vector<obs::WorkerObs> obses(p);
  for (std::uint32_t w = 0; w < p; ++w) obses[w].bind(cfg.obs, w);

  const std::uint32_t cpus = support::detect_topology().logical_cpus;
  const auto body = [&](std::uint32_t w) {
    if (cfg.pin_workers) support::pin_current_thread(w % cpus);
    const auto& mine = plan.tasks_for(w);
    support::WorkerStats& st = wstats[w];
    const auto policy = cfg.wait_policy;
    std::atomic<std::uint64_t>* bell =
        use_bells ? &arenas.bells[w].value : nullptr;
    const bool word_notify = !use_bells;
    support::WorkerProbe* probe = watched ? &probes[w] : nullptr;
    const std::atomic<bool>* abort_flag = res_proto.abort;
    stf::ResilienceOpts res = res_proto;  // worker-private copy
    stf::DataSnapshot snapshot;
    std::uint32_t checkpoint_pending = 0;
    obs::WorkerObs& ob = obses[w];
    res.obs = &ob;
    const bool timed = cfg.collect_stats || cfg.collect_trace || ob.recording();
    start.arrive_and_wait();
    const std::uint64_t begin = support::monotonic_ns();
    for (const PrunedTask& pt : mine) {
      // Wait on the precomputed expectations — no local replica needed.
      bool stalled = false;
      std::uint64_t wait_begin = 0;
      std::uint64_t wait_cause = obs::kNoCause;
      if (timed) wait_begin = support::monotonic_ns();
      for (const PrunedAccess& pa : pt.accesses) {
        const SharedDataState& s = shared[pa.data];
        if (probe != nullptr) {
          probe->task.store(pt.id, std::memory_order_relaxed);
          probe->data.store(pa.data, std::memory_order_relaxed);
          probe->expected_writer.store(pa.expected_writer,
                                       std::memory_order_relaxed);
          probe->expected_reads.store(pa.expected_reads,
                                      std::memory_order_relaxed);
          probe->set_state(support::ProbeState::kWaiting);
        }
        // Same protocol wait as the full runtime (acquire_for through the
        // proto:: seam), with precomputed expectations in place of the
        // local replica.
        const bool waited =
            acquire_for(s, pa.expected_writer, pa.expected_reads,
                        is_write(pa.mode), policy, abort_flag,
                        &ob.spin_iters, bell);
        // Wait-cause: the last stalling access's (data, expected writer)
        // pair — the plan carries the expectations precomputed.
        if (waited) wait_cause = obs::make_cause(pa.expected_writer, pa.data);
        stalled |= waited;
      }
      if (probe != nullptr) probe->set_state(support::ProbeState::kExecuting);
      if (stalled) {
        if (timed)
          ob.span(obs::Phase::kAcquireWait, pt.id, wait_begin,
                  support::monotonic_ns(), wait_cause);
        ob.count(obs::Counter::kProtocolWaits);
        if (cfg.collect_stats) ++st.waits;
      }

      // Acquire stamps after all waits completed — same invariant as the
      // full runtime, so the happens-before checker accepts pruned traces.
      if (cfg.collect_sync) {
        for (const PrunedAccess& pa : pt.accesses)
          syncs[w].push_back(
              {pt.id, w, pa.data, pa.mode, stf::SyncKind::kAcquire,
               sync_stamp.fetch_add(1, std::memory_order_acq_rel)});
      }

      // Resume replay: protocol ops only, body/faults/mark skipped — same
      // contract as the full runtime (runtime.cpp execute_owned).
      const bool replay = cfg.resume != nullptr && cfg.resume->done(pt.id);
      bool body_ok = !replay;
      bool crashed = false;
      const stf::Task& task = body_of(pt.id);
      std::uint64_t t0 = 0;
      if (timed) t0 = support::monotonic_ns();
      if (replay) {
        ob.count(obs::Counter::kTasksReplayed);
      } else if (resilient) {
        if (!cancelled.load(std::memory_order_acquire)) {
          stf::BodyResult r =
              stf::execute_body(task, registry, w, res, snapshot);
          if (r.crashed) {
            crashed = true;
          } else if (!r.ok) {
            body_ok = false;
            std::lock_guard lock(error_mu);
            if (!first_error) first_error = std::move(r.error);
            cancelled.store(true, std::memory_order_release);
          }
        } else {
          body_ok = false;
        }
      } else if (task.fn && !cancelled.load(std::memory_order_acquire)) {
        stf::TaskContext tc(task, registry, w);
        try {
          task.fn(tc);
        } catch (...) {
          body_ok = false;
          std::lock_guard lock(error_mu);
          if (!first_error) first_error = std::current_exception();
          cancelled.store(true, std::memory_order_release);
        }
      } else if (cancelled.load(std::memory_order_acquire)) {
        body_ok = false;
      }
      std::uint64_t t1 = 0;
      if (timed) {
        t1 = support::monotonic_ns();
        ob.span(obs::Phase::kBody, pt.id, t0, t1);
      }

      if (crashed) {
        // Permanent worker death: record the dirty spans, publish nothing,
        // and stop walking this worker's plan slice (see runtime.cpp).
        stf::DeathRecord d;
        d.worker = w;
        d.task = pt.id;
        d.dirty = std::move(snapshot);
        deaths.record(std::move(d));
        break;
      }

      if (cfg.checkpoint != nullptr && body_ok) {
        cfg.checkpoint->mark(pt.id);
        cfg.checkpoint->note_completion(checkpoint_pending);
      }

      // Release stamps before anything is published.
      if (cfg.collect_sync) {
        for (const PrunedAccess& pa : pt.accesses)
          syncs[w].push_back(
              {pt.id, w, pa.data, pa.mode, stf::SyncKind::kRelease,
               sync_stamp.fetch_add(1, std::memory_order_acq_rel)});
      }

      for (const PrunedAccess& pa : pt.accesses) {
        SharedDataState& s = shared[pa.data];
        if (is_write(pa.mode))
          publish_write(s, pt.id, policy, word_notify);
        else
          publish_read(s, policy, word_notify);
      }
      if (use_bells) {
        // Release boundary: one doorbell ring per parked peer instead of
        // one notify per published word (see docs/perf.md).
        std::uint64_t issued = 0;
        for (std::uint32_t peer = 0; peer < p; ++peer) {
          if (peer == w) continue;
          if (ring_doorbell(arenas.bells[peer].value, policy)) ++issued;
        }
        ob.count(obs::Counter::kWakeups, p - 1);
        ob.count(obs::Counter::kWakeupsIssued, issued);
        ob.count(obs::Counter::kWakeupsElided, (p - 1) - issued);
      } else {
        ob.count(obs::Counter::kWakeups, pt.accesses.size());
      }
      if (timed)
        ob.span(obs::Phase::kRelease, pt.id, t1, support::monotonic_ns());
      ob.count(obs::Counter::kTasksExecuted);
      if (cfg.collect_trace)
        traces[w].push_back(
            {pt.id, w, t0, t1,
             seq.fetch_add(1, std::memory_order_relaxed)});
      if (probe != nullptr)
        probe->progress.fetch_add(1, std::memory_order_relaxed);
      if (cfg.collect_stats) ++st.tasks_executed;
    }
    if (probe != nullptr) probe->set_state(support::ProbeState::kDone);
    worker_wall[w] = support::monotonic_ns() - begin;
  };

  // Same watchdog contract as the full runtime (runtime.cpp): capture the
  // diagnostic first, then cancel + abort so the waits drain.
  std::optional<support::Watchdog> watchdog;
  if (watched) {
    watchdog.emplace(
        watchdog_ns,
        [&probes, p, hub = cfg.obs]() noexcept {
          if (hub != nullptr)
            hub->global_counters().add(obs::Counter::kWatchdogProbes);
          std::uint64_t sum = 0;
          for (std::uint32_t w = 0; w < p; ++w)
            sum += probes[w].progress.load(std::memory_order_relaxed);
          return sum;
        },
        [&] {
          if (cfg.obs != nullptr) {
            const std::uint64_t now = support::monotonic_ns();
            for (std::uint32_t w = 0; w < p; ++w)
              cfg.obs->instant(
                  {now, now, probes[w].task.load(std::memory_order_relaxed), w,
                   obs::Phase::kStallSnapshot});
          }
          return stall_diagnostic("rio-pruned", watchdog_ns, probes.data(),
                                  p, shared.data(), num_data);
        },
        [&] {
          cancelled.store(true, std::memory_order_release);
          abort.store(true, std::memory_order_release);
        },
        crash_armed ? std::function<bool()>([&deaths] {
          return deaths.any_death();
        })
                    : std::function<bool()>());
  }

  const std::uint64_t t0 = support::monotonic_ns();
  support::run_parallel(pool, p, body);
  if (watchdog) watchdog->stop();

  support::RunStats stats;
  stats.wall_ns = support::monotonic_ns() - t0;
  stats.workers = std::move(wstats);
  trace_out.clear();
  sync_out.clear();
  for (std::uint32_t w = 0; w < p; ++w) {
    if (cfg.collect_stats) {
      // Buckets derived from the obs phase accumulators (same contract as
      // the full runtime).
      stats.workers[w].buckets = obses[w].buckets(worker_wall[w]);
    }
    obses[w].commit(cfg.obs);
    for (const stf::TraceEvent& ev : traces[w]) trace_out.record(ev);
    for (const stf::SyncEvent& ev : syncs[w]) sync_out.record(ev);
  }
  // Worker loss outranks a stall outranks a task failure (runtime.cpp).
  if (deaths.any_death())
    throw stf::WorkerLost(deaths.take(), watchdog && watchdog->fired()
                                             ? watchdog->diagnostic()
                                             : std::string());
  if (watchdog && watchdog->fired()) throw stf::StallError(watchdog->diagnostic());
  if (first_error) std::rethrow_exception(first_error);
  return stats;
}

}  // namespace

PrunedPlan::PrunedPlan(const stf::TaskFlow& flow, const Mapping& mapping,
                       std::uint32_t num_workers) {
  RIO_ASSERT(mapping.valid() && num_workers > 0);
  per_worker_.resize(num_workers);

  // The same scan state the dependency analyzer uses, but instead of
  // emitting edges we snapshot the (last_writer, reads_since) pair into the
  // owner's plan.
  std::vector<ScanState> data(flow.num_data());

  for (const stf::Task& task : flow.tasks()) {
    const stf::WorkerId owner = mapping(task.id);
    RIO_ASSERT_MSG(owner < num_workers, "mapping produced out-of-range worker");

    PrunedTask pt;
    pt.id = task.id;
    for (const stf::Access& a : task.accesses) {
      const ScanState& s = data[a.data];
      PrunedAccess pa;
      pa.data = a.data;
      pa.mode = a.mode;
      pa.expected_writer = s.last_writer;
      pa.expected_reads = s.reads_since_write;
      pt.accesses.push_back(pa);
    }
    per_worker_[owner].push_back(std::move(pt));
    ++total_;

    for (const stf::Access& a : task.accesses) {
      ScanState& s = data[a.data];
      if (is_write(a.mode)) {
        s.last_writer = task.id;
        s.reads_since_write = 0;
      } else {
        s.reads_since_write += 1;
      }
    }
  }
}

PrunedPlan::PrunedPlan(const stf::FlowImage& image, const Mapping& mapping,
                       std::uint32_t num_workers) {
  RIO_ASSERT(mapping.valid() && num_workers > 0);
  per_worker_.resize(num_workers);

  std::vector<ScanState> data(image.num_data());
  const stf::FlowImage::Span* spans = image.spans();
  const stf::Access* acc = image.accesses();
  const std::size_t n = image.size();
  const stf::TaskId first = image.first_id();

  for (std::size_t i = 0; i < n; ++i) {
    const stf::TaskId id = first + i;
    const stf::WorkerId owner = mapping(id);
    RIO_ASSERT_MSG(owner < num_workers, "mapping produced out-of-range worker");

    PrunedTask pt;
    pt.id = id;
    const stf::FlowImage::Span s = spans[i];
    for (std::uint32_t k = s.begin; k != s.end; ++k) {
      const stf::Access& a = acc[k];
      const ScanState& st = data[a.data];
      PrunedAccess pa;
      pa.data = a.data;
      pa.mode = a.mode;
      pa.expected_writer = st.last_writer;
      pa.expected_reads = st.reads_since_write;
      pt.accesses.push_back(pa);
    }
    per_worker_[owner].push_back(std::move(pt));
    ++total_;

    for (std::uint32_t k = s.begin; k != s.end; ++k) {
      const stf::Access& a = acc[k];
      ScanState& st = data[a.data];
      if (is_write(a.mode)) {
        st.last_writer = id;
        st.reads_since_write = 0;
      } else {
        st.reads_since_write += 1;
      }
    }
  }
}

std::shared_ptr<const PrunedPlan> PrunedPlanCache::get(
    const stf::FlowImage& image, const Mapping& mapping,
    std::uint32_t num_workers) {
  const Key key{image.serial(), image.fingerprint(), mapping.identity(),
                num_workers};
  for (const Entry& e : entries_) {
    if (e.key.serial == key.serial && e.key.fingerprint == key.fingerprint &&
        e.key.mapping == key.mapping && e.key.workers == key.workers)
      return e.plan;
  }
  auto plan = std::make_shared<const PrunedPlan>(image, mapping, num_workers);
  ++compiles_;
  entries_.push_back({key, plan});
  return plan;
}

PrunedRuntime::PrunedRuntime(Config cfg) : cfg_(cfg) {
  RIO_ASSERT(cfg_.num_workers > 0);
}

support::RunStats PrunedRuntime::run(const stf::TaskFlow& flow,
                                     const PrunedPlan& plan) {
  return run_pruned(cfg_, pool_, flow.registry(), flow.num_data(), plan,
                    trace_, sync_trace_, arenas_,
                    [&](stf::TaskId id) -> const stf::Task& {
                      return flow.task(id);
                    });
}

support::RunStats PrunedRuntime::run(const stf::FlowImage& image,
                                     const PrunedPlan& plan) {
  const stf::TaskId first = image.first_id();
  return run_pruned(cfg_, pool_, image.registry(), image.num_data(), plan,
                    trace_, sync_trace_, arenas_,
                    [&, first](stf::TaskId id) -> const stf::Task& {
                      return image.task(id - first);
                    });
}

support::RunStats PrunedRuntime::run(const stf::FlowImage& image,
                                     const Mapping& mapping) {
  const auto plan = cache_.get(image, mapping, cfg_.num_workers);
  return run(image, *plan);
}

}  // namespace rio::rt
