// Umbrella header for the RIO decentralized in-order runtime.
#pragma once

#include "rio/data_object.hpp"  // IWYU pragma: export
#include "rio/mapping.hpp"      // IWYU pragma: export
#include "rio/pruning.hpp"      // IWYU pragma: export
#include "rio/runtime.hpp"      // IWYU pragma: export
