// Decentralized data synchronization — Algorithm 2 of the paper.
//
// Every shared-memory region managed by the runtime is represented by a
// *data object* with two halves:
//
//   * a SHARED state, written with release semantics by whichever worker
//     executes an operation on the data:
//       - last_executed_write:  Task ID of the last write PERFORMED
//       - nb_reads_since_write: number of reads PERFORMED since that write
//
//   * a LOCAL state, private to each worker (plain non-atomic memory),
//     updated while the worker unrolls the task flow:
//       - last_registered_write:  Task ID of the last write ENCOUNTERED
//       - nb_reads_since_write:   reads ENCOUNTERED since that write
//
// A reader may proceed once the shared last-executed write catches up with
// the write it registered locally; a writer additionally waits until the
// shared read count matches the reads it has seen. The cost for a task NOT
// mapped on this worker is one or two writes to private memory — the
// property that makes the decentralized model cheap (Section 3.4).
//
// Space: 2 shared words per data object + 2 words per (worker, data) pair,
// independent of the number of tasks.
#pragma once

#include <atomic>
#include <cstdint>

#include "support/align.hpp"
#include "support/wait.hpp"
#include "stf/types.hpp"

namespace rio::rt {

/// Sentinel for "no write encountered/performed yet". Shared and local
/// state both start here, so the very first reader sails through.
inline constexpr stf::TaskId kNoWrite = stf::kInvalidTask;

/// Shared half of a data object. Each atomic sits on its own cache line:
/// readers hammer last_executed_write while terminate_read hammers
/// nb_reads_since_write, and sharing a line would couple them.
struct SharedDataState {
  support::AlignedAtomic<stf::TaskId> last_executed_write;
  support::AlignedAtomic<std::uint64_t> nb_reads_since_write;

  SharedDataState() {
    last_executed_write.value.store(kNoWrite, std::memory_order_relaxed);
    nb_reads_since_write.value.store(0, std::memory_order_relaxed);
  }
};

/// Worker-private half. Plain integers: only ever touched by the owner.
struct LocalDataState {
  stf::TaskId last_registered_write = kNoWrite;
  std::uint64_t nb_reads_since_write = 0;
};

// ---------------------------------------------------------------------------
// Algorithm 2 routines. `declare_*` run on workers skipping a task;
// `get_*` / `terminate_*` run on the executing worker.
// ---------------------------------------------------------------------------

/// declare_read: a read by some other worker passed by; count it locally.
inline void declare_read(LocalDataState& local) noexcept {
  local.nb_reads_since_write += 1;
}

/// declare_write: a write by some other worker passed by; it becomes the
/// write all later operations (locally) depend on.
inline void declare_write(LocalDataState& local, stf::TaskId task_id) noexcept {
  local.nb_reads_since_write = 0;
  local.last_registered_write = task_id;
}

/// get_read: block until every write this worker registered before the
/// current task has been performed. Returns whether the access stalled
/// (feeds the idle-time statistics). A non-null `abort` (the progress
/// watchdog's flag) lets the wait give up so a stalled run can drain
/// instead of hanging; a non-null `spins` accumulates wait rounds for the
/// obs spin-iteration counter.
inline bool get_read(const SharedDataState& shared, const LocalDataState& local,
                     support::WaitPolicy policy,
                     const std::atomic<bool>* abort = nullptr,
                     std::uint64_t* spins = nullptr) noexcept {
  const bool stalled = shared.last_executed_write.value.load(
                           std::memory_order_acquire) != local.last_registered_write;
  if (stalled)
    support::wait_until_equal_or(shared.last_executed_write.value,
                                 local.last_registered_write, policy, abort,
                                 spins);
  return stalled;
}

/// get_write: additionally block until all reads since that write have been
/// performed (write-after-read ordering).
inline bool get_write(const SharedDataState& shared,
                      const LocalDataState& local,
                      support::WaitPolicy policy,
                      const std::atomic<bool>* abort = nullptr,
                      std::uint64_t* spins = nullptr) noexcept {
  bool stalled = false;
  if (shared.last_executed_write.value.load(std::memory_order_acquire) !=
      local.last_registered_write) {
    stalled = true;
    if (!support::wait_until_equal_or(shared.last_executed_write.value,
                                      local.last_registered_write, policy,
                                      abort, spins))
      return stalled;  // aborted: skip the second wait too
  }
  if (shared.nb_reads_since_write.value.load(std::memory_order_acquire) !=
      local.nb_reads_since_write) {
    stalled = true;
    support::wait_until_equal_or(shared.nb_reads_since_write.value,
                                 local.nb_reads_since_write, policy, abort,
                                 spins);
  }
  return stalled;
}

/// terminate_read: publish that one more read was performed, then register
/// it locally like any other worker would.
inline void terminate_read(SharedDataState& shared, LocalDataState& local,
                           support::WaitPolicy policy) noexcept {
  shared.nb_reads_since_write.value.fetch_add(1, std::memory_order_acq_rel);
  if (policy == support::WaitPolicy::kBlock)
    shared.nb_reads_since_write.value.notify_all();
  declare_read(local);
}

/// terminate_write: reset the shared read counter BEFORE publishing the new
/// write id. A successor passes its first wait only after observing the new
/// id (acquire), so it can never see the stale pre-reset read count.
inline void terminate_write(SharedDataState& shared, LocalDataState& local,
                            stf::TaskId task_id,
                            support::WaitPolicy policy) noexcept {
  shared.nb_reads_since_write.value.store(0, std::memory_order_relaxed);
  support::store_and_notify(shared.last_executed_write.value, task_id, policy);
  if (policy == support::WaitPolicy::kBlock)
    shared.nb_reads_since_write.value.notify_all();
  declare_write(local, task_id);
}

}  // namespace rio::rt
