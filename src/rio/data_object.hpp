// Decentralized data synchronization — Algorithm 2 of the paper.
//
// Every shared-memory region managed by the runtime is represented by a
// *data object* with two halves:
//
//   * a SHARED state, written with release semantics by whichever worker
//     executes an operation on the data:
//       - last_executed_write:  Task ID of the last write PERFORMED
//       - nb_reads_since_write: number of reads PERFORMED since that write
//
//   * a LOCAL state, private to each worker (plain non-atomic memory),
//     updated while the worker unrolls the task flow:
//       - last_registered_write:  Task ID of the last write ENCOUNTERED
//       - nb_reads_since_write:   reads ENCOUNTERED since that write
//
// A reader may proceed once the shared last-executed write catches up with
// the write it registered locally; a writer additionally waits until the
// shared read count matches the reads it has seen. The cost for a task NOT
// mapped on this worker is one or two writes to private memory — the
// property that makes the decentralized model cheap (Section 3.4).
//
// Space: 2 shared words per data object + 2 words per (worker, data) pair,
// independent of the number of tasks.
// All shared-word traffic goes through the proto:: seam (src/rio/proto.hpp):
// the routines below are templates over the shared-state type and call the
// seam operations unqualified, so mc::impl can substitute an instrumented
// word type and model-check these exact functions. For the production
// SharedDataState they inline to the same atomics as before the seam.
#pragma once

#include <atomic>
#include <cstdint>
#include <type_traits>

#include "support/align.hpp"
#include "support/wait.hpp"
#include "rio/doorbell.hpp"
#include "rio/proto.hpp"
#include "stf/types.hpp"

namespace rio::rt {

/// Sentinel for "no write encountered/performed yet". Shared and local
/// state both start here, so the very first reader sails through.
inline constexpr stf::TaskId kNoWrite = stf::kInvalidTask;

/// Shared half of a data object: both sync words packed into ONE cache
/// line. The two words are always touched together at a release boundary
/// (publish_write stores both; a get_write waits on both), so splitting
/// them across two lines bought nothing while doubling the footprint of
/// the per-handle sync-word array — what matters for false sharing is that
/// *adjacent handles* never share a line, which the alignas guarantees.
/// Halving the stride also doubles how many hot handles fit in L1/L2.
struct alignas(support::kCacheLineSize) SharedDataState {
  // Nested one-member structs keep the `.value` access shape shared with
  // support::AlignedAtomic, so the protocol templates are unchanged.
  struct {
    std::atomic<stf::TaskId> value;
  } last_executed_write;
  struct {
    std::atomic<std::uint64_t> value;
  } nb_reads_since_write;

  SharedDataState() {
    last_executed_write.value.store(kNoWrite, std::memory_order_relaxed);
    nb_reads_since_write.value.store(0, std::memory_order_relaxed);
  }
};
static_assert(sizeof(SharedDataState) == support::kCacheLineSize,
              "per-handle sync words must occupy exactly one cache line");

/// Worker-private half. Plain integers: only ever touched by the owner.
struct LocalDataState {
  stf::TaskId last_registered_write = kNoWrite;
  std::uint64_t nb_reads_since_write = 0;
};

// ---------------------------------------------------------------------------
// Algorithm 2 routines. `declare_*` run on workers skipping a task;
// `get_*` / `terminate_*` run on the executing worker.
// ---------------------------------------------------------------------------

/// declare_read: a read by some other worker passed by; count it locally.
inline void declare_read(LocalDataState& local) noexcept {
  local.nb_reads_since_write += 1;
}

/// declare_write: a write by some other worker passed by; it becomes the
/// write all later operations (locally) depend on.
inline void declare_write(LocalDataState& local, stf::TaskId task_id) noexcept {
  local.nb_reads_since_write = 0;
  local.last_registered_write = task_id;
}

/// Placeholder doorbell type for callers that never park on a bell (spin
/// policies, watched runs, the sequential declare loops).
struct NoBell {};

/// acquire_for: the protocol wait both executors share. Blocks until the
/// shared last-executed write equals `expected_writer`; a write access
/// additionally waits until the shared read count equals `expected_reads`
/// (write-after-read ordering). The full runtime passes the worker's local
/// replica; the pruned executor passes precomputed expectations — same
/// waits, same seam. Returns whether the access stalled (feeds the
/// idle-time statistics). A non-null `abort` (the progress watchdog's flag)
/// lets the wait give up so a stalled run can drain instead of hanging; a
/// non-null `spins` accumulates wait rounds for the obs spin-iteration
/// counter.
///
/// A non-NoBell `bell` switches the kBlock policy to doorbell parking
/// (src/rio/doorbell.hpp): the worker parks on its own bell instead of the
/// sync word, and producers must publish with word_notify = false plus a
/// ring_doorbell() at their release boundary. Bells imply abort == nullptr
/// (watched runs keep the classic per-word path).
template <typename Shared, typename Bell = NoBell>
inline bool acquire_for(const Shared& shared, stf::TaskId expected_writer,
                        std::uint64_t expected_reads, bool for_write,
                        support::WaitPolicy policy,
                        const std::atomic<bool>* abort = nullptr,
                        std::uint64_t* spins = nullptr, Bell* bell = nullptr) {
  using proto::load_acq;
  using proto::wait_equal;
  bool stalled = false;
  if (load_acq(shared.last_executed_write.value) != expected_writer) {
    stalled = true;
    if constexpr (!std::is_same_v<Bell, NoBell>) {
      if (bell != nullptr) {
        bell_wait_equal(shared.last_executed_write.value, expected_writer,
                        *bell, spins);
      } else if (!wait_equal(shared.last_executed_write.value, expected_writer,
                             policy, abort, spins)) {
        return stalled;
      }
    } else if (!wait_equal(shared.last_executed_write.value, expected_writer,
                           policy, abort, spins)) {
      return stalled;  // aborted: skip the dependent read-count wait too
    }
  }
  if (for_write &&
      load_acq(shared.nb_reads_since_write.value) != expected_reads) {
    stalled = true;
    if constexpr (!std::is_same_v<Bell, NoBell>) {
      if (bell != nullptr) {
        bell_wait_equal(shared.nb_reads_since_write.value, expected_reads,
                        *bell, spins);
        return stalled;
      }
    }
    wait_equal(shared.nb_reads_since_write.value, expected_reads, policy,
               abort, spins);
  }
  return stalled;
}

/// get_read: block until every write this worker registered before the
/// current task has been performed.
template <typename Shared, typename Bell = NoBell>
inline bool get_read(const Shared& shared, const LocalDataState& local,
                     support::WaitPolicy policy,
                     const std::atomic<bool>* abort = nullptr,
                     std::uint64_t* spins = nullptr, Bell* bell = nullptr) {
  return acquire_for(shared, local.last_registered_write,
                     local.nb_reads_since_write, /*for_write=*/false, policy,
                     abort, spins, bell);
}

/// get_write: additionally block until all reads since that write have been
/// performed.
template <typename Shared, typename Bell = NoBell>
inline bool get_write(const Shared& shared, const LocalDataState& local,
                      support::WaitPolicy policy,
                      const std::atomic<bool>* abort = nullptr,
                      std::uint64_t* spins = nullptr, Bell* bell = nullptr) {
  return acquire_for(shared, local.last_registered_write,
                     local.nb_reads_since_write, /*for_write=*/true, policy,
                     abort, spins, bell);
}

/// publish_read: the shared half of terminate_read — one more read
/// performed. The read counter is a wait target under kBlock, so waiters
/// are notified after the increment — unless the run uses doorbells
/// (word_notify = false), in which case the producer's release-boundary
/// ring_doorbell() carries the wake instead.
template <typename Shared>
inline void publish_read(Shared& shared, support::WaitPolicy policy,
                         bool word_notify = true) {
  using proto::fetch_add;
  using proto::notify;
  fetch_add(shared.nb_reads_since_write.value, std::uint64_t{1});
  if (word_notify) notify(shared.nb_reads_since_write.value, policy);
}

/// publish_write: the shared half of terminate_write — reset the shared
/// read counter BEFORE publishing the new write id. A successor passes its
/// first wait only after observing the new id (acquire), so it can never
/// see the stale pre-reset read count. Both words are wait targets under
/// kBlock; notify both (or neither, under doorbells).
template <typename Shared>
inline void publish_write(Shared& shared, stf::TaskId task_id,
                          support::WaitPolicy policy,
                          bool word_notify = true) {
  using proto::notify;
  using proto::store_rel;
  using proto::store_rlx;
  store_rlx(shared.nb_reads_since_write.value, std::uint64_t{0});
  store_rel(shared.last_executed_write.value, task_id);
  if (word_notify) {
    notify(shared.last_executed_write.value, policy);
    notify(shared.nb_reads_since_write.value, policy);
  }
}

/// terminate_read: publish that one more read was performed, then register
/// it locally like any other worker would.
template <typename Shared>
inline void terminate_read(Shared& shared, LocalDataState& local,
                           support::WaitPolicy policy,
                           bool word_notify = true) {
  publish_read(shared, policy, word_notify);
  declare_read(local);
}

/// terminate_write: publish the new write, then register it locally.
template <typename Shared>
inline void terminate_write(Shared& shared, LocalDataState& local,
                            stf::TaskId task_id,
                            support::WaitPolicy policy,
                            bool word_notify = true) {
  publish_write(shared, task_id, policy, word_notify);
  declare_write(local, task_id);
}

}  // namespace rio::rt
