// Task pruning — Section 3.5.
//
// The decentralized model's main drawback is that every worker unrolls the
// whole flow: total unrolling work grows as p * n. Pruning lets each worker
// visit only the tasks it executes. Because a materialized flow is static,
// we can go further than the paper's sketch and precompute, for every
// access of every mapped task, the exact protocol values the worker would
// have accumulated in its local state had it unrolled everything:
//
//   * for a read:  the Task ID of the last write preceding it, and
//   * for a write: additionally the number of reads since that write.
//
// At execution time a pruned worker walks its own task list and waits
// directly on those expected values — zero declare operations, O(own tasks)
// unrolling. The precomputation is a single O(n) scan shared by all
// workers (analogous to the compiler-assisted pruning used in
// distributed-memory STF runtimes [Agullo et al., TPDS 2017]).
//
// Plans compile fastest from a stf::FlowImage (flat access array, no Task
// records touched), and PrunedPlanCache memoizes them keyed by
// (image serial, image fingerprint, mapping identity, worker count) so a
// run loop pays the O(n) compilation exactly once per distinct
// (flow, rewrite, mapping) triple.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "support/inline_vec.hpp"
#include "support/stats.hpp"
#include "rio/mapping.hpp"
#include "rio/runtime.hpp"
#include "stf/flow_image.hpp"
#include "stf/task_flow.hpp"

namespace rio::rt {

/// One precomputed access of a pruned task: which data, which mode, and
/// the protocol state to wait for before proceeding.
struct PrunedAccess {
  stf::DataId data = stf::kInvalidData;
  stf::AccessMode mode = stf::AccessMode::kRead;
  stf::TaskId expected_writer = kNoWrite;  ///< last write before this task
  std::uint64_t expected_reads = 0;        ///< reads since it (writes only)
};

/// A worker's slice of the flow after pruning.
struct PrunedTask {
  stf::TaskId id = stf::kInvalidTask;
  support::InlineVec<PrunedAccess, 4> accesses;
};

/// The full pruned execution plan: per-worker task lists with resolved
/// dependency expectations. Build once, execute many times.
class PrunedPlan {
 public:
  /// O(num_tasks) scan; evaluates `mapping` once per task.
  PrunedPlan(const stf::TaskFlow& flow, const Mapping& mapping,
             std::uint32_t num_workers);

  /// Same scan over a compiled image: walks the flat access array instead
  /// of per-task Access lists. Ids stay global (image.first_id() based).
  PrunedPlan(const stf::FlowImage& image, const Mapping& mapping,
             std::uint32_t num_workers);

  [[nodiscard]] std::uint32_t num_workers() const noexcept {
    return static_cast<std::uint32_t>(per_worker_.size());
  }
  [[nodiscard]] const std::vector<PrunedTask>& tasks_for(
      stf::WorkerId w) const {
    return per_worker_[w];
  }

  /// Total tasks across workers (== flow.num_tasks()).
  [[nodiscard]] std::size_t total_tasks() const noexcept { return total_; }

 private:
  std::vector<std::vector<PrunedTask>> per_worker_;
  std::size_t total_ = 0;
};

/// Memoizes compiled plans keyed by (FlowImage::serial(),
/// FlowImage::fingerprint(), Mapping::identity(), worker count). A repeated
/// run() over the same image+mapping pays ZERO plan recomputation — the
/// property micro_unroll measures and the replay tests assert via
/// compiles(). The fingerprint matters for flowpass rewrites: an optimized
/// image inherits its source's serial, and only the content hash keeps it
/// from reusing the unoptimized plan.
///
/// Not thread-safe: one cache belongs to one driving thread (the engines
/// themselves are already single-entry).
class PrunedPlanCache {
 public:
  /// Returns the cached plan, compiling (and counting) on first sight.
  std::shared_ptr<const PrunedPlan> get(const stf::FlowImage& image,
                                        const Mapping& mapping,
                                        std::uint32_t num_workers);

  /// How many plans were actually compiled (cache misses).
  [[nodiscard]] std::uint64_t compiles() const noexcept { return compiles_; }
  [[nodiscard]] std::size_t size() const noexcept { return entries_.size(); }
  void clear() noexcept { entries_.clear(); }

 private:
  struct Key {
    std::uint64_t serial = 0;       // FlowImage::serial() (lineage)
    std::uint64_t fingerprint = 0;  // FlowImage::fingerprint() (content) —
                                    // rewritten images share the source's
                                    // serial and must never alias its plan
    const void* mapping = nullptr;  // Mapping::identity()
    std::uint32_t workers = 0;
  };
  struct Entry {
    Key key;
    std::shared_ptr<const PrunedPlan> plan;
  };
  std::vector<Entry> entries_;  // few distinct keys per process: linear scan
  std::uint64_t compiles_ = 0;
};

/// Executes a flow through a pruned plan. Same synchronization protocol as
/// Runtime::run, but each worker only ever touches its own tasks.
class PrunedRuntime {
 public:
  explicit PrunedRuntime(Config cfg);

  support::RunStats run(const stf::TaskFlow& flow, const PrunedPlan& plan);

  /// Image replay through an explicit plan (bodies come from image.task()).
  support::RunStats run(const stf::FlowImage& image, const PrunedPlan& plan);

  /// Cached fast path: compiles the plan on first call for this
  /// (image, mapping) pair, replays from cache afterwards. The bench loop
  /// is literally `while (...) prt.run(image, mapping);`.
  support::RunStats run(const stf::FlowImage& image, const Mapping& mapping);

  /// Trace of the last run (empty unless cfg.collect_trace).
  [[nodiscard]] const stf::Trace& trace() const noexcept { return trace_; }

  /// Synchronization events of the last run (empty unless cfg.collect_sync).
  [[nodiscard]] const stf::SyncTrace& sync_trace() const noexcept {
    return sync_trace_;
  }

  /// Cache-miss counter of the internal plan cache (test hook for the
  /// "second run recompiles nothing" guarantee).
  [[nodiscard]] std::uint64_t plan_compiles() const noexcept {
    return cache_.compiles();
  }

  [[nodiscard]] const Config& config() const noexcept { return cfg_; }

  /// Same contract as Runtime::attach_pool: reuse `pool` for all subsequent
  /// runs instead of spawning threads per run.
  void attach_pool(support::ThreadPool* pool) noexcept { pool_ = pool; }

 private:
  Config cfg_;
  stf::Trace trace_;
  stf::SyncTrace sync_trace_;
  PrunedPlanCache cache_;
  support::ThreadPool* pool_ = nullptr;
  RunArenas arenas_;  ///< recycled across runs (never shrinks)
};

}  // namespace rio::rt
