// Task pruning — Section 3.5.
//
// The decentralized model's main drawback is that every worker unrolls the
// whole flow: total unrolling work grows as p * n. Pruning lets each worker
// visit only the tasks it executes. Because a materialized flow is static,
// we can go further than the paper's sketch and precompute, for every
// access of every mapped task, the exact protocol values the worker would
// have accumulated in its local state had it unrolled everything:
//
//   * for a read:  the Task ID of the last write preceding it, and
//   * for a write: additionally the number of reads since that write.
//
// At execution time a pruned worker walks its own task list and waits
// directly on those expected values — zero declare operations, O(own tasks)
// unrolling. The precomputation is a single O(n) scan shared by all
// workers (analogous to the compiler-assisted pruning used in
// distributed-memory STF runtimes [Agullo et al., TPDS 2017]).
#pragma once

#include <cstdint>
#include <vector>

#include "support/inline_vec.hpp"
#include "support/stats.hpp"
#include "rio/mapping.hpp"
#include "rio/runtime.hpp"
#include "stf/task_flow.hpp"

namespace rio::rt {

/// One precomputed access of a pruned task: which data, which mode, and
/// the protocol state to wait for before proceeding.
struct PrunedAccess {
  stf::DataId data = stf::kInvalidData;
  stf::AccessMode mode = stf::AccessMode::kRead;
  stf::TaskId expected_writer = kNoWrite;  ///< last write before this task
  std::uint64_t expected_reads = 0;        ///< reads since it (writes only)
};

/// A worker's slice of the flow after pruning.
struct PrunedTask {
  stf::TaskId id = stf::kInvalidTask;
  support::InlineVec<PrunedAccess, 4> accesses;
};

/// The full pruned execution plan: per-worker task lists with resolved
/// dependency expectations. Build once, execute many times.
class PrunedPlan {
 public:
  /// O(num_tasks) scan; evaluates `mapping` once per task.
  PrunedPlan(const stf::TaskFlow& flow, const Mapping& mapping,
             std::uint32_t num_workers);

  [[nodiscard]] std::uint32_t num_workers() const noexcept {
    return static_cast<std::uint32_t>(per_worker_.size());
  }
  [[nodiscard]] const std::vector<PrunedTask>& tasks_for(
      stf::WorkerId w) const {
    return per_worker_[w];
  }

  /// Total tasks across workers (== flow.num_tasks()).
  [[nodiscard]] std::size_t total_tasks() const noexcept { return total_; }

 private:
  std::vector<std::vector<PrunedTask>> per_worker_;
  std::size_t total_ = 0;
};

/// Executes a flow through a pruned plan. Same synchronization protocol as
/// Runtime::run, but each worker only ever touches its own tasks.
class PrunedRuntime {
 public:
  explicit PrunedRuntime(Config cfg);

  support::RunStats run(const stf::TaskFlow& flow, const PrunedPlan& plan);

 private:
  Config cfg_;
};

}  // namespace rio::rt
