// Per-worker doorbells: batched block-policy wakeups for Algorithm 2.
//
// Before PR 7 every publish under the kBlock policy paid a notify per sync
// word — up to two futex-wake syscalls per access even when nobody was
// parked. The doorbell scheme moves parking off the protocol words
// entirely: each worker owns ONE doorbell word, and a stalled worker parks
// on its own bell instead of the sync word it is waiting for. Producers
// then publish a whole task's accesses with plain release stores
// (word_notify = false) and ring every other worker's bell ONCE at the
// task's release boundary — one RMW per peer per task instead of one
// syscall per word, and the futex wake itself is issued only when the
// bell's owner is actually parked.
//
// The bell is a single 64-bit word combining the two doorbell roles:
//   * low 32 bits  — waiter count. Only the OWNER ever touches these
//     (register/deregister around its park), which is what makes one
//     combined word safe here: the value a parked owner waits on can only
//     move by producer version bumps. (The multi-waiter ready ring needs
//     the two words split — see coor/ready_ring.hpp.)
//   * high 32 bits — version. Bumped by any producer's ring_doorbell();
//     the single fetch_add doubles as the waiter probe since it returns
//     the old value.
//
// Missed-wakeup argument (same RMW-Dekker shape as the ready ring): the
// owner registers with an RMW on the bell and THEN re-checks the sync
// word; a producer publishes the sync word and THEN bumps the bell with an
// RMW. Whichever RMW lands second in the bell's modification order
// observes the other side's first operation, so either the owner sees the
// published value and never parks, or the producer sees the waiter bit and
// issues the wake. The park itself is futex-faithful (wait on the sampled
// bell value), so mc::impl explores exactly this protocol and drop_notify
// on the bell path is caught as a lost wakeup.
//
// Bells are only engaged for kBlock runs WITHOUT a watchdog: abort-aware
// waits must poll (a futex park cannot observe the abort flag), so watched
// runs keep the classic per-word path and its degradation semantics.
#pragma once

#include <cstdint>

#include "rio/proto.hpp"
#include "support/wait.hpp"

namespace rio::rt {

inline constexpr std::uint64_t kBellWaiter = 1;
inline constexpr std::uint64_t kBellWaiterMask = 0xffffffffull;
inline constexpr std::uint64_t kBellVersion = std::uint64_t{1} << 32;

/// Waits until `word == expected`, parking on the caller's own doorbell.
/// Only the bell's owner may call this (single-registrant invariant).
/// Producers must ring_doorbell() after publishing, so every version bump
/// is a "something you may be waiting for changed" hint; spurious bumps
/// simply re-check the word and park again.
template <typename Word, typename Bell, typename T>
void bell_wait_equal(const Word& word, T expected, Bell& bell,
                     std::uint64_t* spins) {
  using proto::fetch_add;
  using proto::load_acq;
  using proto::wait_changed;
  std::uint64_t rounds = 0;
  for (;;) {
    if (load_acq(word) == expected) break;
    ++rounds;
    // Register, then re-check: the fetch_add returns the pre-registration
    // bell value, so `seen` is exactly the value we may park against.
    const std::uint64_t seen = fetch_add(bell, kBellWaiter) + kBellWaiter;
    if (load_acq(word) == expected) {
      fetch_add(bell, std::uint64_t{0} - kBellWaiter);
      break;
    }
    wait_changed(bell, seen, support::WaitPolicy::kBlock, nullptr, spins);
    fetch_add(bell, std::uint64_t{0} - kBellWaiter);
  }
  if (spins != nullptr) *spins += rounds;
}

/// Bumps one peer's bell at a release boundary. Returns true when a futex
/// wake was issued (the owner was parked), false when it was elided — the
/// kWakeupsIssued / kWakeupsElided telemetry feed.
template <typename Bell>
bool ring_doorbell(Bell& bell, support::WaitPolicy policy) {
  using proto::fetch_add;
  using proto::notify;
  const std::uint64_t old = fetch_add(bell, kBellVersion);
  if ((old & kBellWaiterMask) != 0) {
    notify(bell, policy);
    return true;
  }
  return false;
}

}  // namespace rio::rt
