#include "rio/runtime.hpp"

#include <atomic>
#include <barrier>
#include <exception>
#include <mutex>
#include <optional>
#include <thread>
#include <utility>

#include "obs/obs.hpp"
#include "support/assert.hpp"
#include "support/clock.hpp"
#include "support/topology.hpp"
#include "support/watchdog.hpp"
#include "rio/stall_diag.hpp"
#include "stf/failure.hpp"
#include "stf/resilience.hpp"

namespace rio::rt {
namespace {

/// Watchdog window auto-armed for crash-capable fault plans: the tripwire
/// detects a recorded death within one poll (~window/8), so recovery
/// latency is bounded by ~12ms, not by task-flow drain time.
constexpr std::uint64_t kDefaultCrashWatchdogNs = 100'000'000;  // 100ms

/// Everything one worker needs while unrolling the flow. Lives on the
/// worker's stack; the vectors are worker-private by construction.
struct WorkerCtx {
  stf::WorkerId self = 0;
  const Mapping* mapping = nullptr;
  SharedDataState* shared = nullptr;  // array indexed by DataId
  LocalDataState* local = nullptr;    // worker-private mirror (arena-backed)
  const stf::DataRegistry* registry = nullptr;
  support::WaitPolicy policy = support::WaitPolicy::kSpinYield;

  // Doorbell batching (src/rio/doorbell.hpp), engaged for kBlock runs
  // without a watchdog: this worker parks on bells[self] instead of sync
  // words, publishes with word_notify = false, and rings every peer's bell
  // once per completed task.
  support::AlignedAtomic<std::uint64_t>* bells = nullptr;
  std::uint32_t num_workers = 1;
  bool use_bells = false;

  // Instrumentation (all optional). `timed` is the union of every consumer
  // of the per-task clock reads: the tau buckets, the trace, and the flight
  // recorder all draw from the SAME obs phase spans (docs/observability.md).
  bool collect_stats = false;
  bool collect_trace = false;
  bool collect_sync = false;
  bool timed = false;
  obs::WorkerObs obs;
  stf::AccessGuard* guard = nullptr;
  std::atomic<std::uint64_t>* seq = nullptr;  // global completion counter
  std::atomic<std::uint64_t>* sync_stamp = nullptr;  // sync-event order
  support::WorkerStats stats;
  std::vector<stf::TraceEvent> trace;
  std::vector<stf::SyncEvent> sync;

  // Failure handling: the first thrown exception wins; once `cancelled` is
  // set, remaining task BODIES are skipped while the synchronization
  // protocol keeps running, so every worker drains deterministically.
  std::atomic<bool>* cancelled = nullptr;
  std::exception_ptr* first_error = nullptr;
  std::mutex* error_mu = nullptr;

  // Resilience (all optional; the defaults keep the historical fast path).
  stf::ResilienceOpts res;
  bool resilient = false;              ///< res.active(), hoisted
  stf::DataSnapshot snapshot;          ///< rollback arena, worker-private
  support::WorkerProbe* probe = nullptr;  ///< watchdog observability slot

  // Recovery (docs/robustness.md "worker loss").
  const stf::Frontier* resume = nullptr;    ///< replay done tasks as no-ops
  stf::CompletionBoard* checkpoint = nullptr;  ///< live done bitmap
  std::uint32_t checkpoint_pending = 0;     ///< sampled-progress local count
  stf::DeathBoard* deaths = nullptr;        ///< crash blotter (crash-armed)
  bool dead = false;  ///< this worker crashed: exit the unroll loop
};

/// Records the first error and flips the cancellation flag.
void record_failure(WorkerCtx& ctx, std::exception_ptr error) {
  std::lock_guard lock(*ctx.error_mu);
  if (!*ctx.first_error) *ctx.first_error = std::move(error);
  ctx.cancelled->store(true, std::memory_order_release);
}

/// The mapped-here half of Algorithm 1: acquire every access (get_*), run
/// the body, then release (terminate_*). Acquisition cannot deadlock: a
/// get_* only waits on the completion of strictly earlier tasks, never on
/// another waiting worker.
void execute_owned(const stf::Task& task, WorkerCtx& ctx) {
  bool stalled = false;
  std::uint64_t wait_begin = 0;
  std::uint64_t wait_cause = obs::kNoCause;
  if (ctx.timed) wait_begin = support::monotonic_ns();
  std::atomic<std::uint64_t>* bell =
      ctx.use_bells ? &ctx.bells[ctx.self].value : nullptr;
  for (const stf::Access& a : task.accesses) {
    // The expected producer, read before get_* observes the counters —
    // the same pair the watchdog probe and stall_diag print.
    const stf::TaskId expected = ctx.local[a.data].last_registered_write;
    if (ctx.probe != nullptr) {
      // Publish what we are about to wait for, so a watchdog firing
      // mid-wait can report expected vs observed counters.
      ctx.probe->task.store(task.id, std::memory_order_relaxed);
      ctx.probe->data.store(a.data, std::memory_order_relaxed);
      ctx.probe->expected_writer.store(expected, std::memory_order_relaxed);
      ctx.probe->expected_reads.store(ctx.local[a.data].nb_reads_since_write,
                                      std::memory_order_relaxed);
      ctx.probe->set_state(support::ProbeState::kWaiting);
    }
    const bool waited =
        is_write(a.mode)
            ? get_write(ctx.shared[a.data], ctx.local[a.data], ctx.policy,
                        ctx.res.abort, &ctx.obs.spin_iters, bell)
            : get_read(ctx.shared[a.data], ctx.local[a.data], ctx.policy,
                       ctx.res.abort, &ctx.obs.spin_iters, bell);
    // The last access that stalled is the one whose producer ended the
    // wait span — that (data, producer) pair is the span's cause.
    if (waited) wait_cause = obs::make_cause(expected, a.data);
    stalled |= waited;
  }
  if (ctx.probe != nullptr) ctx.probe->set_state(support::ProbeState::kExecuting);
  if (stalled) {
    if (ctx.timed)
      ctx.obs.span(obs::Phase::kAcquireWait, task.id, wait_begin,
                   support::monotonic_ns(), wait_cause);
    ctx.obs.count(obs::Counter::kProtocolWaits);
    if (ctx.collect_stats) ++ctx.stats.waits;
  }

  // Acquire stamps are drawn AFTER every get_* completed, so each observed
  // terminate_* (stamped before its publish) sorts strictly earlier — the
  // invariant the happens-before checker relies on.
  if (ctx.collect_sync) {
    for (const stf::Access& a : task.accesses)
      ctx.sync.push_back(
          {task.id, ctx.self, a.data, a.mode, stf::SyncKind::kAcquire,
           ctx.sync_stamp->fetch_add(1, std::memory_order_acq_rel)});
  }

  if (ctx.guard)
    for (const stf::Access& a : task.accesses) ctx.guard->acquire(a);

  // Resume replay: a task already inside the completion frontier re-runs
  // ONLY its protocol ops (the acquires above were pre-satisfied no-ops on
  // a fresh protocol state in flow order) — its data effects are already
  // in the registry, so the body, fault injection and checkpoint mark are
  // all skipped.
  const bool replay = ctx.resume != nullptr && ctx.resume->done(task.id);
  bool body_ok = !replay;
  bool crashed = false;
  std::uint64_t t0 = 0;
  if (ctx.timed) t0 = support::monotonic_ns();
  if (replay) {
    ctx.obs.count(obs::Counter::kTasksReplayed);
  } else if (ctx.resilient) {
    if (!ctx.cancelled->load(std::memory_order_acquire)) {
      stf::BodyResult r = stf::execute_body(task, *ctx.registry, ctx.self,
                                            ctx.res, ctx.snapshot);
      if (r.crashed) {
        crashed = true;
      } else if (!r.ok) {
        body_ok = false;
        record_failure(ctx, std::move(r.error));
      }
    } else {
      body_ok = false;  // skipped under cancellation: not done, not marked
    }
  } else if (task.fn && !ctx.cancelled->load(std::memory_order_acquire)) {
    stf::TaskContext tc(task, *ctx.registry, ctx.self);
    try {
      task.fn(tc);
    } catch (...) {
      body_ok = false;
      record_failure(ctx, std::current_exception());
    }
  } else if (ctx.cancelled->load(std::memory_order_acquire)) {
    body_ok = false;
  }
  std::uint64_t t1 = 0;
  if (ctx.timed) {
    t1 = support::monotonic_ns();
    ctx.obs.span(obs::Phase::kBody, task.id, t0, t1);
  }

  if (ctx.guard)
    for (const stf::Access& a : task.accesses) ctx.guard->release(a);

  if (crashed) {
    // Permanent worker death: record the dirty write spans (the body DID
    // run) and leave without publishing the terminate — dependents block
    // until the watchdog tripwire aborts the run, and the supervisor
    // restores `dirty` before replaying this task on a survivor.
    stf::DeathRecord d;
    d.worker = ctx.self;
    d.task = task.id;
    d.dirty = std::move(ctx.snapshot);
    ctx.deaths->record(std::move(d));
    ctx.dead = true;
    if (ctx.probe != nullptr) ctx.probe->set_state(support::ProbeState::kDone);
    return;
  }

  // Checkpoint mark: after the body succeeded, before the terminate
  // publish — a set bit guarantees the task's effects are present.
  if (ctx.checkpoint != nullptr && body_ok) {
    ctx.checkpoint->mark(task.id);
    ctx.checkpoint->note_completion(ctx.checkpoint_pending);
  }

  // Release stamps are drawn BEFORE terminate_* publishes anything.
  if (ctx.collect_sync) {
    for (const stf::Access& a : task.accesses)
      ctx.sync.push_back(
          {task.id, ctx.self, a.data, a.mode, stf::SyncKind::kRelease,
           ctx.sync_stamp->fetch_add(1, std::memory_order_acq_rel)});
  }

  const bool word_notify = !ctx.use_bells;
  for (const stf::Access& a : task.accesses) {
    if (is_write(a.mode))
      terminate_write(ctx.shared[a.data], ctx.local[a.data], task.id,
                      ctx.policy, word_notify);
    else
      terminate_read(ctx.shared[a.data], ctx.local[a.data], ctx.policy,
                     word_notify);
  }
  if (ctx.use_bells) {
    // One bump per peer per task — the whole release boundary batched into
    // (p - 1) RMWs, with the futex syscall only when a peer is parked.
    std::uint64_t issued = 0;
    for (std::uint32_t w = 0; w < ctx.num_workers; ++w) {
      if (w == ctx.self) continue;
      if (ring_doorbell(ctx.bells[w].value, ctx.policy)) ++issued;
    }
    ctx.obs.count(obs::Counter::kWakeups, ctx.num_workers - 1);
    ctx.obs.count(obs::Counter::kWakeupsIssued, issued);
    ctx.obs.count(obs::Counter::kWakeupsElided,
                  (ctx.num_workers - 1) - issued);
  } else {
    ctx.obs.count(obs::Counter::kWakeups, task.accesses.size());
  }
  if (ctx.timed)
    ctx.obs.span(obs::Phase::kRelease, task.id, t1, support::monotonic_ns());
  ctx.obs.count(obs::Counter::kTasksExecuted);

  if (ctx.collect_trace) {
    ctx.trace.push_back(
        {task.id, ctx.self, t0, t1,
         ctx.seq->fetch_add(1, std::memory_order_relaxed)});
  }
  if (ctx.probe != nullptr)
    ctx.probe->progress.fetch_add(1, std::memory_order_relaxed);
  if (ctx.collect_stats) ++ctx.stats.tasks_executed;
}

/// Handles one task in flow order: execute it if mapped here, otherwise
/// register its accesses locally. This is the body of Algorithm 1
/// generalized to tasks with several accesses.
void process_task(const stf::Task& task, WorkerCtx& ctx) {
  const stf::WorkerId executor = (*ctx.mapping)(task.id);
  if (executor != ctx.self) {
    // Not ours: one or two private-memory writes per access, no atomics.
    for (const stf::Access& a : task.accesses) {
      if (is_write(a.mode))
        declare_write(ctx.local[a.data], task.id);
      else
        declare_read(ctx.local[a.data]);
    }
    if (ctx.collect_stats) ++ctx.stats.tasks_skipped;
    ctx.obs.count(obs::Counter::kTasksSkipped);
    return;
  }
  execute_owned(task, ctx);
}

/// Streaming sink: submits flow straight into process_task, assigning ids
/// by submission order (identical on every worker for a deterministic
/// program).
class ReplaySink final : public stf::SubmitSink {
 public:
  explicit ReplaySink(WorkerCtx& ctx) : ctx_(ctx) {}

  void submit(stf::TaskFn fn, stf::AccessList accesses, std::uint64_t cost,
              std::string name) override {
    if (ctx_.dead) {
      ++next_id_;  // a dead worker ignores the rest of the program
      return;
    }
    stf::Task t;
    t.id = next_id_++;
    t.fn = std::move(fn);
    t.accesses = std::move(accesses);
    t.cost = cost;
    t.name = std::move(name);
    process_task(t, ctx_);
  }

 private:
  WorkerCtx& ctx_;
  stf::TaskId next_id_ = 0;
};

/// Shared fork-join scaffolding of every run flavour: allocates the shared
/// protocol words and per-worker contexts, aligns the workers on a start
/// barrier, runs `unroll(ctx)` on each, then folds stats/traces back
/// together. `unroll` is the whole per-worker walk (streaming, ranged, or
/// compiled-image replay).
template <typename UnrollFn>
support::RunStats launch(const Config& cfg, support::ThreadPool* pool,
                         const stf::DataRegistry& registry,
                         std::size_t num_data, std::size_t trace_reserve,
                         stf::Trace& trace_out, stf::SyncTrace& sync_out,
                         const Mapping& mapping, RunArenas& arenas,
                         UnrollFn&& unroll) {
  RIO_ASSERT(mapping.valid());
  const std::uint32_t p = cfg.num_workers;
  // Crash-armed plans force a watchdog (default window when unset): a
  // worker death must escalate as stf::WorkerLost, never hang the run —
  // and watched waits are abort-pollable, which the drain relies on.
  const bool crash_armed =
      cfg.fault != nullptr && cfg.fault->plan().crash_armed();
  const std::uint64_t watchdog_ns =
      cfg.watchdog_ns > 0 ? cfg.watchdog_ns
                          : (crash_armed ? kDefaultCrashWatchdogNs : 0);
  const bool watched_early = watchdog_ns > 0;
  // Doorbell batching replaces per-word notifies for unwatched kBlock runs;
  // watched runs keep the classic path so abort-aware waits can poll.
  const bool use_bells = cfg.wait_policy == support::WaitPolicy::kBlock &&
                         !watched_early && cfg.doorbells;

  // Recycled sync-word arena: reset in place when it already fits.
  // SharedDataState holds atomics (not copyable), so growth recreates.
  std::vector<SharedDataState>& shared = arenas.shared;
  if (shared.size() < num_data) {
    shared = std::vector<SharedDataState>(num_data);
  } else {
    for (std::size_t d = 0; d < num_data; ++d) {
      shared[d].last_executed_write.value.store(kNoWrite,
                                                std::memory_order_relaxed);
      shared[d].nb_reads_since_write.value.store(0, std::memory_order_relaxed);
    }
  }
  if (use_bells) {
    if (arenas.bells.size() < p) {
      arenas.bells =
          std::vector<support::AlignedAtomic<std::uint64_t>>(p);
    } else {
      for (std::uint32_t w = 0; w < p; ++w)
        arenas.bells[w].value.store(0, std::memory_order_relaxed);
    }
  }
  stf::AccessGuard guard;
  if (cfg.enable_guard) guard.enable(num_data);
  std::atomic<std::uint64_t> seq{0};
  std::atomic<std::uint64_t> sync_stamp{0};
  std::atomic<bool> cancelled{false};
  std::atomic<bool> abort{false};  // set only by a firing watchdog
  std::exception_ptr first_error;
  std::mutex error_mu;
  stf::DeathBoard deaths;  // crash blotter; observed by the tripwire

  const bool watched = watchdog_ns > 0;
  std::vector<support::WorkerProbe> probes(watched ? p : 0);

  std::vector<WorkerCtx> ctxs(p);
  arenas.locals.resize(p);
  for (std::uint32_t w = 0; w < p; ++w) {
    WorkerCtx& c = ctxs[w];
    c.self = w;
    c.mapping = &mapping;
    c.shared = shared.data();
    // Recycled worker-private replica array (assign keeps capacity).
    arenas.locals[w].assign(num_data, LocalDataState{});
    c.local = arenas.locals[w].data();
    c.registry = &registry;
    c.policy = cfg.wait_policy;
    c.bells = use_bells ? arenas.bells.data() : nullptr;
    c.num_workers = p;
    c.use_bells = use_bells;
    c.collect_stats = cfg.collect_stats;
    c.collect_trace = cfg.collect_trace;
    c.collect_sync = cfg.collect_sync;
    c.guard = cfg.enable_guard ? &guard : nullptr;
    c.seq = &seq;
    c.sync_stamp = &sync_stamp;
    c.cancelled = &cancelled;
    c.first_error = &first_error;
    c.error_mu = &error_mu;
    c.res.retry = cfg.retry;
    c.res.fault = cfg.fault;
    c.res.abort = watched ? &abort : nullptr;
    c.resilient = c.res.active();
    c.probe = watched ? &probes[w] : nullptr;
    c.resume = cfg.resume;
    c.checkpoint = cfg.checkpoint;
    c.deaths = crash_armed ? &deaths : nullptr;
  }
  if (cfg.obs != nullptr) cfg.obs->ensure_workers(p);
  for (std::uint32_t w = 0; w < p; ++w) {
    WorkerCtx& c = ctxs[w];
    c.obs.bind(cfg.obs, w);
    c.res.obs = &c.obs;
    c.timed = cfg.collect_stats || cfg.collect_trace || c.obs.recording();
  }

  // All workers align on a start barrier so their wall times compare; the
  // makespan clock wraps the whole fork-join (spawn/wake cost included).
  std::barrier start(static_cast<std::ptrdiff_t>(p));
  std::vector<std::uint64_t> worker_wall(p, 0);

  const std::uint32_t cpus = support::detect_topology().logical_cpus;
  const auto body = [&](std::uint32_t w) {
    if (cfg.pin_workers) support::pin_current_thread(w % cpus);
    WorkerCtx& c = ctxs[w];
    start.arrive_and_wait();
    const std::uint64_t begin = support::monotonic_ns();
    unroll(c);
    if (c.probe != nullptr) c.probe->set_state(support::ProbeState::kDone);
    worker_wall[w] = support::monotonic_ns() - begin;
  };

  // Progress watchdog: a monitor thread watches the sum of per-worker
  // executed-task counters; if it freezes for the whole window, capture the
  // diagnostic (while workers are still stuck), then cancel + abort so every
  // wait drains and the run fails with StallError instead of hanging.
  std::optional<support::Watchdog> watchdog;
  if (watched) {
    watchdog.emplace(
        watchdog_ns,
        [&probes, p, hub = cfg.obs]() noexcept {
          if (hub != nullptr)
            hub->global_counters().add(obs::Counter::kWatchdogProbes);
          std::uint64_t sum = 0;
          for (std::uint32_t w = 0; w < p; ++w)
            sum += probes[w].progress.load(std::memory_order_relaxed);
          return sum;
        },
        [&] {
          if (cfg.obs != nullptr) {
            // The watchdog thread owns no ring; stall markers go through
            // the hub's out-of-band instant list.
            const std::uint64_t now = support::monotonic_ns();
            for (std::uint32_t w = 0; w < p; ++w)
              cfg.obs->instant(
                  {now, now, probes[w].task.load(std::memory_order_relaxed), w,
                   obs::Phase::kStallSnapshot});
          }
          return stall_diagnostic("rio", watchdog_ns, probes.data(), p,
                                  shared.data(), num_data);
        },
        [&] {
          cancelled.store(true, std::memory_order_release);
          abort.store(true, std::memory_order_release);
        },
        // Tripwire: a recorded worker death aborts the run at the next
        // poll even while survivors still make progress elsewhere.
        crash_armed ? std::function<bool()>([&deaths] {
          return deaths.any_death();
        })
                    : std::function<bool()>());
  }

  const std::uint64_t t0 = support::monotonic_ns();
  support::run_parallel(pool, p, body);
  const std::uint64_t wall = support::monotonic_ns() - t0;
  if (watchdog) watchdog->stop();

  support::RunStats stats;
  stats.wall_ns = wall;
  stats.workers.resize(p);
  trace_out.clear();
  sync_out.clear();
  if (cfg.collect_trace && trace_reserve > 0) trace_out.reserve(trace_reserve);
  for (std::uint32_t w = 0; w < p; ++w) {
    WorkerCtx& c = ctxs[w];
    if (cfg.collect_stats) {
      // The tau buckets are DERIVED from the obs phase accumulators: task
      // time is the body phase, idle the acquire-wait stalls, and whatever
      // was neither is runtime management — unrolling, declare ops,
      // protocol publication.
      c.stats.buckets = c.obs.buckets(worker_wall[w]);
    }
    c.obs.commit(cfg.obs);
    stats.workers[w] = c.stats;
    for (const stf::TraceEvent& ev : c.trace) trace_out.record(ev);
    for (const stf::SyncEvent& ev : c.sync) sync_out.record(ev);
  }
  // Escalation order: worker loss outranks a stall (the stall IS the
  // death's symptom — dependents of the unpublished task blocked), and a
  // stall outranks any task failure.
  if (deaths.any_death())
    throw stf::WorkerLost(deaths.take(), watchdog && watchdog->fired()
                                             ? watchdog->diagnostic()
                                             : std::string());
  if (watchdog && watchdog->fired()) throw stf::StallError(watchdog->diagnostic());
  if (first_error) std::rethrow_exception(first_error);
  return stats;
}

}  // namespace

Runtime::Runtime(Config cfg) : cfg_(cfg) {
  RIO_ASSERT_MSG(cfg_.num_workers > 0, "need at least one worker");
}

support::RunStats Runtime::run(const stf::TaskFlow& flow,
                               const Mapping& mapping) {
  return run(stf::FlowRange(flow), mapping);
}

support::RunStats Runtime::run(const stf::FlowRange& range,
                               const Mapping& mapping) {
  return launch(cfg_, pool_, range.registry(), range.num_data(), range.size(),
                trace_, sync_trace_, mapping, arenas_, [&](WorkerCtx& c) {
                  for (const stf::Task& task : range) {
                    process_task(task, c);
                    if (c.dead) break;
                  }
                });
}

support::RunStats Runtime::run(const stf::FlowImage& image,
                               const Mapping& mapping) {
  return run(stf::ImageRange(image), mapping);
}

support::RunStats Runtime::run(const stf::ImageRange& range,
                               const Mapping& mapping) {
  // Hoist everything the unroll loop needs out of the per-task path: the
  // span and access arrays are the ONLY memory a worker touches for a task
  // it skips (plus its private local[] words) — the dense metadata that
  // makes p×n unrolling cheap.
  const std::size_t n = range.size();
  const stf::FlowImage::Span* spans = range.spans();
  const stf::Access* acc = range.accesses_base();
  const stf::TaskId first = n > 0 ? range.first_id() : 0;
  return launch(
      cfg_, pool_, range.registry(), range.num_data(), n, trace_, sync_trace_,
      mapping, arenas_, [&, n, spans, acc, first](WorkerCtx& c) {
        const Mapping& map = *c.mapping;
        std::uint64_t skipped = 0;  // batched: keeps the declare loop tight
        for (std::size_t i = 0; i < n; ++i) {
          const stf::TaskId id = first + i;
          if (map(id) != c.self) {
            const stf::FlowImage::Span s = spans[i];
            for (std::uint32_t k = s.begin; k != s.end; ++k) {
              const stf::Access a = acc[k];
              if (is_write(a.mode))
                declare_write(c.local[a.data], id);
              else
                declare_read(c.local[a.data]);
            }
            ++skipped;
            continue;
          }
          execute_owned(range.task(i), c);
          if (c.dead) break;
        }
        if (c.collect_stats) c.stats.tasks_skipped += skipped;
        if (skipped > 0) c.obs.count(obs::Counter::kTasksSkipped, skipped);
      });
}

support::RunStats Runtime::run_program(const stf::DataRegistry& registry,
                                       const stf::ProgramFn& program,
                                       const Mapping& mapping) {
  return launch(cfg_, pool_, registry, registry.size(), 0, trace_, sync_trace_,
                mapping, arenas_, [&](WorkerCtx& c) {
                  ReplaySink sink(c);
                  program(sink);  // the worker IS the unroller
                });
}

}  // namespace rio::rt
