// RIO — the decentralized in-order runtime (Section 3, Algorithm 1).
//
// Execution model:
//   * every worker unrolls the WHOLE task flow (no master thread);
//   * a deterministic Mapping decides which worker executes each task;
//   * a worker executes its own tasks strictly in flow order;
//   * for everybody else's tasks it only updates worker-private dependency
//     counters (declare_read / declare_write — one or two private writes);
//   * cross-worker synchronization happens exclusively through the two
//     shared words of each data object (data_object.hpp).
//
// Two front ends are provided:
//   * run(flow, mapping)          — replays a materialized TaskFlow;
//   * run_program(reg, prog, map) — every worker executes the user program
//                                   itself (the paper's true decentralized
//                                   unrolling; nothing is ever stored).
#pragma once

#include <cstdint>
#include <vector>

#include "support/fault.hpp"
#include "support/stats.hpp"
#include "support/thread_pool.hpp"
#include "support/wait.hpp"
#include "rio/data_object.hpp"
#include "rio/mapping.hpp"
#include "stf/access_guard.hpp"
#include "stf/flow_image.hpp"
#include "stf/flow_range.hpp"
#include "stf/frontier.hpp"
#include "stf/task_flow.hpp"
#include "stf/trace.hpp"

namespace rio::obs {
class Hub;
}

namespace rio::rt {

/// Per-run allocations recycled across runs of one Runtime: the per-handle
/// sync-word array, each worker's private replica array, and the per-worker
/// doorbells. Repeat runs (benches, hybrid phases, the pruned-plan replay
/// path) reset these in place instead of reallocating — the task-pool
/// recycling half of the wait/notify hot-path work (docs/perf.md).
struct RunArenas {
  std::vector<SharedDataState> shared;
  std::vector<std::vector<LocalDataState>> locals;
  std::vector<support::AlignedAtomic<std::uint64_t>> bells;
};

/// Runtime configuration. Defaults favour correctness on any machine
/// (yielding waits survive oversubscription); benches flip the knobs.
struct Config {
  std::uint32_t num_workers = 2;
  support::WaitPolicy wait_policy = support::WaitPolicy::kSpinYield;
  bool collect_stats = true;   ///< fill the tau buckets (adds 4 clock reads
                               ///< per executed task + 1 per stall); buckets
                               ///< are derived from the obs phase spans
  bool collect_trace = false;  ///< record a validatable execution trace
  bool collect_sync = false;   ///< record acquire/release sync events for
                               ///< the happens-before checker (src/analysis)
  bool enable_guard = false;   ///< dynamic data-race detection (tests)
  bool pin_workers = false;    ///< pin worker w to logical CPU w mod #cpus
  bool doorbells = true;       ///< kBlock: batch wakeups through per-worker
                               ///< doorbells (src/rio/doorbell.hpp); false
                               ///< keeps the legacy per-word notify_all —
                               ///< the A/B knob bench/micro_protocol flips

  // Resilience (docs/robustness.md). All default-off: the fast path is
  // byte-identical to the pre-resilience runtime.
  support::RetryPolicy retry;  ///< max_attempts > 1 enables retry+rollback
  support::FaultInjector* fault = nullptr;  ///< deterministic fault
                                            ///< injection (not owned)
  std::uint64_t watchdog_ns = 0;  ///< > 0: monitor thread fails the run
                                  ///< with stf::StallError after this
                                  ///< no-progress window instead of hanging

  // Recovery (docs/robustness.md "worker loss"). Both borrowed, both
  // optional. `resume`: tasks marked done in the frontier replay as
  // protocol no-ops — every acquire is already satisfied, the body is
  // skipped. `checkpoint`: live completion board this run marks into
  // (caller sizes it via reset()); a later attempt resumes from its
  // capture(). Crash-armed fault plans auto-arm a default watchdog so a
  // worker death always escalates as stf::WorkerLost instead of hanging.
  const stf::Frontier* resume = nullptr;
  stf::CompletionBoard* checkpoint = nullptr;

  obs::Hub* obs = nullptr;  ///< telemetry hub (docs/observability.md); not
                            ///< owned. Null = telemetry off: no counters,
                            ///< no recorder, zero allocation on that path.
};

class Runtime {
 public:
  explicit Runtime(Config cfg);

  /// Executes a materialized flow under `mapping`. Blocks until all tasks
  /// completed on all workers. Thread-safe data access is entirely the
  /// protocol's job — this call performs no per-task allocation.
  support::RunStats run(const stf::TaskFlow& flow, const Mapping& mapping);

  /// Range variant: executes a slice of a flow (all tasks before the slice
  /// must already be complete — the hybrid runtime's phase barrier
  /// guarantees this). Task ids stay global; the mapping sees them as-is.
  support::RunStats run(const stf::FlowRange& range, const Mapping& mapping);

  /// Fast replay from a compiled FlowImage (stf/flow_image.hpp): the
  /// non-mapped path is a tight loop over the image's flat access array —
  /// no Task records, no InlineVec iteration, just the one-or-two private
  /// writes per access the cost model promises. Compile the image once,
  /// run it many times.
  support::RunStats run(const stf::FlowImage& image, const Mapping& mapping);

  /// Image-slice variant (hybrid phase execution).
  support::RunStats run(const stf::ImageRange& range, const Mapping& mapping);

  /// Streaming mode: each worker runs `program` itself against a
  /// pre-registered data registry; tasks are executed or declared on the
  /// fly and never materialized. The program must be deterministic.
  support::RunStats run_program(const stf::DataRegistry& registry,
                                const stf::ProgramFn& program,
                                const Mapping& mapping);

  /// Trace of the last run (empty unless cfg.collect_trace).
  [[nodiscard]] const stf::Trace& trace() const noexcept { return trace_; }

  /// Synchronization events of the last run (empty unless cfg.collect_sync).
  [[nodiscard]] const stf::SyncTrace& sync_trace() const noexcept {
    return sync_trace_;
  }

  [[nodiscard]] const Config& config() const noexcept { return cfg_; }

  /// Uses `pool` (>= num_workers threads) for subsequent runs instead of
  /// spawning threads per run — amortizes thread startup for repeated
  /// fine-grained runs and for hybrid phase execution. Pass nullptr to
  /// detach. The pool must outlive the runtime's runs.
  void attach_pool(support::ThreadPool* pool) noexcept { pool_ = pool; }

 private:
  Config cfg_;
  stf::Trace trace_;
  stf::SyncTrace sync_trace_;
  support::ThreadPool* pool_ = nullptr;
  RunArenas arenas_;  ///< recycled across runs (never shrinks)
};

}  // namespace rio::rt
