// Task mapping — Section 3.2 (parametric resources allocation).
//
// RIO has no dynamic scheduler: the programmer (or a tool) supplies a
// deterministic closure TaskID -> WorkerID. All workers evaluate the same
// closure on the same task ids (assumption 3 of Section 3.4), so the
// assignment needs no synchronization whatsoever. This header provides the
// closure wrapper plus the mapping families used across the paper's
// workloads: round-robin, contiguous blocks, explicit per-task tables, and
// 2-D block-cyclic owner-computes maps for the tiled linear-algebra flows.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "support/assert.hpp"
#include "stf/types.hpp"

namespace rio::rt {

/// Deterministic task-to-worker assignment. Cheap to copy (shared closure).
class Mapping {
 public:
  using Fn = std::function<stf::WorkerId(stf::TaskId)>;

  Mapping() = default;
  Mapping(std::string name, Fn fn)
      : name_(std::move(name)), fn_(std::make_shared<Fn>(std::move(fn))) {}

  [[nodiscard]] stf::WorkerId operator()(stf::TaskId t) const {
    RIO_DEBUG_ASSERT(fn_ && *fn_);
    return (*fn_)(t);
  }

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] bool valid() const noexcept { return fn_ && *fn_; }

  /// Stable identity of the underlying closure: copies of one Mapping share
  /// it, distinct constructions never do (while either is alive). Cache key
  /// material for compiled plans (PrunedPlanCache).
  [[nodiscard]] const void* identity() const noexcept { return fn_.get(); }

 private:
  std::string name_;
  std::shared_ptr<Fn> fn_;
};

namespace mapping {

/// task i -> worker i mod p. The default for independent task streams.
inline Mapping round_robin(std::uint32_t num_workers) {
  RIO_ASSERT(num_workers > 0);
  return Mapping("round-robin/" + std::to_string(num_workers),
                 [num_workers](stf::TaskId t) {
                   return static_cast<stf::WorkerId>(t % num_workers);
                 });
}

/// Contiguous blocks of ceil(n/p) tasks per worker. Maximizes per-worker
/// locality of the flow but serializes chains that cross block boundaries.
inline Mapping block(std::uint64_t num_tasks, std::uint32_t num_workers) {
  RIO_ASSERT(num_workers > 0 && num_tasks > 0);
  const std::uint64_t per = (num_tasks + num_workers - 1) / num_workers;
  return Mapping("block/" + std::to_string(num_workers),
                 [per, num_workers](stf::TaskId t) {
                   const auto w = static_cast<stf::WorkerId>(t / per);
                   return w < num_workers ? w : num_workers - 1;
                 });
}

/// Explicit owner table, one WorkerId per task. Used when a workload
/// generator computes its own owner-computes map (e.g. 2-D block-cyclic
/// tile owners for LU/GEMM — see workloads/).
inline Mapping table(std::vector<stf::WorkerId> owners, std::string name = {}) {
  auto shared = std::make_shared<std::vector<stf::WorkerId>>(std::move(owners));
  return Mapping(name.empty() ? "table" : std::move(name),
                 [shared](stf::TaskId t) {
                   RIO_DEBUG_ASSERT(t < shared->size());
                   return (*shared)[t];
                 });
}

/// Everything on one worker — the sequential degenerate case; useful as a
/// correctness baseline and in tests.
inline Mapping single(stf::WorkerId w = 0) {
  return Mapping("single", [w](stf::TaskId) { return w; });
}

/// Arbitrary user closure with a label for reports.
inline Mapping custom(std::string name, Mapping::Fn fn) {
  return Mapping(std::move(name), std::move(fn));
}

/// Eviction rewrite (docs/robustness.md "worker loss"): the assignment for
/// a run that lost worker `dead` out of `old_workers`. Surviving owners
/// keep their tasks but ids above `dead` shift down by one (the engine's
/// worker array compacts); the victim's tasks are respread round-robin
/// over the survivors. A fresh Mapping construction — the new identity()
/// makes PrunedPlanCache recompile plans naturally.
inline Mapping evict(const Mapping& old, stf::WorkerId dead,
                     std::uint32_t old_workers) {
  RIO_ASSERT(old.valid() && old_workers > 1 && dead < old_workers);
  const std::uint32_t survivors = old_workers - 1;
  return Mapping(
      old.name() + "/evict-" + std::to_string(dead),
      [old, dead, survivors](stf::TaskId t) {
        const stf::WorkerId w = old(t);
        if (w == dead) return static_cast<stf::WorkerId>(t % survivors);
        return w > dead ? static_cast<stf::WorkerId>(w - 1) : w;
      });
}

}  // namespace mapping
}  // namespace rio::rt
