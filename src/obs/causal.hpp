// obs::causal — post-run causal attribution over the flight recorder
// (docs/observability.md, "Causal profiling").
//
// The recorder's per-worker rings already hold a begin/end-stamped span
// for every phase of every task, and (this layer's schema extension)
// every acquire_wait span carries a wait-cause word saying *what* it
// waited on. analyze() stitches those rings into the *executed* DAG —
// body/release spans are the nodes, attributed wait spans the
// cross-worker arcs — and walks the chain of binding constraints back
// from the last-finishing task: at each node the delay is explained
// either by a recorded wait edge (jump to the producer) or by the
// worker being busy (jump to the previous task on the same lane). The
// walked interval is the weighted critical path; by construction
// crit_path <= makespan, with equality on the virtual-time simulators
// whenever the schedule is dependency-bound (workers never bind), which
// gives the tests a closed-form identity.
//
// Blame tables aggregate the same wait edges per producer task and per
// data object: the wall-ns (or virtual-tick) contribution of each to
// everyone else's stalls. On rio/rio-pruned every stalled acquire has a
// data cause, so the per-handle totals reconcile EXACTLY (EXPECT_EQ in
// tests, same discipline as the PR 4 reconciliation suite) with the
// recorder's acquire_wait phase total when nothing was dropped.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "obs/export.hpp"
#include "obs/obs.hpp"

namespace rio::obs::causal {

/// One attributed (or unattributed) acquire_wait span, as a DAG arc.
struct WaitEdge {
  std::uint64_t consumer = kNoTask;  ///< the task that waited
  std::uint64_t producer = kNoTask;  ///< the task it waited on (kNoTask =
                                     ///< unattributed: master/closed queue)
  std::uint32_t data = kNoCauseData;  ///< data object, when the protocol
                                      ///< knows it (rio/rio-pruned)
  std::uint32_t worker = 0;           ///< lane the wait happened on
  std::uint64_t begin = 0;
  std::uint64_t end = 0;
  std::uint64_t wait = 0;      ///< end - begin
  bool on_path = false;        ///< this edge binds the critical path
};

/// One node of the walked critical path, in execution order. The node
/// interval covers the task's contiguous span group on its lane (mgmt +
/// wait + body + release); `wait_in` is the wait explained by the edge
/// from the previous path node (0 for worker-busy links).
struct PathNode {
  std::uint64_t task = kNoTask;
  std::uint32_t worker = 0;
  std::uint64_t begin = 0;
  std::uint64_t end = 0;
  std::uint64_t body = 0;
  std::uint64_t wait_in = 0;
  std::uint32_t via_data = kNoCauseData;
};

struct TaskBlame {
  std::uint64_t task = kNoTask;  ///< producer
  std::uint64_t blame = 0;       ///< wait it caused on other tasks
  std::uint64_t edges = 0;
};

struct HandleBlame {
  std::uint32_t data = kNoCauseData;
  std::uint64_t blame = 0;
  std::uint64_t edges = 0;
};

struct Analysis {
  std::uint64_t makespan = 0;   ///< max span end - min span begin
  std::uint64_t crit_path = 0;  ///< walked interval; <= makespan always
  std::uint64_t crit_body = 0;  ///< body time on the path
  std::uint64_t crit_wait = 0;  ///< wait time on the path's edges
  std::uint64_t wait_total = 0;       ///< every recorded acquire_wait span
  std::uint64_t wait_attributed = 0;  ///< of those, spans with a cause
  std::vector<PathNode> path;         ///< execution order
  std::vector<WaitEdge> edges;        ///< sorted by wait, descending
  std::vector<TaskBlame> task_blame;      ///< sorted by blame, descending
  std::vector<HandleBlame> handle_blame;  ///< sorted by blame, descending
  bool complete = true;  ///< no ring drops: the DAG saw every span
};

/// Stitches the hub's drained events into the executed DAG and computes
/// the critical path and blame tables. Tolerant of partial rings (drops,
/// sampling, evicted workers): unexplainable links simply end the walk,
/// they never cycle — re-executed tasks keep their latest attempt.
[[nodiscard]] Analysis analyze(const Hub& hub);

/// Versioned machine-readable report, schema "rio.blame.v1". `top_k`
/// caps the stall-edge list (the path and blame tables are complete).
void write_blame_json(const Analysis& a, const Hub& hub,
                      const ObsJsonMeta& meta, std::size_t top_k,
                      std::ostream& os);

}  // namespace rio::obs::causal
