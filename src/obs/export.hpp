// Exporters for the telemetry hub: Chrome/Perfetto trace JSON and the
// versioned obs.json metrics schema (docs/observability.md).
#pragma once

#include <iosfwd>
#include <string>

#include "obs/obs.hpp"
#include "support/stats.hpp"

namespace rio::obs {

/// Run identity + precomputed decomposition carried into obs.json. The
/// e_p / e_r doubles are computed by the caller (obs does not depend on
/// metrics) and written with %.17g so they round-trip bit-for-bit.
struct ObsJsonMeta {
  std::string engine;
  std::string workload;
  double e_p = 1.0;
  double e_r = 1.0;
};

/// Chrome trace-event JSON, Perfetto-compatible: one track per worker with
/// phase slices ("X"), instant markers ("i") for stall snapshots and
/// injected faults, and derived counter tracks ("C") for executing /
/// waiting worker counts. Nanosecond clocks are emitted in microseconds;
/// tick clocks are emitted with one tick = one microsecond.
void write_perfetto_trace(const Hub& hub, std::ostream& os);

/// Versioned machine-readable metrics dump — schema "rio.obs.v1": phase
/// and bucket totals, counter snapshot, per-worker breakdown, recorder
/// occupancy, and the e_p·e_r decomposition.
void write_obs_json(const Hub& hub, const support::RunStats& stats,
                    const ObsJsonMeta& meta, std::ostream& os);

}  // namespace rio::obs
