#include "obs/causal.hpp"

#include <algorithm>
#include <cstdint>
#include <ostream>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "support/json.hpp"

namespace rio::obs::causal {
namespace {

/// Where a task's span group lives: its lane and an index into it.
/// `prio` prefers body spans over release/mgmt over waits, so sampled or
/// partially-dropped rings still anchor the task at its best span.
struct TaskPos {
  std::uint32_t worker = 0;
  std::size_t idx = 0;
  int prio = -1;
};

int phase_prio(Phase p) {
  switch (p) {
    case Phase::kBody: return 2;
    case Phase::kRelease:
    case Phase::kMgmt:
    case Phase::kRetryRollback: return 1;
    default: return 0;
  }
}

}  // namespace

Analysis analyze(const Hub& hub) {
  Analysis an;
  an.complete = hub.dropped() == 0;
  const std::vector<Event> events = hub.drain_events();

  // Per-worker lanes of span events, begin-ordered (drain_events sorts
  // globally by begin; the per-lane subsequence stays sorted).
  std::vector<std::vector<Event>> lanes;
  std::uint64_t min_begin = ~0ull;
  std::uint64_t max_end = 0;
  for (const Event& ev : events) {
    if (!is_span(ev.phase)) continue;
    if (ev.worker >= lanes.size()) lanes.resize(ev.worker + 1);
    lanes[ev.worker].push_back(ev);
    min_begin = std::min(min_begin, ev.begin);
    max_end = std::max(max_end, ev.end);
  }
  if (max_end == 0 && min_begin == ~0ull) return an;  // no spans at all
  an.makespan = max_end - min_begin;

  // Task anchors (latest attempt wins: a re-executed task under retry or
  // recovery appears several times; later events overwrite earlier ones
  // of equal-or-lower priority, so the walk uses the final attempt).
  std::unordered_map<std::uint64_t, TaskPos> where;
  for (std::uint32_t w = 0; w < lanes.size(); ++w)
    for (std::size_t i = 0; i < lanes[w].size(); ++i) {
      const Event& ev = lanes[w][i];
      if (ev.task == kNoTask) continue;
      TaskPos& pos = where[ev.task];
      const int prio = phase_prio(ev.phase);
      if (prio >= pos.prio) pos = TaskPos{w, i, prio};
    }

  // Wait edges (every acquire_wait span, attributed or not).
  for (const Event& ev : events) {
    if (ev.phase != Phase::kAcquireWait || !is_span(ev.phase)) continue;
    WaitEdge e;
    e.consumer = ev.task;
    e.producer = cause_producer(ev.cause);
    e.data = cause_data(ev.cause);
    e.worker = ev.worker;
    e.begin = ev.begin;
    e.end = ev.end;
    e.wait = ev.end - ev.begin;
    an.wait_total += e.wait;
    if (ev.cause != kNoCause) an.wait_attributed += e.wait;
    an.edges.push_back(e);
  }

  // Expands the contiguous same-task span run around lane index i.
  const auto group = [&](std::uint32_t w, std::size_t i) {
    const std::vector<Event>& lane = lanes[w];
    const std::uint64_t task = lane[i].task;
    std::size_t lo = i;
    std::size_t hi = i;
    while (lo > 0 && lane[lo - 1].task == task) --lo;
    while (hi + 1 < lane.size() && lane[hi + 1].task == task) ++hi;
    return std::pair<std::size_t, std::size_t>{lo, hi};
  };

  // Walk the binding-constraint chain back from the last-finishing task.
  // Termination: the visited set breaks any cycle a corrupted or evicted
  // ring could otherwise induce, and every link goes to a distinct task.
  std::uint64_t cur = kNoTask;
  {
    std::uint64_t best_end = 0;
    for (const Event& ev : events) {
      if (!is_span(ev.phase) || ev.task == kNoTask) continue;
      if (ev.end >= best_end) {
        best_end = ev.end;
        cur = ev.task;
      }
    }
  }
  std::unordered_set<std::uint64_t> visited;
  std::vector<PathNode> rev;
  while (cur != kNoTask && visited.insert(cur).second) {
    const auto it = where.find(cur);
    if (it == where.end()) break;
    const std::uint32_t w = it->second.worker;
    const auto [lo, hi] = group(w, it->second.idx);
    const std::vector<Event>& lane = lanes[w];

    PathNode node;
    node.task = cur;
    node.worker = w;
    node.begin = lane[lo].begin;
    node.end = lane[hi].end;
    std::uint64_t next = kNoTask;
    for (std::size_t i = lo; i <= hi; ++i) {
      const Event& ev = lane[i];
      if (ev.phase == Phase::kBody) node.body += ev.end - ev.begin;
      if (ev.phase == Phase::kAcquireWait) {
        const std::uint64_t producer = cause_producer(ev.cause);
        if (producer != kNoTask && producer != cur &&
            where.count(producer) != 0) {
          // Follow the wait edge: this is the binding constraint.
          next = producer;
          node.wait_in = ev.end - ev.begin;
          node.via_data = cause_data(ev.cause);
          for (WaitEdge& e : an.edges)
            if (e.consumer == cur && e.begin == ev.begin &&
                e.worker == ev.worker) {
              e.on_path = true;
              break;
            }
        }
      }
    }
    if (next == kNoTask) {
      // Worker-busy link: the previous task on the same lane.
      for (std::size_t i = lo; i-- > 0;)
        if (lane[i].task != kNoTask && lane[i].task != cur) {
          next = lane[i].task;
          break;
        }
    }
    rev.push_back(node);
    cur = next;
  }
  std::reverse(rev.begin(), rev.end());
  an.path = std::move(rev);
  if (!an.path.empty()) {
    an.crit_path = an.path.back().end - an.path.front().begin;
    for (const PathNode& n : an.path) {
      an.crit_body += n.body;
      an.crit_wait += n.wait_in;
    }
  }

  // Blame tables: aggregate the wait edges per producer and per handle.
  {
    std::unordered_map<std::uint64_t, TaskBlame> by_task;
    std::unordered_map<std::uint32_t, HandleBlame> by_data;
    for (const WaitEdge& e : an.edges) {
      if (e.producer != kNoTask) {
        TaskBlame& b = by_task[e.producer];
        b.task = e.producer;
        b.blame += e.wait;
        ++b.edges;
      }
      if (e.data != kNoCauseData) {
        HandleBlame& b = by_data[e.data];
        b.data = e.data;
        b.blame += e.wait;
        ++b.edges;
      }
    }
    an.task_blame.reserve(by_task.size());
    for (const auto& [t, b] : by_task) an.task_blame.push_back(b);
    an.handle_blame.reserve(by_data.size());
    for (const auto& [d, b] : by_data) an.handle_blame.push_back(b);
  }
  const auto by_blame_desc = [](const auto& a, const auto& b) {
    return a.blame != b.blame ? a.blame > b.blame : a.edges > b.edges;
  };
  std::sort(an.task_blame.begin(), an.task_blame.end(),
            [&](const TaskBlame& a, const TaskBlame& b) {
              return by_blame_desc(a, b) ||
                     (a.blame == b.blame && a.edges == b.edges &&
                      a.task < b.task);
            });
  std::sort(an.handle_blame.begin(), an.handle_blame.end(),
            [&](const HandleBlame& a, const HandleBlame& b) {
              return by_blame_desc(a, b) ||
                     (a.blame == b.blame && a.edges == b.edges &&
                      a.data < b.data);
            });
  std::sort(an.edges.begin(), an.edges.end(),
            [](const WaitEdge& a, const WaitEdge& b) {
              if (a.wait != b.wait) return a.wait > b.wait;
              if (a.begin != b.begin) return a.begin < b.begin;
              return a.worker < b.worker;
            });
  return an;
}

void write_blame_json(const Analysis& a, const Hub& hub,
                      const ObsJsonMeta& meta, std::size_t top_k,
                      std::ostream& os) {
  using support::json_quote;
  os << "{\n"
     << "  \"schema\": \"rio.blame.v1\",\n"
     << "  \"engine\": " << json_quote(meta.engine) << ",\n"
     << "  \"workload\": " << json_quote(meta.workload) << ",\n"
     << "  \"clock\": " << json_quote(to_string(hub.clock_unit())) << ",\n"
     << "  \"workers\": " << hub.num_workers() << ",\n"
     << "  \"makespan\": " << a.makespan << ",\n"
     << "  \"critical_path\": {\"length\": " << a.crit_path
     << ", \"body\": " << a.crit_body << ", \"wait\": " << a.crit_wait
     << ", \"nodes\": " << a.path.size() << ",\n    \"path\": [";
  for (std::size_t i = 0; i < a.path.size(); ++i) {
    const PathNode& n = a.path[i];
    os << (i ? ",\n      " : "\n      ") << "{\"task\": " << n.task
       << ", \"worker\": " << n.worker << ", \"begin\": " << n.begin
       << ", \"end\": " << n.end << ", \"body\": " << n.body
       << ", \"wait_in\": " << n.wait_in;
    if (n.via_data != kNoCauseData) os << ", \"data\": " << n.via_data;
    os << "}";
  }
  os << (a.path.empty() ? "]" : "\n    ]") << "},\n"
     << "  \"wait\": {\"total\": " << a.wait_total
     << ", \"attributed\": " << a.wait_attributed
     << ", \"edges\": " << a.edges.size() << "},\n"
     << "  \"task_blame\": [";
  for (std::size_t i = 0; i < a.task_blame.size(); ++i) {
    const TaskBlame& b = a.task_blame[i];
    os << (i ? ",\n    " : "\n    ") << "{\"task\": " << b.task
       << ", \"blame\": " << b.blame << ", \"edges\": " << b.edges << "}";
  }
  os << (a.task_blame.empty() ? "]" : "\n  ]") << ",\n"
     << "  \"handle_blame\": [";
  for (std::size_t i = 0; i < a.handle_blame.size(); ++i) {
    const HandleBlame& b = a.handle_blame[i];
    os << (i ? ",\n    " : "\n    ") << "{\"data\": " << b.data
       << ", \"blame\": " << b.blame << ", \"edges\": " << b.edges << "}";
  }
  os << (a.handle_blame.empty() ? "]" : "\n  ]") << ",\n"
     << "  \"top_edges\": [";
  const std::size_t ne = std::min(top_k, a.edges.size());
  for (std::size_t i = 0; i < ne; ++i) {
    const WaitEdge& e = a.edges[i];
    os << (i ? ",\n    " : "\n    ") << "{\"consumer\": ";
    if (e.consumer == kNoTask)
      os << "null";
    else
      os << e.consumer;
    os << ", \"producer\": ";
    if (e.producer == kNoTask)
      os << "null";
    else
      os << e.producer;
    os << ", \"data\": ";
    if (e.data == kNoCauseData)
      os << "null";
    else
      os << e.data;
    os << ", \"worker\": " << e.worker << ", \"wait\": " << e.wait
       << ", \"on_path\": " << (e.on_path ? "true" : "false") << "}";
  }
  os << (ne == 0 ? "]" : "\n  ]") << ",\n"
     << "  \"recorder\": {\"enabled\": "
     << (hub.recorder_enabled() ? "true" : "false")
     << ", \"capacity\": " << hub.ring_capacity()
     << ", \"sample\": " << hub.sample_stride()
     << ", \"pushed\": " << hub.pushed()
     << ", \"recorded\": " << hub.recorded()
     << ", \"dropped\": " << hub.dropped()
     << ", \"complete\": " << (a.complete ? "true" : "false") << "}\n"
     << "}\n";
}

}  // namespace rio::obs::causal
