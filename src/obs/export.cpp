#include "obs/export.hpp"

#include <algorithm>
#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "support/json.hpp"

namespace rio::obs {
namespace {

using support::json_double;
using support::json_quote;

/// Timestamp scale for the trace: Chrome's ts/dur unit is microseconds.
/// Nanosecond clocks divide by 1000; tick clocks map one tick to one
/// microsecond so virtual schedules stay readable at integer zoom levels.
double ts_scale(ClockUnit u) {
  return u == ClockUnit::kNanoseconds ? 1e-3 : 1.0;
}

std::string ts_str(std::uint64_t raw, std::uint64_t base, double scale) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.3f",
                static_cast<double>(raw - base) * scale);
  return {buf};
}

/// Emits a derived counter track: +1 at each span begin, -1 at each end,
/// running value as Chrome "C" events.
void write_counter_track(std::ostream& os, const std::vector<Event>& events,
                         bool (*want)(Phase), const char* name,
                         const char* key, std::uint64_t base, double scale,
                         bool& first) {
  std::vector<std::pair<std::uint64_t, int>> edges;
  for (const Event& ev : events) {
    if (!want(ev.phase) || ev.begin == ev.end) continue;
    edges.emplace_back(ev.begin, +1);
    edges.emplace_back(ev.end, -1);
  }
  std::sort(edges.begin(), edges.end());
  long value = 0;
  for (std::size_t i = 0; i < edges.size(); ++i) {
    value += edges[i].second;
    // Coalesce simultaneous edges into one sample.
    if (i + 1 < edges.size() && edges[i + 1].first == edges[i].first) continue;
    os << (first ? "" : ",\n") << "  {\"name\": " << json_quote(name)
       << ", \"ph\": \"C\", \"pid\": 0, \"ts\": "
       << ts_str(edges[i].first, base, scale) << ", \"args\": {\""
       << key << "\": " << value << "}}";
    first = false;
  }
}

void write_phase_map(std::ostream& os,
                     const std::uint64_t (&phases)[kNumSpanPhases]) {
  os << "{";
  for (std::size_t i = 0; i < kNumSpanPhases; ++i)
    os << (i ? ", " : "") << json_quote(to_string(static_cast<Phase>(i)))
       << ": " << phases[i];
  os << "}";
}

void write_buckets(std::ostream& os, const support::TimeBuckets& b) {
  os << "{\"task_ns\": " << b.task_ns << ", \"idle_ns\": " << b.idle_ns
     << ", \"runtime_ns\": " << b.runtime_ns << "}";
}

void write_counter_map(std::ostream& os,
                       const std::array<std::uint64_t, kNumCounters>& v) {
  os << "{";
  for (std::size_t i = 0; i < kNumCounters; ++i)
    os << (i ? ", " : "")
       << json_quote(counter_name(static_cast<Counter>(i))) << ": " << v[i];
  os << "}";
}

}  // namespace

void write_perfetto_trace(const Hub& hub, std::ostream& os) {
  const std::vector<Event> events = hub.drain_events();
  const double scale = ts_scale(hub.clock_unit());
  std::uint64_t base = ~0ull;
  for (const Event& ev : events) base = std::min(base, ev.begin);
  if (events.empty()) base = 0;

  os << "[\n";
  bool first = true;
  os << "  {\"name\": \"process_name\", \"ph\": \"M\", \"pid\": 0, "
        "\"args\": {\"name\": \"rioflow\"}}";
  first = false;
  for (std::size_t w = 0; w < hub.num_workers(); ++w)
    os << ",\n  {\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 0, "
       << "\"tid\": " << w << ", \"args\": {\"name\": \"worker " << w
       << "\"}}";

  for (const Event& ev : events) {
    os << ",\n  {\"name\": " << json_quote(to_string(ev.phase))
       << ", \"cat\": \"obs\", \"pid\": 0, \"tid\": " << ev.worker;
    if (ev.begin == ev.end) {
      os << ", \"ph\": \"i\", \"s\": \"t\", \"ts\": "
         << ts_str(ev.begin, base, scale);
    } else {
      os << ", \"ph\": \"X\", \"ts\": " << ts_str(ev.begin, base, scale)
         << ", \"dur\": " << ts_str(ev.end, ev.begin, scale);
    }
    if (ev.task != kNoTask) {
      os << ", \"args\": {\"task\": " << ev.task;
      if (ev.phase == Phase::kAcquireWait && ev.cause != kNoCause) {
        if (cause_data(ev.cause) != kNoCauseData)
          os << ", \"data\": " << cause_data(ev.cause);
        if (cause_producer(ev.cause) != kNoTask)
          os << ", \"producer\": " << cause_producer(ev.cause);
      }
      os << "}";
    }
    os << "}";
  }

  // Flow events: producer release -> consumer acquire_wait, one "s"/"f"
  // pair per attributed wait span, anchored mid-slice so Perfetto binds
  // them to the enclosing slices on both tracks.
  {
    struct Anchor {
      std::uint32_t worker = 0;
      std::uint64_t mid = 0;
      bool release = false;
      bool set = false;
    };
    std::map<std::uint64_t, Anchor> anchors;  // task -> producer-side slice
    for (const Event& ev : events) {
      if (ev.task == kNoTask || ev.begin == ev.end) continue;
      if (ev.phase != Phase::kRelease && ev.phase != Phase::kBody) continue;
      Anchor& a = anchors[ev.task];
      // Prefer the release slice (the publication); keep the latest so a
      // retried/replayed task anchors at its final attempt.
      if (a.set && a.release && ev.phase != Phase::kRelease) continue;
      a.worker = ev.worker;
      a.mid = ev.begin + (ev.end - ev.begin) / 2;
      a.release = ev.phase == Phase::kRelease;
      a.set = true;
    }
    std::uint64_t flow_id = 0;
    for (const Event& ev : events) {
      if (ev.phase != Phase::kAcquireWait || ev.begin == ev.end) continue;
      const std::uint64_t producer = cause_producer(ev.cause);
      if (producer == kNoTask) continue;
      const auto it = anchors.find(producer);
      if (it == anchors.end()) continue;
      os << ",\n  {\"name\": \"dep\", \"cat\": \"obs\", \"ph\": \"s\", "
         << "\"id\": " << flow_id << ", \"pid\": 0, \"tid\": "
         << it->second.worker << ", \"ts\": "
         << ts_str(it->second.mid, base, scale) << "}";
      os << ",\n  {\"name\": \"dep\", \"cat\": \"obs\", \"ph\": \"f\", "
         << "\"bp\": \"e\", \"id\": " << flow_id << ", \"pid\": 0, \"tid\": "
         << ev.worker << ", \"ts\": "
         << ts_str(ev.begin + (ev.end - ev.begin) / 2, base, scale) << "}";
      ++flow_id;
    }
  }

  write_counter_track(
      os, events, [](Phase p) { return p == Phase::kBody; }, "executing tasks",
      "executing", base, scale, first);
  write_counter_track(
      os, events,
      [](Phase p) { return p == Phase::kAcquireWait || p == Phase::kSteal; },
      "waiting workers", "waiting", base, scale, first);

  os << "\n]\n";
}

void write_obs_json(const Hub& hub, const support::RunStats& stats,
                    const ObsJsonMeta& meta, std::ostream& os) {
  const CounterSnapshot counters = hub.counter_snapshot();
  const support::TimeBuckets cum = stats.cumulative();
  const std::size_t nw = hub.num_workers();

  std::uint64_t phase_totals[kNumSpanPhases] = {};
  for (std::size_t w = 0; w < nw; ++w)
    for (std::size_t i = 0; i < kNumSpanPhases; ++i)
      phase_totals[i] += hub.phase_totals(w)[i];

  os << "{\n"
     << "  \"schema\": \"rio.obs.v1\",\n"
     << "  \"engine\": " << json_quote(meta.engine) << ",\n"
     << "  \"workload\": " << json_quote(meta.workload) << ",\n"
     << "  \"clock\": " << json_quote(to_string(hub.clock_unit())) << ",\n"
     << "  \"wall_ns\": " << stats.wall_ns << ",\n"
     << "  \"workers\": " << nw << ",\n"
     << "  \"totals\": {\n"
     << "    \"phases\": ";
  write_phase_map(os, phase_totals);
  os << ",\n    \"buckets\": ";
  write_buckets(os, cum);
  os << ",\n    \"counters\": ";
  write_counter_map(os, counters.totals);
  os << "\n  },\n"
     << "  \"decompose\": {\"e_p\": " << json_double(meta.e_p)
     << ", \"e_r\": " << json_double(meta.e_r)
     << ", \"product\": " << json_double(meta.e_p * meta.e_r) << "},\n"
     << "  \"per_worker\": [\n";
  for (std::size_t w = 0; w < nw; ++w) {
    std::uint64_t phases[kNumSpanPhases] = {};
    for (std::size_t i = 0; i < kNumSpanPhases; ++i)
      phases[i] = hub.phase_totals(w)[i];
    os << "    {\"worker\": " << w << ", \"phases\": ";
    write_phase_map(os, phases);
    if (w < stats.workers.size()) {
      os << ", \"buckets\": ";
      write_buckets(os, stats.workers[w].buckets);
    }
    if (w < counters.workers.size()) {
      os << ", \"counters\": ";
      write_counter_map(os, counters.workers[w]);
    }
    os << "}" << (w + 1 < nw ? "," : "") << "\n";
  }
  os << "  ],\n"
     << "  \"recorder\": {\"enabled\": "
     << (hub.recorder_enabled() ? "true" : "false")
     << ", \"capacity\": " << hub.ring_capacity()
     << ", \"sample\": " << hub.sample_stride()
     << ", \"pushed\": " << hub.pushed()
     << ", \"recorded\": " << hub.recorded()
     << ", \"dropped\": " << hub.dropped() << "}\n"
     << "}\n";
}

}  // namespace rio::obs
