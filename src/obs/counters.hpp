// Always-on per-worker counters: one padded cache line per worker,
// relaxed-order adds, aggregated on demand into a plain-value snapshot.
//
// The registry heap-allocates each worker's line individually so growing
// (hybrid adds the shared-pool slot mid-run) never moves a line another
// thread already holds a pointer to. ensure() itself is NOT safe
// concurrently with add() — grow only between runs.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "support/align.hpp"

namespace rio::obs {

enum class Counter : std::uint8_t {
  kTasksExecuted = 0,
  kTasksSkipped,
  kSteals,
  kProtocolWaits,   ///< protocol / queue waits that actually stalled
  kWakeups,         ///< terminate_* publications or dispatches that may wake waiters
  kSpinIters,       ///< spin-loop iterations inside protocol waits
  kRetries,         ///< body re-executions after rollback
  kFaultsInjected,  ///< injector throws + stalls fired
  kQueuePushes,     ///< coor ready-queue enqueues
  kQueuePops,       ///< coor ready-queue dequeues (incl. steals)
  kWatchdogProbes,  ///< watchdog progress polls (global slot)
  kWakeupsIssued,   ///< wakeups that issued a real syscall (futex/condvar)
  kWakeupsElided,   ///< wakeups skipped because no waiter was parked —
                    ///< batching/elision effectiveness (docs/perf.md)
  kEvictions,       ///< dead workers evicted by the supervisor (global slot)
  kTasksReplayed,   ///< tasks re-run (body skipped or re-executed) during
                    ///< recovery resume (global slot)
};

inline constexpr std::size_t kNumCounters = 15;

[[nodiscard]] constexpr const char* counter_name(Counter c) noexcept {
  switch (c) {
    case Counter::kTasksExecuted: return "tasks_executed";
    case Counter::kTasksSkipped: return "tasks_skipped";
    case Counter::kSteals: return "steals";
    case Counter::kProtocolWaits: return "protocol_waits";
    case Counter::kWakeups: return "wakeups";
    case Counter::kSpinIters: return "spin_iters";
    case Counter::kRetries: return "retries";
    case Counter::kFaultsInjected: return "faults_injected";
    case Counter::kQueuePushes: return "queue_pushes";
    case Counter::kQueuePops: return "queue_pops";
    case Counter::kWatchdogProbes: return "watchdog_probes";
    case Counter::kWakeupsIssued: return "wakeups_issued";
    case Counter::kWakeupsElided: return "wakeups_elided";
    case Counter::kEvictions: return "evictions";
    case Counter::kTasksReplayed: return "tasks_replayed";
  }
  return "?";
}

/// One worker's counters, padded so two workers never share a line.
struct alignas(support::kCacheLineSize) WorkerCounters {
  std::array<std::atomic<std::uint64_t>, kNumCounters> v{};

  void add(Counter c, std::uint64_t n = 1) noexcept {
    v[static_cast<std::size_t>(c)].fetch_add(n, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t get(Counter c) const noexcept {
    return v[static_cast<std::size_t>(c)].load(std::memory_order_relaxed);
  }
  void reset() noexcept {
    for (auto& a : v) a.store(0, std::memory_order_relaxed);
  }
};

/// Plain-value copy of every counter, taken after the workers joined.
struct CounterSnapshot {
  std::vector<std::array<std::uint64_t, kNumCounters>> workers;
  std::array<std::uint64_t, kNumCounters> global{};  ///< non-worker threads
  std::array<std::uint64_t, kNumCounters> totals{};  ///< workers + global

  [[nodiscard]] std::uint64_t total(Counter c) const noexcept {
    return totals[static_cast<std::size_t>(c)];
  }
  [[nodiscard]] std::uint64_t worker_value(std::size_t w, Counter c) const {
    return workers[w][static_cast<std::size_t>(c)];
  }
};

class CounterRegistry {
 public:
  /// Grows to at least `n` worker lines; existing lines keep their values
  /// and their addresses.
  void ensure(std::size_t n) {
    while (lines_.size() < n) lines_.push_back(std::make_unique<WorkerCounters>());
  }

  [[nodiscard]] std::size_t size() const noexcept { return lines_.size(); }
  [[nodiscard]] WorkerCounters& worker(std::size_t w) noexcept { return *lines_[w]; }
  [[nodiscard]] const WorkerCounters& worker(std::size_t w) const noexcept {
    return *lines_[w];
  }
  /// Shared line for threads outside the worker set (watchdog, master
  /// bookkeeping that has no slot).
  [[nodiscard]] WorkerCounters& global() noexcept { return global_; }
  [[nodiscard]] const WorkerCounters& global() const noexcept { return global_; }

  [[nodiscard]] CounterSnapshot snapshot() const {
    CounterSnapshot s;
    s.workers.resize(lines_.size());
    for (std::size_t w = 0; w < lines_.size(); ++w)
      for (std::size_t c = 0; c < kNumCounters; ++c) {
        s.workers[w][c] = lines_[w]->v[c].load(std::memory_order_relaxed);
        s.totals[c] += s.workers[w][c];
      }
    for (std::size_t c = 0; c < kNumCounters; ++c) {
      s.global[c] = global_.v[c].load(std::memory_order_relaxed);
      s.totals[c] += s.global[c];
    }
    return s;
  }

  void reset() noexcept {
    for (auto& line : lines_) line->reset();
    global_.reset();
  }

 private:
  std::vector<std::unique_ptr<WorkerCounters>> lines_;
  WorkerCounters global_;
};

}  // namespace rio::obs
