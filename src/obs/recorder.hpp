// Per-worker fixed-capacity event rings: no locks, no allocation on the
// hot path, drop-oldest by overwrite with exact dropped-event accounting.
//
// Each ring has exactly one writer (its worker thread) and is drained only
// after that thread joined, so plain non-atomic indices are correct: the
// join gives the reader a happens-before edge over every push, and TSan
// agrees. Capacity is rounded up to a power of two so push is a masked
// store plus an increment.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "obs/phase.hpp"

namespace rio::obs {

class EventRing {
 public:
  explicit EventRing(std::size_t capacity, std::uint64_t stride = 1) {
    std::size_t cap = 1;
    while (cap < capacity) cap <<= 1;
    buf_.resize(cap);
    mask_ = cap - 1;
    stride_ = stride == 0 ? 1 : stride;
  }

  /// Hot path: one store, one increment (plus a predicted not-taken
  /// branch when sampling). Overwrites the oldest event once full;
  /// `stride > 1` keeps every stride-th push and drops the rest —
  /// recorded()/dropped()/pushed() keep the books straight either way.
  void push(const Event& ev) noexcept {
    ++pushed_;
    if (skip_ != 0) {
      --skip_;
      return;
    }
    skip_ = stride_ - 1;
    buf_[head_ & mask_] = ev;
    ++head_;
  }

  [[nodiscard]] std::size_t capacity() const noexcept { return buf_.size(); }
  [[nodiscard]] std::uint64_t stride() const noexcept { return stride_; }
  [[nodiscard]] std::uint64_t pushed() const noexcept { return pushed_; }
  [[nodiscard]] std::uint64_t recorded() const noexcept {
    return head_ < buf_.size() ? head_ : buf_.size();
  }
  /// Pushes not retained: sampled out by the stride plus stored events
  /// overwritten by ring wrap. Always pushed() == recorded() + dropped().
  [[nodiscard]] std::uint64_t dropped() const noexcept {
    return pushed_ - recorded();
  }

  /// Appends the retained events to `out`, oldest first.
  void drain(std::vector<Event>& out) const {
    for (std::uint64_t i = head_ - recorded(); i < head_; ++i)
      out.push_back(buf_[i & mask_]);
  }

  void clear() noexcept {
    head_ = 0;
    pushed_ = 0;
    skip_ = 0;
  }

 private:
  std::vector<Event> buf_;
  std::uint64_t head_ = 0;
  std::uint64_t pushed_ = 0;
  std::uint64_t stride_ = 1;
  std::uint64_t skip_ = 0;
  std::size_t mask_ = 0;
};

class Recorder {
 public:
  explicit Recorder(std::size_t ring_capacity, std::uint64_t stride = 1)
      : capacity_(ring_capacity), stride_(stride == 0 ? 1 : stride) {}

  /// Grows to at least `n` rings; existing rings keep their contents and
  /// their addresses (workers hold raw pointers across hybrid phases).
  void ensure(std::size_t n) {
    while (rings_.size() < n)
      rings_.push_back(std::make_unique<EventRing>(capacity_, stride_));
  }

  [[nodiscard]] std::size_t size() const noexcept { return rings_.size(); }
  [[nodiscard]] EventRing* ring(std::size_t w) noexcept {
    return w < rings_.size() ? rings_[w].get() : nullptr;
  }
  [[nodiscard]] const EventRing* ring(std::size_t w) const noexcept {
    return w < rings_.size() ? rings_[w].get() : nullptr;
  }
  [[nodiscard]] std::size_t ring_capacity() const noexcept { return capacity_; }
  [[nodiscard]] std::uint64_t stride() const noexcept { return stride_; }

  [[nodiscard]] std::uint64_t pushed() const noexcept {
    std::uint64_t n = 0;
    for (const auto& r : rings_) n += r->pushed();
    return n;
  }
  [[nodiscard]] std::uint64_t recorded() const noexcept {
    std::uint64_t n = 0;
    for (const auto& r : rings_) n += r->recorded();
    return n;
  }
  [[nodiscard]] std::uint64_t dropped() const noexcept {
    std::uint64_t n = 0;
    for (const auto& r : rings_) n += r->dropped();
    return n;
  }

  void clear() noexcept {
    for (auto& r : rings_) r->clear();
  }

 private:
  std::size_t capacity_;
  std::uint64_t stride_;
  std::vector<std::unique_ptr<EventRing>> rings_;
};

}  // namespace rio::obs
