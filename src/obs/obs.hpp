// rio::obs — the unified telemetry hub (docs/observability.md).
//
// One Hub per measured run (or swept series): it owns the per-worker
// counter lines, the optional flight-recorder rings, and the committed
// span-phase totals. Engines receive a `Hub*` through their Config; a
// null hub means telemetry off, and every per-event call below degrades
// to a predicted branch on a null pointer — no locks, no allocation.
//
// Worker threads never talk to the Hub directly on the hot path. Each
// worker carries a plain `WorkerObs` lens bound once before the run: the
// lens holds raw pointers to that worker's counter line and ring plus
// local (unshared) phase accumulators, and commit() folds the locals back
// into the hub after the worker loop ends. The watchdog thread, which has
// no lens, uses the hub's global counter line and the mutex-protected
// out-of-band instant list instead of the single-writer rings.
#pragma once

#include <algorithm>
#include <array>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "obs/counters.hpp"
#include "obs/phase.hpp"
#include "obs/recorder.hpp"
#include "support/stats.hpp"

namespace rio::obs {

enum class ClockUnit : std::uint8_t { kNanoseconds, kTicks };

[[nodiscard]] constexpr const char* to_string(ClockUnit u) noexcept {
  return u == ClockUnit::kNanoseconds ? "ns" : "ticks";
}

struct HubOptions {
  bool recorder = false;  ///< flight recorder on (opt-in; counters are free)
  std::size_t ring_capacity = std::size_t{1} << 16;  ///< events per worker ring
  std::uint64_t sample = 1;  ///< record every sample-th span (1 = all)
};

class Hub {
 public:
  explicit Hub(const HubOptions& opts = {}) : opts_(opts) {
    if (opts_.recorder)
      recorder_ = std::make_unique<Recorder>(opts_.ring_capacity, opts_.sample);
  }

  /// Grows (never shrinks, never resets) to at least `n` worker slots.
  /// Call between runs only; hybrid calls once per phase and the totals
  /// accumulate across phases.
  void ensure_workers(std::size_t n) {
    counters_.ensure(n);
    if (recorder_) recorder_->ensure(n);
    if (phase_totals_.size() < n) phase_totals_.resize(n);
  }

  [[nodiscard]] std::size_t num_workers() const noexcept {
    return phase_totals_.size();
  }

  [[nodiscard]] WorkerCounters* worker_counters(std::size_t w) noexcept {
    return w < counters_.size() ? &counters_.worker(w) : nullptr;
  }
  [[nodiscard]] WorkerCounters& global_counters() noexcept {
    return counters_.global();
  }
  [[nodiscard]] CounterSnapshot counter_snapshot() const {
    return counters_.snapshot();
  }

  [[nodiscard]] bool recorder_enabled() const noexcept {
    return recorder_ != nullptr;
  }
  [[nodiscard]] EventRing* ring(std::size_t w) noexcept {
    return recorder_ ? recorder_->ring(w) : nullptr;
  }
  [[nodiscard]] std::size_t ring_capacity() const noexcept {
    return recorder_ ? recorder_->ring_capacity() : 0;
  }
  [[nodiscard]] std::uint64_t recorded() const noexcept {
    return recorder_ ? recorder_->recorded() : 0;
  }
  [[nodiscard]] std::uint64_t dropped() const noexcept {
    return recorder_ ? recorder_->dropped() : 0;
  }
  [[nodiscard]] std::uint64_t pushed() const noexcept {
    return recorder_ ? recorder_->pushed() : 0;
  }
  [[nodiscard]] std::uint64_t sample_stride() const noexcept {
    return recorder_ ? recorder_->stride() : 0;
  }

  /// Accumulates (+=) one worker's span-phase totals. Workers reach this
  /// through WorkerObs::commit after their loop; hybrid's phases stack up.
  void commit_phases(std::size_t w,
                     const std::uint64_t (&phases)[kNumSpanPhases]) {
    ensure_workers(w + 1);
    for (std::size_t i = 0; i < kNumSpanPhases; ++i)
      phase_totals_[w][i] += phases[i];
  }

  [[nodiscard]] const std::array<std::uint64_t, kNumSpanPhases>& phase_totals(
      std::size_t w) const noexcept {
    return phase_totals_[w];
  }
  [[nodiscard]] std::uint64_t phase_total(Phase p) const noexcept {
    std::uint64_t n = 0;
    for (const auto& w : phase_totals_) n += w[static_cast<std::size_t>(p)];
    return n;
  }

  /// Thread-safe out-of-band instant for threads without a lens (the
  /// watchdog must not touch the single-writer rings). Dropped when the
  /// recorder is off, like every other event.
  void instant(const Event& ev) {
    if (!recorder_) return;
    const std::lock_guard<std::mutex> lock(oob_mu_);
    oob_.push_back(ev);
  }

  /// All retained events (rings + out-of-band), sorted by begin time.
  /// Call only after the workers joined.
  [[nodiscard]] std::vector<Event> drain_events() const {
    std::vector<Event> out;
    if (recorder_)
      for (std::size_t w = 0; w < recorder_->size(); ++w)
        recorder_->ring(w)->drain(out);
    {
      const std::lock_guard<std::mutex> lock(oob_mu_);
      out.insert(out.end(), oob_.begin(), oob_.end());
    }
    std::stable_sort(out.begin(), out.end(), [](const Event& a, const Event& b) {
      return a.begin != b.begin ? a.begin < b.begin : a.worker < b.worker;
    });
    return out;
  }

  void set_clock_unit(ClockUnit u) noexcept { clock_ = u; }
  [[nodiscard]] ClockUnit clock_unit() const noexcept { return clock_; }

  void reset() {
    counters_.reset();
    if (recorder_) recorder_->clear();
    for (auto& w : phase_totals_) w.fill(0);
    const std::lock_guard<std::mutex> lock(oob_mu_);
    oob_.clear();
  }

 private:
  HubOptions opts_;
  CounterRegistry counters_;
  std::unique_ptr<Recorder> recorder_;
  std::vector<std::array<std::uint64_t, kNumSpanPhases>> phase_totals_;
  mutable std::mutex oob_mu_;
  std::vector<Event> oob_;
  ClockUnit clock_ = ClockUnit::kNanoseconds;
};

/// Engine-side per-worker lens. Lives in the worker's context (its own
/// cache line there) or on its stack; every method is null-safe so the
/// telemetry-off path costs a well-predicted branch and never allocates.
/// Phase accumulators are local plain integers even when a hub is bound —
/// the shared state is only touched in commit().
struct WorkerObs {
  std::uint64_t phase_ns[kNumSpanPhases] = {};
  std::uint64_t spin_iters = 0;  ///< batched; flushed to kSpinIters in commit
  WorkerCounters* counters = nullptr;
  EventRing* ring = nullptr;
  std::uint32_t worker = 0;

  void bind(Hub* hub, std::uint32_t w) noexcept {
    worker = w;
    counters = hub != nullptr ? hub->worker_counters(w) : nullptr;
    ring = hub != nullptr ? hub->ring(w) : nullptr;
  }

  [[nodiscard]] bool recording() const noexcept { return ring != nullptr; }

  /// `cause` is the wait-cause word (phase.hpp) carried by kAcquireWait
  /// spans; the default keeps every existing call site unattributed. The
  /// word only materializes in the ring push, so the recorder-off path
  /// costs nothing extra.
  void span(Phase p, std::uint64_t task, std::uint64_t b, std::uint64_t e,
            std::uint64_t cause = kNoCause) {
    phase_ns[static_cast<std::size_t>(p)] += e - b;
    if (ring != nullptr) ring->push(Event{b, e, task, worker, p, cause});
  }

  void instant(Phase p, std::uint64_t task, std::uint64_t ts) {
    if (ring != nullptr) ring->push(Event{ts, ts, task, worker, p});
  }

  void count(Counter c, std::uint64_t n = 1) {
    if (counters != nullptr) counters->add(c, n);
  }

  /// Flushes the batched spin iterations and the phase totals to `hub`
  /// (null-safe). Call once, after the worker loop.
  void commit(Hub* hub) {
    if (counters != nullptr && spin_iters > 0) {
      counters->add(Counter::kSpinIters, spin_iters);
      spin_iters = 0;
    }
    if (hub != nullptr) hub->commit_phases(worker, phase_ns);
  }

  /// Derives the legacy TimeBuckets from the phase totals: task time is
  /// the body phase, idle is acquire-wait + steal, and runtime overhead is
  /// the wall remainder (release, rollback, mgmt and untimed loop glue).
  [[nodiscard]] support::TimeBuckets buckets(std::uint64_t wall) const noexcept {
    support::TimeBuckets b;
    b.task_ns = phase_ns[static_cast<std::size_t>(Phase::kBody)];
    b.idle_ns = phase_ns[static_cast<std::size_t>(Phase::kAcquireWait)] +
                phase_ns[static_cast<std::size_t>(Phase::kSteal)];
    b.runtime_ns =
        wall > b.task_ns + b.idle_ns ? wall - b.task_ns - b.idle_ns : 0;
    return b;
  }
};

}  // namespace rio::obs
