// Phase taxonomy for the flight recorder (docs/observability.md).
//
// The six span phases partition a worker's wall time the same way the
// paper's Section 2.3 decomposition does: kBody is the task work that
// e_p · e_r credits, kAcquireWait / kSteal are the pipeline stalls behind
// e_p, and kRelease / kRetryRollback / kMgmt are runtime overhead behind
// e_r. TimeBuckets (support/stats.hpp) is DERIVED from these accumulators
// (obs::WorkerObs::buckets) — engines no longer time the buckets
// separately, so the decomposition and the recorder can never disagree.
#pragma once

#include <cstddef>
#include <cstdint>

namespace rio::obs {

enum class Phase : std::uint8_t {
  // Span phases (begin < end): accumulated into per-worker phase totals.
  kAcquireWait = 0,    ///< blocked on the in-order protocol counters
  kBody = 1,           ///< user task body executing
  kRelease = 2,        ///< terminate_* publication / successor dispatch
  kSteal = 3,          ///< probing other workers' ready queues (coor)
  kRetryRollback = 4,  ///< snapshot restore + backoff between attempts
  kMgmt = 5,           ///< coor master unroll / sim discovery overhead
  // Instant phases (begin == end): markers, never part of the totals.
  kStallSnapshot = 6,  ///< watchdog captured a stall diagnostic
  kFaultInjected = 7,  ///< injector fired (throw or stall) on this task
};

inline constexpr std::size_t kNumSpanPhases = 6;
inline constexpr std::size_t kNumPhases = 8;

[[nodiscard]] constexpr bool is_span(Phase p) noexcept {
  return static_cast<std::size_t>(p) < kNumSpanPhases;
}

[[nodiscard]] constexpr const char* to_string(Phase p) noexcept {
  switch (p) {
    case Phase::kAcquireWait: return "acquire_wait";
    case Phase::kBody: return "body";
    case Phase::kRelease: return "release";
    case Phase::kSteal: return "steal";
    case Phase::kRetryRollback: return "retry_rollback";
    case Phase::kMgmt: return "mgmt";
    case Phase::kStallSnapshot: return "stall_snapshot";
    case Phase::kFaultInjected: return "fault_injected";
  }
  return "?";
}

/// Sentinel for events not attributed to any task.
inline constexpr std::uint64_t kNoTask = ~0ull;

/// One recorded event. begin == end marks an instant. Timestamps are
/// nanoseconds on the real engines and virtual ticks in the simulators;
/// the hub's clock unit says which.
struct Event {
  std::uint64_t begin = 0;
  std::uint64_t end = 0;
  std::uint64_t task = kNoTask;
  std::uint32_t worker = 0;
  Phase phase = Phase::kBody;
};

}  // namespace rio::obs
