// Phase taxonomy for the flight recorder (docs/observability.md).
//
// The six span phases partition a worker's wall time the same way the
// paper's Section 2.3 decomposition does: kBody is the task work that
// e_p · e_r credits, kAcquireWait / kSteal are the pipeline stalls behind
// e_p, and kRelease / kRetryRollback / kMgmt are runtime overhead behind
// e_r. TimeBuckets (support/stats.hpp) is DERIVED from these accumulators
// (obs::WorkerObs::buckets) — engines no longer time the buckets
// separately, so the decomposition and the recorder can never disagree.
#pragma once

#include <cstddef>
#include <cstdint>

namespace rio::obs {

enum class Phase : std::uint8_t {
  // Span phases (begin < end): accumulated into per-worker phase totals.
  kAcquireWait = 0,    ///< blocked on the in-order protocol counters
  kBody = 1,           ///< user task body executing
  kRelease = 2,        ///< terminate_* publication / successor dispatch
  kSteal = 3,          ///< probing other workers' ready queues (coor)
  kRetryRollback = 4,  ///< snapshot restore + backoff between attempts
  kMgmt = 5,           ///< coor master unroll / sim discovery overhead
  // Instant phases (begin == end): markers, never part of the totals.
  kStallSnapshot = 6,  ///< watchdog captured a stall diagnostic
  kFaultInjected = 7,  ///< injector fired (throw or stall) on this task
};

inline constexpr std::size_t kNumSpanPhases = 6;
inline constexpr std::size_t kNumPhases = 8;

[[nodiscard]] constexpr bool is_span(Phase p) noexcept {
  return static_cast<std::size_t>(p) < kNumSpanPhases;
}

[[nodiscard]] constexpr const char* to_string(Phase p) noexcept {
  switch (p) {
    case Phase::kAcquireWait: return "acquire_wait";
    case Phase::kBody: return "body";
    case Phase::kRelease: return "release";
    case Phase::kSteal: return "steal";
    case Phase::kRetryRollback: return "retry_rollback";
    case Phase::kMgmt: return "mgmt";
    case Phase::kStallSnapshot: return "stall_snapshot";
    case Phase::kFaultInjected: return "fault_injected";
  }
  return "?";
}

/// Sentinel for events not attributed to any task.
inline constexpr std::uint64_t kNoTask = ~0ull;

// --- Wait-cause word ------------------------------------------------------
//
// An acquire_wait span can carry *what it waited on*, packed into one
// extra ring word: the data-object index in the high 32 bits and the
// producer task id in the low 32 bits. rio/rio-pruned read both from the
// expected/observed protocol counters they already track (the same pair
// stall_diag.hpp prints); coor records the dispatching predecessor of the
// popped task; the simulators record the argmax predecessor, which makes
// their causes exact. ~0 in either half means "unknown" — a cause of
// kNoCause (both halves unknown) is an unattributed wait.

/// "No data object" half-word (also the whole-word sentinel's halves).
inline constexpr std::uint32_t kNoCauseData = 0xFFFFFFFFu;
/// Fully-unattributed wait cause.
inline constexpr std::uint64_t kNoCause = ~0ull;

/// Packs (producer task, data object) into one cause word. Producer ids
/// that do not fit 32 bits (including stf::kInvalidTask) map to "unknown".
[[nodiscard]] constexpr std::uint64_t make_cause(
    std::uint64_t producer_task, std::uint32_t data = kNoCauseData) noexcept {
  const std::uint64_t prod = producer_task >= kNoCauseData
                                 ? std::uint64_t{kNoCauseData}
                                 : producer_task;
  return (std::uint64_t{data} << 32) | prod;
}

/// Data-object half of a cause word (kNoCauseData when unknown).
[[nodiscard]] constexpr std::uint32_t cause_data(std::uint64_t cause) noexcept {
  return static_cast<std::uint32_t>(cause >> 32);
}

/// Producer half of a cause word (kNoTask when unknown).
[[nodiscard]] constexpr std::uint64_t cause_producer(std::uint64_t cause) noexcept {
  const std::uint64_t p = cause & 0xFFFFFFFFull;
  return p == kNoCauseData ? kNoTask : p;
}

/// One recorded event. begin == end marks an instant. Timestamps are
/// nanoseconds on the real engines and virtual ticks in the simulators;
/// the hub's clock unit says which. `cause` is declared last so the
/// positional braced initializers all over the engines and tests stay
/// valid; it defaults to kNoCause and is only meaningful on kAcquireWait
/// spans.
struct Event {
  std::uint64_t begin = 0;
  std::uint64_t end = 0;
  std::uint64_t task = kNoTask;
  std::uint32_t worker = 0;
  Phase phase = Phase::kBody;
  std::uint64_t cause = kNoCause;
};

}  // namespace rio::obs
